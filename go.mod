module mute

go 1.22
