// Quickstart: simulate the Figure 1 office — a noise source near the door,
// the IoT relay on the wall beside it, the open-ear MUTE device across the
// room — and print how much quieter the ear gets.
package main

import (
	"fmt"
	"log"

	"mute/pkg/mute"
)

func main() {
	const fs = 8000.0

	// Wide-band white noise: the most unpredictable sound, and the one
	// conventional headphones handle worst.
	noise := mute.WhiteNoise(1, fs, 0.5)

	scene := mute.DefaultScene(noise)
	params := mute.DefaultParams(scene)
	params.Duration = 8

	result, err := mute.Run(params, mute.MUTEHollow)
	if err != nil {
		log.Fatal(err)
	}
	report, err := mute.Summarize(result)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	fmt.Printf("the relay's placement gives %.1f ms of lookahead, of which %d samples became non-causal filter taps\n",
		report.LookaheadMs, report.NonCausalTaps)
}
