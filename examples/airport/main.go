// Airport: the introduction's "napping at airports may be difficult due to
// continuous overhead announcements" scenario. A PA speaker near the gate
// plays chime-plus-announcement cycles while road traffic murmurs from the
// window side. The relay sits by the PA speaker (the dominant disturbance),
// and LANC's profile switching handles the announcement on/off cycles.
package main

import (
	"fmt"
	"log"

	"mute/internal/acoustics"
	"mute/pkg/mute"
)

func main() {
	const fs = 8000.0

	build := func() mute.Scene {
		pa := mute.Announcement(3, fs, 1.2)
		scene := mute.DefaultScene(pa) // PA at the "door" position, relay beside it
		scene.Sources = append(scene.Sources, mute.Source{
			Pos: acoustics.Point{X: 4.5, Y: 3.5, Z: 1.0}, // window side
			Gen: mute.Traffic(4, fs, 0.25, 15),
		})
		return scene
	}

	fmt.Println("Airport gate: PA announcements + window-side traffic")
	for _, profiling := range []bool{false, true} {
		p := mute.DefaultParams(build())
		p.Duration = 20
		p.Mu = 0.05
		p.Profiling = profiling
		if profiling {
			p.ProfileWindow = 1024
			p.ProfileHop = 256
			p.ProfileThreshold = 0.45
			p.MaxProfiles = 4
		}
		r, err := mute.Run(p, mute.MUTEHollow)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := mute.Summarize(r)
		if err != nil {
			log.Fatal(err)
		}
		label := "single filter     "
		if profiling {
			label = "profile switching "
		}
		fmt.Printf("  %s %s", label, rep)
		if r.Switches > 0 {
			fmt.Printf("  (%d switches)", r.Switches)
		}
		fmt.Println()
	}
	fmt.Println("\nThe nap is saved without earplugs — the ear stays open.")
}
