// Edgeservice: the Figure 10(b) architectural variant — noise cancellation
// as an edge service. One DSP server process receives waveform streams
// from two ceiling relays over UDP, runs a LANC instance per user, and
// reports each user's cancellation. In a deployment the server would send
// anti-noise back over RF; here the acoustic legs are simulated locally so
// the example is self-contained on loopback.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"mute/internal/audio"
	"mute/internal/dsp"
	"mute/pkg/mute"
)

// user is one served listener: a UDP receiver, a LANC instance, and the
// simulated acoustic leg from the relay's sound field to the user's ear.
type user struct {
	name     string
	rx       *mute.Receiver
	lanc     *mute.Canceller
	acoustic *dsp.DelayLine
	channel  *dsp.StreamConvolver
	sec      *dsp.StreamConvolver
	noisePow float64
	resPow   float64
	err      float64
}

func newUser(name string, lookahead int) (*user, error) {
	rx, err := mute.NewReceiver("127.0.0.1:0", 256)
	if err != nil {
		return nil, err
	}
	secPath := []float64{0.85, 0.22, 0.06}
	budget, err := mute.PlanBudget(lookahead, mute.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1})
	if err != nil {
		return nil, err
	}
	lanc, err := mute.NewCanceller(mute.CancellerConfig{
		NonCausalTaps: budget.UsableTaps,
		CausalTaps:    64,
		Mu:            0.1,
		Normalized:    true,
		SecondaryPath: secPath,
	})
	if err != nil {
		return nil, err
	}
	delay, err := dsp.NewDelayLine(lookahead)
	if err != nil {
		return nil, err
	}
	return &user{
		name:     name,
		rx:       rx,
		lanc:     lanc,
		acoustic: delay,
		channel:  dsp.NewStreamConvolver([]float64{0.8, 0.3, 0.12, 0.05}),
		sec:      dsp.NewStreamConvolver(secPath),
	}, nil
}

// serve drains the user's stream for the given duration, running LANC.
func (u *user) serve(d time.Duration) {
	deadline := time.Now().Add(d)
	block := make([]float64, 80)
	for time.Now().Before(deadline) {
		for {
			got, _ := u.rx.Poll(time.Millisecond)
			if !got {
				break
			}
		}
		u.rx.Pop(block)
		for _, x := range block {
			u.lanc.Adapt(u.err)
			u.lanc.Push(x)
			a := u.lanc.AntiNoise()
			dSig := u.channel.Process(u.acoustic.Process(x))
			u.err = dSig + u.sec.Process(a)
			u.noisePow += dSig * dSig
			u.resPow += u.err * u.err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func main() {
	const fs = 8000.0
	users := make([]*user, 0, 2)
	for i, name := range []string{"alice", "bob"} {
		u, err := newUser(name, 48+16*i)
		if err != nil {
			log.Fatal(err)
		}
		users = append(users, u)
		fmt.Printf("edge server: serving %s on %s\n", name, u.rx.Addr())
	}

	// Two ceiling relays stream different ambient sounds to their users.
	sounds := []mute.Generator{
		mute.Babble(3, 3, fs, 0.8),
		mute.MachineHum(4, 150, fs, 0.5),
	}
	var wg sync.WaitGroup
	for i, u := range users {
		tx, err := mute.NewSender(u.rx.Addr(), 80)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(2)
		go func(gen mute.Generator, tx *mute.Sender) {
			defer wg.Done()
			defer tx.Close()
			for f := 0; f < 400; f++ { // 4 seconds of audio
				if err := tx.Send(audio.Render(gen, 80)); err != nil {
					log.Println("send:", err)
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
			tx.Flush()
		}(sounds[i], tx)
		go func(u *user) {
			defer wg.Done()
			u.serve(4500 * time.Millisecond)
		}(u)
	}
	wg.Wait()

	for _, u := range users {
		st := u.rx.Stats()
		fmt.Printf("%s: cancellation %.1f dB (%d frames, %d samples concealed)\n",
			u.name, dsp.DB(u.resPow/(u.noisePow+1e-12)), st.FramesReceived, st.SamplesConcealed)
		u.rx.Close()
	}
}
