// Multirelay: the Figure 19 scenario. Three IoT relays sit around the
// room; as a noise source moves between positions, the MUTE client
// GCC-PHAT-correlates each relay's forwarded stream against what it hears
// locally and associates with the relay offering the largest positive
// lookahead — or none, when the source is nearest the client itself.
package main

import (
	"fmt"
	"log"

	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/internal/dsp"
	"mute/pkg/mute"
)

func main() {
	const fs = 8000.0
	room := mute.DefaultRoom()
	client := acoustics.Point{X: 2.5, Y: 2.0, Z: 1.2}
	relays := []acoustics.Point{
		{X: 0.4, Y: 2.0, Z: 1.5},
		{X: 2.5, Y: 3.6, Z: 1.5},
		{X: 4.6, Y: 0.4, Z: 1.5},
	}
	positions := []struct {
		name string
		pos  acoustics.Point
	}{
		{"near relay 1 (west door)", acoustics.Point{X: 0.7, Y: 2.0, Z: 1.4}},
		{"near relay 2 (north wall)", acoustics.Point{X: 2.5, Y: 3.3, Z: 1.4}},
		{"near relay 3 (southeast)", acoustics.Point{X: 4.2, Y: 0.7, Z: 1.4}},
		{"right beside the client", acoustics.Point{X: 2.6, Y: 1.8, Z: 1.4}},
	}

	for i, pc := range positions {
		wave := audio.Render(audio.NewWhiteNoise(uint64(i+1), fs, 0.5), int(1.5*fs))
		hLocal, err := room.ImpulseResponse(pc.pos, client, fs)
		if err != nil {
			log.Fatal(err)
		}
		local := dsp.ConvolveSame(wave, hLocal)
		var forwarded [][]float64
		for _, rp := range relays {
			h, err := room.ImpulseResponse(pc.pos, rp, fs)
			if err != nil {
				log.Fatal(err)
			}
			forwarded = append(forwarded, dsp.ConvolveSame(wave, h))
		}
		sel, err := mute.SelectRelay(forwarded, local, int(0.012*fs))
		if err != nil {
			log.Fatal(err)
		}
		if sel.Best < 0 {
			fmt.Printf("source %-28s → no relay (every relay hears the sound late)\n", pc.name)
			continue
		}
		top := sel.Reports[0]
		fmt.Printf("source %-28s → relay %d, lookahead %.1f ms\n",
			pc.name, sel.Best+1, float64(top.LagSamples)/fs*1000)
	}
}
