// Office: the paper's motivating scenario in full. Alice's office has a
// corridor talker who speaks in sentences with pauses (the hard,
// intermittent case) over a constant ventilation hum. The example compares
// every scheme and shows LANC's predictive profile switching at work.
package main

import (
	"fmt"
	"log"

	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/pkg/mute"
)

func main() {
	const fs = 8000.0

	build := func() mute.Scene {
		// The corridor talker is the dominant source, at the door.
		talker := audio.NewSentenceSpeech(7, audio.MaleVoice, fs, 1.5)
		scene := mute.DefaultScene(talker)
		// Ventilation hum from the ceiling vent mid-room.
		scene.Sources = append(scene.Sources, mute.Source{
			Pos: acoustics.Point{X: 2.5, Y: 3.4, Z: 2.8},
			Gen: audio.NewMachineHum(8, 120, fs, 0.1, 6),
		})
		return scene
	}

	fmt.Println("Alice's office: corridor speech + ventilation hum")
	for _, scheme := range []mute.Scheme{
		mute.MUTEHollow, mute.MUTEPassive, mute.BoseOverall, mute.PassiveOnly,
	} {
		p := mute.DefaultParams(build())
		p.Duration = 12
		p.Mu = 0.02
		if scheme == mute.MUTEHollow || scheme == mute.MUTEPassive {
			p.Profiling = true
			p.ProfileWindow = 1024
			p.ProfileHop = 256
			p.ProfileThreshold = 0.45
			p.MaxProfiles = 4
		}
		r, err := mute.Run(p, scheme)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := mute.Summarize(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", rep)
		if r.Switches > 0 {
			fmt.Printf("    profile switches: %d (LANC foresaw speech transitions in the lookahead buffer)\n", r.Switches)
		}
	}

	fmt.Println("\nMUTE cancels the corridor conversation without covering Alice's ears.")
}
