// Tabletop: the Figure 10(a) architectural variant. The user carries a
// personal tabletop relay that hosts the reference microphone AND the DSP;
// the ear device becomes a thin client that plays the received anti-noise
// and returns its error-microphone signal. The control loop (anti-noise
// downlink + error uplink) costs latency, which the lookahead budget must
// absorb — this example sweeps that cost.
package main

import (
	"fmt"
	"log"

	"mute/pkg/mute"
)

func main() {
	const fs = 8000.0
	fmt.Println("Personal tabletop relay (Figure 10(a)): control-loop latency sweep")
	for _, loopSamples := range []int{0, 8, 48, 120} {
		p := mute.DefaultParams(mute.DefaultScene(mute.WhiteNoise(1, fs, 0.5)))
		p.Duration = 8
		r, err := mute.RunVariant(mute.VariantParams{
			Base:                    p,
			Variant:                 mute.Tabletop,
			ControlLoopDelaySamples: loopSamples,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := mute.Summarize(r)
		if err != nil {
			log.Fatal(err)
		}
		loopMs := float64(loopSamples) / fs * 1000
		fmt.Printf("  loop %5.1f ms: %s\n", loopMs, rep)
	}

	// Smart noise (Figure 10(c)): the relay rides on the noise source.
	p := mute.DefaultParams(mute.DefaultScene(mute.WhiteNoise(1, fs, 0.5)))
	p.Duration = 8
	r, err := mute.RunVariant(mute.VariantParams{Base: p, Variant: mute.SmartNoise})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := mute.Summarize(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSmart noise (relay on the source): %s\n", rep)
	fmt.Println("maximal lookahead — the best case the architecture allows")
}
