// Package repro_test is the top-level benchmark harness: one testing.B
// benchmark per table/figure of the paper's evaluation. Each benchmark
// regenerates its experiment end to end on the simulator and reports the
// headline numbers as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Per-module micro-benchmarks (FFT,
// convolution, FxLMS, LANC step, FM link, GCC-PHAT) live in their
// packages.
package repro_test

import (
	"testing"

	"mute/internal/experiments"
)

// benchCfg keeps full-evaluation benchmarks at a few seconds per run.
func benchCfg() experiments.Config {
	return experiments.Config{Duration: 8}
}

// reportBandAvg attaches a figure's series band averages as custom
// benchmark metrics (dB, reported negative = cancellation).
func reportBandAvg(b *testing.B, fig *experiments.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		var sum float64
		for _, y := range s.Y {
			sum += y
		}
		if len(s.Y) > 0 {
			b.ReportMetric(sum/float64(len(s.Y)), "avg:"+sanitize(s.Name))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '/' || r == '(' || r == ')':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

func runFig(b *testing.B, id string) {
	b.Helper()
	fn, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = fn(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	if fig != nil {
		reportBandAvg(b, fig)
		for _, n := range fig.Notes {
			b.Logf("%s: %s", id, n)
		}
	}
}

// BenchmarkFig8Convergence regenerates the Figure 8 convergence timelines
// (continuous noise vs intermittent speech vs profiled speech).
func BenchmarkFig8Convergence(b *testing.B) { runFig(b, "fig8") }

// BenchmarkFig12OverallCancellation regenerates Figure 12: the four-scheme
// cancellation comparison under wide-band white noise.
func BenchmarkFig12OverallCancellation(b *testing.B) { runFig(b, "fig12") }

// BenchmarkFig13FrequencyResponse regenerates Figure 13: the cheap
// speaker+microphone combined frequency response.
func BenchmarkFig13FrequencyResponse(b *testing.B) { runFig(b, "fig13") }

// BenchmarkFig14SoundTypes regenerates Figure 14: MUTE_Hollow vs
// Bose_Overall on male/female voice, construction sound and music.
func BenchmarkFig14SoundTypes(b *testing.B) { runFig(b, "fig14") }

// BenchmarkFig15HumanExperience regenerates Figure 15: simulated listener
// ratings of MUTE+Passive vs Bose_Overall.
func BenchmarkFig15HumanExperience(b *testing.B) { runFig(b, "fig15") }

// BenchmarkFig16LookaheadImpact regenerates Figure 16: cancellation as the
// delayed-line buffer shrinks lookahead toward the Equation 3 lower bound.
func BenchmarkFig16LookaheadImpact(b *testing.B) { runFig(b, "fig16") }

// BenchmarkFig17Profiling regenerates Figure 17: the additional
// cancellation from lookahead-enabled filter switching.
func BenchmarkFig17Profiling(b *testing.B) { runFig(b, "fig17") }

// BenchmarkFig18GCCPHAT regenerates Figure 18: GCC-PHAT correlation for
// positive- and negative-lookahead relay placements.
func BenchmarkFig18GCCPHAT(b *testing.B) { runFig(b, "fig18") }

// BenchmarkFig19RelaySelection regenerates Figure 19: the multi-relay
// association map over a grid of source positions.
func BenchmarkFig19RelaySelection(b *testing.B) { runFig(b, "fig19") }

// BenchmarkLookaheadTable regenerates the Equation 4 lookahead-vs-distance
// table (1 m ≈ 3 ms).
func BenchmarkLookaheadTable(b *testing.B) { runFig(b, "lookahead") }

// BenchmarkAblationTaps sweeps LANC's non-causal tap count N.
func BenchmarkAblationTaps(b *testing.B) { runFig(b, "ablation-taps") }

// BenchmarkAblationFMSNR sweeps the FM channel SNR.
func BenchmarkAblationFMSNR(b *testing.B) { runFig(b, "ablation-fmsnr") }

// BenchmarkAblationMu sweeps LANC's adaptation step on intermittent speech.
func BenchmarkAblationMu(b *testing.B) { runFig(b, "ablation-nlms") }

// BenchmarkVariants compares the Section 4.3 architectural variants
// (wall relay, tabletop, smart noise).
func BenchmarkVariants(b *testing.B) { runFig(b, "variants") }

// BenchmarkMobility measures the head-mobility tracking cost of Section 6.
func BenchmarkMobility(b *testing.B) { runFig(b, "mobility") }

// BenchmarkContention quantifies ISM-band occupancy and co-channel
// interference (Section 6).
func BenchmarkContention(b *testing.B) { runFig(b, "contention") }

// BenchmarkTracker exercises the Section 4.2 periodic re-correlation
// following a moving source.
func BenchmarkTracker(b *testing.B) { runFig(b, "tracker") }

// BenchmarkMultiSource compares single vs multi-reference LANC on two
// simultaneous noise sources (the paper's Section 6 future work).
func BenchmarkMultiSource(b *testing.B) { runFig(b, "multisource") }

// BenchmarkAblationRLS compares NLMS and RLS tracking across an abrupt
// channel change (the head-mobility mitigation the paper cites).
func BenchmarkAblationRLS(b *testing.B) { runFig(b, "ablation-rls") }
