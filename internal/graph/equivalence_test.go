package graph_test

import (
	"math"
	"reflect"
	"testing"

	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
	"mute/internal/graph"
	"mute/internal/stream"
	"mute/internal/telemetry"
)

// jbBuffer adapts a bare in-process JitterBuffer to the FrameBuffer face a
// live receiver presents (the network receiver adds FEC; the buffer alone
// recovers nothing).
type jbBuffer struct{ *stream.JitterBuffer }

func (jbBuffer) Recovered() uint64 { return 0 }

// equivCase is one frame schedule driven through both instantiations.
type equivCase struct {
	name      string
	dropFrame int // -1 = deliver everything
	supervise bool
}

// TestCrossWiringEquivalence is the dual-wiring regression test the graph
// package exists for: the simulator's instantiation (pre-rendered slices)
// and the live CLI's instantiation (jitter-buffered receiver source plus
// the derived acoustic leg) of the same Config must produce bit-identical
// residuals and identical trace events, clean and under frame loss, with
// and without the supervisor. Before the unification these were two
// hand-maintained loops that could — and did — drift apart.
func TestCrossWiringEquivalence(t *testing.T) {
	for _, tc := range []equivCase{
		{name: "clean", dropFrame: -1},
		{name: "dropped frame", dropFrame: 30},
		{name: "dropped frame supervised", dropFrame: 30, supervise: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const (
				frameN = 40
				frames = 100
				total  = frameN * frames
			)
			rng := audio.NewRNG(7)
			signal := make([]float64, total)
			for i := range signal {
				signal[i] = 0.4*math.Sin(2*math.Pi*180*float64(i)/8000) + 0.1*rng.Norm()
			}

			// The live wiring drains a jitter buffer; the sim wiring replays
			// the same transport offline into slices. Feed both buffers the
			// identical frame schedule so any divergence is wiring, not data.
			recv := make([]float64, total)
			mask := make([]bool, total)
			jbA := pushSchedule(t, signal, frameN, frames, tc.dropFrame)
			for off := 0; off < total; off += frameN {
				jbA.PopMask(recv[off:off+frameN], mask[off:off+frameN])
			}
			jbB := pushSchedule(t, signal, frameN, frames, tc.dropFrame)

			// The sim wiring pre-renders the acoustic leg the live wiring
			// derives on the fly: the received stream, delayed and shaped.
			const lookahead = 64
			earChannel := []float64{0.8, 0.25, 0.1, 0.05}
			dl, err := dsp.NewDelayLine(lookahead)
			if err != nil {
				t.Fatal(err)
			}
			cv := dsp.NewStreamConvolver(earChannel)
			ambient := make([]float64, total)
			for i, x := range recv {
				ambient[i] = cv.Process(dl.Process(x))
			}
			dlLive, err := dsp.NewDelayLine(lookahead)
			if err != nil {
				t.Fatal(err)
			}

			base := func() graph.Config {
				secPath := []float64{0.85, 0.22, 0.06}
				cfg := graph.Config{
					SampleRate: 8000,
					Lookahead:  lookahead,
					Pipeline:   core.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1},
					Canceller: graph.CancellerParams{
						CausalTaps:    64,
						Mu:            0.1,
						SecondaryPath: secPath,
						LossAware:     true,
					},
					SecondaryIR: secPath,
					TraceBlock:  frameN,
				}
				if tc.supervise {
					cfg.Supervise = true
					cfg.FallbackSecondary = secPath
				}
				return cfg
			}

			simCfg := base()
			simCfg.Reference = &graph.SliceSource{Samples: recv, Mask: mask}
			simCfg.Ambient = &graph.SliceAmbient{Local: ambient, Cup: ambient}
			simRes, simTrace := runWiring(t, simCfg, total, frameN)

			liveCfg := base()
			liveCfg.Reference = &graph.ReceiverSource{Buf: jbBuffer{jbB}}
			liveCfg.Ambient = &graph.DerivedAmbient{Delay: dlLive, Channel: dsp.NewStreamConvolver(earChannel)}
			liveRes, liveTrace := runWiring(t, liveCfg, total, frameN)

			for i := range simRes {
				if simRes[i] != liveRes[i] {
					t.Fatalf("residuals diverge at sample %d: sim %v, live %v", i, simRes[i], liveRes[i])
				}
			}
			if !reflect.DeepEqual(simTrace, liveTrace) {
				t.Fatalf("trace events diverge: sim recorded %d events, live %d", len(simTrace), len(liveTrace))
			}
			if len(simTrace) == 0 {
				t.Fatal("no trace events recorded")
			}

			// Sanity: the loss variants really exercised concealment.
			if tc.dropFrame >= 0 {
				gap := tc.dropFrame * frameN
				for i := gap; i < gap+frameN; i++ {
					if mask[i] {
						t.Fatalf("sample %d in the dropped frame is unmasked", i)
					}
				}
			}
		})
	}
}

// pushSchedule fills a jitter buffer with the frame schedule, skipping
// dropFrame (-1 = none).
func pushSchedule(t *testing.T, signal []float64, frameN, frames, dropFrame int) *stream.JitterBuffer {
	t.Helper()
	jb, err := stream.NewJitterBuffer(frames + 8)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < frames; k++ {
		if k == dropFrame {
			continue
		}
		payload := make([]float64, frameN)
		copy(payload, signal[k*frameN:(k+1)*frameN])
		jb.Push(&stream.Frame{
			Seq:       uint32(k),
			Timestamp: uint64(k * frameN),
			Samples:   payload,
		})
	}
	return jb
}

// runWiring builds and drives one instantiation, returning its residual
// stream and trace events.
func runWiring(t *testing.T, cfg graph.Config, total, block int) ([]float64, []telemetry.Event) {
	t.Helper()
	residual := make([]float64, total)
	tr := telemetry.NewTrace()
	cfg.Residual = residual
	cfg.Trace = tr
	pl, err := graph.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(total, block); err != nil {
		t.Fatal(err)
	}
	if pl.Samples() != int64(total) {
		t.Fatalf("wiring processed %d samples, want %d", pl.Samples(), total)
	}
	return residual, tr.Events()
}
