package graph

import (
	"mute/internal/dsp"
	"mute/internal/stream"
)

// SliceSource serves a pre-rendered reference stream (and optional
// concealment mask) from memory — the simulator's binding, where the
// transport has already been replayed offline. With a nil Mask every
// sample is real.
type SliceSource struct {
	Samples []float64
	Mask    []bool
	pos     int
}

// Pull copies the next block of samples; the returned count is short at
// the end of the stream.
func (s *SliceSource) Pull(dst []float64, mask []bool, _ int64) int {
	n := copy(dst, s.Samples[s.pos:])
	if s.Mask != nil {
		copy(mask[:n], s.Mask[s.pos:s.pos+n])
	} else {
		for i := range mask[:n] {
			mask[i] = true
		}
	}
	s.pos += n
	return n
}

// SliceAmbient serves pre-rendered acoustics from memory: the open-ear
// field and the under-cup field at each sample index — the simulator's
// room-model binding.
type SliceAmbient struct {
	Local []float64
	Cup   []float64
	pos   int
}

// Next returns the coincident ambient pair and advances.
func (a *SliceAmbient) Next(_ float64) (local, cup float64) {
	local, cup = a.Local[a.pos], a.Cup[a.pos]
	a.pos++
	return
}

// DerivedAmbient synthesizes the acoustic leg from the reference itself —
// the live demo's binding: the wavefront whose sound the radio forwarded
// arrives Delay samples later, shaped by a small multipath Channel. The
// open-ear and under-cup fields coincide (the live demo wears no cup).
type DerivedAmbient struct {
	Delay   *dsp.DelayLine
	Channel *dsp.StreamConvolver
}

// Next derives the ambient sample from the current reference sample.
func (a *DerivedAmbient) Next(x float64) (local, cup float64) {
	d := a.Channel.Process(a.Delay.Process(x))
	return d, d
}

// FrameBuffer is the jitter-buffer face a live reference source drains:
// the network Receiver satisfies it, and tests substitute an in-process
// JitterBuffer.
type FrameBuffer interface {
	// PopMask drains ordered samples plus the concealment mask.
	PopMask(dst []float64, mask []bool) int
	// Stats returns the jitter-buffer counters.
	Stats() stream.JitterStats
	// Buffered returns the frames waiting in the buffer.
	Buffered() int
	// Recovered returns how many lost frames FEC reconstructed.
	Recovered() uint64
}

// ReceiverSource adapts a jitter-buffered frame stream to a pulled
// sample source. Missing samples surface as concealed (mask false)
// zeros, so the pull always fills the block — a live pipeline never
// stalls on the network.
type ReceiverSource struct {
	Buf FrameBuffer
}

// Pull drains one block from the jitter buffer.
func (s *ReceiverSource) Pull(dst []float64, mask []bool, _ int64) int {
	s.Buf.PopMask(dst, mask)
	return len(dst)
}

// Close forwards Pipeline.Close to the frame buffer when it owns a
// closable resource (a pooled session buffer, a network receiver): the
// buffer must get the chance to hand retained frames back to their pool.
func (s *ReceiverSource) Close() error {
	if c, ok := s.Buf.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Stats implements StreamStats for the per-block live hooks.
func (s *ReceiverSource) Stats() stream.JitterStats { return s.Buf.Stats() }

// Buffered implements StreamStats.
func (s *ReceiverSource) Buffered() int { return s.Buf.Buffered() }

// Recovered implements StreamStats.
func (s *ReceiverSource) Recovered() uint64 { return s.Buf.Recovered() }

// DriftSource slaves an inner reference source to the local sample
// clock: jitter-buffer output is consumed at the estimated relay rate
// (1 + ppm·1e-6 input samples per output sample) through a continuous-
// rate resampler. Until the estimator locks, the rate stays exactly 1
// and the resampler is a bit-exact passthrough. The rate is re-steered
// once per pulled block, matching the estimator's frame-grained view.
type DriftSource struct {
	Inner SampleSource
	Est   *stream.DriftEstimator
	RS    *dsp.VariRateResampler

	v [1]float64
	m [1]bool
}

// Pull produces one consumer-clock block.
func (s *DriftSource) Pull(dst []float64, mask []bool, start int64) int {
	if s.Est.Locked() {
		s.RS.SetRate(1 + s.Est.PPM()*1e-6)
	}
	for i := range dst {
		for !s.RS.Ready() {
			s.Inner.Pull(s.v[:], s.m[:], start+int64(i))
			s.RS.Push(s.v[0], s.m[0])
		}
		dst[i], mask[i], _ = s.RS.Pop()
	}
	return len(dst)
}

// DriftState implements DriftStats for the per-block live hooks.
func (s *DriftSource) DriftState() (estPPM, rawPPM, ratePPM float64, locked bool) {
	return s.Est.PPM(), s.Est.RawPPM(), (s.RS.Rate() - 1) * 1e6, s.Est.Locked()
}

// Stats forwards StreamStats from the wrapped source (zero counters when
// it has none), so stacking the drift stage keeps the jitter counters
// observable.
func (s *DriftSource) Stats() stream.JitterStats {
	if ss, ok := s.Inner.(StreamStats); ok {
		return ss.Stats()
	}
	return stream.JitterStats{}
}

// Buffered forwards StreamStats.
func (s *DriftSource) Buffered() int {
	if ss, ok := s.Inner.(StreamStats); ok {
		return ss.Buffered()
	}
	return 0
}

// Recovered forwards StreamStats.
func (s *DriftSource) Recovered() uint64 {
	if ss, ok := s.Inner.(StreamStats); ok {
		return ss.Recovered()
	}
	return 0
}
