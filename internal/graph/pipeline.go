package graph

import (
	"fmt"
	"time"

	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
	"mute/internal/headphone"
	"mute/internal/stream"
	"mute/internal/supervisor"
	"mute/internal/telemetry"
)

// CancellerParams is the canceller-policy slice of the pipeline
// configuration: the tuning a caller legitimately varies. Everything
// else about the canceller — leakage, the non-causal tap count (planned
// from the lookahead budget), the sample rate — is fixed by Build, so a
// policy constant cannot fork between deployments.
type CancellerParams struct {
	// CausalTaps is LANC's causal filter length L.
	CausalTaps int
	// Mu is the adaptation step size.
	Mu float64
	// PlainLMS disables NLMS power normalization (the paper's prototype).
	PlainLMS bool
	// SecondaryPath is the estimated speaker→error-mic chain ĥ_se.
	SecondaryPath []float64
	// LossAware gates adaptation on the concealment mask.
	LossAware bool
	// RecoveryRamp is the post-gap re-ramp length in samples (0 = core
	// default).
	RecoveryRamp int
	// Profiling enables predictive filter switching; the remaining fields
	// tune it (0 = core defaults).
	Profiling        bool
	ProfileWindow    int
	ProfileHop       int
	ProfileThreshold float64
	MaxProfiles      int
}

// FDAFParams selects the partitioned frequency-domain canceller instead
// of the sample-by-sample LANC: anti-noise is produced in blocks of
// BlockSize samples, spending BlockSize−1 samples of lookahead on block
// latency.
type FDAFParams struct {
	// BlockSize is the FDAF block size B in samples (power of two).
	BlockSize int
	// Mu is the per-bin normalized step.
	Mu float64
}

// Config wires one cancellation pipeline. The required bindings are the
// sample-clock inputs (Reference, Ambient) and the lookahead geometry;
// everything else — supervisor, drift control, trace, telemetry, output
// taps — is optional and nil-safe.
type Config struct {
	// SampleRate is the pipeline clock in Hz.
	SampleRate float64
	// Lookahead is the acoustic lookahead in samples the wireless leg
	// provides — the budget every downstream stage spends from.
	Lookahead int
	// PrimeSamples is the playout buffering the packetized transport
	// already consumed (0 for a live receiver, whose jitter buffer primes
	// on the wire).
	PrimeSamples int
	// ExtraReferenceDelay is the deliberate delayed-line injection
	// (Figure 16) in samples.
	ExtraReferenceDelay int
	// DriftGuard is the drift resampler's interpolation future (2 when a
	// real skew is being corrected, else 0).
	DriftGuard int
	// Pipeline is the ear device's ADC/DSP/DAC/speaker latency
	// (Equation 3).
	Pipeline core.PipelineDelays
	// MaxNonCausalTaps caps the planned N regardless of lookahead
	// (0 = no cap).
	MaxNonCausalTaps int
	// Canceller is the sample-domain canceller policy.
	Canceller CancellerParams
	// FDAF, when non-nil, replaces the sample-domain canceller with the
	// block frequency-domain one. Incompatible with Supervise and Drift.
	FDAF *FDAFParams

	// Supervise runs the canceller under the degradation ladder.
	Supervise bool
	// SupervisorConfig overrides the ladder tuning (nil = defaults). Its
	// Trace field is managed by Build.
	SupervisorConfig *supervisor.Config
	// FallbackSecondary is the secondary-path estimate the ladder's local
	// fallback canceller is built around (required when Supervise).
	FallbackSecondary []float64

	// Reference is the pulled reference input (required).
	Reference SampleSource
	// Ambient is the acoustic leg (required).
	Ambient Ambient
	// Drift is the optional clock-drift control stage.
	Drift DriftControl

	// SecondaryIR is the true speaker→error-mic impulse response the
	// anti-noise physically traverses (required).
	SecondaryIR []float64
	// NoiseRMS adds error-microphone self-noise of this RMS, drawn from
	// Noise.
	NoiseRMS float64
	// Noise is the self-noise generator (required when NoiseRMS != 0).
	Noise *audio.RNG

	// On, when non-nil, receives the measured (pre-sensor-noise) signal
	// at each sample index; Residual likewise receives the
	// error-microphone signal. Both must cover the samples processed.
	On       []float64
	Residual []float64

	// Trace, when non-nil, receives budget entries at Build and
	// canceller/supervisor state on the TraceBlock cadence.
	Trace *telemetry.Trace
	// TraceBlock is the trace cadence in samples (0 = 512).
	TraceBlock int
	// LiveHooks additionally emits per-block stream/drift/residual trace
	// events and registry gauges after every processed block — the live
	// CLI's observability. Simulation runs leave it off; their levels are
	// derived post-run from the recorded streams.
	LiveHooks bool
	// Telemetry, when non-nil, receives pipeline counters and gauges.
	Telemetry *telemetry.Registry
}

// StreamStats is implemented by reference sources backed by a jitter
// buffer (the live receiver); the per-block live hooks read it for the
// stream-stage trace events and gauges.
type StreamStats interface {
	Stats() stream.JitterStats
	Buffered() int
	Recovered() uint64
}

// DriftStats is implemented by drift-correcting sources; the per-block
// live hooks read it for the drift-stage trace events and gauges.
type DriftStats interface {
	DriftState() (estPPM, rawPPM, ratePPM float64, locked bool)
}

// Pipeline is a built cancellation graph. Exported fields are the wired
// stages, fixed at Build; drive the graph with ProcessBlock or Run.
type Pipeline struct {
	// LANC is the sample-domain canceller (nil on the FDAF path).
	LANC *core.LANC
	// Sup is the degradation-ladder supervisor (nil unless Supervise).
	Sup *supervisor.Supervisor
	// FDAF is the block canceller (nil on the sample path).
	FDAF *core.BlockLANC
	// Budget is the lookahead budget the canceller was planned with.
	Budget core.Budget
	// Spend itemizes where the lookahead went (recorded into the trace
	// at Build).
	Spend *telemetry.BudgetReport
	// NonCausalTaps is the N the canceller actually runs with.
	NonCausalTaps int

	ref   SampleSource
	amb   Ambient
	drift DriftControl
	sec   *dsp.StreamConvolver

	noiseRMS float64
	noise    *audio.RNG

	on       []float64
	residual []float64

	trace      *telemetry.Trace
	traceEvery int64
	liveHooks  bool

	reg       *telemetry.Registry
	ctrSample *telemetry.Counter
	gTapE     *telemetry.Gauge
	gBuffered *telemetry.Gauge
	gEstPPM   *telemetry.Gauge
	gRatePPM  *telemetry.Gauge
	blockNS   *telemetry.Histogram

	streamStats StreamStats
	driftStats  DriftStats

	fdafSize int
	x, a, eb []float64
	m        []bool

	t        int64
	e        float64
	noisePow float64
	resPow   float64
}

// Build plans the lookahead budget and assembles the pipeline. This is
// the one place the cancellation stages are wired: the simulator and the
// live CLIs differ only in the sources, controls, and hooks they bind.
func Build(cfg Config) (*Pipeline, error) {
	if cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("graph: sample rate %g must be positive", cfg.SampleRate)
	}
	if cfg.Reference == nil {
		return nil, fmt.Errorf("graph: a Reference source is required")
	}
	if cfg.Ambient == nil {
		return nil, fmt.Errorf("graph: an Ambient leg is required")
	}
	if len(cfg.SecondaryIR) == 0 {
		return nil, fmt.Errorf("graph: a SecondaryIR is required")
	}
	if cfg.NoiseRMS != 0 && cfg.Noise == nil {
		return nil, fmt.Errorf("graph: NoiseRMS set without a Noise generator")
	}
	if cfg.FDAF != nil && (cfg.Supervise || cfg.Drift != nil) {
		return nil, fmt.Errorf("graph: the FDAF path is incompatible with the supervisor and drift control")
	}
	blockLat := 0
	if cfg.FDAF != nil {
		blockLat = cfg.FDAF.BlockSize - 1
	}
	la := cfg.Lookahead - cfg.ExtraReferenceDelay - cfg.PrimeSamples - cfg.DriftGuard - blockLat
	if la < 0 {
		la = 0
	}
	budget, err := core.NewBudget(la, cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	nTaps := budget.UsableTaps
	if cfg.MaxNonCausalTaps > 0 && nTaps > cfg.MaxNonCausalTaps {
		nTaps = cfg.MaxNonCausalTaps
	}
	traceEvery := int64(cfg.TraceBlock)
	if traceEvery <= 0 {
		traceEvery = 512
	}
	pl := &Pipeline{
		Budget:        budget,
		NonCausalTaps: nTaps,
		ref:           cfg.Reference,
		amb:           cfg.Ambient,
		drift:         cfg.Drift,
		sec:           dsp.NewStreamConvolver(cfg.SecondaryIR),
		noiseRMS:      cfg.NoiseRMS,
		noise:         cfg.Noise,
		on:            cfg.On,
		residual:      cfg.Residual,
		trace:         cfg.Trace,
		traceEvery:    traceEvery,
		liveHooks:     cfg.LiveHooks,
		reg:           cfg.Telemetry,
	}
	pl.Spend = Plan(cfg.SampleRate, cfg.Lookahead, cfg.PrimeSamples, cfg.ExtraReferenceDelay,
		cfg.DriftGuard, blockLat, cfg.Pipeline, nTaps)
	pl.Spend.Record(cfg.Trace)

	if cfg.FDAF != nil {
		bl, err := core.NewBlock(core.BlockConfig{
			FilterTaps:    cfg.Canceller.CausalTaps + nTaps,
			BlockSize:     cfg.FDAF.BlockSize,
			Mu:            cfg.FDAF.Mu,
			SecondaryPath: cfg.Canceller.SecondaryPath,
			NonCausalTaps: nTaps,
		})
		if err != nil {
			return nil, err
		}
		pl.FDAF = bl
		pl.fdafSize = cfg.FDAF.BlockSize
		pl.x = make([]float64, pl.fdafSize)
		pl.a = make([]float64, pl.fdafSize)
		pl.eb = make([]float64, pl.fdafSize)
		pl.m = make([]bool, pl.fdafSize)
		if cfg.Telemetry != nil {
			pl.blockNS = cfg.Telemetry.Histogram("lanc.block_ns",
				telemetry.HistogramOpts{Lo: 1e3, Ratio: 2, Buckets: 20})
		}
	} else {
		c := cfg.Canceller
		lanc, err := core.New(core.Config{
			NonCausalTaps:    nTaps,
			CausalTaps:       c.CausalTaps,
			Mu:               c.Mu,
			Normalized:       !c.PlainLMS,
			Leak:             0.0005,
			SecondaryPath:    c.SecondaryPath,
			Profiling:        c.Profiling,
			ProfileWindow:    c.ProfileWindow,
			ProfileHop:       c.ProfileHop,
			ProfileThreshold: c.ProfileThreshold,
			MaxProfiles:      c.MaxProfiles,
			SampleRate:       cfg.SampleRate,
			LossAware:        c.LossAware,
			RecoveryRamp:     c.RecoveryRamp,
		})
		if err != nil {
			return nil, err
		}
		pl.LANC = lanc
		if cfg.Supervise {
			// The fallback is the Bose-class local canceller: its reference
			// microphone hears the open-ear field, and its physical latency
			// is already inside SecondaryIR via the shared chain.
			hcfg := headphone.DefaultConfig(cfg.SampleRate, cfg.FallbackSecondary)
			hcfg.PipelineDelaySamples = 0
			fb, err := headphone.NewANC(hcfg)
			if err != nil {
				return nil, err
			}
			scfg := supervisor.DefaultConfig()
			if cfg.SupervisorConfig != nil {
				scfg = *cfg.SupervisorConfig
			}
			scfg.Trace = cfg.Trace
			sup, err := supervisor.New(scfg, lanc, fb)
			if err != nil {
				return nil, err
			}
			pl.Sup = sup
		}
	}

	if cfg.LiveHooks {
		if ss, ok := cfg.Reference.(StreamStats); ok {
			pl.streamStats = ss
		}
		if ds, ok := cfg.Reference.(DriftStats); ok {
			pl.driftStats = ds
		}
		if cfg.Telemetry != nil {
			pl.ctrSample = cfg.Telemetry.Counter("pipeline.samples")
			pl.gTapE = cfg.Telemetry.Gauge("lanc.tap_energy")
			if pl.streamStats != nil {
				pl.gBuffered = cfg.Telemetry.Gauge("stream.buffered_frames")
			}
			if pl.driftStats != nil {
				pl.gEstPPM = cfg.Telemetry.Gauge("drift.est_ppm")
				pl.gRatePPM = cfg.Telemetry.Gauge("drift.rate_ppm")
			}
		}
	}
	return pl, nil
}

// ProcessBlock pulls and cancels up to n reference samples, returning how
// many the source produced (0 at end of stream). On the FDAF path the
// block size is fixed at Build and n is ignored.
func (pl *Pipeline) ProcessBlock(n int) (int, error) {
	if pl.FDAF != nil {
		return pl.processFDAFBlock()
	}
	if n <= 0 {
		return 0, fmt.Errorf("graph: block size %d must be positive", n)
	}
	if len(pl.x) < n {
		pl.x = make([]float64, n)
		pl.m = make([]bool, n)
	}
	x, m := pl.x[:n], pl.m[:n]
	got := pl.ref.Pull(x, m, pl.t)
	if got <= 0 {
		return 0, nil
	}
	ctl := Controls{pl}
	var blockRes float64
	for i := 0; i < got; i++ {
		if pl.drift != nil {
			pl.drift.Tick(pl.t, ctl)
		}
		if pl.trace != nil && pl.t%pl.traceEvery == 0 {
			pl.traceCancelState()
		}
		local, cup := pl.amb.Next(x[i])
		var a float64
		if pl.Sup != nil {
			a = pl.Sup.Step(x[i], local, pl.e, m[i])
		} else {
			a = pl.LANC.StepMasked(x[i], pl.e, m[i])
		}
		meas := cup + pl.sec.Process(a)
		if pl.on != nil {
			pl.on[pl.t] = meas
		}
		e := meas
		if pl.noiseRMS != 0 {
			e += pl.noiseRMS * pl.noise.Norm()
		}
		if pl.residual != nil {
			pl.residual[pl.t] = e
		}
		pl.e = e
		pl.noisePow += cup * cup
		pl.resPow += e * e
		blockRes += e * e
		pl.t++
	}
	pl.afterBlock(got, blockRes)
	return got, nil
}

// processFDAFBlock runs one fixed-size block through the frequency-domain
// canceller: anti-noise for the whole block first, then the acoustic mix
// sample by sample, with the measured errors feeding the next block's
// adaptation. A short source block is zero-padded exactly as the
// canceller expects.
func (pl *Pipeline) processFDAFBlock() (int, error) {
	b := pl.fdafSize
	got := pl.ref.Pull(pl.x, pl.m, pl.t)
	if got <= 0 {
		return 0, nil
	}
	for i := got; i < b; i++ {
		pl.x[i] = 0
	}
	blockStart := time.Now()
	if err := pl.FDAF.ProcessBlockInto(pl.a, pl.x, pl.eb); err != nil {
		return 0, err
	}
	if pl.blockNS != nil {
		pl.blockNS.Observe(float64(time.Since(blockStart).Nanoseconds()))
	}
	var blockRes float64
	for i := 0; i < got; i++ {
		_, cup := pl.amb.Next(pl.x[i])
		meas := cup + pl.sec.Process(pl.a[i])
		if pl.on != nil {
			pl.on[pl.t] = meas
		}
		e := meas
		if pl.noiseRMS != 0 {
			e += pl.noiseRMS * pl.noise.Norm()
		}
		if pl.residual != nil {
			pl.residual[pl.t] = e
		}
		pl.eb[i] = e
		pl.noisePow += cup * cup
		pl.resPow += e * e
		blockRes += e * e
		pl.t++
	}
	for i := got; i < b; i++ {
		pl.eb[i] = 0
	}
	pl.afterBlock(got, blockRes)
	return got, nil
}

// Run drives the pipeline for total samples in blocks of block samples
// (0 = the trace cadence, or the FDAF block size). It stops early if the
// source dries up.
func (pl *Pipeline) Run(total, block int) error {
	if pl.FDAF != nil {
		block = pl.fdafSize
	} else if block <= 0 {
		block = int(pl.traceEvery)
	}
	for done := 0; done < total; {
		n := block
		if total-done < n {
			n = total - done
		}
		got, err := pl.ProcessBlock(n)
		if err != nil {
			return err
		}
		if got == 0 {
			return nil
		}
		done += got
	}
	return nil
}

// Samples returns how many samples the pipeline has processed.
func (pl *Pipeline) Samples() int64 { return pl.t }

// Close tears the pipeline down: block scratch buffers are released, and
// any bound stage that owns an external resource — a source draining a
// network receiver, an ambient leg holding pooled state — is closed via
// its io.Closer face. A session server opening and closing thousands of
// pipelines per hour must not accrete per-session scratch; everything a
// Build allocated is droppable after Close. Close is idempotent; the
// pipeline must not be driven afterwards. The first stage close error
// wins, but every stage is still closed.
func (pl *Pipeline) Close() error {
	pl.x, pl.a, pl.eb, pl.m = nil, nil, nil, nil
	var first error
	for _, stage := range []any{pl.ref, pl.amb, pl.drift} {
		if c, ok := stage.(interface{ Close() error }); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	pl.ref, pl.amb, pl.drift = nil, nil, nil
	return first
}

// Meters returns the accumulated ambient (under-cup) and residual powers
// — the live CLI's end-of-run cancellation figure.
func (pl *Pipeline) Meters() (noisePow, resPow float64) {
	return pl.noisePow, pl.resPow
}

// traceCancelState records the canceller's observable state at a trace
// cadence boundary: effective step size, tap energy, the loss-aware
// posture, and (when supervised) the ladder state. All reads — the run's
// samples are unchanged.
func (pl *Pipeline) traceCancelState() {
	gain, frozen, rampLeft := pl.LANC.LossState()
	fz := 0.0
	if frozen {
		fz = 1
	}
	pl.trace.Record(pl.t, telemetry.StageLANC, "step", map[string]float64{
		"mu_eff":     pl.LANC.EffectiveStep(),
		"tap_energy": pl.LANC.TapEnergy(),
		"gain":       gain,
		"frozen":     fz,
		"ramp_left":  float64(rampLeft),
	})
	if pl.Sup != nil {
		pl.Sup.TraceState(pl.trace, pl.t)
	}
}

// afterBlock emits the live per-block observability: stream/drift/
// residual trace events on the sample clock and registry gauges. It is
// a no-op unless LiveHooks was set.
func (pl *Pipeline) afterBlock(got int, blockRes float64) {
	if !pl.liveHooks {
		return
	}
	if pl.trace != nil {
		if ss := pl.streamStats; ss != nil {
			st := ss.Stats()
			pl.trace.Record(pl.t, telemetry.StageStream, "jitter", map[string]float64{
				"frames_received":   float64(st.FramesReceived),
				"frames_late":       float64(st.FramesLate),
				"frames_dropped":    float64(st.FramesDropped),
				"samples_concealed": float64(st.SamplesConcealed),
				"fec_recovered":     float64(ss.Recovered()),
			})
			pl.trace.Record(pl.t, telemetry.StageLookahead, "occupancy", map[string]float64{
				"frames": float64(ss.Buffered()),
			})
		}
		if ds := pl.driftStats; ds != nil {
			est, raw, rate, locked := ds.DriftState()
			lv := 0.0
			if locked {
				lv = 1
			}
			pl.trace.Record(pl.t, telemetry.StageDrift, "estimator", map[string]float64{
				"est_ppm":  est,
				"raw_ppm":  raw,
				"rate_ppm": rate,
				"locked":   lv,
			})
		}
		pl.trace.Record(pl.t, telemetry.StageResidual, "block", map[string]float64{
			"power": blockRes / float64(got),
		})
	}
	if pl.reg == nil {
		return
	}
	if pl.ctrSample != nil {
		pl.ctrSample.Add(int64(got))
	}
	if pl.gTapE != nil && pl.LANC != nil {
		pl.gTapE.Set(pl.LANC.TapEnergy())
	}
	if pl.gBuffered != nil {
		pl.gBuffered.Set(float64(pl.streamStats.Buffered()))
	}
	if pl.driftStats != nil && pl.gEstPPM != nil {
		est, _, rate, _ := pl.driftStats.DriftState()
		pl.gEstPPM.Set(est)
		pl.gRatePPM.Set(rate)
	}
}
