package graph

import "mute/internal/stream"

// DriftObservation is one recorded drift-estimator window, pinned to the
// pipeline-clock sample it becomes visible at.
type DriftObservation struct {
	// At is the sample index on the pipeline clock.
	At int64
	// PPM is the estimator's filtered skew estimate at that window.
	PPM float64
	// Locked reports whether the estimator had enough observations.
	Locked bool
}

// DriftReplay replays an offline transport run's drift-stage decisions
// onto the pipeline clock — the simulator's binding, where the
// packetized transport (and its estimator) already ran ahead of the
// cancellation loop. Adaptation holds fire at suspected oscillator steps
// (the alignment is about to slew), and per-window estimator state feeds
// the supervisor's health view. Windows must be sorted by At.
type DriftReplay struct {
	// Windows is the estimator state per playout window (ignored when no
	// supervisor is attached — ObserveDrift is dropped).
	Windows []DriftObservation
	// Holds marks the samples at which adaptation must hold.
	Holds map[int64]bool
	// HoldSamples is the hold length applied at each marked sample.
	HoldSamples int

	wi int
}

// Tick replays any window landing at t and applies scheduled holds.
func (d *DriftReplay) Tick(t int64, c Controls) {
	for d.wi < len(d.Windows) && d.Windows[d.wi].At <= t {
		if d.Windows[d.wi].At == t {
			c.ObserveDrift(d.Windows[d.wi].PPM, d.Windows[d.wi].Locked)
		}
		d.wi++
	}
	if d.Holds[t] {
		c.Hold(d.HoldSamples, 0)
	}
}

// LiveDrift forwards an online drift estimator's state to the supervisor
// once per processing block — the live CLI's binding, where the
// estimator is fed by the receiver's frame observer concurrently with
// the loop.
type LiveDrift struct {
	// Est is the online skew estimator.
	Est *stream.DriftEstimator
	// Every is the reporting cadence in samples (the processing block).
	Every int64
	// Now returns the current ear-clock time in samples — the estimator's
	// arrival axis.
	Now func() float64
}

// Tick reports estimator state at block boundaries.
func (d *LiveDrift) Tick(t int64, c Controls) {
	if d.Every > 0 && t%d.Every == 0 {
		c.ObserveDrift(d.Est.PPM(), d.Est.Estimable(d.Now()))
	}
}
