package graph

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

// closerSource wraps SliceSource with a Close that records invocation —
// the shape of a fleet session buffer that must hand frames back to a
// pool on teardown.
type closerSource struct {
	SliceSource
	closed int
	err    error
}

func (c *closerSource) Close() error {
	c.closed++
	return c.err
}

type closerAmbient struct {
	SliceAmbient
	closed int
}

func (c *closerAmbient) Close() error {
	c.closed++
	return nil
}

// TestPipelineCloseReleasesStages pins the teardown contract: Close
// reaches every bound stage that implements io.Closer, releases the block
// scratch, is idempotent, and reports the first stage error while still
// closing the rest.
func TestPipelineCloseReleasesStages(t *testing.T) {
	cfg := validConfig(512)
	src := &closerSource{SliceSource: SliceSource{Samples: make([]float64, 512)}}
	amb := &closerAmbient{SliceAmbient: SliceAmbient{
		Local: make([]float64, 512), Cup: make([]float64, 512),
	}}
	cfg.Reference = src
	cfg.Ambient = amb
	pl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.ProcessBlock(128); err != nil {
		t.Fatal(err)
	}
	if pl.x == nil {
		t.Fatal("scratch not grown before Close — test is vacuous")
	}
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if src.closed != 1 || amb.closed != 1 {
		t.Fatalf("closed source %d times, ambient %d times; want 1 and 1", src.closed, amb.closed)
	}
	if pl.x != nil || pl.m != nil {
		t.Fatal("block scratch survived Close")
	}
	// Idempotent: stages are not closed twice.
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if src.closed != 1 {
		t.Fatalf("second Close re-closed the source (%d)", src.closed)
	}
}

func TestPipelineClosePropagatesFirstError(t *testing.T) {
	cfg := validConfig(256)
	boom := errors.New("pool drain failed")
	src := &closerSource{SliceSource: SliceSource{Samples: make([]float64, 256)}, err: boom}
	amb := &closerAmbient{SliceAmbient: SliceAmbient{
		Local: make([]float64, 256), Cup: make([]float64, 256),
	}}
	cfg.Reference = src
	cfg.Ambient = amb
	pl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close error = %v, want %v", err, boom)
	}
	if amb.closed != 1 {
		t.Fatal("ambient not closed after source close error")
	}
}

// TestPipelineOpenCloseLeaksNoGoroutines wraps 1000 build/run/close
// cycles — a fleet session churn — in a before/after goroutine census
// with stabilization: Build must never hide a goroutine behind a session.
func TestPipelineOpenCloseLeaksNoGoroutines(t *testing.T) {
	before := stableGoroutines(t)
	for i := 0; i < 1000; i++ {
		cfg := validConfig(256)
		pl, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pl.ProcessBlock(64); err != nil {
			t.Fatal(err)
		}
		if err := pl.Close(); err != nil {
			t.Fatal(err)
		}
	}
	after := stableGoroutines(t)
	if after > before {
		t.Fatalf("goroutines grew %d → %d over 1000 open/close cycles", before, after)
	}
}

// stableGoroutines samples runtime.NumGoroutine until two consecutive
// reads agree (runtime helpers wind down asynchronously), bounded by a
// short deadline.
func stableGoroutines(t *testing.T) int {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	prev := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}
