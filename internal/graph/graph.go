// Package graph is the single construction site for MUTE's cancellation
// pipeline. The same stage wiring — reference source → drift control →
// supervisor/LANC (or BlockFDAF) → secondary chain → residual metering —
// used to be assembled twice, once in internal/sim's engine and once in
// cmd/muteear's live loop, and every resilience feature had to land in
// both places (and occasionally landed in only one). Here the pipeline is
// expressed once as a small streaming graph, and both the simulator and
// the live CLI instantiate it by binding sources and controls to the same
// Build call, so a stage wired for the simulator is definitionally wired
// for the ear device too.
//
// # Stage contract
//
// Stages exchange blocks over typed ports on the ear device's sample
// clock:
//
//   - sample ports carry []float64 audio,
//   - mask ports carry []bool concealment flags aligned 1:1 with the
//     samples (true = a real received sample, false = a zero-filled gap
//     the canceller must not adapt through),
//   - the timestamp port is the int64 index of a block's first sample on
//     the pipeline clock, threaded through every Pull and hook.
//
// Execution is pull-scheduled: the Pipeline (the sink) asks its reference
// SampleSource for the next block, and composite sources — the drift
// corrector, the jitter-buffer adapter — recursively pull whatever input
// they need to produce it. Nothing pushes; backpressure is the call
// stack.
//
// # Telemetry hooks
//
// Observability attaches at the graph, not at the call sites: the budget
// plan is recorded into the trace at Build, the canceller/supervisor
// state is traced on the configured sample-clock cadence, and per-block
// stream/drift/residual events plus registry gauges are emitted by the
// scheduler after every block when live hooks are enabled. All hooks are
// result-neutral — they read pipeline state and never influence a sample.
package graph

// SampleSource is a pull-scheduled reference input: Pull fills samples
// (and the 1:1 concealment mask) for the block starting at sample index
// start on the pipeline clock, returning how many samples were produced.
// A short return ends the stream; sources with no loss model must set
// every mask entry true.
type SampleSource interface {
	// Pull produces the next len(samples) reference samples. mask has the
	// same length.
	Pull(samples []float64, mask []bool, start int64) int
}

// Ambient is the acoustic leg of the graph: for each reference sample it
// yields the coincident ambient sound at the open ear (what the
// supervisor's fallback microphone hears) and under the cup (what the
// anti-noise must cancel). The simulator binds pre-rendered room
// acoustics; the live ear derives both from the delayed reference.
type Ambient interface {
	// Next advances one sample. x is the reference sample entering the
	// canceller at the same instant.
	Next(x float64) (local, cup float64)
}

// Controls is the surface a DriftControl may steer, handed to Tick once
// per sample. Every method is nil-safe with respect to optional stages:
// holding adaptation is a no-op on the FDAF path, drift observations are
// dropped when no supervisor is attached.
type Controls struct {
	pl *Pipeline
}

// Hold freezes the canceller's adaptation for hold samples, then ramps
// back over ramp samples (see core.LANC.HoldAdaptation).
func (c Controls) Hold(hold, ramp int) {
	if c.pl.LANC != nil {
		c.pl.LANC.HoldAdaptation(hold, ramp)
	}
}

// ObserveDrift feeds a skew estimate to the supervisor's health view.
func (c Controls) ObserveDrift(ppm float64, estimable bool) {
	if c.pl.Sup != nil {
		c.pl.Sup.ObserveDrift(ppm, estimable)
	}
}

// DriftControl is the clock-drift stage's control face: Tick runs before
// the cancellation step of every sample and may hold adaptation around
// suspected oscillator steps or report estimator state to the
// supervisor. The simulator replays a transport run's recorded decisions
// (DriftReplay); the live ear forwards its online estimator (LiveDrift).
type DriftControl interface {
	Tick(t int64, c Controls)
}
