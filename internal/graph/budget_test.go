package graph

import (
	"testing"

	"mute/internal/core"
	"mute/internal/telemetry"
)

// TestPlanBalanced pins the accounting identity: the per-stage budget
// entries always sum to the configured lookahead, whatever split the
// core planner chose, and the identity survives serialization into trace
// events.
func TestPlanBalanced(t *testing.T) {
	pd := core.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1}
	for _, lookahead := range []int{5, 8, 40, 64, 70, 128, 500} {
		budget, err := core.NewBudget(lookahead, pd)
		if err != nil {
			t.Fatalf("NewBudget(%d): %v", lookahead, err)
		}
		rep := Plan(8000, lookahead, 0, 0, 0, 0, pd, budget.UsableTaps)
		if !rep.Balanced() {
			t.Errorf("lookahead %d: budget unbalanced: spent %d", lookahead, rep.SpentSamples())
		}
		if got := rep.SpentSamples(); got != lookahead {
			t.Errorf("lookahead %d: entries sum to %d", lookahead, got)
		}

		tr := telemetry.NewTrace()
		rep.Record(tr)
		var sum float64
		for _, ev := range tr.Events() {
			if ev.Stage != telemetry.StageBudget {
				continue
			}
			sum += ev.Values["samples"]
		}
		if int(sum) != lookahead {
			t.Errorf("lookahead %d: traced budget events sum to %g", lookahead, sum)
		}
	}
}

// TestPlanOverdrawn checks that an impossible grant is reported, not
// silently mis-summed: the overdrawn entry keeps the identity intact.
func TestPlanOverdrawn(t *testing.T) {
	pd := core.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1}
	rep := Plan(8000, 10, 0, 0, 0, 0, pd, 32) // 4 + 32 > 10
	if got := rep.SpentSamples(); got != 10 {
		t.Fatalf("overdrawn budget sums to %d, want 10", got)
	}
	found := false
	for _, e := range rep.Entries {
		if e.Stage == "overdrawn" && e.Samples < 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no negative overdrawn entry in an over-granted budget")
	}
}

// TestPlanDriftGuard checks the drift-correction debit: the resampler's
// 2-sample interpolation future appears as its own entry and the identity
// still holds when taps were planned on the reduced grant.
func TestPlanDriftGuard(t *testing.T) {
	pd := core.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1}
	const lookahead, guard = 64, 2
	budget, err := core.NewBudget(lookahead-guard, pd)
	if err != nil {
		t.Fatal(err)
	}
	rep := Plan(8000, lookahead, 0, 0, guard, 0, pd, budget.UsableTaps)
	if got := rep.SpentSamples(); got != lookahead {
		t.Errorf("drift-guarded budget sums to %d, want %d", got, lookahead)
	}
	found := false
	for _, e := range rep.Entries {
		if e.Stage == "drift.resampler" && e.Samples == guard {
			found = true
		}
	}
	if !found {
		t.Error("no drift.resampler entry in a drift-corrected budget")
	}
}

// TestPlanBlockLatency checks the FDAF debit: block latency appears as
// its own entry with the identity intact.
func TestPlanBlockLatency(t *testing.T) {
	pd := core.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1}
	const lookahead, blockLat = 128, 63
	budget, err := core.NewBudget(lookahead-blockLat, pd)
	if err != nil {
		t.Fatal(err)
	}
	rep := Plan(8000, lookahead, 0, 0, 0, blockLat, pd, budget.UsableTaps)
	if got := rep.SpentSamples(); got != lookahead {
		t.Errorf("block-latency budget sums to %d, want %d", got, lookahead)
	}
	found := false
	for _, e := range rep.Entries {
		if e.Stage == "fdaf.block_latency" && e.Samples == blockLat {
			found = true
		}
	}
	if !found {
		t.Error("no fdaf.block_latency entry in an FDAF budget")
	}
}
