package graph

import "time"

// BlockDeadline returns the wall-clock instant at which processing block
// n (1-based) of frame samples each should fire, for a loop started at
// start with an integer sample rate of fs Hz.
//
// The boundary is computed in integer arithmetic as
// start + n·frame·second/fs, so it is exact to the nanosecond for every
// (frame, fs) pair: deriving it by repeatedly adding a truncated
// per-block time.Duration accumulates the truncation into a systematic
// sub-ppm skew between the block clock and the sample clock, which a
// drift estimator then misattributes to the relay oscillator. Whole
// seconds are split off first so the intermediate product cannot
// overflow for any realistic runtime.
func BlockDeadline(start time.Time, n, frame, fs int64) time.Time {
	samples := n * frame
	whole := samples / fs
	rem := samples % fs
	return start.Add(time.Duration(whole)*time.Second +
		time.Duration(rem*int64(time.Second)/fs))
}
