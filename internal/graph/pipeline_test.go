package graph

import (
	"testing"

	"mute/internal/core"
	"mute/internal/telemetry"
)

// validConfig returns a minimal buildable sample-domain configuration over
// an in-memory source; tests mutate one field at a time.
func validConfig(n int) Config {
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = float64(i%7) * 0.1
	}
	return Config{
		SampleRate: 8000,
		Lookahead:  64,
		Pipeline:   core.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1},
		Canceller: CancellerParams{
			CausalTaps:    16,
			Mu:            0.1,
			SecondaryPath: []float64{0.85, 0.22, 0.06},
		},
		Reference:   &SliceSource{Samples: samples},
		Ambient:     &SliceAmbient{Local: samples, Cup: samples},
		SecondaryIR: []float64{0.85, 0.22, 0.06},
	}
}

// TestBuildValidation checks every required binding and the illegal
// combinations fail at Build, not mid-run.
func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero sample rate", func(c *Config) { c.SampleRate = 0 }},
		{"nil reference", func(c *Config) { c.Reference = nil }},
		{"nil ambient", func(c *Config) { c.Ambient = nil }},
		{"empty secondary IR", func(c *Config) { c.SecondaryIR = nil }},
		{"noise without generator", func(c *Config) { c.NoiseRMS = 0.01 }},
		{"fdaf with supervisor", func(c *Config) {
			c.FDAF = &FDAFParams{BlockSize: 64, Mu: 0.05}
			c.Supervise = true
			c.FallbackSecondary = c.SecondaryIR
		}},
		{"fdaf with drift control", func(c *Config) {
			c.FDAF = &FDAFParams{BlockSize: 64, Mu: 0.05}
			c.Drift = &DriftReplay{}
		}},
	}
	for _, tc := range cases {
		cfg := validConfig(256)
		tc.mutate(&cfg)
		if _, err := Build(cfg); err == nil {
			t.Errorf("%s: Build accepted an invalid config", tc.name)
		}
	}
}

// TestBuildPlansTaps pins the budget-to-canceller wiring: the planned N
// is the budget's usable-tap count, capped by MaxNonCausalTaps, and the
// spend report stays an identity over the full lookahead.
func TestBuildPlansTaps(t *testing.T) {
	cfg := validConfig(256)
	pl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NonCausalTaps != 60 { // 64 lookahead − 4 pipeline delays
		t.Errorf("planned %d non-causal taps, want 60", pl.NonCausalTaps)
	}
	if !pl.Spend.Balanced() || pl.Spend.SpentSamples() != cfg.Lookahead {
		t.Errorf("spend report unbalanced: %d of %d", pl.Spend.SpentSamples(), cfg.Lookahead)
	}

	cfg = validConfig(256)
	cfg.MaxNonCausalTaps = 8
	pl, err = Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NonCausalTaps != 8 {
		t.Errorf("capped plan produced %d taps, want 8", pl.NonCausalTaps)
	}
	if pl.Spend.SpentSamples() != cfg.Lookahead {
		t.Errorf("capped spend sums to %d, want %d", pl.Spend.SpentSamples(), cfg.Lookahead)
	}
}

// TestBuildRecordsBudgetTrace checks Build records the spend into the
// caller's trace exactly once, before any samples flow.
func TestBuildRecordsBudgetTrace(t *testing.T) {
	cfg := validConfig(256)
	tr := telemetry.NewTrace()
	cfg.Trace = tr
	if _, err := Build(cfg); err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 0
	for _, ev := range tr.Events() {
		if ev.Stage == telemetry.StageBudget {
			n++
			sum += ev.Values["samples"]
		}
	}
	if n == 0 {
		t.Fatal("Build recorded no budget events")
	}
	if int(sum) != cfg.Lookahead {
		t.Errorf("budget events sum to %g, want %d", sum, cfg.Lookahead)
	}
}

// TestProcessBlockDrainsSource checks the pull loop's termination
// contract: short final blocks report their true size, an exhausted
// source reports zero, and Run stops there.
func TestProcessBlockDrainsSource(t *testing.T) {
	const total = 100
	cfg := validConfig(total)
	pl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := pl.ProcessBlock(64); err != nil || got != 64 {
		t.Fatalf("first block: got %d, %v; want 64", got, err)
	}
	if got, err := pl.ProcessBlock(64); err != nil || got != total-64 {
		t.Fatalf("final block: got %d, %v; want %d", got, err, total-64)
	}
	if got, err := pl.ProcessBlock(64); err != nil || got != 0 {
		t.Fatalf("drained source: got %d, %v; want 0", got, err)
	}
	if pl.Samples() != total {
		t.Errorf("pipeline processed %d samples, want %d", pl.Samples(), total)
	}
	if _, err := pl.ProcessBlock(0); err == nil {
		t.Error("ProcessBlock accepted a non-positive block size")
	}
}

// TestLiveHooksRegistry checks the live instantiation registers the
// canonical gauge/counter names (OBSERVABILITY.md) and feeds them per
// block.
func TestLiveHooksRegistry(t *testing.T) {
	cfg := validConfig(160)
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	cfg.LiveHooks = true
	pl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(160, 80); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["pipeline.samples"]; got != 160 {
		t.Errorf("pipeline.samples = %d, want 160", got)
	}
	if _, ok := snap.Gauges["lanc.tap_energy"]; !ok {
		t.Error("lanc.tap_energy gauge missing from the live registry")
	}
}
