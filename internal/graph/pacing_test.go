package graph

import (
	"math"
	"testing"
	"time"

	"mute/internal/stream"
)

// TestBlockDeadlineExact pins the integer arithmetic: every boundary is
// within one nanosecond of the ideal n·frame/fs instant, and the error
// does not accumulate with n — the property the float-interval pacing it
// replaced lacked.
func TestBlockDeadlineExact(t *testing.T) {
	start := time.Unix(1000, 0)
	for _, tc := range []struct{ frame, fs int64 }{
		{80, 8000}, {33, 8000}, {1001, 8000}, {160, 8000},
		{100, 44100}, {441, 44100}, {128, 48000}, {1, 8000},
	} {
		for _, n := range []int64{1, 2, 3, 100, 9999, 1e6} {
			d := BlockDeadline(start, n, tc.frame, tc.fs).Sub(start)
			idealNs := float64(n*tc.frame) * 1e9 / float64(tc.fs)
			if dev := math.Abs(float64(d.Nanoseconds()) - idealNs); dev >= 1 {
				t.Errorf("frame=%d fs=%d n=%d: boundary off ideal by %.3f ns",
					tc.frame, tc.fs, n, dev)
			}
		}
	}
}

// TestBlockDeadlineZeroSkewReportsZeroPPM is the block-pacing regression
// test: a zero-skew live loop — frames timestamped on the relay sample
// clock and observed at BlockDeadline boundaries of the very same clock —
// must leave the drift estimator reading 0.0 ppm. This covers the CLI
// default frame size and a truncating one (odd frames above 1000 are
// where the old float interval lost a nanosecond per block at 8 kHz).
func TestBlockDeadlineZeroSkewReportsZeroPPM(t *testing.T) {
	start := time.Unix(1000, 0)
	for _, frame := range []int64{80, 1001} {
		est, err := stream.NewDriftEstimator(stream.DriftConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for k := int64(1); k <= 400; k++ {
			arrival := BlockDeadline(start, k, frame, 8000).Sub(start).Seconds() * 8000
			est.Observe(uint64(k*frame), arrival)
		}
		if !est.Locked() {
			t.Fatalf("frame=%d: estimator did not lock on 400 frames", frame)
		}
		if ppm := est.PPM(); math.Abs(ppm) > 1e-4 {
			t.Errorf("frame=%d: zero-skew loop reports %+.6f ppm, want 0.0", frame, ppm)
		}
		if raw := est.RawPPM(); math.Abs(raw) > 1e-4 {
			t.Errorf("frame=%d: zero-skew raw slope %+.6f ppm, want 0.0", frame, raw)
		}
	}
}

// TestTruncatedIntervalFakesSkew demonstrates the bug the integer boundary
// fixed: pacing the same zero-skew frame stream by repeatedly adding a
// truncated per-block time.Duration accumulates the truncation into an
// artificial skew the estimator pins on the relay. At 44.1 kHz with
// 100-sample blocks the per-block interval loses 0.696 ns, a systematic
// −0.3 ppm; the BlockDeadline boundaries of the identical stream read 0.
func TestTruncatedIntervalFakesSkew(t *testing.T) {
	var frame, fs int64 = 100, 44100
	interval := time.Duration(float64(frame) / float64(fs) * float64(time.Second))
	if int64(interval)*fs == frame*int64(time.Second) {
		t.Fatalf("premise lost: interval %v carries no fractional-nanosecond loss to accumulate", interval)
	}

	old, err := stream.NewDriftEstimator(stream.DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(1000, 0)
	next := start
	for k := int64(1); k <= 400; k++ {
		next = next.Add(interval)
		old.Observe(uint64(k*frame), next.Sub(start).Seconds()*float64(fs))
	}
	if ppm := old.PPM(); math.Abs(ppm) < 0.1 {
		t.Errorf("accumulated truncated interval reports %+.6f ppm, expected an artificial skew beyond 0.1", ppm)
	}

	fixed, err := stream.NewDriftEstimator(stream.DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 400; k++ {
		arrival := BlockDeadline(start, k, frame, fs).Sub(start).Seconds() * float64(fs)
		fixed.Observe(uint64(k*frame), arrival)
	}
	// 44100 does not divide the nanosecond grid, so each boundary floors by
	// under 1 ns — bounded jitter, not accumulating skew. The estimate must
	// sit well under the hundredth-ppm noise floor that implies, two orders
	// below the truncated interval's systematic reading.
	if ppm := fixed.PPM(); math.Abs(ppm) > 0.01 {
		t.Errorf("integer boundaries report %+.6f ppm, want under 0.01", ppm)
	}
}
