package graph

import (
	"mute/internal/core"
	"mute/internal/telemetry"
)

// Plan itemizes a pipeline's lookahead: playout buffering, the drift
// resampler's interpolation guard, FDAF block latency, the deliberate
// delayed-line injection, the Equation 3 processing pipeline, the
// non-causal taps the canceller was granted, and the slack left over
// (negative "overdrawn" when the deadline is missed). The entries always
// sum to the lookahead exactly, so the report is an accounting identity,
// not an estimate — the invariant the golden-trace suite checks on every
// traced run.
func Plan(fs float64, lookahead, prime, extraDelay, driftGuard, blockLat int, pipe core.PipelineDelays, nTaps int) *telemetry.BudgetReport {
	b := telemetry.NewBudgetReport(fs, lookahead)
	b.Add("transport.prime", prime)
	if driftGuard > 0 {
		b.Add("drift.resampler", driftGuard)
	}
	if blockLat > 0 {
		b.Add("fdaf.block_latency", blockLat)
	}
	b.Add("reference.extra_delay", extraDelay)
	b.Add("pipeline.adc", pipe.ADC)
	b.Add("pipeline.dsp", pipe.DSP)
	b.Add("pipeline.dac", pipe.DAC)
	b.Add("pipeline.speaker", pipe.Speaker)
	b.Add("lanc.noncausal_taps", nTaps)
	rest := lookahead - b.SpentSamples()
	if rest >= 0 {
		b.Add("unused", rest)
	} else {
		b.Add("overdrawn", rest)
	}
	return b
}
