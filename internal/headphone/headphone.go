// Package headphone models the conventional ANC headphone the paper
// compares against (the Bose QC35 in Section 5): a feedforward FxLMS
// canceller whose reference microphone sits on the ear cup — microseconds
// of lookahead, so its anti-noise reaches the speaker late — plus the
// passive sound-absorbing ear cup that supplies most of the attenuation
// above 1 kHz.
//
// The model encodes exactly the two limitations the paper attributes to
// commercial headphones: (1) the missed timing deadline of Figure 5(a),
// modeled as an output pipeline delay the causal filter cannot compensate
// for broadband sound, and (2) causal-only filtering, which cannot realize
// the non-causal inverse channel. Its strengths are also retained: clean
// microphones (negligible self-noise) and a deliberately band-limited
// anti-noise path that keeps the adaptation stable at low frequency.
package headphone

import (
	"fmt"

	"mute/internal/anc"
	"mute/internal/dsp"
)

// Config parameterizes the conventional headphone baseline.
type Config struct {
	// SampleRate of the processing pipeline in Hz.
	SampleRate float64
	// Taps is the causal adaptive-filter length.
	Taps int
	// Mu is the LMS step size.
	Mu float64
	// PipelineDelaySamples is how many samples late the anti-noise
	// reaches the speaker relative to the reference capture — the missed
	// deadline. At 8 kHz, 1 sample = 125 µs, about 4× the 30 µs budget
	// the paper quotes.
	PipelineDelaySamples int
	// AntiNoiseCutoffHz band-limits the anti-noise path; commercial ANC
	// deliberately cancels only below ~1 kHz (Section 1).
	AntiNoiseCutoffHz float64
	// SecondaryPath is the ĥ_se estimate for the filtered-x update.
	SecondaryPath []float64
}

// DefaultConfig returns the QC35-like baseline at the given sample rate.
func DefaultConfig(sampleRate float64, secondaryPath []float64) Config {
	return Config{
		SampleRate:           sampleRate,
		Taps:                 64,
		Mu:                   0.05,
		PipelineDelaySamples: 1,
		AntiNoiseCutoffHz:    1000,
		SecondaryPath:        secondaryPath,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("headphone: sample rate %g must be positive", c.SampleRate)
	}
	if c.Taps <= 0 {
		return fmt.Errorf("headphone: taps must be positive, got %d", c.Taps)
	}
	if c.Mu <= 0 {
		return fmt.Errorf("headphone: mu must be positive, got %g", c.Mu)
	}
	if c.PipelineDelaySamples < 0 {
		return fmt.Errorf("headphone: negative pipeline delay %d", c.PipelineDelaySamples)
	}
	if c.AntiNoiseCutoffHz <= 0 || c.AntiNoiseCutoffHz >= c.SampleRate/2 {
		return fmt.Errorf("headphone: anti-noise cutoff %g outside (0, %g)", c.AntiNoiseCutoffHz, c.SampleRate/2)
	}
	if len(c.SecondaryPath) == 0 {
		return fmt.Errorf("headphone: missing secondary path estimate")
	}
	return nil
}

// ANC is the conventional active canceller.
type ANC struct {
	cfg   Config
	fx    *anc.FxLMS
	delay *dsp.DelayLine
	bandl *dsp.Biquad
}

// NewANC builds the baseline canceller.
func NewANC(cfg Config) (*ANC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lp, err := dsp.NewLowPassBiquad(cfg.AntiNoiseCutoffHz, cfg.SampleRate, 0.7071)
	if err != nil {
		return nil, err
	}
	// The filtered-x path must model everything between the filter output
	// and the error microphone — including the headphone's own known
	// pipeline delay and band-limiting — or the LMS update develops a
	// phase error and diverges. The manufacturer knows its hardware, so
	// the baseline gets the same courtesy: ĥ_eff = δ_D ∗ h_LP ∗ ĥ_se.
	lpIR := make([]float64, 32)
	probe := lp.ProcessBlock(append([]float64{1}, make([]float64, 31)...))
	copy(lpIR, probe)
	lp.Reset()
	effSec := dsp.Convolve(lpIR, cfg.SecondaryPath)
	if cfg.PipelineDelaySamples > 0 {
		delta := make([]float64, cfg.PipelineDelaySamples+1)
		delta[cfg.PipelineDelaySamples] = 1
		effSec = dsp.Convolve(delta, effSec)
	}
	fx, err := anc.NewFxLMS(anc.LMSConfig{
		Taps:       cfg.Taps,
		Mu:         cfg.Mu,
		Normalized: true,
		Leak:       0.001,
	}, effSec)
	if err != nil {
		return nil, err
	}
	delay, err := dsp.NewDelayLine(cfg.PipelineDelaySamples)
	if err != nil {
		return nil, err
	}
	return &ANC{cfg: cfg, fx: fx, delay: delay, bandl: lp}, nil
}

// Step advances one sample period: the reference microphone hears x(t),
// the filter computes anti-noise which emerges from the speaker
// PipelineDelaySamples late and band-limited, and the previous residual
// error drives adaptation. It returns the anti-noise sample leaving the
// speaker now.
func (h *ANC) Step(x, ePrev float64) float64 {
	h.fx.Adapt(ePrev)
	return h.Emit(x)
}

// Emit advances the reference history and output chain and returns the
// anti-noise sample without adapting — Step minus the LMS update. The
// supervisor uses it to keep a fading-out fallback leg audible during a
// crossfade when the residual no longer reflects this filter's output.
func (h *ANC) Emit(x float64) float64 {
	h.fx.Push(x)
	a := h.fx.AntiNoise()
	a = h.bandl.Process(a)
	return h.delay.Process(a)
}

// Reset clears all state.
func (h *ANC) Reset() {
	h.fx.Reset()
	h.delay.Reset()
	h.bandl.Reset()
}

// Taps returns the causal adaptive-filter length.
func (h *ANC) Taps() int { return h.cfg.Taps }

// WarmStart seeds the adaptive filter with externally converged causal
// weights — the supervisor hands over LANC's causal taps when the relay
// link dies, so the local fallback starts from a plausible room model
// instead of silence. w[0] is the tap for the newest reference sample;
// shorter or longer slices are truncated/zero-padded to the filter length.
func (h *ANC) WarmStart(w []float64) {
	seed := make([]float64, h.cfg.Taps)
	copy(seed, w)
	// SetWeights only rejects a length mismatch, which the copy precludes.
	_ = h.fx.SetWeights(seed)
}

// PassiveIsolation models the headphone's sound-absorbing ear cup as a
// causal, minimum-phase FIR (derived from a shelf-filter cascade): nearly
// transparent at very low frequency, strongly attenuating toward 4 kHz,
// shaped after published over-ear passive attenuation measurements. A
// physical cup cannot anticipate sound, so minimum phase — essentially
// zero group delay — is the honest model; a linear-phase design would hand
// whichever algorithm sits under the cup tens of samples of spurious
// lookahead.
func PassiveIsolation(sampleRate float64, taps int) ([]float64, error) {
	if taps < 8 {
		return nil, fmt.Errorf("headphone: passive FIR needs >= 8 taps, got %d", taps)
	}
	s1, err := dsp.NewHighShelfBiquad(800, sampleRate, 0.6, -12)
	if err != nil {
		return nil, fmt.Errorf("headphone: passive shelf 1: %w", err)
	}
	s2, err := dsp.NewHighShelfBiquad(2500, sampleRate, 0.6, -10)
	if err != nil {
		return nil, fmt.Errorf("headphone: passive shelf 2: %w", err)
	}
	chain := dsp.NewBiquadChain(s1, s2)
	in := make([]float64, taps)
	in[0] = dsp.FromDB(-2.0 / 2) // broadband seal leakage: -2 dB
	return chain.ProcessBlock(in), nil
}

// DefaultPassiveTaps is the default passive-isolation FIR length.
const DefaultPassiveTaps = 65
