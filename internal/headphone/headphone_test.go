package headphone

import (
	"math"
	"testing"

	"mute/internal/audio"
	"mute/internal/dsp"
)

const fs = 8000.0

var secPath = []float64{0.8, 0.25, 0.05}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(fs, secPath)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	mut := func(f func(*Config)) Config {
		c := DefaultConfig(fs, secPath)
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.SampleRate = 0 }),
		mut(func(c *Config) { c.Taps = 0 }),
		mut(func(c *Config) { c.Mu = 0 }),
		mut(func(c *Config) { c.PipelineDelaySamples = -1 }),
		mut(func(c *Config) { c.AntiNoiseCutoffHz = 0 }),
		mut(func(c *Config) { c.AntiNoiseCutoffHz = 5000 }),
		mut(func(c *Config) { c.SecondaryPath = nil }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
		if _, err := NewANC(c); err == nil {
			t.Errorf("constructor should reject case %d", i)
		}
	}
}

// runBaseline simulates the headphone on a generator: reference and error
// mics are essentially co-located (reference leads by refLead samples).
func runBaseline(t *testing.T, h *ANC, gen audio.Generator, n int) (residual, primary []float64) {
	t.Helper()
	// Primary path: noise reaches the error mic with slight multipath.
	priCh := dsp.NewStreamConvolver([]float64{0, 1.0, 0.3})
	secCh := dsp.NewStreamConvolver(secPath)
	e := 0.0
	for i := 0; i < n; i++ {
		x := gen.Next()
		a := h.Step(x, e)
		d := priCh.Process(x)
		e = d + secCh.Process(a)
		residual = append(residual, e)
		primary = append(primary, d)
	}
	return residual, primary
}

func bandDB(t *testing.T, res, pri []float64, lo, hi float64) float64 {
	t.Helper()
	pr, err := dsp.WelchPSD(res[len(res)/2:], fs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := dsp.WelchPSD(pri[len(pri)/2:], fs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return dsp.DB((pr.BandPower(lo, hi) + dsp.EpsilonPower) / (pp.BandPower(lo, hi) + dsp.EpsilonPower))
}

func TestBaselineCancelsLowFrequencyHum(t *testing.T) {
	h, err := NewANC(DefaultConfig(fs, secPath))
	if err != nil {
		t.Fatal(err)
	}
	gen := audio.NewMachineHum(1, 120, fs, 0.5, 4)
	res, pri := runBaseline(t, h, gen, 60000)
	low := bandDB(t, res, pri, 80, 600)
	if low > -10 {
		t.Errorf("baseline hum cancellation = %.1f dB, want < -10", low)
	}
}

func TestBaselineFailsAboveOneKilohertz(t *testing.T) {
	// The defining limitation: on wide-band noise the baseline gets little
	// or no cancellation above 1 kHz.
	h, err := NewANC(DefaultConfig(fs, secPath))
	if err != nil {
		t.Fatal(err)
	}
	gen := audio.NewWhiteNoise(2, fs, 0.5)
	res, pri := runBaseline(t, h, gen, 60000)
	low := bandDB(t, res, pri, 100, 900)
	high := bandDB(t, res, pri, 1500, 3800)
	if high < -6 {
		t.Errorf("baseline should not cancel much above 1 kHz, got %.1f dB", high)
	}
	if low >= high {
		t.Errorf("baseline low band (%.1f dB) should beat high band (%.1f dB)", low, high)
	}
	// It must not amplify the high band badly either (stability).
	if high > 3 {
		t.Errorf("baseline amplifies high band: %.1f dB", high)
	}
}

func TestBaselineResetRepeatable(t *testing.T) {
	h, err := NewANC(DefaultConfig(fs, secPath))
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := runBaseline(t, h, audio.NewWhiteNoise(3, fs, 0.5), 4000)
	h.Reset()
	r2, _ := runBaseline(t, h, audio.NewWhiteNoise(3, fs, 0.5), 4000)
	for i := range r1 {
		if math.Abs(r1[i]-r2[i]) > 1e-12 {
			t.Fatal("reset run should reproduce exactly")
		}
	}
}

func TestPassiveIsolationCurve(t *testing.T) {
	h, err := PassiveIsolation(fs, DefaultPassiveTaps)
	if err != nil {
		t.Fatal(err)
	}
	g200 := dsp.AmpDB(dsp.FrequencyResponse(h, 200, fs))
	g1k := dsp.AmpDB(dsp.FrequencyResponse(h, 1000, fs))
	g3500 := dsp.AmpDB(dsp.FrequencyResponse(h, 3500, fs))
	if !(g200 > g1k && g1k > g3500) {
		t.Errorf("passive attenuation should grow with frequency: %0.1f, %0.1f, %0.1f dB", g200, g1k, g3500)
	}
	if g3500 > -9 {
		t.Errorf("passive attenuation at 3.5 kHz = %.1f dB, want < -9", g3500)
	}
	if g200 < -4 {
		t.Errorf("passive attenuation at 200 Hz = %.1f dB, want > -4 (nearly transparent)", g200)
	}
}

func TestPassiveIsolationErrors(t *testing.T) {
	if _, err := PassiveIsolation(0, 129); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := PassiveIsolation(fs, 4); err == nil {
		t.Error("too few taps should error")
	}
}
