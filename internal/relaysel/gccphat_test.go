package relaysel

import (
	"testing"
	"testing/quick"

	"mute/internal/audio"
	"mute/internal/dsp"
)

// delayed returns x delayed by d samples (zero-padded head), same length.
func delayed(x []float64, d int) []float64 {
	out := make([]float64, len(x))
	if d < 0 {
		copy(out, x[-d:])
		return out
	}
	copy(out[d:], x)
	return out
}

func TestGCCPHATFindsKnownLag(t *testing.T) {
	x := audio.Render(audio.NewWhiteNoise(1, 8000, 0.7), 2048)
	for _, lag := range []int{0, 5, 23, -17} {
		local := delayed(x, lag)
		c, err := GCCPHAT(x, local, 64)
		if err != nil {
			t.Fatal(err)
		}
		if c.LagSamples != lag {
			t.Errorf("lag = %d, want %d", c.LagSamples, lag)
		}
	}
}

func TestGCCPHATRobustToNoiseAndFiltering(t *testing.T) {
	// The local signal passes through a room-ish channel and picks up
	// noise; PHAT weighting should still find the dominant delay.
	x := audio.Render(audio.NewWhiteNoise(2, 8000, 0.7), 4096)
	ch := dsp.NewStreamConvolver([]float64{1.0, 0.4, 0.2, 0.1})
	rng := audio.NewRNG(3)
	local := delayed(ch.ProcessBlock(x), 23)
	for i := range local {
		local[i] += 0.05 * rng.Norm()
	}
	c, err := GCCPHAT(x, local, 64)
	if err != nil {
		t.Fatal(err)
	}
	if c.LagSamples < 21 || c.LagSamples > 25 {
		t.Errorf("lag = %d, want ≈ 23", c.LagSamples)
	}
}

func TestGCCPHATErrors(t *testing.T) {
	x := make([]float64, 100)
	if _, err := GCCPHAT(nil, nil, 10); err == nil {
		t.Error("empty signals should error")
	}
	if _, err := GCCPHAT(x, x[:50], 10); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := GCCPHAT(x, x, 0); err == nil {
		t.Error("zero maxLag should error")
	}
	if _, err := GCCPHAT(x, x, 50); err == nil {
		t.Error("maxLag >= n/2 should error")
	}
}

func TestPositiveLookaheadPredicate(t *testing.T) {
	c := &Correlation{LagSamples: 5}
	if !c.PositiveLookahead(1) || !c.PositiveLookahead(5) {
		t.Error("5-sample lead should be positive for minLead <= 5")
	}
	if c.PositiveLookahead(6) {
		t.Error("5-sample lead should fail minLead 6")
	}
	neg := &Correlation{LagSamples: -3}
	if neg.PositiveLookahead(1) {
		t.Error("negative lag should not be positive lookahead")
	}
}

func TestGCCPHATLagSignProperty(t *testing.T) {
	// Property: for any white signal and |lag| < 40, GCC-PHAT recovers
	// the sign of the injected delay.
	f := func(seed uint64) bool {
		x := audio.Render(audio.NewWhiteNoise(seed, 8000, 0.7), 2048)
		lag := int(seed%79) - 39
		c, err := GCCPHAT(x, delayed(x, lag), 64)
		if err != nil {
			return false
		}
		return c.LagSamples == lag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSelectRelayPicksMaxLookahead(t *testing.T) {
	x := audio.Render(audio.NewWhiteNoise(5, 8000, 0.7), 4096)
	local := delayed(x, 0)
	// Relay 0 leads by 10, relay 1 by 30 (the winner), relay 2 lags.
	forwarded := [][]float64{
		delayed(x, -10),
		delayed(x, -30),
		delayed(x, 15),
	}
	sel, err := SelectRelay(forwarded, local, 64, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best != 1 {
		t.Errorf("best relay = %d, want 1; reports %+v", sel.Best, sel.Reports)
	}
	if sel.Reports[0].Index != 1 || sel.Reports[0].LagSamples != 30 {
		t.Errorf("top report %+v, want relay 1 at lag 30", sel.Reports[0])
	}
}

func TestSelectRelayNoneWhenAllNegative(t *testing.T) {
	// All relays hear the sound after the ear device: no association
	// (Figure 19's gray markers).
	x := audio.Render(audio.NewWhiteNoise(6, 8000, 0.7), 4096)
	local := x
	forwarded := [][]float64{delayed(x, 8), delayed(x, 20)}
	sel, err := SelectRelay(forwarded, local, 64, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best != -1 {
		t.Errorf("best = %d, want -1 (no relay)", sel.Best)
	}
}

func TestSelectRelayErrors(t *testing.T) {
	if _, err := SelectRelay(nil, nil, 10, 1, 0.1); err == nil {
		t.Error("no relays should error")
	}
	x := make([]float64, 100)
	if _, err := SelectRelay([][]float64{x[:10]}, x, 10, 1, 0.1); err == nil {
		t.Error("bad relay signal should error")
	}
}

func BenchmarkGCCPHAT4096(b *testing.B) {
	x := audio.Render(audio.NewWhiteNoise(1, 8000, 0.7), 4096)
	local := delayed(x, 23)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GCCPHAT(x, local, 128); err != nil {
			b.Fatal(err)
		}
	}
}
