package relaysel

import (
	"fmt"
)

// Tracker performs the periodic re-correlation of Section 4.2: it buffers
// the forwarded streams of every relay alongside the locally heard signal,
// re-runs relay selection every interval, and applies hysteresis so a
// momentary correlation glitch does not flap the association. It handles
// the paper's "the sound source has moved to another location" case.
type Tracker struct {
	interval   int // samples between selection rounds
	window     int // correlation window length
	maxLag     int
	minLead    int
	minPeak    float64
	hysteresis int // consecutive rounds a new winner must persist

	relays int
	// Doubled-ring histories: each buffer holds 2*window samples with the
	// same sample mirrored at pos and pos+window, so the current window is
	// always the contiguous slice buf[pos : pos+window] — a Push is two
	// stores instead of the O(window) memmove the per-sample shift paid.
	bufLocal []float64
	bufFwd   [][]float64
	pos      int
	fill     int
	fwdViews [][]float64 // per-round window views into bufFwd

	current    int // associated relay, -1 = none
	pendingID  int
	pendingRun int
	rounds     int
	switches   int

	// Reused per-round correlation state: selection rounds in steady state
	// allocate nothing.
	corr    *Correlator
	corrOut Correlation
	sel     Selection
}

// TrackerConfig configures a Tracker.
type TrackerConfig struct {
	// Relays is the number of forwarded streams.
	Relays int
	// WindowSamples is the correlation window (default 2048).
	WindowSamples int
	// IntervalSamples is how often selection re-runs (default = window).
	IntervalSamples int
	// MaxLagSamples bounds the correlation search (default window/4).
	MaxLagSamples int
	// MinLeadSamples is the minimum useful lookahead (default 1).
	MinLeadSamples int
	// MinPeak is the minimum correlation peak (default 0.05).
	MinPeak float64
	// Hysteresis is how many consecutive rounds a new association must
	// win before the tracker switches (default 2).
	Hysteresis int
}

// NewTracker creates a Tracker.
func NewTracker(cfg TrackerConfig) (*Tracker, error) {
	if cfg.Relays <= 0 {
		return nil, fmt.Errorf("relaysel: tracker needs at least one relay, got %d", cfg.Relays)
	}
	if cfg.WindowSamples <= 0 {
		cfg.WindowSamples = 2048
	}
	if cfg.IntervalSamples <= 0 {
		cfg.IntervalSamples = cfg.WindowSamples
	}
	if cfg.MaxLagSamples <= 0 {
		cfg.MaxLagSamples = cfg.WindowSamples / 4
	}
	if cfg.MaxLagSamples >= cfg.WindowSamples/2 {
		return nil, fmt.Errorf("relaysel: max lag %d must be < window/2 (%d)", cfg.MaxLagSamples, cfg.WindowSamples/2)
	}
	if cfg.MinLeadSamples <= 0 {
		cfg.MinLeadSamples = 1
	}
	if cfg.MinPeak <= 0 {
		cfg.MinPeak = 0.05
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 2
	}
	corr, err := NewCorrelator(cfg.WindowSamples)
	if err != nil {
		return nil, err
	}
	t := &Tracker{
		interval:   cfg.IntervalSamples,
		window:     cfg.WindowSamples,
		maxLag:     cfg.MaxLagSamples,
		minLead:    cfg.MinLeadSamples,
		minPeak:    cfg.MinPeak,
		hysteresis: cfg.Hysteresis,
		relays:     cfg.Relays,
		bufLocal:   make([]float64, 2*cfg.WindowSamples),
		current:    -1,
		pendingID:  -1,
		corr:       corr,
	}
	t.bufFwd = make([][]float64, cfg.Relays)
	for i := range t.bufFwd {
		t.bufFwd[i] = make([]float64, 2*cfg.WindowSamples)
	}
	t.fwdViews = make([][]float64, cfg.Relays)
	return t, nil
}

// Push feeds one sample period: the local (error-mic) sample and one
// forwarded sample per relay. len(forwarded) must equal Relays. It returns
// true when a selection round just ran.
func (t *Tracker) Push(local float64, forwarded []float64) (bool, error) {
	if len(forwarded) != t.relays {
		return false, fmt.Errorf("relaysel: got %d forwarded samples, want %d", len(forwarded), t.relays)
	}
	t.bufLocal[t.pos] = local
	t.bufLocal[t.pos+t.window] = local
	for i, v := range forwarded {
		b := t.bufFwd[i]
		b[t.pos] = v
		b[t.pos+t.window] = v
	}
	t.pos++
	if t.pos == t.window {
		t.pos = 0
	}
	t.fill++
	if t.fill < t.window || t.fill%t.interval != 0 {
		return false, nil
	}
	// buf[pos : pos+window] is oldest→newest, exactly the window the
	// shifting implementation maintained in place.
	localView := t.bufLocal[t.pos : t.pos+t.window]
	for i := range t.bufFwd {
		t.fwdViews[i] = t.bufFwd[i][t.pos : t.pos+t.window]
	}
	if err := t.corr.SelectInto(&t.sel, &t.corrOut, t.fwdViews, localView, t.maxLag, t.minLead, t.minPeak); err != nil {
		return false, err
	}
	t.rounds++
	t.consider(t.sel.Best)
	return true, nil
}

// consider applies hysteresis to a round's winner.
func (t *Tracker) consider(winner int) {
	if winner == t.current {
		// Clear the pending candidacy entirely: leaving a stale pendingID
		// behind would let a later glitch toward the old pending relay
		// resume a candidacy it should have to restart from scratch.
		t.pendingID = -1
		t.pendingRun = 0
		return
	}
	if winner != t.pendingID {
		t.pendingID = winner
		t.pendingRun = 1
	} else {
		t.pendingRun++
	}
	if t.pendingRun >= t.hysteresis {
		t.current = winner
		t.pendingRun = 0
		t.switches++
	}
}

// Current returns the associated relay index, or -1 when no relay offers
// positive lookahead.
func (t *Tracker) Current() int { return t.current }

// Rounds returns how many selection rounds have run.
func (t *Tracker) Rounds() int { return t.rounds }

// Switches returns how many association changes the tracker has made.
func (t *Tracker) Switches() int { return t.switches }
