package relaysel

import (
	"testing"

	"mute/internal/audio"
)

// TestPHATBandLimitedSource pins the whitening floor: with a band-limited
// source (machine noise low-passed well below Nyquist), most spectrum bins
// hold only window leakage, and pure PHAT's unit weighting of those bins
// used to produce garbage lags — typically a spurious zero-lag peak
// outscoring the true delay — on over half of all windows. The floored
// weighting must recover the true lag essentially always.
func TestPHATBandLimitedSource(t *testing.T) {
	const (
		fs     = 8000.0
		cutoff = 1200.0
		window = 1024
		maxLag = 240
	)
	src, err := audio.NewBandLimitedNoise(12, fs, 0.5, cutoff)
	if err != nil {
		t.Fatal(err)
	}
	clean := audio.Render(src, 1<<16)
	// Fractional delays, as produced by a source at an arbitrary distance:
	// the true lag (101.0 samples) is the difference of the two.
	delayed := func(tt int, d float64) float64 {
		ft := float64(tt) - d
		if ft <= 0 {
			return 0
		}
		i := int(ft)
		frac := ft - float64(i)
		if i+1 >= len(clean) {
			return clean[len(clean)-1]
		}
		return clean[i]*(1-frac) + clean[i+1]*frac
	}
	c, err := NewCorrelator(window)
	if err != nil {
		t.Fatal(err)
	}
	fwd := make([]float64, window)
	loc := make([]float64, window)
	var dst Correlation
	const trials = 100
	bad := 0
	for k := 0; k < trials; k++ {
		start := 2000 + k*512
		for i := 0; i < window; i++ {
			fwd[i] = delayed(start+i, 15.5)
			loc[i] = delayed(start+i, 116.5)
		}
		if err := c.Correlate(&dst, fwd, loc, maxLag); err != nil {
			t.Fatal(err)
		}
		if dst.LagSamples < 99 || dst.LagSamples > 103 {
			bad++
			t.Logf("window %d: lag=%d peak=%.3f, want ~101", k, dst.LagSamples, dst.Peak)
		}
	}
	if bad > 2 {
		t.Fatalf("%d/%d windows measured a junk lag on a band-limited source", bad, trials)
	}
}
