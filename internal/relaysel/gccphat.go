// Package relaysel implements MUTE's automatic relay selection
// (Section 4.2): GCC-PHAT cross-correlation between the wirelessly
// forwarded sound and the locally heard sound determines whether a relay
// offers positive lookahead, and with multiple relays, which one offers the
// most. Correlation is repeated periodically to track moving sources.
package relaysel

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"mute/internal/dsp"
)

// Correlation is a GCC-PHAT result.
type Correlation struct {
	// LagSamples is the delay of the locally heard signal relative to the
	// forwarded signal at the correlation peak. Positive means the
	// forwarded copy leads (positive lookahead).
	LagSamples int
	// Peak is the peak correlation value in [0, 1]-ish (PHAT weighted).
	Peak float64
	// Lags and Values hold the full correlation function for plotting
	// (Figure 18); Values[i] corresponds to lag Lags[i].
	Lags   []int
	Values []float64
}

// GCCPHAT computes the PHAT-weighted generalized cross-correlation between
// the forwarded reference signal and the local (error-mic) signal over lags
// in [-maxLag, maxLag]. Both signals must have equal length ≥ 2·maxLag.
func GCCPHAT(forwarded, local []float64, maxLag int) (*Correlation, error) {
	n := len(forwarded)
	if n == 0 || len(local) != n {
		return nil, fmt.Errorf("relaysel: signals must be equal non-zero length (got %d, %d)", n, len(local))
	}
	if maxLag <= 0 || maxLag >= n/2 {
		return nil, fmt.Errorf("relaysel: maxLag %d outside (0, %d)", maxLag, n/2)
	}
	m := dsp.NextPow2(2 * n)
	F := dsp.FFTReal(forwarded, m)
	L := dsp.FFTReal(local, m)
	// Cross-power spectrum with PHAT weighting: keep phase only.
	X := make([]complex128, m)
	for k := 0; k < m; k++ {
		c := L[k] * cmplx.Conj(F[k])
		mag := cmplx.Abs(c)
		if mag > 1e-12 {
			X[k] = c / complex(mag, 0)
		}
	}
	corr := dsp.IFFTReal(X)
	// corr[lag] for lag >= 0 at index lag; negative lags wrap to m-|lag|.
	res := &Correlation{
		Lags:   make([]int, 0, 2*maxLag+1),
		Values: make([]float64, 0, 2*maxLag+1),
	}
	bestVal := math.Inf(-1)
	for lag := -maxLag; lag <= maxLag; lag++ {
		idx := lag
		if idx < 0 {
			idx += m
		}
		v := corr[idx]
		res.Lags = append(res.Lags, lag)
		res.Values = append(res.Values, v)
		if v > bestVal {
			bestVal = v
			res.LagSamples = lag
		}
	}
	res.Peak = bestVal
	return res, nil
}

// PositiveLookahead reports whether the correlation indicates the forwarded
// signal usefully leads the local one by at least minLead samples.
func (c *Correlation) PositiveLookahead(minLead int) bool {
	return c.LagSamples >= minLead
}

// RelayReport describes one relay's measured lookahead.
type RelayReport struct {
	// Index identifies the relay in the order passed to SelectRelay.
	Index int
	// LagSamples is the measured lookahead in samples (positive = leads).
	LagSamples int
	// Peak is the correlation peak strength.
	Peak float64
}

// Selection is the outcome of a relay-selection round.
type Selection struct {
	// Best is the chosen relay index, or -1 when no relay offers positive
	// lookahead (the paper's "no relay associated" case).
	Best int
	// Reports holds per-relay measurements sorted by descending lag.
	Reports []RelayReport
}

// SelectRelay correlates each relay's forwarded stream against the local
// signal and picks the relay with the largest positive lag (maximum
// lookahead), requiring at least minLead samples of lead and a peak of at
// least minPeak to guard against spurious correlation.
func SelectRelay(forwarded [][]float64, local []float64, maxLag, minLead int, minPeak float64) (*Selection, error) {
	if len(forwarded) == 0 {
		return nil, fmt.Errorf("relaysel: no relays")
	}
	sel := &Selection{Best: -1}
	for i, f := range forwarded {
		c, err := GCCPHAT(f, local, maxLag)
		if err != nil {
			return nil, fmt.Errorf("relaysel: relay %d: %w", i, err)
		}
		sel.Reports = append(sel.Reports, RelayReport{Index: i, LagSamples: c.LagSamples, Peak: c.Peak})
	}
	sort.Slice(sel.Reports, func(a, b int) bool {
		return sel.Reports[a].LagSamples > sel.Reports[b].LagSamples
	})
	top := sel.Reports[0]
	if top.LagSamples >= minLead && top.Peak >= minPeak {
		sel.Best = top.Index
	}
	return sel, nil
}
