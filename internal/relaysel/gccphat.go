// Package relaysel implements MUTE's automatic relay selection
// (Section 4.2): GCC-PHAT cross-correlation between the wirelessly
// forwarded sound and the locally heard sound determines whether a relay
// offers positive lookahead, and with multiple relays, which one offers the
// most. Correlation is repeated periodically to track moving sources.
package relaysel

import (
	"fmt"
	"math"
	"math/cmplx"

	"mute/internal/dsp"
)

// Correlation is a GCC-PHAT result.
type Correlation struct {
	// LagSamples is the delay of the locally heard signal relative to the
	// forwarded signal at the correlation peak. Positive means the
	// forwarded copy leads (positive lookahead).
	LagSamples int
	// Peak is the peak correlation value in [0, 1]-ish (PHAT weighted).
	Peak float64
	// Lags and Values hold the full correlation function for plotting
	// (Figure 18); Values[i] corresponds to lag Lags[i].
	Lags   []int
	Values []float64
}

// phatFloorRel sets the PHAT whitening floor as a fraction of the
// strongest cross-power bin. Bins below it carry no usable phase — for a
// band-limited source that is every bin above the band edge.
const phatFloorRel = 1e-3

// Correlator computes GCC-PHAT correlations for a fixed window length with
// preallocated transform plans and scratch: a periodic tracker reuses one
// Correlator across rounds, so the steady-state correlation path performs
// no allocation. The real-input signals go through the packed RFFT plan —
// half the butterflies of the full complex transform the per-call path
// previously paid for, per signal, per round.
type Correlator struct {
	n    int // window length
	m    int // transform length, NextPow2(2n)
	plan *dsp.RFFTPlan
	seg  []float64    // zero-padded window scratch
	spcF []complex128 // forwarded half spectrum
	spcL []complex128 // local half spectrum / PHAT cross-spectrum
	corr []float64    // inverse transform (correlation function)
}

// NewCorrelator builds a Correlator for correlation windows of exactly
// window samples.
func NewCorrelator(window int) (*Correlator, error) {
	if window < 2 {
		return nil, fmt.Errorf("relaysel: correlation window %d too short", window)
	}
	m := dsp.NextPow2(2 * window)
	plan := dsp.PlanRFFT(m)
	return &Correlator{
		n:    window,
		m:    m,
		plan: plan,
		seg:  make([]float64, m),
		spcF: make([]complex128, plan.Bins()),
		spcL: make([]complex128, plan.Bins()),
		corr: make([]float64, m),
	}, nil
}

// Correlate computes the PHAT-weighted cross-correlation into dst, reusing
// dst's Lags/Values storage when capacity allows. Steady-state calls with a
// reused dst allocate nothing.
func (c *Correlator) Correlate(dst *Correlation, forwarded, local []float64, maxLag int) error {
	n := len(forwarded)
	if n == 0 || len(local) != n {
		return fmt.Errorf("relaysel: signals must be equal non-zero length (got %d, %d)", n, len(local))
	}
	if n != c.n {
		return fmt.Errorf("relaysel: correlator window is %d samples, got %d", c.n, n)
	}
	if maxLag <= 0 || maxLag >= n/2 {
		return fmt.Errorf("relaysel: maxLag %d outside (0, %d)", maxLag, n/2)
	}
	copy(c.seg, forwarded)
	for i := n; i < c.m; i++ {
		c.seg[i] = 0
	}
	c.plan.Forward(c.spcF, c.seg)
	copy(c.seg, local)
	for i := n; i < c.m; i++ {
		c.seg[i] = 0
	}
	c.plan.Forward(c.spcL, c.seg)
	// Cross-power spectrum with PHAT weighting: keep phase only. Pure
	// PHAT gives every bin unit weight, which is catastrophic for
	// band-limited sources — bins above the band edge hold only window
	// leakage whose phase is garbage (and, both windows being cut from
	// the same room, garbage that correlates at lag zero). A spectral
	// floor relative to the strongest bin soft-gates them: bins well
	// inside the band keep ~unit weight, empty bins are weighted by
	// their (tiny) true magnitude instead of inflated to 1. The
	// conjugate-symmetric remainder is implied by the half-spectrum form.
	maxMag := 0.0
	for k, f := range c.spcF {
		x := c.spcL[k] * cmplx.Conj(f)
		c.spcL[k] = x
		if mag := cmplx.Abs(x); mag > maxMag {
			maxMag = mag
		}
	}
	floor := phatFloorRel * maxMag
	if floor < 1e-300 {
		floor = 1e-300
	}
	for k, x := range c.spcL {
		c.spcL[k] = x / complex(cmplx.Abs(x)+floor, 0)
	}
	c.plan.Inverse(c.corr, c.spcL)
	// corr[lag] for lag >= 0 at index lag; negative lags wrap to m-|lag|.
	dst.Lags = dst.Lags[:0]
	dst.Values = dst.Values[:0]
	dst.LagSamples = 0
	bestVal := math.Inf(-1)
	for lag := -maxLag; lag <= maxLag; lag++ {
		idx := lag
		if idx < 0 {
			idx += c.m
		}
		v := c.corr[idx]
		dst.Lags = append(dst.Lags, lag)
		dst.Values = append(dst.Values, v)
		if v > bestVal {
			bestVal = v
			dst.LagSamples = lag
		}
	}
	dst.Peak = bestVal
	return nil
}

// GCCPHAT computes the PHAT-weighted generalized cross-correlation between
// the forwarded reference signal and the local (error-mic) signal over lags
// in [-maxLag, maxLag]. Both signals must have equal length ≥ 2·maxLag.
// Callers correlating repeatedly should hold a Correlator instead.
func GCCPHAT(forwarded, local []float64, maxLag int) (*Correlation, error) {
	n := len(forwarded)
	if n == 0 || len(local) != n {
		return nil, fmt.Errorf("relaysel: signals must be equal non-zero length (got %d, %d)", n, len(local))
	}
	c, err := NewCorrelator(n)
	if err != nil {
		return nil, err
	}
	res := &Correlation{}
	if err := c.Correlate(res, forwarded, local, maxLag); err != nil {
		return nil, err
	}
	return res, nil
}

// PositiveLookahead reports whether the correlation indicates the forwarded
// signal usefully leads the local one by at least minLead samples.
func (c *Correlation) PositiveLookahead(minLead int) bool {
	return c.LagSamples >= minLead
}

// RelayReport describes one relay's measured lookahead.
type RelayReport struct {
	// Index identifies the relay in the order passed to SelectRelay.
	Index int
	// LagSamples is the measured lookahead in samples (positive = leads).
	LagSamples int
	// Peak is the correlation peak strength.
	Peak float64
}

// Selection is the outcome of a relay-selection round.
type Selection struct {
	// Best is the chosen relay index, or -1 when no relay offers positive
	// lookahead (the paper's "no relay associated" case).
	Best int
	// Reports holds per-relay measurements sorted by descending lag.
	Reports []RelayReport
}

// SelectRelay correlates each relay's forwarded stream against the local
// signal and picks the relay with the largest positive lag (maximum
// lookahead), requiring at least minLead samples of lead and a peak of at
// least minPeak to guard against spurious correlation.
func SelectRelay(forwarded [][]float64, local []float64, maxLag, minLead int, minPeak float64) (*Selection, error) {
	if len(forwarded) == 0 {
		return nil, fmt.Errorf("relaysel: no relays")
	}
	c, err := NewCorrelator(len(local))
	if err != nil {
		return nil, err
	}
	sel := &Selection{}
	if err := c.SelectInto(sel, new(Correlation), forwarded, local, maxLag, minLead, minPeak); err != nil {
		return nil, err
	}
	return sel, nil
}

// SelectInto is SelectRelay running through the correlator's reusable
// scratch: one correlation round with a reused sel and scratch allocates
// nothing. Reports end up sorted by descending lag (stable on ties).
func (c *Correlator) SelectInto(sel *Selection, scratch *Correlation, forwarded [][]float64, local []float64, maxLag, minLead int, minPeak float64) error {
	if len(forwarded) == 0 {
		return fmt.Errorf("relaysel: no relays")
	}
	sel.Best = -1
	sel.Reports = sel.Reports[:0]
	for i, f := range forwarded {
		if err := c.Correlate(scratch, f, local, maxLag); err != nil {
			return fmt.Errorf("relaysel: relay %d: %w", i, err)
		}
		sel.Reports = append(sel.Reports, RelayReport{Index: i, LagSamples: scratch.LagSamples, Peak: scratch.Peak})
	}
	// Insertion sort by descending lag: stable, allocation-free, and the
	// relay count is small.
	for i := 1; i < len(sel.Reports); i++ {
		r := sel.Reports[i]
		j := i - 1
		for ; j >= 0 && sel.Reports[j].LagSamples < r.LagSamples; j-- {
			sel.Reports[j+1] = sel.Reports[j]
		}
		sel.Reports[j+1] = r
	}
	top := sel.Reports[0]
	if top.LagSamples >= minLead && top.Peak >= minPeak {
		sel.Best = top.Index
	}
	return nil
}
