package relaysel

import (
	"math/rand"
	"testing"
)

func corrSignals(n int) (fwd, local []float64) {
	rng := rand.New(rand.NewSource(5))
	fwd = make([]float64, n)
	for i := range fwd {
		fwd[i] = rng.NormFloat64()
	}
	// Local copy lagging the forwarded one by 17 samples.
	local = make([]float64, n)
	copy(local[17:], fwd[:n-17])
	return fwd, local
}

// TestCorrelateAllocFree pins the steady-state correlation round at zero
// allocations: plans and scratch live on the Correlator, the result reuses
// the caller's Correlation.
func TestCorrelateAllocFree(t *testing.T) {
	const n, maxLag = 2048, 512
	fwd, local := corrSignals(n)
	c, err := NewCorrelator(n)
	if err != nil {
		t.Fatal(err)
	}
	var out Correlation
	// Warm-up grows out's Lags/Values to capacity.
	if err := c.Correlate(&out, fwd, local, maxLag); err != nil {
		t.Fatal(err)
	}
	if out.LagSamples != 17 {
		t.Fatalf("peak at lag %d, want 17", out.LagSamples)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := c.Correlate(&out, fwd, local, maxLag); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Correlate allocated %.1f times per run, want 0", allocs)
	}
}

// TestTrackerRoundAllocFree pins the tracker's full selection round
// (multi-relay SelectInto) at zero steady-state allocations.
func TestTrackerRoundAllocFree(t *testing.T) {
	const n, maxLag = 1024, 255
	fwd, local := corrSignals(n)
	fwd2 := make([]float64, n)
	copy(fwd2, local)
	streams := [][]float64{fwd, fwd2}
	c, err := NewCorrelator(n)
	if err != nil {
		t.Fatal(err)
	}
	var sel Selection
	var scratch Correlation
	if err := c.SelectInto(&sel, &scratch, streams, local, maxLag, 1, 0.05); err != nil {
		t.Fatal(err)
	}
	if sel.Best != 0 {
		t.Fatalf("selected relay %d, want 0", sel.Best)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := c.SelectInto(&sel, &scratch, streams, local, maxLag, 1, 0.05); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("SelectInto allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkCorrelate(b *testing.B) {
	const n, maxLag = 2048, 512
	fwd, local := corrSignals(n)
	c, err := NewCorrelator(n)
	if err != nil {
		b.Fatal(err)
	}
	var out Correlation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Correlate(&out, fwd, local, maxLag); err != nil {
			b.Fatal(err)
		}
	}
}
