package relaysel

import (
	"testing"

	"mute/internal/audio"
)

func defaultTrackerCfg(relays int) TrackerConfig {
	return TrackerConfig{
		Relays:          relays,
		WindowSamples:   1024,
		IntervalSamples: 512,
		MaxLagSamples:   128,
	}
}

func TestTrackerConfigValidation(t *testing.T) {
	if _, err := NewTracker(TrackerConfig{Relays: 0}); err == nil {
		t.Error("zero relays should error")
	}
	if _, err := NewTracker(TrackerConfig{Relays: 1, WindowSamples: 100, MaxLagSamples: 60}); err == nil {
		t.Error("max lag >= window/2 should error")
	}
	tr, err := NewTracker(TrackerConfig{Relays: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Current() != -1 {
		t.Error("fresh tracker should have no association")
	}
}

func TestTrackerPushValidatesArity(t *testing.T) {
	tr, err := NewTracker(defaultTrackerCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Push(0, []float64{1}); err == nil {
		t.Error("wrong forwarded arity should error")
	}
}

// feed streams a scenario where relay `lead` leads the local signal by
// `lag` samples and the other relays lag behind it.
func feed(t *testing.T, tr *Tracker, seed uint64, relays, lead, lag, n int) {
	t.Helper()
	src := audio.NewWhiteNoise(seed, 8000, 0.7)
	total := n + 4*lag + 8
	base := audio.Render(src, total)
	for i := 0; i < n; i++ {
		local := base[i+2*lag]
		fwd := make([]float64, relays)
		for r := 0; r < relays; r++ {
			if r == lead {
				fwd[r] = base[i+3*lag] // leads local by lag
			} else {
				fwd[r] = base[i+lag] // lags local by lag
			}
		}
		if _, err := tr.Push(local, fwd); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrackerAssociatesWithLeader(t *testing.T) {
	tr, err := NewTracker(defaultTrackerCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, tr, 1, 3, 2, 25, 4096)
	if tr.Current() != 2 {
		t.Errorf("tracker associated with %d, want 2", tr.Current())
	}
	if tr.Rounds() == 0 {
		t.Error("tracker should have run selection rounds")
	}
}

func TestTrackerFollowsMovingSource(t *testing.T) {
	tr, err := NewTracker(defaultTrackerCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: relay 0 leads. Phase 2: the source "moves" — relay 1 leads.
	feed(t, tr, 2, 2, 0, 25, 4096)
	if tr.Current() != 0 {
		t.Fatalf("phase 1: associated with %d, want 0", tr.Current())
	}
	feed(t, tr, 3, 2, 1, 25, 6144)
	if tr.Current() != 1 {
		t.Errorf("phase 2: associated with %d, want 1 after source moved", tr.Current())
	}
	if tr.Switches() < 2 {
		t.Errorf("switches = %d, want >= 2 (initial + move)", tr.Switches())
	}
}

func TestTrackerHysteresisResistsGlitch(t *testing.T) {
	cfg := defaultTrackerCfg(2)
	cfg.Hysteresis = 3
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, tr, 4, 2, 0, 25, 4096)
	if tr.Current() != 0 {
		t.Fatalf("setup failed: current = %d", tr.Current())
	}
	// A brief glitch (one round's worth) toward relay 1 must not switch.
	feed(t, tr, 5, 2, 1, 25, 512)
	feed(t, tr, 6, 2, 0, 25, 2048)
	if tr.Current() != 0 {
		t.Errorf("hysteresis should have suppressed the glitch, current = %d", tr.Current())
	}
}

func TestTrackerNoAssociationWhenAllLag(t *testing.T) {
	tr, err := NewTracker(defaultTrackerCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	src := audio.NewWhiteNoise(7, 8000, 0.7)
	base := audio.Render(src, 6000)
	for i := 0; i < 4096; i++ {
		local := base[i+60]
		fwd := []float64{base[i], base[i+20]} // both lag local
		if _, err := tr.Push(local, fwd); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Current() != -1 {
		t.Errorf("all-lagging relays should yield no association, got %d", tr.Current())
	}
}
