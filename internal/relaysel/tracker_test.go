package relaysel

import (
	"testing"

	"mute/internal/audio"
)

func defaultTrackerCfg(relays int) TrackerConfig {
	return TrackerConfig{
		Relays:          relays,
		WindowSamples:   1024,
		IntervalSamples: 512,
		MaxLagSamples:   128,
	}
}

func TestTrackerConfigValidation(t *testing.T) {
	if _, err := NewTracker(TrackerConfig{Relays: 0}); err == nil {
		t.Error("zero relays should error")
	}
	if _, err := NewTracker(TrackerConfig{Relays: 1, WindowSamples: 100, MaxLagSamples: 60}); err == nil {
		t.Error("max lag >= window/2 should error")
	}
	tr, err := NewTracker(TrackerConfig{Relays: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Current() != -1 {
		t.Error("fresh tracker should have no association")
	}
}

func TestTrackerPushValidatesArity(t *testing.T) {
	tr, err := NewTracker(defaultTrackerCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Push(0, []float64{1}); err == nil {
		t.Error("wrong forwarded arity should error")
	}
}

// feed streams a scenario where relay `lead` leads the local signal by
// `lag` samples and the other relays lag behind it.
func feed(t *testing.T, tr *Tracker, seed uint64, relays, lead, lag, n int) {
	t.Helper()
	src := audio.NewWhiteNoise(seed, 8000, 0.7)
	total := n + 4*lag + 8
	base := audio.Render(src, total)
	for i := 0; i < n; i++ {
		local := base[i+2*lag]
		fwd := make([]float64, relays)
		for r := 0; r < relays; r++ {
			if r == lead {
				fwd[r] = base[i+3*lag] // leads local by lag
			} else {
				fwd[r] = base[i+lag] // lags local by lag
			}
		}
		if _, err := tr.Push(local, fwd); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTrackerAssociatesWithLeader(t *testing.T) {
	tr, err := NewTracker(defaultTrackerCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, tr, 1, 3, 2, 25, 4096)
	if tr.Current() != 2 {
		t.Errorf("tracker associated with %d, want 2", tr.Current())
	}
	if tr.Rounds() == 0 {
		t.Error("tracker should have run selection rounds")
	}
}

func TestTrackerFollowsMovingSource(t *testing.T) {
	tr, err := NewTracker(defaultTrackerCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: relay 0 leads. Phase 2: the source "moves" — relay 1 leads.
	feed(t, tr, 2, 2, 0, 25, 4096)
	if tr.Current() != 0 {
		t.Fatalf("phase 1: associated with %d, want 0", tr.Current())
	}
	feed(t, tr, 3, 2, 1, 25, 6144)
	if tr.Current() != 1 {
		t.Errorf("phase 2: associated with %d, want 1 after source moved", tr.Current())
	}
	if tr.Switches() < 2 {
		t.Errorf("switches = %d, want >= 2 (initial + move)", tr.Switches())
	}
}

func TestTrackerHysteresisResistsGlitch(t *testing.T) {
	cfg := defaultTrackerCfg(2)
	cfg.Hysteresis = 3
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, tr, 4, 2, 0, 25, 4096)
	if tr.Current() != 0 {
		t.Fatalf("setup failed: current = %d", tr.Current())
	}
	// A brief glitch (one round's worth) toward relay 1 must not switch.
	feed(t, tr, 5, 2, 1, 25, 512)
	feed(t, tr, 6, 2, 0, 25, 2048)
	if tr.Current() != 0 {
		t.Errorf("hysteresis should have suppressed the glitch, current = %d", tr.Current())
	}
}

func TestTrackerNoAssociationWhenAllLag(t *testing.T) {
	tr, err := NewTracker(defaultTrackerCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	src := audio.NewWhiteNoise(7, 8000, 0.7)
	base := audio.Render(src, 6000)
	for i := 0; i < 4096; i++ {
		local := base[i+60]
		fwd := []float64{base[i], base[i+20]} // both lag local
		if _, err := tr.Push(local, fwd); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Current() != -1 {
		t.Errorf("all-lagging relays should yield no association, got %d", tr.Current())
	}
}

// shiftTracker is the pre-ring reference implementation of the tracker's
// window maintenance: O(window) copy shifts per sample. The doubled-ring
// rewrite must select identically on identical input.
type shiftTracker struct {
	window   int
	bufLocal []float64
	bufFwd   [][]float64
}

func newShiftTracker(relays, window int) *shiftTracker {
	s := &shiftTracker{window: window, bufLocal: make([]float64, window)}
	s.bufFwd = make([][]float64, relays)
	for i := range s.bufFwd {
		s.bufFwd[i] = make([]float64, window)
	}
	return s
}

func (s *shiftTracker) push(local float64, forwarded []float64) {
	copy(s.bufLocal, s.bufLocal[1:])
	s.bufLocal[s.window-1] = local
	for i, v := range forwarded {
		copy(s.bufFwd[i], s.bufFwd[i][1:])
		s.bufFwd[i][s.window-1] = v
	}
}

// TestTrackerRingEquivalence pins the doubled-ring history rewrite to the
// shifting implementation: the windows handed to selection are identical
// at every round boundary, for fills well past several wraps.
func TestTrackerRingEquivalence(t *testing.T) {
	const relays, window, interval = 3, 256, 64
	cfg := TrackerConfig{
		Relays: relays, WindowSamples: window, IntervalSamples: interval,
		MaxLagSamples: 32,
	}
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := newShiftTracker(relays, window)
	src := audio.NewWhiteNoise(11, 8000, 0.7)
	base := audio.Render(src, 5*window+3*relays*window)
	fwd := make([]float64, relays)
	for i := 0; i < 5*window; i++ {
		local := base[i]
		for r := 0; r < relays; r++ {
			fwd[r] = base[i+(r+1)*window]
		}
		ref.push(local, fwd)
		if _, err := tr.Push(local, fwd); err != nil {
			t.Fatal(err)
		}
		if tr.fill < window || tr.fill%interval != 0 {
			continue
		}
		localView := tr.bufLocal[tr.pos : tr.pos+window]
		for j := 0; j < window; j++ {
			if localView[j] != ref.bufLocal[j] {
				t.Fatalf("sample %d: local window[%d] = %g, shift reference %g", i, j, localView[j], ref.bufLocal[j])
			}
			for r := 0; r < relays; r++ {
				if got := tr.bufFwd[r][tr.pos+j]; got != ref.bufFwd[r][j] {
					t.Fatalf("sample %d: relay %d window[%d] = %g, shift reference %g", i, r, j, got, ref.bufFwd[r][j])
				}
			}
		}
	}
}

// TestTrackerPushAllocFree pins the steady-state per-sample Push — ring
// writes plus the periodic selection round — at zero allocations.
func TestTrackerPushAllocFree(t *testing.T) {
	cfg := defaultTrackerCfg(4)
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := audio.NewWhiteNoise(13, 8000, 0.7)
	base := audio.Render(src, 8*1024)
	fwd := make([]float64, 4)
	// Warm up past the first selection round so Selection.Reports is grown.
	for i := 0; i < 2*1024; i++ {
		for r := range fwd {
			fwd[r] = base[(i+97*r)%len(base)]
		}
		if _, err := tr.Push(base[i], fwd); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	if allocs := testing.AllocsPerRun(int(cfg.IntervalSamples)*2, func() {
		for r := range fwd {
			fwd[r] = base[(i+97*r)%len(base)]
		}
		if _, err := tr.Push(base[i%len(base)], fwd); err != nil {
			t.Fatal(err)
		}
		i++
	}); allocs != 0 {
		t.Errorf("Push allocated %.2f times per sample, want 0", allocs)
	}
}

// TestTrackerStalePendingCleared is the regression test for the pending-
// state reset: once a round's winner returns to the current association,
// the pending candidacy must be wiped entirely (pendingID = -1), so a
// later glitch toward the old pending relay starts a fresh candidacy and
// must survive the full hysteresis count before a switch.
func TestTrackerStalePendingCleared(t *testing.T) {
	cfg := defaultTrackerCfg(3)
	cfg.Hysteresis = 2
	tr, err := NewTracker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.current = 0
	tr.consider(1) // challenger appears
	if tr.pendingID != 1 || tr.pendingRun != 1 {
		t.Fatalf("pending = (%d, %d), want (1, 1)", tr.pendingID, tr.pendingRun)
	}
	tr.consider(0) // winner returns to current
	if tr.pendingID != -1 || tr.pendingRun != 0 {
		t.Fatalf("after return to current: pending = (%d, %d), want (-1, 0)", tr.pendingID, tr.pendingRun)
	}
	tr.consider(1) // single-round glitch toward the old pending relay
	if tr.current != 0 {
		t.Fatalf("single glitch switched the association to %d", tr.current)
	}
	if tr.pendingRun != 1 {
		t.Fatalf("glitch candidacy run = %d, want a fresh 1", tr.pendingRun)
	}
	tr.consider(1) // full hysteresis satisfied now
	if tr.current != 1 {
		t.Fatalf("sustained winner should switch, current = %d", tr.current)
	}
}
