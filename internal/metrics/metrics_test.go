package metrics

import (
	"math"
	"testing"

	"mute/internal/audio"
	"mute/internal/dsp"
)

const fs = 8000.0

func TestCancellationSpectrumKnownAttenuation(t *testing.T) {
	off := audio.Render(audio.NewWhiteNoise(1, fs, 0.5), 32768)
	on := make([]float64, len(off))
	for i, v := range off {
		on[i] = v * 0.1 // -20 dB across the board
	}
	cs, err := NewCancellationSpectrum(off, on, fs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	avg := cs.AverageDB(100, 3900)
	if math.Abs(avg+20) > 0.5 {
		t.Errorf("average cancellation = %.2f dB, want -20", avg)
	}
}

func TestCancellationSpectrumBandSelective(t *testing.T) {
	// Attenuate only below 1 kHz; the spectrum should show it.
	off := audio.Render(audio.NewWhiteNoise(2, fs, 0.5), 65536)
	lp, err := dsp.LowPassFIR(1000, fs, 101, dsp.Hamming)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := dsp.HighPassFIR(1000, fs, 101, dsp.Hamming)
	if err != nil {
		t.Fatal(err)
	}
	lowPart := dsp.ConvolveSame(off, lp)
	highPart := dsp.ConvolveSame(off, hp)
	on := make([]float64, len(off))
	for i := range on {
		on[i] = 0.05*lowPart[i] + highPart[i]
	}
	cs, err := NewCancellationSpectrum(off, on, fs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	low := cs.AverageDB(200, 800)
	high := cs.AverageDB(2000, 3500)
	if low > -15 {
		t.Errorf("low band = %.1f dB, want strong cancellation", low)
	}
	if high < -3 {
		t.Errorf("high band = %.1f dB, should be nearly untouched", high)
	}
}

func TestCancellationSpectrumErrors(t *testing.T) {
	if _, err := NewCancellationSpectrum(nil, []float64{1}, fs, 256); err == nil {
		t.Error("empty off should error")
	}
	if _, err := NewCancellationSpectrum([]float64{1}, nil, fs, 256); err == nil {
		t.Error("empty on should error")
	}
}

func TestBandTable(t *testing.T) {
	off := audio.Render(audio.NewWhiteNoise(3, fs, 0.5), 16384)
	on := make([]float64, len(off))
	for i, v := range off {
		on[i] = v * 0.5
	}
	cs, err := NewCancellationSpectrum(off, on, fs, 512)
	if err != nil {
		t.Fatal(err)
	}
	centers, vals := cs.BandTable(8, 4000)
	if len(centers) != 8 || len(vals) != 8 {
		t.Fatal("band table size mismatch")
	}
	if centers[0] != 250 || centers[7] != 3750 {
		t.Errorf("band centers wrong: %v", centers)
	}
	for b, v := range vals {
		if math.Abs(v+6.02) > 1.5 {
			t.Errorf("band %d = %.1f dB, want ≈ -6", b, v)
		}
	}
}

func TestResidualTimelineAndConvergence(t *testing.T) {
	// Construct an error signal that decays then settles.
	n := 16000
	e := make([]float64, n)
	rng := audio.NewRNG(4)
	for i := range e {
		level := 0.5 * math.Exp(-float64(i)/2000)
		if level < 0.01 {
			level = 0.01
		}
		e[i] = level * rng.Uniform()
	}
	rt, err := NewResidualTimeline(e, fs, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Times) != n/400 {
		t.Fatalf("timeline windows = %d", len(rt.Times))
	}
	ct := rt.ConvergenceTime(3)
	if ct < 0 {
		t.Fatal("should converge")
	}
	if ct < 0.3 || ct > 1.8 {
		t.Errorf("convergence time = %.2f s, want ≈ 1 s", ct)
	}
	if rt.PowersDB[0] <= rt.PowersDB[len(rt.PowersDB)-1] {
		t.Error("residual should decay")
	}
}

func TestResidualTimelineErrors(t *testing.T) {
	if _, err := NewResidualTimeline(nil, fs, 100); err == nil {
		t.Error("empty input should error")
	}
	if _, err := NewResidualTimeline([]float64{1}, fs, 0); err == nil {
		t.Error("zero window should error")
	}
}

func TestAWeightShape(t *testing.T) {
	// A-weighting: ~0 dB at 1 kHz, strongly negative at 50 Hz, mildly
	// positive near 2-3 kHz.
	if g := dsp.AmpDB(AWeight(1000)); math.Abs(g) > 0.5 {
		t.Errorf("A-weight at 1 kHz = %.2f dB, want ≈ 0", g)
	}
	if g := dsp.AmpDB(AWeight(50)); g > -25 {
		t.Errorf("A-weight at 50 Hz = %.2f dB, want < -25", g)
	}
	if AWeight(2500) < AWeight(1000) {
		t.Error("A-weight should peak above 1 kHz")
	}
	if AWeight(0) != 0 || AWeight(-5) != 0 {
		t.Error("non-positive frequencies should weight 0")
	}
}

func TestAWeightedPowerPrefersMidband(t *testing.T) {
	low := audio.Render(audio.NewTone(60, fs, 0.5, 0), 16384)
	mid := audio.Render(audio.NewTone(1000, fs, 0.5, 0), 16384)
	pl, err := dsp.WelchPSD(low, fs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := dsp.WelchPSD(mid, fs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if AWeightedPower(pm) < 10*AWeightedPower(pl) {
		t.Error("1 kHz tone should be perceptually much louder than 60 Hz")
	}
}

func TestListenerRatingsOrdering(t *testing.T) {
	// Every listener must rate a deeply cancelled residual above a weakly
	// cancelled one — the invariant behind Figure 15.
	ref := audio.Render(audio.NewWhiteNoise(5, fs, 0.5), 32768)
	good := make([]float64, len(ref))
	poor := make([]float64, len(ref))
	for i, v := range ref {
		good[i] = v * 0.05 // -26 dB
		poor[i] = v * 0.6  // -4.4 dB
	}
	for id := 1; id <= 5; id++ {
		l := NewListener(id)
		rGood, err := l.Rate(good, ref, fs)
		if err != nil {
			t.Fatal(err)
		}
		l2 := NewListener(id)
		rPoor, err := l2.Rate(poor, ref, fs)
		if err != nil {
			t.Fatal(err)
		}
		if rGood <= rPoor {
			t.Errorf("listener %d: good=%.1f poor=%.1f, want good > poor", id, rGood, rPoor)
		}
		if rGood < 1 || rGood > 5 || rPoor < 1 || rPoor > 5 {
			t.Errorf("listener %d ratings out of range: %g, %g", id, rGood, rPoor)
		}
	}
}

func TestListenerDeterminism(t *testing.T) {
	ref := audio.Render(audio.NewWhiteNoise(6, fs, 0.5), 16384)
	res := make([]float64, len(ref))
	for i, v := range ref {
		res[i] = v * 0.2
	}
	a, err := NewListener(3).Rate(res, ref, fs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewListener(3).Rate(res, ref, fs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same listener rated %g then %g", a, b)
	}
}

func TestListenerRateErrors(t *testing.T) {
	l := NewListener(1)
	if _, err := l.Rate(nil, []float64{1}, fs); err == nil {
		t.Error("empty residual should error")
	}
	if _, err := l.Rate([]float64{1}, nil, fs); err == nil {
		t.Error("empty reference should error")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median = %g, want 2", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median(nil) = %g", m)
	}
}
