package metrics

import (
	"errors"
	"math"
	"testing"
)

// nanSignal returns a plausible residual with NaN samples sprinkled in.
func nanSignal(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.1 * math.Sin(float64(i)/7)
		if i%137 == 0 {
			x[i] = math.NaN()
		}
	}
	return x
}

// TestListenerRateNaN: NaN residuals must produce an explicit ErrNonFinite,
// never a NaN star rating — the silent failure mode this guards against.
func TestListenerRateNaN(t *testing.T) {
	l := NewListener(1)
	stars, err := l.Rate(nanSignal(4096), make([]float64, 4096), fs)
	if err == nil {
		t.Fatalf("NaN residual rated %v stars, want error", stars)
	}
	if !errors.Is(err, ErrNonFinite) {
		t.Errorf("error %v, want ErrNonFinite", err)
	}
	if stars != 0 {
		t.Errorf("error path returned stars=%v, want 0", stars)
	}

	// NaN reference is reported as the reference side.
	if _, err := l.Rate(make([]float64, 4096), nanSignal(4096), fs); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN reference: %v, want ErrNonFinite", err)
	}
}

// TestListenerRateFiniteUnaffected: the NaN guard must not disturb normal
// ratings (same seed, same stars as a fresh listener).
func TestListenerRateFiniteUnaffected(t *testing.T) {
	sig := make([]float64, 4096)
	ref := make([]float64, 4096)
	for i := range sig {
		sig[i] = 0.01 * math.Sin(float64(i)/5)
		ref[i] = 0.5 * math.Sin(float64(i)/5)
	}
	a, err := NewListener(3).Rate(sig, ref, fs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewListener(3).Rate(sig, ref, fs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a < 1 || a > 5 {
		t.Errorf("ratings %v vs %v, want identical in [1,5]", a, b)
	}
}

// TestConvergenceTimeNaN: a timeline whose windows go NaN must report -1
// (never settled), not a NaN time and not a spurious early settle.
func TestConvergenceTimeNaN(t *testing.T) {
	allNaN := &ResidualTimeline{
		Times:    []float64{0, 1, 2, 3},
		PowersDB: []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()},
	}
	if ct := allNaN.ConvergenceTime(3); ct != -1 {
		t.Errorf("all-NaN timeline converged at %v, want -1", ct)
	}

	// A NaN window after an otherwise settled stretch vetoes settling at or
	// before it: the signal was not observably stable through the NaN.
	tainted := &ResidualTimeline{
		Times:    []float64{0, 1, 2, 3, 4, 5, 6, 7},
		PowersDB: []float64{-10, -30, -30, -30, math.NaN(), -30, -30, -30},
	}
	ct := tainted.ConvergenceTime(3)
	if math.IsNaN(ct) {
		t.Fatal("ConvergenceTime returned NaN")
	}
	if ct != 5 {
		t.Errorf("tainted timeline converged at %v, want 5 (first window after the NaN)", ct)
	}
}

// TestConvergenceTimeEmpty: the documented empty-input sentinel.
func TestConvergenceTimeEmpty(t *testing.T) {
	rt := &ResidualTimeline{}
	if ct := rt.ConvergenceTime(3); ct != -1 {
		t.Errorf("empty timeline converged at %v, want -1", ct)
	}
}

// TestConvergenceTimeInfOK: -Inf dB (digital silence before the epsilon
// floor) is ordered and must not be confused with NaN.
func TestConvergenceTimeInfOK(t *testing.T) {
	rt := &ResidualTimeline{
		Times:    []float64{0, 1, 2, 3},
		PowersDB: []float64{-10, math.Inf(-1), math.Inf(-1), math.Inf(-1)},
	}
	ct := rt.ConvergenceTime(3)
	if math.IsNaN(ct) {
		t.Fatal("ConvergenceTime returned NaN for -Inf windows")
	}
	if ct != 1 {
		t.Errorf("silent tail converged at %v, want 1", ct)
	}
}
