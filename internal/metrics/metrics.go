// Package metrics quantifies noise-cancellation quality: per-frequency
// cancellation spectra (the y-axis of Figures 12, 14, 16 and 17),
// wide-band averages, convergence timelines, A-weighted residual loudness,
// and the listener rating model that substitutes for the paper's human
// volunteers (Figure 15).
package metrics

import (
	"errors"
	"fmt"
	"math"

	"mute/internal/audio"
	"mute/internal/dsp"
)

// ErrNonFinite reports that an input signal produced a non-finite power
// (NaN or Inf) — e.g. a residual containing NaN samples. Metrics return it
// instead of propagating NaN into scores.
var ErrNonFinite = errors.New("metrics: non-finite signal power")

// CancellationSpectrum compares the sound at the measurement microphone
// with cancellation off and on, returning cancellation in dB per frequency
// bin (negative = quieter with cancellation), exactly the quantity the
// paper plots.
type CancellationSpectrum struct {
	// Freqs are bin center frequencies in Hz.
	Freqs []float64
	// DB[i] is 10·log10(P_on(f)/P_off(f)).
	DB []float64
}

// NewCancellationSpectrum computes the spectrum from "off" (uncancelled)
// and "on" (cancelled) recordings at the measurement microphone.
func NewCancellationSpectrum(off, on []float64, sampleRate float64, segLen int) (*CancellationSpectrum, error) {
	pOff, err := dsp.WelchPSD(off, sampleRate, segLen)
	if err != nil {
		return nil, fmt.Errorf("metrics: off PSD: %w", err)
	}
	pOn, err := dsp.WelchPSD(on, sampleRate, segLen)
	if err != nil {
		return nil, fmt.Errorf("metrics: on PSD: %w", err)
	}
	n := len(pOff.Power)
	if len(pOn.Power) < n {
		n = len(pOn.Power)
	}
	cs := &CancellationSpectrum{Freqs: make([]float64, n), DB: make([]float64, n)}
	for k := 0; k < n; k++ {
		cs.Freqs[k] = pOff.Freqs[k]
		cs.DB[k] = dsp.DB((pOn.Power[k] + dsp.EpsilonPower) / (pOff.Power[k] + dsp.EpsilonPower))
	}
	return cs, nil
}

// AverageDB returns the mean cancellation over [loHz, hiHz], the headline
// numbers of Section 5.2 (e.g. "6.7 dB within 1 kHz").
func (cs *CancellationSpectrum) AverageDB(loHz, hiHz float64) float64 {
	var sum float64
	var n int
	for k, f := range cs.Freqs {
		if f >= loHz && f < hiHz {
			sum += cs.DB[k]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BandTable resamples the spectrum onto nBands equal-width bands spanning
// [0, maxHz] for compact table output.
func (cs *CancellationSpectrum) BandTable(nBands int, maxHz float64) ([]float64, []float64) {
	centers := make([]float64, nBands)
	vals := make([]float64, nBands)
	width := maxHz / float64(nBands)
	for b := 0; b < nBands; b++ {
		lo := float64(b) * width
		centers[b] = lo + width/2
		vals[b] = cs.AverageDB(lo, lo+width)
	}
	return centers, vals
}

// ResidualTimeline tracks the short-window residual error power over time,
// used for convergence plots (Figure 8) and the profiling experiment.
type ResidualTimeline struct {
	// WindowSamples is the averaging window length.
	WindowSamples int
	// Times are window-start times in seconds; PowersDB the mean residual
	// power per window in dB relative to full scale.
	Times    []float64
	PowersDB []float64
}

// NewResidualTimeline segments e into windows of winSamples.
func NewResidualTimeline(e []float64, sampleRate float64, winSamples int) (*ResidualTimeline, error) {
	if winSamples <= 0 {
		return nil, fmt.Errorf("metrics: window must be positive, got %d", winSamples)
	}
	if len(e) == 0 {
		return nil, dsp.ErrEmptyInput
	}
	rt := &ResidualTimeline{WindowSamples: winSamples}
	for start := 0; start+winSamples <= len(e); start += winSamples {
		p := dsp.Power(e[start : start+winSamples])
		rt.Times = append(rt.Times, float64(start)/sampleRate)
		rt.PowersDB = append(rt.PowersDB, dsp.DB(p))
	}
	return rt, nil
}

// ConvergenceTime returns the first time at which the residual reaches
// within marginDB of its final (median-of-last-quarter) level and stays
// there, or -1 if it never settles. NaN windows (e.g. from NaN residual
// samples) can never satisfy the settle criterion: they are excluded from
// the final-level median and veto any candidate window they follow, so a
// timeline polluted with NaN reports -1 instead of a NaN-shaped answer.
func (rt *ResidualTimeline) ConvergenceTime(marginDB float64) float64 {
	n := len(rt.PowersDB)
	if n == 0 {
		return -1
	}
	// Final level: median of the last quarter, NaN windows excluded.
	tail := finiteOnly(rt.PowersDB[3*n/4:])
	if len(tail) == 0 {
		tail = finiteOnly(rt.PowersDB)
	}
	if len(tail) == 0 {
		return -1 // every window is non-finite
	}
	final := median(tail)
	for i := 0; i < n; i++ {
		if rt.PowersDB[i] <= final+marginDB { // false for NaN windows
			ok := true
			for j := i; j < n; j++ {
				p := rt.PowersDB[j]
				if math.IsNaN(p) || p > final+2*marginDB {
					ok = false
					break
				}
			}
			if ok {
				return rt.Times[i]
			}
		}
	}
	return -1
}

// finiteOnly copies x without its NaN entries (±Inf dB is kept: it is an
// ordered value, unlike NaN, and a silent signal legitimately hits -Inf dB
// before the epsilon floor).
func finiteOnly(x []float64) []float64 {
	out := make([]float64, 0, len(x))
	for _, v := range x {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

func median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	// Insertion sort: windows are short.
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
	return x[len(x)/2]
}

// AWeight returns the A-weighting magnitude (linear) at frequency f Hz —
// the standard model of human loudness sensitivity, used by the listener
// rating model.
func AWeight(f float64) float64 {
	if f <= 0 {
		return 0
	}
	f2 := f * f
	num := 12194.0 * 12194.0 * f2 * f2
	den := (f2 + 20.6*20.6) *
		math.Sqrt((f2+107.7*107.7)*(f2+737.9*737.9)) *
		(f2 + 12194.0*12194.0)
	// Normalize to 0 dB at 1 kHz.
	const norm = 1.2588966 // 10^(2/20) ≈ gain correction for A-weighting
	return norm * num / den
}

// AWeightedPower integrates a PSD under the A-weighting curve, returning a
// perceptual loudness proxy (linear power).
func AWeightedPower(p *dsp.PSD) float64 {
	var sum float64
	for k, f := range p.Freqs {
		w := AWeight(f)
		sum += p.Power[k] * w * w
	}
	return sum
}

// Listener is a deterministic stand-in for one human volunteer: it maps
// A-weighted residual loudness to a 1–5 star rating with a per-listener
// bias and slight nonlinearity, so five seeds produce five plausibly
// different — but consistently ordered — raters.
type Listener struct {
	bias  float64 // per-listener offset in dB
	slope float64 // dB per star
	rng   *audio.RNG
}

// NewListener creates listener #id (id also seeds the per-rating jitter).
func NewListener(id int) *Listener {
	rng := audio.NewRNG(uint64(id)*2654435761 + 1)
	return &Listener{
		bias:  rng.Range(-2, 2),
		slope: rng.Range(5.5, 7.5),
		rng:   rng,
	}
}

// Rate converts residual and reference (uncancelled) recordings into a
// 1–5 star rating: 5 stars ≈ residual ≥ ~25 dB below reference, 1 star ≈
// no improvement. Ratings are clamped to [1, 5] and quantized to halves.
func (l *Listener) Rate(residual, reference []float64, sampleRate float64) (float64, error) {
	pr, err := dsp.WelchPSD(residual, sampleRate, 1024)
	if err != nil {
		return 0, err
	}
	pf, err := dsp.WelchPSD(reference, sampleRate, 1024)
	if err != nil {
		return 0, err
	}
	lr := AWeightedPower(pr)
	lf := AWeightedPower(pf)
	if math.IsNaN(lr) || math.IsInf(lr, 0) {
		return 0, fmt.Errorf("%w: residual", ErrNonFinite)
	}
	if math.IsNaN(lf) || math.IsInf(lf, 0) {
		return 0, fmt.Errorf("%w: reference", ErrNonFinite)
	}
	improveDB := -dsp.DB((lr + dsp.EpsilonPower) / (lf + dsp.EpsilonPower))
	stars := 1 + (improveDB+l.bias)/l.slope
	stars += l.rng.Range(-0.2, 0.2)
	if stars < 1 {
		stars = 1
	}
	if stars > 5 {
		stars = 5
	}
	return math.Round(stars*2) / 2, nil
}
