package bench

import (
	"strings"
	"testing"
	"time"
)

// TestCoreSuiteRuns executes the whole core suite with a tiny timing target
// — every kernel must set up, run, and report a positive measurement.
func TestCoreSuiteRuns(t *testing.T) {
	old := measureTarget
	measureTarget = 2 * time.Millisecond
	defer func() { measureTarget = old }()

	rep, err := Run("core")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.Suite != "core" {
		t.Fatalf("bad header: %+v", rep)
	}
	want := []string{
		"calibrate", "fft.roundtrip.1024", "fft.rfft.1024",
		"convolver.block.57x4096", "convolver.ols.256x4096",
		"lanc.step", "blocklanc.block.32", "gccphat.correlate.1024",
	}
	if len(rep.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(rep.Entries), len(want))
	}
	for i, name := range want {
		e := rep.Entries[i]
		if e.Name != name {
			t.Errorf("entry %d: name %q, want %q", i, e.Name, name)
		}
		if e.Value <= 0 || e.Iters <= 0 {
			t.Errorf("entry %q: non-positive measurement %+v", name, e)
		}
		if e.Unit != "ns/op" {
			t.Errorf("entry %q: unit %q", name, e.Unit)
		}
	}
}

// TestFleetSuiteRuns executes the fleet capacity suite at toy scale — the
// throughput and paced measurements must both complete and report the
// expected entries, with only the CPU-time quantities in gated units.
func TestFleetSuiteRuns(t *testing.T) {
	oldTarget := measureTarget
	oldS, oldB := fleetSessions, fleetBlocks
	oldPS, oldPD, oldR := fleetPacedSessions, fleetPacedDuration, fleetRounds
	measureTarget = 2 * time.Millisecond
	fleetSessions, fleetBlocks = 4, 8
	fleetPacedSessions, fleetPacedDuration, fleetRounds = 4, 100*time.Millisecond, 1
	defer func() {
		measureTarget = oldTarget
		fleetSessions, fleetBlocks = oldS, oldB
		fleetPacedSessions, fleetPacedDuration, fleetRounds = oldPS, oldPD, oldR
	}()

	rep, err := Run("fleet")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Suite != "fleet" {
		t.Fatalf("bad header: %+v", rep)
	}
	want := map[string]string{
		"calibrate":               "ns/op",
		"fleet.session_block":     "ns/op",
		"fleet.sessions_per_core": "x",
		"fleet.paced500.miss":     "%",
		"fleet.paced500.p99_late": "ms*",
	}
	if len(rep.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(rep.Entries), len(want))
	}
	for _, e := range rep.Entries {
		unit, ok := want[e.Name]
		if !ok {
			t.Errorf("unexpected entry %q", e.Name)
			continue
		}
		if e.Unit != unit {
			t.Errorf("entry %q: unit %q, want %q", e.Name, e.Unit, unit)
		}
		if e.Value < 0 {
			t.Errorf("entry %q: negative measurement %+v", e.Name, e)
		}
		if e.Name == "fleet.session_block" && e.Value <= 0 {
			t.Errorf("session-block cost must be positive: %+v", e)
		}
	}
}

func report(entries ...Entry) *Report {
	return &Report{Schema: Schema, Suite: "core", Entries: entries}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := report(
		Entry{Name: "calibrate", Value: 100, Unit: "ns/op"},
		Entry{Name: "kernel", Value: 1000, Unit: "ns/op"},
		Entry{Name: "run.rtf", Value: 80, Unit: "x"},
	)

	// Identical report: clean.
	if probs := Compare(base, base, 0.2); len(probs) != 0 {
		t.Fatalf("self-compare flagged: %v", probs)
	}

	// 50% slower kernel, same calibration: flagged.
	cur := report(
		Entry{Name: "calibrate", Value: 100, Unit: "ns/op"},
		Entry{Name: "kernel", Value: 1500, Unit: "ns/op"},
		Entry{Name: "run.rtf", Value: 80, Unit: "x"},
	)
	probs := Compare(cur, base, 0.2)
	if len(probs) != 1 || !strings.Contains(probs[0], "kernel") {
		t.Fatalf("want one kernel regression, got %v", probs)
	}

	// Realtime factor halved: flagged.
	cur = report(
		Entry{Name: "calibrate", Value: 100, Unit: "ns/op"},
		Entry{Name: "kernel", Value: 1000, Unit: "ns/op"},
		Entry{Name: "run.rtf", Value: 40, Unit: "x"},
	)
	probs = Compare(cur, base, 0.2)
	if len(probs) != 1 || !strings.Contains(probs[0], "run.rtf") {
		t.Fatalf("want one rtf regression, got %v", probs)
	}
}

// TestCompareCalibration checks that a uniformly slower host does not trip
// the gate: everything 2x slower, including the calibration workload, is
// the same machine-independent performance.
func TestCompareCalibration(t *testing.T) {
	base := report(
		Entry{Name: "calibrate", Value: 100, Unit: "ns/op"},
		Entry{Name: "kernel", Value: 1000, Unit: "ns/op"},
		Entry{Name: "run.rtf", Value: 80, Unit: "x"},
	)
	slowHost := report(
		Entry{Name: "calibrate", Value: 200, Unit: "ns/op"},
		Entry{Name: "kernel", Value: 2000, Unit: "ns/op"},
		Entry{Name: "run.rtf", Value: 40, Unit: "x"},
	)
	if probs := Compare(slowHost, base, 0.2); len(probs) != 0 {
		t.Fatalf("calibrated slow host flagged: %v", probs)
	}
	// But a kernel that is disproportionately slow on the slow host still trips.
	slowHost.Entries[1].Value = 3000
	if probs := Compare(slowHost, base, 0.2); len(probs) != 1 {
		t.Fatalf("want one regression on slow host, got %v", probs)
	}
}

func TestCompareMissingEntry(t *testing.T) {
	base := report(
		Entry{Name: "calibrate", Value: 100, Unit: "ns/op"},
		Entry{Name: "kernel", Value: 1000, Unit: "ns/op"},
	)
	cur := report(Entry{Name: "calibrate", Value: 100, Unit: "ns/op"})
	probs := Compare(cur, base, 0.2)
	if len(probs) != 1 || !strings.Contains(probs[0], "missing") {
		t.Fatalf("want missing-entry problem, got %v", probs)
	}
}
