package bench

import (
	"time"

	"mute/internal/fleet"
	"mute/internal/stream"
)

// Fleet-suite workload knobs; tests shrink them to keep the suite fast.
var (
	// fleetSessions / fleetBlocks shape the throughput measurement — enough
	// sessions that per-tick overheads amortize, enough blocks that the
	// steady state dominates warmup.
	fleetSessions = 64
	fleetBlocks   = 300
	// fleetPacedSessions / fleetPacedDuration shape the paced capacity
	// probe over the real UDP transport.
	fleetPacedSessions = 500
	fleetPacedDuration = 2 * time.Second
	// fleetRounds repeats each measurement; the best round is reported for
	// the same reason measure keeps the fastest — co-tenant noise on a
	// shared host only ever adds time (and deadline misses).
	fleetRounds = 3
)

// fleetFaults is the impairment template behind both fleet measurements:
// the capacity numbers are for realistically lossy links, not a lab
// loopback.
func fleetFaults() stream.LossParams {
	return stream.LossParams{Seed: 1, Loss: 0.02, MeanBurst: 2, Reorder: 0.02, Duplicate: 0.01}
}

// runFleet measures the session server's serving capacity.
//
// The gated entries come from throughput mode — CPU cost per
// session-block and its reciprocal in realtime sessions per core — which
// are stable on shared CI because they count work, not wall-clock
// punctuality. The paced run publishes its block-deadline miss rate as an
// informational "%" entry: the number that matters operationally, but
// gated by nothing, because host-level scheduling freezes (tens of ms on
// shared runners, measured against an idle pacer) can charge a whole
// fleet's worth of misses to an innocent tick.
func runFleet() ([]Entry, error) {
	entries := []Entry{calibrateEntry()}

	var best *fleet.LoadResult
	for r := 0; r < fleetRounds; r++ {
		res, err := fleet.RunLoad(fleet.LoadConfig{
			Sessions:   fleetSessions,
			Blocks:     fleetBlocks,
			Throughput: true,
			Faults:     fleetFaults(),
			SkewPPM:    80,
		})
		if err != nil {
			return nil, err
		}
		if best == nil || res.SessionBlockNS < best.SessionBlockNS {
			best = res
		}
	}
	entries = append(entries,
		Entry{Name: "fleet.session_block", Value: best.SessionBlockNS, Unit: "ns/op", Iters: int(best.SessionBlocks)},
		Entry{Name: "fleet.sessions_per_core", Value: best.SessionsPerCore, Unit: "x", Iters: fleetRounds},
	)

	var paced *fleet.LoadResult
	for r := 0; r < fleetRounds; r++ {
		res, err := fleet.RunLoad(fleet.LoadConfig{
			Sessions: fleetPacedSessions,
			Duration: fleetPacedDuration,
			Faults:   fleetFaults(),
			SkewPPM:  80,
		})
		if err != nil {
			return nil, err
		}
		if paced == nil || res.MissRate < paced.MissRate {
			paced = res
		}
	}
	// "%" and "ms*" are not gated units: these publish the operational
	// numbers without letting runner-scheduling noise fail CI.
	entries = append(entries,
		Entry{Name: "fleet.paced500.miss", Value: 100 * paced.MissRate, Unit: "%", Iters: int(paced.SessionBlocks)},
		Entry{Name: "fleet.paced500.p99_late", Value: paced.P99LatenessNS / 1e6, Unit: "ms*", Iters: int(paced.Blocks)},
	)
	return entries, nil
}
