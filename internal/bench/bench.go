// Package bench measures the pipeline's hot kernels and end-to-end figure
// cost, and emits/compares machine-readable reports. Three suites exist:
//
//   - core: microbenchmarks of the kernels the per-sample loop lives in
//     (planned FFTs, streaming convolution, LANC steps, partitioned FDAF
//     blocks, GCC-PHAT correlation), in ns/op.
//   - figs: end-to-end numbers — Figure 12 wall time on one worker, and the
//     realtime factor of a MUTE_Hollow run on the time-domain and
//     partitioned frequency-domain paths.
//   - fleet: session-server capacity — CPU cost per session-block and
//     realtime sessions per core (gated), plus the paced 500-session
//     deadline-miss rate over the real UDP transport (informational).
//
// Reports are plain JSON (schema mute-bench/v1) intended to be checked in
// (BENCH_core.json, BENCH_figs.json, BENCH_fleet.json) as the repo's perf
// trajectory. Compare
// judges a fresh run against a checked-in baseline, normalizing for host
// speed through the "calibrate" entry — a fixed scalar workload whose ratio
// between the two reports estimates how much faster or slower the current
// machine is, so a 20% regression gate does not fire just because CI runs
// on different hardware.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
	"mute/internal/experiments"
	"mute/internal/relaysel"
	"mute/internal/sim"
)

// Schema is the report format identifier.
const Schema = "mute-bench/v1"

// Entry is one measured quantity.
type Entry struct {
	// Name identifies the measurement (e.g. "fft.roundtrip.1024").
	Name string `json:"name"`
	// Value is the measurement in Unit.
	Value float64 `json:"value"`
	// Unit is "ns/op" or "ms" (lower is better) or "x" for realtime
	// factors (higher is better) — the three units Compare gates. Any
	// other unit ("dB", "%", "ms*" for wall-clock quantities too noisy on
	// shared runners) is informational: published and checked for
	// presence, never gated on value.
	Unit string `json:"unit"`
	// Iters is how many operations the timing averaged over.
	Iters int `json:"iters,omitempty"`
}

// Report is a full suite run.
type Report struct {
	Schema    string  `json:"schema"`
	Suite     string  `json:"suite"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Entries   []Entry `json:"entries"`
}

// Run executes the named suite ("core", "figs", or "fleet").
func Run(suite string) (*Report, error) {
	var (
		entries []Entry
		err     error
	)
	switch suite {
	case "core":
		entries, err = runCore()
	case "figs":
		entries, err = runFigs()
	case "fleet":
		entries, err = runFleet()
	default:
		return nil, fmt.Errorf("bench: unknown suite %q (want core, figs, or fleet)", suite)
	}
	if err != nil {
		return nil, err
	}
	return &Report{
		Schema:    Schema,
		Suite:     suite,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Entries:   entries,
	}, nil
}

// Load reads a report from disk.
func Load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// Compare judges current against baseline and returns one message per
// regression beyond threshold (0.2 = 20%). Host speed differences are
// divided out through the "calibrate" entry when both reports carry it.
// Entries present only in one report are reported as missing rather than
// silently skipped; "dB" entries are informational and never gate.
func Compare(current, baseline *Report, threshold float64) []string {
	curBy := make(map[string]Entry, len(current.Entries))
	for _, e := range current.Entries {
		curBy[e.Name] = e
	}
	cal := 1.0
	if ce, ok := curBy["calibrate"]; ok {
		for _, be := range baseline.Entries {
			if be.Name == "calibrate" && be.Value > 0 {
				cal = ce.Value / be.Value
			}
		}
	}
	var problems []string
	for _, be := range baseline.Entries {
		if be.Name == "calibrate" || be.Value <= 0 {
			continue
		}
		ce, ok := curBy[be.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from current report", be.Name))
			continue
		}
		switch be.Unit {
		case "ns/op", "ms":
			norm := ce.Value / be.Value / cal
			if norm > 1+threshold {
				problems = append(problems, fmt.Sprintf(
					"%s: %.4g %s vs baseline %.4g %s (%.0f%% slower after calibration)",
					be.Name, ce.Value, ce.Unit, be.Value, be.Unit, (norm-1)*100))
			}
		case "x":
			norm := ce.Value / be.Value * cal
			if norm < 1/(1+threshold) {
				problems = append(problems, fmt.Sprintf(
					"%s: %.4g%s vs baseline %.4g%s (%.0f%% less realtime headroom after calibration)",
					be.Name, ce.Value, ce.Unit, be.Value, be.Unit, (1-norm)*100))
			}
		}
	}
	return problems
}

// measureTarget is how long each microbenchmark timing loop aims to run;
// tests shrink it to keep the suite fast.
var measureTarget = 150 * time.Millisecond

// measure times op by growing the iteration count until one round runs for
// at least measureTarget, then reports the fastest of three rounds at that
// count. Scheduling noise and cache pollution from co-tenants only ever add
// time, so the minimum is the most repeatable estimator on a shared host —
// what keeps a checked-in baseline comparable across CI runs.
func measure(op func()) (nsPerOp float64, iters int) {
	op() // warm caches, build lazy plans
	round := func(n int) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			op()
		}
		return time.Since(start)
	}
	n := 1
	var elapsed time.Duration
	for {
		elapsed = round(n)
		if elapsed >= measureTarget || n >= 1<<26 {
			break
		}
		next := n * 4
		if elapsed > 0 {
			if f := int(float64(measureTarget) * 3 / 2 / float64(elapsed)); f >= 2 && n*f < next {
				next = n * f
			}
		}
		n = next
	}
	best := elapsed
	for r := 0; r < 2; r++ {
		if e := round(n); e < best {
			best = e
		}
	}
	return float64(best.Nanoseconds()) / float64(n), n
}

// benchSink defeats dead-code elimination of benchmark results.
var benchSink float64

// noise fills a deterministic pseudo-random slice in [-0.5, 0.5)
// (xorshift64*, independent of the simulator's generators).
func noise(seed uint64, n int) []float64 {
	out := make([]float64, n)
	s := seed*0x9e3779b97f4a7c15 + 1
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = float64(s%(1<<20))/(1<<20) - 0.5
	}
	return out
}

// secPathTaps mirrors the scene's ear secondary path scale: a short decaying
// FIR, enough to exercise the filtered-x machinery.
var secPathTaps = []float64{0.85, 0.22, 0.06}

// calibrateEntry measures the fixed scalar dot product both suites carry as
// their hardware-speed yardstick.
func calibrateEntry() Entry {
	ca, cb := noise(1, 4096), noise(2, 4096)
	ns, iters := measure(func() {
		var acc float64
		for i := range ca {
			acc += ca[i] * cb[i]
		}
		benchSink += acc
	})
	return Entry{Name: "calibrate", Value: ns, Unit: "ns/op", Iters: iters}
}

func runCore() ([]Entry, error) {
	entries := []Entry{calibrateEntry()}
	add := func(name string, op func()) {
		ns, iters := measure(op)
		entries = append(entries, Entry{Name: name, Value: ns, Unit: "ns/op", Iters: iters})
	}

	// Planned complex FFT, forward+inverse so magnitudes stay bounded
	// across millions of iterations (Inverse normalizes by 1/N).
	fp := dsp.PlanFFT(1024)
	cbuf := make([]complex128, 1024)
	for i, v := range noise(3, 1024) {
		cbuf[i] = complex(v, 0)
	}
	add("fft.roundtrip.1024", func() {
		fp.Forward(cbuf)
		fp.Inverse(cbuf)
	})

	// Packed real-input forward transform (the Welch/render workhorse).
	rp := dsp.PlanRFFT(1024)
	rin := noise(4, 1024)
	rout := make([]complex128, rp.Bins())
	add("fft.rfft.1024", func() {
		rp.Forward(rout, rin)
	})

	// Streaming convolver, per-sample path: the ear secondary path in the
	// simulator's inner loop (kernel below the overlap-save crossover).
	irShort := noise(5, 57)
	scShort := dsp.NewStreamConvolver(irShort)
	xBlock := noise(6, 4096)
	outBlock := make([]float64, 4096)
	add("convolver.block.57x4096", func() {
		scShort.ProcessBlockInto(outBlock, xBlock)
	})

	// Streaming convolver, partitioned overlap-save path (room renders).
	irLong := noise(7, 256)
	scLong := dsp.NewStreamConvolver(irLong)
	add("convolver.ols.256x4096", func() {
		scLong.ProcessBlockInto(outBlock, xBlock)
	})

	// Time-domain LANC per-sample step at the simulator's default shape.
	lanc, err := core.New(core.Config{
		NonCausalTaps: 32, CausalTaps: 160, Mu: 0.05, Normalized: true,
		SecondaryPath: secPathTaps,
	})
	if err != nil {
		return nil, err
	}
	lx := noise(8, 4096)
	li := 0
	add("lanc.step", func() {
		x := lx[li&4095]
		e := 0.01 * lx[(li+7)&4095]
		benchSink += lanc.Step(x, e)
		li++
	})

	// Partitioned frequency-domain LANC, one 32-sample block.
	bl, err := core.NewBlock(core.BlockConfig{
		FilterTaps: 192, BlockSize: 32, Mu: 0.4,
		SecondaryPath: secPathTaps, NonCausalTaps: 32,
	})
	if err != nil {
		return nil, err
	}
	bx := noise(9, 32)
	be := noise(10, 32)
	for i := range be {
		be[i] *= 0.01
	}
	bout := make([]float64, 32)
	add("blocklanc.block.32", func() {
		if err := bl.ProcessBlockInto(bout, bx, be); err != nil {
			panic(err)
		}
	})

	// GCC-PHAT correlation over the tracker's window.
	corr, err := relaysel.NewCorrelator(1024)
	if err != nil {
		return nil, err
	}
	local := noise(11, 1024)
	fwd := make([]float64, 1024)
	copy(fwd[0:], local[40:]) // forwarded copy leads by 40 samples
	var dst relaysel.Correlation
	add("gccphat.correlate.1024", func() {
		if err := corr.Correlate(&dst, fwd, local, 128); err != nil {
			panic(err)
		}
	})

	return entries, nil
}

// figsDuration is the simulated seconds behind every figs-suite number;
// tests shrink it.
var figsDuration = 12.0

func runFigs() ([]Entry, error) {
	entries := []Entry{calibrateEntry()}

	// Figure 12 end to end on one worker: the headline wall-time number.
	// Best of three for the same reason measure takes the fastest round —
	// the later rounds also run with the acoustic render cache warm, which
	// is the steady state of any process that runs more than one figure.
	const rounds = 3
	var wall time.Duration
	for r := 0; r < rounds; r++ {
		start := time.Now()
		if _, err := experiments.Fig12(experiments.Config{Duration: figsDuration, Workers: 1}); err != nil {
			return nil, err
		}
		if el := time.Since(start); r == 0 || el < wall {
			wall = el
		}
	}
	entries = append(entries, Entry{
		Name: "fig12.wall", Value: float64(wall.Nanoseconds()) / 1e6, Unit: "ms", Iters: rounds,
	})

	// Single-run realtime factors: simulated seconds per wall second for
	// the default time-domain canceller and the partitioned FDAF path.
	runs := []struct {
		name  string
		fdaf  bool
		block int
	}{
		{"mute_hollow.td", false, 0},
		{"mute_hollow.fdaf32", true, 32},
	}
	for _, rc := range runs {
		var best, db float64
		for r := 0; r < rounds; r++ {
			rtf, d, err := simRealtime(rc.fdaf, rc.block)
			if err != nil {
				return nil, err
			}
			if rtf > best {
				best, db = rtf, d // db is deterministic; rtf noise only loses
			}
		}
		entries = append(entries,
			Entry{Name: rc.name + ".rtf", Value: best, Unit: "x", Iters: rounds},
			Entry{Name: rc.name + ".db", Value: db, Unit: "dB", Iters: rounds},
		)
	}
	return entries, nil
}

// simRealtime runs one MUTE_Hollow simulation and reports its realtime
// factor and band cancellation.
func simRealtime(fdaf bool, block int) (rtf, db float64, err error) {
	p := sim.DefaultParams(sim.DefaultScene(audio.NewWhiteNoise(1, 8000, 0.5)))
	p.Duration = figsDuration
	if fdaf {
		p.BlockFDAF = true
		p.BlockSize = block
	}
	start := time.Now()
	r, err := sim.Run(p, sim.MUTEHollow)
	wall := time.Since(start)
	if err != nil {
		return 0, 0, err
	}
	db, err = r.CancellationDB(50, 4000)
	if err != nil {
		return 0, 0, err
	}
	return p.Duration / wall.Seconds(), db, nil
}
