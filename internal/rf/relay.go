package rf

import (
	"fmt"

	"mute/internal/audio"
	"mute/internal/dsp"
)

// RelayParams models the analog front end of the IoT relay (Figure 9):
// a cheap MEMS microphone with self-noise, an anti-aliasing low-pass
// filter, and an audio amplifier, feeding the FM modulator.
type RelayParams struct {
	// MicNoiseRMS is the microphone self-noise level (RMS, full scale 1).
	// The paper's $9 ADMP401 has noticeably more self-noise than Bose's
	// microphones; 0.002 ≈ 54 dB SNR at full scale.
	MicNoiseRMS float64
	// LPFCutoffHz is the anti-aliasing cutoff (default 3600 Hz for the
	// 8 kHz pipeline).
	LPFCutoffHz float64
	// Gain is the audio amplifier gain applied before modulation.
	Gain float64
	// Seed drives the deterministic mic-noise stream.
	Seed uint64
}

// DefaultRelayParams returns the cheap-hardware defaults used in the
// evaluation.
func DefaultRelayParams() RelayParams {
	return RelayParams{MicNoiseRMS: 0.002, LPFCutoffHz: 3600, Gain: 1, Seed: 7}
}

// Relay is the analog IoT relay: it converts ambient sound into an FM
// baseband stream sample by sample, holding no recorded audio anywhere —
// the privacy property of Section 4.4 (the struct stores only filter state,
// never a sample log).
type Relay struct {
	params RelayParams
	fm     FMParams
	lpf    *dsp.Biquad
	noise  *audio.RNG
}

// NewRelay builds a relay front end for the given FM link parameters.
func NewRelay(rp RelayParams, fm FMParams) (*Relay, error) {
	if err := fm.Validate(); err != nil {
		return nil, err
	}
	if rp.MicNoiseRMS < 0 {
		return nil, fmt.Errorf("rf: negative mic noise %g", rp.MicNoiseRMS)
	}
	if rp.Gain <= 0 {
		return nil, fmt.Errorf("rf: relay gain %g must be positive", rp.Gain)
	}
	cut := rp.LPFCutoffHz
	if cut <= 0 || cut >= fm.AudioRate/2 {
		cut = 0.45 * fm.AudioRate
	}
	lpf, err := dsp.NewLowPassBiquad(cut, fm.AudioRate, 0.7071)
	if err != nil {
		return nil, fmt.Errorf("rf: relay LPF: %w", err)
	}
	return &Relay{params: rp, fm: fm, lpf: lpf, noise: audio.NewRNG(rp.Seed)}, nil
}

// Capture processes one block of ambient sound through the analog chain
// (mic noise → LPF → amplifier) and returns the conditioned audio ready
// for FM modulation. The input block is not modified.
func (r *Relay) Capture(ambient []float64) []float64 {
	out := make([]float64, len(ambient))
	for i, s := range ambient {
		s += r.params.MicNoiseRMS * r.noise.Norm()
		s = r.lpf.Process(s)
		out[i] = s * r.params.Gain
	}
	return out
}

// Transmit captures ambient sound and returns the FM baseband stream that
// goes over the air.
func (r *Relay) Transmit(ambient []float64) ([]complex128, error) {
	return Modulate(r.fm, r.Capture(ambient))
}

// Forward runs the complete relay → channel → receiver chain on a block of
// ambient sound, returning the audio the ear device extracts. This is the
// single call the simulator uses per experiment.
func (r *Relay) Forward(ambient []float64, ch ChannelParams) ([]float64, error) {
	tx, err := r.Transmit(ambient)
	if err != nil {
		return nil, err
	}
	rx, err := Apply(r.fm, ch, tx)
	if err != nil {
		return nil, err
	}
	return Demodulate(r.fm, rx)
}
