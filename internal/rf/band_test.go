package rf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestISMBandValidate(t *testing.T) {
	if err := DefaultISMBand().Validate(); err != nil {
		t.Errorf("default band invalid: %v", err)
	}
	bad := []ISMBand{
		{LowHz: 0, HighHz: 1e6},
		{LowHz: 2e6, HighHz: 1e6},
		{LowHz: 1e6, HighHz: 2e6, GuardHz: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
	if w := DefaultISMBand().Width(); w != 26e6 {
		t.Errorf("ISM width = %g, want 26 MHz", w)
	}
}

func TestCarsonBandwidth(t *testing.T) {
	p := DefaultFMParams() // 3 kHz deviation, 8 kHz audio
	if bw := CarsonBandwidth(p); bw != 2*(3000+4000) {
		t.Errorf("Carson bandwidth = %g, want 14 kHz", bw)
	}
}

func TestAllocateCarriersNonOverlapping(t *testing.T) {
	b := DefaultISMBand()
	p := DefaultFMParams()
	allocs, err := AllocateCarriers(b, p, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 50 {
		t.Fatalf("got %d allocations", len(allocs))
	}
	for i := range allocs {
		lo := allocs[i].CarrierHz - allocs[i].BandwidthHz/2
		hi := allocs[i].CarrierHz + allocs[i].BandwidthHz/2
		if lo < b.LowHz || hi > b.HighHz {
			t.Errorf("allocation %d outside band: [%g, %g]", i, lo, hi)
		}
		for j := i + 1; j < len(allocs); j++ {
			if Overlap(allocs[i], allocs[j]) {
				t.Errorf("allocations %d and %d overlap", i, j)
			}
		}
	}
}

func TestAllocateCarriersErrors(t *testing.T) {
	if _, err := AllocateCarriers(ISMBand{}, DefaultFMParams(), 1); err == nil {
		t.Error("invalid band should error")
	}
	if _, err := AllocateCarriers(DefaultISMBand(), FMParams{}, 1); err == nil {
		t.Error("invalid FM params should error")
	}
	if _, err := AllocateCarriers(DefaultISMBand(), DefaultFMParams(), 0); err == nil {
		t.Error("zero relays should error")
	}
	// A tiny band cannot hold many relays.
	tiny := ISMBand{LowHz: 902e6, HighHz: 902.05e6, GuardHz: 10e3}
	if _, err := AllocateCarriers(tiny, DefaultFMParams(), 10); err == nil {
		t.Error("overcommitted band should error")
	}
}

func TestFractionOccupiedSmall(t *testing.T) {
	// The paper's point: a few relays occupy a tiny fraction of the band.
	f := FractionOccupied(DefaultISMBand(), DefaultFMParams(), 4)
	if f > 0.01 {
		t.Errorf("4 relays occupy fraction %.4f, want < 1%%", f)
	}
}

func TestCarrierSense(t *testing.T) {
	b := DefaultISMBand()
	p := DefaultFMParams()
	active, err := AllocateCarriers(b, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Proposal on top of an active carrier: busy.
	busy := Allocation{CarrierHz: active[1].CarrierHz, BandwidthHz: active[1].BandwidthHz}
	if CarrierSense(active, busy) {
		t.Error("overlapping proposal should sense busy")
	}
	// Far above the active ones: clear.
	clear := Allocation{CarrierHz: 920e6, BandwidthHz: CarsonBandwidth(p)}
	if !CarrierSense(active, clear) {
		t.Error("distant proposal should sense clear")
	}
}

func TestFindClearCarrier(t *testing.T) {
	b := DefaultISMBand()
	p := DefaultFMParams()
	var active []Allocation
	// Admit relays one by one through carrier sensing.
	for i := 0; i < 5; i++ {
		c, err := FindClearCarrier(b, p, active)
		if err != nil {
			t.Fatal(err)
		}
		a := Allocation{Relay: i, CarrierHz: c, BandwidthHz: CarsonBandwidth(p)}
		if !CarrierSense(active, a) {
			t.Fatalf("FindClearCarrier returned a busy carrier at %g", c)
		}
		active = append(active, a)
	}
	// Saturate a tiny band (10 kHz cannot hold a 14 kHz FM channel).
	tiny := ISMBand{LowHz: 902e6, HighHz: 902.01e6}
	if _, err := FindClearCarrier(tiny, p, nil); err == nil {
		t.Error("saturated band should error")
	}
	if _, err := FindClearCarrier(ISMBand{}, p, nil); err == nil {
		t.Error("invalid band should error")
	}
	if _, err := FindClearCarrier(b, FMParams{}, nil); err == nil {
		t.Error("invalid FM params should error")
	}
}

func TestFindClearCarrierFillsGaps(t *testing.T) {
	b := DefaultISMBand()
	p := DefaultFMParams()
	bw := CarsonBandwidth(p)
	// Two allocations with a gap exactly one slot wide between them.
	active := []Allocation{
		{CarrierHz: b.LowHz + bw/2, BandwidthHz: bw},
		{CarrierHz: b.LowHz + 2.5*bw + 2*b.GuardHz, BandwidthHz: bw},
	}
	c, err := FindClearCarrier(b, p, active)
	if err != nil {
		t.Fatal(err)
	}
	if c >= active[1].CarrierHz {
		t.Errorf("should fill the gap below the second carrier, got %g", c)
	}
}

func TestCoChannelInterference(t *testing.T) {
	p := DefaultFMParams()
	bw := CarsonBandwidth(p)
	victim := Allocation{CarrierHz: 910e6, BandwidthHz: bw}
	// Same-channel equal power: severe.
	severe := CoChannelInterference(victim, victim, 0)
	if severe < 10 {
		t.Errorf("co-channel equal-power penalty = %.1f dB, want severe", severe)
	}
	// Same channel, interferer 20 dB weaker: FM capture suppresses it.
	weak := CoChannelInterference(victim, victim, -20)
	if weak >= severe {
		t.Error("capture effect should reduce the penalty for a weak interferer")
	}
	// Far away in frequency: no penalty.
	far := Allocation{CarrierHz: 912e6, BandwidthHz: bw}
	if p := CoChannelInterference(victim, far, 0); p != 0 {
		t.Errorf("distant interferer penalty = %g, want 0", p)
	}
	if p := CoChannelInterference(Allocation{}, victim, 0); p != 0 {
		t.Error("degenerate victim should have zero penalty")
	}
}

func TestOverlapProperty(t *testing.T) {
	// Overlap is symmetric.
	f := func(c1, c2, w1, w2 float64) bool {
		a := Allocation{CarrierHz: 910e6 + mod(c1, 1e6), BandwidthHz: 1e3 + mod(w1, 1e5)}
		b := Allocation{CarrierHz: 910e6 + mod(c2, 1e6), BandwidthHz: 1e3 + mod(w2, 1e5)}
		return Overlap(a, b) == Overlap(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func mod(v, m float64) float64 {
	v = math.Abs(math.Mod(v, m))
	if math.IsNaN(v) {
		return 0
	}
	return v
}
