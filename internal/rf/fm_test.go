package rf

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"mute/internal/audio"
	"mute/internal/dsp"
)

func cleanChannel() ChannelParams {
	return ChannelParams{SNRdB: math.Inf(1), Gain: 1}
}

func TestFMParamsValidate(t *testing.T) {
	if err := DefaultFMParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []FMParams{
		{AudioRate: 0, Oversample: 16, DeviationHz: 3000},
		{AudioRate: 8000, Oversample: 1, DeviationHz: 3000},
		{AudioRate: 8000, Oversample: 16, DeviationHz: 0},
		{AudioRate: 8000, Oversample: 2, DeviationHz: 9000},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestModulateConstantEnvelope(t *testing.T) {
	p := DefaultFMParams()
	msg := audio.Render(audio.NewWhiteNoise(1, p.AudioRate, 0.9), 100)
	x, err := Modulate(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != len(msg)*p.Oversample {
		t.Fatalf("baseband length %d, want %d", len(x), len(msg)*p.Oversample)
	}
	for i, v := range x {
		if math.Abs(cmplx.Abs(v)-1) > 1e-9 {
			t.Fatalf("sample %d: envelope %g, want 1 (FM is constant envelope)", i, cmplx.Abs(v))
		}
	}
}

func TestLinkCleanChannelRecoversAudio(t *testing.T) {
	p := DefaultFMParams()
	msg := audio.Render(audio.NewTone(700, p.AudioRate, 0.7, 0), 2000)
	got, err := Link(p, cleanChannel(), msg)
	if err != nil {
		t.Fatal(err)
	}
	snr := AudioSNR(msg, got)
	if snr < 30 {
		t.Errorf("clean-channel audio SNR = %.1f dB, want > 30", snr)
	}
}

func TestLinkCFOBecomesDCAndIsRemoved(t *testing.T) {
	// The paper's reason for FM: CFO appears as a constant DC offset in
	// the demodulated audio and is averaged out. A large CFO should barely
	// change the recovered tone.
	p := DefaultFMParams()
	msg := audio.Render(audio.NewTone(700, p.AudioRate, 0.7, 0), 4000)
	noCFO, err := Link(p, cleanChannel(), msg)
	if err != nil {
		t.Fatal(err)
	}
	withCFO, err := Link(p, ChannelParams{SNRdB: math.Inf(1), CFOHz: 2000, Gain: 1}, msg)
	if err != nil {
		t.Fatal(err)
	}
	snrA := AudioSNR(msg, noCFO)
	snrB := AudioSNR(msg, withCFO)
	if snrB < snrA-6 {
		t.Errorf("CFO degraded SNR too much: %.1f vs %.1f dB", snrB, snrA)
	}
	if snrB < 20 {
		t.Errorf("with-CFO SNR = %.1f dB, want > 20", snrB)
	}
}

func TestLinkAmplitudeDistortionImmunity(t *testing.T) {
	// FM's second property: amplitude distortion (PA saturation, flat
	// gain) does not corrupt the message.
	p := DefaultFMParams()
	msg := audio.Render(audio.NewWhiteNoise(2, p.AudioRate, 0.8), 2000)
	clean, err := Link(p, cleanChannel(), msg)
	if err != nil {
		t.Fatal(err)
	}
	hostile := ChannelParams{SNRdB: math.Inf(1), PASaturation: 0.4, Gain: 0.3}
	squashed, err := Link(p, hostile, msg)
	if err != nil {
		t.Fatal(err)
	}
	snrClean := AudioSNR(msg, clean)
	snrSquashed := AudioSNR(msg, squashed)
	if snrSquashed < snrClean-1 {
		t.Errorf("amplitude distortion hurt FM: %.1f vs %.1f dB", snrSquashed, snrClean)
	}
}

func TestLinkNoiseDegradesGracefully(t *testing.T) {
	p := DefaultFMParams()
	msg := audio.Render(audio.NewTone(500, p.AudioRate, 0.7, 0), 4000)
	snrs := []float64{40, 20, 10}
	var audioSNRs []float64
	for _, s := range snrs {
		got, err := Link(p, ChannelParams{SNRdB: s, Gain: 1, Seed: 3}, msg)
		if err != nil {
			t.Fatal(err)
		}
		audioSNRs = append(audioSNRs, AudioSNR(msg, got))
	}
	if !(audioSNRs[0] > audioSNRs[1] && audioSNRs[1] > audioSNRs[2]) {
		t.Errorf("audio SNR should fall with channel SNR: %v", audioSNRs)
	}
	if audioSNRs[0] < 25 {
		t.Errorf("40 dB channel should give > 25 dB audio, got %.1f", audioSNRs[0])
	}
}

func TestLinkRoundTripProperty(t *testing.T) {
	// Any bounded message survives a clean link with high fidelity.
	p := DefaultFMParams()
	f := func(seed uint64) bool {
		msg := audio.Render(audio.NewWhiteNoise(seed, p.AudioRate, 0.7), 800)
		got, err := Link(p, cleanChannel(), msg)
		if err != nil {
			return false
		}
		// Full-deviation white noise carries inherent zero-order-hold
		// distortion; 15 dB is the conservative fidelity floor.
		return AudioSNR(msg, got) > 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDemodulateEmpty(t *testing.T) {
	p := DefaultFMParams()
	got, err := Demodulate(p, nil)
	if err != nil || got != nil {
		t.Error("empty demodulate should return nil, nil")
	}
}

func TestModulateValidates(t *testing.T) {
	if _, err := Modulate(FMParams{}, []float64{0}); err == nil {
		t.Error("invalid params should error")
	}
	if _, err := Demodulate(FMParams{}, []complex128{1}); err == nil {
		t.Error("invalid params should error")
	}
	if _, err := Apply(FMParams{}, DefaultChannel(), nil); err == nil {
		t.Error("invalid params should error")
	}
}

func TestPhaseNoiseDegrades(t *testing.T) {
	p := DefaultFMParams()
	msg := audio.Render(audio.NewTone(500, p.AudioRate, 0.7, 0), 4000)
	clean, err := Link(p, cleanChannel(), msg)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Link(p, ChannelParams{SNRdB: math.Inf(1), PhaseNoiseStd: 0.05, Gain: 1, Seed: 5}, msg)
	if err != nil {
		t.Fatal(err)
	}
	if AudioSNR(msg, noisy) >= AudioSNR(msg, clean) {
		t.Error("heavy phase noise should reduce audio SNR")
	}
}

func TestAudioSNRPerfect(t *testing.T) {
	x := audio.Render(audio.NewTone(440, 8000, 0.5, 0), 1000)
	if !math.IsInf(AudioSNR(x, x), 1) {
		t.Error("identical signals should have infinite SNR")
	}
	if AudioSNR(nil, nil) != 0 {
		t.Error("empty signals should have 0 SNR")
	}
}

func TestRelayCapture(t *testing.T) {
	fm := DefaultFMParams()
	r, err := NewRelay(DefaultRelayParams(), fm)
	if err != nil {
		t.Fatal(err)
	}
	in := audio.Render(audio.NewTone(500, fm.AudioRate, 0.5, 0), 4000)
	out := r.Capture(in)
	if len(out) != len(in) {
		t.Fatal("capture length mismatch")
	}
	// The 500 Hz tone is inside the LPF passband: power preserved within 3 dB.
	pr := dsp.Power(out[500:]) / dsp.Power(in[500:])
	if pr < 0.5 || pr > 2 {
		t.Errorf("capture power ratio = %g, want ~1", pr)
	}
}

func TestRelayForwardEndToEnd(t *testing.T) {
	fm := DefaultFMParams()
	r, err := NewRelay(DefaultRelayParams(), fm)
	if err != nil {
		t.Fatal(err)
	}
	in := audio.Render(audio.NewTone(700, fm.AudioRate, 0.5, 0), 4000)
	out, err := r.Forward(in, DefaultChannel())
	if err != nil {
		t.Fatal(err)
	}
	// The forwarded audio should strongly correlate with the source tone.
	snr := AudioSNR(in, out)
	if snr < 15 {
		t.Errorf("relay forward audio SNR = %.1f dB, want > 15", snr)
	}
}

func TestRelayErrors(t *testing.T) {
	fm := DefaultFMParams()
	if _, err := NewRelay(RelayParams{MicNoiseRMS: -1, Gain: 1}, fm); err == nil {
		t.Error("negative mic noise should error")
	}
	if _, err := NewRelay(RelayParams{Gain: 0}, fm); err == nil {
		t.Error("zero gain should error")
	}
	if _, err := NewRelay(DefaultRelayParams(), FMParams{}); err == nil {
		t.Error("invalid FM params should error")
	}
}

func TestRelayLPFDefaultsWhenCutoffInvalid(t *testing.T) {
	fm := DefaultFMParams()
	rp := DefaultRelayParams()
	rp.LPFCutoffHz = 99999 // above Nyquist → clamp to default
	if _, err := NewRelay(rp, fm); err != nil {
		t.Errorf("out-of-range cutoff should fall back, got error: %v", err)
	}
}

func BenchmarkFMLink(b *testing.B) {
	p := DefaultFMParams()
	msg := audio.Render(audio.NewWhiteNoise(1, p.AudioRate, 0.7), 800)
	ch := DefaultChannel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Link(p, ch, msg); err != nil {
			b.Fatal(err)
		}
	}
}
