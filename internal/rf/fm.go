// Package rf simulates MUTE's analog wireless relay link at complex
// baseband: the frequency-modulation chain of Figure 9 (microphone → LPF →
// amplifier → VCO/FM → mixer/PA) and the corresponding receiver, plus the
// channel impairments the paper designs around — carrier frequency offset,
// amplitude distortion, additive noise, and PA nonlinearity.
//
// The 900 MHz carrier is not represented explicitly: up/down-conversion by
// an ideal mixer is an identity at complex baseband, and every impairment
// the paper discusses (CFO → DC offset after FM demodulation, amplitude
// noise rejected by constant-envelope FM) appears at baseband unchanged.
package rf

import (
	"fmt"
	"math"
	"math/cmplx"

	"mute/internal/audio"
)

// FMParams configures the FM link.
type FMParams struct {
	// AudioRate is the message sample rate in Hz (the paper's 8 kHz).
	AudioRate float64
	// Oversample is the ratio of baseband RF rate to audio rate.
	Oversample int
	// DeviationHz is the peak frequency deviation A_f for a full-scale
	// (|m| = 1) message.
	DeviationHz float64
}

// DefaultFMParams returns the narrowband configuration used throughout the
// evaluation: 8 kHz audio, 16× oversampled baseband, 3 kHz deviation
// (Carson bandwidth ≈ 14 kHz, well under the 26 MHz ISM channel the paper
// notes).
func DefaultFMParams() FMParams {
	return FMParams{AudioRate: 8000, Oversample: 16, DeviationHz: 3000}
}

// Validate checks the parameters.
func (p FMParams) Validate() error {
	if p.AudioRate <= 0 {
		return fmt.Errorf("rf: audio rate %g must be positive", p.AudioRate)
	}
	if p.Oversample < 2 {
		return fmt.Errorf("rf: oversample %d must be >= 2", p.Oversample)
	}
	if p.DeviationHz <= 0 {
		return fmt.Errorf("rf: deviation %g must be positive", p.DeviationHz)
	}
	if p.DeviationHz >= p.BasebandRate()/2 {
		return fmt.Errorf("rf: deviation %g exceeds baseband Nyquist %g", p.DeviationHz, p.BasebandRate()/2)
	}
	return nil
}

// BasebandRate returns the complex-baseband sample rate in Hz.
func (p FMParams) BasebandRate() float64 { return p.AudioRate * float64(p.Oversample) }

// Modulate frequency-modulates the audio message (Equation 9 of the paper,
// at baseband): x[n] = exp(j 2π A_f Σ m). Each audio sample is held for
// Oversample baseband samples (the VCO integrates a zero-order-hold
// message, matching the analog design's lack of digital interpolation).
func Modulate(p FMParams, msg []float64) ([]complex128, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bbRate := p.BasebandRate()
	out := make([]complex128, len(msg)*p.Oversample)
	phase := 0.0
	i := 0
	for _, m := range msg {
		step := 2 * math.Pi * p.DeviationHz * m / bbRate
		for k := 0; k < p.Oversample; k++ {
			phase += step
			if phase > math.Pi {
				phase -= 2 * math.Pi
			} else if phase < -math.Pi {
				phase += 2 * math.Pi
			}
			out[i] = cmplx.Rect(1, phase)
			i++
		}
	}
	return out, nil
}

// Demodulate recovers the audio message from baseband FM samples by phase
// differentiation, averages each audio-sample period, and removes the DC
// offset produced by any carrier frequency offset (the property that lets
// MUTE skip explicit CFO compensation).
func Demodulate(p FMParams, x []complex128) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(x) == 0 {
		return nil, nil
	}
	bbRate := p.BasebandRate()
	inst := make([]float64, len(x))
	prev := x[0]
	for i := 1; i < len(x); i++ {
		d := x[i] * cmplx.Conj(prev)
		inst[i] = cmplx.Phase(d) * bbRate / (2 * math.Pi * p.DeviationHz)
		prev = x[i]
	}
	// Decimate by averaging each oversample block.
	n := len(x) / p.Oversample
	msg := make([]float64, n)
	for i := 0; i < n; i++ {
		var acc float64
		for k := 0; k < p.Oversample; k++ {
			acc += inst[i*p.Oversample+k]
		}
		msg[i] = acc / float64(p.Oversample)
	}
	removeDC(msg)
	return msg, nil
}

// removeDC subtracts a slowly tracked mean (one-pole high-pass), modelling
// the receiver's averaging of the CFO-induced DC term.
func removeDC(x []float64) {
	const alpha = 0.999
	var mean float64
	// Initialize the tracker with the head of the signal so short inputs
	// are still centered.
	n := len(x)
	if n == 0 {
		return
	}
	warm := n
	if warm > 256 {
		warm = 256
	}
	for i := 0; i < warm; i++ {
		mean += x[i]
	}
	mean /= float64(warm)
	for i := range x {
		mean = alpha*mean + (1-alpha)*x[i]
		x[i] -= mean
	}
}

// Fade is a scheduled deep-fade event: the channel amplitude ramps down by
// DepthdB over RampSamples, holds there for HoldSamples, and ramps back up
// over another RampSamples. Because the receiver noise floor is fixed, an
// amplitude drop of DepthdB is an SNR drop of DepthdB — the shadowing dips
// (a person walking between relay and ear, a door closing) that the
// supervisor's health estimator must detect from the demodulated audio.
// All counts are in baseband samples (audio index × Oversample).
type Fade struct {
	// StartSample is the first baseband sample of the down-ramp.
	StartSample uint64
	// RampSamples is the length of each edge; 0 makes the fade a step.
	RampSamples uint64
	// HoldSamples is how long the fade floor lasts.
	HoldSamples uint64
	// DepthdB is the attenuation at the fade floor (> 0).
	DepthdB float64
}

// penaltyDB returns the attenuation in dB the fade applies at sample i.
func (f Fade) penaltyDB(i uint64) float64 {
	if i < f.StartSample {
		return 0
	}
	off := i - f.StartSample
	if off < f.RampSamples {
		return f.DepthdB * float64(off+1) / float64(f.RampSamples)
	}
	off -= f.RampSamples
	if off < f.HoldSamples {
		return f.DepthdB
	}
	off -= f.HoldSamples
	if off < f.RampSamples {
		return f.DepthdB * float64(f.RampSamples-off) / float64(f.RampSamples)
	}
	return 0
}

// ChannelParams models the RF channel and front-end impairments.
type ChannelParams struct {
	// SNRdB is the baseband signal-to-noise ratio; +Inf disables noise.
	SNRdB float64
	// CFOHz is the carrier frequency offset between transmitter PLL and
	// receiver LO.
	CFOHz float64
	// PhaseNoiseStd is the per-sample standard deviation (radians) of a
	// random-walk phase noise process. 0 disables it.
	PhaseNoiseStd float64
	// PASaturation is the amplifier soft-clipping level relative to the
	// unit envelope; values <= 0 disable the nonlinearity. Constant-
	// envelope FM should pass through unharmed — that is the point the
	// paper makes for choosing FM.
	PASaturation float64
	// Gain is a flat channel amplitude gain (1 = lossless). The paper's
	// single-tap flat channel h_w.
	Gain float64
	// Seed drives the deterministic noise processes.
	Seed uint64
	// Fades schedules deterministic deep-fade events on top of the flat
	// gain. They consume no randomness and, outside their windows, leave
	// the channel bit-identical to one with no fades scheduled. On a
	// noiseless channel (SNRdB = +Inf) a fade still attenuates the signal
	// but costs no SNR.
	Fades []Fade
}

// DefaultChannel returns a benign channel: 30 dB SNR, 500 Hz CFO, light
// phase noise, PA saturation at 1.0, unit gain.
func DefaultChannel() ChannelParams {
	return ChannelParams{SNRdB: 30, CFOHz: 500, PhaseNoiseStd: 0.002, PASaturation: 1.0, Gain: 1, Seed: 1}
}

// Apply passes baseband samples through the impaired channel.
func Apply(p FMParams, ch ChannelParams, x []complex128) ([]complex128, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for i, f := range ch.Fades {
		if f.DepthdB <= 0 {
			return nil, fmt.Errorf("rf: fade %d has non-positive depth %g dB", i, f.DepthdB)
		}
	}
	gain := ch.Gain
	if gain == 0 {
		gain = 1
	}
	rng := audio.NewRNG(ch.Seed)
	bbRate := p.BasebandRate()
	cfoStep := 2 * math.Pi * ch.CFOHz / bbRate
	var noiseStd float64
	if !math.IsInf(ch.SNRdB, 1) {
		// Signal power of unit-envelope FM is 1.
		noiseStd = math.Sqrt(math.Pow(10, -ch.SNRdB/10) / 2)
	}
	out := make([]complex128, len(x))
	phase := 0.0
	pn := 0.0
	for i, v := range x {
		// PA nonlinearity: soft-limit the envelope.
		if ch.PASaturation > 0 {
			env := cmplx.Abs(v)
			if env > 0 {
				limited := ch.PASaturation * math.Tanh(env/ch.PASaturation)
				v *= complex(limited/env, 0)
			}
		}
		// CFO and phase noise rotate the constellation.
		phase += cfoStep
		if ch.PhaseNoiseStd > 0 {
			pn += ch.PhaseNoiseStd * rng.Norm()
		}
		// Scheduled deep fades attenuate the signal against the fixed
		// receiver noise floor; dB penalties from overlapping fades add.
		g := gain
		if len(ch.Fades) > 0 {
			pen := 0.0
			for _, f := range ch.Fades {
				pen += f.penaltyDB(uint64(i))
			}
			if pen > 0 {
				g *= math.Pow(10, -pen/20)
			}
		}
		v *= cmplx.Rect(g, phase+pn)
		if noiseStd > 0 {
			v += complex(noiseStd*rng.Norm(), noiseStd*rng.Norm())
		}
		out[i] = v
	}
	return out, nil
}

// Link runs message audio through the full modulate → channel → demodulate
// chain and returns the recovered audio.
func Link(p FMParams, ch ChannelParams, msg []float64) ([]float64, error) {
	tx, err := Modulate(p, msg)
	if err != nil {
		return nil, err
	}
	rx, err := Apply(p, ch, tx)
	if err != nil {
		return nil, err
	}
	return Demodulate(p, rx)
}

// AudioSNR measures the recovered-audio SNR in dB given the reference
// message, aligning only amplitudes (the FM chain is delay-free by
// construction). Used by the link-quality ablation.
func AudioSNR(ref, got []float64) float64 {
	n := len(ref)
	if len(got) < n {
		n = len(got)
	}
	if n == 0 {
		return 0
	}
	// Skip the DC-tracker warmup.
	skip := n / 8
	var sigPow, errPow float64
	for i := skip; i < n; i++ {
		sigPow += ref[i] * ref[i]
		d := got[i] - ref[i]
		errPow += d * d
	}
	if errPow == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sigPow/errPow)
}
