package rf

import (
	"fmt"
	"math"
	"sort"
)

// The paper (Section 6) notes that each relay occupies only a few tens of
// kilohertz of the 26 MHz 900 MHz ISM band, and that co-located systems can
// coexist through carrier sensing and channel allocation. This file models
// that spectrum management: a band plan, Carson-rule channel widths,
// first-fit allocation, and a carrier-sense check with co-channel
// interference accounting.

// ISMBand describes the shared band.
type ISMBand struct {
	// LowHz and HighHz bound the band (defaults: 902-928 MHz).
	LowHz, HighHz float64
	// GuardHz is the guard spacing enforced between adjacent carriers.
	GuardHz float64
}

// DefaultISMBand returns the US 902–928 MHz band with 10 kHz guards.
func DefaultISMBand() ISMBand {
	return ISMBand{LowHz: 902e6, HighHz: 928e6, GuardHz: 10e3}
}

// Width returns the band width in Hz.
func (b ISMBand) Width() float64 { return b.HighHz - b.LowHz }

// Validate checks the band plan.
func (b ISMBand) Validate() error {
	if b.LowHz <= 0 || b.HighHz <= b.LowHz {
		return fmt.Errorf("rf: invalid band [%g, %g]", b.LowHz, b.HighHz)
	}
	if b.GuardHz < 0 {
		return fmt.Errorf("rf: negative guard %g", b.GuardHz)
	}
	return nil
}

// CarsonBandwidth returns the occupied bandwidth of an FM transmission by
// Carson's rule: 2·(Δf + f_m).
func CarsonBandwidth(p FMParams) float64 {
	return 2 * (p.DeviationHz + p.AudioRate/2)
}

// Allocation is one relay's assigned carrier.
type Allocation struct {
	// Relay identifies the transmitter.
	Relay int
	// CarrierHz is the assigned center frequency.
	CarrierHz float64
	// BandwidthHz is the occupied bandwidth.
	BandwidthHz float64
}

// AllocateCarriers assigns non-overlapping carriers for n identical FM
// relays in the band, first-fit from the bottom edge. It errors when the
// band cannot hold them all.
func AllocateCarriers(b ISMBand, p FMParams, n int) ([]Allocation, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("rf: need at least one relay, got %d", n)
	}
	bw := CarsonBandwidth(p)
	slot := bw + b.GuardHz
	if float64(n)*slot-b.GuardHz > b.Width() {
		return nil, fmt.Errorf("rf: %d relays of %.0f Hz do not fit in %.0f Hz band", n, bw, b.Width())
	}
	out := make([]Allocation, n)
	for i := 0; i < n; i++ {
		out[i] = Allocation{
			Relay:       i,
			CarrierHz:   b.LowHz + float64(i)*slot + bw/2,
			BandwidthHz: bw,
		}
	}
	return out, nil
}

// FractionOccupied reports how much of the band n relays consume — the
// paper's point that even many relays occupy a small fraction.
func FractionOccupied(b ISMBand, p FMParams, n int) float64 {
	return float64(n) * CarsonBandwidth(p) / b.Width()
}

// Overlap reports whether two allocations' occupied bands overlap.
func Overlap(a, c Allocation) bool {
	loA, hiA := a.CarrierHz-a.BandwidthHz/2, a.CarrierHz+a.BandwidthHz/2
	loC, hiC := c.CarrierHz-c.BandwidthHz/2, c.CarrierHz+c.BandwidthHz/2
	return loA < hiC && loC < hiA
}

// CarrierSense models the carrier-sensing coexistence check: given
// existing allocations and a proposed carrier, it reports whether the
// channel is clear (no overlap with any active transmission).
func CarrierSense(active []Allocation, proposed Allocation) bool {
	for _, a := range active {
		if Overlap(a, proposed) {
			return false
		}
	}
	return true
}

// FindClearCarrier scans the band for the lowest clear carrier for an FM
// transmission given the active allocations, or returns an error when the
// band is saturated.
func FindClearCarrier(b ISMBand, p FMParams, active []Allocation) (float64, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	bw := CarsonBandwidth(p)
	// Candidate edges: band bottom and the top of every active allocation.
	candidates := []float64{b.LowHz}
	for _, a := range active {
		candidates = append(candidates, a.CarrierHz+a.BandwidthHz/2+b.GuardHz)
	}
	sort.Float64s(candidates)
	for _, lo := range candidates {
		c := Allocation{CarrierHz: lo + bw/2, BandwidthHz: bw}
		if c.CarrierHz+bw/2 > b.HighHz {
			continue
		}
		if CarrierSense(active, c) {
			return c.CarrierHz, nil
		}
	}
	return 0, fmt.Errorf("rf: no clear carrier for %.0f Hz transmission", bw)
}

// CoChannelInterference estimates the audio SNR penalty (dB) a victim FM
// link suffers from an interferer, from their carrier separation and
// relative received power. Fully overlapping equal-power interference
// costs capture-threshold-level degradation; beyond one channel width the
// penalty decays fast (FM capture effect).
func CoChannelInterference(victim, interferer Allocation, relativePowerDB float64) float64 {
	sep := math.Abs(victim.CarrierHz - interferer.CarrierHz)
	bw := victim.BandwidthHz
	if bw <= 0 {
		return 0
	}
	// Spectral overlap factor in [0, 1].
	overlap := 1 - sep/bw
	if overlap <= 0 {
		return 0
	}
	// FM capture: an interferer much weaker than the carrier is mostly
	// suppressed; near equal power it destroys the link.
	captureMargin := -relativePowerDB // positive when the victim is stronger
	suppression := captureMargin - 6  // ~6 dB capture threshold
	if suppression < 0 {
		suppression = 0
	}
	penalty := overlap * math.Max(0, 30-suppression)
	return penalty
}
