package rf

import (
	"math"
	"testing"

	"mute/internal/audio"
)

// TestFadePenaltyShape pins the trapezoid: ramp down, hold at DepthdB,
// ramp back, zero outside.
func TestFadePenaltyShape(t *testing.T) {
	f := Fade{StartSample: 100, RampSamples: 10, HoldSamples: 20, DepthdB: 30}
	cases := []struct {
		i    uint64
		want float64
	}{
		{0, 0}, {99, 0},
		{100, 3}, {109, 30}, // down-ramp: first step to full depth
		{110, 30}, {129, 30}, // hold
		{130, 30}, {139, 3}, // up-ramp back toward clear
		{140, 0}, {1000, 0},
	}
	for _, c := range cases {
		if got := f.penaltyDB(c.i); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("penaltyDB(%d) = %g, want %g", c.i, got, c.want)
		}
	}
	// Zero ramp means a step fade.
	step := Fade{StartSample: 5, HoldSamples: 3, DepthdB: 20}
	if step.penaltyDB(4) != 0 || step.penaltyDB(5) != 20 || step.penaltyDB(7) != 20 || step.penaltyDB(8) != 0 {
		t.Error("zero-ramp fade is not a clean step")
	}
}

// TestFadeDegradesAudioSNRInWindow runs a tone through the FM link with a
// deep fade in the middle and checks that recovered-audio error energy is
// concentrated in the fade window while the surrounding audio is clean —
// and that a scheduled fade leaves samples outside its window bit-identical
// to a channel with no fades.
func TestFadeDegradesAudioSNRInWindow(t *testing.T) {
	p := DefaultFMParams()
	msg := audio.Render(audio.NewWhiteNoise(3, p.AudioRate, 0.4), 4000)
	ch := DefaultChannel()
	// Fade audio samples [1500, 2500): baseband units are ×Oversample.
	os := uint64(p.Oversample)
	faded := ch
	faded.Fades = []Fade{{
		StartSample: 1500 * os,
		RampSamples: 50 * os,
		HoldSamples: 900 * os,
		DepthdB:     40,
	}}

	got, err := Link(p, faded, msg)
	if err != nil {
		t.Fatal(err)
	}
	errPow := func(lo, hi int) float64 {
		var e float64
		for i := lo; i < hi; i++ {
			d := got[i] - msg[i]
			e += d * d
		}
		return e / float64(hi-lo)
	}
	before := errPow(500, 1400)
	inside := errPow(1600, 2400)
	after := errPow(2700, 3900)
	if inside < 100*before {
		t.Errorf("fade window error %g not far above pre-fade %g", inside, before)
	}
	if after > 10*before {
		t.Errorf("post-fade error %g did not recover toward pre-fade %g", after, before)
	}

	// Bit-identity outside any window: a fade scheduled past the end of
	// the signal must not perturb a single sample.
	tx, err := Modulate(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Apply(p, ch, tx)
	if err != nil {
		t.Fatal(err)
	}
	future := ch
	future.Fades = []Fade{{StartSample: uint64(len(tx) + 1), HoldSamples: 10, DepthdB: 20}}
	shifted, err := Apply(p, future, tx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i] != shifted[i] {
			t.Fatalf("sample %d differs with an out-of-range fade scheduled", i)
		}
	}

	// Non-positive depth is rejected.
	bad := ch
	bad.Fades = []Fade{{DepthdB: 0, HoldSamples: 1}}
	if _, err := Apply(p, bad, tx); err == nil {
		t.Error("zero-depth fade should fail validation")
	}
}
