// Package profile implements sound-profile recognition for LANC's
// predictive filter switching (Section 3.2(2) of the paper). A profile is a
// statistical signature of the dominant sound source — here the normalized
// energy distribution across frequency bands plus an overall level — and
// the classifier matches incoming windows against cached profiles so that
// converged adaptive-filter weights can be reloaded instead of re-learned.
package profile

import (
	"fmt"
	"math"

	"mute/internal/dsp"
)

// Signature is a sound-profile fingerprint: band energy fractions plus the
// total level. Two signatures from the same source type are close in
// Euclidean distance; speech vs. background noise differ strongly.
type Signature struct {
	// Bands holds the fraction of power in each frequency band
	// (sums to 1 for non-silent windows).
	Bands []float64
	// Level is the total window power (linear).
	Level float64
	// Silent marks windows whose power is below the silence floor.
	Silent bool
}

// SilenceFloor is the power level below which a window counts as silent.
const SilenceFloor = 1e-7

// Compute derives a signature from a sample window. nBands bands spanning
// [0, sampleRate/2] are used; 8 is plenty to separate speech, music, hum
// and wide-band noise at 8 kHz.
func Compute(window []float64, sampleRate float64, nBands int) (Signature, error) {
	if len(window) == 0 {
		return Signature{}, dsp.ErrEmptyInput
	}
	if nBands <= 0 {
		return Signature{}, fmt.Errorf("profile: nBands must be positive, got %d", nBands)
	}
	level := dsp.Power(window)
	sig := Signature{Bands: make([]float64, nBands), Level: level}
	if level < SilenceFloor {
		sig.Silent = true
		return sig, nil
	}
	psd, err := dsp.WelchPSD(window, sampleRate, len(window))
	if err != nil {
		return Signature{}, err
	}
	bands := psd.BandEnergies(nBands, sampleRate/2)
	var total float64
	for _, b := range bands {
		total += b
	}
	if total > 0 {
		for i := range bands {
			bands[i] /= total
		}
	}
	copy(sig.Bands, bands)
	return sig, nil
}

// Distance returns the dissimilarity of two signatures: the Euclidean
// distance between band distributions plus a bounded level term (a tenth
// of the |log10| power ratio, capped at 1), so that a loud talker starting
// over quiet background registers as a new profile even when the spectral
// tilt is similar. The silent flag dominates (silent vs. non-silent is
// maximally distant).
func Distance(a, b Signature) float64 {
	if a.Silent != b.Silent {
		return math.Inf(1)
	}
	if a.Silent && b.Silent {
		return 0
	}
	n := len(a.Bands)
	if len(b.Bands) < n {
		n = len(b.Bands)
	}
	var d float64
	for i := 0; i < n; i++ {
		diff := a.Bands[i] - b.Bands[i]
		d += diff * diff
	}
	level := math.Abs(math.Log10((a.Level+SilenceFloor)/(b.Level+SilenceFloor))) * 0.1
	if level > 1 {
		level = 1
	}
	return math.Sqrt(d) + level
}

// Classifier assigns windows to profile slots, creating new slots when a
// window matches nothing known. Slot 0 is reserved for silence.
type Classifier struct {
	// Threshold is the maximum signature distance to match an existing
	// profile.
	Threshold float64
	// MaxProfiles caps the number of tracked profiles (silence included).
	MaxProfiles int

	protos []Signature // prototype signature per profile slot
}

// NewClassifier creates a classifier with the given matching threshold.
func NewClassifier(threshold float64, maxProfiles int) (*Classifier, error) {
	if threshold <= 0 {
		return nil, fmt.Errorf("profile: threshold must be positive, got %g", threshold)
	}
	if maxProfiles < 2 {
		return nil, fmt.Errorf("profile: need at least 2 profile slots, got %d", maxProfiles)
	}
	c := &Classifier{Threshold: threshold, MaxProfiles: maxProfiles}
	c.protos = append(c.protos, Signature{Silent: true}) // slot 0: silence
	return c, nil
}

// Classify matches sig to a profile slot, registering a new slot if
// nothing matches and capacity remains. The second return value is true
// when a new profile was created.
func (c *Classifier) Classify(sig Signature) (int, bool) {
	if sig.Silent {
		return 0, false
	}
	best, bestDist := -1, math.Inf(1)
	for i := 1; i < len(c.protos); i++ {
		if d := Distance(sig, c.protos[i]); d < bestDist {
			best, bestDist = i, d
		}
	}
	if best >= 0 && bestDist <= c.Threshold {
		// Slowly adapt the prototype toward the observation so it tracks
		// drifting sources.
		p := &c.protos[best]
		for k := range p.Bands {
			if k < len(sig.Bands) {
				p.Bands[k] = 0.95*p.Bands[k] + 0.05*sig.Bands[k]
			}
		}
		p.Level = 0.95*p.Level + 0.05*sig.Level
		return best, false
	}
	if len(c.protos) < c.MaxProfiles {
		cp := Signature{Bands: append([]float64(nil), sig.Bands...), Level: sig.Level}
		c.protos = append(c.protos, cp)
		return len(c.protos) - 1, true
	}
	// Capacity exhausted: return the nearest even though it is far.
	if best < 0 {
		best = 0
	}
	return best, false
}

// Profiles returns the number of registered profile slots.
func (c *Classifier) Profiles() int { return len(c.protos) }

// Reset forgets every learned profile, keeping only the reserved silence
// slot. It restores the classifier to its freshly constructed state without
// re-validating the configuration, so callers can reset infallibly.
func (c *Classifier) Reset() {
	c.protos = c.protos[:1]
}

// FilterCache stores converged adaptive-filter weights per profile slot so
// LANC can swap them in at transitions instead of re-converging.
type FilterCache struct {
	weights map[int][]float64
}

// NewFilterCache creates an empty cache.
func NewFilterCache() *FilterCache {
	return &FilterCache{weights: make(map[int][]float64)}
}

// Store saves a copy of w for profile id.
func (fc *FilterCache) Store(id int, w []float64) {
	cp := make([]float64, len(w))
	copy(cp, w)
	fc.weights[id] = cp
}

// Load returns a copy of the cached weights for id, or nil if absent.
func (fc *FilterCache) Load(id int) []float64 {
	w, ok := fc.weights[id]
	if !ok {
		return nil
	}
	cp := make([]float64, len(w))
	copy(cp, w)
	return cp
}

// Has reports whether a filter is cached for id.
func (fc *FilterCache) Has(id int) bool {
	_, ok := fc.weights[id]
	return ok
}

// Len returns the number of cached filters.
func (fc *FilterCache) Len() int { return len(fc.weights) }
