package profile

import (
	"math"
	"testing"
	"testing/quick"

	"mute/internal/audio"
)

const fs = 8000.0

func sigOf(t *testing.T, g audio.Generator, n int) Signature {
	t.Helper()
	sig, err := Compute(audio.Render(g, n), fs, 8)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil, fs, 8); err == nil {
		t.Error("empty window should error")
	}
	if _, err := Compute([]float64{1}, fs, 0); err == nil {
		t.Error("zero bands should error")
	}
}

func TestSilenceDetection(t *testing.T) {
	sig, err := Compute(make([]float64, 256), fs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !sig.Silent {
		t.Error("zero window should be silent")
	}
	loud := sigOf(t, audio.NewWhiteNoise(1, fs, 0.5), 256)
	if loud.Silent {
		t.Error("noise window should not be silent")
	}
}

func TestSignatureBandsNormalized(t *testing.T) {
	sig := sigOf(t, audio.NewWhiteNoise(2, fs, 0.5), 512)
	var sum float64
	for _, b := range sig.Bands {
		if b < 0 {
			t.Errorf("negative band fraction %g", b)
		}
		sum += b
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("band fractions sum to %g, want 1", sum)
	}
}

func TestSignatureSeparatesSources(t *testing.T) {
	toneA := sigOf(t, audio.NewTone(300, fs, 0.5, 0), 512)
	toneA2 := sigOf(t, audio.NewTone(320, fs, 0.4, 1), 512)
	toneHigh := sigOf(t, audio.NewTone(3000, fs, 0.5, 0), 512)
	noise := sigOf(t, audio.NewWhiteNoise(3, fs, 0.5), 512)
	// Same-band tones are close; different sources are far.
	if Distance(toneA, toneA2) > 0.2 {
		t.Errorf("similar tones distance %g, want < 0.2", Distance(toneA, toneA2))
	}
	if Distance(toneA, toneHigh) < 0.5 {
		t.Errorf("low vs high tone distance %g, want > 0.5", Distance(toneA, toneHigh))
	}
	if Distance(toneA, noise) < 0.3 {
		t.Errorf("tone vs noise distance %g, want > 0.3", Distance(toneA, noise))
	}
}

func TestDistanceSilent(t *testing.T) {
	s := Signature{Silent: true}
	n := Signature{Bands: []float64{1, 0}}
	if !math.IsInf(Distance(s, n), 1) {
		t.Error("silent vs non-silent should be infinitely distant")
	}
	if Distance(s, Signature{Silent: true}) != 0 {
		t.Error("silent vs silent should be 0")
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a := Signature{Bands: audio.Render(audio.NewWhiteNoise(seed, fs, 0.5), 8)}
		b := Signature{Bands: audio.Render(audio.NewWhiteNoise(seed+1, fs, 0.5), 8)}
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClassifierAssignsStableIDs(t *testing.T) {
	c, err := NewClassifier(0.35, 8)
	if err != nil {
		t.Fatal(err)
	}
	tone := sigOf(t, audio.NewTone(300, fs, 0.5, 0), 512)
	noise := sigOf(t, audio.NewWhiteNoise(4, fs, 0.5), 512)
	id1, isNew1 := c.Classify(tone)
	if !isNew1 || id1 == 0 {
		t.Errorf("first tone: id=%d new=%v", id1, isNew1)
	}
	id2, isNew2 := c.Classify(noise)
	if !isNew2 || id2 == id1 {
		t.Errorf("noise should get a new slot: id=%d new=%v", id2, isNew2)
	}
	// Re-presenting the tone matches the original slot.
	tone2 := sigOf(t, audio.NewTone(310, fs, 0.45, 2), 512)
	id3, isNew3 := c.Classify(tone2)
	if isNew3 || id3 != id1 {
		t.Errorf("similar tone should match slot %d, got %d (new=%v)", id1, id3, isNew3)
	}
	// Silence always maps to 0.
	if id, _ := c.Classify(Signature{Silent: true}); id != 0 {
		t.Errorf("silence should map to slot 0, got %d", id)
	}
	if c.Profiles() != 3 {
		t.Errorf("profiles = %d, want 3 (silence + 2)", c.Profiles())
	}
}

func TestClassifierCapacity(t *testing.T) {
	c, err := NewClassifier(0.01, 3) // tiny threshold forces new slots
	if err != nil {
		t.Fatal(err)
	}
	freqs := []float64{200, 900, 1800, 2700, 3500}
	for _, f := range freqs {
		c.Classify(sigOf(t, audio.NewTone(f, fs, 0.5, 0), 512))
	}
	if c.Profiles() > 3 {
		t.Errorf("profiles = %d, should be capped at 3", c.Profiles())
	}
}

func TestClassifierErrors(t *testing.T) {
	if _, err := NewClassifier(0, 8); err == nil {
		t.Error("zero threshold should error")
	}
	if _, err := NewClassifier(0.3, 1); err == nil {
		t.Error("single slot should error")
	}
}

func TestFilterCache(t *testing.T) {
	fc := NewFilterCache()
	if fc.Has(1) || fc.Len() != 0 {
		t.Error("fresh cache should be empty")
	}
	w := []float64{1, 2, 3}
	fc.Store(1, w)
	w[0] = 99 // the cache must have copied
	got := fc.Load(1)
	if got == nil || got[0] != 1 {
		t.Errorf("cache should store a copy, got %v", got)
	}
	got[1] = 99 // and return a copy
	if fc.Load(1)[1] != 2 {
		t.Error("cache should return a copy")
	}
	if fc.Load(7) != nil {
		t.Error("missing id should return nil")
	}
	if !fc.Has(1) || fc.Len() != 1 {
		t.Error("cache accounting wrong")
	}
}
