package stream

import (
	"math"
	"testing"
)

// feedSkewed feeds d frames of a relay running at skew ppm: frame k
// carries timestamp k·frameN and arrives at ear time k·frameN/(1+ppm·1e-6).
func feedSkewed(d *DriftEstimator, frames, frameN int, ppm float64) {
	for k := 0; k < frames; k++ {
		ts := uint64(k * frameN)
		arr := float64(k*frameN) / (1 + ppm*1e-6)
		d.Observe(ts, arr)
	}
}

// TestDriftEstimatorLocksOnConstantSkew checks convergence at +100 ppm:
// after a window of frames the filtered estimate sits within a few ppm.
func TestDriftEstimatorLocksOnConstantSkew(t *testing.T) {
	d, err := NewDriftEstimator(DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	feedSkewed(d, 200, 40, 100)
	if !d.Locked() {
		t.Fatal("estimator not locked after 200 frames")
	}
	if got := d.PPM(); math.Abs(got-100) > 5 {
		t.Errorf("estimate %v ppm after 200 frames at +100 ppm, want within ±5", got)
	}
	if raw := d.RawPPM(); math.Abs(raw-100) > 1 {
		t.Errorf("raw slope %v ppm, want within ±1 of 100", raw)
	}
}

// TestDriftEstimatorExactZeroOnCleanClock pins the exactness the 0 ppm
// bit-identity relies on: identical clocks make every slope exactly 1, so
// the estimate stays exactly 0.0 — not merely small.
func TestDriftEstimatorExactZeroOnCleanClock(t *testing.T) {
	d, err := NewDriftEstimator(DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	feedSkewed(d, 500, 40, 0)
	if got := d.PPM(); got != 0 {
		t.Errorf("clean-clock estimate = %v, want exactly 0", got)
	}
	if raw := d.RawPPM(); raw != 0 {
		t.Errorf("clean-clock raw slope = %v ppm, want exactly 0", raw)
	}
	if !d.Locked() {
		t.Error("estimator should still lock on a clean clock")
	}
}

// TestDriftEstimatorRejectsNonMonotonic checks duplicate and reordered
// timestamps (FEC echoes, retransmits) do not count as observations or
// move the estimate.
func TestDriftEstimatorRejectsNonMonotonic(t *testing.T) {
	d, err := NewDriftEstimator(DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	feedSkewed(d, 50, 40, 100)
	obs, est := d.Observations(), d.PPM()
	d.Observe(uint64(49*40), 12345) // duplicate timestamp
	d.Observe(uint64(10*40), 99999) // reordered far-past timestamp
	if d.Observations() != obs {
		t.Errorf("non-monotonic timestamps accepted: %d observations, want %d", d.Observations(), obs)
	}
	if d.PPM() != est {
		t.Errorf("estimate moved from %v to %v on rejected observations", est, d.PPM())
	}
	if d.LastTimestamp() != uint64(49*40) {
		t.Errorf("LastTimestamp = %d, want %d", d.LastTimestamp(), 49*40)
	}
}

// TestDriftEstimatorEstimableGoesStale checks the staleness horizon: an
// estimator starved of frames holds its estimate but stops reporting it
// fresh enough for phase steering.
func TestDriftEstimatorEstimableGoesStale(t *testing.T) {
	d, err := NewDriftEstimator(DriftConfig{StaleSpacings: 4})
	if err != nil {
		t.Fatal(err)
	}
	frameN := 40
	feedSkewed(d, 100, frameN, 100)
	last := d.LastArrival()
	if !d.Estimable(last + float64(frameN)) {
		t.Error("estimate stale one frame after the last arrival")
	}
	if d.Estimable(last + 10*float64(frameN)) {
		t.Error("estimate still fresh 10 spacings after the last arrival (horizon is 4)")
	}
	if !d.Locked() {
		t.Error("staleness must not clear lock")
	}
	if got := d.PPM(); math.Abs(got-100) > 5 {
		t.Errorf("stale estimate %v ppm drifted from 100", got)
	}
}

// TestDriftEstimatorStepSuspectedHysteresis checks an oscillator step
// fires StepSuspected exactly once and re-arms only after the loop
// re-converges.
func TestDriftEstimatorStepSuspectedHysteresis(t *testing.T) {
	d, err := NewDriftEstimator(DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	frameN := 40
	feedSkewed(d, 200, frameN, 50)
	if d.StepSuspected() {
		t.Fatal("step suspected on a settled constant skew")
	}
	// The relay's oscillator jumps +300 ppm: continue the arrival clock
	// from where it was, at the new rate.
	base := d.LastArrival()
	fires := 0
	for k := 1; k <= 300; k++ {
		ts := uint64((200 + k - 1) * frameN)
		d.Observe(ts, base+float64(k*frameN)/(1+350e-6))
		if d.StepSuspected() {
			fires++
		}
	}
	if fires != 1 {
		t.Errorf("StepSuspected fired %d times across one oscillator step, want exactly 1", fires)
	}
	if got := d.PPM(); math.Abs(got-350) > 10 {
		t.Errorf("estimate %v ppm after re-lock, want ~350", got)
	}
}

func TestDriftConfigValidation(t *testing.T) {
	bad := []DriftConfig{
		{WindowFrames: 2},
		{MinFrames: 1},
		{SlopeGain: -0.1},
		{SlopeGain: 1.5},
		{PhaseGainPPM: -1},
		{MaxPPM: -100},
		{JumpPPM: -5},
		{StaleSpacings: -2},
	}
	for _, cfg := range bad {
		if _, err := NewDriftEstimator(cfg); err == nil {
			t.Errorf("NewDriftEstimator accepted %+v", cfg)
		}
	}
	d, err := NewDriftEstimator(DriftConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got := d.Config()
	if got.WindowFrames != 64 || got.MinFrames != 8 || got.PhaseGainPPM != 2 || got.MaxPPM != 500 {
		t.Errorf("defaults not filled: %+v", got)
	}
}

// TestDriftEstimatorClampsToMaxPPM checks a wildly wrong clock saturates
// at the configured clamp instead of running away.
func TestDriftEstimatorClampsToMaxPPM(t *testing.T) {
	d, err := NewDriftEstimator(DriftConfig{MaxPPM: 200})
	if err != nil {
		t.Fatal(err)
	}
	feedSkewed(d, 300, 40, 900)
	if got := d.PPM(); got != 200 {
		t.Errorf("estimate %v ppm on a +900 ppm clock, want clamped to exactly 200", got)
	}
}
