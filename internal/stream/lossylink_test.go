package stream

import (
	"math"
	"testing"
	"time"

	"mute/internal/audio"
)

func linkFrames(count, size int) []*Frame {
	g := audio.NewWhiteNoise(3, 8000, 0.8)
	out := make([]*Frame, count)
	for i := range out {
		out[i] = &Frame{
			Seq:       uint32(i),
			Timestamp: uint64(i * size),
			Samples:   audio.Render(g, size),
		}
	}
	return out
}

// runLink pushes frames through a link and returns the delivered sequence.
func runLink(t *testing.T, p LossParams, frames []*Frame) []*Frame {
	t.Helper()
	link, err := NewLossyLink(p)
	if err != nil {
		t.Fatal(err)
	}
	var out []*Frame
	for _, f := range frames {
		out = append(out, link.Transfer(f)...)
	}
	out = append(out, link.Drain()...)
	return out
}

func TestLossyLinkPerfectIsIdentity(t *testing.T) {
	frames := linkFrames(50, 8)
	out := runLink(t, LossParams{Seed: 1}, frames)
	if len(out) != len(frames) {
		t.Fatalf("delivered %d frames, want %d", len(out), len(frames))
	}
	for i, f := range out {
		if f != frames[i] {
			t.Fatalf("frame %d reordered or replaced", i)
		}
	}
}

func TestLossyLinkDeterministicPerSeed(t *testing.T) {
	p := LossParams{Seed: 9, Loss: 0.2, Duplicate: 0.1, Reorder: 0.1, JitterProb: 0.2, MaxJitter: 3}
	frames := linkFrames(200, 4)
	a := runLink(t, p, frames)
	b := runLink(t, p, frames)
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d frames", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq {
			t.Fatalf("same seed diverged at delivery %d: seq %d vs %d", i, a[i].Seq, b[i].Seq)
		}
	}
	p2 := p
	p2.Seed = 10
	c := runLink(t, p2, frames)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Seq != c[i].Seq {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical impairment patterns")
	}
}

func TestLossyLinkIIDLossRate(t *testing.T) {
	const n = 5000
	link, err := NewLossyLink(LossParams{Seed: 4, Loss: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range linkFrames(n, 2) {
		link.Transfer(f)
	}
	link.Drain()
	st := link.Stats()
	rate := float64(st.Dropped) / float64(st.Offered)
	if math.Abs(rate-0.1) > 0.02 {
		t.Errorf("i.i.d. loss rate = %.3f, want ≈ 0.10", rate)
	}
	if st.Delivered != st.Offered-st.Dropped {
		t.Errorf("delivered %d, want offered−dropped = %d", st.Delivered, st.Offered-st.Dropped)
	}
}

func TestLossyLinkBurstLossMatchesTargets(t *testing.T) {
	const n = 20000
	link, err := NewLossyLink(LossParams{Seed: 5, Loss: 0.1, MeanBurst: 4})
	if err != nil {
		t.Fatal(err)
	}
	dropped := make([]bool, n)
	for i, f := range linkFrames(n, 2) {
		before := link.Stats().Dropped
		link.Transfer(f)
		dropped[i] = link.Stats().Dropped > before
	}
	st := link.Stats()
	rate := float64(st.Dropped) / float64(st.Offered)
	if math.Abs(rate-0.1) > 0.03 {
		t.Errorf("burst loss rate = %.3f, want ≈ 0.10", rate)
	}
	// Mean run length of consecutive drops should be near MeanBurst.
	var runs, lost int
	inRun := false
	for _, d := range dropped {
		if d {
			lost++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if runs == 0 {
		t.Fatal("no loss bursts observed")
	}
	mean := float64(lost) / float64(runs)
	if mean < 2.5 || mean > 6 {
		t.Errorf("mean burst length = %.2f, want ≈ 4", mean)
	}
}

func TestLossyLinkDuplication(t *testing.T) {
	link, err := NewLossyLink(LossParams{Seed: 6, Duplicate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	frames := linkFrames(1000, 2)
	total := 0
	for _, f := range frames {
		total += len(link.Transfer(f))
	}
	total += len(link.Drain())
	st := link.Stats()
	if st.Duplicated == 0 {
		t.Fatal("no duplicates at p=0.5")
	}
	if total != len(frames)+int(st.Duplicated) {
		t.Errorf("delivered %d frames, want %d originals + %d copies",
			total, len(frames), st.Duplicated)
	}
}

func TestLossyLinkJitterDelaysAndReorders(t *testing.T) {
	link, err := NewLossyLink(LossParams{Seed: 2, JitterProb: 0.5, MaxJitter: 4})
	if err != nil {
		t.Fatal(err)
	}
	frames := linkFrames(500, 2)
	var out []*Frame
	for _, f := range frames {
		out = append(out, link.Transfer(f)...)
	}
	out = append(out, link.Drain()...)
	if len(out) != len(frames) {
		t.Fatalf("delivered %d, want %d (jitter must not lose frames)", len(out), len(frames))
	}
	if link.Stats().Delayed == 0 {
		t.Fatal("no frames delayed at p=0.5")
	}
	reordered := false
	for i := 1; i < len(out); i++ {
		if out[i].Seq < out[i-1].Seq {
			reordered = true
			break
		}
	}
	if !reordered {
		t.Error("jitter produced no reordering across 500 frames")
	}
}

func TestLossyLinkIdleSlotsFlushDelayedFrames(t *testing.T) {
	link, err := NewLossyLink(LossParams{Seed: 8, JitterProb: 1, MaxJitter: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := linkFrames(1, 4)[0]
	if got := link.Transfer(f); len(got) != 0 {
		t.Fatalf("jittered frame delivered immediately: %d", len(got))
	}
	var out []*Frame
	for i := 0; i < 3 && len(out) == 0; i++ {
		out = append(out, link.Transfer(nil)...)
	}
	if len(out) != 1 || out[0] != f {
		t.Fatalf("idle slots did not flush the delayed frame: %v", out)
	}
}

func TestLossParamsValidate(t *testing.T) {
	bad := []LossParams{
		{Loss: -0.1},
		{Loss: 1},
		{MeanBurst: -1},
		{Duplicate: 1.5},
		{Reorder: -0.2},
		{JitterProb: 2},
		{MaxJitter: -1},
		{JitterProb: 0.5}, // MaxJitter missing
	}
	for i, p := range bad {
		if _, err := NewLossyLink(p); err == nil {
			t.Errorf("case %d: params %+v should be rejected", i, p)
		}
	}
	if _, err := NewLossyLink(LossParams{}); err != nil {
		t.Errorf("zero params should validate: %v", err)
	}
}

// TestSenderImpairEndToEnd drives the UDP path through an impaired sender
// and checks the receiver sees the configured loss while FEC claws back
// single-loss groups.
func TestSenderImpairEndToEnd(t *testing.T) {
	rx, err := NewReceiver("127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := NewSender(rx.Addr(), 40)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	if err := tx.EnableFEC(4); err != nil {
		t.Fatal(err)
	}
	link, err := NewLossyLink(LossParams{Seed: 11, Loss: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tx.Impair(link)

	const nFrames = 50
	in := audio.Render(audio.NewTone(440, 8000, 0.5, 0), nFrames*40)
	if err := tx.Send(in); err != nil {
		t.Fatal(err)
	}
	if err := tx.Flush(); err != nil {
		t.Fatal(err)
	}
	st := link.Stats()
	if st.Dropped == 0 {
		t.Fatal("impaired sender dropped nothing at 10% loss over 62 datagrams")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		got, err := rx.Poll(20 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if !got && rx.Buffered() >= nFrames-int(st.Dropped) {
			break
		}
	}
	dst := make([]float64, nFrames*40)
	mask := make([]bool, nFrames*40)
	real := rx.PopMask(dst, mask)
	if real == 0 {
		t.Fatal("nothing delivered through the impaired link")
	}
	// Every concealed sample must be masked false and zero.
	for i, m := range mask {
		if !m && dst[i] != 0 {
			t.Fatalf("concealed sample %d not zeroed: %g", i, dst[i])
		}
	}
	if real == len(dst) && st.Dropped > rx.Recovered() {
		t.Errorf("lost %d frames, FEC recovered %d, yet nothing was concealed",
			st.Dropped, rx.Recovered())
	}
}
