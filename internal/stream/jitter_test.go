package stream

import "testing"

// TestJitterBufferClassifiesLateDuplicateDropped pins down the three
// rejection/eviction cases: late (behind the playout clock), duplicate
// (timestamp already buffered), and dropped (on-time frame evicted by a
// depth overflow — previously miscounted as late).
func TestJitterBufferClassifiesLateDuplicateDropped(t *testing.T) {
	jb, err := NewJitterBuffer(2)
	if err != nil {
		t.Fatal(err)
	}
	if !jb.Push(&Frame{Seq: 0, Timestamp: 0, Samples: []float64{1}}) {
		t.Fatal("first frame should buffer")
	}
	dst := make([]float64, 1)
	jb.Pop(dst)
	// ts=0 is now behind the clock: late.
	if jb.Push(&Frame{Seq: 0, Timestamp: 0, Samples: []float64{1}}) {
		t.Error("late frame should report false")
	}
	if !jb.Push(&Frame{Seq: 1, Timestamp: 1, Samples: []float64{2}}) {
		t.Fatal("on-time frame should buffer")
	}
	// Same timestamp again: duplicate.
	if jb.Push(&Frame{Seq: 1, Timestamp: 1, Samples: []float64{2}}) {
		t.Error("duplicate frame should report false")
	}
	// Fill to depth, then overflow: the oldest buffered frame (ts=1) is
	// evicted and must count as dropped, not late — it arrived on time.
	if !jb.Push(&Frame{Seq: 2, Timestamp: 2, Samples: []float64{3}}) {
		t.Fatal("second on-time frame should buffer")
	}
	if !jb.Push(&Frame{Seq: 3, Timestamp: 3, Samples: []float64{4}}) {
		t.Fatal("overflowing frame should still buffer")
	}
	st := jb.Stats()
	if st.FramesLate != 1 {
		t.Errorf("late = %d, want 1", st.FramesLate)
	}
	if st.FramesDuplicate != 1 {
		t.Errorf("duplicate = %d, want 1", st.FramesDuplicate)
	}
	if st.FramesDropped != 1 {
		t.Errorf("dropped = %d, want 1", st.FramesDropped)
	}
	if st.FramesReceived != 4 {
		t.Errorf("received = %d, want 4", st.FramesReceived)
	}
}

func TestJitterBufferPopMask(t *testing.T) {
	jb, _ := NewJitterBuffer(16)
	jb.Push(&Frame{Seq: 0, Timestamp: 0, Samples: []float64{1, 2}})
	// ts 2..3 lost.
	jb.Push(&Frame{Seq: 2, Timestamp: 4, Samples: []float64{5, 6}})
	dst := make([]float64, 6)
	mask := make([]bool, 6)
	real := jb.PopMask(dst, mask)
	if real != 4 {
		t.Errorf("real = %d, want 4", real)
	}
	wantMask := []bool{true, true, false, false, true, true}
	wantDst := []float64{1, 2, 0, 0, 5, 6}
	for i := range wantMask {
		if mask[i] != wantMask[i] || dst[i] != wantDst[i] {
			t.Fatalf("i=%d: dst=%v mask=%v", i, dst, mask)
		}
	}
	// The mask must be fully reset on the next pop (all concealed here).
	if real := jb.PopMask(dst, mask); real != 0 {
		t.Errorf("empty buffer delivered %d real samples", real)
	}
	for i, m := range mask {
		if m {
			t.Fatalf("stale mask bit %d survived", i)
		}
	}
}

func TestJitterBufferAnchor(t *testing.T) {
	jb, _ := NewJitterBuffer(16)
	jb.Anchor(0)
	// First frame arrives late in the capture clock; without the anchor it
	// would have re-based the stream and hidden the initial loss.
	jb.Push(&Frame{Seq: 2, Timestamp: 4, Samples: []float64{5, 6}})
	dst := make([]float64, 6)
	mask := make([]bool, 6)
	real := jb.PopMask(dst, mask)
	if real != 2 {
		t.Errorf("real = %d, want 2", real)
	}
	if dst[4] != 5 || dst[5] != 6 || mask[0] || !mask[4] {
		t.Errorf("anchored playout misaligned: dst=%v mask=%v", dst, mask)
	}
	// Anchoring after the clock started is a no-op.
	jb.Anchor(100)
	jb.Push(&Frame{Seq: 3, Timestamp: 6, Samples: []float64{7}})
	if real := jb.Pop(dst[:1]); real != 1 || dst[0] != 7 {
		t.Errorf("post-anchor pop broken: real=%d dst0=%g", real, dst[0])
	}
}

// TestJitterBufferOverlappingFrames: a frame fully shadowed by an earlier,
// longer frame must be discarded, not replayed.
func TestJitterBufferOverlappingFrames(t *testing.T) {
	jb, _ := NewJitterBuffer(16)
	jb.Push(&Frame{Seq: 0, Timestamp: 0, Samples: []float64{1, 2, 3, 4}})
	jb.Push(&Frame{Seq: 1, Timestamp: 2, Samples: []float64{9, 9}})
	dst := make([]float64, 4)
	if real := jb.Pop(dst); real != 4 {
		t.Errorf("real = %d, want 4", real)
	}
	if dst[2] != 3 || dst[3] != 4 {
		t.Errorf("earlier frame should win the overlap: %v", dst)
	}
	// The shadowed frame is discarded (not replayed) by the next pop.
	if real := jb.Pop(dst); real != 0 {
		t.Errorf("shadowed frame replayed: real = %d", real)
	}
	if jb.Buffered() != 0 {
		t.Errorf("shadowed frame not discarded: %d buffered", jb.Buffered())
	}
}

func TestJitterBufferPartialFrameAcrossPops(t *testing.T) {
	jb, _ := NewJitterBuffer(16)
	jb.Push(&Frame{Seq: 0, Timestamp: 0, Samples: []float64{1, 2, 3, 4}})
	dst := make([]float64, 3)
	if real := jb.Pop(dst); real != 3 {
		t.Errorf("first pop real = %d, want 3", real)
	}
	if real := jb.Pop(dst); real != 1 {
		t.Errorf("second pop real = %d, want 1", real)
	}
	if dst[0] != 4 || dst[1] != 0 {
		t.Errorf("partial frame resume broken: %v", dst)
	}
}

// BenchmarkJitterBufferConcealedPop measures the fully-concealed pop path
// with a deep buffer of far-future frames — the case that used to cost a
// full map scan per concealed sample (O(len(dst)·depth)) and is now one
// ordered-index lookup per pop (O(len(dst)+depth)).
func BenchmarkJitterBufferConcealedPop(b *testing.B) {
	const depth = 256
	jb, err := NewJitterBuffer(depth)
	if err != nil {
		b.Fatal(err)
	}
	jb.Anchor(0)
	samples := make([]float64, 80)
	for i := 0; i < depth; i++ {
		jb.Push(&Frame{Seq: uint32(i), Timestamp: 1<<40 + uint64(i*len(samples)), Samples: samples})
	}
	dst := make([]float64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jb.Pop(dst)
	}
}
