package stream

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Sender streams audio frames to a UDP peer. It is the network-transport
// face of the IoT relay.
type Sender struct {
	conn         net.Conn
	frameSamples int
	seq          uint32
	clock        uint64
	pending      []float64
	fec          *FECEncoder
	link         *LossyLink
}

// NewSender dials the receiver address ("host:port") and returns a sender
// that packs frameSamples samples per datagram.
func NewSender(addr string, frameSamples int) (*Sender, error) {
	if frameSamples <= 0 || frameSamples > MaxFrameSamples {
		return nil, fmt.Errorf("stream: frame size %d outside (0, %d]", frameSamples, MaxFrameSamples)
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: dial %s: %w", addr, err)
	}
	return &Sender{conn: conn, frameSamples: frameSamples}, nil
}

// EnableFEC turns on forward error correction: one parity frame follows
// every group of K data frames, letting the receiver reconstruct a single
// lost frame per group. Call before the first Send.
func (s *Sender) EnableFEC(group int) error {
	enc, err := NewFECEncoder(group)
	if err != nil {
		return err
	}
	s.fec = enc
	return nil
}

// Send queues samples and transmits every complete frame. Partial frames
// wait for more samples (call Flush to force them out).
func (s *Sender) Send(samples []float64) error {
	s.pending = append(s.pending, samples...)
	for len(s.pending) >= s.frameSamples {
		if err := s.emit(s.pending[:s.frameSamples]); err != nil {
			return err
		}
		s.pending = s.pending[s.frameSamples:]
	}
	return nil
}

// Impair inserts a deterministic fault-injection link in front of the
// socket: every frame (data and parity) passes through link, which may
// drop, duplicate, delay, or reorder it before it reaches the wire. Call
// before the first Send; Flush drains frames the link still holds.
func (s *Sender) Impair(link *LossyLink) { s.link = link }

// Flush transmits any buffered partial frame and drains the impairment
// link, if one is installed.
func (s *Sender) Flush() error {
	if len(s.pending) > 0 {
		block := s.pending
		s.pending = nil
		if err := s.emit(block); err != nil {
			return err
		}
	}
	if s.link != nil {
		for _, f := range s.link.Drain() {
			if err := s.write(f); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Sender) emit(block []float64) error {
	f := Frame{Seq: s.seq, Timestamp: s.clock, Samples: block}
	if err := s.transmit(&f); err != nil {
		return err
	}
	s.seq++
	s.clock += uint64(len(block))
	if s.fec != nil {
		if parity := s.fec.Add(&f); parity != nil {
			parity.Seq = s.seq
			s.seq++
			if err := s.transmit(parity); err != nil {
				return err
			}
		}
	}
	return nil
}

// transmit routes one frame through the impairment link (when installed)
// and writes whatever the link delivers this slot.
func (s *Sender) transmit(f *Frame) error {
	if s.link == nil {
		return s.write(f)
	}
	for _, out := range s.link.Transfer(f) {
		if err := s.write(out); err != nil {
			return err
		}
	}
	return nil
}

func (s *Sender) write(f *Frame) error {
	buf, err := f.Marshal()
	if err != nil {
		return err
	}
	if _, err := s.conn.Write(buf); err != nil {
		return fmt.Errorf("stream: send frame %d: %w", f.Seq, err)
	}
	return nil
}

// Close flushes any buffered partial frame (and drains the impairment
// link, if one is installed) before releasing the socket, so the tail of
// the stream is not silently dropped. The first error wins: a flush
// failure is reported even though the socket is still closed.
func (s *Sender) Close() error {
	ferr := s.Flush()
	cerr := s.conn.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Receiver listens for audio frames on a UDP port and feeds a jitter
// buffer. It is the network-transport face of the ear device.
//
// One goroutine Polls; the jitter buffer, Stats, Recovered, and Buffered
// are safe to call from others (a telemetry scraper, a supervisor). The
// corrupt/recovered counters are atomics for exactly that reason: they
// used to be plain fields written by Poll, and a concurrent Stats read —
// routine once many receivers share a process with a stats fan-in — was a
// data race.
type Receiver struct {
	conn      *net.UDPConn
	jb        *JitterBuffer
	buf       []byte
	fec       *FECDecoder
	recovered atomic.Uint64
	corrupt   atomic.Uint64
	obs       func(timestamp uint64)
}

// NewReceiver listens on addr (e.g. "127.0.0.1:0") with a jitter buffer of
// the given frame depth.
func NewReceiver(addr string, depth int) (*Receiver, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen %s: %w", addr, err)
	}
	jb, err := NewJitterBuffer(depth)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return &Receiver{conn: conn, jb: jb, buf: make([]byte, 2048), fec: NewFECDecoder(4 * depth)}, nil
}

// Addr returns the bound listen address (useful with port 0).
func (r *Receiver) Addr() string { return r.conn.LocalAddr().String() }

// Poll reads at most one datagram, waiting up to timeout. It returns true
// only when a frame actually entered the jitter buffer — a data frame, or
// a data frame FEC reconstructed from a parity frame. Parity frames that
// recover nothing, late frames, and duplicates consume a datagram but
// return false, as does a timeout; use Stats and Recovered to tell the
// cases apart. A malformed datagram (stray traffic, bit rot) is counted
// in Stats().FramesCorrupt and otherwise ignored — one bad packet must
// not fail the receive loop of a device whose whole job is riding out a
// bad link.
func (r *Receiver) Poll(timeout time.Duration) (bool, error) {
	if err := r.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return false, err
	}
	n, _, err := r.conn.ReadFromUDP(r.buf)
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return false, nil
		}
		return false, fmt.Errorf("stream: read: %w", err)
	}
	f, err := Unmarshal(r.buf[:n])
	if err != nil {
		r.corrupt.Add(1)
		return false, nil
	}
	out := r.fec.Add(f)
	if out == nil {
		return false, nil
	}
	if out != f {
		r.recovered.Add(1)
	}
	ok := r.jb.Push(out)
	if ok && out == f && r.obs != nil {
		r.obs(out.Timestamp)
	}
	return ok, nil
}

// SetFrameObserver registers fn to run, inside Poll, for every direct data
// frame accepted into the jitter buffer, with the frame's relay-clock
// timestamp. The callback fires at the frame's true arrival instant, which
// is what a DriftEstimator needs to fit the relay-vs-ear clock slope; FEC
// reconstructions are excluded because they surface at the parity frame's
// arrival time, not the lost frame's, and would bias the fit.
func (r *Receiver) SetFrameObserver(fn func(timestamp uint64)) { r.obs = fn }

// Recovered returns how many lost frames FEC has reconstructed.
func (r *Receiver) Recovered() uint64 { return r.recovered.Load() }

// Pop drains the next len(dst) ordered samples from the jitter buffer.
func (r *Receiver) Pop(dst []float64) int { return r.jb.Pop(dst) }

// PopMask is Pop plus the concealment mask: mask[i] is set true where
// dst[i] is a real received sample and false where it was zero-filled.
func (r *Receiver) PopMask(dst []float64, mask []bool) int { return r.jb.PopMask(dst, mask) }

// Stats returns jitter-buffer statistics plus the receiver's own
// malformed-datagram count.
func (r *Receiver) Stats() JitterStats {
	st := r.jb.Stats()
	st.FramesCorrupt = r.corrupt.Load()
	return st
}

// Buffered returns the number of frames waiting in the jitter buffer.
func (r *Receiver) Buffered() int { return r.jb.Buffered() }

// Close releases the socket.
func (r *Receiver) Close() error { return r.conn.Close() }
