// Package stream implements MUTE's real-time waveform transport for
// deployments where the relay and ear device are separate processes or
// hosts: audio frames over UDP with sequence numbers and sample-clock
// timestamps, a reordering jitter buffer, and zero-fill loss concealment.
//
// The paper's relay is purely analog FM; this package is the IP-network
// equivalent used by the live demo binaries (cmd/muterelay, cmd/muteear)
// and the edge-service example, preserving the property that matters to
// LANC: samples arrive with their capture clock attached, so the receiver
// knows exactly how much lookahead each sample carries.
package stream

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Frame is one transport unit: a block of samples stamped with the index
// of its first sample in the relay's capture clock.
type Frame struct {
	// Seq increments per frame; used for loss/reorder accounting.
	Seq uint32
	// Timestamp is the capture-clock index of Samples[0]. For parity
	// frames it is the timestamp of the group's first data frame.
	Timestamp uint64
	// Parity marks a forward-error-correction parity frame (see fec.go).
	Parity bool
	// GroupSize is the FEC group size carried by parity frames.
	GroupSize uint8
	// Samples is the audio payload in [-1, 1].
	Samples []float64
}

const (
	frameMagic   = 0x4D55 // "MU"
	frameVersion = 1
	headerSize   = 2 + 1 + 1 + 4 + 8 + 2 // magic, version, flags, seq, ts, count
	// MaxFrameSamples bounds the payload so frames fit comfortably in a
	// single UDP datagram (1200-byte payload budget).
	MaxFrameSamples = (1200 - headerSize) / 2
)

// Marshal encodes the frame into wire format (16-bit PCM payload).
func (f *Frame) Marshal() ([]byte, error) {
	return f.AppendMarshal(nil)
}

// AppendMarshal appends the frame's wire encoding to dst and returns the
// extended slice — the allocation-free encode path for senders that
// recycle a scratch buffer across frames (pass dst[:0] with capacity).
func (f *Frame) AppendMarshal(dst []byte) ([]byte, error) {
	if len(f.Samples) == 0 {
		return nil, fmt.Errorf("stream: empty frame")
	}
	if len(f.Samples) > MaxFrameSamples {
		return nil, fmt.Errorf("stream: frame of %d samples exceeds max %d", len(f.Samples), MaxFrameSamples)
	}
	need := headerSize + 2*len(f.Samples)
	start := len(dst)
	if cap(dst)-start >= need {
		dst = dst[:start+need]
	} else {
		dst = append(dst, make([]byte, need)...)
	}
	buf := dst[start:]
	binary.BigEndian.PutUint16(buf[0:2], frameMagic)
	buf[2] = frameVersion
	// Flags: bit 0 marks parity, bits 1-7 carry the FEC group size.
	var flags byte
	if f.Parity {
		if f.GroupSize < 2 {
			return nil, fmt.Errorf("stream: parity frame needs a group size >= 2")
		}
		flags = 1 | f.GroupSize<<1
	}
	buf[3] = flags
	binary.BigEndian.PutUint32(buf[4:8], f.Seq)
	binary.BigEndian.PutUint64(buf[8:16], f.Timestamp)
	binary.BigEndian.PutUint16(buf[16:18], uint16(len(f.Samples)))
	for i, s := range f.Samples {
		if s > 1 {
			s = 1
		} else if s < -1 {
			s = -1
		}
		v := int16(math.Round(s * 32767))
		binary.BigEndian.PutUint16(buf[headerSize+2*i:], uint16(v))
	}
	return dst, nil
}

// WireSize returns the encoded size of the frame starting at data[0],
// derived from its header's sample count, or 0 when the header is too
// short to carry one or the count is invalid. It does not validate magic
// or version — it exists so framers layering on top of the wire format
// (e.g. the fleet envelope's datagram coalescing) can find record
// boundaries without decoding payloads.
func WireSize(data []byte) int {
	if len(data) < headerSize {
		return 0
	}
	count := int(binary.BigEndian.Uint16(data[16:18]))
	if count == 0 || count > MaxFrameSamples {
		return 0
	}
	return headerSize + 2*count
}

// Unmarshal decodes a wire frame.
func Unmarshal(data []byte) (*Frame, error) {
	f := &Frame{}
	if err := f.UnmarshalInto(data); err != nil {
		return nil, err
	}
	return f, nil
}

// UnmarshalInto decodes a wire frame into f, reusing f.Samples' backing
// array when its capacity suffices — the allocation-free decode path for
// receivers that recycle frames through a pool. EVERY field of f is
// overwritten (on the error path f is left untouched): a pooled frame may
// carry a stale Parity flag, group size, or longer Samples slice from its
// previous life, and any field that survived a decode would leak one
// session's state into another.
func (f *Frame) UnmarshalInto(data []byte) error {
	if len(data) < headerSize {
		return fmt.Errorf("stream: short frame (%d bytes)", len(data))
	}
	if binary.BigEndian.Uint16(data[0:2]) != frameMagic {
		return fmt.Errorf("stream: bad magic")
	}
	if data[2] != frameVersion {
		return fmt.Errorf("stream: unsupported version %d", data[2])
	}
	count := int(binary.BigEndian.Uint16(data[16:18]))
	if count == 0 || count > MaxFrameSamples {
		return fmt.Errorf("stream: invalid sample count %d", count)
	}
	if len(data) < headerSize+2*count {
		return fmt.Errorf("stream: truncated payload (%d bytes for %d samples)", len(data)-headerSize, count)
	}
	parity := data[3]&1 == 1
	groupSize := byte(0)
	if parity {
		// The group size is meaningful only on parity frames; ignoring the
		// bits otherwise keeps decoding canonical (decode→encode→decode is
		// the identity), which the fuzz round-trip relies on.
		groupSize = data[3] >> 1
		if groupSize < 2 {
			return fmt.Errorf("stream: parity frame with invalid group size %d", groupSize)
		}
	}
	f.Seq = binary.BigEndian.Uint32(data[4:8])
	f.Timestamp = binary.BigEndian.Uint64(data[8:16])
	f.Parity = parity
	f.GroupSize = groupSize
	if cap(f.Samples) < count {
		f.Samples = make([]float64, count)
	} else {
		f.Samples = f.Samples[:count]
	}
	for i := 0; i < count; i++ {
		v := int16(binary.BigEndian.Uint16(data[headerSize+2*i:]))
		if v == math.MinInt16 {
			// The Q15 grid is symmetric at ±32767; the encoder never emits
			// -32768, so fold the one off-grid wire value onto -1.0 to keep
			// decoding canonical (decode→encode→decode is the identity).
			v = math.MinInt16 + 1
		}
		f.Samples[i] = float64(v) / 32767
	}
	return nil
}
