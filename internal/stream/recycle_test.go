package stream

import (
	"math"
	"testing"
)

// frameAt builds a data frame of n ramp samples starting at capture index
// ts, with values that survive the Q15 wire round trip exactly.
func frameAt(ts uint64, n int) *Frame {
	s := make([]float64, n)
	for i := range s {
		s[i] = float64(int(ts)+i%100) / 32767
	}
	return &Frame{Seq: uint32(ts), Timestamp: ts, Samples: s}
}

// TestJitterBufferReleaseHook pins every path a retained frame can leave
// the buffer through: full consumption by a Pop, overlap discard, depth
// eviction, and Reset — and that rejected frames are NOT released (the
// pusher still owns those).
func TestJitterBufferReleaseHook(t *testing.T) {
	jb, err := NewJitterBuffer(2)
	if err != nil {
		t.Fatal(err)
	}
	var released []*Frame
	jb.SetRelease(func(f *Frame) { released = append(released, f) })

	f0 := frameAt(0, 4)
	f1 := frameAt(4, 4)
	f2 := frameAt(8, 4)
	if !jb.Push(f0) || !jb.Push(f1) {
		t.Fatal("clean pushes rejected")
	}
	// Depth 2 is full: pushing f2 evicts f0.
	if !jb.Push(f2) {
		t.Fatal("push with eviction rejected")
	}
	if len(released) != 1 || released[0] != f0 {
		t.Fatalf("eviction released %v, want [f0]", released)
	}

	// Duplicate and late frames are rejected, not released.
	if jb.Push(frameAt(4, 4)) {
		t.Fatal("duplicate accepted")
	}
	dst := make([]float64, 8)
	jb.Pop(dst) // consumes f1 (ts 4..7 after clock anchored at 0) and part of the window
	if jb.Push(frameAt(0, 4)) {
		t.Fatal("late frame accepted")
	}
	for _, f := range released[1:] {
		if f != f1 {
			t.Fatalf("unexpected release %v", f)
		}
	}

	// Reset releases whatever is still buffered (f2).
	before := len(released)
	jb.Reset()
	if len(released) != before+1 || released[len(released)-1] != f2 {
		t.Fatalf("reset released %v frames, want f2 last", released[before:])
	}
	if jb.Buffered() != 0 {
		t.Fatalf("buffered %d after reset, want 0", jb.Buffered())
	}
	// The clock restarts: a frame at ts 100 re-anchors.
	f := frameAt(100, 4)
	if !jb.Push(f) {
		t.Fatal("push after reset rejected")
	}
	n := jb.Pop(dst[:4])
	if n != 4 {
		t.Fatalf("popped %d real samples after re-anchor, want 4", n)
	}
}

// TestJitterBufferOverlapRelease covers the shadowed-frame discard path:
// a frame wholly overlapped by earlier coverage is released when the
// ordered walk passes it.
func TestJitterBufferOverlapRelease(t *testing.T) {
	jb, err := NewJitterBuffer(8)
	if err != nil {
		t.Fatal(err)
	}
	var released []*Frame
	jb.SetRelease(func(f *Frame) { released = append(released, f) })
	big := frameAt(0, 8)   // covers 0..7
	small := frameAt(2, 2) // covered entirely by big
	if !jb.Push(big) || !jb.Push(small) {
		t.Fatal("pushes rejected")
	}
	dst := make([]float64, 8)
	if n := jb.Pop(dst); n != 8 {
		t.Fatalf("popped %d real samples, want 8", n)
	}
	// The shadowed frame is discarded when the next walk passes it.
	jb.Pop(dst)
	if len(released) != 2 {
		t.Fatalf("released %d frames, want 2 (big consumed, small shadowed)", len(released))
	}
}

// TestJitterBufferSteadyStateAllocFree pins the push/pop cycle at zero
// allocations once warm: the order index must keep its backing array
// (popFront) and the frame map must reuse its buckets.
func TestJitterBufferSteadyStateAllocFree(t *testing.T) {
	jb, err := NewJitterBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	frames := make([]*Frame, 64)
	for i := range frames {
		frames[i] = frameAt(0, n) // timestamps rewritten below
	}
	dst := make([]float64, n)
	ts := uint64(0)
	fi := 0
	cycle := func() {
		f := frames[fi%len(frames)]
		fi++
		f.Timestamp = ts
		jb.Push(f)
		jb.Pop(dst)
		ts += n
	}
	for i := 0; i < 256; i++ {
		cycle() // warm: grow order capacity, settle map buckets
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs > 0 {
		t.Fatalf("steady-state push/pop allocates %.1f times per cycle, want 0", allocs)
	}
}

// TestUnmarshalIntoReusesAndResets pins the two pooled-decode contracts:
// a frame with enough capacity is decoded without allocating, and every
// stale field from the frame's previous life — parity flag, group size,
// longer sample slice — is overwritten.
func TestUnmarshalIntoReusesAndResets(t *testing.T) {
	wire, err := frameAt(640, 20).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// A pooled frame fresh from a parity-frame life, with poisoned spare
	// capacity beyond the new payload.
	f := &Frame{
		Seq:       999,
		Timestamp: 12345,
		Parity:    true,
		GroupSize: 4,
		Samples:   make([]float64, 0, 64),
	}
	poison := f.Samples[:cap(f.Samples)]
	for i := range poison {
		poison[i] = math.NaN()
	}
	if err := f.UnmarshalInto(wire); err != nil {
		t.Fatal(err)
	}
	if f.Parity || f.GroupSize != 0 {
		t.Fatalf("stale parity state survived: parity=%v group=%d", f.Parity, f.GroupSize)
	}
	if f.Seq != 640 || f.Timestamp != 640 || len(f.Samples) != 20 {
		t.Fatalf("decoded header wrong: seq=%d ts=%d n=%d", f.Seq, f.Timestamp, len(f.Samples))
	}
	for i, v := range f.Samples {
		if math.IsNaN(v) {
			t.Fatalf("poison leaked into decoded sample %d", i)
		}
	}
	// Same-capacity decode must not allocate.
	if allocs := testing.AllocsPerRun(100, func() {
		if err := f.UnmarshalInto(wire); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Fatalf("UnmarshalInto allocates %.1f times with sufficient capacity, want 0", allocs)
	}

	// Equivalence with the allocating decoder.
	ref, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Seq != f.Seq || ref.Timestamp != f.Timestamp || len(ref.Samples) != len(f.Samples) {
		t.Fatal("UnmarshalInto and Unmarshal disagree on the header")
	}
	for i := range ref.Samples {
		if ref.Samples[i] != f.Samples[i] {
			t.Fatalf("sample %d: UnmarshalInto %v vs Unmarshal %v", i, f.Samples[i], ref.Samples[i])
		}
	}

	// The error path leaves the frame untouched.
	before := *f
	if err := f.UnmarshalInto(wire[:5]); err == nil {
		t.Fatal("short frame decoded")
	}
	if f.Seq != before.Seq || len(f.Samples) != len(before.Samples) {
		t.Fatal("failed decode mutated the frame")
	}
}

// TestAppendMarshalReusesAndMatches pins the pooled-encode contract:
// AppendMarshal with sufficient spare capacity appends in place without
// allocating, preserves any prefix already in dst, and produces bytes
// identical to Marshal.
func TestAppendMarshalReusesAndMatches(t *testing.T) {
	f := frameAt(7, 20)
	want, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 4+len(want))
	prefix := append(buf, 0xDE, 0xAD, 0xBE, 0xEF)
	got, err := f.AppendMarshal(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &prefix[0] {
		t.Fatal("AppendMarshal reallocated despite sufficient capacity")
	}
	if len(got) != 4+len(want) {
		t.Fatalf("appended length %d, want %d", len(got), 4+len(want))
	}
	for i := range want {
		if got[4+i] != want[i] {
			t.Fatalf("byte %d: AppendMarshal %#x vs Marshal %#x", i, got[4+i], want[i])
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := f.AppendMarshal(got[:0]); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Fatalf("AppendMarshal allocates %.1f times on the reuse path, want 0", allocs)
	}
	if _, err := (&Frame{}).AppendMarshal(nil); err == nil {
		t.Fatal("AppendMarshal accepted an empty frame")
	}
}
