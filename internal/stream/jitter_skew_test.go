package stream

import "testing"

// These tests pin the tie-break rules Push documents for skewed or
// non-monotonic re-stamping — the input the drift pipeline's single-sample
// pops feed on.

// TestJitterBufferDuplicateTimestampFirstWins: two frames with the same
// timestamp keep the first arrival's samples; the later one is counted a
// duplicate and never reaches a pop.
func TestJitterBufferDuplicateTimestampFirstWins(t *testing.T) {
	jb, err := NewJitterBuffer(8)
	if err != nil {
		t.Fatal(err)
	}
	if !jb.Push(&Frame{Timestamp: 0, Samples: []float64{1, 1, 1, 1}}) {
		t.Fatal("first frame rejected")
	}
	if jb.Push(&Frame{Timestamp: 0, Samples: []float64{9, 9, 9, 9}}) {
		t.Fatal("duplicate-timestamp frame accepted")
	}
	if s := jb.Stats(); s.FramesDuplicate != 1 {
		t.Errorf("FramesDuplicate = %d, want 1", s.FramesDuplicate)
	}
	dst := make([]float64, 4)
	jb.Pop(dst)
	for i, v := range dst {
		if v != 1 {
			t.Errorf("sample %d = %g, want the first arrival's 1", i, v)
		}
	}
}

// TestJitterBufferOverlapSuffixWins: when a later-starting frame overlaps
// an earlier one's range, the earlier timestamp keeps the overlapped
// samples and the later frame contributes only its non-overlapped suffix.
func TestJitterBufferOverlapSuffixWins(t *testing.T) {
	jb, err := NewJitterBuffer(8)
	if err != nil {
		t.Fatal(err)
	}
	jb.Push(&Frame{Timestamp: 0, Samples: []float64{1, 1, 1, 1}})
	// Overlaps samples 2..3, extends over 4..5: values are 7 at offsets 0..3.
	jb.Push(&Frame{Timestamp: 2, Samples: []float64{7, 7, 7, 7}})
	dst := make([]float64, 6)
	mask := make([]bool, 6)
	if real := jb.PopMask(dst, mask); real != 6 {
		t.Fatalf("PopMask delivered %d real samples, want 6", real)
	}
	want := []float64{1, 1, 1, 1, 7, 7}
	for i, v := range dst {
		if v != want[i] {
			t.Errorf("sample %d = %g, want %g (earlier timestamp wins overlap)", i, v, want[i])
		}
		if !mask[i] {
			t.Errorf("sample %d masked concealed, want real", i)
		}
	}
}

// TestJitterBufferShadowedFrameDiscarded: a frame wholly covered by
// earlier coverage is dropped by the ordered walk without disturbing the
// stream.
func TestJitterBufferShadowedFrameDiscarded(t *testing.T) {
	jb, err := NewJitterBuffer(8)
	if err != nil {
		t.Fatal(err)
	}
	jb.Push(&Frame{Timestamp: 0, Samples: []float64{1, 2, 3, 4, 5, 6}})
	jb.Push(&Frame{Timestamp: 2, Samples: []float64{9, 9}}) // wholly shadowed
	dst := make([]float64, 8)
	mask := make([]bool, 8)
	jb.PopMask(dst, mask)
	want := []float64{1, 2, 3, 4, 5, 6, 0, 0}
	for i, v := range dst {
		if v != want[i] {
			t.Errorf("sample %d = %g, want %g", i, v, want[i])
		}
	}
	if jb.Buffered() != 0 {
		t.Errorf("%d frames still buffered after the walk passed them", jb.Buffered())
	}
}

// TestJitterBufferPlayoutClockMonotone: whatever the re-stamped input does
// — duplicates, overlaps, gaps, late frames — the playout clock advances
// by exactly the popped length, in single-sample pops like the drift
// resampler issues.
func TestJitterBufferPlayoutClockMonotone(t *testing.T) {
	jb, err := NewJitterBuffer(4)
	if err != nil {
		t.Fatal(err)
	}
	jb.Anchor(0)
	if got := jb.PlayoutClock(); got != 0 {
		t.Fatalf("clock after Anchor(0) = %d, want 0", got)
	}
	pushes := []*Frame{
		{Timestamp: 0, Samples: []float64{1, 1}},
		{Timestamp: 1, Samples: []float64{2, 2}},  // overlaps
		{Timestamp: 10, Samples: []float64{3, 3}}, // gap
		{Timestamp: 4, Samples: []float64{4, 4}},  // reordered
	}
	var v [1]float64
	var m [1]bool
	clock := uint64(0)
	for _, f := range pushes {
		jb.Push(f)
		for k := 0; k < 3; k++ {
			jb.PopMask(v[:], m[:])
			clock++
			if got := jb.PlayoutClock(); got != clock {
				t.Fatalf("clock = %d after %d single-sample pops, want %d", got, clock, clock)
			}
		}
	}
	s := jb.Stats()
	if s.SamplesDelivered+s.SamplesConcealed != uint64(clock) {
		t.Errorf("delivered %d + concealed %d != popped %d", s.SamplesDelivered, s.SamplesConcealed, clock)
	}
}
