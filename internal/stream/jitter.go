package stream

import (
	"fmt"
	"sync"
)

// JitterStats counts transport events observed by the buffer.
type JitterStats struct {
	// FramesReceived is the number of frames accepted.
	FramesReceived uint64
	// FramesDuplicate counts frames whose samples were already consumed
	// or buffered.
	FramesDuplicate uint64
	// FramesLate counts frames that arrived after their playout point.
	FramesLate uint64
	// SamplesConcealed counts zero-filled (lost) samples handed out.
	SamplesConcealed uint64
	// SamplesDelivered counts real samples handed out.
	SamplesDelivered uint64
}

// JitterBuffer reassembles timestamped frames into an ordered sample
// stream. Missing samples are concealed with zeros (losing lookahead, not
// correctness — LANC degrades gracefully when reference samples are
// silent). It is safe for one writer and one reader goroutine.
type JitterBuffer struct {
	mu      sync.Mutex
	frames  map[uint64]*Frame // keyed by Timestamp
	next    uint64            // capture-clock index of the next sample out
	started bool
	depth   int // max buffered frames
	stats   JitterStats
}

// NewJitterBuffer creates a buffer holding at most depth frames.
func NewJitterBuffer(depth int) (*JitterBuffer, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("stream: jitter depth must be positive, got %d", depth)
	}
	return &JitterBuffer{frames: make(map[uint64]*Frame), depth: depth}, nil
}

// Push inserts a received frame. The first frame anchors the playout
// clock. Frames entirely before the playout point are dropped as late.
func (j *JitterBuffer) Push(f *Frame) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.started {
		j.next = f.Timestamp
		j.started = true
	}
	if f.Timestamp+uint64(len(f.Samples)) <= j.next {
		j.stats.FramesLate++
		return
	}
	if _, dup := j.frames[f.Timestamp]; dup {
		j.stats.FramesDuplicate++
		return
	}
	if len(j.frames) >= j.depth {
		// Drop the oldest buffered frame to bound memory.
		var oldest uint64
		first := true
		for ts := range j.frames {
			if first || ts < oldest {
				oldest = ts
				first = false
			}
		}
		delete(j.frames, oldest)
		j.stats.FramesLate++
	}
	j.frames[f.Timestamp] = f
	j.stats.FramesReceived++
}

// Pop fills dst with the next len(dst) samples of the reassembled stream,
// zero-filling gaps, and advances the playout clock. It returns the number
// of real (non-concealed) samples delivered. Before any frame has arrived,
// dst is all zeros and the clock does not advance.
func (j *JitterBuffer) Pop(dst []float64) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range dst {
		dst[i] = 0
	}
	if !j.started {
		return 0
	}
	real := 0
	for i := 0; i < len(dst); {
		ts := j.next + uint64(i)
		f, off := j.findLocked(ts)
		if f == nil {
			j.stats.SamplesConcealed++
			i++
			continue
		}
		// Copy as much of this frame as fits.
		for off < len(f.Samples) && i < len(dst) {
			dst[i] = f.Samples[off]
			off++
			i++
			real++
			j.stats.SamplesDelivered++
		}
		if off >= len(f.Samples) {
			delete(j.frames, f.Timestamp)
		}
	}
	j.next += uint64(len(dst))
	return real
}

// findLocked locates the buffered frame containing capture index ts.
func (j *JitterBuffer) findLocked(ts uint64) (*Frame, int) {
	if f, ok := j.frames[ts]; ok {
		return f, 0
	}
	for start, f := range j.frames {
		if ts > start && ts < start+uint64(len(f.Samples)) {
			return f, int(ts - start)
		}
	}
	return nil, 0
}

// Buffered returns the number of frames currently held.
func (j *JitterBuffer) Buffered() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.frames)
}

// Stats returns a snapshot of the transport counters.
func (j *JitterBuffer) Stats() JitterStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}
