package stream

import (
	"fmt"
	"sort"
	"sync"
)

// JitterStats counts transport events observed by the buffer.
type JitterStats struct {
	// FramesReceived is the number of frames accepted.
	FramesReceived uint64
	// FramesDuplicate counts frames whose samples were already consumed
	// or buffered.
	FramesDuplicate uint64
	// FramesLate counts frames that arrived after their playout point.
	FramesLate uint64
	// FramesDropped counts on-time frames evicted by a depth overflow.
	FramesDropped uint64
	// FramesCorrupt counts datagrams that failed to unmarshal (bad magic,
	// truncated payload, ...). Maintained by the network Receiver; the
	// in-process buffer never sees wire bytes.
	FramesCorrupt uint64
	// SamplesConcealed counts zero-filled (lost) samples handed out.
	SamplesConcealed uint64
	// SamplesDelivered counts real samples handed out.
	SamplesDelivered uint64
}

// JitterBuffer reassembles timestamped frames into an ordered sample
// stream. Missing samples are concealed with zeros, and PopMask reports
// exactly which samples were concealed so a loss-aware canceller can
// freeze adaptation instead of chasing the zeros. It is safe for one
// writer and one reader goroutine.
type JitterBuffer struct {
	mu      sync.Mutex
	frames  map[uint64]*Frame // keyed by Timestamp
	order   []uint64          // buffered timestamps, ascending
	next    uint64            // capture-clock index of the next sample out
	started bool
	depth   int // max buffered frames
	stats   JitterStats
	release func(*Frame)
}

// NewJitterBuffer creates a buffer holding at most depth frames.
func NewJitterBuffer(depth int) (*JitterBuffer, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("stream: jitter depth must be positive, got %d", depth)
	}
	return &JitterBuffer{frames: make(map[uint64]*Frame), depth: depth}, nil
}

// SetRelease registers fn to receive every frame the buffer is finished
// with: frames fully consumed by a Pop, frames discarded because earlier
// coverage shadowed them, frames evicted by a depth overflow, and frames
// dropped by Reset. Pop copies samples out before releasing, so fn may
// recycle the frame immediately (the fleet server returns frames to a
// sync.Pool this way). Frames Push rejects (late, duplicate) were never
// retained and are NOT passed to fn — the pusher still owns those. fn runs
// with the buffer's lock held; it must not call back into the buffer.
func (j *JitterBuffer) SetRelease(fn func(*Frame)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.release = fn
}

// drop releases a frame the buffer retained and is now done with.
func (j *JitterBuffer) drop(f *Frame) {
	if j.release != nil {
		j.release(f)
	}
}

// popFront removes the first k timestamps from the ascending index while
// keeping the slice anchored to the front of its backing array. Reslicing
// with order[k:] instead would bleed capacity off the front until append
// has to reallocate — a small but periodic steady-state allocation the
// zero-alloc serving path cannot afford.
func (j *JitterBuffer) popFront(k int) {
	n := copy(j.order, j.order[k:])
	j.order = j.order[:n]
}

// Reset drops every buffered frame (releasing each through the SetRelease
// hook) and rewinds the playout clock to the unstarted state, keeping the
// lifetime stats. It is the teardown path for pooled deployments: a
// session server must hand its remaining frames back to the frame pool
// when a session closes, not leak them to the garbage collector.
func (j *JitterBuffer) Reset() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, ts := range j.order {
		j.drop(j.frames[ts])
		delete(j.frames, ts)
	}
	j.order = j.order[:0]
	j.next = 0
	j.started = false
}

// Anchor pins the playout clock to capture index ts, for receivers that
// know the stream epoch out of band (e.g. the in-process simulator, whose
// capture clock starts at 0). Without it the first pushed frame anchors
// the clock — wrong when that frame is not the first one sent. Anchoring
// after the clock has started is a no-op.
func (j *JitterBuffer) Anchor(ts uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.started {
		return
	}
	j.next = ts
	j.started = true
}

// Push inserts a received frame and reports whether it was buffered. The
// first frame anchors the playout clock (unless Anchor ran first). Frames
// entirely before the playout point are dropped as late, duplicates are
// ignored, and a full buffer evicts its oldest frame (counted as dropped,
// not late — it arrived on time) to bound memory; only a true return
// means the frame's samples can still reach a Pop.
//
// Tie-break under skewed or non-monotonic re-stamping: for two frames
// with the same timestamp, the first received wins and the later one is
// counted FramesDuplicate; for overlapping timestamp ranges, the earliest
// timestamp wins the overlapped samples and a later-starting frame
// contributes only its non-overlapped suffix (see PopMask's ordered
// walk). A frame wholly shadowed by earlier coverage is discarded when
// the walk passes it. Playout order is always by timestamp, never by
// arrival, so the clock PopMask advances is monotone regardless of what
// the re-stamped input does.
func (j *JitterBuffer) Push(f *Frame) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.started {
		j.next = f.Timestamp
		j.started = true
	}
	if f.Timestamp+uint64(len(f.Samples)) <= j.next {
		j.stats.FramesLate++
		return false
	}
	if _, dup := j.frames[f.Timestamp]; dup {
		j.stats.FramesDuplicate++
		return false
	}
	if len(j.frames) >= j.depth {
		oldest := j.order[0]
		j.popFront(1)
		j.drop(j.frames[oldest])
		delete(j.frames, oldest)
		j.stats.FramesDropped++
	}
	j.frames[f.Timestamp] = f
	i := sort.Search(len(j.order), func(k int) bool { return j.order[k] > f.Timestamp })
	j.order = append(j.order, 0)
	copy(j.order[i+1:], j.order[i:])
	j.order[i] = f.Timestamp
	j.stats.FramesReceived++
	return true
}

// Pop fills dst with the next len(dst) samples of the reassembled stream,
// zero-filling gaps, and advances the playout clock. It returns the number
// of real (non-concealed) samples delivered. Before the clock has started,
// dst is all zeros and the clock does not advance.
func (j *JitterBuffer) Pop(dst []float64) int { return j.PopMask(dst, nil) }

// PopMask is Pop plus a concealment mask: when mask is non-nil it must be
// at least len(dst) long, and mask[i] is set true where dst[i] is a real
// received sample and false where it was concealed (zero-filled). The
// walk follows the ordered frame index, so a fully-concealed pop costs
// O(len(dst)) rather than a map scan per sample.
func (j *JitterBuffer) PopMask(dst []float64, mask []bool) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range dst {
		dst[i] = 0
	}
	if mask != nil {
		for i := range dst {
			mask[i] = false
		}
	}
	if !j.started {
		return 0
	}
	real := 0
	end := j.next + uint64(len(dst))
	i := 0
	for i < len(dst) && len(j.order) > 0 {
		ts := j.order[0]
		f := j.frames[ts]
		cur := j.next + uint64(i)
		if ts+uint64(len(f.Samples)) <= cur {
			// Fully in the past (overlapped by an earlier frame).
			j.drop(f)
			delete(j.frames, ts)
			j.popFront(1)
			continue
		}
		if ts >= end {
			break // earliest frame starts beyond this window: conceal the rest
		}
		if ts > cur {
			i += int(ts - cur) // concealed gap before the frame
			cur = ts
		}
		off := int(cur - ts)
		n := len(f.Samples) - off
		if rem := len(dst) - i; n > rem {
			n = rem
		}
		copy(dst[i:i+n], f.Samples[off:off+n])
		if mask != nil {
			for k := i; k < i+n; k++ {
				mask[k] = true
			}
		}
		i += n
		real += n
		if off+n >= len(f.Samples) {
			j.drop(f)
			delete(j.frames, ts)
			j.popFront(1)
		}
	}
	j.stats.SamplesDelivered += uint64(real)
	j.stats.SamplesConcealed += uint64(len(dst) - real)
	j.next += uint64(len(dst))
	return real
}

// PlayoutClock returns the capture-clock index of the next sample PopMask
// will hand out — the consumer-side view of how far into the relay's
// clock the playout has advanced. Zero before the clock has started.
func (j *JitterBuffer) PlayoutClock() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Buffered returns the number of frames currently held.
func (j *JitterBuffer) Buffered() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.frames)
}

// Stats returns a snapshot of the transport counters.
func (j *JitterBuffer) Stats() JitterStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}
