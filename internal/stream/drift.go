package stream

import (
	"fmt"
	"sort"
)

// DriftConfig tunes a DriftEstimator and the drift-correction loop built
// on it. The zero value selects defaults.
type DriftConfig struct {
	// WindowFrames is how many (timestamp, arrival) observations the
	// slope fit spans (default 64).
	WindowFrames int
	// MinFrames is how many observations are needed before the estimate
	// counts as locked (default 8).
	MinFrames int
	// SlopeGain is the loop-filter gain applied to each raw-slope
	// innovation (default 0.05): the frequency half of the PI loop.
	SlopeGain float64
	// PhaseGainPPM is the proportional phase term used by consumers: ppm
	// of rate correction per sample of occupancy error (default 2).
	PhaseGainPPM float64
	// MaxPPM clamps the estimate magnitude (default 500).
	MaxPPM float64
	// JumpPPM is the raw-vs-filtered divergence that flags a suspected
	// oscillator step (default 50); consumers use it to mask adaptation
	// through the resulting rate jump.
	JumpPPM float64
	// StaleSpacings is the estimable horizon: with no observation for
	// this many median inter-frame spacings the estimate is held but no
	// longer trusted for phase steering (default 8).
	StaleSpacings float64
}

func (c DriftConfig) withDefaults() (DriftConfig, error) {
	if c.WindowFrames == 0 {
		c.WindowFrames = 64
	}
	if c.WindowFrames < 4 {
		return c, fmt.Errorf("stream: drift window %d below minimum 4", c.WindowFrames)
	}
	if c.MinFrames == 0 {
		c.MinFrames = 8
	}
	if c.MinFrames < 2 {
		return c, fmt.Errorf("stream: drift min frames %d below minimum 2", c.MinFrames)
	}
	if c.SlopeGain == 0 {
		c.SlopeGain = 0.05
	}
	if c.SlopeGain < 0 || c.SlopeGain > 1 {
		return c, fmt.Errorf("stream: drift slope gain %g outside (0, 1]", c.SlopeGain)
	}
	if c.PhaseGainPPM == 0 {
		c.PhaseGainPPM = 2
	}
	if c.PhaseGainPPM < 0 {
		return c, fmt.Errorf("stream: negative drift phase gain %g", c.PhaseGainPPM)
	}
	if c.MaxPPM == 0 {
		c.MaxPPM = 500
	}
	if c.MaxPPM < 0 {
		return c, fmt.Errorf("stream: negative drift clamp %g", c.MaxPPM)
	}
	if c.JumpPPM == 0 {
		c.JumpPPM = 50
	}
	if c.JumpPPM < 0 {
		return c, fmt.Errorf("stream: negative drift jump threshold %g", c.JumpPPM)
	}
	if c.StaleSpacings == 0 {
		c.StaleSpacings = 8
	}
	if c.StaleSpacings < 0 {
		return c, fmt.Errorf("stream: negative drift stale horizon %g", c.StaleSpacings)
	}
	return c, nil
}

// DriftEstimator measures the relay-vs-ear clock skew from the stream the
// ear actually sees: each delivered frame contributes one (timestamp,
// arrival) pair, where the timestamp counts relay samples and the arrival
// is the ear-clock time the frame landed. The slope of timestamp vs
// arrival is 1 + skew; the estimator fits it robustly (median of paired
// differences across the half-window — one loitering jitter-delayed frame
// cannot bias it) and low-passes the innovation through an integrator, the
// frequency half of a PI/PLL loop. Consumers add the phase half from
// buffer-occupancy error (see PhaseGainPPM).
//
// Loss and outage tolerance come for free: a missing frame is just a
// missing observation, reordered or duplicate timestamps are rejected by
// monotonicity, and Estimable reports when the estimate is too stale to
// steer with (the consumer then holds the last locked frequency).
//
// Exactness: with both clocks nominal every slope is exactly 1.0 and the
// integrator input is exactly 0, so PPM stays 0.0 and a rate derived from
// it is exactly 1 — the property the 0 ppm bit-identity pin relies on.
type DriftEstimator struct {
	cfg DriftConfig
	ts  []float64 // ring: timestamps, relay samples
	arr []float64 // ring: arrivals, ear samples
	n   int       // valid entries
	w   int       // write index
	obs int       // accepted observations, total

	lastTs  uint64
	haveTs  bool
	lastArr float64
	est     float64 // filtered skew, ppm
	raw     float64 // last raw slope fit, ppm
	haveRaw bool
	stepArm bool // hysteresis: a suspected step is active
	scratch []float64
}

// NewDriftEstimator creates an estimator with defaults filled.
func NewDriftEstimator(cfg DriftConfig) (*DriftEstimator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &DriftEstimator{
		cfg: cfg,
		ts:  make([]float64, cfg.WindowFrames),
		arr: make([]float64, cfg.WindowFrames),
	}, nil
}

// Config returns the estimator's effective (default-filled) tuning.
func (d *DriftEstimator) Config() DriftConfig { return d.cfg }

// Observe feeds one delivered frame: its relay-clock timestamp and its
// ear-clock arrival time. Non-increasing timestamps (duplicates, FEC
// echoes, reordering artifacts) are ignored.
func (d *DriftEstimator) Observe(ts uint64, arrival float64) {
	if d.haveTs && ts <= d.lastTs {
		return
	}
	if d.obs > 0 && arrival < d.lastArr {
		arrival = d.lastArr
	}
	d.lastTs, d.haveTs = ts, true
	d.lastArr = arrival
	d.ts[d.w] = float64(ts)
	d.arr[d.w] = arrival
	d.w = (d.w + 1) % len(d.ts)
	if d.n < len(d.ts) {
		d.n++
	}
	d.obs++
	d.refit()
}

// refit recomputes the raw slope (median of half-window paired
// differences) and advances the loop filter.
func (d *DriftEstimator) refit() {
	h := d.n / 2
	if h < 2 {
		return
	}
	// Ring order: the oldest valid entry sits at w when full, at 0 before.
	start := 0
	if d.n == len(d.ts) {
		start = d.w
	}
	at := func(k int) (float64, float64) {
		i := (start + k) % len(d.ts)
		return d.ts[i], d.arr[i]
	}
	d.scratch = d.scratch[:0]
	for j := 0; j+h < d.n; j++ {
		t0, a0 := at(j)
		t1, a1 := at(j + h)
		if a1 <= a0 {
			continue
		}
		d.scratch = append(d.scratch, (t1-t0)/(a1-a0))
	}
	if len(d.scratch) == 0 {
		return
	}
	sort.Float64s(d.scratch)
	m := len(d.scratch) / 2
	slope := d.scratch[m]
	if len(d.scratch)%2 == 0 {
		slope = (d.scratch[m-1] + d.scratch[m]) / 2
	}
	d.raw = (slope - 1) * 1e6
	d.haveRaw = true
	d.est += d.cfg.SlopeGain * (d.raw - d.est)
	if d.est > d.cfg.MaxPPM {
		d.est = d.cfg.MaxPPM
	} else if d.est < -d.cfg.MaxPPM {
		d.est = -d.cfg.MaxPPM
	}
}

// PPM returns the filtered skew estimate in parts per million.
func (d *DriftEstimator) PPM() float64 { return d.est }

// Observations returns how many observations have been accepted in total.
func (d *DriftEstimator) Observations() int { return d.obs }

// LastTimestamp returns the relay-clock timestamp of the newest accepted
// observation (0 before any; check Observations). Together with
// LastArrival and PPM it lets a consumer extrapolate the relay's
// timestamp line to any later ear-clock time — the loss-robust way to
// measure buffer-occupancy error, since dropped frames never perturb the
// line.
func (d *DriftEstimator) LastTimestamp() uint64 { return d.lastTs }

// RawPPM returns the latest unfiltered slope fit in ppm.
func (d *DriftEstimator) RawPPM() float64 { return d.raw }

// Locked reports whether enough observations have accumulated for the
// estimate to be meaningful.
func (d *DriftEstimator) Locked() bool { return d.obs >= d.cfg.MinFrames }

// LastArrival returns the ear-clock time of the newest accepted
// observation (0 before any).
func (d *DriftEstimator) LastArrival() float64 { return d.lastArr }

// Estimable reports whether the estimate is current enough at ear-clock
// time now to steer a resampler's phase: locked, and the newest
// observation is within StaleSpacings median inter-frame spacings. During
// an outage it goes false and the consumer holds frequency only.
func (d *DriftEstimator) Estimable(now float64) bool {
	if !d.Locked() {
		return false
	}
	sp := d.medianSpacing()
	if sp <= 0 {
		return true
	}
	return now-d.lastArr <= d.cfg.StaleSpacings*sp
}

// medianSpacing returns the mean arrival spacing across the window (a
// cheap robust-enough stand-in: the window endpoints straddle any jitter).
func (d *DriftEstimator) medianSpacing() float64 {
	if d.n < 2 {
		return 0
	}
	start := 0
	if d.n == len(d.ts) {
		start = d.w
	}
	first := d.arr[start%len(d.arr)]
	last := d.arr[(start+d.n-1)%len(d.arr)]
	return (last - first) / float64(d.n-1)
}

// StepSuspected reports, with hysteresis, that the raw slope has diverged
// from the filtered estimate by more than JumpPPM — the signature of an
// oscillator step mid-run. It re-arms once the loop has re-converged to
// within half the threshold. Consumers mask canceller adaptation when
// this first fires, since the alignment is about to slew.
func (d *DriftEstimator) StepSuspected() bool {
	if !d.haveRaw || !d.Locked() {
		return false
	}
	div := d.raw - d.est
	if div < 0 {
		div = -div
	}
	if d.stepArm {
		if div < d.cfg.JumpPPM/2 {
			d.stepArm = false
		}
		return false
	}
	if div > d.cfg.JumpPPM {
		d.stepArm = true
		return true
	}
	return false
}
