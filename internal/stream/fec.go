package stream

import "fmt"

// Forward error correction for the waveform transport: after every group
// of K data frames the sender emits one parity frame whose samples are the
// scaled sum of the group's samples. If exactly one data frame of a group
// is lost, the receiver reconstructs it as K·parity − Σ(received). The
// arithmetic runs in the PCM domain, so reconstruction error is bounded by
// K quantization steps (~K/32767) — inaudible against concealment, which
// would otherwise zero the whole frame and cost LANC its reference.

// FECEncoder accumulates data frames and produces parity frames.
type FECEncoder struct {
	group int
	acc   []float64
	count int
	first uint64 // timestamp of the group's first frame
	size  int    // samples per frame within the group
}

// NewFECEncoder creates an encoder emitting one parity frame per group of
// K data frames (2 <= K <= 127).
func NewFECEncoder(group int) (*FECEncoder, error) {
	if group < 2 || group > 127 {
		return nil, fmt.Errorf("stream: FEC group %d outside [2, 127]", group)
	}
	return &FECEncoder{group: group}, nil
}

// Add feeds one data frame. It returns a parity frame when the group
// completes, or nil. All frames of a group must carry the same sample
// count; a size change flushes the partial group without parity protection.
func (e *FECEncoder) Add(f *Frame) *Frame {
	if e.count == 0 || len(f.Samples) != e.size {
		e.size = len(f.Samples)
		e.acc = make([]float64, e.size)
		e.count = 0
		e.first = f.Timestamp
	}
	if e.count == 0 {
		e.first = f.Timestamp
	}
	for i, s := range f.Samples {
		e.acc[i] += s
	}
	e.count++
	if e.count < e.group {
		return nil
	}
	parity := &Frame{
		Seq:       f.Seq, // shares the last data frame's seq space; flags mark it
		Timestamp: e.first,
		Parity:    true,
		GroupSize: uint8(e.group),
		Samples:   make([]float64, e.size),
	}
	inv := 1 / float64(e.group)
	for i, v := range e.acc {
		parity.Samples[i] = v * inv
	}
	e.acc = make([]float64, e.size)
	e.count = 0
	return parity
}

// FECDecoder buffers recent data frames and reconstructs a single missing
// frame per group when its parity arrives.
type FECDecoder struct {
	// recent maps timestamp → frame for data frames seen lately.
	recent map[uint64]*Frame
	// horizon bounds the map size (frames).
	horizon int
	order   []uint64
}

// NewFECDecoder creates a decoder retaining up to horizon recent data
// frames (default 64 when horizon <= 0).
func NewFECDecoder(horizon int) *FECDecoder {
	if horizon <= 0 {
		horizon = 64
	}
	return &FECDecoder{recent: make(map[uint64]*Frame), horizon: horizon}
}

// Add feeds a received frame. Data frames are remembered and returned
// as-is; a parity frame returns the reconstructed missing data frame when
// exactly one frame of its group is absent, else nil.
func (d *FECDecoder) Add(f *Frame) *Frame {
	if !f.Parity {
		if _, ok := d.recent[f.Timestamp]; !ok {
			d.remember(f)
		}
		return f
	}
	k := int(f.GroupSize)
	if k < 2 || len(f.Samples) == 0 {
		return nil
	}
	size := uint64(len(f.Samples))
	missingTS := uint64(0)
	missing := 0
	sum := make([]float64, len(f.Samples))
	for g := 0; g < k; g++ {
		ts := f.Timestamp + uint64(g)*size
		df, ok := d.recent[ts]
		if !ok {
			missing++
			missingTS = ts
			continue
		}
		if len(df.Samples) != len(f.Samples) {
			return nil // group shape mismatch; cannot reconstruct
		}
		for i, s := range df.Samples {
			sum[i] += s
		}
	}
	if missing != 1 {
		return nil
	}
	rec := &Frame{Timestamp: missingTS, Samples: make([]float64, len(f.Samples))}
	for i := range rec.Samples {
		v := float64(k)*f.Samples[i] - sum[i]
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		rec.Samples[i] = v
	}
	// Remember the reconstruction so a duplicate parity cannot re-emit it.
	// This goes through the same horizon trim as the data-frame branch:
	// under sustained loss every group adds a recovered frame, and an
	// untrimmed append would grow recent/order without bound.
	d.remember(rec)
	return rec
}

// remember stores a data frame and trims the memory to the horizon.
func (d *FECDecoder) remember(f *Frame) {
	d.recent[f.Timestamp] = f
	d.order = append(d.order, f.Timestamp)
	for len(d.order) > d.horizon {
		delete(d.recent, d.order[0])
		d.order = d.order[1:]
	}
}
