package stream

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mute/internal/audio"
)

func TestFrameRoundTrip(t *testing.T) {
	in := Frame{
		Seq:       42,
		Timestamp: 123456789,
		Samples:   audio.Render(audio.NewWhiteNoise(1, 8000, 0.9), 160),
	}
	buf, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.Timestamp != in.Timestamp || len(out.Samples) != len(in.Samples) {
		t.Fatalf("header mismatch: %+v", out)
	}
	for i := range in.Samples {
		if math.Abs(out.Samples[i]-in.Samples[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %g vs %g", i, out.Samples[i], in.Samples[i])
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(seq uint32, ts uint64, seed uint64) bool {
		n := int(seed%uint64(MaxFrameSamples)) + 1
		in := Frame{Seq: seq, Timestamp: ts, Samples: audio.Render(audio.NewWhiteNoise(seed, 8000, 0.8), n)}
		buf, err := in.Marshal()
		if err != nil {
			return false
		}
		out, err := Unmarshal(buf)
		if err != nil || out.Seq != seq || out.Timestamp != ts || len(out.Samples) != n {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFrameMarshalErrors(t *testing.T) {
	if _, err := (&Frame{}).Marshal(); err == nil {
		t.Error("empty frame should error")
	}
	big := Frame{Samples: make([]float64, MaxFrameSamples+1)}
	if _, err := big.Marshal(); err == nil {
		t.Error("oversized frame should error")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer should error")
	}
	good, err := (&Frame{Samples: []float64{0.5}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad magic should error")
	}
	bad = append([]byte(nil), good...)
	bad[2] = 99
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad version should error")
	}
	bad = append([]byte(nil), good...)
	bad[16], bad[17] = 0xFF, 0xFF
	if _, err := Unmarshal(bad); err == nil {
		t.Error("oversized count should error")
	}
	if _, err := Unmarshal(good[:len(good)-1]); err == nil {
		t.Error("truncated payload should error")
	}
}

func TestFrameClipsSamples(t *testing.T) {
	in := Frame{Samples: []float64{3, -3}}
	buf, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Samples[0]-1) > 1e-3 || math.Abs(out.Samples[1]+1) > 1e-3 {
		t.Errorf("clipping failed: %v", out.Samples)
	}
}

func TestJitterBufferInOrder(t *testing.T) {
	jb, err := NewJitterBuffer(16)
	if err != nil {
		t.Fatal(err)
	}
	jb.Push(&Frame{Seq: 0, Timestamp: 0, Samples: []float64{1, 2}})
	jb.Push(&Frame{Seq: 1, Timestamp: 2, Samples: []float64{3, 4}})
	dst := make([]float64, 4)
	real := jb.Pop(dst)
	if real != 4 {
		t.Errorf("delivered %d real samples, want 4", real)
	}
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v", dst)
		}
	}
}

func TestJitterBufferReorder(t *testing.T) {
	jb, _ := NewJitterBuffer(16)
	jb.Push(&Frame{Seq: 1, Timestamp: 2, Samples: []float64{3, 4}})
	jb.Push(&Frame{Seq: 0, Timestamp: 0, Samples: []float64{1, 2}})
	dst := make([]float64, 4)
	jb.Pop(dst)
	// The first frame pushed anchored the clock at ts=2; ts 0-1 are in the
	// past. The anchor frame plays first.
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("anchor frame should play first: %v", dst)
	}
}

func TestJitterBufferLossConcealment(t *testing.T) {
	jb, _ := NewJitterBuffer(16)
	jb.Push(&Frame{Seq: 0, Timestamp: 0, Samples: []float64{1, 2}})
	// Frame at ts=2 lost; frame at ts=4 arrives.
	jb.Push(&Frame{Seq: 2, Timestamp: 4, Samples: []float64{5, 6}})
	dst := make([]float64, 6)
	real := jb.Pop(dst)
	if real != 4 {
		t.Errorf("real = %d, want 4", real)
	}
	want := []float64{1, 2, 0, 0, 5, 6}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
	st := jb.Stats()
	if st.SamplesConcealed != 2 {
		t.Errorf("concealed = %d, want 2", st.SamplesConcealed)
	}
}

func TestJitterBufferLateAndDuplicate(t *testing.T) {
	jb, _ := NewJitterBuffer(16)
	jb.Push(&Frame{Seq: 0, Timestamp: 0, Samples: []float64{1, 2}})
	dst := make([]float64, 2)
	jb.Pop(dst)
	// ts=0 is now in the past.
	jb.Push(&Frame{Seq: 0, Timestamp: 0, Samples: []float64{1, 2}})
	if st := jb.Stats(); st.FramesLate != 1 {
		t.Errorf("late = %d, want 1", st.FramesLate)
	}
	jb.Push(&Frame{Seq: 3, Timestamp: 10, Samples: []float64{9}})
	jb.Push(&Frame{Seq: 3, Timestamp: 10, Samples: []float64{9}})
	if st := jb.Stats(); st.FramesDuplicate != 1 {
		t.Errorf("dup = %d, want 1", st.FramesDuplicate)
	}
}

func TestJitterBufferDepthBound(t *testing.T) {
	jb, _ := NewJitterBuffer(2)
	jb.Push(&Frame{Seq: 0, Timestamp: 0, Samples: []float64{1}})
	jb.Push(&Frame{Seq: 1, Timestamp: 1, Samples: []float64{2}})
	jb.Push(&Frame{Seq: 2, Timestamp: 2, Samples: []float64{3}})
	if jb.Buffered() != 2 {
		t.Errorf("buffered = %d, want 2 (depth bound)", jb.Buffered())
	}
}

func TestJitterBufferBeforeStart(t *testing.T) {
	jb, _ := NewJitterBuffer(4)
	dst := []float64{9, 9}
	if real := jb.Pop(dst); real != 0 {
		t.Errorf("pop before start delivered %d", real)
	}
	if dst[0] != 0 || dst[1] != 0 {
		t.Error("pop before start should zero-fill")
	}
}

func TestJitterBufferErrors(t *testing.T) {
	if _, err := NewJitterBuffer(0); err == nil {
		t.Error("zero depth should error")
	}
}

func TestUDPEndToEnd(t *testing.T) {
	rx, err := NewReceiver("127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := NewSender(rx.Addr(), 80)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	in := audio.Render(audio.NewTone(440, 8000, 0.5, 0), 800)
	if err := tx.Send(in); err != nil {
		t.Fatal(err)
	}
	if err := tx.Flush(); err != nil {
		t.Fatal(err)
	}
	// Drain packets.
	deadline := time.Now().Add(2 * time.Second)
	for rx.Buffered() < 10 && time.Now().Before(deadline) {
		if _, err := rx.Poll(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]float64, 800)
	got := rx.Pop(out)
	if got < 700 {
		t.Fatalf("delivered %d real samples, want ≈ 800", got)
	}
	for i := 0; i < got; i++ {
		if math.Abs(out[i]-in[i]) > 1.0/16000 {
			t.Fatalf("sample %d: %g vs %g", i, out[i], in[i])
		}
	}
	st := rx.Stats()
	if st.FramesReceived != 10 {
		t.Errorf("frames received = %d, want 10", st.FramesReceived)
	}
}

func TestSenderErrors(t *testing.T) {
	if _, err := NewSender("127.0.0.1:1", 0); err == nil {
		t.Error("zero frame size should error")
	}
	if _, err := NewSender("127.0.0.1:1", MaxFrameSamples+1); err == nil {
		t.Error("oversized frame size should error")
	}
	if _, err := NewSender("bad::::addr", 80); err == nil {
		t.Error("bad address should error")
	}
}

func TestReceiverErrors(t *testing.T) {
	if _, err := NewReceiver("bad::::addr", 8); err == nil {
		t.Error("bad address should error")
	}
	if _, err := NewReceiver("127.0.0.1:0", 0); err == nil {
		t.Error("zero depth should error")
	}
}

func TestReceiverPollTimeout(t *testing.T) {
	rx, err := NewReceiver("127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	got, err := rx.Poll(20 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("poll on silent socket should time out with false")
	}
}

func TestSenderFlushEmpty(t *testing.T) {
	rx, err := NewReceiver("127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := NewSender(rx.Addr(), 80)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	if err := tx.Flush(); err != nil {
		t.Errorf("empty flush should be a no-op, got %v", err)
	}
}
