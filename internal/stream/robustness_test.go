package stream

import (
	"net"
	"testing"
	"time"
)

// TestSenderCloseFlushesPartialFrame is the regression test for the
// buffered-tail drop: Close on a sender holding a partial frame must flush
// it (and drain the impairment link) before releasing the socket, so the
// last samples of a stream reach the receiver.
func TestSenderCloseFlushesPartialFrame(t *testing.T) {
	rx, err := NewReceiver("127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := NewSender(rx.Addr(), 80)
	if err != nil {
		t.Fatal(err)
	}
	// 30 samples: less than one frame, so Send keeps them pending.
	partial := make([]float64, 30)
	for i := range partial {
		partial[i] = 0.25
	}
	if err := tx.Send(partial); err != nil {
		t.Fatal(err)
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for rx.Buffered() == 0 && time.Now().Before(deadline) {
		if _, err := rx.Poll(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]float64, 30)
	if got := rx.Pop(dst); got != 30 {
		t.Fatalf("partial frame lost on Close: delivered %d of 30 samples", got)
	}
}

// TestSenderCloseDrainsImpairmentLink covers the second half of the Close
// contract: frames a jittery fault-injection link still holds in flight
// must land on the wire before the socket closes.
func TestSenderCloseDrainsImpairmentLink(t *testing.T) {
	rx, err := NewReceiver("127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := NewSender(rx.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewLossyLink(LossParams{Seed: 1, JitterProb: 1, MaxJitter: 8})
	if err != nil {
		t.Fatal(err)
	}
	tx.Impair(link)
	if err := tx.Send(make([]float64, 8)); err != nil { // two full frames, all delayed
		t.Fatal(err)
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	// The jittered frames may arrive out of order; whichever lands first
	// anchors the jitter buffer's playout clock, so the other can be
	// counted late. Either way both must reach the receiver: arrival —
	// received or late — is what proves Close drained the link.
	deadline := time.Now().Add(2 * time.Second)
	arrived := uint64(0)
	for arrived < 2 && time.Now().Before(deadline) {
		if _, err := rx.Poll(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		st := rx.Stats()
		arrived = st.FramesReceived + st.FramesLate
	}
	if arrived != 2 {
		t.Fatalf("link still held frames after Close: %d of 2 arrived", arrived)
	}
}

// TestReceiverPollToleratesMalformedDatagram: stray or corrupted packets
// must be counted, not turned into poll-loop errors.
func TestReceiverPollToleratesMalformedDatagram(t *testing.T) {
	rx, err := NewReceiver("127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	raw, err := net.Dial("udp", rx.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Three flavors of garbage: too short, bad magic, truncated payload.
	good, err := (&Frame{Seq: 7, Timestamp: 80, Samples: make([]float64, 4)}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for _, datagram := range [][]byte{
		{0x00},
		{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		good[:len(good)-3],
	} {
		if _, err := raw.Write(datagram); err != nil {
			t.Fatal(err)
		}
		got, err := rx.Poll(time.Second)
		if err != nil {
			t.Fatalf("malformed datagram failed the poll loop: %v", err)
		}
		if got {
			t.Error("malformed datagram reported as buffered")
		}
	}
	if c := rx.Stats().FramesCorrupt; c != 3 {
		t.Errorf("FramesCorrupt = %d, want 3", c)
	}
	// The receive loop must still be alive: a valid frame goes through.
	if _, err := raw.Write(good); err != nil {
		t.Fatal(err)
	}
	ok, err := rx.Poll(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid frame after garbage did not enter the buffer")
	}
}

// TestLossyLinkScheduledOutage checks the deterministic outage window:
// every frame offered inside it is dropped, and — because the outage gate
// is applied after the stochastic draws advance — the loss pattern outside
// the window is identical to the same seed with no outage scheduled.
func TestLossyLinkScheduledOutage(t *testing.T) {
	run := func(outages []Outage) (delivered map[uint32]bool, stats LinkStats) {
		link, err := NewLossyLink(LossParams{Seed: 5, Loss: 0.1, Outages: outages})
		if err != nil {
			t.Fatal(err)
		}
		delivered = map[uint32]bool{}
		for i := 0; i < 200; i++ {
			for _, f := range link.Transfer(&Frame{Seq: uint32(i), Samples: []float64{0}}) {
				delivered[f.Seq] = true
			}
		}
		for _, f := range link.Drain() {
			delivered[f.Seq] = true
		}
		return delivered, link.Stats()
	}

	outage := Outage{StartSlot: 50, DurationSlots: 30}
	withOut, st := run([]Outage{outage})
	clean, _ := run(nil)

	for seq := uint32(50); seq < 80; seq++ {
		if withOut[seq] {
			t.Fatalf("frame %d delivered inside the outage window", seq)
		}
	}
	// OutageDropped counts the frames the outage took that the stochastic
	// process would have delivered — exactly the clean run's deliveries in
	// the window.
	wantOutage := uint64(0)
	for seq := uint32(50); seq < 80; seq++ {
		if clean[seq] {
			wantOutage++
		}
	}
	if wantOutage == 0 {
		t.Fatal("test seed lost every frame in the window; pick another seed")
	}
	if st.OutageDropped != wantOutage {
		t.Errorf("OutageDropped = %d, want %d", st.OutageDropped, wantOutage)
	}
	for seq := uint32(0); seq < 200; seq++ {
		if seq >= 50 && seq < 80 {
			continue
		}
		if withOut[seq] != clean[seq] {
			t.Errorf("frame %d fate differs outside the outage window (outage %v, clean %v)",
				seq, withOut[seq], clean[seq])
		}
	}
}

// TestOutageValidation rejects zero-length windows.
func TestOutageValidation(t *testing.T) {
	if _, err := NewLossyLink(LossParams{Outages: []Outage{{StartSlot: 3}}}); err == nil {
		t.Error("zero-duration outage should fail validation")
	}
	if !(Outage{StartSlot: 2, DurationSlots: 2}).Covers(3) {
		t.Error("slot 3 should be covered by [2, 4)")
	}
	if (Outage{StartSlot: 2, DurationSlots: 2}).Covers(4) {
		t.Error("slot 4 is past the half-open window")
	}
}
