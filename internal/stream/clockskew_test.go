package stream

import (
	"math"
	"testing"
)

// TestClockSkewDisabledIsExactIdentity pins the property every 0 ppm
// bit-identity test rests on: with no configured skew, Advance returns the
// exact integer sequence 0, 1, 2, ... with no floating-point residue.
func TestClockSkewDisabledIsExactIdentity(t *testing.T) {
	cs, err := NewClockSkew(SkewParams{})
	if err != nil {
		t.Fatal(err)
	}
	if (SkewParams{}).Enabled() {
		t.Error("zero SkewParams reports Enabled")
	}
	for i := 0; i < 10000; i++ {
		if p := cs.Advance(); p != float64(i) {
			t.Fatalf("Advance %d = %v, want exactly %d", i, p, i)
		}
	}
	if pos := cs.Pos(); pos != 10000 {
		t.Errorf("Pos after 10000 advances = %v, want exactly 10000", pos)
	}
	if ppm := cs.PPM(); ppm != 0 {
		t.Errorf("PPM = %v, want exactly 0", ppm)
	}
}

// TestClockSkewConstantSlope checks a constant +100 ppm clock: relay
// samples pack into 1/(1+1e-4) ear samples each, so after n advances the
// position lags n by the accumulated skew.
func TestClockSkewConstantSlope(t *testing.T) {
	cs, err := NewClockSkew(SkewParams{PPM: 100})
	if err != nil {
		t.Fatal(err)
	}
	n := 80000 // 10 s at 8 kHz
	if first := cs.Advance(); first != 0 {
		t.Fatalf("first Advance = %v, want 0", first)
	}
	for i := 1; i < n; i++ {
		cs.Advance()
	}
	want := float64(n) / (1 + 100e-6)
	if got := cs.Pos(); math.Abs(got-want) > 1e-6 {
		t.Errorf("Pos after %d samples at +100 ppm = %v, want %v", n, got, want)
	}
	if ppm := cs.PPM(); ppm != 100 {
		t.Errorf("PPM = %v, want 100", ppm)
	}
}

// TestClockSkewWanderDeterministicBySeed checks the wander walk is a pure
// function of the seed: same seed, same trajectory; different seed,
// different trajectory; and the instantaneous skew respects MaxPPM.
func TestClockSkewWanderDeterministicBySeed(t *testing.T) {
	run := func(seed uint64) []float64 {
		cs, err := NewClockSkew(SkewParams{Seed: seed, WanderPPM: 30, WanderInterval: 100, MaxPPM: 80})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 2000)
		for i := range out {
			out[i] = cs.Advance()
			if ppm := cs.PPM(); ppm > 80 || ppm < -80 {
				t.Fatalf("sample %d: PPM %v escapes MaxPPM 80", i, ppm)
			}
		}
		return out
	}
	a, b, c := run(7), run(7), run(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at sample %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical wander trajectories")
	}
}

// TestClockSkewSteps checks scheduled oscillator steps apply at their
// relay-sample index, accumulate, and are sorted regardless of slice order.
func TestClockSkewSteps(t *testing.T) {
	cs, err := NewClockSkew(SkewParams{
		PPM: 50,
		Steps: []SkewStep{
			{AtSample: 2000, DeltaPPM: 100}, // given out of order
			{AtSample: 1000, DeltaPPM: 200},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ppmAt := make(map[int]float64)
	for i := 0; i < 3000; i++ {
		cs.Advance()
		ppmAt[i] = cs.PPM()
	}
	if got := ppmAt[999]; got != 50 {
		t.Errorf("PPM before first step = %v, want 50", got)
	}
	if got := ppmAt[1000]; got != 250 {
		t.Errorf("PPM after step at 1000 = %v, want 250", got)
	}
	if got := ppmAt[2500]; got != 350 {
		t.Errorf("PPM after both steps = %v, want 350", got)
	}
}

func TestSkewParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    SkewParams
	}{
		{"negative wander", SkewParams{WanderPPM: -1}},
		{"negative interval", SkewParams{WanderInterval: -5}},
		{"negative clamp", SkewParams{MaxPPM: -10}},
		{"ppm beyond clamp", SkewParams{PPM: 200, MaxPPM: 100}},
		{"ppm beyond default clamp", SkewParams{PPM: 1500}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.p)
		}
		if _, err := NewClockSkew(c.p); err == nil {
			t.Errorf("%s: NewClockSkew accepted %+v", c.name, c.p)
		}
	}
	if err := (SkewParams{PPM: -400, WanderPPM: 5, Steps: []SkewStep{{AtSample: 1, DeltaPPM: -3}}}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestSkewParamsEnabled(t *testing.T) {
	cases := []struct {
		p    SkewParams
		want bool
	}{
		{SkewParams{}, false},
		{SkewParams{Seed: 9}, false}, // a seed alone skews nothing
		{SkewParams{PPM: 1}, true},
		{SkewParams{WanderPPM: 0.5}, true},
		{SkewParams{Steps: []SkewStep{{AtSample: 0, DeltaPPM: 10}}}, true},
	}
	for _, c := range cases {
		if got := c.p.Enabled(); got != c.want {
			t.Errorf("Enabled(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
}
