package stream

import (
	"fmt"
	"sort"

	"mute/internal/audio"
)

// SkewStep schedules an instantaneous oscillator frequency change —
// a temperature shock, a PLL re-lock — at a relay-clock sample index.
type SkewStep struct {
	// AtSample is the relay-clock sample index at which the step applies.
	AtSample uint64
	// DeltaPPM is added to the skew from that sample on.
	DeltaPPM float64
}

// SkewParams configures a ClockSkew fault injector: the relay's sample
// clock runs at fs·(1 + PPM·1e-6) while the ear's runs at fs, plus an
// optional slow random walk (crystal temperature drift) and scheduled
// steps. The zero value is a disabled injector — an exact identity.
type SkewParams struct {
	// Seed drives the wander random walk (unused when WanderPPM is 0).
	Seed uint64
	// PPM is the constant relay-vs-ear frequency offset in parts per
	// million. Positive = the relay clock runs fast.
	PPM float64
	// WanderPPM is the per-interval standard deviation of a random walk
	// added to PPM (0 = no wander).
	WanderPPM float64
	// WanderInterval is how often, in relay samples, the walk takes a step
	// (default 400 = 50 ms at 8 kHz).
	WanderInterval int
	// MaxPPM clamps the total instantaneous skew magnitude (default 1000).
	MaxPPM float64
	// Steps schedules instantaneous frequency changes.
	Steps []SkewStep
}

// Enabled reports whether the parameters describe any actual skew.
func (p SkewParams) Enabled() bool {
	return p.PPM != 0 || p.WanderPPM != 0 || len(p.Steps) > 0
}

// Validate checks the parameters.
func (p SkewParams) Validate() error {
	if p.WanderPPM < 0 {
		return fmt.Errorf("stream: negative skew wander %g", p.WanderPPM)
	}
	if p.WanderInterval < 0 {
		return fmt.Errorf("stream: negative wander interval %d", p.WanderInterval)
	}
	if p.MaxPPM < 0 {
		return fmt.Errorf("stream: negative skew clamp %g", p.MaxPPM)
	}
	max := p.MaxPPM
	if max == 0 {
		max = 1000
	}
	if p.PPM > max || p.PPM < -max {
		return fmt.Errorf("stream: skew %g ppm exceeds clamp %g", p.PPM, max)
	}
	return nil
}

// ClockSkew models the relay's skewed oscillator as seen from the ear
// clock. The relay's r-th sample is captured at ear-clock position
// Pos(r), where consecutive samples are 1/(1+skew·1e-6) ear samples
// apart: a fast relay clock (positive ppm) packs its samples into less
// ear time, so its timestamps — which count relay samples — run ahead of
// the ear's.
//
// At zero configured skew the increment is exactly 1.0, so positions are
// exact integers and anything built on ClockSkew degenerates to the
// unskewed pipeline bit for bit. The wander walk draws from a seeded RNG
// only when WanderPPM is non-zero, composing with LossyLink without
// disturbing its draw order.
type ClockSkew struct {
	p       SkewParams
	rng     *audio.RNG
	r       uint64  // relay sample index of the next Advance
	pos     float64 // ear-clock position of relay sample r
	wander  float64 // random-walk ppm component
	stepAcc float64 // accumulated Steps ppm
	stepIdx int
	maxPPM  float64
}

// NewClockSkew creates the injector. Steps are applied in AtSample order
// regardless of slice order.
func NewClockSkew(p SkewParams) (*ClockSkew, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.WanderInterval == 0 {
		p.WanderInterval = 400
	}
	steps := append([]SkewStep(nil), p.Steps...)
	sort.Slice(steps, func(i, j int) bool { return steps[i].AtSample < steps[j].AtSample })
	p.Steps = steps
	c := &ClockSkew{p: p, maxPPM: p.MaxPPM}
	if c.maxPPM == 0 {
		c.maxPPM = 1000
	}
	if p.WanderPPM > 0 {
		c.rng = audio.NewRNG(p.Seed*0x9e3779b9 + 0x7f4a7c15)
	}
	return c, nil
}

// PPM returns the instantaneous relay-vs-ear skew, clamped to MaxPPM.
func (c *ClockSkew) PPM() float64 {
	s := c.p.PPM + c.wander + c.stepAcc
	if s > c.maxPPM {
		s = c.maxPPM
	} else if s < -c.maxPPM {
		s = -c.maxPPM
	}
	return s
}

// Pos returns the ear-clock position of the next relay sample (the one
// the next Advance captures) without advancing.
func (c *ClockSkew) Pos() float64 { return c.pos }

// Advance captures one relay sample: it returns the sample's ear-clock
// position and moves the relay clock forward one skewed sample period.
// The first call returns exactly 0.
func (c *ClockSkew) Advance() float64 {
	for c.stepIdx < len(c.p.Steps) && c.p.Steps[c.stepIdx].AtSample <= c.r {
		c.stepAcc += c.p.Steps[c.stepIdx].DeltaPPM
		c.stepIdx++
	}
	if c.rng != nil && c.r%uint64(c.p.WanderInterval) == 0 {
		c.wander += c.p.WanderPPM * c.rng.Norm()
	}
	p := c.pos
	c.pos += 1 / (1 + c.PPM()*1e-6)
	c.r++
	return p
}
