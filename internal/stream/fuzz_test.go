package stream

import (
	"bytes"
	"math"
	"testing"
)

// FuzzFrameUnmarshal hardens the wire decoder: arbitrary bytes must never
// panic, and any datagram that decodes must round-trip canonically —
// Marshal of the decoded frame succeeds, re-decodes to an identical frame,
// and re-encodes to identical bytes. (The input bytes themselves need not
// be reproduced: trailing garbage and dead flag bits are dropped, which is
// exactly the canonicalization the round-trip pins down.)
func FuzzFrameUnmarshal(f *testing.F) {
	data, err := (&Frame{Seq: 3, Timestamp: 240, Samples: []float64{0.5, -0.25, 1}}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	parity, err := (&Frame{Seq: 9, Timestamp: 0, Parity: true, GroupSize: 4, Samples: []float64{0.1}}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(parity)
	f.Add([]byte{})
	f.Add([]byte{0x4d, 0x55, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 80, 0, 1, 0x7f, 0xff})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		enc, err := fr.Marshal()
		if err != nil {
			t.Fatalf("decoded frame does not re-marshal: %v", err)
		}
		fr2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("canonical bytes do not decode: %v", err)
		}
		if fr2.Seq != fr.Seq || fr2.Timestamp != fr.Timestamp ||
			fr2.Parity != fr.Parity || fr2.GroupSize != fr.GroupSize {
			t.Fatalf("header drifted across round-trip: %+v vs %+v", fr, fr2)
		}
		if len(fr2.Samples) != len(fr.Samples) {
			t.Fatalf("payload length drifted: %d vs %d", len(fr.Samples), len(fr2.Samples))
		}
		for i := range fr.Samples {
			// Unmarshal yields exact k/32767 values, which Marshal maps
			// back to k — the second decode must reproduce them exactly.
			if fr2.Samples[i] != fr.Samples[i] {
				t.Fatalf("sample %d drifted: %v vs %v", i, fr.Samples[i], fr2.Samples[i])
			}
		}
		enc2, err := fr2.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

// canonical returns the reference sample value for capture index c. Every
// fuzz-pushed frame carries canonical values, so any sample the buffer
// delivers as "real" must equal canonical(its capture index) — data
// integrity across reordering, duplication, overlap, and eviction.
func canonical(c uint64) float64 {
	return float64(c%97)/97 - 0.5
}

// FuzzJitterBufferPopMask drives the jitter buffer with an arbitrary
// push/pop/anchor op stream decoded from the fuzz input and checks the
// buffer's invariants after every operation: delivered samples carry the
// canonical value for their capture index, concealed samples are exactly
// the zero-masked ones, the delivered+concealed counters advance in step
// with the popped window, and the buffer never holds more than its depth.
func FuzzJitterBufferPopMask(f *testing.F) {
	f.Add([]byte{0, 0, 8, 1, 16, 0, 8, 8, 1, 16})
	f.Add([]byte{2, 4, 0, 0, 4, 1, 4, 1, 4, 1, 4})
	f.Add([]byte("0123456789abcdef"))
	f.Add([]byte{1, 255, 0, 250, 3, 1, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		const depth = 4
		jb, err := NewJitterBuffer(depth)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, 64)
		mask := make([]bool, 64)
		// Mirror of the buffer's playout clock, maintained from the same
		// anchoring rules, so the test knows each popped sample's capture
		// index without reaching into the buffer.
		var clock uint64
		started := false
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		for ops := 0; pos < len(data) && ops < 256; ops++ {
			switch next() % 3 {
			case 0: // push a canonical frame
				ts := uint64(next()) * 4
				n := int(next())%32 + 1
				samples := make([]float64, n)
				for i := range samples {
					samples[i] = canonical(ts + uint64(i))
				}
				jb.Push(&Frame{Timestamp: ts, Samples: samples})
				if !started {
					clock, started = ts, true
				}
			case 1: // pop a window
				n := int(next())%len(dst) + 1
				before := jb.Stats()
				real := jb.PopMask(dst[:n], mask[:n])
				after := jb.Stats()
				trueCount := 0
				for i := 0; i < n; i++ {
					if mask[i] {
						trueCount++
						want := canonical(clock + uint64(i))
						if dst[i] != want {
							t.Fatalf("real sample %d = %v, want canonical %v", i, dst[i], want)
						}
					} else if dst[i] != 0 {
						t.Fatalf("concealed sample %d = %v, want 0", i, dst[i])
					}
				}
				if real != trueCount {
					t.Fatalf("PopMask returned %d, mask has %d true entries", real, trueCount)
				}
				dDeliv := after.SamplesDelivered - before.SamplesDelivered
				dConc := after.SamplesConcealed - before.SamplesConcealed
				if started {
					if dDeliv+dConc != uint64(n) {
						t.Fatalf("counters advanced by %d for a %d-sample pop", dDeliv+dConc, n)
					}
					clock += uint64(n)
				} else if real != 0 || dDeliv+dConc != 0 {
					t.Fatal("pop before the clock started delivered samples")
				}
				if dDeliv != uint64(real) {
					t.Fatalf("delivered counter moved %d, PopMask returned %d", dDeliv, real)
				}
			case 2: // anchor (no-op once started)
				ts := uint64(next())
				jb.Anchor(ts)
				if !started {
					clock, started = ts, true
				}
			}
			if jb.Buffered() > depth {
				t.Fatalf("buffer holds %d frames, depth is %d", jb.Buffered(), depth)
			}
		}
	})
}

// FuzzFECDecoder exercises both halves of the FEC decoder. The structured
// half round-trips a fuzz-chosen group through encoder and decoder with one
// frame dropped and requires exact-within-rounding reconstruction at the
// right timestamp. The adversarial half feeds raw frames decoded straight
// from fuzz bytes — inconsistent group sizes, overlapping timestamps,
// parity storms — and requires the decoder to stay panic-free and within
// its memory horizon.
func FuzzFECDecoder(f *testing.F) {
	f.Add([]byte{4, 8, 2, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{2, 1, 0, 200, 100})
	f.Add([]byte("fecfecfecfecfec"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		k := int(data[0])%7 + 2    // group size 2..8
		size := int(data[1])%8 + 1 // samples per frame 1..8
		drop := int(data[2]) % k
		payload := data[3:]
		sampleAt := func(fr, i int) float64 {
			idx := fr*size + i
			b := byte(idx)
			if idx < len(payload) {
				b = payload[idx]
			}
			// Keep |v| ≤ 1/k so the reconstruction clamp never engages.
			return (float64(b)/255 - 0.5) / float64(k)
		}

		enc, err := NewFECEncoder(k)
		if err != nil {
			t.Fatal(err)
		}
		dec := NewFECDecoder(4 * k)
		var parity *Frame
		frames := make([]*Frame, k)
		for fr := 0; fr < k; fr++ {
			samples := make([]float64, size)
			for i := range samples {
				samples[i] = sampleAt(fr, i)
			}
			frames[fr] = &Frame{Timestamp: uint64(fr * size), Samples: samples}
			if p := enc.Add(frames[fr]); p != nil {
				parity = p
			}
		}
		if parity == nil {
			t.Fatalf("no parity after %d frames of group %d", k, k)
		}
		for fr := 0; fr < k; fr++ {
			if fr == drop {
				continue
			}
			if out := dec.Add(frames[fr]); out != frames[fr] {
				t.Fatal("data frame not returned as-is")
			}
		}
		rec := dec.Add(parity)
		if rec == nil {
			t.Fatal("single missing frame not reconstructed")
		}
		if rec.Timestamp != frames[drop].Timestamp {
			t.Fatalf("reconstructed ts %d, want %d", rec.Timestamp, frames[drop].Timestamp)
		}
		for i := range rec.Samples {
			want := frames[drop].Samples[i]
			if math.Abs(rec.Samples[i]-want) > 1e-9 {
				t.Fatalf("reconstructed sample %d = %v, want %v", i, rec.Samples[i], want)
			}
		}
		// A duplicate parity must not re-emit the reconstruction.
		if again := dec.Add(parity); again != nil {
			t.Fatal("duplicate parity re-emitted a frame")
		}

		// Adversarial half: raw frames straight from the fuzz bytes.
		adv := NewFECDecoder(8)
		for pos := 0; pos+2 < len(payload); pos += 3 {
			n := int(payload[pos+1])%4 + 1
			samples := make([]float64, n)
			for i := range samples {
				samples[i] = float64(payload[pos+2]) / 255
			}
			adv.Add(&Frame{
				Timestamp: uint64(payload[pos]) * 2,
				Parity:    payload[pos]%3 == 0,
				GroupSize: payload[pos+1],
				Samples:   samples,
			})
			if len(adv.recent) > 8 {
				t.Fatalf("decoder memory %d frames, horizon 8", len(adv.recent))
			}
		}
	})
}

// FuzzJitterBufferSkew hardens the buffer against the input a skewed,
// re-stamping relay produces: unaligned timestamps, duplicates, frames
// that overlap or shadow earlier coverage, and the single-sample pops the
// drift-correction resampler issues. Beyond FuzzJitterBufferPopMask's
// frame-aligned windows, it checks the documented tie-breaks hold under
// arbitrary interleavings: delivered samples always carry the canonical
// value for their capture index (whichever overlapping frame supplied
// them), the playout clock advances by exactly the popped length, and the
// counters never drift from the clock.
func FuzzJitterBufferSkew(f *testing.F) {
	f.Add([]byte{0, 0, 0, 4, 1, 3, 0, 0, 1, 4, 1, 7})
	f.Add([]byte{0, 0, 5, 8, 0, 0, 5, 8, 1, 9, 2, 31})
	f.Add([]byte{3, 7, 0, 0, 9, 6, 1, 2, 0, 1, 0, 6, 2, 15, 1, 1})
	f.Add([]byte("skewed relay restamping torture"))
	f.Fuzz(func(t *testing.T, data []byte) {
		const depth = 6
		jb, err := NewJitterBuffer(depth)
		if err != nil {
			t.Fatal(err)
		}
		var clock uint64
		started := false
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		popCheck := func(n int) {
			dst := make([]float64, n)
			mask := make([]bool, n)
			before := jb.Stats()
			real := jb.PopMask(dst, mask)
			after := jb.Stats()
			trueCount := 0
			for i := 0; i < n; i++ {
				if mask[i] {
					trueCount++
					if want := canonical(clock + uint64(i)); dst[i] != want {
						t.Fatalf("real sample at capture index %d = %v, want canonical %v",
							clock+uint64(i), dst[i], want)
					}
				} else if dst[i] != 0 {
					t.Fatalf("concealed sample %d = %v, want 0", i, dst[i])
				}
			}
			if real != trueCount {
				t.Fatalf("PopMask returned %d, mask has %d true entries", real, trueCount)
			}
			if started {
				clock += uint64(n)
				if got := jb.PlayoutClock(); got != clock {
					t.Fatalf("playout clock %d, want %d", got, clock)
				}
				if d := (after.SamplesDelivered + after.SamplesConcealed) -
					(before.SamplesDelivered + before.SamplesConcealed); d != uint64(n) {
					t.Fatalf("counters advanced %d for a %d-sample pop", d, n)
				}
			} else if real != 0 {
				t.Fatal("pop before the clock started delivered samples")
			}
		}
		for ops := 0; pos < len(data) && ops < 256; ops++ {
			switch next() % 4 {
			case 0: // push an arbitrarily re-stamped frame
				ts := uint64(next())<<8 | uint64(next()) // unaligned on purpose
				n := int(next())%16 + 1
				samples := make([]float64, n)
				for i := range samples {
					samples[i] = canonical(ts + uint64(i))
				}
				jb.Push(&Frame{Timestamp: ts, Samples: samples})
				if !started {
					clock, started = ts, true
				}
			case 1: // the drift path's single-sample pops
				for k := int(next())%8 + 1; k > 0; k-- {
					popCheck(1)
				}
			case 2: // a bulk pop window
				popCheck(int(next())%32 + 1)
			case 3:
				ts := uint64(next())
				jb.Anchor(ts)
				if !started {
					clock, started = ts, true
				}
			}
			if jb.Buffered() > depth {
				t.Fatalf("buffer holds %d frames, depth is %d", jb.Buffered(), depth)
			}
		}
	})
}
