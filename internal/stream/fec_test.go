package stream

import (
	"math"
	"testing"
	"time"

	"mute/internal/audio"
)

func dataFrames(t *testing.T, seed uint64, count, size int) []*Frame {
	t.Helper()
	g := audio.NewWhiteNoise(seed, 8000, 0.8)
	out := make([]*Frame, count)
	for i := range out {
		out[i] = &Frame{
			Seq:       uint32(i),
			Timestamp: uint64(i * size),
			Samples:   audio.Render(g, size),
		}
	}
	return out
}

func TestFECEncoderEmitsParityPerGroup(t *testing.T) {
	enc, err := NewFECEncoder(4)
	if err != nil {
		t.Fatal(err)
	}
	frames := dataFrames(t, 1, 8, 80)
	var parities []*Frame
	for _, f := range frames {
		if p := enc.Add(f); p != nil {
			parities = append(parities, p)
		}
	}
	if len(parities) != 2 {
		t.Fatalf("8 frames at group 4 should yield 2 parity frames, got %d", len(parities))
	}
	for _, p := range parities {
		if !p.Parity || p.GroupSize != 4 || len(p.Samples) != 80 {
			t.Fatalf("malformed parity frame: %+v", p)
		}
	}
	if parities[0].Timestamp != 0 || parities[1].Timestamp != 4*80 {
		t.Errorf("parity timestamps wrong: %d, %d", parities[0].Timestamp, parities[1].Timestamp)
	}
}

func TestFECEncoderErrors(t *testing.T) {
	if _, err := NewFECEncoder(1); err == nil {
		t.Error("group 1 should error")
	}
	if _, err := NewFECEncoder(128); err == nil {
		t.Error("group 128 should error")
	}
}

func TestFECRoundTripRecoversLostFrame(t *testing.T) {
	const group, size = 4, 80
	enc, err := NewFECEncoder(group)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewFECDecoder(0)
	frames := dataFrames(t, 2, group, size)
	lost := 2 // drop the third frame
	var parity *Frame
	for _, f := range frames {
		if p := enc.Add(f); p != nil {
			parity = p
		}
	}
	if parity == nil {
		t.Fatal("no parity produced")
	}
	// Receiver sees everything except the lost frame, then the parity —
	// all after a marshal/unmarshal round trip (PCM quantization applies).
	rt := func(f *Frame) *Frame {
		buf, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		out, err := Unmarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for i, f := range frames {
		if i == lost {
			continue
		}
		if got := dec.Add(rt(f)); got == nil {
			t.Fatal("data frame should pass through")
		}
	}
	rec := dec.Add(rt(parity))
	if rec == nil {
		t.Fatal("parity should reconstruct the missing frame")
	}
	if rec.Timestamp != frames[lost].Timestamp {
		t.Fatalf("reconstructed ts %d, want %d", rec.Timestamp, frames[lost].Timestamp)
	}
	for i := range rec.Samples {
		if math.Abs(rec.Samples[i]-frames[lost].Samples[i]) > float64(group+1)/32767*2 {
			t.Fatalf("sample %d: %g vs %g", i, rec.Samples[i], frames[lost].Samples[i])
		}
	}
}

func TestFECDecoderNoRecoveryCases(t *testing.T) {
	const group, size = 3, 40
	enc, _ := NewFECEncoder(group)
	frames := dataFrames(t, 3, group, size)
	var parity *Frame
	for _, f := range frames {
		if p := enc.Add(f); p != nil {
			parity = p
		}
	}
	// Case 1: nothing missing → parity yields nil.
	dec := NewFECDecoder(0)
	for _, f := range frames {
		dec.Add(f)
	}
	if dec.Add(parity) != nil {
		t.Error("complete group should not reconstruct")
	}
	// Case 2: two missing → cannot reconstruct.
	dec2 := NewFECDecoder(0)
	dec2.Add(frames[0])
	if dec2.Add(parity) != nil {
		t.Error("two missing frames cannot be reconstructed")
	}
	// Case 3: malformed parity (group < 2).
	dec3 := NewFECDecoder(0)
	if dec3.Add(&Frame{Parity: true, GroupSize: 1, Samples: []float64{0}}) != nil {
		t.Error("invalid parity should be ignored")
	}
}

func TestFECDuplicateParityDoesNotDoubleEmit(t *testing.T) {
	const group, size = 2, 40
	enc, _ := NewFECEncoder(group)
	frames := dataFrames(t, 4, group, size)
	var parity *Frame
	for _, f := range frames {
		if p := enc.Add(f); p != nil {
			parity = p
		}
	}
	dec := NewFECDecoder(0)
	dec.Add(frames[0]) // frame 1 lost
	if dec.Add(parity) == nil {
		t.Fatal("first parity should reconstruct")
	}
	if dec.Add(parity) != nil {
		t.Error("duplicate parity should not reconstruct again")
	}
}

// TestFECDecoderHorizonBoundsMemoryUnderSustainedLoss feeds many groups
// with one loss each — the regime where every parity frame yields a
// reconstruction — and asserts the decoder's memory stays within its
// horizon. The recovered-frame branch used to append to the order list
// without the trim applied to data frames, growing without bound.
func TestFECDecoderHorizonBoundsMemoryUnderSustainedLoss(t *testing.T) {
	const group, size, horizon, groups = 4, 40, 16, 200
	enc, err := NewFECEncoder(group)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewFECDecoder(horizon)
	frames := dataFrames(t, 7, groups*group, size)
	recovered := 0
	for g := 0; g < groups; g++ {
		var parity *Frame
		for k := 0; k < group; k++ {
			f := frames[g*group+k]
			if p := enc.Add(f); p != nil {
				parity = p
			}
			if k == 1 {
				continue // lose the second frame of every group
			}
			dec.Add(f)
		}
		if parity == nil {
			t.Fatal("no parity produced")
		}
		if dec.Add(parity) != nil {
			recovered++
		}
	}
	if recovered != groups {
		t.Errorf("recovered %d frames, want %d", recovered, groups)
	}
	if len(dec.recent) > horizon || len(dec.order) > horizon {
		t.Errorf("decoder memory exceeded horizon: recent=%d order=%d, horizon=%d",
			len(dec.recent), len(dec.order), horizon)
	}
}

func TestParityFrameWireRoundTrip(t *testing.T) {
	p := &Frame{Seq: 9, Timestamp: 160, Parity: true, GroupSize: 4, Samples: []float64{0.1, -0.2}}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Parity || out.GroupSize != 4 {
		t.Errorf("parity flags lost: %+v", out)
	}
	bad := &Frame{Parity: true, GroupSize: 0, Samples: []float64{0}}
	if _, err := bad.Marshal(); err == nil {
		t.Error("parity without group size should fail to marshal")
	}
}

func TestUDPEndToEndWithFECAndLoss(t *testing.T) {
	// Simulate loss by sending frames through a raw socket and skipping
	// one data frame; the receiver's FEC layer must reconstruct it so the
	// jitter buffer conceals nothing.
	rx, err := NewReceiver("127.0.0.1:0", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := NewSender(rx.Addr(), 80)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	if err := tx.EnableFEC(4); err != nil {
		t.Fatal(err)
	}
	if err := tx.EnableFEC(200); err == nil {
		t.Error("invalid FEC group should error")
	}

	// Build the frames manually so we can drop one: easier to drive the
	// sender and intercept at the receiver — instead, send 8 frames and
	// drop is emulated by a lossy decoder below. For the socket path just
	// verify parity frames flow and stats count them.
	in := audio.Render(audio.NewTone(500, 8000, 0.5, 0), 8*80)
	if err := tx.Send(in); err != nil {
		t.Fatal(err)
	}
	// 8 data + 2 parity datagrams were sent; Poll returns true only for
	// the 8 data frames that reach the jitter buffer (parity frames of
	// complete groups reconstruct nothing and report false).
	deadline := time.Now().Add(2 * time.Second)
	buffered := 0
	for rx.Buffered() < 8 && time.Now().Before(deadline) {
		got, err := rx.Poll(50 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			buffered++
		}
	}
	if buffered != 8 {
		t.Errorf("polls reporting buffered = %d, want 8 data frames", buffered)
	}
	if rx.Buffered() != 8 {
		t.Errorf("buffered = %d, want 8 data frames", rx.Buffered())
	}
	if rx.Recovered() != 0 {
		t.Errorf("recovered = %d, want 0 (no loss)", rx.Recovered())
	}
	out := make([]float64, 8*80)
	if got := rx.Pop(out); got < 8*80-1 {
		t.Errorf("delivered %d real samples", got)
	}
}
