package stream

import "mute/internal/telemetry"

// Publish exposes the jitter-buffer counters as first-class registry
// series under prefix (e.g. "stream."). The stats are cumulative, so call
// it once per run on a per-run registry; experiment runners then merge
// those registries in task order.
func (s JitterStats) Publish(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + "frames_received").Add(int64(s.FramesReceived))
	reg.Counter(prefix + "frames_duplicate").Add(int64(s.FramesDuplicate))
	reg.Counter(prefix + "frames_late").Add(int64(s.FramesLate))
	reg.Counter(prefix + "frames_dropped").Add(int64(s.FramesDropped))
	reg.Counter(prefix + "frames_corrupt").Add(int64(s.FramesCorrupt))
	reg.Counter(prefix + "samples_concealed").Add(int64(s.SamplesConcealed))
	reg.Counter(prefix + "samples_delivered").Add(int64(s.SamplesDelivered))
}

// Publish exposes the link impairment counters as registry series under
// prefix (e.g. "link."). Same once-per-run contract as JitterStats.Publish.
func (s LinkStats) Publish(reg *telemetry.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Counter(prefix + "frames_offered").Add(int64(s.Offered))
	reg.Counter(prefix + "frames_dropped").Add(int64(s.Dropped))
	reg.Counter(prefix + "frames_outage_dropped").Add(int64(s.OutageDropped))
	reg.Counter(prefix + "frames_duplicated").Add(int64(s.Duplicated))
	reg.Counter(prefix + "frames_delayed").Add(int64(s.Delayed))
	reg.Counter(prefix + "frames_delivered").Add(int64(s.Delivered))
}
