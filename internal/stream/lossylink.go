package stream

import (
	"fmt"

	"mute/internal/audio"
)

// LossyLink is a deterministic, seeded impairment model for the frame
// transport: it drops, duplicates, delays, and reorders frames the way a
// congested RF/UDP link would, so the loss-concealment and FEC machinery
// can be exercised reproducibly — in-process (the simulator and the loss
// experiments) or in front of a Sender's socket (see Sender.Impair).
//
// Time is measured in "slots": one slot per frame offered to the link, the
// cadence at which the sender emits datagrams. A frame delayed by k slots
// is delivered together with the frame offered k slots later, which is how
// latency jitter turns into reordering at the receiver.

// Outage is a scheduled total-loss window: every frame offered during
// [StartSlot, StartSlot+DurationSlots) is dropped, regardless of the
// stochastic loss process. It models deterministic relay failures — a
// reboot, an unplugged antenna, a deep shadowing event — that the
// supervisor's degradation ladder must ride out. Slots are the link's
// frame clock (one slot per frame offered), so an outage of D seconds at
// frame size F samples and rate fs spans D·fs/F slots.
type Outage struct {
	// StartSlot is the first slot of the outage.
	StartSlot uint64
	// DurationSlots is how many slots the outage lasts.
	DurationSlots uint64
}

// Covers reports whether slot falls inside the outage window.
func (o Outage) Covers(slot uint64) bool {
	return slot >= o.StartSlot && slot < o.StartSlot+o.DurationSlots
}

// LossParams configures a LossyLink. The zero value is a perfect link.
type LossParams struct {
	// Seed drives all impairment randomness; identical seeds reproduce
	// identical loss/delay patterns.
	Seed uint64
	// Loss is the stationary frame-loss probability in [0, 1).
	Loss float64
	// MeanBurst shapes the loss process: <= 1 selects i.i.d. (Bernoulli)
	// drops; > 1 selects a Gilbert–Elliott two-state chain whose
	// stationary loss rate is Loss and whose mean loss-burst length is
	// MeanBurst frames — the bursty fading typical of real radio links.
	MeanBurst float64
	// Duplicate is the probability a delivered frame is transmitted
	// twice; the copy lands one slot after the original.
	Duplicate float64
	// Reorder is the probability a delivered frame is held back one slot,
	// letting its successor overtake it.
	Reorder float64
	// JitterProb is the probability a delivered frame suffers extra
	// latency of 1..MaxJitter slots (uniform). Requires MaxJitter > 0.
	JitterProb float64
	// MaxJitter bounds the extra latency in slots.
	MaxJitter int
	// Outages schedules deterministic total-loss windows on top of the
	// stochastic impairments (relay reboots, deep fades at the frame
	// level). Windows may overlap; frames in any window are dropped.
	Outages []Outage
}

// Validate checks the parameter ranges.
func (p LossParams) Validate() error {
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("stream: loss probability %g outside [0, 1)", p.Loss)
	}
	if p.MeanBurst < 0 {
		return fmt.Errorf("stream: negative mean burst %g", p.MeanBurst)
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{{"duplicate", p.Duplicate}, {"reorder", p.Reorder}, {"jitter", p.JitterProb}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("stream: %s probability %g outside [0, 1]", pr.name, pr.v)
		}
	}
	if p.MaxJitter < 0 {
		return fmt.Errorf("stream: negative max jitter %d", p.MaxJitter)
	}
	if p.JitterProb > 0 && p.MaxJitter == 0 {
		return fmt.Errorf("stream: jitter probability %g needs MaxJitter > 0", p.JitterProb)
	}
	for i, o := range p.Outages {
		if o.DurationSlots == 0 {
			return fmt.Errorf("stream: outage %d has zero duration", i)
		}
	}
	return nil
}

// LinkStats counts what the impairment model did to the offered frames.
type LinkStats struct {
	// Offered is the number of frames handed to the link.
	Offered uint64
	// Dropped is the number of frames the link lost.
	Dropped uint64
	// OutageDropped counts the subset of Dropped that a scheduled outage
	// window took after the frame survived the stochastic loss process.
	OutageDropped uint64
	// Duplicated is the number of extra copies the link injected.
	Duplicated uint64
	// Delayed is the number of frames delivered later than their slot.
	Delayed uint64
	// Delivered is the number of frames handed out (including copies).
	Delivered uint64
}

type linkFrame struct {
	due uint64 // slot at which the frame leaves the link
	seq uint64 // insertion order, for a stable delivery sort
	f   *Frame
}

// LossyLink applies LossParams to a frame stream. It is not safe for
// concurrent use; wrap it in the owning goroutine (Sender does).
type LossyLink struct {
	p     LossParams
	rng   *audio.RNG
	slot  uint64
	ins   uint64
	bad   bool    // Gilbert–Elliott state
	pGB   float64 // good → bad transition probability
	pBG   float64 // bad → good transition probability
	queue []linkFrame
	stats LinkStats
	// Delivery scratch, reused across slots so steady-state Transfer calls
	// allocate nothing — at fleet scale (hundreds of links ticking every
	// block) per-slot slices are enough garbage to schedule GC pauses.
	dueScratch []linkFrame
	outScratch []*Frame
}

// NewLossyLink creates an impairment model from validated parameters.
func NewLossyLink(p LossParams) (*LossyLink, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	l := &LossyLink{p: p, rng: audio.NewRNG(p.Seed*0x9e3779b9 + 1)}
	if p.MeanBurst > 1 && p.Loss > 0 {
		// Two-state Gilbert–Elliott chain: lossless in Good, lossy in Bad.
		// Mean Bad dwell = MeanBurst ⇒ pBG = 1/MeanBurst; the stationary
		// Bad probability pGB/(pGB+pBG) must equal Loss.
		l.pBG = 1 / p.MeanBurst
		l.pGB = l.pBG * p.Loss / (1 - p.Loss)
	}
	return l, nil
}

// inOutage reports whether the current slot falls in a scheduled outage.
func (l *LossyLink) inOutage() bool {
	for _, o := range l.p.Outages {
		if o.Covers(l.slot) {
			return true
		}
	}
	return false
}

// drop decides the fate of one offered frame, advancing the loss process.
func (l *LossyLink) drop() bool {
	if l.pBG > 0 {
		if l.bad {
			if l.rng.Float64() < l.pBG {
				l.bad = false
			}
		} else if l.rng.Float64() < l.pGB {
			l.bad = true
		}
		return l.bad
	}
	return l.p.Loss > 0 && l.rng.Float64() < l.p.Loss
}

func (l *LossyLink) enqueue(due uint64, f *Frame) {
	l.queue = append(l.queue, linkFrame{due: due, seq: l.ins, f: f})
	l.ins++
}

// takeDue removes and returns every queued frame due at or before slot,
// ordered by (due, insertion). The returned slice is scratch reused by
// the next slot.
func (l *LossyLink) takeDue(slot uint64) []*Frame {
	due := l.dueScratch[:0]
	kept := l.queue[:0]
	for _, q := range l.queue {
		if q.due <= slot {
			due = append(due, q)
		} else {
			kept = append(kept, q)
		}
	}
	l.queue = kept
	l.dueScratch = due
	if len(due) == 0 {
		return nil
	}
	// Insertion sort: the due list is at most a few frames (a jitter
	// cluster plus a duplicate), and unlike sort.Slice it does not
	// allocate.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && (due[j].due < due[j-1].due ||
			(due[j].due == due[j-1].due && due[j].seq < due[j-1].seq)); j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	out := l.outScratch[:0]
	for _, q := range due {
		out = append(out, q.f)
	}
	l.outScratch = out
	l.stats.Delivered += uint64(len(out))
	return out
}

// Transfer offers f to the link, advances the link clock by one slot, and
// returns the frames the link delivers in this slot, oldest first. A nil f
// models an idle slot: time passes and delayed frames may emerge. The
// returned slice is only valid until the next Transfer or Drain call;
// consume (or copy) it before offering the next frame.
func (l *LossyLink) Transfer(f *Frame) []*Frame {
	if f != nil {
		l.stats.Offered++
		if l.drop() {
			l.stats.Dropped++
		} else {
			delay := uint64(0)
			if l.p.Reorder > 0 && l.rng.Float64() < l.p.Reorder {
				delay = 1
			}
			if l.p.JitterProb > 0 && l.rng.Float64() < l.p.JitterProb {
				delay += uint64(1 + l.rng.Intn(l.p.MaxJitter))
			}
			dup := l.p.Duplicate > 0 && l.rng.Float64() < l.p.Duplicate
			// A scheduled outage swallows the frame after the stochastic
			// draws, so the same seed yields the same loss/jitter pattern
			// outside the outage windows whatever the schedule — runs with
			// and without an outage stay comparable frame for frame.
			if l.inOutage() {
				l.stats.Dropped++
				l.stats.OutageDropped++
			} else {
				if delay > 0 {
					l.stats.Delayed++
				}
				l.enqueue(l.slot+delay, f)
				if dup {
					l.stats.Duplicated++
					l.enqueue(l.slot+delay+1, f)
				}
			}
		}
	}
	out := l.takeDue(l.slot)
	l.slot++
	return out
}

// Drain returns every frame still in flight, in delivery order, and
// empties the link — the end-of-stream flush. Like Transfer's, the
// returned slice is only valid until the next Transfer or Drain call.
func (l *LossyLink) Drain() []*Frame {
	if len(l.queue) == 0 {
		return nil
	}
	out := l.takeDue(l.slot + uint64(l.p.MaxJitter) + 2)
	l.queue = l.queue[:0]
	return out
}

// Stats returns a snapshot of the impairment counters.
func (l *LossyLink) Stats() LinkStats { return l.stats }
