// Package acoustics models sound propagation for the MUTE reproduction:
// 3-D geometry, point-source spherical spreading, propagation delay at the
// speed of sound, and multipath room impulse responses computed with the
// image-source method for rectangular rooms.
//
// The paper's core quantity — lookahead — is the difference between the
// acoustic travel time from the noise source to the ear and the (near-zero)
// RF forwarding time from the relay (Equation 4). This package computes it
// from geometry.
package acoustics

import (
	"fmt"
	"math"
)

// SpeedOfSound is the propagation speed of sound in air in m/s, matching
// the value the paper uses (≈340 m/s).
const SpeedOfSound = 340.0

// SpeedOfLight is the RF propagation speed in m/s.
const SpeedOfLight = 299792458.0

// Point is a position in 3-D space, in meters.
type Point struct {
	X, Y, Z float64
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Dist returns the Euclidean distance between p and q in meters.
func (p Point) Dist(q Point) float64 {
	d := p.Sub(q)
	return math.Sqrt(d.X*d.X + d.Y*d.Y + d.Z*d.Z)
}

// String renders the point as "(x, y, z)".
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f, %.2f)", p.X, p.Y, p.Z) }

// AcousticDelay returns the travel time of sound over distance d meters.
func AcousticDelay(d float64) float64 { return d / SpeedOfSound }

// RFDelay returns the travel time of an RF signal over distance d meters.
func RFDelay(d float64) float64 { return d / SpeedOfLight }

// Lookahead computes the lookahead time (Equation 4 of the paper) for a
// noise source heard at the ear device with the reference microphone at the
// relay: T = (d_e - d_r)/v, where d_e is source→ear distance and d_r is
// source→relay distance. The RF forwarding delay is subtracted; it is
// negligible (sub-microsecond) at room scale but included for completeness.
// A negative result means the relay hears the sound *after* the ear device
// and forwarding is useless (Section 4.2).
func Lookahead(source, relay, ear Point) float64 {
	dr := source.Dist(relay)
	de := source.Dist(ear)
	rf := relay.Dist(ear)
	return AcousticDelay(de) - AcousticDelay(dr) - RFDelay(rf)
}

// LookaheadSamples converts a lookahead time to whole samples at the given
// rate, truncating toward zero.
func LookaheadSamples(source, relay, ear Point, sampleRate float64) int {
	return int(Lookahead(source, relay, ear) * sampleRate)
}

// Attenuation returns the spherical-spreading pressure attenuation for a
// point source at distance d meters, normalized so that distance refDist
// has gain 1. Distances below 10 cm are clamped to avoid the singularity.
func Attenuation(d, refDist float64) float64 {
	const minDist = 0.1
	if d < minDist {
		d = minDist
	}
	if refDist < minDist {
		refDist = minDist
	}
	return refDist / d
}
