package acoustics

import (
	"sync"
	"testing"
)

func TestRIRCacheHitReturnsIdenticalResponse(t *testing.T) {
	ClearRIRCache()
	defer ClearRIRCache()

	room := DefaultRoom()
	src := Point{1, 1, 1.5}
	dst := Point{3, 2, 1.2}

	h1, err := room.ImpulseResponse(src, dst, 8000)
	if err != nil {
		t.Fatalf("first ImpulseResponse: %v", err)
	}
	h2, err := room.ImpulseResponse(src, dst, 8000)
	if err != nil {
		t.Fatalf("second ImpulseResponse: %v", err)
	}
	if len(h1) != len(h2) {
		t.Fatalf("length mismatch: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("tap %d differs: %g vs %g", i, h1[i], h2[i])
		}
	}
	hits, misses := RIRCacheStats()
	if misses != 1 || hits != 1 {
		t.Fatalf("want 1 hit / 1 miss, got %d / %d", hits, misses)
	}
}

func TestRIRCacheReturnsDefensiveCopy(t *testing.T) {
	ClearRIRCache()
	defer ClearRIRCache()

	room := DefaultRoom()
	src := Point{1, 1, 1.5}
	dst := Point{3, 2, 1.2}

	h1, err := room.ImpulseResponse(src, dst, 8000)
	if err != nil {
		t.Fatal(err)
	}
	want := h1[0]
	h1[0] = 12345 // caller scribbles on its slice

	h2, err := room.ImpulseResponse(src, dst, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if h2[0] != want {
		t.Fatalf("cache entry corrupted by caller mutation: got %g want %g", h2[0], want)
	}
}

func TestRIRCacheDistinguishesGeometry(t *testing.T) {
	ClearRIRCache()
	defer ClearRIRCache()

	room := DefaultRoom()
	if _, err := room.ImpulseResponse(Point{1, 1, 1.5}, Point{3, 2, 1.2}, 8000); err != nil {
		t.Fatal(err)
	}
	// Different destination, different rate, different room: all misses.
	if _, err := room.ImpulseResponse(Point{1, 1, 1.5}, Point{3, 2, 1.3}, 8000); err != nil {
		t.Fatal(err)
	}
	if _, err := room.ImpulseResponse(Point{1, 1, 1.5}, Point{3, 2, 1.2}, 16000); err != nil {
		t.Fatal(err)
	}
	other := room
	other.Absorption = 0.5
	if _, err := other.ImpulseResponse(Point{1, 1, 1.5}, Point{3, 2, 1.2}, 8000); err != nil {
		t.Fatal(err)
	}
	hits, misses := RIRCacheStats()
	if hits != 0 || misses != 4 {
		t.Fatalf("want 0 hits / 4 misses, got %d / %d", hits, misses)
	}
}

func TestRIRCacheConcurrentAccess(t *testing.T) {
	ClearRIRCache()
	defer ClearRIRCache()

	room := DefaultRoom()
	points := []Point{
		{1, 1, 1.5}, {2, 1, 1.5}, {3, 2, 1.2}, {4, 3, 1.0},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				src := points[(w+i)%len(points)]
				dst := points[(w+i+1)%len(points)]
				if _, err := room.ImpulseResponse(src, dst, 8000); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
