package acoustics

import (
	"fmt"
	"math"

	"mute/internal/dsp"
)

// Room is a rectangular ("shoebox") room with frequency-independent wall
// absorption. Impulse responses between points inside the room are computed
// with the image-source method, which produces the non-minimum-phase
// multipath channels whose inversion motivates LANC's non-causal taps.
type Room struct {
	// Size is the room dimensions in meters (width, depth, height).
	Size Point
	// Absorption is the wall energy absorption coefficient in (0, 1];
	// reflections lose this fraction of energy per bounce. 1 means
	// anechoic (no reflections survive).
	Absorption float64
	// MaxOrder caps the image-source reflection order. Higher orders give
	// longer reverberant tails at cubic cost. 0 selects the default (6).
	MaxOrder int
}

// DefaultRoom returns the office-like room used throughout the evaluation:
// 5 m × 4 m × 3 m with the absorption of a furnished office (carpet,
// ceiling tiles, soft furniture), where early reflections dominate the
// reverberant tail.
func DefaultRoom() Room {
	return Room{Size: Point{5, 4, 3}, Absorption: 0.8, MaxOrder: 6}
}

// AnechoicRoom returns a room with fully absorptive walls: only the direct
// path survives. Useful as a control condition in tests.
func AnechoicRoom() Room {
	return Room{Size: Point{5, 4, 3}, Absorption: 1, MaxOrder: 0}
}

// Validate checks geometric and physical sanity.
func (r Room) Validate() error {
	if r.Size.X <= 0 || r.Size.Y <= 0 || r.Size.Z <= 0 {
		return fmt.Errorf("acoustics: non-positive room dimensions %v", r.Size)
	}
	if r.Absorption <= 0 || r.Absorption > 1 {
		return fmt.Errorf("acoustics: absorption %g outside (0, 1]", r.Absorption)
	}
	if r.MaxOrder < 0 {
		return fmt.Errorf("acoustics: negative reflection order %d", r.MaxOrder)
	}
	return nil
}

// Inside reports whether p lies strictly inside the room.
func (r Room) Inside(p Point) bool {
	return p.X > 0 && p.X < r.Size.X &&
		p.Y > 0 && p.Y < r.Size.Y &&
		p.Z > 0 && p.Z < r.Size.Z
}

// ImpulseResponse computes the room impulse response from src to dst at
// the given sample rate using the image-source method. The returned FIR
// taps are normalized so the direct path has the spherical-spreading gain
// relative to refDist = 1 m. The response includes fractional-delay
// interpolation so sub-sample path-length differences are preserved.
//
// Results are memoized process-wide (see rircache.go): the image-source
// enumeration is O(order³) and every scheme in an experiment figure asks
// for the same handful of geometries, so repeat calls return a copy of the
// cached taps. The cache is safe for concurrent use.
func (r Room) ImpulseResponse(src, dst Point, sampleRate float64) ([]float64, error) {
	return cachedImpulseResponse(r, src, dst, sampleRate)
}

// computeImpulseResponse is the uncached image-source computation backing
// ImpulseResponse.
func (r Room) computeImpulseResponse(src, dst Point, sampleRate float64) ([]float64, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("acoustics: sample rate %g must be positive", sampleRate)
	}
	if !r.Inside(src) {
		return nil, fmt.Errorf("acoustics: source %v outside room %v", src, r.Size)
	}
	if !r.Inside(dst) {
		return nil, fmt.Errorf("acoustics: destination %v outside room %v", dst, r.Size)
	}
	order := r.MaxOrder
	if order == 0 && r.Absorption < 1 {
		order = 6
	}
	reflFactor := math.Sqrt(1 - r.Absorption) // pressure reflection coefficient

	type arrival struct {
		delay float64 // samples
		gain  float64
	}
	var arrivals []arrival
	maxDelay := 0.0
	// Image sources: the image position along each axis is
	// 2*n*L + src (even parity, |2n| bounces) or 2*n*L - src (odd parity,
	// |2n-1| bounces). We enumerate n in [-order, order] and both parities.
	imagePos := func(n, p int, l, s float64) (pos float64, bounces int) {
		if p == 0 {
			return float64(2*n)*l + s, abs(2 * n)
		}
		return float64(2*n)*l - s, abs(2*n - 1)
	}
	for nx := -order; nx <= order; nx++ {
		for px := 0; px <= 1; px++ {
			ix, reflX := imagePos(nx, px, r.Size.X, src.X)
			for ny := -order; ny <= order; ny++ {
				for py := 0; py <= 1; py++ {
					iy, reflY := imagePos(ny, py, r.Size.Y, src.Y)
					for nz := -order; nz <= order; nz++ {
						for pz := 0; pz <= 1; pz++ {
							iz, reflZ := imagePos(nz, pz, r.Size.Z, src.Z)
							bounces := reflX + reflY + reflZ
							if bounces > order {
								continue
							}
							img := Point{ix, iy, iz}
							d := img.Dist(dst)
							gain := Attenuation(d, 1) * math.Pow(reflFactor, float64(bounces))
							if gain < 1e-5 {
								continue
							}
							delay := AcousticDelay(d) * sampleRate
							arrivals = append(arrivals, arrival{delay: delay, gain: gain})
							if delay > maxDelay {
								maxDelay = delay
							}
						}
					}
				}
			}
		}
	}
	// Build the FIR by summing fractional-delay kernels.
	length := int(maxDelay) + 8
	h := make([]float64, length)
	for _, a := range arrivals {
		taps, err := dsp.FractionalDelayFIR(a.delay)
		if err != nil {
			return nil, err
		}
		for i, v := range taps {
			if i < len(h) {
				h[i] += a.gain * v
			}
		}
	}
	return h, nil
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}

// DirectDelaySamples returns the direct-path delay between two points in
// (fractional) samples at the given rate.
func DirectDelaySamples(a, b Point, sampleRate float64) float64 {
	return AcousticDelay(a.Dist(b)) * sampleRate
}
