package acoustics

import (
	"math"
	"testing"
	"testing/quick"

	"mute/internal/dsp"
)

func TestPointGeometry(t *testing.T) {
	a := Point{0, 0, 0}
	b := Point{3, 4, 0}
	if d := a.Dist(b); d != 5 {
		t.Errorf("Dist = %g, want 5", d)
	}
	if d := b.Dist(b); d != 0 {
		t.Errorf("self distance = %g", d)
	}
	s := b.Sub(a)
	if s != b {
		t.Errorf("Sub = %v", s)
	}
	if b.String() != "(3.00, 4.00, 0.00)" {
		t.Errorf("String = %q", b.String())
	}
}

func TestDelays(t *testing.T) {
	// 1 m of sound ≈ 2.94 ms; 1 m of RF ≈ 3.3 ns.
	if d := AcousticDelay(1); math.Abs(d-1/340.0) > 1e-12 {
		t.Errorf("AcousticDelay(1) = %g", d)
	}
	if d := RFDelay(1); d > 1e-8 || d <= 0 {
		t.Errorf("RFDelay(1) = %g", d)
	}
}

func TestLookaheadPaperExample(t *testing.T) {
	// Paper: (de - dr) = 1 m gives ≈ 3 ms lookahead.
	source := Point{0.5, 2, 1.5}
	relay := Point{1.5, 2, 1.5} // 1 m from source
	ear := Point{2.5, 2, 1.5}   // 2 m from source
	la := Lookahead(source, relay, ear)
	if math.Abs(la-1/340.0) > 1e-6 {
		t.Errorf("lookahead = %g s, want ≈ %g s", la, 1/340.0)
	}
	// ≈ 2.94 ms, "≈3 ms" in the paper.
	if la < 2.8e-3 || la > 3.1e-3 {
		t.Errorf("lookahead %g s outside the paper's ≈3 ms", la)
	}
	if n := LookaheadSamples(source, relay, ear, 8000); n != 23 {
		t.Errorf("lookahead samples = %d, want 23 (2.94 ms at 8 kHz)", n)
	}
}

func TestLookaheadNegativeWhenRelayBehind(t *testing.T) {
	// Noise arrives from the opposite side: relay farther than ear.
	source := Point{4.5, 2, 1.5}
	relay := Point{0.5, 2, 1.5}
	ear := Point{2.5, 2, 1.5}
	if la := Lookahead(source, relay, ear); la >= 0 {
		t.Errorf("lookahead should be negative, got %g", la)
	}
}

func TestLookaheadSignProperty(t *testing.T) {
	// Property: lookahead is positive iff the relay is closer to the
	// source than the ear is (ignoring the tiny RF term).
	f := func(sx, sy, rx, ry, ex, ey float64) bool {
		wrap := func(v float64) float64 { return 0.5 + math.Mod(math.Abs(v), 3.5) }
		source := Point{wrap(sx), wrap(sy), 1.5}
		relay := Point{wrap(rx), wrap(ry), 1.5}
		ear := Point{wrap(ex), wrap(ey), 1.5}
		la := Lookahead(source, relay, ear)
		dr := source.Dist(relay)
		de := source.Dist(ear)
		if math.Abs(de-dr) < 1e-3 {
			return true // too close to call; RF term may flip the sign
		}
		return (la > 0) == (de > dr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAttenuation(t *testing.T) {
	if g := Attenuation(1, 1); g != 1 {
		t.Errorf("unit distance gain = %g", g)
	}
	if g := Attenuation(2, 1); g != 0.5 {
		t.Errorf("2 m gain = %g, want 0.5", g)
	}
	// Clamped near field.
	if g := Attenuation(0.01, 1); g != 10 {
		t.Errorf("near-field clamp gain = %g, want 10", g)
	}
}

func TestRoomValidate(t *testing.T) {
	r := DefaultRoom()
	if err := r.Validate(); err != nil {
		t.Errorf("default room invalid: %v", err)
	}
	bad := []Room{
		{Size: Point{0, 4, 3}, Absorption: 0.5},
		{Size: Point{5, 4, 3}, Absorption: 0},
		{Size: Point{5, 4, 3}, Absorption: 1.5},
		{Size: Point{5, 4, 3}, Absorption: 0.5, MaxOrder: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestRoomInside(t *testing.T) {
	r := DefaultRoom()
	if !r.Inside(Point{2, 2, 1}) {
		t.Error("center should be inside")
	}
	for _, p := range []Point{{-1, 2, 1}, {2, 5, 1}, {2, 2, 4}, {0, 0, 0}} {
		if r.Inside(p) {
			t.Errorf("%v should be outside", p)
		}
	}
}

func TestImpulseResponseDirectPath(t *testing.T) {
	// In an anechoic room the RIR is a single (fractionally interpolated)
	// spike at the direct-path delay with 1/d gain.
	r := AnechoicRoom()
	src := Point{1, 2, 1.5}
	dst := Point{3, 2, 1.5} // 2 m away
	fs := 8000.0
	h, err := r.ImpulseResponse(src, dst, fs)
	if err != nil {
		t.Fatal(err)
	}
	wantDelay := AcousticDelay(2) * fs // ≈ 47.06 samples
	// Find the peak.
	peak := 0
	for i := range h {
		if math.Abs(h[i]) > math.Abs(h[peak]) {
			peak = i
		}
	}
	if math.Abs(float64(peak)-wantDelay) > 2 {
		t.Errorf("RIR peak at %d, want ≈ %.1f", peak, wantDelay)
	}
	// Total gain ≈ 0.5 (1/d at 2 m).
	var sum float64
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-0.5) > 0.05 {
		t.Errorf("RIR DC gain = %g, want ≈ 0.5", sum)
	}
}

func TestImpulseResponseReverbAddsEnergyAndTail(t *testing.T) {
	src := Point{1, 2, 1.5}
	dst := Point{3, 2, 1.5}
	fs := 8000.0
	an := AnechoicRoom()
	rev := DefaultRoom()
	ha, err := an.ImpulseResponse(src, dst, fs)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := rev.ImpulseResponse(src, dst, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(hr) <= len(ha) {
		t.Errorf("reverberant RIR (%d taps) should be longer than anechoic (%d)", len(hr), len(ha))
	}
	if dsp.Energy(hr) <= dsp.Energy(ha) {
		t.Error("reverberant RIR should carry more energy than direct path alone")
	}
}

func TestImpulseResponseReciprocityProperty(t *testing.T) {
	// Swapping source and destination leaves the RIR unchanged
	// (acoustic reciprocity holds for the image-source model).
	r := DefaultRoom()
	fs := 8000.0
	f := func(ax, ay, bx, by float64) bool {
		wrap := func(v, lim float64) float64 { return 0.5 + math.Mod(math.Abs(v), lim-1) }
		a := Point{wrap(ax, 5), wrap(ay, 4), 1.5}
		b := Point{wrap(bx, 5), wrap(by, 4), 1.5}
		h1, err := r.ImpulseResponse(a, b, fs)
		if err != nil {
			return false
		}
		h2, err := r.ImpulseResponse(b, a, fs)
		if err != nil {
			return false
		}
		if len(h1) != len(h2) {
			return false
		}
		for i := range h1 {
			if math.Abs(h1[i]-h2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestImpulseResponseErrors(t *testing.T) {
	r := DefaultRoom()
	inside := Point{1, 1, 1}
	outside := Point{9, 9, 9}
	if _, err := r.ImpulseResponse(outside, inside, 8000); err == nil {
		t.Error("outside source should error")
	}
	if _, err := r.ImpulseResponse(inside, outside, 8000); err == nil {
		t.Error("outside destination should error")
	}
	if _, err := r.ImpulseResponse(inside, inside, 0); err == nil {
		t.Error("zero sample rate should error")
	}
	bad := Room{Size: Point{5, 4, 3}, Absorption: -1}
	if _, err := bad.ImpulseResponse(inside, inside, 8000); err == nil {
		t.Error("invalid room should error")
	}
}

func TestDirectDelaySamples(t *testing.T) {
	a := Point{0.5, 0.5, 0.5}
	b := Point{0.5, 0.5, 1.5} // 1 m
	got := DirectDelaySamples(a, b, 8000)
	want := 8000.0 / 340.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("DirectDelaySamples = %g, want %g", got, want)
	}
}

func TestFartherMicHearsLater(t *testing.T) {
	// The peak of the RIR to a farther microphone must come later —
	// this ordering is what gives MUTE its lookahead.
	r := DefaultRoom()
	fs := 8000.0
	src := Point{0.5, 2, 1.5}
	near := Point{1.5, 2, 1.5}
	far := Point{4.0, 2, 1.5}
	hNear, err := r.ImpulseResponse(src, near, fs)
	if err != nil {
		t.Fatal(err)
	}
	hFar, err := r.ImpulseResponse(src, far, fs)
	if err != nil {
		t.Fatal(err)
	}
	first := func(h []float64) int {
		for i, v := range h {
			if math.Abs(v) > 1e-3 {
				return i
			}
		}
		return len(h)
	}
	if first(hNear) >= first(hFar) {
		t.Errorf("near mic onset %d should precede far mic onset %d", first(hNear), first(hFar))
	}
}
