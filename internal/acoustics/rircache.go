package acoustics

import "sync"

// rirKey identifies one impulse-response computation. Room and Point are
// small value types with no pointers, so the struct is directly comparable
// and usable as a map key.
type rirKey struct {
	room Room
	src  Point
	dst  Point
	rate float64
}

// rirEntry is a cached impulse response plus an access tick for eviction.
type rirEntry struct {
	h       []float64
	lastUse uint64
}

// rirCacheCap bounds the cache. A full evaluation run touches a few dozen
// distinct geometries (sources × microphones × the Figure 19 relay grid);
// 256 entries of ~1–1.5 k taps each is a couple of MB at most.
const rirCacheCap = 256

// rirCache memoizes image-source impulse responses process-wide. Every
// scheme simulated for a figure replays the same room geometry, so without
// the cache a 4-scheme comparison recomputes each O(order³) enumeration
// four times. Guarded by a plain mutex: the hit path is a map lookup plus a
// copy, and the expensive compute runs outside the lock.
var rirCache struct {
	mu     sync.Mutex
	m      map[rirKey]*rirEntry
	tick   uint64
	hits   uint64
	misses uint64
}

func cachedImpulseResponse(r Room, src, dst Point, sampleRate float64) ([]float64, error) {
	key := rirKey{room: r, src: src, dst: dst, rate: sampleRate}

	rirCache.mu.Lock()
	if rirCache.m == nil {
		rirCache.m = make(map[rirKey]*rirEntry)
	}
	rirCache.tick++
	if e, ok := rirCache.m[key]; ok {
		e.lastUse = rirCache.tick
		rirCache.hits++
		out := make([]float64, len(e.h))
		copy(out, e.h)
		rirCache.mu.Unlock()
		return out, nil
	}
	rirCache.misses++
	rirCache.mu.Unlock()

	// Compute outside the lock; concurrent misses on the same key simply
	// compute twice and store identical values, which costs less than
	// serializing every distinct-key computation behind one mutex.
	h, err := r.computeImpulseResponse(src, dst, sampleRate)
	if err != nil {
		return nil, err
	}

	stored := make([]float64, len(h))
	copy(stored, h)
	rirCache.mu.Lock()
	if len(rirCache.m) >= rirCacheCap {
		evictOldestRIRLocked()
	}
	rirCache.m[key] = &rirEntry{h: stored, lastUse: rirCache.tick}
	rirCache.mu.Unlock()
	return h, nil
}

// evictOldestRIRLocked drops the least-recently-used entry. Linear scan is
// fine at this capacity; eviction is expected to be rare in practice.
func evictOldestRIRLocked() {
	var oldestKey rirKey
	var oldest uint64
	first := true
	for k, e := range rirCache.m {
		if first || e.lastUse < oldest {
			oldestKey, oldest = k, e.lastUse
			first = false
		}
	}
	if !first {
		delete(rirCache.m, oldestKey)
	}
}

// ClearRIRCache empties the impulse-response cache and resets its
// statistics. Mainly for tests and memory-sensitive callers.
func ClearRIRCache() {
	rirCache.mu.Lock()
	rirCache.m = nil
	rirCache.tick = 0
	rirCache.hits = 0
	rirCache.misses = 0
	rirCache.mu.Unlock()
}

// RIRCacheStats reports cumulative cache hits and misses since the last
// ClearRIRCache.
func RIRCacheStats() (hits, misses uint64) {
	rirCache.mu.Lock()
	defer rirCache.mu.Unlock()
	return rirCache.hits, rirCache.misses
}
