package fleet

import (
	"sync"
	"sync/atomic"

	"mute/internal/stream"
)

// framePool recycles stream.Frame structs (and their sample arrays)
// across every session of a server. The demux decodes each datagram into
// a pooled frame, the jitter buffer hands consumed frames back through
// its release hook, and in steady state the ingest path allocates
// nothing: pool growth stops once the fleet's in-flight frame population
// peaks (pinned by the soak test).
//
// A recycled frame is length-reset before reuse — Samples is sliced to
// zero and every header field zeroed — and UnmarshalInto overwrites all
// of it on decode. The reset is not redundant belt-and-braces: a frame
// released mid-life still carries another session's audio, and a decode
// bug that trusted any surviving field would leak those samples across
// sessions. The poisoning test makes that failure loud by filling freed
// sample arrays with a sentinel.
type framePool struct {
	pool sync.Pool
	// news counts pool misses (fresh allocations), gets and puts count
	// traffic; bounded news growth is the soak test's pool-health signal.
	news atomic.Int64
	gets atomic.Int64
	puts atomic.Int64
	// poison, when non-zero, overwrites the full capacity of every freed
	// frame's sample array — the cross-session staleness tripwire.
	poison float64
}

func newFramePool() *framePool {
	p := &framePool{}
	p.pool.New = func() any {
		p.news.Add(1)
		return &stream.Frame{Samples: make([]float64, 0, stream.MaxFrameSamples)}
	}
	return p
}

// get returns a length-reset frame ready for UnmarshalInto.
func (p *framePool) get() *stream.Frame {
	p.gets.Add(1)
	return p.pool.Get().(*stream.Frame)
}

// put length-resets f and returns it to the pool. f must not be used
// afterwards.
func (p *framePool) put(f *stream.Frame) {
	if p.poison != 0 {
		full := f.Samples[:cap(f.Samples)]
		for i := range full {
			full[i] = p.poison
		}
	}
	f.Seq = 0
	f.Timestamp = 0
	f.Parity = false
	f.GroupSize = 0
	f.Samples = f.Samples[:0]
	p.puts.Add(1)
	p.pool.Put(f)
}

// counters returns the lifetime pool traffic: fresh allocations, gets,
// and puts.
func (p *framePool) counters() (news, gets, puts int64) {
	return p.news.Load(), p.gets.Load(), p.puts.Load()
}
