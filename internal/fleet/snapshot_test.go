package fleet

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"net"
	"reflect"
	"testing"
	"time"

	"mute/internal/stream"
)

// snapshotFixture builds a two-session snapshot exercising the wire
// format's variable parts: one time-domain session with a room IR and
// estimation flags, one FDAF session with empty optional fields.
func snapshotFixture() *FleetSnapshot {
	p1 := lightProfile()
	p1.RoomIR = []float64{0.5, 0.25}
	p1.EstimateSecondary = true
	p1.EstimateNoiseRMS = 0.001
	p1.LossBlind = true
	p2 := lightProfile()
	p2.FDAFBlock = 16
	return &FleetSnapshot{
		Version: snapshotVersion,
		Sessions: []SessionSnapshot{
			{ID: 7, Profile: p1, PlayoutClock: 4000, Weights: []float64{0.1, -0.2, 0.3}},
			{ID: 9, Profile: p2, PlayoutClock: 12345, DriftPPM: 0, Weights: []float64{1, 2, 3, 4}},
		},
	}
}

// TestSnapshotRoundTrip pins Marshal → ParseSnapshot as the identity on
// every field, including profile slices and flags.
func TestSnapshotRoundTrip(t *testing.T) {
	want := snapshotFixture()
	wire, err := want.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnapshot(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the snapshot:\n got %+v\nwant %+v", got, want)
	}
}

// TestSnapshotTamperRejected pins validation: truncation anywhere, magic
// or version skew, and a cross-session id swap (which breaks the
// id-bound profile fingerprint) must all reject the snapshot.
func TestSnapshotTamperRejected(t *testing.T) {
	wire, err := snapshotFixture().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSnapshot(wire[:0]); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	for _, cut := range []int{3, snapshotHeader, snapshotHeader + 3, len(wire) / 2, len(wire) - 1} {
		if _, err := ParseSnapshot(wire[:cut]); err == nil {
			t.Fatalf("snapshot truncated to %d bytes accepted", cut)
		}
	}
	bad := append([]byte(nil), wire...)
	bad[0] ^= 0xff
	if _, err := ParseSnapshot(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), wire...)
	bad[2] = snapshotVersion + 1
	if _, err := ParseSnapshot(bad); err == nil {
		t.Fatal("version-skewed snapshot accepted")
	}
	// Swap the two records' session ids in place: each record's id is the
	// first 4 bytes after its length prefix. The fingerprints no longer
	// match the ids they were computed against.
	bad = append([]byte(nil), wire...)
	rec1 := snapshotHeader + 4
	rec1Len := int(binary.BigEndian.Uint32(bad[snapshotHeader:]))
	rec2 := rec1 + rec1Len + 4
	var tmp [4]byte
	copy(tmp[:], bad[rec1:rec1+4])
	copy(bad[rec1:rec1+4], bad[rec2:rec2+4])
	copy(bad[rec2:rec2+4], tmp[:])
	if _, err := ParseSnapshot(bad); err == nil {
		t.Fatal("cross-session id swap accepted: fingerprint is not binding the id")
	}
	// Trailing garbage after the last record is also a malformed snapshot.
	if _, err := ParseSnapshot(append(append([]byte(nil), wire...), 0xaa)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// FuzzSnapshotRoundTrip hardens the handoff wire format: arbitrary bytes
// must never panic the parser, and anything the parser accepts must
// re-marshal and re-parse to the same snapshot (the parse⇄marshal
// fixpoint).
func FuzzSnapshotRoundTrip(f *testing.F) {
	wire, err := snapshotFixture().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)               // valid
	f.Add(wire[:len(wire)/3]) // truncated
	skew := append([]byte(nil), wire...)
	skew[2] = snapshotVersion + 7 // version-skewed
	f.Add(skew)
	swapped := append([]byte(nil), wire...)
	rec1 := snapshotHeader + 4
	rec1Len := int(binary.BigEndian.Uint32(swapped[snapshotHeader:]))
	rec2 := rec1 + rec1Len + 4
	var tmp [4]byte
	copy(tmp[:], swapped[rec1:rec1+4])
	copy(swapped[rec1:rec1+4], swapped[rec2:rec2+4])
	copy(swapped[rec2:rec2+4], tmp[:]) // cross-session id swap
	f.Add(swapped)
	f.Add([]byte{0x4d, 0x53, 1, 0, 0, 0, 0}) // empty but well-formed
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ParseSnapshot(data)
		if err != nil {
			return
		}
		wire, err := snap.Marshal()
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-marshal: %v", err)
		}
		again, err := ParseSnapshot(wire)
		if err != nil {
			t.Fatalf("re-marshaled snapshot rejected: %v", err)
		}
		if !reflect.DeepEqual(snap, again) {
			t.Fatal("parse⇄marshal fixpoint violated")
		}
	})
}

// TestDrainStopsAdmissionsAndSkipsQuarantined pins Drain's contract: the
// first call closes admissions (typed ErrDraining), every healthy
// session is captured and counted fleet.drained, and a quarantined
// session is closed but never exported.
func TestDrainStopsAdmissionsAndSkipsQuarantined(t *testing.T) {
	srv := NewServer(Config{})
	p := lightProfile()
	for id := uint32(1); id <= 3; id++ {
		if _, err := srv.Open(id, p); err != nil {
			t.Fatal(err)
		}
	}
	srv.Lookup(2).quarantine("poisoned")
	snap, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Sessions) != 2 || snap.Sessions[0].ID != 1 || snap.Sessions[1].ID != 3 {
		t.Fatalf("drained sessions %+v, want healthy ids 1 and 3", snap.Sessions)
	}
	if !srv.Draining() {
		t.Fatal("server not marked draining")
	}
	if _, err := srv.Open(9, p); !errors.Is(err, ErrDraining) {
		t.Fatalf("Open on a draining server returned %v, want ErrDraining", err)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("%d sessions still open after drain", srv.Sessions())
	}
	if got := srv.reg.Snapshot().Counters["fleet.drained"]; got != 2 {
		t.Fatalf("fleet.drained = %d, want 2", got)
	}
	_, gets, puts := srv.PoolStats()
	if gets != puts {
		t.Fatalf("drain leaked pooled frames: %d gets, %d puts", gets, puts)
	}
}

// TestDrainContextAbort pins the partial-drain contract: a canceled
// context stops the drain between sessions, the captured prefix is
// returned, and the rest keep serving.
func TestDrainContextAbort(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()
	p := lightProfile()
	for id := uint32(1); id <= 4; id++ {
		if _, err := srv.Open(id, p); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	snap, err := srv.Drain(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain with canceled context returned %v", err)
	}
	if len(snap.Sessions) != 0 {
		t.Fatalf("canceled-before-start drain captured %d sessions", len(snap.Sessions))
	}
	if srv.Sessions() != 4 {
		t.Fatalf("canceled drain closed sessions: %d left, want 4", srv.Sessions())
	}
}

// udpPipe is a loopback UDP path into a server: the test writes user
// datagrams to tx, reads them back off rx, and ingests them — the same
// socket hop the real fleet transport makes.
type udpPipe struct {
	rx, tx *net.UDPConn
	buf    []byte
}

func newUDPPipe(t *testing.T) *udpPipe {
	t.Helper()
	laddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rx, err := net.ListenUDP("udp", laddr)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := net.DialUDP("udp", nil, rx.LocalAddr().(*net.UDPAddr))
	if err != nil {
		rx.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { rx.Close(); tx.Close() })
	return &udpPipe{rx: rx, tx: tx, buf: make([]byte, MaxDatagram)}
}

// relay writes each datagram to the socket, reads it back, and ingests it
// into srv. Links are lossless in this test, so counts match exactly.
func (p *udpPipe) relay(t *testing.T, srv *Server, datagrams [][]byte) {
	t.Helper()
	for _, d := range datagrams {
		if _, err := p.tx.Write(d); err != nil {
			t.Fatal(err)
		}
	}
	p.rx.SetReadDeadline(time.Now().Add(2 * time.Second))
	for range datagrams {
		n, err := p.rx.Read(p.buf)
		if err != nil {
			t.Fatalf("UDP read: %v", err)
		}
		if err := srv.Ingest(p.buf[:n]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRollingRestartUDP is the handoff acceptance test: a fleet serving
// over real UDP sockets is drained mid-run, its snapshot is marshaled,
// parsed, and adopted by a second server on a fresh socket, and every
// session resumes. The target session's residual power over the window
// ending 3 s (300 blocks) after the handoff must be within 1 dB of an
// uninterrupted run, and the whole exercise must leak no goroutines.
func TestRollingRestartUDP(t *testing.T) {
	p := lightProfile()
	const (
		sessions = 8
		handoff  = 50  // blocks served by server A
		recovery = 300 // 3 s of 10 ms blocks after the handoff
		window   = 100 // power-comparison window at the end of recovery
		lead     = 2   // blocks users run ahead of playout
	)
	total := handoff + recovery

	run := func(restart bool) []float64 {
		srvA := NewServer(Config{})
		defer srvA.Close()
		residual := make([]float64, total*p.FrameSamples)
		users := make([]*simUser, sessions)
		for i := range users {
			id := uint32(1 + i)
			var opts []SessionOption
			if id == 1 {
				opts = append(opts, WithResidual(residual))
			}
			if _, err := srvA.Open(id, p, opts...); err != nil {
				t.Fatal(err)
			}
			users[i] = newSimUser(t, id, p.FrameSamples, stream.LossParams{})
		}
		pipe := newUDPPipe(t)
		srv := srvA
		tick := func() [][]byte {
			var out [][]byte
			for _, u := range users {
				out = append(out, u.tick()...)
			}
			return out
		}
		for l := 0; l < lead; l++ {
			pipe.relay(t, srv, tick())
		}
		var srvB *Server
		for b := 0; b < total; b++ {
			if restart && b == handoff {
				snap, err := srv.Drain(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				wire, err := snap.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				parsed, err := ParseSnapshot(wire)
				if err != nil {
					t.Fatal(err)
				}
				if len(parsed.Sessions) != sessions {
					t.Fatalf("drained %d sessions, want %d", len(parsed.Sessions), sessions)
				}
				srvB = NewServer(Config{})
				defer srvB.Close()
				err = srvB.Adopt(parsed, func(id uint32) []SessionOption {
					if id == 1 {
						return []SessionOption{WithResidual(residual[b*p.FrameSamples:])}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				srv = srvB
				pipe = newUDPPipe(t) // the new process listens on a new socket
			}
			pipe.relay(t, srv, tick())
			if err := srv.ProcessTick(); err != nil {
				t.Fatal(err)
			}
		}
		if restart && srv.Sessions() != sessions {
			t.Fatalf("adopted server serves %d sessions, want %d", srv.Sessions(), sessions)
		}
		return residual
	}

	before := stableGoroutines(t)
	base := run(false)
	restarted := run(true)
	after := stableGoroutines(t)
	if after > before {
		t.Fatalf("rolling restart leaked goroutines: %d → %d", before, after)
	}

	power := func(res []float64, fromBlock, blocks int) float64 {
		lo, hi := fromBlock*p.FrameSamples, (fromBlock+blocks)*p.FrameSamples
		var sum float64
		for _, v := range res[lo:hi] {
			sum += v * v
		}
		return sum / float64(hi-lo)
	}
	from := handoff + recovery - window
	pBase := power(base, from, window)
	pRest := power(restarted, from, window)
	dB := 10 * math.Log10(pRest/pBase)
	t.Logf("residual power %d blocks after handoff: restarted %.3g vs uninterrupted %.3g (%+.2f dB)",
		recovery-window, pRest, pBase, dB)
	if math.Abs(dB) > 1 {
		t.Fatalf("restarted fleet's residual is %.2f dB off the uninterrupted run 3 s after handoff, want within 1 dB", dB)
	}
}
