package fleet

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"mute/internal/telemetry"
)

// TestCrossSessionIsolation is the tentpole contract: a session's
// residual is bit-identical whether it runs alone or beside 1, 64, or
// 1000 impaired peers. Each peer carries its own seeded loss, bursts,
// reordering, a scheduled outage, and (every third peer) a 150 ppm
// re-stamping skew — none of which may perturb the target by one bit,
// because sessions share nothing mutable. Ingest runs concurrently from
// one goroutine per user, so -race sweeps the demux while the comparison
// stays exact.
func TestCrossSessionIsolation(t *testing.T) {
	const blocks = 24
	want := runFleet(t, 0, 1, blocks, nil)
	peerCounts := []int{1, 64, 1000}
	if testing.Short() {
		peerCounts = []int{1, 64}
	}
	for _, peers := range peerCounts {
		got := runFleet(t, peers, 1, blocks, nil)
		if !reflect.DeepEqual(got, want) {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%d peers: residual diverges at sample %d: %g != %g",
						peers, i, got[i], want[i])
				}
			}
			t.Fatalf("%d peers: residual diverges (length %d vs %d)", peers, len(got), len(want))
		}
	}
}

// TestSchedulerDeterminism pins the shard contract: ProcessTick's output
// is identical for any shard count and any GOMAXPROCS, because sessions
// are shared-nothing — the partitioning only changes which goroutine
// touches which session, never what any session computes.
func TestSchedulerDeterminism(t *testing.T) {
	const peers, blocks = 32 - 1, 16
	do := func(shards, procs int) []float64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		return runFleet(t, peers, shards, blocks, nil)
	}
	base := do(1, 1)
	for _, cfg := range []struct{ shards, procs int }{{1, 2}, {4, 1}, {4, 2}} {
		if got := do(cfg.shards, cfg.procs); !reflect.DeepEqual(got, base) {
			t.Fatalf("shards=%d procs=%d: residual differs from sequential run",
				cfg.shards, cfg.procs)
		}
	}
}

// TestTelemetryFanInDeterministic pins the metric side of the shard
// contract: the fleet-wide merged counters are identical for any shard
// count, because MergeTelemetry folds session registries in ascending
// session-id order.
func TestTelemetryFanInDeterministic(t *testing.T) {
	counters := func(shards int) map[string]int64 {
		srv := NewServer(Config{Shards: shards})
		defer srv.Close()
		p := lightProfile()
		if _, err := srv.Open(targetID, p); err != nil {
			t.Fatal(err)
		}
		users := []*simUser{newSimUser(t, targetID, p.FrameSamples, targetFaults())}
		for i := 0; i < 15; i++ {
			id := uint32(1000 + i)
			if _, err := srv.Open(id, p); err != nil {
				t.Fatal(err)
			}
			users = append(users, newSimUser(t, id, p.FrameSamples, peerFaults(id)))
		}
		for b := 0; b < 12; b++ {
			for _, u := range users {
				for _, d := range u.tick() {
					if err := srv.Ingest(d); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := srv.ProcessTick(); err != nil {
				t.Fatal(err)
			}
		}
		merged := telemetry.NewRegistry()
		srv.MergeTelemetry(merged)
		return merged.Snapshot().Counters
	}
	want := counters(1)
	if want["fleet.blocks"] != 16*12 {
		t.Fatalf("fleet.blocks = %d, want %d", want["fleet.blocks"], 16*12)
	}
	if want["fleet.frames_in"] == 0 || want["fleet.session.frames_in"] != want["fleet.frames_in"] {
		t.Fatalf("demux counters inconsistent: %v", want)
	}
	for _, shards := range []int{2, 4} {
		got := counters(shards)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: merged counters differ:\n got %v\nwant %v", shards, got, want)
		}
	}
}

// TestPoolPoisoningNoStaleLeak fills every freed frame's full sample
// capacity with NaN before it re-enters the pool. If any consumer read a
// recycled frame's stale samples — a decode trusting a leftover length,
// a jitter buffer handing out a released frame — the NaN would propagate
// through the canceller into some session's residual and stick. The
// poisoned run must match the clean run bit for bit.
func TestPoolPoisoningNoStaleLeak(t *testing.T) {
	const blocks = 24
	want := runFleet(t, 8, 1, blocks, nil)
	got := runFleet(t, 8, 1, blocks, func(s *Server) { s.pool.poison = math.NaN() })
	if !reflect.DeepEqual(got, want) {
		t.Fatal("poisoning freed frames changed a session residual: stale pooled samples leaked")
	}
	for i, v := range got {
		if math.IsNaN(v) {
			t.Fatalf("NaN poison reached the residual at sample %d", i)
		}
	}
}

// TestSessionAccounting sanity-checks the per-session counters the
// isolation runs rely on: the target session saw its own frames and
// concealed its own losses, visible through the session handle.
func TestSessionAccounting(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()
	p := lightProfile()
	sess, err := srv.Open(targetID, p)
	if err != nil {
		t.Fatal(err)
	}
	u := newSimUser(t, targetID, p.FrameSamples, targetFaults())
	for b := 0; b < 32; b++ {
		for _, d := range u.tick() {
			if err := srv.Ingest(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.ProcessTick(); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	if st.FramesReceived == 0 {
		t.Fatal("no frames reached the session")
	}
	if st.SamplesConcealed == 0 {
		t.Fatal("a lossy link with an outage concealed nothing — faults not applied")
	}
	if got := sess.Samples(); got != 32*int64(p.FrameSamples) {
		t.Fatalf("session processed %d samples, want %d", got, 32*p.FrameSamples)
	}
	snap := sess.Registry().Snapshot()
	if snap.Counters["fleet.session.blocks"] != 32 {
		t.Fatalf("session block counter = %d, want 32", snap.Counters["fleet.session.blocks"])
	}
}
