package fleet

import (
	"errors"
	"sync"
)

// This file is the fleet lifecycle layer's overload-control half: a
// tick-lateness watchdog driving a fleet-wide pressure ladder, the fleet
// analogue of the per-link degradation ladder in internal/supervisor.
// Where the supervisor watches one session's concealment ratio and trades
// cancellation depth for robustness, the watchdog watches the whole
// process's tick deadline margin and trades per-session quality for
// fleet-wide liveness:
//
//	NORMAL    — full profiles, admissions open.
//	DEGRADED  — every session's non-causal tap window is shrunk via the
//	            supervisor's LimitNonCausal hook (the cheaper posture on
//	            both the time-domain and FDAF paths); admissions stay open.
//	SHEDDING  — new Opens are refused with ErrOverloaded, and sessions
//	            that have not delivered a frame within IdleReapTicks are
//	            reaped (counted fleet.shed): an overloaded fleet sheds
//	            its starving tail instead of missing every deadline.
//
// Transitions carry dwell and hysteresis exactly like the supervisor's
// ladder: a demotion needs DownDwellTicks consecutive breaching ticks, a
// promotion needs UpDwellTicks consecutive ticks with the lateness EWMA
// under half the demotion threshold, so the ladder never flaps on one
// slow tick (a GC pause, a scheduler hiccup).
//
// The posture is applied lazily: state changes bump an epoch counter, and
// each session re-reads the epoch at the start of its own tick and
// reconfigures itself on its own goroutine. Sessions stay shared-nothing
// — the watchdog never reaches into a session from outside its tick.

// ErrOverloaded is returned by Open while the pressure ladder is in
// PressureShedding: the fleet is missing tick deadlines badly enough that
// admitting more sessions would make every existing session miss.
// Admission retries should back off until the fleet promotes.
var ErrOverloaded = errors.New("fleet: overloaded, shedding new sessions")

// ErrDraining is returned by Open after Drain has begun: the server is
// handing its sessions off and will not admit new ones.
var ErrDraining = errors.New("fleet: draining, not accepting sessions")

// PressureState is a rung of the fleet-wide overload ladder, ordered
// healthiest first.
type PressureState int32

const (
	// PressureNormal is the full-quality serving state.
	PressureNormal PressureState = iota
	// PressureDegraded shrinks every session's non-causal window.
	PressureDegraded
	// PressureShedding additionally refuses admissions and reaps idle
	// sessions.
	PressureShedding
)

// String names the rung for logs and telemetry.
func (p PressureState) String() string {
	switch p {
	case PressureNormal:
		return "NORMAL"
	case PressureDegraded:
		return "DEGRADED"
	case PressureShedding:
		return "SHEDDING"
	default:
		return "PressureState(?)"
	}
}

// LifecycleConfig tunes the watchdog and ladder. The zero value takes
// every default below; Disarm turns the watchdog off entirely (ObserveTick
// then only feeds the lateness histogram, as before the lifecycle layer).
type LifecycleConfig struct {
	// EWMAAlpha smooths the per-tick lateness into the pressure signal
	// (default 1/16: ~16 ticks ≈ 160 ms of history at the default frame).
	EWMAAlpha float64
	// DegradeLatenessNS demotes NORMAL → DEGRADED when the lateness EWMA
	// sits at or above it for DownDwellTicks (default 2e6 = 2 ms, 20% of
	// the default 10 ms frame period).
	DegradeLatenessNS float64
	// ShedLatenessNS demotes DEGRADED → SHEDDING (default 8e6 = 8 ms:
	// nearly a whole frame late — every session is missing).
	ShedLatenessNS float64
	// DownDwellTicks is how many consecutive breaching ticks a demotion
	// needs (default 8).
	DownDwellTicks int
	// UpDwellTicks is how many consecutive ticks the EWMA must stay under
	// half the demotion threshold before a promotion (default 64 — the
	// asymmetry is deliberate: demote fast, promote cautiously).
	UpDwellTicks int
	// DegradedFraction is the fraction of each session's non-causal taps
	// kept live under DEGRADED and SHEDDING (default 0.5, matching the
	// supervisor's DEGRADED rung).
	DegradedFraction float64
	// IdleReapTicks is the starvation horizon under SHEDDING: a session
	// whose last ingested frame is more than this many ticks old is
	// closed and counted fleet.shed (default 512 ticks ≈ 5 s at the
	// default frame; 0 keeps the default, negative disables reaping).
	IdleReapTicks int
	// Disarm disables the ladder: the fleet stays in PressureNormal no
	// matter what ObserveTick reports.
	Disarm bool
}

func (c LifecycleConfig) withDefaults() LifecycleConfig {
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 1.0 / 16
	}
	if c.DegradeLatenessNS <= 0 {
		c.DegradeLatenessNS = 2e6
	}
	if c.ShedLatenessNS <= c.DegradeLatenessNS {
		c.ShedLatenessNS = 4 * c.DegradeLatenessNS
	}
	if c.DownDwellTicks <= 0 {
		c.DownDwellTicks = 8
	}
	if c.UpDwellTicks <= 0 {
		c.UpDwellTicks = 64
	}
	if c.DegradedFraction <= 0 || c.DegradedFraction >= 1 {
		c.DegradedFraction = 0.5
	}
	if c.IdleReapTicks == 0 {
		c.IdleReapTicks = 512
	}
	return c
}

// lifecycle is the server's watchdog state. Ladder evaluation runs once
// per tick under its own mutex (never on the per-session path); the
// current rung and epoch are mirrored into atomics on the Server so the
// per-session tick reads them lock-free.
type lifecycle struct {
	mu  sync.Mutex
	cfg LifecycleConfig

	ewma       float64
	breachRun  int
	healthyRun int
	state      PressureState
}

// observe feeds one tick's lateness (ns; <= 0 means the tick beat its
// deadline) and returns the rung after ladder evaluation plus whether the
// rung changed this call.
func (lc *lifecycle) observe(latenessNS int64) (PressureState, bool, float64) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	late := float64(latenessNS)
	if late < 0 {
		late = 0
	}
	lc.ewma += lc.cfg.EWMAAlpha * (late - lc.ewma)
	if lc.cfg.Disarm {
		return lc.state, false, lc.ewma
	}

	prev := lc.state
	switch lc.state {
	case PressureNormal, PressureDegraded:
		down := lc.cfg.DegradeLatenessNS
		if lc.state == PressureDegraded {
			down = lc.cfg.ShedLatenessNS
		}
		if lc.ewma >= down {
			lc.healthyRun = 0
			lc.breachRun++
			if lc.breachRun >= lc.cfg.DownDwellTicks {
				lc.state++
				lc.breachRun = 0
			}
			break
		}
		lc.breachRun = 0
		if lc.state == PressureDegraded && lc.ewma < lc.cfg.DegradeLatenessNS/2 {
			lc.healthyRun++
			if lc.healthyRun >= lc.cfg.UpDwellTicks {
				lc.state = PressureNormal
				lc.healthyRun = 0
			}
		} else {
			lc.healthyRun = 0
		}
	case PressureShedding:
		lc.breachRun = 0
		if lc.ewma < lc.cfg.ShedLatenessNS/2 {
			lc.healthyRun++
			if lc.healthyRun >= lc.cfg.UpDwellTicks {
				lc.state = PressureDegraded
				lc.healthyRun = 0
			}
		} else {
			lc.healthyRun = 0
		}
	}
	return lc.state, lc.state != prev, lc.ewma
}

// Pressure returns the ladder's current rung.
func (s *Server) Pressure() PressureState {
	return PressureState(s.pressure.Load())
}

// LatenessEWMA returns the watchdog's smoothed tick lateness in
// nanoseconds.
func (s *Server) LatenessEWMA() float64 {
	s.lc.mu.Lock()
	defer s.lc.mu.Unlock()
	return s.lc.ewma
}

// applyPressure reconfigures the session for the fleet's current pressure
// posture, if it changed since this session last ticked. It runs at the
// start of tickSession — on the session's own tick goroutine, the only
// place session-owned filter state may be touched — so a rung change
// propagates within one tick without any cross-goroutine mutation. In
// steady state it costs one atomic load.
func (sess *Session) applyPressure(s *Server) {
	epoch := s.pressureEpoch.Load()
	if epoch == sess.pressureSeen {
		return
	}
	sess.pressureSeen = epoch
	n := sess.pl.NonCausalTaps
	if PressureState(s.pressure.Load()) >= PressureDegraded {
		n = int(s.lc.cfg.DegradedFraction * float64(n))
	}
	switch {
	case sess.pl.LANC != nil:
		sess.pl.LANC.LimitNonCausal(n)
	case sess.pl.FDAF != nil:
		sess.pl.FDAF.LimitNonCausal(n)
	}
}

// quarantine marks the session poisoned after a recovered panic: it stops
// ticking, its datagrams are dropped on ingest, and Drain skips it. The
// shard keeps driving its neighbors — the panic is contained to the one
// session whose state caused it.
func (sess *Session) quarantine(msg string) {
	sess.panicMsg.Store(&msg)
	sess.quarantined.Store(true)
}

// Quarantined reports whether a recovered panic has poisoned this
// session.
func (sess *Session) Quarantined() bool { return sess.quarantined.Load() }

// LastPanic returns the recovered panic value that quarantined the
// session ("" while healthy).
func (sess *Session) LastPanic() string {
	if p := sess.panicMsg.Load(); p != nil {
		return *p
	}
	return ""
}

// WithTickProbe installs a hook called at the start of each of the
// session's ticks with the session's block index. It is a fault-injection
// surface: the poison-session tests and the chaos harness use a probe
// that panics to prove quarantine containment. Probes run on the
// session's tick goroutine.
func WithTickProbe(fn func(block int64)) SessionOption {
	return func(s *Session) { s.tickProbe = fn }
}

// WithIngestProbe installs a hook called before each payload decoded into
// the session's jitter buffer — the ingest-side fault-injection surface,
// mirroring WithTickProbe.
func WithIngestProbe(fn func(payload []byte)) SessionOption {
	return func(s *Session) { s.ingestProbe = fn }
}
