package fleet

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"mute/internal/audio"
	"mute/internal/stream"
)

// simUser is one simulated relay in the load harness: it synthesizes a
// seeded audio stream, frames it, pushes the frames through a seeded
// impairment link, and envelopes whatever the link delivers for its
// session. Identical (id, faults, skew) reproduce identical datagrams,
// which is what lets the isolation suite compare runs bit for bit.
type simUser struct {
	t       *testing.T
	id      uint32
	rng     *audio.RNG
	link    *stream.LossyLink
	seq     uint32
	clock   uint64
	frame   int
	skewPPM float64
}

func newSimUser(t *testing.T, id uint32, frame int, lp stream.LossParams) *simUser {
	t.Helper()
	link, err := stream.NewLossyLink(lp)
	if err != nil {
		t.Fatal(err)
	}
	return &simUser{
		t:     t,
		id:    id,
		rng:   audio.NewRNG(uint64(id)*0x9e3779b9 + 11),
		link:  link,
		frame: frame,
	}
}

// tick emits the enveloped datagrams this user's relay delivers in one
// frame slot (zero or more, depending on the link's mood).
func (u *simUser) tick() [][]byte {
	samples := make([]float64, u.frame)
	for i := range samples {
		samples[i] = 0.4 * u.rng.Uniform()
	}
	ts := u.clock
	if u.skewPPM != 0 {
		// A detuned relay oscillator re-stamps the capture clock.
		ts = uint64(float64(u.clock) * (1 + u.skewPPM*1e-6))
	}
	f := &stream.Frame{Seq: u.seq, Timestamp: ts, Samples: samples}
	u.seq++
	u.clock += uint64(u.frame)
	var out [][]byte
	for _, g := range u.link.Transfer(f) {
		d, err := MarshalEnvelope(u.id, g)
		if err != nil {
			u.t.Error(err)
			return nil
		}
		out = append(out, d)
	}
	return out
}

// lightProfile is the isolation suite's session shape: small taps so a
// thousand-session run stays fast under -race, every other knob default.
func lightProfile() Profile {
	p := DefaultProfile()
	p.CausalTaps = 16
	p.MaxNonCausalTaps = 8
	p.JitterDepth = 16
	return p
}

// targetID — the session whose residual the isolation suite pins — is
// shared with the chaos harness (chaos.go).

func targetFaults() stream.LossParams {
	return stream.LossParams{
		Seed: 7, Loss: 0.08, MeanBurst: 2,
		Duplicate: 0.02, Reorder: 0.05, JitterProb: 0.1, MaxJitter: 2,
		Outages: []stream.Outage{{StartSlot: 12, DurationSlots: 3}},
	}
}

func peerFaults(id uint32) stream.LossParams {
	return stream.LossParams{
		Seed: uint64(id), Loss: 0.1, MeanBurst: 3,
		Duplicate: 0.01, Reorder: 0.05, JitterProb: 0.05, MaxJitter: 2,
		Outages: []stream.Outage{{StartSlot: uint64(8 + id%16), DurationSlots: 4}},
	}
}

// runFleet drives a fleet of the target session plus `peers` impaired
// neighbors for `blocks` ticks and returns the target's residual. Every
// user's datagrams are ingested from its own goroutine each block (a
// WaitGroup barrier keeps the block cadence), so -race sweeps the
// concurrent demux while the outputs stay deterministic.
func runFleet(t *testing.T, peers, shards, blocks int, tweak func(*Server)) []float64 {
	t.Helper()
	srv := NewServer(Config{Shards: shards})
	defer srv.Close()
	if tweak != nil {
		tweak(srv)
	}
	p := lightProfile()
	residual := make([]float64, blocks*p.FrameSamples)
	if _, err := srv.Open(targetID, p, WithResidual(residual)); err != nil {
		t.Fatal(err)
	}
	users := []*simUser{newSimUser(t, targetID, p.FrameSamples, targetFaults())}
	for i := 0; i < peers; i++ {
		id := uint32(1000 + i)
		if _, err := srv.Open(id, p); err != nil {
			t.Fatal(err)
		}
		u := newSimUser(t, id, p.FrameSamples, peerFaults(id))
		if i%3 == 0 {
			u.skewPPM = 150
		}
		users = append(users, u)
	}
	for b := 0; b < blocks; b++ {
		var wg sync.WaitGroup
		for _, u := range users {
			wg.Add(1)
			go func(u *simUser) {
				defer wg.Done()
				for _, d := range u.tick() {
					srv.Ingest(d)
				}
			}(u)
		}
		wg.Wait()
		if err := srv.ProcessTick(); err != nil {
			t.Fatal(err)
		}
	}
	return residual
}

// stableGoroutines samples runtime.NumGoroutine until two consecutive
// reads agree (runtime helpers wind down asynchronously).
func stableGoroutines(t *testing.T) int {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	prev := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}
