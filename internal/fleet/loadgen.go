package fleet

import (
	"fmt"
	"net"
	"runtime"
	"time"

	"mute/internal/audio"
	"mute/internal/graph"
	"mute/internal/stream"
	"mute/internal/telemetry"
)

// LoadConfig configures a load-generation run: N simulated users, each a
// seeded relay with its own impairments, driving one session server.
type LoadConfig struct {
	// Sessions is the number of concurrent users (required, > 0).
	Sessions int
	// Duration is the paced run length in wall-clock time (paced mode).
	Duration time.Duration
	// Blocks is the tick count for throughput mode (default 200).
	Blocks int
	// Throughput selects unpaced mode: ticks run back to back in process
	// with no transport or sleeping — the raw capacity measurement. Paced
	// mode (the default) runs the real UDP transport at the audio clock
	// and measures block-deadline misses.
	Throughput bool
	// Profile is the per-session profile (zero fields take defaults).
	Profile Profile
	// Faults is the per-user impairment template; each user's link is
	// seeded with Faults.Seed plus its session id, so every user sees its
	// own deterministic loss pattern.
	Faults stream.LossParams
	// SkewPPM re-stamps every third user's capture clock by this many
	// parts per million, exercising the skew-tolerant demux.
	SkewPPM float64
	// Shards is the server's ProcessTick fan-out (default 1).
	Shards int
	// Lead is how many blocks ahead of the playout clock users transmit
	// (default 2) — the priming that keeps jitter buffers nonempty.
	Lead int
	// DrainGrace is the paced loop's late-drain grace window (default
	// 500µs). The pacing contract: each block's socket drain normally runs
	// until the next block deadline — the pacing sleep and the ingest work
	// are the same wait — but when the loop is already past the deadline
	// the drain still gets at least DrainGrace of wall time, so backlogged
	// datagrams keep flowing to the jitter buffers instead of piling up in
	// the socket while the loop catches up. Tightening it makes an
	// overloaded run shed ingest work sooner (more concealment, faster
	// ticks); loosening it favors frame delivery over catching up. Chaos
	// runs tune it to push the fleet into the overload ladder on purpose.
	DrainGrace time.Duration
	// WarmupDrain is the per-block socket-drain window for the two warmup
	// blocks before the paced clock starts (default 2ms): long enough for
	// the warmup datagrams to cross the loopback socket, short enough not
	// to delay the measured window.
	WarmupDrain time.Duration
	// Lifecycle tunes the server's overload watchdog for the run; the zero
	// value arms it with defaults (see LifecycleConfig).
	Lifecycle LifecycleConfig
}

// LoadResult summarizes a load run.
type LoadResult struct {
	Sessions      int           `json:"sessions"`
	Blocks        int64         `json:"blocks"`
	SessionBlocks int64         `json:"session_blocks"`
	Elapsed       time.Duration `json:"elapsed_ns"`
	// TickTime is the cumulative wall time inside ProcessTick — the CPU
	// the serving path actually spent.
	TickTime time.Duration `json:"tick_time_ns"`
	// SessionBlockNS is TickTime per session-block: the core capacity
	// number.
	SessionBlockNS float64 `json:"session_block_ns"`
	// SessionsPerCore is how many realtime sessions one core sustains at
	// this profile: block period / SessionBlockNS.
	SessionsPerCore float64 `json:"sessions_per_core"`
	// DeadlineMisses counts session-blocks whose tick finished after the
	// next block deadline (paced mode).
	DeadlineMisses int64 `json:"deadline_misses"`
	// MissRate is DeadlineMisses / SessionBlocks.
	MissRate float64 `json:"miss_rate"`
	// P99LatenessNS is the 99th-percentile tick completion lateness
	// relative to the next block deadline (<= 0 rounds to the histogram
	// floor; paced mode).
	P99LatenessNS float64 `json:"p99_lateness_ns"`
	FramesIn      int64   `json:"frames_in"`
	PoolNews      int64   `json:"pool_news"`
	PoolGets      int64   `json:"pool_gets"`
	PoolPuts      int64   `json:"pool_puts"`
}

// loadUser is one simulated relay: seeded audio, seeded impairments,
// optional oscillator skew, enveloped output. The tick path is
// allocation-free in steady state — at hundreds of users and a hundred
// blocks per second, per-datagram garbage on the generator side becomes
// GC pauses that masquerade as serving-side deadline misses.
type loadUser struct {
	id      uint32
	rng     *audio.RNG
	link    *stream.LossyLink
	seq     uint32
	clock   uint64
	frame   int
	skewPPM float64
	// ring holds the frames in flight through the impairment link: a
	// delayed frame's samples must survive untouched until the link
	// delivers it, so frame k writes ring[k % len(ring)] and the ring is
	// sized past the link's maximum delay.
	ring []stream.Frame
	// dgram is the reusable wire scratch; emit must not retain it.
	dgram []byte
}

func newLoadUser(id uint32, frame int, lp stream.LossParams, skewPPM float64) (*loadUser, error) {
	lp.Seed += uint64(id)
	link, err := stream.NewLossyLink(lp)
	if err != nil {
		return nil, err
	}
	// Max in-flight slots: reorder (1) + jitter (MaxJitter) + duplicate
	// tail (1), plus the current slot and safety.
	ring := make([]stream.Frame, lp.MaxJitter+4)
	for i := range ring {
		ring[i].Samples = make([]float64, frame)
	}
	return &loadUser{
		id:      id,
		rng:     audio.NewRNG(uint64(id)*0x9e3779b9 + 11),
		link:    link,
		frame:   frame,
		skewPPM: skewPPM,
		ring:    ring,
		dgram:   make([]byte, 0, MaxDatagram),
	}, nil
}

// tick runs one frame slot and calls emit for each datagram the user's
// link delivers. The datagram slice is reused across calls; emit must
// copy (a socket write or UnmarshalInto does).
func (u *loadUser) tick(emit func([]byte) error) error {
	f := &u.ring[int(u.seq)%len(u.ring)]
	for i := range f.Samples {
		f.Samples[i] = 0.4 * u.rng.Uniform()
	}
	ts := u.clock
	if u.skewPPM != 0 {
		ts = uint64(float64(u.clock) * (1 + u.skewPPM*1e-6))
	}
	f.Seq = u.seq
	f.Timestamp = ts
	u.seq++
	u.clock += uint64(u.frame)
	for _, g := range u.link.Transfer(f) {
		hdr := AppendEnvelope(u.dgram[:0], u.id, nil)
		d, err := g.AppendMarshal(hdr)
		if err != nil {
			return err
		}
		u.dgram = d
		if err := emit(d); err != nil {
			return err
		}
	}
	return nil
}

// batcher coalesces enveloped records into shared datagrams up to
// MaxDatagram, amortizing the per-datagram syscall across the sessions
// that tick together — on a single core, per-record sends are the load
// generator's dominant cost at fleet scale. The buffer is reused across
// flushes; out must not retain it.
type batcher struct {
	buf []byte
	out func([]byte) error
}

func newBatcher(out func([]byte) error) *batcher {
	return &batcher{buf: make([]byte, 0, MaxDatagram), out: out}
}

// add appends one enveloped record, flushing first when it would not fit
// the current datagram.
func (b *batcher) add(rec []byte) error {
	if len(b.buf) > 0 && len(b.buf)+len(rec) > MaxDatagram {
		if err := b.flush(); err != nil {
			return err
		}
	}
	b.buf = append(b.buf, rec...)
	return nil
}

// flush sends the pending datagram, if any.
func (b *batcher) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	err := b.out(b.buf)
	b.buf = b.buf[:0]
	return err
}

// RunLoad executes one load-generation run and returns its capacity
// summary.
func RunLoad(cfg LoadConfig) (*LoadResult, error) { return RunLoadInto(cfg, nil) }

// RunLoadInto is RunLoad with the run's full telemetry fan-in — server
// metrics plus every session registry, merged in session-id order —
// additionally folded into merged (when non-nil), for callers that want
// the metric detail behind the summary.
func RunLoadInto(cfg LoadConfig, merged *telemetry.Registry) (*LoadResult, error) {
	if cfg.Sessions <= 0 {
		return nil, fmt.Errorf("fleet: load run needs Sessions > 0")
	}
	if cfg.Lead <= 0 {
		cfg.Lead = 2
	}
	p, err := cfg.Profile.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 500 * time.Microsecond
	}
	if cfg.WarmupDrain <= 0 {
		cfg.WarmupDrain = 2 * time.Millisecond
	}
	srv := NewServer(Config{Shards: cfg.Shards, Lifecycle: cfg.Lifecycle})
	defer srv.Close()
	users := make([]*loadUser, cfg.Sessions)
	for i := range users {
		id := uint32(1 + i)
		if _, err := srv.Open(id, p); err != nil {
			return nil, err
		}
		skew := 0.0
		if cfg.SkewPPM != 0 && i%3 == 0 {
			skew = cfg.SkewPPM
		}
		if users[i], err = newLoadUser(id, p.FrameSamples, cfg.Faults, skew); err != nil {
			return nil, err
		}
	}
	if cfg.Throughput {
		return runThroughput(srv, users, cfg, p, merged)
	}
	return runPaced(srv, users, cfg, p, merged)
}

// runThroughput drives ticks back to back with in-process ingest: the
// raw sessions-per-core measurement, no transport, no pacing.
func runThroughput(srv *Server, users []*loadUser, cfg LoadConfig, p Profile, merged *telemetry.Registry) (*LoadResult, error) {
	blocks := cfg.Blocks
	if blocks <= 0 {
		blocks = 200
	}
	ingest := func(d []byte) error { return srv.Ingest(d) }
	// Prime the jitter buffers so the first tick pops real audio.
	for l := 0; l < cfg.Lead; l++ {
		for _, u := range users {
			if err := u.tick(ingest); err != nil {
				return nil, err
			}
		}
	}
	start := time.Now()
	var tickTime time.Duration
	for b := 0; b < blocks; b++ {
		for _, u := range users {
			if err := u.tick(ingest); err != nil {
				return nil, err
			}
		}
		t0 := time.Now()
		if err := srv.ProcessTick(); err != nil {
			return nil, err
		}
		tickTime += time.Since(t0)
	}
	return summarize(srv, cfg, p, int64(blocks), time.Since(start), tickTime, merged), nil
}

// runPaced drives the fleet over the real UDP transport at the audio
// clock, as a single-threaded event loop per block: send every user's
// (coalesced) datagrams, drain the server socket until the block
// deadline via a read deadline, then fire ProcessTick, recording how
// late it finished against the next deadline. Draining in the pacing
// gap instead of from a reader goroutine keeps ingest work out of the
// tick's way — on one core a concurrent reader preempts ProcessTick
// mid-block and its cache pollution shows up as tick time.
func runPaced(srv *Server, users []*loadUser, cfg LoadConfig, p Profile, merged *telemetry.Registry) (*LoadResult, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("fleet: paced load run needs Duration > 0")
	}
	fs := int64(p.SampleRate)
	frame := int64(p.FrameSamples)
	totalBlocks := cfg.Duration.Nanoseconds() * fs / (frame * int64(time.Second))
	if totalBlocks < 1 {
		totalBlocks = 1
	}

	laddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rx, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	defer rx.Close()
	rx.SetReadBuffer(4 << 20)
	tx, err := net.DialUDP("udp", nil, rx.LocalAddr().(*net.UDPAddr))
	if err != nil {
		return nil, err
	}
	defer tx.Close()
	tx.SetWriteBuffer(4 << 20)

	// drainUntil ingests arriving datagrams until due: the pacing sleep
	// and the ingest work are the same wait. When the loop is running
	// late the configured grace window (LoadConfig.DrainGrace) still
	// drains the backlog, so frames keep flowing to the jitter buffers
	// instead of piling up in the socket — an expired read deadline would
	// otherwise refuse even buffered data.
	buf := make([]byte, MaxDatagram)
	drainUntil := func(due time.Time) {
		if grace := time.Now().Add(cfg.DrainGrace); due.Before(grace) {
			due = grace
		}
		rx.SetReadDeadline(due)
		for {
			// ReadFromUDPAddrPort keeps the read alloc-free (ReadFromUDP
			// builds a *UDPAddr per datagram — steady garbage that becomes
			// GC mark work stealing the core from ticks).
			n, _, err := rx.ReadFromUDPAddrPort(buf)
			if err != nil {
				return // deadline reached
			}
			srv.Ingest(buf[:n]) // bad datagrams are counted, not fatal
		}
	}

	// Coalesce the fleet's records into shared datagrams: one send per
	// ~MaxDatagram of frames instead of one per user per block.
	batch := newBatcher(func(d []byte) error {
		_, err := tx.Write(d)
		return err
	})
	// Prime: users run Lead slots ahead of the playout clock throughout.
	for l := 0; l < cfg.Lead; l++ {
		for _, u := range users {
			if err := u.tick(batch.add); err != nil {
				return nil, err
			}
		}
		if err := batch.flush(); err != nil {
			return nil, err
		}
	}
	// Warm the serving path before the clock starts: the first ticks fault
	// in every session's filter state and adaptation buffers (tens of MB
	// at fleet scale), a one-time cost that would otherwise cascade into
	// deadline misses charged to the steady state being measured. Each
	// warmup block is replaced by an extra user slot so the fleet keeps
	// its Lead blocks of transport headroom.
	for w := 0; w < 2; w++ {
		for _, u := range users {
			if err := u.tick(batch.add); err != nil {
				return nil, err
			}
		}
		if err := batch.flush(); err != nil {
			return nil, err
		}
		drainUntil(time.Now().Add(cfg.WarmupDrain))
		if err := srv.ProcessTick(); err != nil {
			return nil, err
		}
	}
	runtime.GC() // start the measured window with a clean heap
	start := time.Now()
	var tickTime time.Duration
	for n := int64(0); n < totalBlocks; n++ {
		for _, u := range users {
			if err := u.tick(batch.add); err != nil {
				return nil, err
			}
		}
		if err := batch.flush(); err != nil {
			return nil, err
		}
		// Block n's data is due at deadline n+1; the tick must then finish
		// before deadline n+2 or every session in it missed its block.
		drainUntil(graph.BlockDeadline(start, n+1, frame, fs))
		t0 := time.Now()
		if err := srv.ProcessTick(); err != nil {
			return nil, err
		}
		done := time.Now()
		tickTime += done.Sub(t0)
		srv.ObserveTick(done.Sub(graph.BlockDeadline(start, n+2, frame, fs)).Nanoseconds())
	}
	elapsed := time.Since(start)
	return summarize(srv, cfg, p, totalBlocks, elapsed, tickTime, merged), nil
}

func summarize(srv *Server, cfg LoadConfig, p Profile, blocks int64, elapsed, tickTime time.Duration, merged *telemetry.Registry) *LoadResult {
	if merged == nil {
		merged = telemetry.NewRegistry()
	}
	srv.MergeTelemetry(merged)
	snap := merged.Snapshot()
	news, gets, puts := srv.PoolStats()
	sessionBlocks := blocks * int64(cfg.Sessions)
	res := &LoadResult{
		Sessions:       cfg.Sessions,
		Blocks:         blocks,
		SessionBlocks:  sessionBlocks,
		Elapsed:        elapsed,
		TickTime:       tickTime,
		DeadlineMisses: snap.Counters["fleet.deadline_miss"],
		FramesIn:       snap.Counters["fleet.frames_in"],
		PoolNews:       news,
		PoolGets:       gets,
		PoolPuts:       puts,
	}
	if sessionBlocks > 0 {
		res.SessionBlockNS = float64(tickTime.Nanoseconds()) / float64(sessionBlocks)
		res.MissRate = float64(res.DeadlineMisses) / float64(sessionBlocks)
	}
	if res.SessionBlockNS > 0 {
		periodNS := float64(p.FrameSamples) / p.SampleRate * 1e9
		res.SessionsPerCore = periodNS / res.SessionBlockNS
	}
	if h, ok := snap.Histograms["fleet.tick_lateness_ns"]; ok && h.Count > 0 {
		res.P99LatenessNS = h.Quantile(0.99)
	}
	return res
}
