package fleet

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
)

// This file is the fleet lifecycle layer's handoff half: Drain snapshots
// every session's transferable state into a versioned wire format and
// Adopt warm-starts those sessions on another server, so a rolling
// restart moves the fleet between processes instead of killing every
// session cold.
//
// What transfers is exactly the state that takes time to re-learn or
// cannot be re-derived from traffic: the session id, the full acoustic
// profile (fingerprinted against the id so records cannot be grafted onto
// the wrong session), the jitter-buffer playout clock (so the adopted
// buffer re-anchors at the same capture index and the first post-handoff
// datagrams are neither "late" nor misaligned), and the canceller taps
// (so cancellation resumes from the converged filter instead of
// re-adapting from zero — the same warm-start trick the supervisor uses
// across its failover, lifted to process granularity). Everything else —
// pooled frames in flight, telemetry, the acoustic leg's convolver tail —
// is either re-derivable or deliberately process-local.
//
// Wire format (big-endian):
//
//	header: magic "MS" (2) | version (1) | session count (4)
//	record: record length (4) | record body
//	body:   session id (4) | fingerprint (8) | profile | playout clock (8)
//	        | drift ppm (8) | tap count (4) | taps (8 each)
//
// The fingerprint hashes (id || encoded profile), so a record pasted
// under another session's id — or a profile tampered in flight — fails
// validation instead of warm-starting the wrong filter shape.
const (
	snapshotMagic   = 0x4D53 // "MS"
	snapshotVersion = 1
	// snapshotHeader is the snapshot header size in bytes.
	snapshotHeader = 2 + 1 + 4
)

// SessionSnapshot is one session's transferable state.
type SessionSnapshot struct {
	// ID is the session id the state belongs to.
	ID uint32
	// Profile is the session's full (default-filled) acoustic profile.
	Profile Profile
	// PlayoutClock is the capture index of the next sample the jitter
	// buffer would have played; Adopt anchors the new buffer there.
	PlayoutClock uint64
	// DriftPPM is reserved for the relay-clock drift estimate once fleet
	// sessions grow a drift tracker (always 0 today); the wire format
	// carries it so version 1 snapshots stay readable when it lands.
	DriftPPM float64
	// Weights is the canceller's converged taps — LANC's time-domain
	// vector, or the FDAF path's reconstructed time-domain equivalent.
	Weights []float64
}

// FleetSnapshot is a drained server's full transferable state.
type FleetSnapshot struct {
	// Version is the wire-format version the snapshot was encoded with.
	Version int
	// Sessions holds one record per drained session, ascending by id.
	Sessions []SessionSnapshot
}

// appendProfile encodes p deterministically. Field order is part of the
// version-1 wire format; new fields bump snapshotVersion.
func appendProfile(dst []byte, p Profile) []byte {
	dst = appendF64(dst, p.SampleRate)
	dst = appendU32(dst, uint32(p.FrameSamples))
	dst = appendU32(dst, uint32(p.Lookahead))
	dst = appendU32(dst, uint32(p.JitterDepth))
	dst = appendU32(dst, uint32(p.CausalTaps))
	dst = appendU32(dst, uint32(p.MaxNonCausalTaps))
	dst = appendU32(dst, uint32(p.FDAFBlock))
	dst = appendF64(dst, p.Mu)
	dst = appendF64(dst, p.FDAFMu)
	dst = appendF64(dst, p.EstimateNoiseRMS)
	dst = binary.BigEndian.AppendUint64(dst, p.EstimateSeed)
	var flags byte
	if p.EstimateSecondary {
		flags |= 1
	}
	if p.LossBlind {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = appendFloats(dst, p.SecondaryIR)
	dst = appendFloats(dst, p.ChannelIR)
	dst = appendFloats(dst, p.RoomIR)
	return dst
}

func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }

func appendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendFloats(dst []byte, xs []float64) []byte {
	dst = appendU32(dst, uint32(len(xs)))
	for _, x := range xs {
		dst = appendF64(dst, x)
	}
	return dst
}

// reader walks a record body with running bounds checks; ok latches false
// on the first truncated read so callers can decode straight-line and
// check once.
type reader struct {
	b  []byte
	ok bool
}

func (r *reader) take(n int) []byte {
	if !r.ok || len(r.b) < n {
		r.ok = false
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.BigEndian.Uint32(b)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.BigEndian.Uint64(b)
	}
	return 0
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) byte() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

// floats reads a count-prefixed float vector. The count is validated
// against the bytes actually remaining before allocating, so a fuzzed
// length field cannot demand gigabytes.
func (r *reader) floats() []float64 {
	n := int(r.u32())
	if !r.ok || n > len(r.b)/8 {
		r.ok = false
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *reader) profile() Profile {
	var p Profile
	p.SampleRate = r.f64()
	p.FrameSamples = int(r.u32())
	p.Lookahead = int(r.u32())
	p.JitterDepth = int(r.u32())
	p.CausalTaps = int(r.u32())
	p.MaxNonCausalTaps = int(r.u32())
	p.FDAFBlock = int(r.u32())
	p.Mu = r.f64()
	p.FDAFMu = r.f64()
	p.EstimateNoiseRMS = r.f64()
	p.EstimateSeed = r.u64()
	flags := r.byte()
	p.EstimateSecondary = flags&1 != 0
	p.LossBlind = flags&2 != 0
	p.SecondaryIR = r.floats()
	p.ChannelIR = r.floats()
	p.RoomIR = r.floats()
	return p
}

// snapshotFingerprint binds a record to its session: a 64-bit mix over
// the id followed by the encoded profile bytes (splitmix-style, matching
// the setup cache's hashing). Swapping two records' ids — or editing the
// profile without re-fingerprinting — breaks the hash.
func snapshotFingerprint(id uint32, profile []byte) uint64 {
	h := uint64(0x9e3779b97f4a7c15) ^ uint64(id)
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	for _, b := range profile {
		h ^= uint64(b)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}

// Marshal encodes the snapshot into the versioned wire format.
func (snap *FleetSnapshot) Marshal() ([]byte, error) {
	out := make([]byte, 0, snapshotHeader+len(snap.Sessions)*256)
	out = binary.BigEndian.AppendUint16(out, snapshotMagic)
	out = append(out, snapshotVersion)
	out = appendU32(out, uint32(len(snap.Sessions)))
	for _, ss := range snap.Sessions {
		prof := appendProfile(nil, ss.Profile)
		body := appendU32(nil, ss.ID)
		body = binary.BigEndian.AppendUint64(body, snapshotFingerprint(ss.ID, prof))
		body = append(body, prof...)
		body = binary.BigEndian.AppendUint64(body, ss.PlayoutClock)
		body = appendF64(body, ss.DriftPPM)
		body = appendFloats(body, ss.Weights)
		out = appendU32(out, uint32(len(body)))
		out = append(out, body...)
	}
	return out, nil
}

// ParseSnapshot decodes and validates a snapshot: magic, version, record
// framing, per-record truncation, and each record's id-bound profile
// fingerprint. Any failure rejects the whole snapshot — a handoff must be
// all-or-nothing, since adopting half a fleet silently would strand the
// other half.
func ParseSnapshot(data []byte) (*FleetSnapshot, error) {
	if len(data) < snapshotHeader {
		return nil, fmt.Errorf("fleet: short snapshot (%d bytes)", len(data))
	}
	if binary.BigEndian.Uint16(data[0:2]) != snapshotMagic {
		return nil, fmt.Errorf("fleet: bad snapshot magic")
	}
	if data[2] != snapshotVersion {
		return nil, fmt.Errorf("fleet: unsupported snapshot version %d", data[2])
	}
	count := int(binary.BigEndian.Uint32(data[3:7]))
	rest := data[snapshotHeader:]
	snap := &FleetSnapshot{Version: int(data[2])}
	for i := 0; i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("fleet: snapshot truncated at record %d", i)
		}
		n := int(binary.BigEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if n > len(rest) {
			return nil, fmt.Errorf("fleet: snapshot record %d truncated (%d of %d bytes)", i, len(rest), n)
		}
		r := &reader{b: rest[:n], ok: true}
		rest = rest[n:]

		var ss SessionSnapshot
		ss.ID = r.u32()
		fp := r.u64()
		profStart := r.b
		ss.Profile = r.profile()
		profLen := len(profStart) - len(r.b)
		ss.PlayoutClock = r.u64()
		ss.DriftPPM = r.f64()
		ss.Weights = r.floats()
		if !r.ok {
			return nil, fmt.Errorf("fleet: snapshot record %d malformed", i)
		}
		if len(r.b) != 0 {
			return nil, fmt.Errorf("fleet: snapshot record %d has %d trailing bytes", i, len(r.b))
		}
		if want := snapshotFingerprint(ss.ID, profStart[:profLen]); fp != want {
			return nil, fmt.Errorf("fleet: snapshot record %d fingerprint mismatch for session %d", i, ss.ID)
		}
		snap.Sessions = append(snap.Sessions, ss)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("fleet: %d trailing bytes after %d snapshot records", len(rest), count)
	}
	return snap, nil
}

// snapshot captures the session's transferable state. The caller must own
// the session exclusively (Drain removes it from the serving map under
// the write lock first), and must call it before Close — Close rewinds
// the playout clock.
func (sess *Session) snapshot() SessionSnapshot {
	ss := SessionSnapshot{
		ID:           sess.ID,
		Profile:      sess.profile,
		PlayoutClock: sess.buf.jb.PlayoutClock(),
	}
	switch {
	case sess.pl.LANC != nil:
		ss.Weights = sess.pl.LANC.Weights()
	case sess.pl.FDAF != nil:
		ss.Weights = sess.pl.FDAF.Weights()
	}
	return ss
}

// Drain stops admissions and hands back every healthy session's
// transferable state, closing each session as it is captured. Sessions
// are drained in ascending id order, one at a time — the rest of the
// fleet keeps serving (Ingest/ProcessTick interleave between records)
// until their turn, so a drain degrades throughput gradually instead of
// stopping the world. Quarantined sessions are closed but not included: a
// poisoned filter must not be warm-started onto a healthy process.
//
// ctx aborts a long drain between sessions; sessions already captured
// stay in the returned (partial) snapshot and have been closed, the rest
// keep serving. Either way the server refuses new Opens with ErrDraining
// from the first call on. Each captured session counts fleet.drained.
func (s *Server) Drain(ctx context.Context) (*FleetSnapshot, error) {
	s.draining.Store(true)
	snap := &FleetSnapshot{Version: snapshotVersion}
	for {
		if err := ctx.Err(); err != nil {
			return snap, err
		}
		s.mu.Lock()
		if len(s.order) == 0 {
			s.mu.Unlock()
			return snap, nil
		}
		id := s.order[0]
		sess := s.sessions[id]
		delete(s.sessions, id)
		s.order = s.order[1:]
		s.gSessions.Set(float64(len(s.sessions)))
		s.mu.Unlock()

		// The session is now invisible to Ingest/ProcessTick, so this
		// goroutine owns it exclusively: capture, then tear down.
		if !sess.quarantined.Load() {
			snap.Sessions = append(snap.Sessions, sess.snapshot())
			s.ctrDrained.Inc()
		}
		if err := sess.pl.Close(); err != nil {
			return snap, err
		}
		s.mu.Lock()
		s.retired.Merge(sess.reg)
		s.mu.Unlock()
	}
}

// Draining reports whether Drain has begun (admissions closed).
func (s *Server) Draining() bool { return s.draining.Load() }

// Adopt warm-starts every session in the snapshot on this server: each is
// opened from its snapshotted profile, its canceller taps are restored,
// and its jitter buffer is anchored at the snapshotted playout clock so
// the relay's next datagrams land exactly where the old process would
// have played them. perSession, when non-nil, supplies extra
// SessionOptions per adopted id (tests re-attach residual capture this
// way). Adoption is all-or-nothing per session but not transactional
// across the fleet: the error names the first session that failed, and
// earlier adoptions stand.
func (s *Server) Adopt(snap *FleetSnapshot, perSession func(id uint32) []SessionOption) error {
	if snap == nil {
		return fmt.Errorf("fleet: nil snapshot")
	}
	for _, ss := range snap.Sessions {
		var opts []SessionOption
		if perSession != nil {
			opts = perSession(ss.ID)
		}
		sess, err := s.Open(ss.ID, ss.Profile, opts...)
		if err != nil {
			return fmt.Errorf("fleet: adopt session %d: %w", ss.ID, err)
		}
		if err := sess.warmStart(ss); err != nil {
			s.CloseSession(ss.ID)
			return fmt.Errorf("fleet: adopt session %d: %w", ss.ID, err)
		}
	}
	return nil
}

// warmStart loads the snapshotted taps and playout anchor into a freshly
// opened session.
func (sess *Session) warmStart(ss SessionSnapshot) error {
	if len(ss.Weights) > 0 {
		var err error
		switch {
		case sess.pl.LANC != nil:
			err = sess.pl.LANC.SetWeights(ss.Weights)
		case sess.pl.FDAF != nil:
			err = sess.pl.FDAF.SetWeights(ss.Weights)
		}
		if err != nil {
			return err
		}
	}
	sess.buf.jb.Anchor(ss.PlayoutClock)
	return nil
}
