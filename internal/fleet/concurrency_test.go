package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mute/internal/stream"
)

// TestConcurrentServerOps sweeps the server's RWMutex contract under true
// concurrency: Open, CloseSession, Ingest, ProcessTick, ObserveTick, and
// Lookup all racing from their own goroutines. The test asserts no
// deadlock, no lost session, and a balanced frame pool — the data-race
// half of the contract is what -race itself checks (CI runs this package
// with -race -count=2).
func TestConcurrentServerOps(t *testing.T) {
	const (
		churners = 4
		rounds   = 200
	)
	srv := NewServer(Config{Shards: 4})
	p := lightProfile()
	// A stable session keeps traffic flowing through every tick while the
	// churners reshape the map around it.
	if _, err := srv.Open(targetID, p); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Churners: open → close their own id range, racing each other.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := uint32(10000 + c*rounds + i)
				if _, err := srv.Open(id, p); err != nil {
					// The ladder never sheds here and nothing drains; any
					// refusal is a bug.
					t.Errorf("churner open %d: %v", id, err)
					return
				}
				if srv.Lookup(id) == nil {
					t.Errorf("session %d not visible after Open", id)
					return
				}
				if err := srv.CloseSession(id); err != nil {
					t.Errorf("churner close %d: %v", id, err)
					return
				}
			}
		}(c)
	}
	// Ingester: streams the stable session's frames plus deliberate
	// unknown-session and malformed datagrams.
	wg.Add(1)
	go func() {
		defer wg.Done()
		u := newSimUser(t, targetID, p.FrameSamples, targetFaults())
		for !stop.Load() {
			for _, d := range u.tick() {
				if err := srv.Ingest(d); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
			}
			srv.Ingest(AppendEnvelope(nil, 424242, []byte{1, 2, 3})) // unknown id
			srv.Ingest([]byte{0xba, 0xad})                           // bad envelope
		}
	}()
	// Ticker: drives the fleet and the watchdog concurrently with all of
	// the above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if err := srv.ProcessTick(); err != nil {
				t.Errorf("tick: %v", err)
				return
			}
			srv.ObserveTick(int64(i%3-1) * 100_000)
		}
	}()

	// The churners run to completion regardless of stop; flipping it ends
	// the open-ended ingest/tick loops, and wg.Wait then covers all six
	// goroutines.
	stop.Store(true)
	wg.Wait()

	if srv.Lookup(targetID) == nil {
		t.Fatal("stable session lost during churn")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_, gets, puts := srv.PoolStats()
	if gets != puts {
		t.Fatalf("frame pool unbalanced after concurrent churn: %d gets, %d puts", gets, puts)
	}
}

// TestChurnSoak10k is the satellite soak: 10k session open/close cycles
// with live traffic, asserting the frame pool ledger balances and the
// goroutine census is flat — no leak hides behind a session.
func TestChurnSoak10k(t *testing.T) {
	cycles := 10000
	if testing.Short() || raceEnabled {
		cycles = 1000
	}
	srv := NewServer(Config{})
	defer srv.Close()
	p := lightProfile()
	before := stableGoroutines(t)
	for i := 0; i < cycles; i++ {
		id := uint32(1 + i%97)
		if _, err := srv.Open(id, p); err != nil {
			t.Fatal(err)
		}
		u := newSimUser(t, id, p.FrameSamples, stream.LossParams{})
		for _, d := range u.tick() {
			if err := srv.Ingest(d); err != nil {
				t.Fatal(err)
			}
		}
		if i%7 == 0 {
			if err := srv.ProcessTick(); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.CloseSession(id); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Sessions() != 0 {
		t.Fatalf("%d sessions open after soak", srv.Sessions())
	}
	_, gets, puts := srv.PoolStats()
	if gets != puts {
		t.Fatalf("pool ledger unbalanced after %d cycles: %d gets, %d puts", cycles, gets, puts)
	}
	after := stableGoroutines(t)
	if after > before {
		t.Fatalf("goroutines grew %d → %d over %d open/close cycles", before, after, cycles)
	}
}

// TestConcurrentDrainVsServing races Drain against live Ingest and
// ProcessTick traffic: the drain must capture every healthy session
// exactly once while ticks and ingest keep running, and late Opens must
// fail with a typed lifecycle error rather than slipping in.
func TestConcurrentDrainVsServing(t *testing.T) {
	srv := NewServer(Config{Shards: 2})
	p := lightProfile()
	const sessions = 32
	for i := 0; i < sessions; i++ {
		if _, err := srv.Open(uint32(1+i), p); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		u := newSimUser(t, 1, p.FrameSamples, stream.LossParams{})
		for !stop.Load() {
			for _, d := range u.tick() {
				srv.Ingest(d) // unknown-session once drained: counted, not fatal
			}
		}
	}()
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := srv.ProcessTick(); err != nil {
				t.Errorf("tick during drain: %v", err)
				return
			}
		}
	}()
	snap, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Open(999, p); !errors.Is(err, ErrDraining) {
		t.Errorf("Open during drain returned %v, want ErrDraining", err)
	}
	stop.Store(true)
	wg.Wait()
	if len(snap.Sessions) != sessions {
		t.Fatalf("drain captured %d sessions, want %d", len(snap.Sessions), sessions)
	}
	seen := map[uint32]bool{}
	for _, ss := range snap.Sessions {
		if seen[ss.ID] {
			t.Fatalf("session %d drained twice", ss.ID)
		}
		seen[ss.ID] = true
	}
	_, gets, puts := srv.PoolStats()
	if gets != puts {
		t.Fatalf("pool unbalanced after concurrent drain: %d gets, %d puts", gets, puts)
	}
}
