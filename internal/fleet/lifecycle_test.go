package fleet

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"mute/internal/stream"
)

// fastLadder is a lifecycle tuning with no smoothing and single-tick
// dwells, so ladder unit tests can step rungs deterministically with one
// ObserveTick per transition.
func fastLadder() LifecycleConfig {
	return LifecycleConfig{EWMAAlpha: 1, DownDwellTicks: 1, UpDwellTicks: 1}
}

// TestLadderDwellAndHysteresis pins the ladder's transition rules with
// the default tuning: a demotion needs DownDwellTicks consecutive
// breaching observations, a promotion needs UpDwellTicks consecutive
// observations under half the demotion threshold, and a single spike or
// dip never moves the rung.
func TestLadderDwellAndHysteresis(t *testing.T) {
	lc := &lifecycle{cfg: LifecycleConfig{EWMAAlpha: 1}.withDefaults()}
	step := func(lateness int64) PressureState {
		state, _, _ := lc.observe(lateness)
		return state
	}

	// One breaching tick (or DownDwellTicks-1 of them) must not demote.
	for i := 0; i < lc.cfg.DownDwellTicks-1; i++ {
		if got := step(3e6); got != PressureNormal {
			t.Fatalf("demoted after %d breaching ticks, want dwell of %d", i+1, lc.cfg.DownDwellTicks)
		}
	}
	// A healthy tick resets the dwell counter.
	if got := step(0); got != PressureNormal {
		t.Fatalf("healthy tick moved the rung to %v", got)
	}
	for i := 0; i < lc.cfg.DownDwellTicks-1; i++ {
		step(3e6)
	}
	if got := step(3e6); got != PressureDegraded {
		t.Fatalf("after full dwell of breaching ticks, rung = %v, want DEGRADED", got)
	}

	// DEGRADED → SHEDDING needs the higher threshold; lateness between the
	// two thresholds neither demotes further nor promotes.
	for i := 0; i < 3*lc.cfg.DownDwellTicks; i++ {
		if got := step(3e6); got != PressureDegraded {
			t.Fatalf("mid-band lateness moved the rung to %v", got)
		}
	}
	for i := 0; i < lc.cfg.DownDwellTicks; i++ {
		step(9e6)
	}
	if got, _, _ := lc.observe(0); got != PressureShedding {
		t.Fatalf("sustained shed-level lateness left rung at %v, want SHEDDING", got)
	}

	// Promotion: lateness must sit under half the demotion threshold for
	// UpDwellTicks; half-threshold-grazing values never promote.
	for i := 0; i < 2*lc.cfg.UpDwellTicks; i++ {
		if got := step(5e6); got != PressureShedding {
			t.Fatalf("lateness above hysteresis band promoted to %v", got)
		}
	}
	for i := 0; i < lc.cfg.UpDwellTicks-1; i++ {
		if got := step(0); got != PressureShedding {
			t.Fatalf("promoted after %d healthy ticks, want dwell of %d", i+1, lc.cfg.UpDwellTicks)
		}
	}
	if got := step(0); got != PressureDegraded {
		t.Fatal("full healthy dwell did not promote SHEDDING → DEGRADED")
	}
	for i := 0; i < lc.cfg.UpDwellTicks; i++ {
		step(0)
	}
	if got := step(0); got != PressureNormal {
		t.Fatal("full healthy dwell did not promote DEGRADED → NORMAL")
	}
}

// TestDisarmedLadderNeverMoves pins the Disarm escape hatch: no lateness,
// however extreme, moves the rung.
func TestDisarmedLadderNeverMoves(t *testing.T) {
	lc := &lifecycle{cfg: LifecycleConfig{Disarm: true}.withDefaults()}
	for i := 0; i < 100; i++ {
		if state, changed, _ := lc.observe(1e9); state != PressureNormal || changed {
			t.Fatal("disarmed ladder moved")
		}
	}
}

// TestSheddingRefusesOpens drives the server ladder to SHEDDING through
// ObserveTick and pins the admission contract: Open refuses with a typed
// ErrOverloaded (counted fleet.refused), and admissions resume after the
// ladder promotes back out of SHEDDING.
func TestSheddingRefusesOpens(t *testing.T) {
	srv := NewServer(Config{Lifecycle: fastLadder()})
	defer srv.Close()
	srv.ObserveTick(3e6) // NORMAL → DEGRADED
	srv.ObserveTick(9e6) // DEGRADED → SHEDDING
	if got := srv.Pressure(); got != PressureShedding {
		t.Fatalf("pressure = %v, want SHEDDING", got)
	}
	if _, err := srv.Open(1, lightProfile()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Open under SHEDDING returned %v, want ErrOverloaded", err)
	}
	if got := srv.reg.Snapshot().Counters["fleet.refused"]; got != 1 {
		t.Fatalf("fleet.refused = %d, want 1", got)
	}
	srv.ObserveTick(0) // SHEDDING → DEGRADED
	if _, err := srv.Open(1, lightProfile()); err != nil {
		t.Fatalf("Open under DEGRADED refused: %v", err)
	}
	if got := srv.reg.Snapshot().Gauges["fleet.pressure_state"]; got != float64(PressureDegraded) {
		t.Fatalf("fleet.pressure_state gauge = %v, want %v", got, float64(PressureDegraded))
	}
}

// TestPressureAppliesTapLimit pins the lazy posture propagation: a rung
// change reconfigures each session's non-causal window on that session's
// next tick (never from the watchdog's goroutine), sessions opened under
// DEGRADED are born with the shrunken window, and promotion back to
// NORMAL restores the full window.
func TestPressureAppliesTapLimit(t *testing.T) {
	srv := NewServer(Config{Lifecycle: fastLadder()})
	defer srv.Close()
	p := lightProfile()
	sess, err := srv.Open(targetID, p)
	if err != nil {
		t.Fatal(err)
	}
	full := sess.pl.NonCausalTaps
	if got := sess.pl.LANC.ActiveNonCausal(); got != full {
		t.Fatalf("fresh session runs %d non-causal taps, want %d", got, full)
	}

	srv.ObserveTick(3e6) // → DEGRADED
	// The posture lands on the session's own next tick, not immediately.
	if got := sess.pl.LANC.ActiveNonCausal(); got != full {
		t.Fatalf("posture applied outside the session's tick: %d taps", got)
	}
	if err := srv.ProcessTick(); err != nil {
		t.Fatal(err)
	}
	want := int(0.5 * float64(full))
	if got := sess.pl.LANC.ActiveNonCausal(); got != want {
		t.Fatalf("DEGRADED session runs %d non-causal taps, want %d", got, want)
	}

	// A session opened while DEGRADED adopts the posture at birth.
	born, err := srv.Open(100, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := born.pl.LANC.ActiveNonCausal(); got != want {
		t.Fatalf("session born under DEGRADED runs %d taps, want %d", got, want)
	}

	srv.ObserveTick(0) // → NORMAL
	if err := srv.ProcessTick(); err != nil {
		t.Fatal(err)
	}
	if got := sess.pl.LANC.ActiveNonCausal(); got != full {
		t.Fatalf("promoted session runs %d taps, want full window %d", got, full)
	}
}

// TestIdleReapUnderShedding pins the shed path: under SHEDDING, a session
// that has not delivered a frame within IdleReapTicks is closed and
// counted fleet.shed, while sessions with fresh frames keep serving.
func TestIdleReapUnderShedding(t *testing.T) {
	cfg := fastLadder()
	cfg.IdleReapTicks = 4
	srv := NewServer(Config{Lifecycle: cfg})
	defer srv.Close()
	p := lightProfile()
	if _, err := srv.Open(1, p); err != nil { // fed every block
		t.Fatal(err)
	}
	if _, err := srv.Open(2, p); err != nil { // never fed: starving
		t.Fatal(err)
	}
	u := newSimUser(t, 1, p.FrameSamples, stream.LossParams{})
	for b := 0; b < 12; b++ {
		for _, d := range u.tick() {
			if err := srv.Ingest(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.ProcessTick(); err != nil {
			t.Fatal(err)
		}
		if b == 1 {
			srv.ObserveTick(3e6)
			srv.ObserveTick(9e6) // → SHEDDING from block 2 on
		}
	}
	if srv.Lookup(2) != nil {
		t.Fatal("starving session survived 10 SHEDDING ticks past a 4-tick reap horizon")
	}
	if srv.Lookup(1) == nil {
		t.Fatal("actively-fed session was reaped")
	}
	if got := srv.reg.Snapshot().Counters["fleet.shed"]; got != 1 {
		t.Fatalf("fleet.shed = %d, want 1", got)
	}
	// Reaping disabled: a negative horizon never reaps.
	cfg.IdleReapTicks = -1
	srv2 := NewServer(Config{Lifecycle: cfg})
	defer srv2.Close()
	if _, err := srv2.Open(9, p); err != nil {
		t.Fatal(err)
	}
	srv2.ObserveTick(3e6)
	srv2.ObserveTick(9e6)
	for b := 0; b < 12; b++ {
		if err := srv2.ProcessTick(); err != nil {
			t.Fatal(err)
		}
	}
	if srv2.Lookup(9) == nil {
		t.Fatal("reaping ran with IdleReapTicks < 0")
	}
}

// TestWatchdogArmedNormalBitIdentity pins the bench-gate premise: with
// the watchdog armed and every tick on time, the fleet stays NORMAL and
// every residual is bit-identical to a disarmed run — the watchdog's
// steady-state presence is one atomic load per session tick, never a
// behavioral change.
func TestWatchdogArmedNormalBitIdentity(t *testing.T) {
	run := func(disarm bool) []float64 {
		srv := NewServer(Config{Lifecycle: LifecycleConfig{Disarm: disarm}})
		defer srv.Close()
		p := lightProfile()
		const blocks = 16
		residual := make([]float64, blocks*p.FrameSamples)
		if _, err := srv.Open(targetID, p, WithResidual(residual)); err != nil {
			t.Fatal(err)
		}
		users := []*simUser{newSimUser(t, targetID, p.FrameSamples, targetFaults())}
		for i := 0; i < 8; i++ {
			id := uint32(1000 + i)
			if _, err := srv.Open(id, p); err != nil {
				t.Fatal(err)
			}
			users = append(users, newSimUser(t, id, p.FrameSamples, peerFaults(id)))
		}
		for b := 0; b < blocks; b++ {
			var wg sync.WaitGroup
			for _, u := range users {
				wg.Add(1)
				go func(u *simUser) {
					defer wg.Done()
					for _, d := range u.tick() {
						srv.Ingest(d)
					}
				}(u)
			}
			wg.Wait()
			if err := srv.ProcessTick(); err != nil {
				t.Fatal(err)
			}
			srv.ObserveTick(-500_000) // on time, every tick
		}
		if got := srv.Pressure(); got != PressureNormal {
			t.Fatalf("on-time fleet left NORMAL: %v", got)
		}
		return residual
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("armed watchdog in NORMAL changed a session residual")
	}
}
