// Package fleet is the session server: one process multiplexing thousands
// of concurrent relay→ear cancellation sessions, each an independent
// instance of the same pipeline graph the simulator and the live CLIs
// run (graph.Build).
//
// The design is shared-nothing per session: every session owns its
// jitter buffer, its canceller state, its acoustic leg, and its
// telemetry registry, so no lock is taken on the per-sample path and a
// session's residual is bit-identical whether it runs alone or beside a
// thousand peers (pinned by the isolation suite). What *is* shared is
// deliberately read-only or pooled:
//
//   - frame buffers cycle through a sync.Pool (framePool) — the demux
//     decodes into a pooled frame, the jitter buffer's release hook hands
//     consumed frames back, and the steady-state serving path allocates
//     nothing;
//   - expensive per-profile setup (secondary-path calibration, room IR
//     pre-renders) is memoized across sessions by content hash (memo),
//     generalizing the simulator's render cache;
//   - one server socket carries every session's frames, demultiplexed by
//     the fleet envelope's session id.
//
// Concurrency contract: Ingest and ProcessTick hold the server's read
// lock, Open/Close hold the write lock, so sessions never change shape
// mid-tick. ProcessTick drives sessions in ascending session-id order —
// sequentially with Shards <= 1, or partitioned across shard goroutines
// otherwise; either way the outputs are identical because sessions share
// no mutable state.
package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mute/internal/core"
	"mute/internal/dsp"
	"mute/internal/graph"
	"mute/internal/stream"
	"mute/internal/telemetry"
)

// Profile is the per-session acoustic and canceller configuration. The
// zero value is not usable; DefaultProfile returns the serving defaults
// (light taps sized for thousands of sessions per core), and any field
// left zero in a caller's profile inherits the default.
type Profile struct {
	// SampleRate is the session clock in Hz (default 8000).
	SampleRate float64
	// FrameSamples is the transport frame and processing block size
	// (default 80 = 10 ms at 8 kHz).
	FrameSamples int
	// Lookahead is the acoustic lookahead in samples (default 64 = 8 ms).
	Lookahead int
	// JitterDepth bounds the session's jitter buffer in frames
	// (default 32).
	JitterDepth int
	// CausalTaps is LANC's causal filter length (default 48 — sized so a
	// single core sustains hundreds of realtime sessions).
	CausalTaps int
	// MaxNonCausalTaps caps the planned non-causal taps (default 16).
	MaxNonCausalTaps int
	// Mu is the adaptation step (default 0.1).
	Mu float64
	// SecondaryIR is the true speaker→error-mic chain (default the live
	// demo's {0.85, 0.22, 0.06}).
	SecondaryIR []float64
	// ChannelIR shapes the derived acoustic leg (default the live demo's
	// multipath {0.8, 0.25, 0.1, 0.05}).
	ChannelIR []float64
	// RoomIR, when set, is convolved with ChannelIR (memoized across
	// sessions) to form the effective acoustic channel.
	RoomIR []float64
	// EstimateSecondary calibrates ĥ_se by probing SecondaryIR through
	// anc.EstimateSecondaryPath (memoized across sessions) instead of
	// assuming the true chain is known.
	EstimateSecondary bool
	// EstimateNoiseRMS is the error-mic self-noise during calibration.
	EstimateNoiseRMS float64
	// EstimateSeed seeds the calibration probe (default 1).
	EstimateSeed uint64
	// LossAware gates adaptation on the concealment mask (default on;
	// set LossBlind to disable).
	LossBlind bool
	// FDAFBlock, when non-zero, runs the session on the partitioned
	// frequency-domain canceller with this block size (power of two):
	// per-sample MACs collapse into batched FFT work, the fleet's
	// high-density mode. Must divide FrameSamples.
	FDAFBlock int
	// FDAFMu is the per-bin normalized step (default 0.4).
	FDAFMu float64
}

// DefaultProfile returns the serving defaults.
func DefaultProfile() Profile {
	return Profile{
		SampleRate:       8000,
		FrameSamples:     80,
		Lookahead:        64,
		JitterDepth:      32,
		CausalTaps:       48,
		MaxNonCausalTaps: 16,
		Mu:               0.1,
		SecondaryIR:      []float64{0.85, 0.22, 0.06},
		ChannelIR:        []float64{0.8, 0.25, 0.1, 0.05},
		EstimateSeed:     1,
		FDAFMu:           0.4,
	}
}

// withDefaults fills zero fields from DefaultProfile and validates.
func (p Profile) withDefaults() (Profile, error) {
	d := DefaultProfile()
	if p.SampleRate == 0 {
		p.SampleRate = d.SampleRate
	}
	if p.FrameSamples == 0 {
		p.FrameSamples = d.FrameSamples
	}
	if p.Lookahead == 0 {
		p.Lookahead = d.Lookahead
	}
	if p.JitterDepth == 0 {
		p.JitterDepth = d.JitterDepth
	}
	if p.CausalTaps == 0 {
		p.CausalTaps = d.CausalTaps
	}
	if p.MaxNonCausalTaps == 0 {
		p.MaxNonCausalTaps = d.MaxNonCausalTaps
	}
	if p.Mu == 0 {
		p.Mu = d.Mu
	}
	if p.SecondaryIR == nil {
		p.SecondaryIR = d.SecondaryIR
	}
	if p.ChannelIR == nil {
		p.ChannelIR = d.ChannelIR
	}
	if p.EstimateSeed == 0 {
		p.EstimateSeed = d.EstimateSeed
	}
	if p.FDAFMu == 0 {
		p.FDAFMu = d.FDAFMu
	}
	if p.FrameSamples <= 0 || p.FrameSamples > stream.MaxFrameSamples {
		return p, fmt.Errorf("fleet: frame size %d outside (0, %d]", p.FrameSamples, stream.MaxFrameSamples)
	}
	if p.FDAFBlock != 0 && p.FrameSamples%p.FDAFBlock != 0 {
		return p, fmt.Errorf("fleet: FDAF block %d must divide frame size %d", p.FDAFBlock, p.FrameSamples)
	}
	return p, nil
}

// Session is one relay→ear pipeline under the server. All mutable state
// is private to the session; the server drives it from exactly one
// goroutine per tick.
type Session struct {
	// ID is the envelope session id.
	ID uint32

	profile Profile
	buf     *sessionBuffer
	pl      *graph.Pipeline
	reg     *telemetry.Registry

	ctrBlocks *telemetry.Counter
	residual  []float64

	// Lifecycle state (see lifecycle.go). quarantined/panicMsg are
	// atomics because Ingest and tickSession both observe them under the
	// server's read lock; pressureSeen and the probes are touched only on
	// the session's own tick/ingest path.
	quarantined  atomic.Bool
	panicMsg     atomic.Pointer[string]
	pressureSeen uint64
	lastFrame    atomic.Int64 // server tick count when a frame last landed
	tickProbe    func(block int64)
	ingestProbe  func(payload []byte)
}

// Registry returns the session's private telemetry registry. The server
// merges it into fan-in snapshots in ascending session-id order.
func (s *Session) Registry() *telemetry.Registry { return s.reg }

// Stats returns the session's transport counters (jitter buffer plus the
// demux's per-session corrupt count).
func (s *Session) Stats() stream.JitterStats { return s.buf.Stats() }

// Samples returns how many samples the session has processed.
func (s *Session) Samples() int64 { return s.pl.Samples() }

// Meters returns the session's accumulated ambient and residual powers.
func (s *Session) Meters() (noisePow, resPow float64) { return s.pl.Meters() }

// SessionOption customizes Open.
type SessionOption func(*Session)

// WithResidual captures the session's residual samples into dst, indexed
// by the session sample clock — the isolation suite's bit-exactness
// probe. dst must cover every sample the session will process.
func WithResidual(dst []float64) SessionOption {
	return func(s *Session) { s.residual = dst }
}

// sessionBuffer is the session's face of the shared frame pool: it
// decodes datagrams into pooled frames, feeds the jitter buffer, and
// implements graph.FrameBuffer for the session's ReceiverSource. The
// jitter buffer's release hook returns every retained frame to the pool;
// Close (reached via Pipeline.Close → ReceiverSource.Close) drains the
// rest.
type sessionBuffer struct {
	jb   *stream.JitterBuffer
	pool *framePool

	ctrFrames   *telemetry.Counter
	ctrCorrupt  *telemetry.Counter
	corruptHere uint64
}

func newSessionBuffer(depth int, pool *framePool, reg *telemetry.Registry) (*sessionBuffer, error) {
	jb, err := stream.NewJitterBuffer(depth)
	if err != nil {
		return nil, err
	}
	b := &sessionBuffer{
		jb:         jb,
		pool:       pool,
		ctrFrames:  reg.Counter("fleet.session.frames_in"),
		ctrCorrupt: reg.Counter("fleet.session.corrupt"),
	}
	jb.SetRelease(pool.put)
	return b, nil
}

// ingest decodes one inner-frame payload into a pooled frame and pushes
// it. Rejected frames (corrupt, late, duplicate) go straight back to the
// pool — the jitter buffer never saw or already refused them.
func (b *sessionBuffer) ingest(payload []byte) error {
	f := b.pool.get()
	if err := f.UnmarshalInto(payload); err != nil {
		b.corruptHere++
		b.ctrCorrupt.Inc()
		b.pool.put(f)
		return err
	}
	b.ctrFrames.Inc()
	if !b.jb.Push(f) {
		b.pool.put(f)
	}
	return nil
}

// PopMask implements graph.FrameBuffer.
func (b *sessionBuffer) PopMask(dst []float64, mask []bool) int { return b.jb.PopMask(dst, mask) }

// Stats implements graph.FrameBuffer, folding in the demux-level corrupt
// count the jitter buffer never sees.
func (b *sessionBuffer) Stats() stream.JitterStats {
	st := b.jb.Stats()
	st.FramesCorrupt = b.corruptHere
	return st
}

// Buffered implements graph.FrameBuffer.
func (b *sessionBuffer) Buffered() int { return b.jb.Buffered() }

// Recovered implements graph.FrameBuffer (the fleet envelope carries no
// FEC today).
func (b *sessionBuffer) Recovered() uint64 { return 0 }

// Close hands every buffered frame back to the pool.
func (b *sessionBuffer) Close() error {
	b.jb.Reset()
	return nil
}

// Config tunes a Server.
type Config struct {
	// Shards is the ProcessTick fan-out: sessions are partitioned into
	// this many contiguous id-ordered chunks, each driven by its own
	// goroutine. 0 or 1 means sequential — the zero-allocation mode, since
	// the shard fan-out itself costs a few allocations per tick.
	Shards int
	// Lifecycle tunes the overload watchdog and pressure ladder
	// (lifecycle.go). The zero value arms the watchdog with defaults.
	Lifecycle LifecycleConfig
}

// Server multiplexes cancellation sessions.
type Server struct {
	mu       sync.RWMutex
	sessions map[uint32]*Session
	order    []uint32 // ascending ids: the deterministic iteration order
	shards   int

	pool  *framePool
	cache *memo

	// Lifecycle state (lifecycle.go): the ladder itself lives in lc; the
	// current rung and its change epoch are mirrored into atomics so the
	// per-session tick path reads them lock-free, and draining gates
	// admissions once Drain has begun.
	lc            lifecycle
	pressure      atomic.Int32
	pressureEpoch atomic.Uint64
	draining      atomic.Bool
	ticks         atomic.Int64

	reg         *telemetry.Registry
	retired     *telemetry.Registry // closed sessions' registries, pre-merged
	gSessions   *telemetry.Gauge
	gPressure   *telemetry.Gauge
	gLateEWMA   *telemetry.Gauge
	ctrBlocks   *telemetry.Counter
	ctrMiss     *telemetry.Counter
	ctrFrames   *telemetry.Counter
	ctrBadEnv   *telemetry.Counter
	ctrUnknown  *telemetry.Counter
	ctrQuar     *telemetry.Counter
	ctrQuarDrop *telemetry.Counter
	ctrShed     *telemetry.Counter
	ctrRefused  *telemetry.Counter
	ctrDrained  *telemetry.Counter
	latenessNS  *telemetry.Histogram
}

// NewServer creates an empty session server.
func NewServer(cfg Config) *Server {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	reg := telemetry.NewRegistry()
	s := &Server{
		sessions:    make(map[uint32]*Session),
		shards:      shards,
		pool:        newFramePool(),
		cache:       sharedSetup,
		lc:          lifecycle{cfg: cfg.Lifecycle.withDefaults()},
		reg:         reg,
		retired:     telemetry.NewRegistry(),
		gSessions:   reg.Gauge("fleet.sessions"),
		gPressure:   reg.Gauge("fleet.pressure_state"),
		gLateEWMA:   reg.Gauge("fleet.tick_lateness_ewma_ns"),
		ctrBlocks:   reg.Counter("fleet.blocks"),
		ctrMiss:     reg.Counter("fleet.deadline_miss"),
		ctrFrames:   reg.Counter("fleet.frames_in"),
		ctrBadEnv:   reg.Counter("fleet.bad_envelope"),
		ctrUnknown:  reg.Counter("fleet.unknown_session"),
		ctrQuar:     reg.Counter("fleet.quarantined"),
		ctrQuarDrop: reg.Counter("fleet.quarantined_frames"),
		ctrShed:     reg.Counter("fleet.shed"),
		ctrRefused:  reg.Counter("fleet.refused"),
		ctrDrained:  reg.Counter("fleet.drained"),
		latenessNS:  reg.Histogram("fleet.tick_lateness_ns", telemetry.HistogramOpts{Lo: 1e3, Ratio: 2, Buckets: 26}),
	}
	// Publish the starting rung: merges skip never-set gauges, and the
	// pressure state should be visible even for a fleet that never leaves
	// NORMAL.
	s.gPressure.Set(float64(PressureNormal))
	return s
}

// admit checks the lifecycle admission gates: a draining server is
// handing off, a shedding one is overloaded; neither accepts sessions.
func (s *Server) admit() error {
	if s.draining.Load() {
		return ErrDraining
	}
	if PressureState(s.pressure.Load()) == PressureShedding {
		s.ctrRefused.Inc()
		return ErrOverloaded
	}
	return nil
}

// Open builds a session for id from profile and registers it. The heavy
// setup — secondary-path calibration, room pre-renders — is served from
// the cross-session memo cache when any session has computed it before.
// While the server is draining or shedding, Open refuses with ErrDraining
// or ErrOverloaded (match with errors.Is).
func (s *Server) Open(id uint32, profile Profile, opts ...SessionOption) (*Session, error) {
	if err := s.admit(); err != nil {
		return nil, err
	}
	p, err := profile.withDefaults()
	if err != nil {
		return nil, err
	}

	// Effective acoustic channel: room ⊛ multipath when a room is set.
	chanIR := p.ChannelIR
	if len(p.RoomIR) > 0 {
		chanIR, err = s.cache.roomRender(p.RoomIR, p.ChannelIR)
		if err != nil {
			return nil, err
		}
	}
	// ĥ_se: the true chain, or a memoized calibration probe of it.
	secEst := p.SecondaryIR
	if p.EstimateSecondary {
		secEst, err = s.cache.secondaryEstimate(p.SecondaryIR, p.EstimateNoiseRMS, p.EstimateSeed)
		if err != nil {
			return nil, err
		}
	}

	reg := telemetry.NewRegistry()
	buf, err := newSessionBuffer(p.JitterDepth, s.pool, reg)
	if err != nil {
		return nil, err
	}
	delay, err := dsp.NewDelayLine(p.Lookahead)
	if err != nil {
		return nil, err
	}

	sess := &Session{
		ID:        id,
		profile:   p,
		buf:       buf,
		reg:       reg,
		ctrBlocks: reg.Counter("fleet.session.blocks"),
	}
	for _, opt := range opts {
		opt(sess)
	}

	gcfg := graph.Config{
		SampleRate: p.SampleRate,
		Lookahead:  p.Lookahead,
		Pipeline:   core.PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1},
		Canceller: graph.CancellerParams{
			CausalTaps:    p.CausalTaps,
			Mu:            p.Mu,
			SecondaryPath: secEst,
			LossAware:     !p.LossBlind,
		},
		MaxNonCausalTaps: p.MaxNonCausalTaps,
		Reference:        &graph.ReceiverSource{Buf: buf},
		Ambient:          &graph.DerivedAmbient{Delay: delay, Channel: dsp.NewStreamConvolver(chanIR)},
		SecondaryIR:      p.SecondaryIR,
		Residual:         sess.residual,
	}
	if p.FDAFBlock > 0 {
		gcfg.FDAF = &graph.FDAFParams{BlockSize: p.FDAFBlock, Mu: p.FDAFMu}
	}
	pl, err := graph.Build(gcfg)
	if err != nil {
		return nil, err
	}
	sess.pl = pl

	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the lock: the ladder may have shed or a drain begun
	// while the session was being built.
	if err := s.admit(); err != nil {
		pl.Close()
		return nil, err
	}
	if _, dup := s.sessions[id]; dup {
		pl.Close()
		return nil, fmt.Errorf("fleet: session %d already open", id)
	}
	// Adopt the current pressure posture at birth (a session opened under
	// DEGRADED starts with the shrunken window); later rung changes are
	// picked up by applyPressure on the session's own ticks.
	sess.pressureSeen = s.pressureEpoch.Load()
	if PressureState(s.pressure.Load()) >= PressureDegraded {
		n := int(s.lc.cfg.DegradedFraction * float64(pl.NonCausalTaps))
		switch {
		case pl.LANC != nil:
			pl.LANC.LimitNonCausal(n)
		case pl.FDAF != nil:
			pl.FDAF.LimitNonCausal(n)
		}
	}
	sess.lastFrame.Store(s.ticks.Load())
	s.sessions[id] = sess
	i := sort.Search(len(s.order), func(k int) bool { return s.order[k] > id })
	s.order = append(s.order, 0)
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = id
	s.gSessions.Set(float64(len(s.sessions)))
	return sess, nil
}

// CloseSession tears a session down: the pipeline closes (draining the
// session's buffered frames back to the pool) and the session's registry
// is folded into the server's retired aggregate so its counters survive.
func (s *Server) CloseSession(id uint32) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("fleet: session %d not open", id)
	}
	delete(s.sessions, id)
	i := sort.Search(len(s.order), func(k int) bool { return s.order[k] >= id })
	s.order = append(s.order[:i], s.order[i+1:]...)
	s.gSessions.Set(float64(len(s.sessions)))
	s.mu.Unlock()

	err := sess.pl.Close()
	s.mu.Lock()
	s.retired.Merge(sess.reg)
	s.mu.Unlock()
	return err
}

// Close tears down every open session; the first error wins.
func (s *Server) Close() error {
	s.mu.RLock()
	ids := append([]uint32(nil), s.order...)
	s.mu.RUnlock()
	var first error
	for _, id := range ids {
		if err := s.CloseSession(id); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sessions returns how many sessions are open.
func (s *Server) Sessions() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

// Lookup returns the open session with the given id, or nil.
func (s *Server) Lookup(id uint32) *Session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[id]
}

// Ingest demultiplexes one fleet datagram — one enveloped record or a
// coalesced batch of them — into the addressed sessions' jitter buffers.
// Malformed envelopes are counted (fleet.bad_envelope) and reported; a
// corrupt inner frame is charged to the addressed session. Records for
// unknown session ids are counted (fleet.unknown_session) but are NOT an
// error: under churn a frame racing its session's close is expected
// traffic, and treating it as fatal would abort load generators and
// relays mid-storm. Frames addressed to a quarantined session are dropped
// and counted (fleet.quarantined_frames). A panic while decoding into a
// session quarantines that session and the walk continues. An unknown id
// or corrupt frame does not stop the walk — later records in the batch
// still land — but a malformed envelope does (boundaries past it cannot
// be trusted). The first error is reported. The happy path is
// allocation-free: each payload is decoded into a pooled frame in place.
func (s *Server) Ingest(datagram []byte) error {
	if len(datagram) == 0 {
		s.ctrBadEnv.Inc()
		return fmt.Errorf("fleet: empty datagram")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var first error
	for len(datagram) > 0 {
		id, payload, rest, err := NextEnvelope(datagram)
		if err != nil {
			s.ctrBadEnv.Inc()
			if first == nil {
				first = err
			}
			break
		}
		datagram = rest
		sess := s.sessions[id]
		if sess == nil {
			s.ctrUnknown.Inc()
			continue
		}
		if sess.quarantined.Load() {
			s.ctrQuarDrop.Inc()
			continue
		}
		s.ctrFrames.Inc()
		if err := s.ingestSession(sess, payload); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ingestSession decodes one payload into a session with panic quarantine:
// a panic inside the decode or jitter-buffer path poisons only the
// addressed session, never the shared ingest loop.
func (s *Server) ingestSession(sess *Session, payload []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			sess.quarantine(fmt.Sprintf("ingest: %v", r))
			s.ctrQuar.Inc()
			err = nil
		}
	}()
	if sess.ingestProbe != nil {
		sess.ingestProbe(payload)
	}
	if err := sess.buf.ingest(payload); err != nil {
		return err
	}
	sess.lastFrame.Store(s.ticks.Load())
	return nil
}

// ProcessTick advances every session by one frame-sized block, in
// ascending session-id order. With Shards <= 1 the walk is sequential
// and allocation-free; otherwise the id-ordered slice is partitioned
// into contiguous chunks driven by shard goroutines. Sessions are
// shared-nothing, so both schedules produce identical output bits.
// Quarantined sessions are skipped; a session that panics mid-tick is
// quarantined and its shard keeps ticking its neighbors. Under
// PressureShedding, sessions starved past the idle horizon are reaped
// after the tick (counted fleet.shed).
func (s *Server) ProcessTick() error {
	s.mu.RLock()
	err := s.tickAllLocked()
	var reap []uint32
	if PressureState(s.pressure.Load()) == PressureShedding && s.lc.cfg.IdleReapTicks > 0 {
		horizon := s.ticks.Load() - int64(s.lc.cfg.IdleReapTicks)
		for _, id := range s.order {
			if s.sessions[id].lastFrame.Load() < horizon {
				reap = append(reap, id)
			}
		}
	}
	s.ticks.Add(1)
	s.mu.RUnlock()
	for _, id := range reap {
		if s.CloseSession(id) == nil {
			s.ctrShed.Inc()
		}
	}
	return err
}

// tickAllLocked runs the tick schedule under the already-held read lock.
func (s *Server) tickAllLocked() error {
	if s.shards <= 1 || len(s.order) < 2 {
		for _, id := range s.order {
			if err := s.tickSession(s.sessions[id]); err != nil {
				return err
			}
		}
		return nil
	}
	shards := s.shards
	if shards > len(s.order) {
		shards = len(s.order)
	}
	errs := make([]error, shards)
	var wg sync.WaitGroup
	per := (len(s.order) + shards - 1) / shards
	for w := 0; w < shards; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(s.order) {
			hi = len(s.order)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w int, ids []uint32) {
			defer wg.Done()
			for _, id := range ids {
				if err := s.tickSession(s.sessions[id]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w, s.order[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// tickSession runs one session block. The jitter buffer fills any gap
// with concealed zeros, so a block is always full-length — a session
// never stalls the tick. A panic anywhere inside the session's pipeline
// quarantines that one session — the counter fleet.quarantined ticks, the
// panic value is retained on the session, and the caller's walk continues
// with the next session — so a poisoned session costs the fleet one ear,
// not the process.
func (s *Server) tickSession(sess *Session) (err error) {
	if sess.quarantined.Load() {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			sess.quarantine(fmt.Sprintf("tick: %v", r))
			s.ctrQuar.Inc()
			err = nil
		}
	}()
	sess.applyPressure(s)
	if sess.tickProbe != nil {
		sess.tickProbe(sess.ctrBlocks.Value())
	}
	n := sess.profile.FrameSamples
	if sess.pl.FDAF != nil {
		// The FDAF path processes fixed-size sub-blocks; FDAFBlock divides
		// FrameSamples by construction.
		for done := 0; done < n; done += sess.profile.FDAFBlock {
			if _, err := sess.pl.ProcessBlock(0); err != nil {
				return err
			}
		}
	} else if _, err := sess.pl.ProcessBlock(n); err != nil {
		return err
	}
	sess.ctrBlocks.Inc()
	s.ctrBlocks.Inc()
	return nil
}

// ObserveTick records one paced tick's completion lateness relative to
// the *next* block deadline: lateness <= 0 means the tick beat the frame
// period (no miss); lateness > 0 means every session in the tick missed
// its block deadline. The pacer (cmd/mutefleet's paced loop) calls this
// once per tick. It also feeds the overload watchdog: the smoothed
// lateness drives the fleet-wide pressure ladder (lifecycle.go), and a
// rung change bumps the pressure epoch that sessions re-read on their
// next tick.
func (s *Server) ObserveTick(latenessNS int64) {
	if latenessNS > 0 {
		s.mu.RLock()
		s.ctrMiss.Add(int64(len(s.sessions)))
		s.mu.RUnlock()
		s.latenessNS.Observe(float64(latenessNS))
	} else {
		s.latenessNS.Observe(0)
	}
	state, changed, ewma := s.lc.observe(latenessNS)
	s.gLateEWMA.Set(ewma)
	if changed {
		s.pressure.Store(int32(state))
		s.pressureEpoch.Add(1)
		s.gPressure.Set(float64(state))
	}
}

// PoolStats returns the frame pool's lifetime traffic.
func (s *Server) PoolStats() (news, gets, puts int64) { return s.pool.counters() }

// CacheStats returns the cross-session setup cache's hit/miss counters.
func (s *Server) CacheStats() (hits, misses uint64) { return s.cache.stats() }

// Registry returns the server-level registry (fleet.* metrics).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// MergeTelemetry folds the fleet's full metric fan-in into dst: the
// server registry, the retired-session aggregate, then every open
// session's registry in ascending session-id order. The order is fixed,
// so the merged snapshot is deterministic for any shard count — the same
// contract the experiment runner's worker pool keeps.
func (s *Server) MergeTelemetry(dst *telemetry.Registry) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	news, gets, puts := s.pool.counters()
	s.reg.Gauge("fleet.pool.news").Set(float64(news))
	s.reg.Gauge("fleet.pool.gets").Set(float64(gets))
	s.reg.Gauge("fleet.pool.puts").Set(float64(puts))
	dst.Merge(s.reg)
	dst.Merge(s.retired)
	for _, id := range s.order {
		dst.Merge(s.sessions[id].reg)
	}
}
