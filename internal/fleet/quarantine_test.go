package fleet

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"mute/internal/stream"
)

// poisonID is the deliberately panicking session in the quarantine suite
// — outside every other suite's id ranges.
const poisonID uint32 = 999999

// runQuarantineFleet drives the target plus `peers` impaired neighbors —
// every session capturing its residual — and optionally a poisoned
// session whose tick probe panics at block 5. It returns the residuals of
// the healthy sessions (target first, then peers in id order) and the
// server for post-run inspection; the server is closed via t.Cleanup.
func runQuarantineFleet(t *testing.T, peers, blocks int, poison bool) ([][]float64, *Server) {
	t.Helper()
	srv := NewServer(Config{Shards: 4})
	t.Cleanup(func() { srv.Close() })
	p := lightProfile()
	residuals := make([][]float64, 0, peers+1)
	open := func(id uint32, faults bool) *simUser {
		dst := make([]float64, blocks*p.FrameSamples)
		residuals = append(residuals, dst)
		if _, err := srv.Open(id, p, WithResidual(dst)); err != nil {
			t.Fatal(err)
		}
		if faults {
			return newSimUser(t, id, p.FrameSamples, peerFaults(id))
		}
		return newSimUser(t, id, p.FrameSamples, targetFaults())
	}
	users := []*simUser{open(targetID, false)}
	for i := 0; i < peers; i++ {
		users = append(users, open(uint32(1000+i), true))
	}
	if poison {
		if _, err := srv.Open(poisonID, p, WithTickProbe(func(block int64) {
			if block == 5 {
				panic("poisoned session state")
			}
		})); err != nil {
			t.Fatal(err)
		}
		users = append(users, newSimUser(t, poisonID, p.FrameSamples, peerFaults(poisonID)))
	}
	for b := 0; b < blocks; b++ {
		var wg sync.WaitGroup
		for _, u := range users {
			wg.Add(1)
			go func(u *simUser) {
				defer wg.Done()
				for _, d := range u.tick() {
					srv.Ingest(d)
				}
			}(u)
		}
		wg.Wait()
		if err := srv.ProcessTick(); err != nil {
			t.Fatal(err)
		}
	}
	return residuals, srv
}

// TestPoisonSessionContainment is the quarantine acceptance test: in a
// 1000-session fleet with one session that panics mid-tick, the other 999
// keep residuals bit-identical to a run where the poisoned session never
// existed, the process survives (under -race via CI), the panic is
// counted and retained, and the poisoned session alone stops ticking.
func TestPoisonSessionContainment(t *testing.T) {
	peers := 999 - 1 // target + peers = 999 healthy sessions
	const blocks = 16
	if testing.Short() || raceEnabled {
		peers = 99 - 1
	}
	want, _ := runQuarantineFleet(t, peers, blocks, false)
	got, srv := runQuarantineFleet(t, peers, blocks, true)
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("healthy session %d's residual diverged beside a poisoned peer", i)
		}
	}

	sess := srv.Lookup(poisonID)
	if sess == nil {
		t.Fatal("poisoned session vanished instead of quarantining")
	}
	if !sess.Quarantined() {
		t.Fatal("poisoned session not marked quarantined")
	}
	if lp := sess.LastPanic(); !strings.Contains(lp, "poisoned session state") {
		t.Fatalf("LastPanic = %q, want the recovered panic value", lp)
	}
	snap := srv.reg.Snapshot()
	if got := snap.Counters["fleet.quarantined"]; got != 1 {
		t.Fatalf("fleet.quarantined = %d, want 1", got)
	}
	// The session ticked blocks 0-4, panicked at 5, then stopped.
	if got := sess.Registry().Snapshot().Counters["fleet.session.blocks"]; got != 5 {
		t.Fatalf("poisoned session ticked %d blocks after quarantine, want 5", got)
	}
}

// TestIngestPanicQuarantine pins the ingest-side recovery: a panic while
// decoding into a session poisons only that session — later datagrams for
// it are dropped and counted, ticks skip it, and its neighbors keep
// serving.
func TestIngestPanicQuarantine(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()
	p := lightProfile()
	sess, err := srv.Open(1, p, WithIngestProbe(func([]byte) { panic("poisoned decode") }))
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := srv.Open(2, p)
	if err != nil {
		t.Fatal(err)
	}
	u1 := newSimUser(t, 1, p.FrameSamples, targetFaults())
	u2 := newSimUser(t, 2, p.FrameSamples, targetFaults())
	for b := 0; b < 4; b++ {
		for _, u := range []*simUser{u1, u2} {
			for _, d := range u.tick() {
				if err := srv.Ingest(d); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := srv.ProcessTick(); err != nil {
			t.Fatal(err)
		}
	}
	if !sess.Quarantined() {
		t.Fatal("ingest panic did not quarantine the session")
	}
	if lp := sess.LastPanic(); !strings.Contains(lp, "ingest: poisoned decode") {
		t.Fatalf("LastPanic = %q", lp)
	}
	snap := srv.reg.Snapshot()
	if got := snap.Counters["fleet.quarantined"]; got != 1 {
		t.Fatalf("fleet.quarantined = %d, want 1", got)
	}
	if got := snap.Counters["fleet.quarantined_frames"]; got == 0 {
		t.Fatal("datagrams for the quarantined session were not counted dropped")
	}
	if got := sess.Registry().Snapshot().Counters["fleet.session.blocks"]; got != 0 {
		t.Fatalf("quarantined session ticked %d blocks", got)
	}
	if got := healthy.Registry().Snapshot().Counters["fleet.session.blocks"]; got != 4 {
		t.Fatalf("healthy neighbor ticked %d blocks, want 4", got)
	}
}

// TestUnknownSessionCountOnly is the churn regression: a frame racing its
// session's CloseSession must be counted fleet.unknown_session, not
// returned as an error — and later records in the same coalesced datagram
// must still land.
func TestUnknownSessionCountOnly(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()
	p := lightProfile()
	if _, err := srv.Open(1, p); err != nil {
		t.Fatal(err)
	}
	live, err := srv.Open(2, p)
	if err != nil {
		t.Fatal(err)
	}
	u1 := newSimUser(t, 1, p.FrameSamples, stream.LossParams{})
	u2 := newSimUser(t, 2, p.FrameSamples, stream.LossParams{})

	// The frame is generated while session 1 is open, but lands after the
	// close — the race under churn.
	inflight := u1.tick()
	if err := srv.CloseSession(1); err != nil {
		t.Fatal(err)
	}
	for _, d := range inflight {
		if err := srv.Ingest(d); err != nil {
			t.Fatalf("frame racing CloseSession returned error %v, want count-only", err)
		}
	}
	if got := srv.reg.Snapshot().Counters["fleet.unknown_session"]; got != 1 {
		t.Fatalf("fleet.unknown_session = %d, want 1", got)
	}

	// Coalesced batch: unknown record first, live record second — the live
	// one must still land.
	batch := append([]byte(nil), u1.tick()[0]...)
	batch = append(batch, u2.tick()[0]...)
	if err := srv.Ingest(batch); err != nil {
		t.Fatal(err)
	}
	if got := live.Stats().FramesReceived; got != 1 {
		t.Fatalf("live record after an unknown-session record did not land (frames=%d)", got)
	}
}
