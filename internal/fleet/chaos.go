package fleet

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"mute/internal/stream"
	"mute/internal/telemetry"
)

// This file is the chaos harness: one deterministic run that throws every
// lifecycle hazard at the fleet at once — session churn storms, malformed
// datagram floods, a deliberately poisoned session, an overload spike
// that walks the pressure ladder up and back down, and a mid-run
// drain/adopt handoff between two servers — then audits the wreckage
// against invariants instead of golden outputs:
//
//	isolation   — the target session's residual is bit-identical to a
//	              "quiet" run with the same tick/drain/overload schedule
//	              but none of the chaos, so nothing the other sessions
//	              did (or the floods, or the poison) leaked into it;
//	conservation — every server's fleet.frames_in equals the sum of its
//	              sessions' frames_in + corrupt, and both frame pools end
//	              with gets == puts: no frame is lost or double-counted
//	              through churn, quarantine, shedding, or handoff;
//	containment — exactly the poisoned session quarantines, with its
//	              panic value retained;
//	hygiene     — the goroutine census is stable across the whole run.
//
// Everything is seeded and clock-free (ObserveTick lateness comes from a
// schedule, not wall time), so a failure replays exactly under -race or a
// debugger from the same ChaosConfig.

// Chaos session-id ranges. The target is the audited session; peers are
// long-lived background sessions; churn ids cycle through open/close
// storms; the mute session never sends a frame (idle-reap bait); the
// poisoned session's tick probe panics mid-run.
const (
	chaosTargetID = targetID
	chaosPeerBase = 1000
	chaosChurnID  = 100000
	chaosMuteID   = 200000
	chaosPoisonID = 300000
)

// targetID is the session whose residual the isolation and chaos suites
// pin (also used by the fleet test harness).
const targetID uint32 = 7

// ChaosConfig tunes a chaos run. The zero value takes every default.
type ChaosConfig struct {
	// Peers is the number of long-lived background sessions (default 24).
	Peers int
	// Blocks is the total tick count across both servers (default 256).
	Blocks int
	// Seed offsets every user's impairment seed (default 1).
	Seed uint64
	// Shards is each server's tick fan-out (default 4, so the shard
	// goroutines run under -race).
	Shards int
	// ChurnEvery opens a fresh churn session — and close-storms the
	// previous one, then fires a datagram at the dead id — every this many
	// blocks (default 8).
	ChurnEvery int
	// FloodEvery injects a malformed-datagram flood every this many blocks
	// (default 4).
	FloodEvery int
	// PoisonAtBlock is the tick at which the poisoned session's probe
	// panics (default Blocks/4).
	PoisonAtBlock int
	// SpikeFrom/SpikeUntil bound the synthetic overload spike fed to
	// ObserveTick (defaults Blocks/8 .. Blocks/8 + 32): long enough to
	// walk NORMAL → DEGRADED → SHEDDING, with recovery headroom before the
	// drain.
	SpikeFrom, SpikeUntil int
	// DrainAtBlock is the tick at which server A drains into server B
	// (default 5*Blocks/8).
	DrainAtBlock int
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Peers <= 0 {
		c.Peers = 24
	}
	if c.Blocks <= 0 {
		c.Blocks = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.ChurnEvery <= 0 {
		c.ChurnEvery = 8
	}
	if c.FloodEvery <= 0 {
		c.FloodEvery = 4
	}
	if c.PoisonAtBlock <= 0 {
		c.PoisonAtBlock = c.Blocks / 4
	}
	if c.SpikeFrom <= 0 {
		c.SpikeFrom = c.Blocks / 8
	}
	if c.SpikeUntil <= c.SpikeFrom {
		c.SpikeUntil = c.SpikeFrom + 32
	}
	if c.DrainAtBlock <= 0 {
		c.DrainAtBlock = 5 * c.Blocks / 8
	}
	return c
}

// chaosLifecycle is the ladder tuning chaos runs use: aggressive idle
// reaping and a short promotion dwell, so one run can ride the ladder all
// the way up and back down to NORMAL before the drain.
func chaosLifecycle() LifecycleConfig {
	return LifecycleConfig{IdleReapTicks: 8, UpDwellTicks: 16}
}

// ChaosResult is a chaos run's audit summary.
type ChaosResult struct {
	Blocks      int      `json:"blocks"`
	Peers       int      `json:"peers"`
	Churned     int64    `json:"churned"`
	Quarantined int64    `json:"quarantined"`
	Shed        int64    `json:"shed"`
	Drained     int64    `json:"drained"`
	Adopted     int      `json:"adopted"`
	Refused     int64    `json:"refused"`
	Unknown     int64    `json:"unknown_session"`
	BadEnvelope int64    `json:"bad_envelope"`
	FramesIn    int64    `json:"frames_in"`
	MaxPressure string   `json:"max_pressure"`
	Violations  []string `json:"violations,omitempty"`
}

// Ok reports whether every invariant held.
func (r *ChaosResult) Ok() bool { return len(r.Violations) == 0 }

// chaosFaults is a chaos user's impairment template: enough loss,
// reordering, and duplication to keep the demux honest, mild enough that
// no healthy session ever goes idle past the reap horizon.
func chaosFaults(id uint32, seed uint64) stream.LossParams {
	return stream.LossParams{
		Seed: seed + uint64(id), Loss: 0.05, MeanBurst: 2,
		Duplicate: 0.02, Reorder: 0.04, JitterProb: 0.08, MaxJitter: 2,
	}
}

// latenessSchedule is the synthetic overload signal: a flat 20 ms spike
// inside [SpikeFrom, SpikeUntil), on-time everywhere else. Both the chaos
// and quiet runs feed the same schedule, so the ladder walks the same
// rungs at the same ticks in both.
func latenessSchedule(cfg ChaosConfig, block int) int64 {
	if block >= cfg.SpikeFrom && block < cfg.SpikeUntil {
		return 20e6
	}
	return -1e6
}

// chaosRun executes the schedule once. quiet strips every hazard — no
// peers, churn, floods, poison, or mute session — but keeps the tick
// count, the lateness schedule, and the drain/adopt handoff, producing
// the reference residual the isolation invariant compares against.
func chaosRun(cfg ChaosConfig, quiet bool, res *ChaosResult) ([]float64, error) {
	p := lightChaosProfile()
	frame := p.FrameSamples
	residual := make([]float64, cfg.Blocks*frame)

	srvA := NewServer(Config{Shards: cfg.Shards, Lifecycle: chaosLifecycle()})
	srvB := NewServer(Config{Shards: cfg.Shards, Lifecycle: chaosLifecycle()})
	srv := srvA

	if _, err := srvA.Open(chaosTargetID, p, WithResidual(residual)); err != nil {
		return nil, err
	}
	target, err := newLoadUser(chaosTargetID, frame, chaosFaults(chaosTargetID, cfg.Seed), 0)
	if err != nil {
		return nil, err
	}
	users := []*loadUser{target}

	var poisoned *Session
	if !quiet {
		for i := 0; i < cfg.Peers; i++ {
			id := uint32(chaosPeerBase + i)
			if _, err := srvA.Open(id, p); err != nil {
				return nil, err
			}
			u, err := newLoadUser(id, frame, chaosFaults(id, cfg.Seed), 0)
			if err != nil {
				return nil, err
			}
			if i%3 == 0 {
				u.skewPPM = 150
			}
			users = append(users, u)
		}
		// The mute session never sends a frame: idle-reap bait for the
		// SHEDDING rung.
		if _, err := srvA.Open(chaosMuteID, p); err != nil {
			return nil, err
		}
		// The poisoned session panics from its own tick probe mid-run.
		poisoned, err = srvA.Open(chaosPoisonID, p, WithTickProbe(func(block int64) {
			if block == int64(cfg.PoisonAtBlock) {
				panic("chaos: poisoned session profile")
			}
		}))
		if err != nil {
			return nil, err
		}
		pu, err := newLoadUser(chaosPoisonID, frame, chaosFaults(chaosPoisonID, cfg.Seed), 0)
		if err != nil {
			return nil, err
		}
		users = append(users, pu)
	}

	ingest := func(d []byte) error { return srv.Ingest(d) }
	var churnUser *loadUser
	var churnID uint32
	maxPressure := PressureNormal

	for b := 0; b < cfg.Blocks; b++ {
		for _, u := range users {
			if err := u.tick(ingest); err != nil {
				return nil, err
			}
		}
		if churnUser != nil {
			if err := churnUser.tick(ingest); err != nil {
				return nil, err
			}
		}
		if !quiet && b%cfg.FloodEvery == 0 {
			floodMalformed(srv, uint32(chaosPeerBase+b%cfg.Peers))
		}
		if !quiet && b%cfg.ChurnEvery == 0 {
			var err error
			churnUser, churnID, err = churnStorm(srv, p, frame, cfg.Seed, churnUser, churnID, res)
			if err != nil {
				return nil, err
			}
		}
		if b == cfg.DrainAtBlock {
			snap, err := srv.Drain(context.Background())
			if err != nil {
				return nil, err
			}
			wire, err := snap.Marshal()
			if err != nil {
				return nil, err
			}
			parsed, err := ParseSnapshot(wire)
			if err != nil {
				return nil, err
			}
			err = srvB.Adopt(parsed, func(id uint32) []SessionOption {
				if id == chaosTargetID {
					return []SessionOption{WithResidual(residual[b*frame:])}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			if res != nil {
				res.Adopted = len(parsed.Sessions)
			}
			churnUser = nil // its session drained into B; stop driving it
			srv = srvB
		}
		if err := srv.ProcessTick(); err != nil {
			return nil, err
		}
		srv.ObserveTick(latenessSchedule(cfg, b))
		if ps := srv.Pressure(); ps > maxPressure {
			maxPressure = ps
		}
	}

	if res != nil {
		res.MaxPressure = maxPressure.String()
		auditServers(srvA, srvB, poisoned, res)
	}
	if err := srvB.Close(); err != nil {
		return nil, err
	}
	if err := srvA.Close(); err != nil {
		return nil, err
	}
	if res != nil {
		auditPools(srvA, srvB, res)
	}
	return residual, nil
}

// lightChaosProfile mirrors the isolation suite's session shape: small
// taps so hundreds of sessions stay fast under -race.
func lightChaosProfile() Profile {
	p := DefaultProfile()
	p.CausalTaps = 16
	p.MaxNonCausalTaps = 8
	p.JitterDepth = 16
	return p
}

// floodMalformed fires the malformed-datagram arsenal at the server: bad
// magic, short envelope, version skew, and a truncated inner frame
// charged to a live session. None may take down the server or leak a
// pooled frame.
func floodMalformed(srv *Server, victim uint32) {
	srv.Ingest([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04})
	srv.Ingest([]byte{0x4d})
	srv.Ingest([]byte{0x4d, 0x46, 0x99, 0, 0, 0, 1, 0, 0})
	srv.Ingest(AppendEnvelope(nil, victim, []byte{0x01, 0x02, 0x03}))
	srv.Ingest(nil)
}

// churnStorm closes the previous churn session (then fires one more
// datagram at the dead id — the frame-racing-close case, which must count
// fleet.unknown_session, not error) and opens the next churn session.
// Opens refused by the ladder (ErrOverloaded) or a drain (ErrDraining)
// are part of the chaos, not failures.
func churnStorm(srv *Server, p Profile, frame int, seed uint64, prev *loadUser, prevID uint32, res *ChaosResult) (*loadUser, uint32, error) {
	ingest := func(d []byte) error { return srv.Ingest(d) }
	if prev != nil {
		if err := srv.CloseSession(prevID); err == nil {
			if err := prev.tick(ingest); err != nil { // lands after close: unknown session
				return nil, 0, err
			}
		}
	}
	id := prevID + 1
	if id < chaosChurnID {
		id = chaosChurnID
	}
	if _, err := srv.Open(id, p); err != nil {
		return nil, id, nil // shedding or draining: storm passes this round
	}
	if res != nil {
		res.Churned++
	}
	u, err := newLoadUser(id, frame, chaosFaults(id, seed), 0)
	if err != nil {
		return nil, 0, err
	}
	return u, id, nil
}

// auditServers checks the containment and conservation invariants while
// both servers' registries are still live.
func auditServers(srvA, srvB *Server, poisoned *Session, res *ChaosResult) {
	for _, srv := range []struct {
		name string
		s    *Server
	}{{"A", srvA}, {"B", srvB}} {
		merged := telemetry.NewRegistry()
		srv.s.MergeTelemetry(merged)
		snap := merged.Snapshot()
		in := snap.Counters["fleet.frames_in"]
		accounted := snap.Counters["fleet.session.frames_in"] + snap.Counters["fleet.session.corrupt"]
		if in != accounted {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"server %s: fleet.frames_in=%d but sessions account for %d", srv.name, in, accounted))
		}
		res.FramesIn += in
		res.Quarantined += snap.Counters["fleet.quarantined"]
		res.Shed += snap.Counters["fleet.shed"]
		res.Drained += snap.Counters["fleet.drained"]
		res.Refused += snap.Counters["fleet.refused"]
		res.Unknown += snap.Counters["fleet.unknown_session"]
		res.BadEnvelope += snap.Counters["fleet.bad_envelope"]
	}
	if res.Quarantined != 1 {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"fleet.quarantined = %d, want exactly the poisoned session", res.Quarantined))
	}
	if poisoned != nil && !poisoned.Quarantined() {
		res.Violations = append(res.Violations, "poisoned session not marked quarantined")
	}
	if poisoned != nil && poisoned.LastPanic() == "" {
		res.Violations = append(res.Violations, "quarantined session lost its panic value")
	}
	if res.Shed == 0 {
		res.Violations = append(res.Violations, "SHEDDING never reaped the idle mute session")
	}
	if res.BadEnvelope == 0 {
		res.Violations = append(res.Violations, "malformed floods were not counted")
	}
	if res.Unknown == 0 {
		res.Violations = append(res.Violations, "close-racing datagrams were not counted unknown")
	}
	if srvB.Lookup(chaosTargetID) == nil {
		res.Violations = append(res.Violations, "target session did not survive the handoff")
	}
}

// auditPools checks frame conservation after both servers have closed
// every session: each pool's gets must equal its puts.
func auditPools(srvA, srvB *Server, res *ChaosResult) {
	for _, srv := range []struct {
		name string
		s    *Server
	}{{"A", srvA}, {"B", srvB}} {
		_, gets, puts := srv.s.PoolStats()
		if gets != puts {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"server %s frame pool unbalanced: %d gets, %d puts", srv.name, gets, puts))
		}
	}
}

// settledGoroutines samples the goroutine count until two consecutive
// reads agree, bounding the runtime's asynchronous wind-down.
func settledGoroutines() int {
	deadline := time.Now().Add(2 * time.Second)
	prev := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// RunChaos executes the chaos schedule twice — once with every hazard,
// once quiet — and audits the invariants. The returned result lists every
// violation; Ok() means the fleet survived everything the run threw at
// it with the target session's output untouched bit for bit.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	res := &ChaosResult{Blocks: cfg.Blocks, Peers: cfg.Peers}

	before := settledGoroutines()
	chaotic, err := chaosRun(cfg, false, res)
	if err != nil {
		return nil, err
	}
	after := settledGoroutines()
	if after > before {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"goroutines grew %d → %d across the chaos run", before, after))
	}

	quiet, err := chaosRun(cfg, true, nil)
	if err != nil {
		return nil, err
	}
	for i := range chaotic {
		if math.Float64bits(chaotic[i]) != math.Float64bits(quiet[i]) {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"target residual diverged from the quiet run at sample %d: chaos contaminated a healthy session", i))
			break
		}
	}
	if res.MaxPressure != PressureShedding.String() {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"overload spike peaked at %s, never reached SHEDDING", res.MaxPressure))
	}
	return res, nil
}
