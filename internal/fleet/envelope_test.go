package fleet

import (
	"bytes"
	"encoding/binary"
	"testing"

	"mute/internal/stream"
)

func validDatagram(t testing.TB, id uint32, seq uint32, ts uint64, n int) []byte {
	t.Helper()
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = float64(i%7) / 10
	}
	d, err := MarshalEnvelope(id, &stream.Frame{Seq: seq, Timestamp: ts, Samples: samples})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEnvelopeRoundTrip(t *testing.T) {
	want := &stream.Frame{Seq: 42, Timestamp: 4200, Samples: []float64{0.1, -0.5, 1}}
	d, err := MarshalEnvelope(77, want)
	if err != nil {
		t.Fatal(err)
	}
	id, payload, err := ParseEnvelope(d)
	if err != nil {
		t.Fatal(err)
	}
	if id != 77 {
		t.Fatalf("session id = %d, want 77", id)
	}
	wire, err := want.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, wire) {
		t.Fatal("inner frame bytes differ from stream.Frame wire format")
	}
	got, err := stream.Unmarshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != want.Seq || got.Timestamp != want.Timestamp || len(got.Samples) != len(want.Samples) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

func TestAppendEnvelopeReusesBuffer(t *testing.T) {
	frame := bytes.Repeat([]byte{0xAB}, 32)
	buf := make([]byte, 0, MaxDatagram)
	d := AppendEnvelope(buf, 5, frame)
	if &d[0] != &buf[:1][0] {
		t.Fatal("AppendEnvelope reallocated despite sufficient capacity")
	}
	if len(d) != EnvelopeOverhead+len(frame) {
		t.Fatalf("datagram length %d, want %d", len(d), EnvelopeOverhead+len(frame))
	}
	if allocs := testing.AllocsPerRun(100, func() {
		d = AppendEnvelope(d[:0], 5, frame)
	}); allocs != 0 {
		t.Fatalf("AppendEnvelope allocates %.1f times on the reuse path, want 0", allocs)
	}
}

func TestParseEnvelopeErrors(t *testing.T) {
	good := validDatagram(t, 1, 0, 0, 8)
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:EnvelopeOverhead-1],
		"bad magic":   append([]byte{0x00, 0x00}, good[2:]...),
		"bad version": append([]byte{0x4D, 0x46, 0xFF}, good[3:]...),
	}
	for name, d := range cases {
		if _, _, err := ParseEnvelope(d); err == nil {
			t.Errorf("%s: ParseEnvelope accepted a malformed datagram", name)
		}
	}
}

// TestCoalescedDatagram pins the batching contract end to end: records
// for several sessions packed into one datagram demux to their own
// buffers, a trailing truncated record is charged to the session its
// envelope addressed, and NextEnvelope finds the same boundaries the
// demux does.
func TestCoalescedDatagram(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()
	p := tinyProfile()
	for _, id := range []uint32{1, 2} {
		if _, err := srv.Open(id, p); err != nil {
			t.Fatal(err)
		}
	}
	d := validDatagram(t, 1, 0, 0, 16)
	d = append(d, validDatagram(t, 2, 0, 0, 16)...)
	d = append(d, validDatagram(t, 1, 1, 16, 16)...)

	var ids []uint32
	for rem := d; len(rem) > 0; {
		id, frame, rest, err := NextEnvelope(rem)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stream.Unmarshal(frame); err != nil {
			t.Fatalf("record for session %d did not decode: %v", id, err)
		}
		ids = append(ids, id)
		rem = rest
	}
	if want := []uint32{1, 2, 1}; len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 1 {
		t.Fatalf("record walk found sessions %v, want %v", ids, want)
	}

	if err := srv.Ingest(d); err != nil {
		t.Fatal(err)
	}
	if got := srv.Lookup(1).Stats().FramesReceived; got != 2 {
		t.Errorf("session 1 received %d frames from the batch, want 2", got)
	}
	if got := srv.Lookup(2).Stats().FramesReceived; got != 1 {
		t.Errorf("session 2 received %d frames from the batch, want 1", got)
	}

	// A batch whose last record is truncated: the two whole records land,
	// the stub is charged to the session its envelope addressed.
	d2 := validDatagram(t, 1, 2, 32, 16)
	d2 = append(d2, validDatagram(t, 2, 1, 16, 16)...)
	d2 = append(d2, validDatagram(t, 2, 2, 32, 16)[:EnvelopeOverhead+5]...)
	if err := srv.Ingest(d2); err == nil {
		t.Error("truncated trailing record went unreported")
	}
	if got := srv.Lookup(2).Stats().FramesCorrupt; got != 1 {
		t.Errorf("session 2 corrupt count = %d, want 1 (the truncated stub)", got)
	}
	if got := srv.Lookup(2).Stats().FramesReceived; got != 2 {
		t.Errorf("session 2 received %d frames, want 2", got)
	}
}

// tinyProfile keeps per-iteration fuzz setup cheap.
func tinyProfile() Profile {
	p := DefaultProfile()
	p.FrameSamples = 16
	p.Lookahead = 16
	p.JitterDepth = 4
	p.CausalTaps = 4
	p.MaxNonCausalTaps = 2
	return p
}

// FuzzFleetDemux throws arbitrary datagrams at a two-session server:
// whatever the bytes — truncated envelopes, corrupt inner frames,
// duplicate deliveries, ids of never-opened or just-closed sessions —
// the demux must not panic, must keep ticking, and must never let a
// datagram addressed elsewhere touch session 2's state.
func FuzzFleetDemux(f *testing.F) {
	f.Add(validDatagram(f, 1, 0, 0, 16))                // in-session delivery
	f.Add(validDatagram(f, 2, 3, 48, 16))               // the observed session
	f.Add(validDatagram(f, 99, 0, 0, 16))               // unknown session
	f.Add(validDatagram(f, 1, 0, 0, 16)[:20])           // truncated inner frame
	f.Add([]byte{})                                     // empty
	f.Add([]byte{0x4D, 0x46})                           // short envelope
	f.Add([]byte{0x4D, 0x46, 1, 0, 0, 0, 1})            // envelope only, no frame
	f.Add([]byte{0x00, 0x11, 1, 0, 0, 0, 1, 0x4D})      // bad magic
	f.Add([]byte{0x4D, 0x46, 9, 0, 0, 0, 1})            // bad version
	parity := validDatagram(f, 1, 5, 0, 16)
	parity[EnvelopeOverhead+3] = 1 | 4<<1 // flag the inner frame as FEC parity
	f.Add(parity)
	huge := validDatagram(f, 1, 0, 0, 16)
	binary.BigEndian.PutUint16(huge[EnvelopeOverhead+16:], 0xFFFF) // absurd sample count
	f.Add(huge)
	coalesced := append(validDatagram(f, 1, 4, 64, 16), validDatagram(f, 2, 4, 64, 16)...)
	f.Add(coalesced) // two records in one datagram

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := NewServer(Config{})
		defer srv.Close()
		p := tinyProfile()
		for _, id := range []uint32{1, 2} {
			if _, err := srv.Open(id, p); err != nil {
				t.Fatal(err)
			}
		}
		before := srv.Lookup(2).Stats()
		srv.Ingest(data) // first delivery: any error is fine, panics are not
		srv.Ingest(data) // duplicate delivery of the same datagram
		// Walk the datagram's records the way the demux does: only a record
		// addressed to session 2 may touch session 2.
		addressed2 := false
		for rem := data; len(rem) > 0; {
			id, _, rest, err := NextEnvelope(rem)
			if err != nil {
				break
			}
			if id == 2 {
				addressed2 = true
			}
			rem = rest
		}
		if after := srv.Lookup(2).Stats(); !addressed2 && after != before {
			t.Fatalf("datagram addressed elsewhere mutated session 2: %+v → %+v", before, after)
		}
		// A session that just closed is a stale id: the demux must route
		// its datagrams to the unknown-session counter, not a dead buffer.
		if err := srv.CloseSession(1); err != nil {
			t.Fatal(err)
		}
		srv.Ingest(data)
		if err := srv.ProcessTick(); err != nil {
			t.Fatal(err)
		}
		in := validDatagram(t, 2, 7, 7*16, 16)
		if err := srv.Ingest(in); err != nil {
			t.Fatalf("valid frame rejected after hostile datagrams: %v", err)
		}
		if err := srv.ProcessTick(); err != nil {
			t.Fatal(err)
		}
	})
}
