//go:build race

package fleet

// raceEnabled reports whether the race detector is compiled in. See
// race_off_test.go for why the allocation pins are skipped under -race.
const raceEnabled = true
