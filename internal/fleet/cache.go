package fleet

import (
	"math"
	"sync"

	"mute/internal/anc"
	"mute/internal/dsp"
)

// memo is the cross-session memoization cache: the serving-path
// generalization of the simulator's render cache (internal/sim,
// PR 1). A fleet opens thousands of sessions that mostly share a handful
// of acoustic profiles, and the expensive per-session setup — probing the
// secondary-path estimate ĥ_se, pre-rendering a room IR into the ambient
// channel — is a pure function of profile content. Keying on content
// (not profile identity) means two sessions configured independently with
// the same floats share one computation, and the cached slice is the
// exact output of the original call, so memoization is bit-invisible:
// a session served from the cache runs sample-for-sample identically to
// one that computed its own.
//
// Cached slices are shared across sessions and MUST be treated as
// read-only — which they are: graph.Build and core.New copy what they
// mutate and only ever read the configured IRs.
type memo struct {
	mu      sync.Mutex
	entries map[memoKey][]float64
	order   []memoKey
	cap     int
	hits    uint64
	misses  uint64
}

// memoKey identifies a computation by the content of its two float-slice
// inputs plus a kind tag; two independent 64-bit mixes and both lengths
// make accidental collisions implausible (~2^-128 per pair).
type memoKey struct {
	aHash, bHash uint64
	aLen, bLen   int
	kind         uint8
}

const (
	memoKindSecondaryEst = iota // anc.EstimateSecondaryPath over a profile's chain
	memoKindRoomRender          // room IR ⊛ multipath channel pre-render
)

func newMemo(capacity int) *memo {
	return &memo{entries: make(map[memoKey][]float64, capacity), cap: capacity}
}

// sharedSetup is the process-wide cross-session setup cache. Capacity 64
// covers dozens of distinct acoustic profiles; a fleet serving one or a
// few profiles uses one entry per computation kind.
var sharedSetup = newMemo(64)

// hashFloats mixes a float slice's raw bit patterns (splitmix-style
// xor-multiply-shift), matching the simulator's render-cache hashing.
func hashFloats(xs []float64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, x := range xs {
		h ^= math.Float64bits(x)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}

func (m *memo) memoized(a, b []float64, kind uint8, compute func() ([]float64, error)) ([]float64, error) {
	key := memoKey{hashFloats(a), hashFloats(b), len(a), len(b), kind}
	m.mu.Lock()
	if out, ok := m.entries[key]; ok {
		m.hits++
		m.mu.Unlock()
		return out, nil
	}
	m.misses++
	m.mu.Unlock()

	// Compute outside the lock: two sessions opening concurrently with the
	// same profile may duplicate the work, but both produce identical bits
	// and only one result is retained.
	out, err := compute()
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if cached, ok := m.entries[key]; ok {
		out = cached
	} else {
		if len(m.order) >= m.cap {
			oldest := m.order[0]
			m.order = m.order[1:]
			delete(m.entries, oldest)
		}
		m.entries[key] = out
		m.order = append(m.order, key)
	}
	m.mu.Unlock()
	return out, nil
}

// secondaryEstimate returns the calibrated ĥ_se for a profile's true
// secondary chain, memoized across every session that shares the chain.
func (m *memo) secondaryEstimate(secIR []float64, noiseRMS float64, seed uint64) ([]float64, error) {
	params := []float64{noiseRMS, float64(seed)}
	return m.memoized(secIR, params, memoKindSecondaryEst, func() ([]float64, error) {
		return anc.EstimateSecondaryPath(secIR, len(secIR)+8, 0, noiseRMS, seed)
	})
}

// roomRender returns the profile's effective ambient channel: the room IR
// convolved with the multipath channel, memoized. Sessions sharing a room
// share the pre-render the way the simulator's schemes share acoustic
// renders.
func (m *memo) roomRender(roomIR, channelIR []float64) ([]float64, error) {
	return m.memoized(roomIR, channelIR, memoKindRoomRender, func() ([]float64, error) {
		return dsp.Convolve(roomIR, channelIR), nil
	})
}

// stats reports lifetime hit/miss counters.
func (m *memo) stats() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// reset empties the cache (tests).
func (m *memo) reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = make(map[memoKey][]float64, m.cap)
	m.order = nil
	m.hits, m.misses = 0, 0
}
