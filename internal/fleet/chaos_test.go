package fleet

import (
	"strings"
	"testing"
)

// TestChaosInvariants runs the full chaos schedule — churn storms,
// malformed floods, a poisoned session, an overload spike, and a mid-run
// drain/adopt handoff — in-process, so CI's -race pass covers the same
// torture path the `mutefleet -chaos` smoke exercises. Peers is reduced
// from the CLI default to keep the -race -count=2 wall time sane; the
// schedule (spike, poison, drain) scales with Blocks, not Peers.
func TestChaosInvariants(t *testing.T) {
	cfg := ChaosConfig{Peers: 8, Blocks: 256, Seed: 1, Shards: 4}
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("chaos invariants violated:\n  %s", strings.Join(res.Violations, "\n  "))
	}
	if res.MaxPressure != PressureShedding.String() {
		t.Fatalf("peak pressure %s, want %s", res.MaxPressure, PressureShedding)
	}
	if res.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want exactly the poisoned session", res.Quarantined)
	}
	if res.Shed == 0 {
		t.Fatal("the starving mute session was never shed under SHEDDING")
	}
	if res.Churned == 0 || res.Unknown == 0 || res.BadEnvelope == 0 {
		t.Fatalf("hazard coverage gap: churned=%d unknown=%d badenv=%d",
			res.Churned, res.Unknown, res.BadEnvelope)
	}
	if res.Drained == 0 || res.Adopted == 0 || res.Drained != int64(res.Adopted) {
		t.Fatalf("handoff imbalance: drained=%d adopted=%d", res.Drained, res.Adopted)
	}
}

// TestChaosSeedReplay pins determinism end to end: the same seed replays
// to identical counters, and a different seed still holds every
// invariant (the schedule is seed-independent; only impairments move).
func TestChaosSeedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is covered by TestChaosInvariants in -short")
	}
	cfg := ChaosConfig{Peers: 6, Blocks: 192, Seed: 42, Shards: 2}
	a, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.FramesIn != b.FramesIn || a.Unknown != b.Unknown ||
		a.BadEnvelope != b.BadEnvelope || a.Shed != b.Shed ||
		a.Churned != b.Churned || a.MaxPressure != b.MaxPressure {
		t.Fatalf("same seed, different run:\n  a=%+v\n  b=%+v", a, b)
	}
	cfg.Seed = 1234
	c, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Ok() {
		t.Fatalf("seed 1234 broke an invariant:\n  %s", strings.Join(c.Violations, "\n  "))
	}
}
