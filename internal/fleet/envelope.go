package fleet

import (
	"encoding/binary"
	"fmt"

	"mute/internal/stream"
)

// The fleet envelope prefixes every stream.Frame with the session it
// belongs to, so thousands of relay→ear sessions can share one server
// socket. The inner frame format is untouched: an enveloped record is
//
//	magic "MF" (2) | version (1) | session id (4) | stream.Frame wire bytes
//
// and stripping the first EnvelopeOverhead bytes yields exactly what a
// single-session muteear receiver would have read off its own socket.
//
// A fleet datagram carries one or more records back to back (datagram
// coalescing): the inner frame's wire length is self-describing
// (stream.WireSize), so NextEnvelope can walk record boundaries without
// decoding payloads. At fleet scale the per-datagram syscall is the
// serving path's dominant fixed cost — packing the frames of many
// sessions that tick together into one datagram amortizes it across the
// batch, the transport-side analogue of the FDAF profile batching
// per-sample MACs into FFTs.
const (
	envelopeMagic   = 0x4D46 // "MF"
	envelopeVersion = 1
	// EnvelopeOverhead is the envelope header size in bytes.
	EnvelopeOverhead = 2 + 1 + 4
	// MaxDatagram bounds a fleet datagram: the envelope plus a maximal
	// inner frame still fits the transport's 1200-byte payload budget
	// comfortably.
	MaxDatagram = EnvelopeOverhead + 1200
)

// AppendEnvelope appends the envelope header for session id followed by
// the frame wire bytes to dst and returns the extended slice. The
// allocation-free send path: reuse dst's backing array across sends.
func AppendEnvelope(dst []byte, id uint32, frame []byte) []byte {
	var hdr [EnvelopeOverhead]byte
	binary.BigEndian.PutUint16(hdr[0:2], envelopeMagic)
	hdr[2] = envelopeVersion
	binary.BigEndian.PutUint32(hdr[3:7], id)
	dst = append(dst, hdr[:]...)
	return append(dst, frame...)
}

// MarshalEnvelope encodes frame f for session id into a fresh datagram.
func MarshalEnvelope(id uint32, f *stream.Frame) ([]byte, error) {
	wire, err := f.Marshal()
	if err != nil {
		return nil, err
	}
	return AppendEnvelope(make([]byte, 0, EnvelopeOverhead+len(wire)), id, wire), nil
}

// ParseEnvelope splits a fleet datagram into its session id and the inner
// frame bytes (a subslice of datagram — no copy, no allocation). The
// inner frame is NOT validated here; the demux decodes it against the
// addressed session so a malformed payload is charged to that session's
// corrupt counter rather than dropped anonymously.
func ParseEnvelope(datagram []byte) (id uint32, frame []byte, err error) {
	if len(datagram) < EnvelopeOverhead {
		return 0, nil, fmt.Errorf("fleet: short envelope (%d bytes)", len(datagram))
	}
	if binary.BigEndian.Uint16(datagram[0:2]) != envelopeMagic {
		return 0, nil, fmt.Errorf("fleet: bad envelope magic")
	}
	if datagram[2] != envelopeVersion {
		return 0, nil, fmt.Errorf("fleet: unsupported envelope version %d", datagram[2])
	}
	return binary.BigEndian.Uint32(datagram[3:7]), datagram[EnvelopeOverhead:], nil
}

// NextEnvelope parses the first record of a (possibly coalesced) fleet
// datagram and returns the bytes after it, for walking a datagram record
// by record. When the inner frame's header does not yield a usable
// record boundary — truncated, or an out-of-range sample count — the
// whole remainder is returned as the frame with no rest, so the
// malformed payload is still charged to the session the envelope
// addressed. A malformed *envelope* is unattributable and returns an
// error; the remainder of the datagram is lost with it, which is the
// right trade — record boundaries downstream of garbage cannot be
// trusted.
func NextEnvelope(datagram []byte) (id uint32, frame, rest []byte, err error) {
	id, payload, err := ParseEnvelope(datagram)
	if err != nil {
		return 0, nil, nil, err
	}
	n := stream.WireSize(payload)
	if n == 0 || n > len(payload) {
		return id, payload, nil, nil
	}
	return id, payload[:n], payload[n:], nil
}
