package fleet

import (
	"testing"

	"mute/internal/stream"
)

// pregenerate renders `blocks` ticks of datagrams for `sessions` perfect
// (lossless) users up front, so the measured serving loop touches no
// test-side allocation: pregen[b] holds every session's datagram for
// block b.
func pregenerate(t *testing.T, srv *Server, p Profile, sessions, blocks int) [][][]byte {
	t.Helper()
	users := make([]*simUser, sessions)
	for i := range users {
		id := uint32(1 + i)
		if _, err := srv.Open(id, p); err != nil {
			t.Fatal(err)
		}
		users[i] = newSimUser(t, id, p.FrameSamples, stream.LossParams{})
	}
	pregen := make([][][]byte, blocks)
	for b := range pregen {
		for _, u := range users {
			pregen[b] = append(pregen[b], u.tick()...)
		}
	}
	return pregen
}

// TestServeSteadyStateAllocFree pins the serving path at zero
// steady-state allocations: envelope parse → pooled frame decode →
// jitter buffer → pipeline block, across a 16-session fleet, allocates
// nothing once warm. Measured with Shards=1 — the sequential schedule is
// the zero-allocation mode; the shard fan-out itself costs a few
// goroutine allocations per tick and is measured separately below.
func TestServeSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime's sync.Pool drops puts at random; pool-backed zero-alloc is unmeasurable under -race")
	}
	const sessions, runs, warmup = 16, 100, 8
	srv := NewServer(Config{Shards: 1})
	defer srv.Close()
	pregen := pregenerate(t, srv, lightProfile(), sessions, warmup+1+runs)

	cursor := 0
	cycle := func() {
		for _, d := range pregen[cursor] {
			if err := srv.Ingest(d); err != nil {
				t.Error(err)
			}
		}
		if err := srv.ProcessTick(); err != nil {
			t.Error(err)
		}
		cursor++
	}
	for i := 0; i < warmup; i++ {
		cycle()
	}
	newsBefore, _, _ := srv.PoolStats()
	// AllocsPerRun calls cycle once to warm up, then `runs` measured times.
	if avg := testing.AllocsPerRun(runs, cycle); avg != 0 {
		t.Fatalf("steady-state serving allocates %.2f times per tick, want 0", avg)
	}
	newsAfter, gets, puts := srv.PoolStats()
	if newsAfter != newsBefore {
		t.Fatalf("frame pool grew %d → %d fresh frames after warmup — unbounded pool growth",
			newsBefore, newsAfter)
	}
	if gets == 0 || puts == 0 {
		t.Fatal("pool saw no traffic — the measured loop bypassed frame recycling")
	}
}

// TestPoolBoundedAcrossChurn pins the recycling ledger: after every
// session closes, each frame the pool handed out has come back —
// including frames still sitting in jitter buffers at close, which
// Pipeline.Close drains through the release hook.
func TestPoolBoundedAcrossChurn(t *testing.T) {
	srv := NewServer(Config{})
	p := lightProfile()
	for i := 0; i < 50; i++ {
		id := uint32(1 + i%7)
		if _, err := srv.Open(id, p); err != nil {
			t.Fatal(err)
		}
		u := newSimUser(t, id, p.FrameSamples, stream.LossParams{})
		// Ingest more frames than we consume so teardown always finds
		// buffered frames to drain.
		for b := 0; b < 6; b++ {
			for _, d := range u.tick() {
				if err := srv.Ingest(d); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := srv.ProcessTick(); err != nil {
			t.Fatal(err)
		}
		if err := srv.CloseSession(id); err != nil {
			t.Fatal(err)
		}
	}
	news, gets, puts := srv.PoolStats()
	if gets != puts {
		t.Fatalf("pool ledger unbalanced after full churn: %d gets, %d puts (%d fresh) — frames leaked",
			gets, puts, news)
	}
}

// TestFleetOpenCloseLeaksNoGoroutines churns 1000 session open/ingest/
// tick/close cycles between goroutine censuses: neither graph.Build nor
// the fleet layer may hide a goroutine behind a session.
func TestFleetOpenCloseLeaksNoGoroutines(t *testing.T) {
	srv := NewServer(Config{})
	p := lightProfile()
	before := stableGoroutines(t)
	for i := 0; i < 1000; i++ {
		id := uint32(1 + i)
		if _, err := srv.Open(id, p); err != nil {
			t.Fatal(err)
		}
		u := newSimUser(t, id, p.FrameSamples, stream.LossParams{})
		for _, d := range u.tick() {
			if err := srv.Ingest(d); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.ProcessTick(); err != nil {
			t.Fatal(err)
		}
		if err := srv.CloseSession(id); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Sessions() != 0 {
		t.Fatalf("%d sessions still open after churn", srv.Sessions())
	}
	after := stableGoroutines(t)
	if after > before {
		t.Fatalf("goroutines grew %d → %d over 1000 session open/close cycles", before, after)
	}
}

// TestSetupCacheShared pins the cross-session memoization: 32 sessions
// opened with the same estimation profile perform the secondary-path
// calibration once; every later open is a cache hit. The cached estimate
// must also leave sessions bit-identical (covered transitively by the
// isolation suite, which runs all sessions through the same cache).
func TestSetupCacheShared(t *testing.T) {
	sharedSetup.reset()
	srv := NewServer(Config{})
	defer srv.Close()
	p := lightProfile()
	p.EstimateSecondary = true
	p.EstimateNoiseRMS = 0.001
	for i := 0; i < 32; i++ {
		if _, err := srv.Open(uint32(1+i), p); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := srv.CacheStats()
	if misses != 1 {
		t.Fatalf("secondary-path calibration ran %d times for one profile, want 1", misses)
	}
	if hits != 31 {
		t.Fatalf("cache hits = %d, want 31", hits)
	}
	// A distinct profile must not be conflated with the first.
	p2 := p
	p2.SecondaryIR = []float64{0.7, 0.3, 0.1}
	if _, err := srv.Open(1000, p2); err != nil {
		t.Fatal(err)
	}
	if _, misses := srv.CacheStats(); misses != 2 {
		t.Fatalf("distinct profile did not recompute (misses=%d, want 2)", misses)
	}
}
