//go:build !race

package fleet

// raceEnabled reports whether the race detector is compiled in. The
// zero-allocation and pool-growth pins are meaningless under -race: the
// race runtime's sync.Pool.Put drops a quarter of returned items at
// random (by design), so pool misses — and their allocations — are
// guaranteed.
const raceEnabled = false
