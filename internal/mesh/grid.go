package mesh

import (
	"mute/internal/acoustics"
)

// grid is a uniform spatial index over the room's floor plan. Cells hold
// member slots; queries expand outward in cell rings from a center point
// and keep the k nearest eligible slots, so a selection round touches
// O(k) members instead of all N. Insert/remove/move are O(cell
// occupancy); the query allocates nothing (results land in caller
// scratch).
type grid struct {
	cellSize     float64
	minX, minY   float64
	nx, ny       int
	cells        [][]int32 // per-cell slot lists (swap-delete, cap retained)
	maxCellRing  int       // max Chebyshev ring radius worth scanning
	queryNearest []int32   // scratch reused by nearest (distance-ordered)
	queryDist    []float64
}

func newGrid(cfg Config) *grid {
	nx := int((cfg.MaxX-cfg.MinX)/cfg.CellSize) + 1
	ny := int((cfg.MaxY-cfg.MinY)/cfg.CellSize) + 1
	g := &grid{
		cellSize: cfg.CellSize,
		minX:     cfg.MinX,
		minY:     cfg.MinY,
		nx:       nx,
		ny:       ny,
		cells:    make([][]int32, nx*ny),
	}
	g.maxCellRing = nx
	if ny > nx {
		g.maxCellRing = ny
	}
	return g
}

// cellOf maps a position to its cell index, clamping out-of-bounds
// positions to the edge cells (a relay that walked out of the mapped
// area still lives somewhere).
func (g *grid) cellOf(p acoustics.Point) int {
	cx := int((p.X - g.minX) / g.cellSize)
	cy := int((p.Y - g.minY) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

func (g *grid) insert(slot int32, cell int) {
	g.cells[cell] = append(g.cells[cell], slot)
}

func (g *grid) remove(slot int32, cell int) {
	c := g.cells[cell]
	for i, s := range c {
		if s == slot {
			c[i] = c[len(c)-1]
			g.cells[cell] = c[:len(c)-1]
			return
		}
	}
}

// nearest collects the k eligible slots nearest center, expanding cell
// rings outward. Expansion stops once the k-th best distance is closer
// than any point a further ring could hold (a cell at Chebyshev ring r+1
// is at least r cell-widths away), so the result is exact and ordered by
// ascending distance. The returned slice aliases grid scratch and is
// valid until the next call.
func (g *grid) nearest(center acoustics.Point, k int, eligible func(slot int32) bool, dist func(slot int32) float64) []int32 {
	if cap(g.queryNearest) < k {
		g.queryNearest = make([]int32, 0, k)
		g.queryDist = make([]float64, 0, k)
	}
	out := g.queryNearest[:0]
	dts := g.queryDist[:0]
	ccx := int((center.X - g.minX) / g.cellSize)
	ccy := int((center.Y - g.minY) / g.cellSize)
	if ccx < 0 {
		ccx = 0
	}
	if ccx >= g.nx {
		ccx = g.nx - 1
	}
	if ccy < 0 {
		ccy = 0
	}
	if ccy >= g.ny {
		ccy = g.ny - 1
	}
	consider := func(slot int32) {
		if !eligible(slot) {
			return
		}
		d := dist(slot)
		if len(out) == k && d >= dts[len(dts)-1] {
			return
		}
		// Insertion into the fixed-k distance-ordered lists.
		i := len(out)
		if i < k {
			out = append(out, 0)
			dts = append(dts, 0)
		} else {
			i = k - 1
		}
		for ; i > 0 && dts[i-1] > d; i-- {
			out[i] = out[i-1]
			dts[i] = dts[i-1]
		}
		out[i] = slot
		dts[i] = d
	}
	scanCell := func(cx, cy int) {
		if cx < 0 || cx >= g.nx || cy < 0 || cy >= g.ny {
			return
		}
		for _, slot := range g.cells[cy*g.nx+cx] {
			consider(slot)
		}
	}
	for r := 0; r <= g.maxCellRing; r++ {
		if r == 0 {
			scanCell(ccx, ccy)
		} else {
			for cx := ccx - r; cx <= ccx+r; cx++ {
				scanCell(cx, ccy-r)
				scanCell(cx, ccy+r)
			}
			for cy := ccy - r + 1; cy <= ccy+r-1; cy++ {
				scanCell(ccx-r, cy)
				scanCell(ccx+r, cy)
			}
		}
		// A cell at Chebyshev ring r+1 is ≥ r cell-widths from anywhere in
		// the center cell: once the k-th best beats that bound, no further
		// ring can improve the result.
		if len(out) == k && dts[len(dts)-1] <= float64(r)*g.cellSize {
			break
		}
	}
	g.queryNearest = out[:0]
	g.queryDist = dts[:0]
	return out
}
