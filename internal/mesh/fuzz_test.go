package mesh

import (
	"testing"

	"mute/internal/acoustics"
)

// FuzzMeshMembership drives the supervisor with an arbitrary stream of
// membership operations and link faults decoded from the fuzz input:
// joins, graceful leaves, link kills/revivals, relay moves, and stretches
// of sample pushes. Whatever the sequence, the mesh must never panic,
// never associate with a non-live slot, and keep its live-list/grid
// bookkeeping consistent.
func FuzzMeshMembership(f *testing.F) {
	// Seed corpus: quiet mesh, churny mesh, kill-everything, rejoin storm,
	// interleaved moves.
	f.Add([]byte{0x00, 0x13, 0x23, 0x33})
	f.Add([]byte{0x00, 0x10, 0x20, 0x33, 0x01, 0x11, 0x21, 0x33, 0x41, 0x33})
	f.Add([]byte{0x00, 0x01, 0x02, 0x33, 0x20, 0x21, 0x22, 0x33, 0x33, 0x33})
	f.Add([]byte{0x00, 0x33, 0x10, 0x00, 0x33, 0x10, 0x00, 0x33})
	f.Add([]byte{0x00, 0x01, 0x33, 0x50, 0x51, 0x33, 0x20, 0x30, 0x33, 0x00, 0x33})

	f.Fuzz(func(t *testing.T, ops []byte) {
		const capacity = 8
		cfg := testConfig(capacity)
		sup, err := NewSupervisor(cfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		down := make([]bool, capacity)
		fwd := make([]float64, capacity)
		real := make([]bool, capacity)
		var now int64
		phase := 0.0

		check := func() {
			t.Helper()
			if cur := sup.Current(); cur >= 0 && sup.mem.members[cur].state != live {
				t.Fatalf("supervisor associated with non-live slot %d (state %d)", cur, sup.mem.members[cur].state)
			}
			for slot := 0; slot < capacity; slot++ {
				idx := sup.mem.liveIdx[slot]
				isLive := sup.mem.members[slot].state == live
				if isLive != (idx >= 0) {
					t.Fatalf("slot %d live=%v but liveIdx=%d", slot, isLive, idx)
				}
				if idx >= 0 && sup.mem.liveIDs[idx] != int32(slot) {
					t.Fatalf("liveIDs[%d]=%d, want %d", idx, sup.mem.liveIDs[idx], slot)
				}
			}
		}

		for _, b := range ops {
			op := b >> 4
			id := int64(b & 0x07) // relay identity 0..7
			switch op {
			case 0, 1: // join (possibly a rejoin or a refresh)
				pos := acoustics.Point{X: float64(id) * 2, Y: float64(b&0x08) * 1.5}
				_, _ = sup.Join(id, pos) // capacity refusal is fine; panic is not
			case 2: // graceful leave
				sup.Leave(id)
			case 4: // link kill
				if slot := sup.mem.slotOf(id); slot >= 0 {
					down[slot] = true
				}
			case 5: // link revival (the relay re-registers)
				if slot := sup.mem.slotOf(id); slot >= 0 {
					down[slot] = false
					_, _ = sup.Join(id, sup.mem.members[slot].pos)
				}
			case 6: // move
				sup.Move(id, acoustics.Point{X: float64(b), Y: float64(b >> 2)})
			default: // push a stretch of samples
				n := 32 + int(b&0x3F)*8
				for i := 0; i < n; i++ {
					for s := 0; s < capacity; s++ {
						fwd[s], real[s] = 0, false
					}
					for _, slot := range sup.mem.liveIDs {
						if !down[slot] {
							phase = phase*0.97 + float64((now*1103515245+12345)%1000)/1000 - 0.5
							fwd[slot], real[slot] = phase, true
						}
					}
					if _, _, err := sup.Push(phase*0.5, fwd, real); err != nil {
						t.Fatal(err)
					}
					now++
				}
			}
			check()
		}
	})
}
