// Package mesh scales MUTE's relay selection (Section 4.2) from Figure
// 19's handful of always-alive relays to a dense, churning mesh of
// dozens to hundreds: relays join, leave, crash, flap, and walk away
// mid-run while the sound source moves at walking speed, and the ear
// device must stay associated with a relay that is simultaneously
// acoustically useful (positive GCC-PHAT lookahead, Eq 4), link-healthy
// (low concealment ratio, fresh heartbeats), and warm (its stream's
// recent window holds no concealed samples).
//
// The package is organized as four cooperating pieces:
//
//   - Membership (membership.go) tracks the dynamic relay set with
//     per-relay liveness fused from heartbeat age and a concealment
//     EWMA — the same link-health estimator the outage supervisor uses —
//     so relays can come and go without resetting anyone's state.
//   - A spatial grid index (grid.go) prunes each selection round to the
//     O(k) live relays nearest the current association, so re-running
//     GCC-PHAT over a 200-relay mesh costs the same as over 8 relays.
//   - The Supervisor (supervisor.go) owns the hysteretic handoff state
//     machine: dwell-gated challenger candidacies, make-before-break
//     warm-up of the incoming relay's stream, click-free crossfades,
//     emergency handoffs when the active relay dies between rounds, and
//     the membership/handoff/flap/orphan report.
//   - A seeded fault injector (faults.go) generates deterministic churn
//     schedules — crashes with recovery, a flapping relay, correlated
//     zone outages, walk-aways — for experiments and tests.
//
// Source (source.go) adapts a Supervisor to graph.SampleSource, so the
// mesh drops into the standard cancellation pipeline exactly where a
// single relay's jitter buffer would sit.
package mesh

import (
	"fmt"

	"mute/internal/acoustics"
)

// Config parameterizes a mesh supervisor.
type Config struct {
	// Capacity is the maximum number of concurrent members (slots). The
	// per-sample Push cost is O(live members); Capacity only sizes the
	// flat slot arrays. Required.
	Capacity int

	// EarPos is the client's position — the grid-query anchor while no
	// relay is associated.
	EarPos acoustics.Point

	// WindowSamples is the GCC-PHAT correlation window (default 1024).
	WindowSamples int
	// IntervalSamples is the cadence of selection rounds (default
	// WindowSamples/2).
	IntervalSamples int
	// MaxLagSamples bounds the correlation search (default Window/8, must
	// be < Window/2).
	MaxLagSamples int
	// MinLeadSamples is the minimum useful lookahead per Eq 4 (default 1).
	MinLeadSamples int
	// MinPeak is the minimum correlation peak (default 0.05).
	MinPeak float64
	// CandidateK is the per-round correlation budget: only the K live
	// relays nearest the current association (or the ear, when orphaned)
	// are re-correlated (default 8).
	CandidateK int

	// CellSize is the spatial-grid cell edge in meters (default 1).
	CellSize float64
	// MinX/MinY/MaxX/MaxY bound the grid (defaults 0..16 m). Positions
	// outside are clamped to the edge cells.
	MinX, MinY, MaxX, MaxY float64

	// HeartbeatTimeoutSamples is how long a member may go without a real
	// sample before it is expired as dead (default 1600 — 200 ms at
	// 8 kHz).
	HeartbeatTimeoutSamples int
	// EmergencyRunSamples is the consecutive-concealed run on the active
	// relay that triggers an immediate (between-rounds) emergency handoff
	// to the best warm candidate from the last round (default 160).
	EmergencyRunSamples int
	// HealthAlpha smooths the per-relay concealment EWMA (default 1/256).
	HealthAlpha float64
	// UnhealthyHealth is the smoothed concealment ratio above which a
	// relay is ineligible for selection (default 0.25).
	UnhealthyHealth float64

	// DwellRounds is how many consecutive rounds a challenger must win by
	// the switch margin before a handoff begins (default 3).
	DwellRounds int
	// SwitchMarginSamples is how much more lookahead a challenger must
	// offer than the current association (default 4).
	SwitchMarginSamples int
	// WarmupSamples is the make-before-break gate: an incoming relay must
	// have delivered this many consecutive real samples before it may
	// carry the reference, so a completed switch never plays concealed
	// samples (default 256).
	WarmupSamples int
	// CrossfadeSamples is the handoff crossfade length (default 128).
	CrossfadeSamples int

	// Naive disables every robustness mechanism — health fusion, dwell,
	// warm-up, crossfade — and re-selects the instantaneous GCC-PHAT
	// argmax every round with a hard switch. This is the per-round
	// reselection baseline the experiments compare against.
	Naive bool
}

// fill validates the config and fills defaults.
func (c *Config) fill() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("mesh: capacity %d must be positive", c.Capacity)
	}
	if c.WindowSamples <= 0 {
		c.WindowSamples = 1024
	}
	if c.IntervalSamples <= 0 {
		c.IntervalSamples = c.WindowSamples / 2
	}
	if c.MaxLagSamples <= 0 {
		c.MaxLagSamples = c.WindowSamples / 8
	}
	if c.MaxLagSamples >= c.WindowSamples/2 {
		return fmt.Errorf("mesh: max lag %d must be < window/2 (%d)", c.MaxLagSamples, c.WindowSamples/2)
	}
	if c.MinLeadSamples <= 0 {
		c.MinLeadSamples = 1
	}
	if c.MinPeak <= 0 {
		c.MinPeak = 0.05
	}
	if c.CandidateK <= 0 {
		c.CandidateK = 8
	}
	if c.CellSize <= 0 {
		c.CellSize = 1
	}
	if c.MaxX <= c.MinX {
		c.MinX, c.MaxX = 0, 16
	}
	if c.MaxY <= c.MinY {
		c.MinY, c.MaxY = 0, 16
	}
	if c.HeartbeatTimeoutSamples <= 0 {
		c.HeartbeatTimeoutSamples = 1600
	}
	if c.EmergencyRunSamples <= 0 {
		c.EmergencyRunSamples = 160
	}
	if c.HealthAlpha <= 0 {
		c.HealthAlpha = 1.0 / 256
	}
	if c.UnhealthyHealth <= 0 {
		c.UnhealthyHealth = 0.25
	}
	if c.DwellRounds <= 0 {
		c.DwellRounds = 3
	}
	if c.SwitchMarginSamples <= 0 {
		c.SwitchMarginSamples = 4
	}
	if c.WarmupSamples <= 0 {
		c.WarmupSamples = 256
	}
	if c.CrossfadeSamples <= 0 {
		c.CrossfadeSamples = 128
	}
	return nil
}
