package mesh

import (
	"math"
	"math/rand"
	"sort"

	"mute/internal/acoustics"
)

// InjectorConfig describes a deterministic mesh fault schedule. All fault
// populations draw from one seeded stream, so a (seed, config) pair always
// produces the same run.
type InjectorConfig struct {
	// Seed drives every random draw.
	Seed int64
	// Relays is the mesh size; Duration is the run length in samples at
	// SampleRate.
	Relays     int
	Duration   int64
	SampleRate float64

	// ChurnPerMin is the expected fraction of the mesh that crashes per
	// minute (0.10 = 10%/min). Each crash keeps the relay dark for a
	// uniform draw in [MinDownSamples, MaxDownSamples] (defaults 2 s and
	// 10 s worth), then the relay recovers and rejoins.
	ChurnPerMin    float64
	MinDownSamples int
	MaxDownSamples int

	// Flappers relays develop a flapping link: their stream alternates
	// down/up with period FlapPeriodSamples (default 2048) for the whole
	// run — the adversarial case for hysteresis. FlapperAt pins which
	// relays flap (overriding the random draw) so experiments can place
	// the flapper where it is acoustically tempting.
	Flappers          int
	FlapperAt         []int
	FlapPeriodSamples int

	// ZoneOutages correlated outages each pick a random live position and
	// take down every relay within ZoneRadius (default 3 m) for
	// ZoneDownSamples (default 4 s worth) — the "access point died" case.
	ZoneOutages     int
	ZoneRadius      float64
	ZoneDownSamples int

	// WalkAways relays physically wander off at WalkSpeed m/s (default
	// 1.2) in a random direction from a random start time, staying
	// link-alive while their acoustic usefulness decays.
	WalkAways int
	WalkSpeed float64
}

func (c *InjectorConfig) fill() {
	if c.SampleRate <= 0 {
		c.SampleRate = 8000
	}
	if c.MinDownSamples <= 0 {
		c.MinDownSamples = int(2 * c.SampleRate)
	}
	if c.MaxDownSamples <= c.MinDownSamples {
		c.MaxDownSamples = int(10 * c.SampleRate)
	}
	if c.FlapPeriodSamples <= 0 {
		c.FlapPeriodSamples = 2048
	}
	if c.ZoneRadius <= 0 {
		c.ZoneRadius = 3
	}
	if c.ZoneDownSamples <= 0 {
		c.ZoneDownSamples = int(4 * c.SampleRate)
	}
	if c.WalkSpeed <= 0 {
		c.WalkSpeed = 1.2
	}
}

// faultEvent is one scheduled link transition: relay goes down (or a
// nested fault releases) at sample at.
type faultEvent struct {
	at    int64
	relay int
	down  bool
}

// Injector replays a precomputed fault schedule sample by sample. Link
// states nest (a relay inside a zone outage that also crashes stays down
// until both faults release), so per-relay state is a depth counter, not
// a flag. Advance and Down are allocation-free.
type Injector struct {
	events []faultEvent
	idx    int
	depth  []int // per-relay overlapping-fault count

	base     []acoustics.Point
	vel      []acoustics.Point // walk-away velocity, zero for stationary
	walkFrom []int64           // walk start sample, -1 = never
	rate     float64
}

// NewInjector builds the schedule for the given relay positions. The
// positions slice is copied; walk-aways move the injector's copy only
// (callers read back positions via Pos).
func NewInjector(cfg InjectorConfig, positions []acoustics.Point) *Injector {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := len(positions)
	in := &Injector{
		depth:    make([]int, n),
		base:     append([]acoustics.Point(nil), positions...),
		vel:      make([]acoustics.Point, n),
		walkFrom: make([]int64, n),
		rate:     cfg.SampleRate,
	}
	for i := range in.walkFrom {
		in.walkFrom[i] = -1
	}
	if n == 0 || cfg.Duration <= 0 {
		return in
	}
	addDownUp := func(relay int, at int64, down int64) {
		in.events = append(in.events, faultEvent{at: at, relay: relay, down: true})
		in.events = append(in.events, faultEvent{at: at + down, relay: relay, down: false})
	}
	// Crash churn: expected crashes = churn/min × relays × minutes,
	// Bernoulli-rounded so fractional expectations still fire sometimes.
	minutes := float64(cfg.Duration) / cfg.SampleRate / 60
	expect := cfg.ChurnPerMin * float64(n) * minutes
	crashes := int(expect)
	if rng.Float64() < expect-float64(crashes) {
		crashes++
	}
	for i := 0; i < crashes; i++ {
		relay := rng.Intn(n)
		at := rng.Int63n(cfg.Duration)
		down := int64(cfg.MinDownSamples + rng.Intn(cfg.MaxDownSamples-cfg.MinDownSamples+1))
		addDownUp(relay, at, down)
	}
	// Flappers: alternate down/up for the rest of the run.
	flappers := cfg.FlapperAt
	for i := 0; len(flappers) < cfg.Flappers && i < n; i++ {
		flappers = append(flappers, rng.Intn(n))
	}
	for _, relay := range flappers {
		if relay < 0 || relay >= n {
			continue
		}
		start := rng.Int63n(cfg.Duration/2 + 1)
		p := int64(cfg.FlapPeriodSamples)
		for at := start; at < cfg.Duration; at += 2 * p {
			addDownUp(relay, at, p)
		}
	}
	// Zone outages: everything within radius of a random relay's position
	// goes down together.
	for i := 0; i < cfg.ZoneOutages; i++ {
		center := in.base[rng.Intn(n)]
		at := rng.Int63n(cfg.Duration)
		for r, p := range in.base {
			if center.Dist(p) <= cfg.ZoneRadius {
				addDownUp(r, at, int64(cfg.ZoneDownSamples))
			}
		}
	}
	// Walk-aways: random direction in the XY plane.
	for i := 0; i < cfg.WalkAways && i < n; i++ {
		relay := rng.Intn(n)
		theta := rng.Float64() * 2 * math.Pi
		in.vel[relay] = acoustics.Point{
			X: cfg.WalkSpeed * math.Cos(theta),
			Y: cfg.WalkSpeed * math.Sin(theta),
		}
		in.walkFrom[relay] = rng.Int63n(cfg.Duration/2 + 1)
	}
	sort.Slice(in.events, func(a, b int) bool { return in.events[a].at < in.events[b].at })
	return in
}

// Advance applies every event scheduled at or before sample t.
func (in *Injector) Advance(t int64) {
	for in.idx < len(in.events) && in.events[in.idx].at <= t {
		e := in.events[in.idx]
		if e.down {
			in.depth[e.relay]++
		} else {
			in.depth[e.relay]--
		}
		in.idx++
	}
}

// Down reports whether a relay's link is currently dark.
func (in *Injector) Down(relay int) bool { return in.depth[relay] > 0 }

// Pos returns a relay's position at sample t (walk-aways drift).
func (in *Injector) Pos(relay int, t int64) acoustics.Point {
	p := in.base[relay]
	if from := in.walkFrom[relay]; from >= 0 && t > from {
		dt := float64(t-from) / in.rate
		p.X += in.vel[relay].X * dt
		p.Y += in.vel[relay].Y * dt
	}
	return p
}

// Walking reports whether a relay has a walk-away fault.
func (in *Injector) Walking(relay int) bool { return in.walkFrom[relay] >= 0 }

// Events returns the number of scheduled link transitions.
func (in *Injector) Events() int { return len(in.events) }
