package mesh

import (
	"testing"
	"time"

	"mute/internal/acoustics"
	"mute/internal/audio"
)

// bigMesh builds a 200-relay supervisor with distinct positions and
// leads, pushed past warm-up into steady state.
func bigMesh(tb testing.TB, relays int) (*Supervisor, []float64, []float64, []bool, []int, int64) {
	tb.Helper()
	cfg := Config{
		Capacity:      relays,
		EarPos:        acoustics.Point{X: 8, Y: 8},
		WindowSamples: 1024,
		MaxLagSamples: 64,
		CandidateK:    8,
	}
	sup, err := NewSupervisor(cfg, nil, nil)
	if err != nil {
		tb.Fatal(err)
	}
	leads := make([]int, relays)
	for i := 0; i < relays; i++ {
		x := float64(i%15) + 0.6
		y := float64(i/15) + 0.6
		if _, err := sup.Join(int64(i)+1000, acoustics.Point{X: x, Y: y}); err != nil {
			tb.Fatal(err)
		}
		leads[i] = 1 + i%48
	}
	const steady = 4096
	gen := audio.NewWhiteNoise(5, 8000, 0.4)
	clean := make([]float64, steady+1<<17+64)
	for i := range clean {
		clean[i] = gen.Next()
	}
	fwd := make([]float64, relays)
	real := make([]bool, relays)
	var now int64
	push := func() {
		for s := 0; s < relays; s++ {
			fwd[s] = clean[now+int64(leads[s])]
			real[s] = true
		}
		if _, _, err := sup.Push(clean[now], fwd, real); err != nil {
			tb.Fatal(err)
		}
		now++
	}
	for i := 0; i < steady; i++ {
		push()
	}
	return sup, clean, fwd, real, leads, now
}

// TestMeshSteadyStateAllocFree pins the tentpole's allocation contract: a
// 200-relay mesh in steady state — per-sample ring writes, liveness
// updates, and full selection rounds included — allocates nothing.
func TestMeshSteadyStateAllocFree(t *testing.T) {
	const relays = 200
	sup, clean, fwd, real, leads, now := bigMesh(t, relays)
	span := 2 * sup.cfg.IntervalSamples // ≥ 2 selection rounds per run
	allocs := testing.AllocsPerRun(5, func() {
		for i := 0; i < span; i++ {
			for s := 0; s < relays; s++ {
				fwd[s] = clean[now+int64(leads[s])]
				real[s] = true
			}
			if _, _, err := sup.Push(clean[now], fwd, real); err != nil {
				t.Fatal(err)
			}
			now++
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state mesh allocates %.1f objects per %d-sample span, want 0", allocs, span)
	}
	if sup.Report().Rounds == 0 {
		t.Fatal("no selection rounds ran during the measured span")
	}
}

// TestMeshRealTimeBudget pins that a 200-relay mesh keeps up with the
// sample clock by a wide margin: pushing one second of audio (8000
// samples at 8 kHz), selection rounds included, must take well under one
// second of wall clock even on a loaded CI machine.
func TestMeshRealTimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock budget test")
	}
	const relays = 200
	sup, clean, fwd, real, leads, now := bigMesh(t, relays)
	const span = 8000
	start := time.Now()
	for i := 0; i < span; i++ {
		for s := 0; s < relays; s++ {
			fwd[s] = clean[now+int64(leads[s])]
			real[s] = true
		}
		if _, _, err := sup.Push(clean[now], fwd, real); err != nil {
			t.Fatal(err)
		}
		now++
	}
	elapsed := time.Since(start)
	if budget := time.Second / 2; elapsed > budget {
		t.Fatalf("200-relay mesh took %v for 1 s of audio, over the %v budget (not real-time capable)", elapsed, budget)
	}
}

// BenchmarkMeshPush200 measures the steady-state per-sample cost of a
// 200-relay mesh, selection rounds amortized in.
func BenchmarkMeshPush200(b *testing.B) {
	const relays = 200
	sup, clean, fwd, real, leads, now := bigMesh(b, relays)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := now + int64(i%(1<<16))
		for s := 0; s < relays; s++ {
			fwd[s] = clean[idx+int64(leads[s])]
			real[s] = true
		}
		if _, _, err := sup.Push(clean[idx], fwd, real); err != nil {
			b.Fatal(err)
		}
	}
}
