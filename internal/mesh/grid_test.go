package mesh

import (
	"math/rand"
	"sort"
	"testing"

	"mute/internal/acoustics"
)

// TestGridNearestMatchesBruteForce pins the ring-expansion query against
// an exhaustive scan over random layouts, eligibility subsets, and query
// points.
func TestGridNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := Config{Capacity: 64, CellSize: 1, MinX: 0, MinY: 0, MaxX: 16, MaxY: 16}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		g := newGrid(cfg)
		n := 1 + rng.Intn(60)
		pos := make([]acoustics.Point, n)
		elig := make([]bool, n)
		for i := range pos {
			pos[i] = acoustics.Point{X: rng.Float64() * 18, Y: rng.Float64()*18 - 1} // some out of bounds
			elig[i] = rng.Intn(4) != 0
			g.insert(int32(i), g.cellOf(pos[i]))
		}
		center := acoustics.Point{X: rng.Float64() * 16, Y: rng.Float64() * 16}
		k := 1 + rng.Intn(12)
		got := g.nearest(center, k,
			func(s int32) bool { return elig[s] },
			func(s int32) float64 { return center.Dist(pos[s]) })

		var want []int32
		for i := range pos {
			if elig[i] {
				want = append(want, int32(i))
			}
		}
		sort.Slice(want, func(a, b int) bool {
			da, db := center.Dist(pos[want[a]]), center.Dist(pos[want[b]])
			if da != db {
				return da < db
			}
			return want[a] < want[b]
		})
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := 1; i < len(got); i++ {
			if center.Dist(pos[got[i-1]]) > center.Dist(pos[got[i]]) {
				t.Fatalf("trial %d: results not distance-ordered", trial)
			}
		}
		// Compare distance multisets (ties may order either way).
		for i := range got {
			dg, dw := center.Dist(pos[got[i]]), center.Dist(pos[want[i]])
			if dg != dw {
				t.Fatalf("trial %d: rank %d distance %.6f, brute force %.6f", trial, i, dg, dw)
			}
		}
	}
}

// TestGridRemoveAndMove pins swap-delete bookkeeping through churn.
func TestGridRemoveAndMove(t *testing.T) {
	cfg := Config{Capacity: 8, CellSize: 1, MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	g := newGrid(cfg)
	p := acoustics.Point{X: 2.5, Y: 2.5}
	c := g.cellOf(p)
	g.insert(0, c)
	g.insert(1, c)
	g.insert(2, c)
	g.remove(1, c)
	if len(g.cells[c]) != 2 {
		t.Fatalf("cell holds %d slots after remove, want 2", len(g.cells[c]))
	}
	got := g.nearest(p, 3, func(int32) bool { return true }, func(int32) float64 { return 0 })
	if len(got) != 2 {
		t.Fatalf("nearest returned %d slots, want 2", len(got))
	}
	for _, s := range got {
		if s == 1 {
			t.Fatal("removed slot still returned by query")
		}
	}
}

// TestGridNearestAllocFree pins that queries reuse scratch.
func TestGridNearestAllocFree(t *testing.T) {
	cfg := Config{Capacity: 64, CellSize: 1, MinX: 0, MinY: 0, MaxX: 16, MaxY: 16}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	g := newGrid(cfg)
	rng := rand.New(rand.NewSource(7))
	pos := make([]acoustics.Point, 64)
	for i := range pos {
		pos[i] = acoustics.Point{X: rng.Float64() * 16, Y: rng.Float64() * 16}
		g.insert(int32(i), g.cellOf(pos[i]))
	}
	center := acoustics.Point{X: 8, Y: 8}
	elig := func(int32) bool { return true }
	dist := func(s int32) float64 { return center.Dist(pos[s]) }
	g.nearest(center, 8, elig, dist) // warm scratch
	allocs := testing.AllocsPerRun(100, func() {
		g.nearest(center, 8, elig, dist)
	})
	if allocs != 0 {
		t.Fatalf("nearest allocates %.1f objects per query, want 0", allocs)
	}
}
