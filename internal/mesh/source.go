package mesh

// Source adapts a Supervisor to graph.SampleSource: the mesh sits in the
// pipeline exactly where a single relay's jitter buffer would, emitting
// the selected (possibly crossfading) reference stream with its
// concealment mask. The three callbacks give the caller the simulation
// loop without the mesh knowing anything about rooms, links, or faults:
//
//	Tick(t)     — advance fault injectors, churn membership, move relays
//	Local(t)    — the error-mic sample at sample t
//	Feed(s, t)  — live slot s's forwarded sample and received flag
//
// Pull is allocation-free after the first call.
type Source struct {
	Sup   *Supervisor
	Tick  func(t int64)
	Local func(t int64) float64
	Feed  func(slot int, t int64) (float64, bool)

	fwd  []float64
	real []bool
}

// Pull produces one block of reference samples with concealment mask.
func (s *Source) Pull(dst []float64, mask []bool, start int64) int {
	if s.fwd == nil {
		s.fwd = make([]float64, s.Sup.cfg.Capacity)
		s.real = make([]bool, s.Sup.cfg.Capacity)
	}
	for i := range dst {
		t := start + int64(i)
		if s.Tick != nil {
			s.Tick(t)
		}
		for _, slot := range s.Sup.mem.liveIDs {
			s.fwd[slot], s.real[slot] = s.Feed(int(slot), t)
		}
		out, ok, err := s.Sup.Push(s.Local(t), s.fwd, s.real)
		if err != nil {
			return i
		}
		dst[i] = out
		mask[i] = ok
	}
	return len(dst)
}
