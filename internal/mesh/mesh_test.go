package mesh

import (
	"testing"

	"mute/internal/acoustics"
	"mute/internal/audio"
)

// testConfig is a small, fast mesh config shared by the tests.
func testConfig(capacity int) Config {
	return Config{
		Capacity:                capacity,
		EarPos:                  acoustics.Point{X: 8, Y: 8},
		WindowSamples:           256,
		IntervalSamples:         128,
		MaxLagSamples:           32,
		MinPeak:                 0.05,
		CandidateK:              4,
		CellSize:                1,
		MinX:                    0,
		MinY:                    0,
		MaxX:                    16,
		MaxY:                    16,
		HeartbeatTimeoutSamples: 400,
		EmergencyRunSamples:     100,
		HealthAlpha:             1.0 / 64,
		UnhealthyHealth:         0.25,
		DwellRounds:             2,
		SwitchMarginSamples:     8,
		WarmupSamples:           64,
		CrossfadeSamples:        16,
	}
}

// meshHarness drives a Supervisor against synthetic relay streams: one
// clean noise signal, with relay slot s forwarding clean[t+leads[s]] (its
// acoustic lookahead) unless its link is down. It mirrors each slot's
// real-flag history so tests can assert what a switch landed on.
type meshHarness struct {
	t     *testing.T
	sup   *Supervisor
	clean []float64
	leads []int
	down  []bool
	fwd   []float64
	real  []bool
	now   int64

	hist     [][]bool // per-slot real flags, full run
	actives  []int
	switches []int // step indices where the association changed
}

func newMeshHarness(t *testing.T, cfg Config, total int) *meshHarness {
	t.Helper()
	sup, err := NewSupervisor(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := audio.NewWhiteNoise(23, 8000, 0.4)
	clean := make([]float64, total+cfg.MaxLagSamples+64)
	for i := range clean {
		clean[i] = gen.Next()
	}
	return &meshHarness{
		t:     t,
		sup:   sup,
		clean: clean,
		leads: make([]int, cfg.Capacity),
		down:  make([]bool, cfg.Capacity),
		fwd:   make([]float64, cfg.Capacity),
		real:  make([]bool, cfg.Capacity),
		hist:  make([][]bool, cfg.Capacity),
	}
}

func (h *meshHarness) join(slot int, lead int, pos acoustics.Point) {
	h.t.Helper()
	got, err := h.sup.Join(int64(slot)+100, pos)
	if err != nil {
		h.t.Fatal(err)
	}
	if got != slot {
		h.t.Fatalf("relay joined at slot %d, expected %d", got, slot)
	}
	h.leads[slot] = lead
}

// step pushes n sample periods, recording history and switches.
func (h *meshHarness) step(n int) {
	h.t.Helper()
	for i := 0; i < n; i++ {
		for s := range h.fwd {
			h.fwd[s] = 0
			h.real[s] = false
		}
		for _, slot := range h.sup.mem.liveIDs {
			if h.down[slot] {
				h.fwd[slot], h.real[slot] = 0, false
			} else {
				h.fwd[slot], h.real[slot] = h.clean[h.now+int64(h.leads[slot])], true
			}
		}
		for s := range h.hist {
			h.hist[s] = append(h.hist[s], h.real[s])
		}
		prev := h.sup.Current()
		_, ok, err := h.sup.Push(h.clean[h.now], h.fwd, h.real)
		if err != nil {
			h.t.Fatal(err)
		}
		cur := h.sup.Current()
		if cur != prev {
			h.switches = append(h.switches, len(h.actives))
		}
		h.actives = append(h.actives, cur)
		// The mask must never claim a concealed stream is real.
		if ok && cur >= 0 && !h.real[cur] {
			h.t.Fatalf("step %d: mask real while the active relay's sample was concealed", len(h.actives)-1)
		}
		if cur >= 0 && h.sup.mem.members[cur].state != live {
			h.t.Fatalf("step %d: supervisor selected non-live slot %d", len(h.actives)-1, cur)
		}
		h.now++
	}
}

// assertSwitchesWarm pins the make-before-break invariant on every
// association change that landed on a relay (orphanings excluded): the
// incoming relay's last warmup samples were all genuinely received.
func (h *meshHarness) assertSwitchesWarm(warmup int) {
	h.t.Helper()
	for _, at := range h.switches {
		slot := h.actives[at]
		if slot < 0 {
			continue
		}
		if at < warmup {
			h.t.Fatalf("switch to slot %d at step %d, before %d samples of history exist", slot, at, warmup)
		}
		for j := at - warmup + 1; j <= at; j++ {
			if !h.hist[slot][j] {
				h.t.Errorf("switch to slot %d at step %d: sample %d inside the %d-sample warm-up window was concealed",
					slot, at, j, warmup)
				break
			}
		}
	}
}

// TestMeshAdoptsBestRelay: with three healthy relays the supervisor
// associates with the one offering the most lookahead.
func TestMeshAdoptsBestRelay(t *testing.T) {
	cfg := testConfig(8)
	h := newMeshHarness(t, cfg, 3000)
	h.join(0, 4, acoustics.Point{X: 7, Y: 8})
	h.join(1, 24, acoustics.Point{X: 9, Y: 8})
	h.join(2, 12, acoustics.Point{X: 8, Y: 9})
	h.step(3000)
	if got := h.sup.Current(); got != 1 {
		t.Fatalf("associated with slot %d, want 1 (most lookahead); report %+v", got, h.sup.Report())
	}
	rep := h.sup.Report()
	if rep.Rounds == 0 || rep.Handoffs == 0 {
		t.Fatalf("no rounds or handoffs ran: %+v", rep)
	}
	steady := rep.Rounds - rep.DistressRounds
	budget := steady*(cfg.CandidateK+probeCount(cfg.CandidateK)+1) + rep.DistressRounds*(cfg.Capacity+1)
	if rep.Correlations > budget {
		t.Fatalf("correlation budget exceeded: %d correlations over %d rounds (%d distress)",
			rep.Correlations, rep.Rounds, rep.DistressRounds)
	}
	if steady <= 0 {
		t.Fatalf("every round ran in distress mode: %+v", rep)
	}
	h.assertSwitchesWarm(cfg.WarmupSamples)
}

// TestMeshEmergencyHandoff: the active relay goes dark mid-run; the
// supervisor must hand off to a warm alternative within the emergency
// budget, never selecting a dead relay and never switching cold.
func TestMeshEmergencyHandoff(t *testing.T) {
	cfg := testConfig(8)
	h := newMeshHarness(t, cfg, 8000)
	h.join(0, 24, acoustics.Point{X: 8, Y: 8.5})
	h.join(1, 12, acoustics.Point{X: 8.5, Y: 8})
	h.join(2, 6, acoustics.Point{X: 7.5, Y: 8})
	h.step(2000)
	if h.sup.Current() != 0 {
		t.Fatalf("associated with %d, want 0", h.sup.Current())
	}
	h.down[0] = true
	h.step(cfg.EmergencyRunSamples + 2)
	if got := h.sup.Current(); got != 1 {
		t.Fatalf("after the active relay died the supervisor holds slot %d, want emergency handoff to 1; report %+v",
			got, h.sup.Report())
	}
	rep := h.sup.Report()
	if rep.EmergencyHandoffs != 1 {
		t.Fatalf("emergency handoffs = %d, want 1; report %+v", rep.EmergencyHandoffs, rep)
	}
	// The dead relay ages out of membership entirely.
	h.step(cfg.HeartbeatTimeoutSamples + 2)
	if rep := h.sup.Report(); rep.Expirations != 1 {
		t.Fatalf("expirations = %d after heartbeat timeout, want 1", rep.Expirations)
	}
	h.assertSwitchesWarm(cfg.WarmupSamples)
}

// TestMeshChurnRejoin: a crashed relay ages out, rejoins cold, re-warms,
// and wins the association back.
func TestMeshChurnRejoin(t *testing.T) {
	cfg := testConfig(8)
	h := newMeshHarness(t, cfg, 16000)
	h.join(0, 24, acoustics.Point{X: 8, Y: 8.5})
	h.join(1, 12, acoustics.Point{X: 8.5, Y: 8})
	h.step(2000)
	if h.sup.Current() != 0 {
		t.Fatalf("associated with %d, want 0", h.sup.Current())
	}
	h.down[0] = true
	h.step(cfg.HeartbeatTimeoutSamples + 50)
	if h.sup.Current() != 1 {
		t.Fatalf("after slot 0 died, associated with %d, want 1", h.sup.Current())
	}
	if h.sup.mem.members[0].state != dead {
		t.Fatalf("slot 0 state = %d, want dead", h.sup.mem.members[0].state)
	}
	// Recovery: link back up, relay re-registers.
	h.down[0] = false
	if _, err := h.sup.Join(100, acoustics.Point{X: 8, Y: 8.5}); err != nil {
		t.Fatal(err)
	}
	h.step(6000)
	if h.sup.Current() != 0 {
		t.Fatalf("after rejoin+rewarm, associated with %d, want 0 back; report %+v", h.sup.Current(), h.sup.Report())
	}
	rep := h.sup.Report()
	if rep.Rejoins != 1 || rep.Expirations != 1 {
		t.Fatalf("rejoins/expirations = %d/%d, want 1/1", rep.Rejoins, rep.Expirations)
	}
	h.assertSwitchesWarm(cfg.WarmupSamples)
}

// TestMeshGracefulLeaveOrphansWhenAlone: the only relay leaving orphans
// the mesh; output is flagged concealed while orphaned.
func TestMeshGracefulLeaveOrphansWhenAlone(t *testing.T) {
	cfg := testConfig(4)
	h := newMeshHarness(t, cfg, 4000)
	h.join(0, 16, acoustics.Point{X: 8, Y: 8.5})
	h.step(1500)
	if h.sup.Current() != 0 {
		t.Fatalf("associated with %d, want 0", h.sup.Current())
	}
	h.sup.Leave(100)
	h.step(100)
	if h.sup.Current() != -1 {
		t.Fatalf("current = %d after the only relay left, want -1 (orphaned)", h.sup.Current())
	}
	rep := h.sup.Report()
	if rep.Leaves != 1 || rep.OrphanedWindows != 1 || rep.OrphanedSamples < 100 {
		t.Fatalf("leaves/orphanedWindows/orphanedSamples = %d/%d/%d, want 1/1/≥100",
			rep.Leaves, rep.OrphanedWindows, rep.OrphanedSamples)
	}
}

// TestMeshDecideHysteresis unit-tests the handoff state machine directly:
// a flapping challenger is suppressed, a sustained one switches, and a
// cold one waits for warm-up even after the dwell is satisfied.
func TestMeshDecideHysteresis(t *testing.T) {
	cfg := testConfig(4)
	sup, err := NewSupervisor(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Join(100, acoustics.Point{X: 7, Y: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Join(101, acoustics.Point{X: 9, Y: 8}); err != nil {
		t.Fatal(err)
	}
	sup.mem.members[0].cleanRun = 10 * cfg.WarmupSamples
	sup.mem.members[1].cleanRun = 10 * cfg.WarmupSamples
	sup.current = 0
	sup.currentLag = 20

	rank := func(lag0, lag1 int) {
		sup.ranked = sup.ranked[:0]
		a := rankedCandidate{slot: 0, lag: lag0, peak: 0.9}
		b := rankedCandidate{slot: 1, lag: lag1, peak: 0.9}
		if lag1 >= lag0 {
			sup.ranked = append(sup.ranked, b, a)
		} else {
			sup.ranked = append(sup.ranked, a, b)
		}
	}

	// One-round glitch toward slot 1, then back: suppressed, not switched.
	rank(20, 32)
	sup.decide(1)
	rank(20, 10)
	sup.decide(0)
	if sup.current != 0 {
		t.Fatalf("switched on a one-round glitch (dwell %d)", cfg.DwellRounds)
	}
	if sup.rep.FlapsSuppressed != 1 {
		t.Fatalf("flapsSuppressed = %d after an abandoned candidacy, want 1", sup.rep.FlapsSuppressed)
	}
	// Margin not met: slot 1 better but within the switch margin.
	rank(20, 24)
	sup.decide(1)
	if sup.pendRun != 0 {
		t.Fatalf("challenger within the margin started a candidacy (pendRun %d)", sup.pendRun)
	}
	// Sustained challenger, but cold: dwell satisfied, switch held.
	sup.mem.members[1].cleanRun = 0
	for i := 0; i < cfg.DwellRounds+2; i++ {
		rank(20, 32)
		sup.decide(1)
	}
	if sup.current != 0 {
		t.Fatal("switched to a cold relay (warm-up gate bypassed)")
	}
	// The stream warms: the held switch completes with a crossfade.
	sup.mem.members[1].cleanRun = cfg.WarmupSamples
	rank(20, 32)
	sup.decide(1)
	if sup.current != 1 {
		t.Fatalf("sustained warm challenger not adopted (current %d, pendRun %d)", sup.current, sup.pendRun)
	}
	if !sup.fading || sup.fadeFrom != 0 {
		t.Fatalf("handoff did not start a crossfade (fading %v from %d)", sup.fading, sup.fadeFrom)
	}
	if sup.rep.Handoffs != 1 {
		t.Fatalf("handoffs = %d, want 1", sup.rep.Handoffs)
	}
}

// TestMeshNaiveSwitchesEveryRound: the naive baseline hard-switches to
// each round's argmax with no dwell or warm-up.
func TestMeshNaiveSwitchesEveryRound(t *testing.T) {
	cfg := testConfig(4)
	cfg.Naive = true
	sup, err := NewSupervisor(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Join(100, acoustics.Point{X: 7, Y: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Join(101, acoustics.Point{X: 9, Y: 8}); err != nil {
		t.Fatal(err)
	}
	sup.current = 0
	sup.currentLag = 20
	flips := 0
	for i := 0; i < 10; i++ {
		best := int32(i % 2)
		sup.ranked = append(sup.ranked[:0], rankedCandidate{slot: best, lag: 30, peak: 0.9})
		prev := sup.current
		sup.decide(best)
		if sup.current != prev {
			flips++
		}
	}
	if flips != 9 {
		t.Fatalf("naive mode flipped %d times over 10 alternating rounds, want 9", flips)
	}
}

// TestMeshUnhealthyRelayIneligible: a relay with a high concealment EWMA
// is excluded from candidacy even while its link is technically up.
func TestMeshUnhealthyRelayIneligible(t *testing.T) {
	cfg := testConfig(4)
	h := newMeshHarness(t, cfg, 12000)
	h.join(0, 24, acoustics.Point{X: 8, Y: 8.5}) // best lead, but lossy
	h.join(1, 12, acoustics.Point{X: 8.5, Y: 8})
	// Slot 0 drops every third sample: health EWMA ~0.33 > 0.25, and its
	// clean run never reaches warm-up.
	for i := 0; i < 9000; i++ {
		h.down[0] = i%3 == 0
		h.step(1)
	}
	if got := h.sup.Current(); got != 1 {
		t.Fatalf("associated with lossy slot %d, want 1; health %.3f", got, h.sup.mem.members[0].health)
	}
	h.assertSwitchesWarm(cfg.WarmupSamples)
}
