package mesh

import (
	"fmt"

	"mute/internal/acoustics"
)

// memberState is a slot's lifecycle state.
type memberState uint8

const (
	vacant memberState = iota
	live
	left // graceful departure
	dead // heartbeat expiry (crash detected from the stream going dark)
)

// member is one relay's slot: identity, position, liveness, and its
// forwarded-stream history window.
type member struct {
	id    int64
	pos   acoustics.Point
	cell  int
	state memberState

	// Liveness, fused per PR 4's link-health estimator: the smoothed
	// concealment ratio plus the current runs.
	health   float64 // concealment EWMA in [0, 1]
	cleanRun int     // consecutive real samples (warm-up gate)
	beatAge  int     // samples since the last real sample (heartbeat age)

	// ring is the doubled-ring forwarded history: 2*window samples with
	// each sample mirrored at cursor and cursor+window, so the current
	// window is always ring[pos : pos+window]. The cursor is shared
	// mesh-wide (every live member is pushed exactly once per sample).
	ring []float64
}

// membership tracks the dynamic relay set. Slots are dense [0, Capacity);
// the live list makes per-sample iteration O(live members), and the grid
// keeps candidate queries O(k).
type membership struct {
	cfg     Config
	grid    *grid
	members []member
	liveIDs []int32 // live slots, join order with swap-delete
	liveIdx []int32 // slot → index into liveIDs, -1 when not live

	joins, leaves, expirations, rejoins int
}

func newMembership(cfg Config) *membership {
	m := &membership{
		cfg:     cfg,
		grid:    newGrid(cfg),
		members: make([]member, cfg.Capacity),
		liveIdx: make([]int32, cfg.Capacity),
		liveIDs: make([]int32, 0, cfg.Capacity),
	}
	for i := range m.liveIdx {
		m.liveIdx[i] = -1
	}
	return m
}

// slotOf finds the slot currently holding id, live or not (-1 when
// unknown).
func (m *membership) slotOf(id int64) int32 {
	for i := range m.members {
		if m.members[i].state != vacant && m.members[i].id == id {
			return int32(i)
		}
	}
	return -1
}

// join admits (or re-admits) a relay. A relay rejoining after a crash or
// departure revives its old slot but starts cold: its stale window is
// zeroed and its clean run reset, so the warm-up gate holds until the
// stream has genuinely refilled.
func (m *membership) join(id int64, pos acoustics.Point) (int32, error) {
	if slot := m.slotOf(id); slot >= 0 {
		mb := &m.members[slot]
		if mb.state == live {
			return -1, fmt.Errorf("mesh: relay %d is already a live member", id)
		}
		m.rejoins++
		m.activate(slot, pos)
		return slot, nil
	}
	for i := range m.members {
		if m.members[i].state == vacant {
			slot := int32(i)
			mb := &m.members[slot]
			mb.id = id
			if mb.ring == nil {
				mb.ring = make([]float64, 2*m.cfg.WindowSamples)
			}
			mb.health = 0
			m.joins++
			m.activate(slot, pos)
			return slot, nil
		}
	}
	return -1, fmt.Errorf("mesh: at capacity (%d members), relay %d refused", m.cfg.Capacity, id)
}

// activate marks a slot live and resets its stream state. The health EWMA
// deliberately survives: a rejoining relay's concealment history is
// evidence about its link (a flapper would otherwise look pristine every
// cycle), and only fresh identities start with a clean slate.
func (m *membership) activate(slot int32, pos acoustics.Point) {
	mb := &m.members[slot]
	mb.state = live
	mb.pos = pos
	mb.cell = m.grid.cellOf(pos)
	mb.cleanRun = 0
	mb.beatAge = 0
	for i := range mb.ring {
		mb.ring[i] = 0
	}
	m.grid.insert(slot, mb.cell)
	m.liveIdx[slot] = int32(len(m.liveIDs))
	m.liveIDs = append(m.liveIDs, slot)
}

// deactivate removes a slot from the live set (state set by the caller).
func (m *membership) deactivate(slot int32) {
	mb := &m.members[slot]
	m.grid.remove(slot, mb.cell)
	idx := m.liveIdx[slot]
	last := int32(len(m.liveIDs) - 1)
	moved := m.liveIDs[last]
	m.liveIDs[idx] = moved
	m.liveIdx[moved] = idx
	m.liveIDs = m.liveIDs[:last]
	m.liveIdx[slot] = -1
}

// leave is the graceful departure path.
func (m *membership) leave(slot int32) {
	if m.members[slot].state != live {
		return
	}
	m.deactivate(slot)
	m.members[slot].state = left
	m.leaves++
}

// expire marks a member dead after its heartbeat aged out.
func (m *membership) expire(slot int32) {
	if m.members[slot].state != live {
		return
	}
	m.deactivate(slot)
	m.members[slot].state = dead
	m.expirations++
}

// move updates a live member's position and its grid cell.
func (m *membership) move(slot int32, pos acoustics.Point) {
	mb := &m.members[slot]
	if mb.state != live {
		return
	}
	mb.pos = pos
	cell := m.grid.cellOf(pos)
	if cell != mb.cell {
		m.grid.remove(slot, mb.cell)
		m.grid.insert(slot, cell)
		mb.cell = cell
	}
}

// observe folds one sample period into a live member: the forwarded
// sample into the doubled ring at the shared cursor, and the concealment
// flag into the liveness estimators. It reports whether the member's
// heartbeat just aged out.
func (m *membership) observe(slot int32, cursor int, x float64, real bool) (expired bool) {
	mb := &m.members[slot]
	mb.ring[cursor] = x
	mb.ring[cursor+m.cfg.WindowSamples] = x
	c := 0.0
	if real {
		mb.cleanRun++
		mb.beatAge = 0
	} else {
		c = 1
		mb.cleanRun = 0
		mb.beatAge++
	}
	mb.health += m.cfg.HealthAlpha * (c - mb.health)
	return mb.beatAge > m.cfg.HeartbeatTimeoutSamples
}

// window returns a member's current correlation window (oldest→newest)
// for the shared cursor.
func (m *membership) window(slot int32, cursor int) []float64 {
	return m.members[slot].ring[cursor : cursor+m.cfg.WindowSamples]
}

// warm reports whether a member's stream satisfies the make-before-break
// gate: enough consecutive real samples that switching to it cannot play
// concealed reference.
func (m *membership) warm(slot int32) bool {
	mb := &m.members[slot]
	return mb.state == live && mb.cleanRun >= m.cfg.WarmupSamples
}

// healthy reports whether a member is live with an acceptable smoothed
// concealment ratio.
func (m *membership) healthy(slot int32) bool {
	mb := &m.members[slot]
	return mb.state == live && mb.health < m.cfg.UnhealthyHealth
}

// Live returns the number of live members.
func (m *membership) countLive() int { return len(m.liveIDs) }
