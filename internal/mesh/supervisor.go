package mesh

import (
	"fmt"

	"mute/internal/acoustics"
	"mute/internal/relaysel"
	"mute/internal/telemetry"
)

// rankedCandidate is one round's measurement of a candidate relay, cached
// between rounds so an emergency handoff has somewhere to go without
// waiting for the next round.
type rankedCandidate struct {
	slot int32
	lag  int
	peak float64
}

// Report is the mesh supervisor's lifetime accounting.
type Report struct {
	// Membership churn.
	Joins, Rejoins, Leaves, Expirations int
	// Live is the live-member count at report time.
	Live int

	// Rounds is how many selection rounds ran; Correlations is the total
	// GCC-PHAT correlations across all rounds — Correlations/Rounds ≈
	// CandidateK regardless of mesh size is the O(k) pruning evidence.
	// DistressRounds is the subset that widened to a full live-mesh scan
	// because the mesh was orphaned or the incumbent's lookahead had
	// collapsed below the usable floor.
	Rounds         int
	Correlations   int
	DistressRounds int

	// Handoffs counts completed association changes; EmergencyHandoffs is
	// the subset forced between rounds by the active relay going dark.
	Handoffs          int
	EmergencyHandoffs int
	// FlapsSuppressed counts challenger candidacies that were abandoned
	// before reaching the dwell — switches the hysteresis refused to make.
	FlapsSuppressed int
	// OrphanedWindows counts transitions into the no-relay-associated
	// state; OrphanedSamples is the total time spent there.
	OrphanedWindows int
	OrphanedSamples int
}

// MembershipChanges is the total membership churn the mesh absorbed.
func (r Report) MembershipChanges() int {
	return r.Joins + r.Rejoins + r.Leaves + r.Expirations
}

// Supervisor runs the churn-tolerant relay mesh: it tracks membership,
// prunes each GCC-PHAT selection round to the CandidateK nearest live
// relays via the spatial grid, applies the hysteretic dwell + warm-up +
// crossfade handoff policy (or the naive per-round argmax when
// Config.Naive is set), and keeps the Report.
//
// The per-sample contract is Push: the local (error-mic) sample plus one
// forwarded sample and concealment flag per slot. Push returns the
// reference sample the canceller should consume and whether it is real
// (false while orphaned, and while a crossfade is blending in any
// concealed content). Steady-state Push performs no allocation.
type Supervisor struct {
	cfg Config
	mem *membership

	// Local (error-mic) doubled ring, sharing the membership cursor.
	localRing []float64
	cursor    int
	fill      int64

	// Reused correlation state.
	corr     *relaysel.Correlator
	corrOut  relaysel.Correlation
	sel      relaysel.Selection
	candSlot []int32           // candidate slots for the in-flight round
	candView [][]float64       // their window views
	ranked   []rankedCandidate // last round's measurements, descending lag
	expired  []int32           // per-sample expiry scratch
	probeCur int               // round-robin probe cursor over live slots

	// Grid-query state: the closures are built once at construction and
	// read anchor through the receiver, so a round creates no closures
	// (steady-state rounds must not allocate).
	anchor acoustics.Point
	eligFn func(slot int32) bool
	distFn func(slot int32) float64

	// Association state.
	current    int32 // active slot, -1 = orphaned
	currentLag int   // last measured lookahead of the active relay
	pendSlot   int32
	pendRun    int
	badRun     int // consecutive rounds the incumbent measured below the lead floor

	// Crossfade state.
	fading   bool
	fadeFrom int32
	fadePos  int

	rep Report

	// Optional observability (nil-safe).
	reg                *telemetry.Registry
	cMembers, cHandoff *telemetry.Counter
	cFlaps, cOrphans   *telemetry.Counter
	trace              *telemetry.Trace
}

// NewSupervisor builds a mesh supervisor. reg and trace may be nil.
func NewSupervisor(cfg Config, reg *telemetry.Registry, trace *telemetry.Trace) (*Supervisor, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	corr, err := relaysel.NewCorrelator(cfg.WindowSamples)
	if err != nil {
		return nil, err
	}
	maxCand := cfg.CandidateK + probeCount(cfg.CandidateK) + 1 // + current
	s := &Supervisor{
		cfg:       cfg,
		mem:       newMembership(cfg),
		localRing: make([]float64, 2*cfg.WindowSamples),
		corr:      corr,
		candSlot:  make([]int32, 0, maxCand),
		candView:  make([][]float64, 0, maxCand),
		ranked:    make([]rankedCandidate, 0, maxCand),
		expired:   make([]int32, 0, cfg.Capacity),
		current:   -1,
		pendSlot:  -1,
		trace:     trace,
	}
	s.eligFn = func(slot int32) bool {
		return s.cfg.Naive || s.mem.healthy(slot)
	}
	s.distFn = func(slot int32) float64 {
		return s.anchor.Dist(s.mem.members[slot].pos)
	}
	if reg != nil {
		s.reg = reg
		s.cMembers = reg.Counter("mesh.memberships")
		s.cHandoff = reg.Counter("mesh.handoffs")
		s.cFlaps = reg.Counter("mesh.flaps_suppressed")
		s.cOrphans = reg.Counter("mesh.orphaned_windows")
	}
	return s, nil
}

// traceEvent records a rare association event (handoffs, orphanings) on
// the mesh trace stage. Per-sample state is deliberately not traced.
func (s *Supervisor) traceEvent(name string, slot int32) {
	if s.trace == nil {
		return
	}
	s.trace.Record(s.fill, telemetry.StageMesh, name, map[string]float64{
		"slot": float64(slot),
		"live": float64(s.mem.countLive()),
	})
}

// probeCount is how many round-robin probe slots ride along each round on
// top of the grid-nearest cohort, so a distant relay that became the best
// choice (the source walked away) is eventually rediscovered.
func probeCount(k int) int {
	p := k / 4
	if p < 1 {
		p = 1
	}
	return p
}

// Join admits a relay (or refreshes a live one's position). Rejoining
// after a crash or departure revives the relay's slot cold: the warm-up
// gate holds until its stream has refilled.
func (s *Supervisor) Join(id int64, pos acoustics.Point) (int, error) {
	if slot := s.mem.slotOf(id); slot >= 0 && s.mem.members[slot].state == live {
		s.mem.move(slot, pos)
		return int(slot), nil
	}
	slot, err := s.mem.join(id, pos)
	if err != nil {
		return -1, err
	}
	s.onMembership()
	return int(slot), nil
}

// Leave gracefully removes a relay. Unknown or non-live ids are ignored.
func (s *Supervisor) Leave(id int64) {
	slot := s.mem.slotOf(id)
	if slot < 0 || s.mem.members[slot].state != live {
		return
	}
	s.mem.leave(slot)
	s.onMembership()
	s.dropped(slot)
}

// Move updates a live relay's position (walk-away faults, mobile relays).
func (s *Supervisor) Move(id int64, pos acoustics.Point) {
	if slot := s.mem.slotOf(id); slot >= 0 {
		s.mem.move(slot, pos)
	}
}

// onMembership refreshes churn counters after any membership change.
func (s *Supervisor) onMembership() {
	if s.cMembers != nil {
		s.cMembers.Inc()
	}
}

// dropped reconciles association state after slot left the live set.
func (s *Supervisor) dropped(slot int32) {
	if s.pendSlot == slot {
		s.pendSlot = -1
		s.pendRun = 0
	}
	if s.fading && s.fadeFrom == slot {
		s.fading = false
	}
	if s.current == slot {
		if s.cfg.Naive {
			// The naive baseline has no emergency path: it rides the dead
			// association until the next round's argmax.
			s.orphan()
			return
		}
		s.emergency()
	}
}

// emergency reassociates immediately — the active relay is gone or dark —
// using the last round's cached ranking, falling back to the orphaned
// state when no warm, healthy, live candidate exists.
func (s *Supervisor) emergency() {
	for _, rc := range s.ranked {
		if rc.slot == s.current {
			continue
		}
		if rc.lag < s.cfg.MinLeadSamples || rc.peak < s.cfg.MinPeak {
			continue
		}
		if !s.mem.healthy(rc.slot) || !s.mem.warm(rc.slot) {
			continue
		}
		// Hard cut: the outgoing stream is dead, so crossfading with it
		// would blend in concealed samples.
		s.current = rc.slot
		s.currentLag = rc.lag
		s.fading = false
		s.pendSlot = -1
		s.pendRun = 0
		s.badRun = 0
		s.rep.Handoffs++
		s.rep.EmergencyHandoffs++
		if s.cHandoff != nil {
			s.cHandoff.Inc()
		}
		s.traceEvent("emergency_handoff", s.current)
		return
	}
	s.orphan()
}

// orphan enters the no-relay-associated state.
func (s *Supervisor) orphan() {
	if s.current < 0 {
		return
	}
	s.current = -1
	s.currentLag = 0
	s.fading = false
	s.pendSlot = -1
	s.pendRun = 0
	s.badRun = 0
	s.rep.OrphanedWindows++
	if s.cOrphans != nil {
		s.cOrphans.Inc()
	}
	s.traceEvent("orphaned", -1)
}

// Push feeds one sample period. forwarded and real are indexed by slot
// and must cover Capacity; only live slots are read. It returns the
// reference sample for the canceller and whether it is genuinely received
// (false = treat as concealed).
func (s *Supervisor) Push(local float64, forwarded []float64, real []bool) (float64, bool, error) {
	if len(forwarded) < s.cfg.Capacity || len(real) < s.cfg.Capacity {
		return 0, false, fmt.Errorf("mesh: fed %d/%d slots, capacity %d", len(forwarded), len(real), s.cfg.Capacity)
	}
	s.localRing[s.cursor] = local
	s.localRing[s.cursor+s.cfg.WindowSamples] = local
	s.expired = s.expired[:0]
	for _, slot := range s.mem.liveIDs {
		if s.mem.observe(slot, s.cursor, forwarded[slot], real[slot]) {
			s.expired = append(s.expired, slot)
		}
	}
	s.cursor++
	if s.cursor == s.cfg.WindowSamples {
		s.cursor = 0
	}
	s.fill++

	for _, slot := range s.expired {
		s.mem.expire(slot)
		s.onMembership()
		s.dropped(slot)
	}
	// Between-rounds emergency: the active relay has gone dark for longer
	// than the emergency run but has not yet aged out of membership. The
	// naive baseline gets none of this — it plays concealment until its
	// next round.
	if s.current >= 0 && !s.cfg.Naive && s.mem.members[s.current].beatAge > s.cfg.EmergencyRunSamples {
		s.emergency()
	}

	if s.fill >= int64(s.cfg.WindowSamples) && s.fill%int64(s.cfg.IntervalSamples) == 0 {
		s.round()
	}

	if s.current < 0 {
		s.rep.OrphanedSamples++
		return 0, false, nil
	}
	out := forwarded[s.current]
	ok := real[s.current]
	if s.fading {
		if s.mem.members[s.fadeFrom].state != live {
			s.fading = false
		} else {
			// Equal-steps linear blend; the mask is real only when both
			// contributions are real, so a fade never launders concealment.
			w := float64(s.fadePos+1) / float64(s.cfg.CrossfadeSamples+1)
			out = w*out + (1-w)*forwarded[s.fadeFrom]
			ok = ok && real[s.fadeFrom]
			s.fadePos++
			if s.fadePos >= s.cfg.CrossfadeSamples {
				s.fading = false
			}
		}
	}
	return out, ok, nil
}

// round runs one pruned selection round: gather the CandidateK nearest
// live relays (anchored at the active relay, or the ear when orphaned),
// ride a few round-robin probes along, correlate, and apply the handoff
// policy. Distress rounds — the mesh is orphaned, or the incumbent's
// lookahead has collapsed below the usable floor — widen to the full live
// mesh instead: nearest-neighbour pruning anchors at the incumbent, and
// when the incumbent has gone acoustically bad its neighbours have too,
// so the O(k) cohort would hunt for a replacement at probe pace. Both
// policies share the same cohort rule, so the naive baseline differs only
// in how it switches.
func (s *Supervisor) round() {
	s.rep.Rounds++
	s.candSlot = s.candSlot[:0]
	if s.current < 0 || s.currentLag < s.cfg.MinLeadSamples {
		s.rep.DistressRounds++
		for _, slot := range s.mem.liveIDs {
			if s.eligFn(slot) {
				s.candSlot = append(s.candSlot, slot)
			}
		}
	} else {
		s.anchor = s.mem.members[s.current].pos
		near := s.mem.grid.nearest(s.anchor, s.cfg.CandidateK, s.eligFn, s.distFn)
		s.candSlot = append(s.candSlot, near...)
		// Round-robin probes from the full live list.
		if n := len(s.mem.liveIDs); n > 0 {
			for p := 0; p < probeCount(s.cfg.CandidateK); p++ {
				s.probeCur++
				slot := s.mem.liveIDs[s.probeCur%n]
				if !s.hasCandidate(slot) && (s.cfg.Naive || s.mem.healthy(slot)) {
					s.candSlot = append(s.candSlot, slot)
				}
			}
		}
	}
	// The active relay is always re-measured so hysteresis compares
	// against a fresh lag, not a stale one.
	if s.current >= 0 && !s.hasCandidate(s.current) {
		s.candSlot = append(s.candSlot, s.current)
	}
	s.ranked = s.ranked[:0]
	if len(s.candSlot) == 0 {
		s.decide(-1)
		return
	}
	s.candView = s.candView[:0]
	for _, slot := range s.candSlot {
		s.candView = append(s.candView, s.mem.window(slot, s.cursor))
	}
	localView := s.localRing[s.cursor : s.cursor+s.cfg.WindowSamples]
	if err := s.corr.SelectInto(&s.sel, &s.corrOut, s.candView, localView,
		s.cfg.MaxLagSamples, s.cfg.MinLeadSamples, s.cfg.MinPeak); err != nil {
		// Config is validated up front; a correlation error here means the
		// window contract broke — fail the round, keep the association.
		s.decide(-1)
		return
	}
	s.rep.Correlations += len(s.candSlot)
	for _, r := range s.sel.Reports { // already descending by lag
		s.ranked = append(s.ranked, rankedCandidate{
			slot: s.candSlot[r.Index],
			lag:  r.LagSamples,
			peak: r.Peak,
		})
	}
	// The winner is the highest-lag candidate that passes both gates, not
	// Selection.Best: Best only tests the single max-lag report, and in a
	// wide cohort the lag argmax is often a spurious correlation whose
	// junk peak would veto the whole round.
	best := int32(-1)
	for _, rc := range s.ranked {
		if rc.lag >= s.cfg.MinLeadSamples && rc.peak >= s.cfg.MinPeak {
			best = rc.slot
			break
		}
	}
	if s.current >= 0 {
		for _, rc := range s.ranked {
			if rc.slot == s.current {
				s.currentLag = rc.lag
				break
			}
		}
	}
	s.decide(best)
}

func (s *Supervisor) hasCandidate(slot int32) bool {
	for _, c := range s.candSlot {
		if c == slot {
			return true
		}
	}
	return false
}

// decide applies the round's winner to the association state machine.
func (s *Supervisor) decide(best int32) {
	if s.cfg.Naive {
		// Naive baseline: hard-switch to the instantaneous argmax, no
		// health fusion, no dwell, no warm-up, no crossfade.
		if best < 0 {
			s.orphan()
			return
		}
		if best != s.current {
			wasOrphan := s.current < 0
			s.current = best
			s.fading = false
			if !wasOrphan {
				s.rep.Handoffs++
				if s.cHandoff != nil {
					s.cHandoff.Inc()
				}
			}
		}
		for _, rc := range s.ranked {
			if rc.slot == s.current {
				s.currentLag = rc.lag
				break
			}
		}
		return
	}

	if s.current < 0 {
		// Orphaned: adopt the winner as soon as its stream is warm —
		// nothing is playing, but the make-before-break gate still refuses
		// a stream whose window holds concealed samples.
		if best >= 0 && s.mem.warm(best) {
			s.current = best
			for _, rc := range s.ranked {
				if rc.slot == best {
					s.currentLag = rc.lag
					break
				}
			}
			s.pendSlot = -1
			s.pendRun = 0
			s.badRun = 0
			s.rep.Handoffs++
			if s.cHandoff != nil {
				s.cHandoff.Inc()
			}
			s.traceEvent("adopted", best)
		}
		return
	}

	// Lookahead-margin fusion: an incumbent whose lag has collapsed below
	// the usable floor for two consecutive rounds is failing, not merely
	// challenged — the dwell exists to protect a working association from
	// measurement jitter, and there is nothing left to protect. (One bad
	// round alone is within PHAT's heavy-tailed error, so the rescue has
	// its own short confirmation.) Replace it with the round's winner,
	// warm-up and crossfade still applying: the old stream is alive, just
	// acoustically useless, so the blend is real on both sides.
	if s.currentLag < s.cfg.MinLeadSamples {
		s.badRun++
		if s.badRun >= 2 && best >= 0 && best != s.current && s.mem.warm(best) {
			s.fadeFrom = s.current
			s.fadePos = 0
			s.fading = s.cfg.CrossfadeSamples > 0
			s.current = best
			for _, rc := range s.ranked {
				if rc.slot == best {
					s.currentLag = rc.lag
					break
				}
			}
			s.pendSlot = -1
			s.pendRun = 0
			s.badRun = 0
			s.rep.Handoffs++
			if s.cHandoff != nil {
				s.cHandoff.Inc()
			}
			s.traceEvent("rescue_handoff", s.current)
		}
		return
	}
	s.badRun = 0

	// Challenger must beat the current association's fresh lag by the
	// switch margin; otherwise any pending candidacy is abandoned.
	challenger := int32(-1)
	if best >= 0 && best != s.current {
		for _, rc := range s.ranked {
			if rc.slot == best {
				if rc.lag >= s.currentLag+s.cfg.SwitchMarginSamples {
					challenger = best
				}
				break
			}
		}
	}
	if challenger < 0 {
		if s.pendRun > 0 {
			s.rep.FlapsSuppressed++
			if s.cFlaps != nil {
				s.cFlaps.Inc()
			}
		}
		s.pendSlot = -1
		s.pendRun = 0
		return
	}
	// The candidacy tracks "the incumbent is being out-led", not one
	// specific challenger: in a dense mesh several near-equal relays trade
	// the per-round argmax, and pinning the dwell to a single slot would
	// reset it every trade and starve genuine handoffs. The dwell counts
	// consecutive rounds the margin was beaten; the target retargets to
	// the freshest best. Post-switch flapping is still blocked because the
	// old relay must then out-lead the new one by the same margin.
	s.pendSlot = challenger
	s.pendRun++
	// Dwell satisfied and the incoming stream warm: make-before-break
	// holds the switch open until both are true.
	if s.pendRun >= s.cfg.DwellRounds && s.mem.warm(challenger) {
		s.fadeFrom = s.current
		s.fadePos = 0
		s.fading = s.cfg.CrossfadeSamples > 0
		s.current = challenger
		for _, rc := range s.ranked {
			if rc.slot == challenger {
				s.currentLag = rc.lag
				break
			}
		}
		s.pendSlot = -1
		s.pendRun = 0
		s.rep.Handoffs++
		if s.cHandoff != nil {
			s.cHandoff.Inc()
		}
		s.traceEvent("handoff", s.current)
	}
}

// Current returns the active slot, or -1 while orphaned.
func (s *Supervisor) Current() int { return int(s.current) }

// Live returns the live-member count.
func (s *Supervisor) Live() int { return s.mem.countLive() }

// Report returns the supervisor's accounting so far.
func (s *Supervisor) Report() Report {
	r := s.rep
	r.Joins = s.mem.joins
	r.Rejoins = s.mem.rejoins
	r.Leaves = s.mem.leaves
	r.Expirations = s.mem.expirations
	r.Live = s.mem.countLive()
	return r
}
