package telemetry

import (
	"math"
	"testing"
)

// TestHistogramBucketEdges pins the exact bucket membership of values on
// and around the precomputed edges: bucket i covers [edge[i], edge[i+1]),
// with dedicated underflow/overflow slots. An exact binary search (not
// float log math) decides membership, so on-edge values must land exactly.
func TestHistogramBucketEdges(t *testing.T) {
	opts := HistogramOpts{Lo: 1, Ratio: 2, Buckets: 4} // edges 1 2 4 8 16
	cases := []struct {
		name string
		v    float64
		slot int // index into Counts: 0 underflow ... 5 overflow
	}{
		{"negative", -3, 0},
		{"zero", 0, 0},
		{"nan", math.NaN(), 0},
		{"below_lo", 0.999, 0},
		{"at_lo", 1, 1},
		{"mid_first", 1.5, 1},
		{"at_second_edge", 2, 2},
		{"just_below_second_edge", math.Nextafter(2, 0), 1},
		{"mid_third", 5, 3},
		{"at_last_finite_edge", 8, 4},
		{"just_below_overflow", math.Nextafter(16, 0), 4},
		{"at_overflow_edge", 16, 5},
		{"inf", math.Inf(1), 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(opts)
			h.Observe(tc.v)
			s := h.Snapshot()
			if len(s.Counts) != opts.Buckets+2 {
				t.Fatalf("got %d count slots, want %d", len(s.Counts), opts.Buckets+2)
			}
			for i, c := range s.Counts {
				want := uint64(0)
				if i == tc.slot {
					want = 1
				}
				if c != want {
					t.Errorf("Observe(%g): slot %d = %d, want %d", tc.v, i, c, want)
				}
			}
		})
	}
}

// TestHistogramEdgesExact checks the edge layout is the pure geometric
// sequence Lo·Ratio^i computed by repeated multiplication.
func TestHistogramEdgesExact(t *testing.T) {
	h := NewHistogram(HistogramOpts{Lo: 1e-4, Ratio: 10, Buckets: 6})
	want := []float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}
	got := h.Edges()
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d", len(got), len(want))
	}
	e := 1e-4
	for i := range got {
		if got[i] != e {
			t.Errorf("edge[%d] = %g, want %g (repeated multiplication)", i, got[i], e)
		}
		if math.Abs(got[i]-want[i]) > want[i]*1e-12 {
			t.Errorf("edge[%d] = %g, far from nominal %g", i, got[i], want[i])
		}
		e *= 10
	}
}

// TestHistogramInvalidOptsClamped: construction never fails; bad layouts
// fall back to the defaults.
func TestHistogramInvalidOptsClamped(t *testing.T) {
	def := DefaultHistogramOpts()
	for _, opts := range []HistogramOpts{
		{},
		{Lo: -1, Ratio: 0.5, Buckets: -3},
		{Lo: math.NaN(), Ratio: math.NaN(), Buckets: 0},
	} {
		h := NewHistogram(opts)
		if h.opts != def {
			t.Errorf("NewHistogram(%+v) kept opts %+v, want defaults %+v", opts, h.opts, def)
		}
	}
}

// TestHistogramSumSkipsNaN: NaN counts as an (underflow) observation but
// must not poison the running sum.
func TestHistogramSumSkipsNaN(t *testing.T) {
	h := NewHistogram(DefaultHistogramOpts())
	h.Observe(1.0)
	h.Observe(math.NaN())
	h.Observe(2.0)
	if got := h.Sum(); got != 3.0 {
		t.Errorf("Sum = %g, want 3 (NaN excluded)", got)
	}
	if got := h.Count(); got != 3 {
		t.Errorf("Count = %d, want 3 (NaN still counted)", got)
	}
}

// TestHistogramMergeSameLayout: same-layout merge is exact bucket addition.
func TestHistogramMergeSameLayout(t *testing.T) {
	opts := HistogramOpts{Lo: 1, Ratio: 2, Buckets: 4}
	a, b := NewHistogram(opts), NewHistogram(opts)
	for _, v := range []float64{0.5, 1, 3, 100} {
		a.Observe(v)
	}
	for _, v := range []float64{1, 5} {
		b.Observe(v)
	}
	a.merge(b)
	s := a.Snapshot()
	if s.Count != 6 {
		t.Fatalf("merged count %d, want 6", s.Count)
	}
	if s.Sum != 0.5+1+3+100+1+5 {
		t.Errorf("merged sum %g", s.Sum)
	}
	// slots: underflow, [1,2), [2,4), [4,8), [8,16), overflow
	wantCounts := []uint64{1, 2, 1, 1, 0, 1}
	for i, c := range s.Counts {
		if c != wantCounts[i] {
			t.Errorf("slot %d = %d, want %d", i, c, wantCounts[i])
		}
	}
}

// TestHistogramMergeLayoutMismatch: a mismatched layout folds through
// midpoints instead of silently dropping observations.
func TestHistogramMergeLayoutMismatch(t *testing.T) {
	a := NewHistogram(HistogramOpts{Lo: 1, Ratio: 2, Buckets: 8})
	b := NewHistogram(HistogramOpts{Lo: 1, Ratio: 4, Buckets: 3})
	b.Observe(2)
	b.Observe(100)
	a.merge(b)
	if got := a.Count(); got != 2 {
		t.Errorf("mismatched merge lost observations: count %d, want 2", got)
	}
}

// TestHistogramQuantile sanity-checks the midpoint estimator on a known
// distribution.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(HistogramOpts{Lo: 1, Ratio: 2, Buckets: 10})
	for i := 0; i < 100; i++ {
		h.Observe(3) // bucket [2,4)
	}
	h.Observe(500) // bucket [256, 512)
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 != 3 {
		t.Errorf("p50 = %g, want midpoint 3", p50)
	}
	if p100 := s.Quantile(1); p100 < 256 {
		t.Errorf("p100 = %g, want the top occupied bucket", p100)
	}
	if empty := (HistogramSnapshot{}).Quantile(0.5); empty != 0 {
		t.Errorf("empty quantile = %g, want 0", empty)
	}
}
