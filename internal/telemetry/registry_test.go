package telemetry

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// simulateRun writes a deterministic workload into a registry, keyed by the
// task index — a stand-in for one experiment run.
func simulateRun(r *Registry, task int) {
	r.Counter("runs").Inc()
	r.Counter("samples").Add(int64(1000 * (task + 1)))
	r.Gauge("last_task").Set(float64(task))
	h := r.Histogram("residual", HistogramOpts{Lo: 1e-3, Ratio: 2, Buckets: 16})
	for i := 0; i < 10; i++ {
		h.Observe(float64(task+1) * 1e-3 * float64(i+1))
	}
	r.Timer("stage").Observe(time.Duration(task+1) * time.Millisecond)
}

// TestMergeDeterministicAcrossWorkers runs the same 12-task workload under
// 1, 2, and 8 workers, each task in its own child registry, merged in task
// order — the runner discipline — and requires the deterministic part of
// the aggregate to be identical, byte for byte, across worker counts.
func TestMergeDeterministicAcrossWorkers(t *testing.T) {
	const tasks = 12
	aggregate := func(workers int) Snapshot {
		parent := NewRegistry()
		kids := make([]*Registry, tasks)
		for i := range kids {
			kids[i] = NewRegistry()
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := 0; i < tasks; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				simulateRun(kids[i], i)
			}(i)
		}
		wg.Wait()
		for _, kid := range kids {
			parent.Merge(kid)
		}
		return parent.Snapshot().Deterministic()
	}

	want := aggregate(1)
	if want.Timers != nil {
		t.Fatal("Deterministic() kept the wall-clock timers")
	}
	wantText := want.Text()
	for _, workers := range []int{2, 8} {
		got := aggregate(workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: deterministic snapshot differs from sequential", workers)
		}
		if got.Text() != wantText {
			t.Errorf("workers=%d: text rendering differs from sequential", workers)
		}
	}
}

// TestMergeUnderConcurrentChildWrites is the fleet fan-in pattern: every
// session owns a child registry its serving goroutine writes continuously,
// and a scraper merges snapshots of all children while they are hot. The
// mid-flight merges must be race-free (Merge holds the child's read lock;
// metric updates are atomic), and once the writers quiesce, a final merge
// in session-id order must equal the sequential aggregate exactly.
func TestMergeUnderConcurrentChildWrites(t *testing.T) {
	const sessions, rounds = 8, 200
	kids := make([]*Registry, sessions)
	for i := range kids {
		kids[i] = NewRegistry()
	}
	var wg sync.WaitGroup
	for i := range kids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := kids[i].Counter("fleet.session.frames_in")
			h := kids[i].Histogram("residual", DefaultHistogramOpts())
			for r := 0; r < rounds; r++ {
				c.Inc()
				kids[i].Gauge("fleet.session.buffered").Set(float64(r))
				h.Observe(float64(i+1) * 1e-3)
			}
		}(i)
	}
	// Scrape while the writers are hot: values are torn-free but
	// unasserted — this pass exists for the race detector.
	for s := 0; s < 20; s++ {
		hot := NewRegistry()
		for _, kid := range kids {
			hot.Merge(kid)
		}
	}
	wg.Wait()

	final := NewRegistry()
	for _, kid := range kids { // ascending session order — the fleet contract
		final.Merge(kid)
	}
	if got := final.Counter("fleet.session.frames_in").Value(); got != sessions*rounds {
		t.Errorf("fan-in lost counter increments: %d, want %d", got, sessions*rounds)
	}
	if got := final.Histogram("residual", DefaultHistogramOpts()).Count(); got != sessions*rounds {
		t.Errorf("fan-in lost histogram observations: %d, want %d", got, sessions*rounds)
	}
	// The last-merged child's gauge wins — that is what "deterministic
	// order" buys: the aggregate is a pure function of the merge sequence.
	if got := final.Gauge("fleet.session.buffered").Value(); got != rounds-1 {
		t.Errorf("gauge after ordered fan-in = %g, want %d", got, rounds-1)
	}
}

// TestMergeSemantics: counters add, set gauges overwrite (unset ones do
// not), histograms add, nil children are no-ops.
func TestMergeSemantics(t *testing.T) {
	parent := NewRegistry()
	parent.Counter("c").Add(5)
	parent.Gauge("kept").Set(1)
	parent.Gauge("overwritten").Set(1)

	child := NewRegistry()
	child.Counter("c").Add(3)
	child.Gauge("overwritten").Set(2)
	child.Gauge("unset") // created but never Set
	parent.Merge(child)
	parent.Merge(nil)

	if got := parent.Counter("c").Value(); got != 8 {
		t.Errorf("counter merged to %d, want 8", got)
	}
	if got := parent.Gauge("kept").Value(); got != 1 {
		t.Errorf("untouched gauge became %g, want 1", got)
	}
	if got := parent.Gauge("overwritten").Value(); got != 2 {
		t.Errorf("set child gauge merged to %g, want 2", got)
	}
	if got := parent.Gauge("unset").Value(); got != 0 {
		t.Errorf("never-set child gauge leaked %g into the parent", got)
	}
}

// TestRegistryStablePointers: get-or-create returns the same metric for the
// same name, and the first histogram registration fixes the layout.
func TestRegistryStablePointers(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter pointer not stable")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge pointer not stable")
	}
	if r.Timer("x") != r.Timer("x") {
		t.Error("Timer pointer not stable")
	}
	a := r.Histogram("h", HistogramOpts{Lo: 1, Ratio: 2, Buckets: 4})
	b := r.Histogram("h", HistogramOpts{Lo: 99, Ratio: 3, Buckets: 7})
	if a != b {
		t.Error("Histogram pointer not stable across differing opts")
	}
	if got := len(b.Edges()); got != 5 {
		t.Errorf("later opts changed the layout: %d edges, want 5", got)
	}
}

// TestHotPathAllocationFree pins the zero-allocation fast path of every
// hot-loop operation: resolve the metric once, then update through the
// pointer without allocating.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DefaultHistogramOpts())
	tm := r.Timer("t")
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(1) }},
		{"Gauge.Set", func() { g.Set(3.14) }},
		{"Histogram.Observe", func() { h.Observe(0.5) }},
		{"Timer.Observe", func() { tm.Observe(time.Millisecond) }},
		{"Registry.Counter_lookup", func() { r.Counter("c").Inc() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per op, want 0", tc.name, allocs)
		}
	}
}

// TestRegistryConcurrentGetOrCreate hammers get-or-create from many
// goroutines; the race detector plus the stable-pointer check make the
// double-checked locking visible.
func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter(fmt.Sprintf("c%d", j%7)).Inc()
				r.Gauge("g").Set(1)
				r.Histogram("h", DefaultHistogramOpts()).Observe(1)
			}
		}()
	}
	wg.Wait()
	var total int64
	for j := 0; j < 7; j++ {
		total += r.Counter(fmt.Sprintf("c%d", j)).Value()
	}
	if total != 16*100 {
		t.Errorf("lost counter increments: %d, want %d", total, 16*100)
	}
	if got := r.Histogram("h", DefaultHistogramOpts()).Count(); got != 16*100 {
		t.Errorf("lost histogram observations: %d, want %d", got, 16*100)
	}
}

// TestSnapshotIsCopy: mutating the registry after Snapshot must not change
// the snapshot.
func TestSnapshotIsCopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.Histogram("h", DefaultHistogramOpts()).Observe(1)
	s := r.Snapshot()
	r.Counter("c").Add(10)
	r.Histogram("h", DefaultHistogramOpts()).Observe(2)
	if s.Counters["c"] != 1 {
		t.Errorf("snapshot counter moved to %d", s.Counters["c"])
	}
	if s.Histograms["h"].Count != 1 {
		t.Errorf("snapshot histogram moved to %d", s.Histograms["h"].Count)
	}
}
