package telemetry

import (
	"fmt"
	"strings"
)

// BudgetEntry is one stage's share of the lookahead budget.
type BudgetEntry struct {
	// Stage names the consumer (e.g. "transport.prime", "pipeline.adc",
	// "lanc.noncausal_taps", "unused").
	Stage string `json:"stage"`
	// Samples is the lookahead the stage consumes, in samples.
	Samples int `json:"samples"`
}

// BudgetReport itemizes where a deployment's lookahead goes: the playout
// buffering of the packetized transport, any deliberate reference delay,
// the ADC/DSP/DAC/speaker pipeline of Equation 3, the non-causal taps that
// do the actual cancelling, and whatever is left unused. The entries sum
// to the geometric lookahead exactly — the invariant the muteear trace
// test enforces — so a reader can see stage by stage why N is what it is.
type BudgetReport struct {
	// SampleRate converts samples to milliseconds.
	SampleRate float64 `json:"sample_rate"`
	// LookaheadSamples is the total geometric lookahead being spent.
	LookaheadSamples int `json:"lookahead_samples"`
	// Entries lists the consumers in pipeline order.
	Entries []BudgetEntry `json:"entries"`
}

// NewBudgetReport starts a report for a deployment's total lookahead.
func NewBudgetReport(sampleRate float64, lookaheadSamples int) *BudgetReport {
	return &BudgetReport{SampleRate: sampleRate, LookaheadSamples: lookaheadSamples}
}

// Add appends one stage's spend (zero-sample entries are kept: an explicit
// "0" row tells the reader the stage exists and is free).
func (b *BudgetReport) Add(stage string, samples int) {
	b.Entries = append(b.Entries, BudgetEntry{Stage: stage, Samples: samples})
}

// SpentSamples sums the entries.
func (b *BudgetReport) SpentSamples() int {
	total := 0
	for _, e := range b.Entries {
		total += e.Samples
	}
	return total
}

// Ms converts a sample count to milliseconds at the report's rate.
func (b *BudgetReport) Ms(samples int) float64 {
	if b.SampleRate <= 0 {
		return 0
	}
	return float64(samples) / b.SampleRate * 1000
}

// Balanced reports whether the entries account for the lookahead to within
// one sample period (rounding slack from integer sample conversion).
func (b *BudgetReport) Balanced() bool {
	d := b.SpentSamples() - b.LookaheadSamples
	return d >= -1 && d <= 1
}

// Record emits the report into a trace as StageBudget events at t=0, one
// per entry, each carrying the spend in samples and milliseconds.
func (b *BudgetReport) Record(tr *Trace) {
	if tr == nil {
		return
	}
	for _, e := range b.Entries {
		tr.Record(0, StageBudget, e.Stage, map[string]float64{
			"samples": float64(e.Samples),
			"ms":      b.Ms(e.Samples),
		})
	}
}

// Text renders the compact budget report, e.g.:
//
//	lookahead budget: 70 samples (8.75 ms @ 8000 Hz)
//	  transport.prime        40 samples   5.000 ms  57.1%
//	  pipeline.adc            1 samples   0.125 ms   1.4%
//	  ...
//	  accounted 70/70 samples
func (b *BudgetReport) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "lookahead budget: %d samples (%.2f ms @ %g Hz)\n",
		b.LookaheadSamples, b.Ms(b.LookaheadSamples), b.SampleRate)
	for _, e := range b.Entries {
		pct := 0.0
		if b.LookaheadSamples > 0 {
			pct = float64(e.Samples) / float64(b.LookaheadSamples) * 100
		}
		fmt.Fprintf(&sb, "  %-24s %5d samples %8.3f ms %5.1f%%\n",
			e.Stage, e.Samples, b.Ms(e.Samples), pct)
	}
	fmt.Fprintf(&sb, "  accounted %d/%d samples\n", b.SpentSamples(), b.LookaheadSamples)
	return sb.String()
}
