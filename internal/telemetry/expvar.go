package telemetry

import (
	"encoding/json"
	"expvar"
	"sync"
)

// expvarHandle adapts a swappable Registry to the expvar.Var interface.
type expvarHandle struct {
	mu  sync.Mutex
	reg *Registry
}

func newExpvarHandle(r *Registry) *expvarHandle { return &expvarHandle{reg: r} }

// String renders the current snapshot as JSON (the expvar contract).
func (h *expvarHandle) String() string {
	h.mu.Lock()
	reg := h.reg
	h.mu.Unlock()
	if reg == nil {
		return "{}"
	}
	b, err := json.Marshal(reg.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// PublishExpvar exposes live registry snapshots on the process's expvar
// page (GET /debug/vars) under the given name. Re-publishing an existing
// name replaces the registry being snapshotted rather than panicking, so
// repeated runs inside one process stay observable.
func PublishExpvar(name string, r *Registry) {
	if v := expvar.Get(name); v != nil {
		if h, ok := v.(*expvarHandle); ok {
			h.mu.Lock()
			h.reg = r
			h.mu.Unlock()
			return
		}
	}
	expvar.Publish(name, newExpvarHandle(r))
}
