package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// Canonical pipeline stage identifiers, in signal order. Trace events tag
// one of these so a reader can follow a sample block from the relay
// microphone to the residual at the ear.
const (
	// StageCapture is the relay microphone capture (pre-link reference).
	StageCapture = "capture"
	// StageLink is the wireless forwarding leg (FM chain or ideal wire).
	StageLink = "link"
	// StageStream is the packetized transport: framing, FEC, jitter buffer.
	StageStream = "stream"
	// StageLookahead is the lookahead buffer state at the canceller input.
	StageLookahead = "lookahead"
	// StageLANC is the adaptive filter step (step size, tap energy,
	// freeze/ramp state).
	StageLANC = "lanc"
	// StageResidual is the error-microphone residual.
	StageResidual = "residual"
	// StageBudget tags the per-stage lookahead budget entries (see
	// BudgetReport.Record); their samples sum to the run's lookahead.
	StageBudget = "budget"
	// StageSupervisor tags the degradation-ladder supervisor: state
	// transitions, link-health estimates, and reacquisition probes.
	StageSupervisor = "supervisor"
	// StageDrift tags the clock-drift stage between the jitter buffer and
	// the canceller: estimated skew ppm, applied resampler rate, and the
	// occupancy (residual alignment) error steering it.
	StageDrift = "drift"
	// StageMesh tags the relay-mesh supervisor: membership churn,
	// hysteretic and emergency handoffs, and orphaned windows.
	StageMesh = "mesh"
)

// Event is one trace record: a pipeline stage observed at a sample-clock
// timestamp. Timestamps are sample indices, not wall-clock times, so a
// trace of a deterministic run is itself deterministic — the property the
// golden-trace regression suite relies on.
type Event struct {
	// T is the sample-clock timestamp (index of the first sample of the
	// block the event describes).
	T int64 `json:"t"`
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Name distinguishes sub-series within a stage (e.g. the budget
	// entry's stage name, or a per-source capture channel).
	Name string `json:"name,omitempty"`
	// Values carries the measurements. encoding/json sorts the keys, so
	// the JSONL form is deterministic too.
	Values map[string]float64 `json:"values,omitempty"`
}

// Trace records pipeline events in arrival order. It is safe for
// concurrent recorders (each simulation run owns one goroutine, but the
// HTTP snapshot endpoint may read concurrently).
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace creates an empty trace recorder.
func NewTrace() *Trace { return &Trace{} }

// Record appends one event. Non-finite values are clamped (NaN → 0,
// ±Inf → ±MaxFloat64) so the trace always serializes to valid JSON.
func (tr *Trace) Record(t int64, stage, name string, values map[string]float64) {
	for k, v := range values {
		if math.IsNaN(v) {
			values[k] = 0
		} else if math.IsInf(v, 1) {
			values[k] = math.MaxFloat64
		} else if math.IsInf(v, -1) {
			values[k] = -math.MaxFloat64
		}
	}
	tr.mu.Lock()
	tr.events = append(tr.events, Event{T: t, Stage: stage, Name: name, Values: values})
	tr.mu.Unlock()
}

// Len returns the number of recorded events.
func (tr *Trace) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.events)
}

// Events returns a copy of the recorded events in arrival order.
func (tr *Trace) Events() []Event {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]Event, len(tr.events))
	copy(out, tr.events)
	return out
}

// WriteJSONL writes the trace as one JSON object per line.
func (tr *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range tr.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("telemetry: encode trace event: %w", err)
		}
	}
	return bw.Flush()
}

// WriteFile writes the trace as a JSONL file at path.
func (tr *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: create trace file: %w", err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadJSONL parses a JSONL trace (blank lines are skipped).
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read trace: %w", err)
	}
	return out, nil
}

// ReadFile parses the JSONL trace file at path.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: open trace file: %w", err)
	}
	defer f.Close()
	return ReadJSONL(f)
}
