package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestTraceRoundTrip: write → read preserves every event, and the JSONL
// form is deterministic (encoding/json sorts the value keys).
func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.Record(0, StageBudget, "transport.prime", map[string]float64{"samples": 40, "ms": 5})
	tr.Record(512, StageLANC, "step", map[string]float64{"mu_eff": 0.1, "tap_energy": 0.25})
	tr.Record(1024, StageResidual, "ear", map[string]float64{"power_db": -31.4})

	var a, b bytes.Buffer
	if err := tr.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two serializations of the same trace differ")
	}

	got, err := ReadJSONL(&a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Events()) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, tr.Events())
	}

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	fromFile, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFile, tr.Events()) {
		t.Error("file round trip mismatch")
	}
}

// TestTraceClampsNonFinite: NaN/Inf must never reach the JSONL (they are
// not valid JSON numbers and would poison the golden diff).
func TestTraceClampsNonFinite(t *testing.T) {
	tr := NewTrace()
	tr.Record(0, StageResidual, "bad", map[string]float64{
		"nan":     math.NaN(),
		"posinf":  math.Inf(1),
		"neginf":  math.Inf(-1),
		"regular": 2.5,
	})
	ev := tr.Events()[0]
	if ev.Values["nan"] != 0 {
		t.Errorf("NaN clamped to %g, want 0", ev.Values["nan"])
	}
	if ev.Values["posinf"] != math.MaxFloat64 {
		t.Errorf("+Inf clamped to %g", ev.Values["posinf"])
	}
	if ev.Values["neginf"] != -math.MaxFloat64 {
		t.Errorf("-Inf clamped to %g", ev.Values["neginf"])
	}
	if ev.Values["regular"] != 2.5 {
		t.Errorf("finite value disturbed: %g", ev.Values["regular"])
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("clamped trace failed to serialize: %v", err)
	}
}

// TestReadJSONLErrors: blank lines are tolerated, malformed lines are
// reported with their line number.
func TestReadJSONLErrors(t *testing.T) {
	events, err := ReadJSONL(strings.NewReader("\n{\"t\":1,\"stage\":\"lanc\"}\n\n"))
	if err != nil {
		t.Fatalf("blank lines: %v", err)
	}
	if len(events) != 1 || events[0].T != 1 {
		t.Fatalf("got %+v", events)
	}
	if _, err := ReadJSONL(strings.NewReader("{\"t\":1}\nnot json\n")); err == nil {
		t.Fatal("malformed line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name the offending line", err)
	}
}

// TestBudgetReportInvariant: the report always accounts for the lookahead.
func TestBudgetReportInvariant(t *testing.T) {
	b := NewBudgetReport(8000, 70)
	b.Add("transport.prime", 40)
	b.Add("pipeline.adc", 1)
	b.Add("lanc.noncausal_taps", 25)
	b.Add("unused", 4)
	if !b.Balanced() {
		t.Errorf("spent %d of %d: not balanced", b.SpentSamples(), b.LookaheadSamples)
	}
	if ms := b.Ms(40); ms != 5 {
		t.Errorf("40 samples at 8 kHz = %g ms, want 5", ms)
	}
	txt := b.Text()
	for _, want := range []string{"lookahead budget: 70 samples", "transport.prime", "accounted 70/70"} {
		if !strings.Contains(txt, want) {
			t.Errorf("budget text missing %q:\n%s", want, txt)
		}
	}

	tr := NewTrace()
	b.Record(tr)
	var sum float64
	for _, ev := range tr.Events() {
		if ev.Stage == StageBudget {
			sum += ev.Values["samples"]
		}
	}
	if sum != 70 {
		t.Errorf("traced budget entries sum to %g, want 70", sum)
	}
}

// TestPublishExpvar: publishing is idempotent (no duplicate-name panic) and
// the exposed string is a valid JSON snapshot that follows the registry.
func TestPublishExpvar(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("a").Add(7)
	PublishExpvar("telemetry_test_reg", r1)
	r2 := NewRegistry()
	r2.Counter("a").Add(9)
	PublishExpvar("telemetry_test_reg", r2) // must swap, not panic

	h := newExpvarHandle(r2)
	var snap Snapshot
	if err := json.Unmarshal([]byte(h.String()), &snap); err != nil {
		t.Fatalf("expvar string is not JSON: %v", err)
	}
	if snap.Counters["a"] != 9 {
		t.Errorf("expvar snapshot counter = %d, want 9", snap.Counters["a"])
	}
}
