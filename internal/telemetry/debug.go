package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugMux returns a dedicated ServeMux carrying the standard debug
// surface — expvar under /debug/vars and the pprof family under
// /debug/pprof/ — without touching http.DefaultServeMux. Handlers other
// packages register on the default mux therefore cannot leak onto a
// debug port, and the debug surface stays available even when the
// default mux is repurposed.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr synchronously — so a bad address or an occupied
// port fails here, before the caller commits to its processing loop —
// and then serves DebugMux in the background. It returns the bound
// address (useful with port 0).
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: debug endpoint: %w", err)
	}
	go http.Serve(ln, DebugMux())
	return ln.Addr().String(), nil
}
