package telemetry

import (
	"math"
	"sync/atomic"
)

// HistogramOpts fixes a histogram's log-spaced bucket layout: Buckets
// finite buckets with edges Lo·Ratio^i, plus an underflow bucket below Lo
// and an overflow bucket at or above the last edge. Bucket i covers
// [edge[i], edge[i+1]).
type HistogramOpts struct {
	// Lo is the lower edge of the first finite bucket (must be > 0).
	Lo float64
	// Ratio is the geometric growth factor between edges (must be > 1).
	Ratio float64
	// Buckets is the number of finite buckets (must be >= 1).
	Buckets int
}

// DefaultHistogramOpts spans eight decades from 1e-4 with ~3 buckets per
// decade — a broad general-purpose layout for positive magnitudes.
func DefaultHistogramOpts() HistogramOpts {
	return HistogramOpts{Lo: 1e-4, Ratio: 2, Buckets: 27}
}

// Histogram counts observations into fixed log-spaced buckets. Observe is
// allocation-free and uses an exact binary search over precomputed edges,
// so bucket membership does not depend on floating-point log rounding.
// Negative and NaN observations land in the underflow bucket (the
// pipeline's series are magnitudes; a negative value is a bug signal, not
// a measurement, and must not corrupt the layout).
type Histogram struct {
	opts  HistogramOpts
	edges []float64 // len = Buckets+1, edges[i] = Lo * Ratio^i
	// counts[0] is underflow, counts[1..Buckets] the finite buckets,
	// counts[Buckets+1] overflow.
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

// NewHistogram builds a histogram, clamping invalid options to the
// defaults (metrics construction must not fail mid-pipeline).
func NewHistogram(opts HistogramOpts) *Histogram {
	def := DefaultHistogramOpts()
	if !(opts.Lo > 0) {
		opts.Lo = def.Lo
	}
	if !(opts.Ratio > 1) {
		opts.Ratio = def.Ratio
	}
	if opts.Buckets < 1 {
		opts.Buckets = def.Buckets
	}
	h := &Histogram{
		opts:   opts,
		edges:  make([]float64, opts.Buckets+1),
		counts: make([]atomic.Uint64, opts.Buckets+2),
	}
	e := opts.Lo
	for i := range h.edges {
		h.edges[i] = e
		e *= opts.Ratio
	}
	return h
}

// Edges returns a copy of the finite bucket edges (len Buckets+1); bucket
// i covers [Edges[i], Edges[i+1]).
func (h *Histogram) Edges() []float64 {
	out := make([]float64, len(h.edges))
	copy(out, h.edges)
	return out
}

// bucketIndex maps a value to its counts slot: 0 for underflow (v <
// edges[0], negative, or NaN), len(counts)-1 for overflow.
func (h *Histogram) bucketIndex(v float64) int {
	if !(v >= h.edges[0]) { // catches v < Lo, negatives, and NaN
		return 0
	}
	if v >= h.edges[len(h.edges)-1] {
		return len(h.counts) - 1
	}
	// Binary search: find the last edge <= v.
	lo, hi := 0, len(h.edges)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if h.edges[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Observe records one value. Allocation-free.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	if math.IsNaN(v) {
		return // keep the running sum finite
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all finite observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// merge adds another histogram's counts into h. Layouts must match (they
// do, by construction, when both came from the same registry name); on a
// layout mismatch the other histogram's observations are folded through
// Observe bucket-by-bucket midpoints to avoid silent loss.
func (h *Histogram) merge(o *Histogram) {
	if h.opts == o.opts {
		for i := range h.counts {
			h.counts[i].Add(o.counts[i].Load())
		}
		h.count.Add(o.count.Load())
		for {
			old := h.sumBits.Load()
			next := math.Float64bits(math.Float64frombits(old) + o.Sum())
			if h.sumBits.CompareAndSwap(old, next) {
				break
			}
		}
		return
	}
	snap := o.Snapshot()
	for i, c := range snap.Counts {
		mid := snap.midpoint(i)
		for n := uint64(0); n < c; n++ {
			h.Observe(mid)
		}
	}
}

// HistogramSnapshot is a copy of a histogram's state: Counts[0] is the
// underflow bucket, Counts[1..len-2] the finite buckets (bucket i+1 covers
// [Edges[i], Edges[i+1])), Counts[len-1] the overflow bucket.
type HistogramSnapshot struct {
	Edges  []float64 `json:"edges"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Edges:  h.Edges(),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// midpoint returns a representative value for counts slot i.
func (s HistogramSnapshot) midpoint(i int) float64 {
	switch {
	case i <= 0:
		return s.Edges[0] / 2
	case i >= len(s.Counts)-1:
		return s.Edges[len(s.Edges)-1]
	default:
		return (s.Edges[i-1] + s.Edges[i]) / 2
	}
}

// Quantile estimates the q-quantile (0 <= q <= 1) from bucket midpoints;
// 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count-1))
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum > rank {
			return s.midpoint(i)
		}
	}
	return s.midpoint(len(s.Counts) - 1)
}
