// Package telemetry is the pipeline observability layer: a dependency-free
// (stdlib-only), allocation-conscious metrics registry plus a per-stage
// trace recorder keyed to the sample clock.
//
// MUTE's whole premise is a latency budget — the RF-forwarded reference
// must beat the acoustic wavefront by enough milliseconds to absorb the
// DSP/DAC pipeline and feed the non-causal LANC taps — and this package
// makes that budget visible at runtime: where the lookahead goes stage by
// stage (BudgetReport), how the transport is treating frames (counters),
// how the canceller is adapting (gauges, histograms), and how long each
// stage takes in wall-clock terms (timers).
//
// Two rules shape the design:
//
//   - Result neutrality: instrumentation only ever *reads* pipeline state.
//     Enabling a registry or a trace must not change a single output bit of
//     any experiment (enforced by tests in internal/experiments).
//
//   - Determinism under the worker pool: concurrent experiment runs each
//     write to their own per-run Registry, and the parent merges the
//     children in task order (Registry.Merge), so the aggregate is
//     identical for any worker count. Only Timers carry wall-clock values
//     and are therefore excluded from determinism comparisons.
//
// Hot-path operations (Counter.Add, Gauge.Set, Histogram.Observe,
// Timer.Observe) are allocation-free; tests pin this with
// testing.AllocsPerRun.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer series (e.g. frames lost).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Allocation-free.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value float series (e.g. lookahead samples, tap energy).
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set records the current value. Allocation-free.
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the last set value (0 if never set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer aggregates wall-clock stage durations into a log-spaced histogram
// of seconds. Timer values are inherently non-deterministic; they are kept
// as a distinct kind so determinism tests can skip them.
type Timer struct {
	h Histogram
}

// Observe records one duration. Allocation-free.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// Since records the time elapsed from start, returning the duration.
func (t *Timer) Since(start time.Time) time.Duration {
	d := time.Since(start)
	t.Observe(d)
	return d
}

// Count returns how many durations were observed.
func (t *Timer) Count() uint64 { return t.h.Count() }

// Sum returns the total observed seconds.
func (t *Timer) Sum() float64 { return t.h.Sum() }

// Registry holds named metrics. Lookups are get-or-create and safe for
// concurrent use; the returned metric pointers are stable, so hot loops
// resolve a name once and update through the pointer.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timers   map[string]*Timer
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// layout on first use. The first registration fixes the layout; later
// calls return the existing histogram regardless of the options passed.
func (r *Registry) Histogram(name string, opts HistogramOpts) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram(opts)
	r.hists[name] = h
	return h
}

// Timer returns the named timer, creating it on first use. Timers span
// 1 µs to ~17 s with 2× buckets.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok = r.timers[name]; ok {
		return t
	}
	t = &Timer{h: *NewHistogram(HistogramOpts{Lo: 1e-6, Ratio: 2, Buckets: 24})}
	r.timers[name] = t
	return t
}

// Merge folds a child registry into r: counters and histogram buckets add,
// a gauge the child has set overwrites the parent's value, timers add.
// Experiment runners merge per-run child registries in task order, which
// makes the aggregate deterministic for any worker count.
func (r *Registry) Merge(child *Registry) {
	if child == nil {
		return
	}
	child.mu.RLock()
	defer child.mu.RUnlock()
	for name, c := range child.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range child.gauges {
		if g.set.Load() {
			r.Gauge(name).Set(g.Value())
		}
	}
	for name, h := range child.hists {
		r.Histogram(name, h.opts).merge(h)
	}
	for name, t := range child.timers {
		r.Timer(name).h.merge(&t.h)
	}
}

// Snapshot is a point-in-time copy of a registry, ordered and JSON-ready.
// Timers are kept apart from histograms because their values are wall
// clock (non-deterministic); everything else is deterministic for a fixed
// seed and merge order.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timers     map[string]HistogramSnapshot `json:"timers,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Timers:     make(map[string]HistogramSnapshot, len(r.timers)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, t := range r.timers {
		s.Timers[name] = t.h.Snapshot()
	}
	return s
}

// Deterministic returns a copy of the snapshot with the wall-clock timers
// stripped — the part that must be identical across worker counts.
func (s Snapshot) Deterministic() Snapshot {
	out := s
	out.Timers = nil
	return out
}

// Text renders the snapshot as an aligned, name-sorted report.
func (s Snapshot) Text() string {
	var b []byte
	section := func(title string) { b = append(b, fmt.Sprintf("%s:\n", title)...) }
	if len(s.Counters) > 0 {
		section("counters")
		for _, name := range sortedKeys(s.Counters) {
			b = append(b, fmt.Sprintf("  %-40s %d\n", name, s.Counters[name])...)
		}
	}
	if len(s.Gauges) > 0 {
		section("gauges")
		for _, name := range sortedKeys(s.Gauges) {
			b = append(b, fmt.Sprintf("  %-40s %g\n", name, s.Gauges[name])...)
		}
	}
	if len(s.Histograms) > 0 {
		section("histograms")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			b = append(b, fmt.Sprintf("  %-40s n=%d sum=%g p50=%g p99=%g\n",
				name, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.99))...)
		}
	}
	if len(s.Timers) > 0 {
		section("timers")
		for _, name := range sortedKeys(s.Timers) {
			h := s.Timers[name]
			b = append(b, fmt.Sprintf("  %-40s n=%d total=%.3gs p50=%.3gs p99=%.3gs\n",
				name, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.99))...)
		}
	}
	return string(b)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
