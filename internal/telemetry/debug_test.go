package telemetry

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// sentinelOnce guards the DefaultServeMux registration so -count=N reruns
// in one process don't double-register.
var sentinelOnce sync.Once

// TestServeDebug checks the debug endpoint binds synchronously, serves
// expvar and pprof, and does NOT serve handlers registered on the default
// mux — the isolation that keeps a debug port from leaking application
// routes (and vice versa).
func TestServeDebug(t *testing.T) {
	sentinelOnce.Do(func() {
		http.HandleFunc("/telemetry-test-sentinel", func(w http.ResponseWriter, _ *http.Request) {
			w.WriteHeader(http.StatusOK)
		})
	})
	bound, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + bound + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/vars")
	if code != http.StatusOK {
		t.Errorf("/debug/vars returned %d", code)
	}
	if !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("/debug/vars is not a JSON object: %.40q", body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline returned %d", code)
	}
	if code, _ := get("/telemetry-test-sentinel"); code != http.StatusNotFound {
		t.Errorf("default-mux handler served on the debug port (status %d)", code)
	}
}

// TestServeDebugBindFailure checks a bad address fails at the call site —
// the live CLI relies on this to abort before its audio loop starts
// rather than discovering a dead endpoint minutes in.
func TestServeDebugBindFailure(t *testing.T) {
	if _, err := ServeDebug("127.0.0.1:1023:bogus"); err == nil {
		t.Fatal("ServeDebug accepted an unparseable address")
	}
	bound, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ServeDebug(bound); err == nil {
		t.Fatal("ServeDebug bound an occupied port without error")
	} else if !strings.Contains(err.Error(), "debug endpoint") {
		t.Errorf("error %q lacks the debug-endpoint context", err)
	}
}
