// Package core implements LANC — Lookahead-Aware Noise Cancellation — the
// primary contribution of the MUTE paper (Section 3, Algorithm 1).
//
// LANC is a filtered-x adaptive filter whose taps extend into the future:
// h_AF(k) for k ∈ [−N, L]. The non-causal taps (k < 0) are realizable
// because the IoT relay forwards the reference signal over RF, delivering
// x(t+N) while the acoustic wavefront carrying x(t) is still in flight.
// Larger N yields a better approximation of the non-causal inverse channel
// h_nr⁻¹ (Equation 2) and therefore deeper cancellation of unpredictable
// wide-band sound.
//
// The package also implements the paper's second lookahead opportunity:
// predictive sound profiling (Section 3.2(2)). A classifier watches the
// lookahead buffer, recognizes imminent profile transitions (speech
// starting or stopping), and swaps cached converged filters in place of
// gradient re-convergence.
package core

import (
	"fmt"
	"math"

	"mute/internal/dsp"
	"mute/internal/profile"
)

// Config parameterizes a LANC instance.
type Config struct {
	// NonCausalTaps is N: how many future reference samples the filter
	// uses. It must not exceed the lookahead the deployment provides
	// (see Budget).
	NonCausalTaps int
	// CausalTaps is L: how many past reference samples the filter uses.
	CausalTaps int
	// Mu is the adaptation step size.
	Mu float64
	// Normalized selects NLMS-style power-normalized steps.
	Normalized bool
	// SecondaryPath is the estimate ĥ_se of the anti-noise speaker →
	// error microphone channel, obtained via anc.EstimateSecondaryPath.
	SecondaryPath []float64
	// Leak is an optional LMS leakage factor in [0, 1).
	Leak float64
	// ErrorDelay is how many samples late the residual error reaches the
	// adaptation (e.g. the uplink leg of the Tabletop variant of Section
	// 4.3). The filtered-x pairing is shifted to match, which keeps the
	// gradient aligned; 0 for co-located DSPs.
	ErrorDelay int

	// Profiling enables predictive filter switching.
	Profiling bool
	// ProfileWindow is the signature window length in samples (default
	// 256). The window ends at the most-future sample available, so
	// transitions are seen NonCausalTaps samples before they arrive.
	ProfileWindow int
	// ProfileHop is how often (samples) the profiler re-classifies
	// (default 64).
	ProfileHop int
	// ProfileBands is the signature resolution (default 8).
	ProfileBands int
	// ProfileThreshold is the signature matching distance (default 0.25).
	ProfileThreshold float64
	// MaxProfiles caps tracked profiles (default 8).
	MaxProfiles int
	// SampleRate is required when Profiling is on.
	SampleRate float64
}

// Validate checks the configuration and applies profiling defaults.
func (c *Config) Validate() error {
	if c.NonCausalTaps < 0 {
		return fmt.Errorf("core: negative non-causal taps %d", c.NonCausalTaps)
	}
	if c.CausalTaps < 0 {
		return fmt.Errorf("core: negative causal taps %d", c.CausalTaps)
	}
	if c.NonCausalTaps+c.CausalTaps == 0 {
		return fmt.Errorf("core: filter needs at least one tap")
	}
	if c.Mu <= 0 {
		return fmt.Errorf("core: mu must be positive, got %g", c.Mu)
	}
	if c.Leak < 0 || c.Leak >= 1 {
		return fmt.Errorf("core: leak %g outside [0, 1)", c.Leak)
	}
	if c.ErrorDelay < 0 {
		return fmt.Errorf("core: negative error delay %d", c.ErrorDelay)
	}
	if len(c.SecondaryPath) == 0 {
		return fmt.Errorf("core: missing secondary path estimate")
	}
	if c.Profiling {
		if c.SampleRate <= 0 {
			return fmt.Errorf("core: profiling requires a sample rate")
		}
		if c.ProfileWindow <= 0 {
			c.ProfileWindow = 256
		}
		if c.ProfileHop <= 0 {
			c.ProfileHop = 64
		}
		if c.ProfileBands <= 0 {
			c.ProfileBands = 8
		}
		if c.ProfileThreshold <= 0 {
			c.ProfileThreshold = 0.25
		}
		if c.MaxProfiles <= 0 {
			c.MaxProfiles = 8
		}
	}
	return nil
}

// LANC is the lookahead-aware noise canceller (Algorithm 1).
type LANC struct {
	cfg Config

	// Weights: w[i] holds h_AF(k) with k = i - N, i ∈ [0, N+L].
	w []float64

	// Reference and filtered-x windows. Both expose offsets
	// [-L, +N] around the current time t.
	xBuf   *dsp.LookaheadBuffer
	fxBuf  *dsp.LookaheadBuffer
	sec    *dsp.StreamConvolver
	fxPow  float64
	xPow   float64
	errVar float64 // running residual variance for robust update clipping

	// Profiling state.
	classifier *profile.Classifier
	cache      *profile.FilterCache
	window     []float64 // sliding raw window ending at the newest sample
	winFill    int
	hopCount   int
	smBands    []float64 // exponentially smoothed band signature
	smLevel    float64
	smPrimed   bool
	currentID  int
	pendingID  int // candidate profile awaiting confirmation
	pendingRun int // consecutive hops the candidate has been seen
	switches   int
}

// New creates a LANC instance. The Config is validated and profiling
// defaults are filled in.
func New(cfg Config) (*LANC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	xb, err := dsp.NewLookaheadBuffer(cfg.CausalTaps+cfg.ErrorDelay, cfg.NonCausalTaps)
	if err != nil {
		return nil, err
	}
	fxb, err := dsp.NewLookaheadBuffer(cfg.CausalTaps+cfg.ErrorDelay, cfg.NonCausalTaps)
	if err != nil {
		return nil, err
	}
	l := &LANC{
		cfg:   cfg,
		w:     make([]float64, cfg.NonCausalTaps+cfg.CausalTaps+1),
		xBuf:  xb,
		fxBuf: fxb,
		sec:   dsp.NewStreamConvolver(cfg.SecondaryPath),
	}
	if cfg.Profiling {
		cl, err := profile.NewClassifier(cfg.ProfileThreshold, cfg.MaxProfiles)
		if err != nil {
			return nil, err
		}
		l.classifier = cl
		l.cache = profile.NewFilterCache()
		l.window = make([]float64, cfg.ProfileWindow)
	}
	return l, nil
}

// Push feeds the newest wirelessly forwarded reference sample x(t+N) and
// advances the algorithm's clock to time t. It must be called exactly once
// per sample period, before AntiNoise and Adapt for that period.
func (l *LANC) Push(x float64) {
	l.xBuf.Push(x)
	l.fxBuf.Push(l.sec.Process(x))
	// Maintain running filtered-x power across the whole tap window for
	// normalized updates.
	if l.cfg.Normalized {
		l.fxPow = 0
		l.xPow = 0
		for k := -l.cfg.NonCausalTaps; k <= l.cfg.CausalTaps; k++ {
			v := l.fxBuf.At(-k)
			l.fxPow += v * v
			u := l.xBuf.At(-k)
			l.xPow += u * u
		}
	}
	if l.cfg.Profiling {
		l.profileStep(x)
	}
}

// AntiNoise returns the anti-noise sample α(t) = Σ_{k=-N}^{L} h_AF(k) x(t−k)
// (Equation 8). The caller plays it through the anti-noise speaker.
func (l *LANC) AntiNoise() float64 {
	var a float64
	for i, wi := range l.w {
		k := i - l.cfg.NonCausalTaps
		a += wi * l.xBuf.At(-k)
	}
	return a
}

// Adapt applies the filtered-x gradient step for the measured residual
// e(t) at the error microphone (Equation 7, extended to k < 0):
// h_AF(k) ← h_AF(k) − µ e(t) (ĥ_se ∗ x)(t−k).
func (l *LANC) Adapt(e float64) {
	// Robust clipping: impulsive residuals (hammer strikes, clicks) carry
	// gradients far outside the LMS stability region; limit the error to
	// a few standard deviations of its recent history (Huber-style).
	l.errVar = 0.998*l.errVar + 0.002*e*e
	if limit := 3 * math.Sqrt(l.errVar); limit > 0 && (e > limit || e < -limit) {
		if e > 0 {
			e = limit
		} else {
			e = -limit
		}
	}
	mu := l.cfg.Mu
	if l.cfg.Normalized {
		// The regularizer keeps the effective step bounded through quiet
		// stretches, and the raw reference power guards frequencies where
		// the secondary path has little gain (rumble under the
		// transducer's high-pass corner) from inflating the step.
		mu /= l.fxPow + 0.05*l.xPow + 1e-3
	}
	leak := 1 - l.cfg.Leak*l.cfg.Mu
	for i := range l.w {
		k := i - l.cfg.NonCausalTaps
		w := l.w[i]
		if l.cfg.Leak > 0 {
			w *= leak
		}
		// A stale error (ErrorDelay > 0) pairs with the equally stale
		// filtered-x history.
		l.w[i] = w - mu*e*l.fxBuf.At(-k-l.cfg.ErrorDelay)
	}
}

// Step is the per-sample convenience wrapper used by simple deployments:
// push the newest forwarded sample, emit the anti-noise for the current
// instant, and adapt with the error measured for the previous instant.
func (l *LANC) Step(xNew, ePrev float64) float64 {
	l.Adapt(ePrev)
	l.Push(xNew)
	return l.AntiNoise()
}

// Weights returns a copy of h_AF indexed so that Weights()[i] is the tap
// for k = i − NonCausalTaps.
func (l *LANC) Weights() []float64 {
	out := make([]float64, len(l.w))
	copy(out, l.w)
	return out
}

// SetWeights loads weights (e.g. from a cached profile).
func (l *LANC) SetWeights(w []float64) error {
	if len(w) != len(l.w) {
		return fmt.Errorf("core: weight length %d != %d", len(w), len(l.w))
	}
	copy(l.w, w)
	return nil
}

// NonCausalTaps returns N.
func (l *LANC) NonCausalTaps() int { return l.cfg.NonCausalTaps }

// CausalTaps returns L.
func (l *LANC) CausalTaps() int { return l.cfg.CausalTaps }

// Switches returns how many predictive filter swaps the profiler has
// performed.
func (l *LANC) Switches() int { return l.switches }

// CurrentProfile returns the active profile slot (0 = silence) or -1 when
// profiling is disabled.
func (l *LANC) CurrentProfile() int {
	if !l.cfg.Profiling {
		return -1
	}
	return l.currentID
}

// Reset clears all adaptation and profiling state.
func (l *LANC) Reset() {
	for i := range l.w {
		l.w[i] = 0
	}
	l.xBuf.Reset()
	l.fxBuf.Reset()
	l.sec.Reset()
	l.fxPow = 0
	l.xPow = 0
	l.errVar = 0
	l.winFill = 0
	l.hopCount = 0
	l.smPrimed = false
	l.smLevel = 0
	l.currentID = 0
	l.pendingID = 0
	l.pendingRun = 0
	l.switches = 0
	if l.cfg.Profiling {
		l.classifier, _ = profile.NewClassifier(l.cfg.ProfileThreshold, l.cfg.MaxProfiles)
		l.cache = profile.NewFilterCache()
	}
}

// profileStep slides the raw-signal window (which ends at the most-future
// sample) and, every hop, classifies it. On a profile change it caches the
// outgoing filter and loads the cached filter for the incoming profile.
func (l *LANC) profileStep(xNew float64) {
	copy(l.window, l.window[1:])
	l.window[len(l.window)-1] = xNew
	if l.winFill < len(l.window) {
		l.winFill++
		return
	}
	l.hopCount++
	if l.hopCount < l.cfg.ProfileHop {
		return
	}
	l.hopCount = 0
	sig, err := profile.Compute(l.window, l.cfg.SampleRate, l.cfg.ProfileBands)
	if err != nil {
		return
	}
	// Exponentially smooth the signature across hops so syllable-scale
	// texture (voiced vs fricative frames of the same talker) does not
	// masquerade as a profile change.
	const alpha = 0.4
	if !l.smPrimed || sig.Silent != (l.smLevel < profile.SilenceFloor) {
		l.smBands = append(l.smBands[:0], sig.Bands...)
		l.smLevel = sig.Level
		l.smPrimed = true
	} else {
		for i := range l.smBands {
			if i < len(sig.Bands) {
				l.smBands[i] = (1-alpha)*l.smBands[i] + alpha*sig.Bands[i]
			}
		}
		l.smLevel = (1-alpha)*l.smLevel + alpha*sig.Level
	}
	smoothed := profile.Signature{
		Bands:  l.smBands,
		Level:  l.smLevel,
		Silent: l.smLevel < profile.SilenceFloor,
	}
	id, _ := l.classifier.Classify(smoothed)
	if id == l.currentID {
		l.pendingRun = 0
		return
	}
	// Require two consecutive hops agreeing on the new profile before
	// switching, so syllable-scale fluctuations do not thrash the cache.
	if id != l.pendingID {
		l.pendingID = id
		l.pendingRun = 1
		return
	}
	l.pendingRun++
	if l.pendingRun < 2 {
		return
	}
	// Imminent transition: cache the converged filter for the outgoing
	// profile and preload the incoming one if we have seen it before.
	l.cache.Store(l.currentID, l.w)
	if cached := l.cache.Load(id); cached != nil {
		copy(l.w, cached)
	}
	l.currentID = id
	l.pendingRun = 0
	l.switches++
}
