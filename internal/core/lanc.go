// Package core implements LANC — Lookahead-Aware Noise Cancellation — the
// primary contribution of the MUTE paper (Section 3, Algorithm 1).
//
// LANC is a filtered-x adaptive filter whose taps extend into the future:
// h_AF(k) for k ∈ [−N, L]. The non-causal taps (k < 0) are realizable
// because the IoT relay forwards the reference signal over RF, delivering
// x(t+N) while the acoustic wavefront carrying x(t) is still in flight.
// Larger N yields a better approximation of the non-causal inverse channel
// h_nr⁻¹ (Equation 2) and therefore deeper cancellation of unpredictable
// wide-band sound.
//
// The package also implements the paper's second lookahead opportunity:
// predictive sound profiling (Section 3.2(2)). A classifier watches the
// lookahead buffer, recognizes imminent profile transitions (speech
// starting or stopping), and swaps cached converged filters in place of
// gradient re-convergence.
package core

import (
	"fmt"
	"math"

	"mute/internal/dsp"
	"mute/internal/profile"
)

// Config parameterizes a LANC instance.
type Config struct {
	// NonCausalTaps is N: how many future reference samples the filter
	// uses. It must not exceed the lookahead the deployment provides
	// (see Budget).
	NonCausalTaps int
	// CausalTaps is L: how many past reference samples the filter uses.
	CausalTaps int
	// Mu is the adaptation step size.
	Mu float64
	// Normalized selects NLMS-style power-normalized steps.
	Normalized bool
	// SecondaryPath is the estimate ĥ_se of the anti-noise speaker →
	// error microphone channel, obtained via anc.EstimateSecondaryPath.
	SecondaryPath []float64
	// Leak is an optional LMS leakage factor in [0, 1).
	Leak float64
	// ErrorDelay is how many samples late the residual error reaches the
	// adaptation (e.g. the uplink leg of the Tabletop variant of Section
	// 4.3). The filtered-x pairing is shifted to match, which keeps the
	// gradient aligned; 0 for co-located DSPs.
	ErrorDelay int

	// LossAware makes the canceller transport-aware: adaptation freezes
	// while concealed (zero-filled) reference samples from a lossy link
	// sit inside the gradient window — NLMS adapting against zeros
	// corrupts the filter exactly when the link is worst — and the step
	// size ramps back linearly over RecoveryRamp samples once real
	// samples return. The profiler (when enabled) also holds its current
	// filter instead of classifying a zero-filled window as silence.
	// Concealment is reported per sample via PushMasked / StepMasked;
	// degradation is bounded at the passive-isolation floor (weights
	// hold, anti-noise from the surviving samples), never divergence.
	LossAware bool
	// RecoveryRamp is the post-loss ramp-back length in samples (default
	// 256 or the filter window length, whichever is larger).
	RecoveryRamp int

	// Profiling enables predictive filter switching.
	Profiling bool
	// ProfileWindow is the signature window length in samples (default
	// 256). The window ends at the most-future sample available, so
	// transitions are seen NonCausalTaps samples before they arrive.
	ProfileWindow int
	// ProfileHop is how often (samples) the profiler re-classifies
	// (default 64).
	ProfileHop int
	// ProfileBands is the signature resolution (default 8).
	ProfileBands int
	// ProfileThreshold is the signature matching distance (default 0.25).
	ProfileThreshold float64
	// MaxProfiles caps tracked profiles (default 8).
	MaxProfiles int
	// SampleRate is required when Profiling is on.
	SampleRate float64
}

// Validate checks the configuration and applies profiling defaults.
func (c *Config) Validate() error {
	if c.NonCausalTaps < 0 {
		return fmt.Errorf("core: negative non-causal taps %d", c.NonCausalTaps)
	}
	if c.CausalTaps < 0 {
		return fmt.Errorf("core: negative causal taps %d", c.CausalTaps)
	}
	if c.NonCausalTaps+c.CausalTaps == 0 {
		return fmt.Errorf("core: filter needs at least one tap")
	}
	if c.Mu <= 0 {
		return fmt.Errorf("core: mu must be positive, got %g", c.Mu)
	}
	if c.Leak < 0 || c.Leak >= 1 {
		return fmt.Errorf("core: leak %g outside [0, 1)", c.Leak)
	}
	if c.ErrorDelay < 0 {
		return fmt.Errorf("core: negative error delay %d", c.ErrorDelay)
	}
	if len(c.SecondaryPath) == 0 {
		return fmt.Errorf("core: missing secondary path estimate")
	}
	if c.RecoveryRamp < 0 {
		return fmt.Errorf("core: negative recovery ramp %d", c.RecoveryRamp)
	}
	if c.LossAware && c.RecoveryRamp == 0 {
		c.RecoveryRamp = c.NonCausalTaps + c.CausalTaps + 1
		if c.RecoveryRamp < 256 {
			c.RecoveryRamp = 256
		}
	}
	if c.Profiling {
		if c.SampleRate <= 0 {
			return fmt.Errorf("core: profiling requires a sample rate")
		}
		if c.ProfileWindow <= 0 {
			c.ProfileWindow = 256
		}
		if c.ProfileHop <= 0 {
			c.ProfileHop = 64
		}
		if c.ProfileBands <= 0 {
			c.ProfileBands = 8
		}
		if c.ProfileThreshold <= 0 {
			c.ProfileThreshold = 0.25
		}
		if c.MaxProfiles <= 0 {
			c.MaxProfiles = 8
		}
	}
	return nil
}

// LANC is the lookahead-aware noise canceller (Algorithm 1).
type LANC struct {
	cfg Config

	// Weights: w[i] holds h_AF(k) with k = i - N, i ∈ [0, N+L].
	w []float64
	// skip is the number of most-future taps (lowest k, lowest i) currently
	// held at zero by LimitNonCausal. The invariant w[:skip] == 0 lets
	// AntiNoise read the full window unchanged; only the update loops and
	// cached-filter loads have to respect it. Zero in normal operation.
	skip int

	// Reference and filtered-x windows. Both expose offsets
	// [-L, +N] around the current time t, plus one extra history slot so
	// the fused Step can read the sample that just slid past -L-ErrorDelay.
	xBuf  *dsp.LookaheadBuffer
	fxBuf *dsp.LookaheadBuffer
	sec   *dsp.StreamConvolver
	// NLMS window powers over offsets [-L, +N], maintained incrementally:
	// each Push adds the entering sample and subtracts the leaving one
	// (O(1)), with an exact rescan every window length to cancel
	// floating-point drift (amortized O(1)).
	fxPow    float64
	xPow     float64
	powAge   int     // pushes since the last exact rescan
	powEvery int     // rescan cadence in samples
	errVar   float64 // running residual variance for robust update clipping

	// Loss-aware state (Config.LossAware). concealGuard counts the samples
	// for which a concealed (zero-filled) reference still sits inside the
	// gradient window; adaptation is frozen while it is non-zero.
	// profileGuard does the same for the profiler's raw window, and
	// rampLeft drives the linear step-size ramp after the guard expires
	// over rampLen samples (Config.RecoveryRamp for loss freezes; an
	// explicit length for HoldAdaptation holds). The same guard also
	// serves explicit HoldAdaptation freezes, which work without LossAware.
	concealGuard int
	profileGuard int
	rampLeft     int
	rampLen      int

	// Profiling state.
	classifier *profile.Classifier
	cache      *profile.FilterCache
	window     []float64 // sliding raw window ending at the newest sample
	winFill    int
	hopCount   int
	smBands    []float64 // exponentially smoothed band signature
	smLevel    float64
	smPrimed   bool
	currentID  int
	pendingID  int // candidate profile awaiting confirmation
	pendingRun int // consecutive hops the candidate has been seen
	switches   int
}

// New creates a LANC instance. The Config is validated and profiling
// defaults are filled in.
func New(cfg Config) (*LANC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The +1 history slot lets the fused Step address the pre-push window
	// after the buffers have advanced (see Step).
	xb, err := dsp.NewLookaheadBuffer(cfg.CausalTaps+cfg.ErrorDelay+1, cfg.NonCausalTaps)
	if err != nil {
		return nil, err
	}
	fxb, err := dsp.NewLookaheadBuffer(cfg.CausalTaps+cfg.ErrorDelay+1, cfg.NonCausalTaps)
	if err != nil {
		return nil, err
	}
	powEvery := cfg.NonCausalTaps + cfg.CausalTaps + 1
	if powEvery < 64 {
		powEvery = 64
	}
	l := &LANC{
		cfg:      cfg,
		w:        make([]float64, cfg.NonCausalTaps+cfg.CausalTaps+1),
		xBuf:     xb,
		fxBuf:    fxb,
		sec:      dsp.NewStreamConvolver(cfg.SecondaryPath),
		powEvery: powEvery,
	}
	if cfg.Profiling {
		cl, err := profile.NewClassifier(cfg.ProfileThreshold, cfg.MaxProfiles)
		if err != nil {
			return nil, err
		}
		l.classifier = cl
		l.cache = profile.NewFilterCache()
		l.window = make([]float64, cfg.ProfileWindow)
	}
	return l, nil
}

// Push feeds the newest wirelessly forwarded reference sample x(t+N) and
// advances the algorithm's clock to time t. It must be called exactly once
// per sample period, before AntiNoise and Adapt for that period.
func (l *LANC) Push(x float64) { l.PushMasked(x, true) }

// PushMasked is Push plus the transport concealment flag: real reports
// whether x is a genuinely received sample (true) or a zero the jitter
// buffer substituted for a lost frame (false; see stream.JitterBuffer's
// PopMask). With Config.LossAware set, a concealed sample freezes
// adaptation until it has slid out of the gradient window and holds the
// profiler's classification until it has left the signature window.
// Without LossAware the flag is ignored.
func (l *LANC) PushMasked(x float64, real bool) {
	l.noteMask(real)
	l.pushSignal(x)
	if l.cfg.Profiling {
		l.profileStep(x)
	}
}

// noteMask advances the loss guards by one sample period and re-arms them
// when the incoming reference sample is concealed. The conceal guard spans
// the full gradient window [−L−ErrorDelay−1, +N] residence of the zero;
// the profile guard spans the signature window.
func (l *LANC) noteMask(real bool) {
	// The conceal guard advances unconditionally so explicit
	// HoldAdaptation freezes expire even without LossAware; the mask
	// re-arm below stays loss-mode only.
	if l.concealGuard > 0 {
		l.concealGuard--
	}
	if !l.cfg.LossAware {
		return
	}
	if l.profileGuard > 0 {
		l.profileGuard--
	}
	if !real {
		l.concealGuard = l.cfg.NonCausalTaps + l.cfg.CausalTaps + l.cfg.ErrorDelay + 2
		if l.cfg.Profiling {
			l.profileGuard = len(l.window)
		}
		l.rampLeft = l.cfg.RecoveryRamp
		l.rampLen = l.cfg.RecoveryRamp
	}
}

// lossGain returns the adaptation gain for the current sample period: 0
// while a concealed sample contaminates the gradient window, a linear ramp
// from 0 to 1 over RecoveryRamp samples after the window clears, and 1 in
// steady state. Calling it consumes one ramp step, so callers invoke it
// exactly once per adapted sample.
func (l *LANC) lossGain() float64 {
	if l.concealGuard > 0 {
		return 0
	}
	if l.rampLeft > 0 && l.rampLen > 0 {
		g := 1 - float64(l.rampLeft)/float64(l.rampLen)
		l.rampLeft--
		return g
	}
	return 1
}

// HoldAdaptation freezes adaptation for hold sample periods and ramps the
// step size back linearly over ramp samples afterwards (ramp <= 0 selects
// RecoveryRamp, or the loss-aware default when that is unset). The
// drift-correction pipeline calls it when the reference resampler's rate
// jumps — an oscillator step re-lock slews the alignment under the filter,
// and adapting through the slew smears the taps the same way concealment
// zeros would. Unlike the mask-driven freeze it works without
// Config.LossAware; a LANC that is never held behaves bit-identically to
// one without this method. An in-progress longer freeze is not shortened.
func (l *LANC) HoldAdaptation(hold, ramp int) {
	if hold <= 0 {
		return
	}
	if ramp <= 0 {
		ramp = l.cfg.RecoveryRamp
		if ramp <= 0 {
			ramp = l.cfg.NonCausalTaps + l.cfg.CausalTaps + 1
			if ramp < 256 {
				ramp = 256
			}
		}
	}
	if hold > l.concealGuard {
		l.concealGuard = hold
	}
	l.rampLeft = ramp
	l.rampLen = ramp
}

// pushSignal advances the reference and filtered-x buffers and maintains
// the NLMS window powers with an O(1) sliding update: the pushed sample
// enters the [-L, +N] window at +N while the sample at -L slides out.
func (l *LANC) pushSignal(x float64) {
	fx := l.sec.Process(x)
	if l.cfg.Normalized {
		outX := l.xBuf.At(-l.cfg.CausalTaps)
		outFx := l.fxBuf.At(-l.cfg.CausalTaps)
		l.xPow += x*x - outX*outX
		l.fxPow += fx*fx - outFx*outFx
	}
	l.xBuf.Push(x)
	l.fxBuf.Push(fx)
	if l.cfg.Normalized {
		l.powAge++
		if l.powAge >= l.powEvery {
			l.powAge = 0
			l.rescanPower()
		}
	}
}

// rescanPower recomputes the window powers exactly, cancelling any
// accumulated floating-point drift of the sliding update. Called every
// powEvery (≥ window length) samples, so its O(N+L) cost amortizes to O(1)
// per sample.
func (l *LANC) rescanPower() {
	xs := l.xBuf.View(-l.cfg.CausalTaps, l.cfg.NonCausalTaps)
	fxs := l.fxBuf.View(-l.cfg.CausalTaps, l.cfg.NonCausalTaps)
	var xp, fp float64
	for i, v := range xs {
		xp += v * v
		f := fxs[i]
		fp += f * f
	}
	l.xPow = xp
	l.fxPow = fp
}

// AntiNoise returns the anti-noise sample α(t) = Σ_{k=-N}^{L} h_AF(k) x(t−k)
// (Equation 8). The caller plays it through the anti-noise speaker.
func (l *LANC) AntiNoise() float64 {
	// Tap i holds k = i - N, so x(t-k) walks the window [-L, +N] backwards:
	// one contiguous reversed dot product instead of per-tap At() calls.
	xv := l.xBuf.View(-l.cfg.CausalTaps, l.cfg.NonCausalTaps)
	w := l.w
	base := len(w) - 1
	var a float64
	// Unrolled with sequential adds into one accumulator: bit-identical to
	// the rolled dot product (see StepMasked).
	i := 0
	for ; i+3 < len(w); i += 4 {
		k := base - i
		a += w[i] * xv[k]
		a += w[i+1] * xv[k-1]
		a += w[i+2] * xv[k-2]
		a += w[i+3] * xv[k-3]
	}
	for ; i < len(w); i++ {
		a += w[i] * xv[base-i]
	}
	return a
}

// clipError applies the robust residual clipping: impulsive residuals
// (hammer strikes, clicks) carry gradients far outside the LMS stability
// region; limit the error to a few standard deviations of its recent
// history (Huber-style).
func (l *LANC) clipError(e float64) float64 {
	l.errVar = 0.998*l.errVar + 0.002*e*e
	if limit := 3 * math.Sqrt(l.errVar); limit > 0 && (e > limit || e < -limit) {
		if e > 0 {
			return limit
		}
		return -limit
	}
	return e
}

// effectiveMu returns the step size after NLMS power normalization.
func (l *LANC) effectiveMu() float64 {
	mu := l.cfg.Mu
	if l.cfg.Normalized {
		// The regularizer keeps the effective step bounded through quiet
		// stretches, and the raw reference power guards frequencies where
		// the secondary path has little gain (rumble under the
		// transducer's high-pass corner) from inflating the step.
		mu /= l.fxPow + 0.05*l.xPow + 1e-3
	}
	return mu
}

// Adapt applies the filtered-x gradient step for the measured residual
// e(t) at the error microphone (Equation 7, extended to k < 0):
// h_AF(k) ← h_AF(k) − µ e(t) (ĥ_se ∗ x)(t−k).
//
// With Config.LossAware set the step is scaled by the loss gain: the
// update is skipped entirely while a concealed sample sits in the gradient
// window (the residual then reflects the passive floor, not the filter)
// and ramps back after recovery. At zero loss the path is unchanged.
func (l *LANC) Adapt(e float64) {
	gain := l.lossGain()
	if gain == 0 {
		return
	}
	e = l.clipError(e)
	muE := l.effectiveMu() * e * gain
	// A stale error (ErrorDelay > 0) pairs with the equally stale
	// filtered-x history: tap i needs (ĥ_se ∗ x) at offset N-i-ErrorDelay,
	// i.e. the window below walked backwards. Taps disabled by
	// LimitNonCausal stay out of the update (and at zero).
	fxv := l.fxBuf.View(-l.cfg.CausalTaps-l.cfg.ErrorDelay, l.cfg.NonCausalTaps-l.cfg.ErrorDelay)
	ww := l.w[l.skip:]
	fxs := fxv[:len(fxv)-l.skip]
	base := len(ww) - 1
	if l.cfg.Leak > 0 {
		leak := 1 - l.cfg.Leak*l.cfg.Mu
		i := 0
		for ; i+3 < len(ww); i += 4 {
			k := base - i
			ww[i] = ww[i]*leak - muE*fxs[k]
			ww[i+1] = ww[i+1]*leak - muE*fxs[k-1]
			ww[i+2] = ww[i+2]*leak - muE*fxs[k-2]
			ww[i+3] = ww[i+3]*leak - muE*fxs[k-3]
		}
		for ; i < len(ww); i++ {
			ww[i] = ww[i]*leak - muE*fxs[base-i]
		}
		return
	}
	i := 0
	for ; i+3 < len(ww); i += 4 {
		k := base - i
		ww[i] -= muE * fxs[k]
		ww[i+1] -= muE * fxs[k-1]
		ww[i+2] -= muE * fxs[k-2]
		ww[i+3] -= muE * fxs[k-3]
	}
	for ; i < len(ww); i++ {
		ww[i] -= muE * fxs[base-i]
	}
}

// Step is the fused per-sample fast path used by the simulator and simple
// deployments: it is exactly Adapt(ePrev); Push(xNew); AntiNoise(), but the
// adapt and anti-noise tap loops run as a single pass over contiguous
// buffer views — one read of the filtered-x window, one read of the
// reference window, one write of the weights per sample.
func (l *LANC) Step(xNew, ePrev float64) float64 { return l.StepMasked(xNew, ePrev, true) }

// StepMasked is Step plus the transport concealment flag (see PushMasked).
// While adaptation is frozen the weights — including the leak — are left
// untouched and only the anti-noise output is computed, so a loss burst
// degrades toward the passive-isolation floor instead of diverging. With
// real always true, or LossAware unset, it is bit-identical to Step.
func (l *LANC) StepMasked(xNew, ePrev float64, real bool) float64 {
	// Sequential semantics: the gradient for ePrev uses the powers,
	// filtered-x history, and loss gain as they stood before xNew arrived.
	gain := l.lossGain()
	if gain == 0 {
		l.noteMask(real)
		l.pushSignal(xNew)
		a := l.AntiNoise()
		if l.cfg.Profiling && l.profileStep(xNew) {
			a = l.AntiNoise()
		}
		return a
	}
	e := l.clipError(ePrev)
	muE := l.effectiveMu() * e * gain
	l.noteMask(real)
	l.pushSignal(xNew)
	// Post-push, every pre-push sample sits one slot deeper; the buffers'
	// extra history slot keeps the oldest gradient sample addressable.
	// Slicing off the LimitNonCausal skip leaves the active suffix with the
	// same tap↔sample pairing; at skip == 0 these are the full windows and
	// the loop below is the unchanged fast path.
	fxv := l.fxBuf.View(-l.cfg.CausalTaps-l.cfg.ErrorDelay-1, l.cfg.NonCausalTaps-l.cfg.ErrorDelay-1)
	xv := l.xBuf.View(-l.cfg.CausalTaps, l.cfg.NonCausalTaps)
	ww := l.w[l.skip:]
	fxs := fxv[:len(fxv)-l.skip]
	xs := xv[:len(xv)-l.skip]
	base := len(ww) - 1
	var a float64
	// Both tap loops below are unrolled 4× with a single accumulator and
	// strictly sequential adds: the floating-point evaluation order per tap
	// is exactly the rolled loop's, so the output is bit-identical while the
	// wider body drops most bounds checks and loop overhead.
	if l.cfg.Leak > 0 {
		leak := 1 - l.cfg.Leak*l.cfg.Mu
		i := 0
		for ; i+3 < len(ww); i += 4 {
			k := base - i
			wi := ww[i]*leak - muE*fxs[k]
			ww[i] = wi
			a += wi * xs[k]
			wi = ww[i+1]*leak - muE*fxs[k-1]
			ww[i+1] = wi
			a += wi * xs[k-1]
			wi = ww[i+2]*leak - muE*fxs[k-2]
			ww[i+2] = wi
			a += wi * xs[k-2]
			wi = ww[i+3]*leak - muE*fxs[k-3]
			ww[i+3] = wi
			a += wi * xs[k-3]
		}
		for ; i < len(ww); i++ {
			wi := ww[i]*leak - muE*fxs[base-i]
			ww[i] = wi
			a += wi * xs[base-i]
		}
	} else {
		i := 0
		for ; i+3 < len(ww); i += 4 {
			k := base - i
			wi := ww[i] - muE*fxs[k]
			ww[i] = wi
			a += wi * xs[k]
			wi = ww[i+1] - muE*fxs[k-1]
			ww[i+1] = wi
			a += wi * xs[k-1]
			wi = ww[i+2] - muE*fxs[k-2]
			ww[i+2] = wi
			a += wi * xs[k-2]
			wi = ww[i+3] - muE*fxs[k-3]
			ww[i+3] = wi
			a += wi * xs[k-3]
		}
		for ; i < len(ww); i++ {
			wi := ww[i] - muE*fxs[base-i]
			ww[i] = wi
			a += wi * xs[base-i]
		}
	}
	if l.cfg.Profiling {
		if l.profileStep(xNew) {
			// A cached filter was swapped in for this very sample; the
			// anti-noise must come from the incoming profile's weights.
			a = l.AntiNoise()
		}
	}
	return a
}

// Weights returns a copy of h_AF indexed so that Weights()[i] is the tap
// for k = i − NonCausalTaps.
func (l *LANC) Weights() []float64 {
	out := make([]float64, len(l.w))
	copy(out, l.w)
	return out
}

// SetWeights loads weights (e.g. from a cached profile). Taps disabled by
// LimitNonCausal are forced back to zero.
func (l *LANC) SetWeights(w []float64) error {
	if len(w) != len(l.w) {
		return fmt.Errorf("core: weight length %d != %d", len(w), len(l.w))
	}
	copy(l.w, w)
	l.zeroSkipped()
	return nil
}

// LimitNonCausal shrinks the live non-causal tap window to at most n future
// taps, zeroing the most-future taps beyond it; n ≥ N restores the full
// window. The supervisor's DEGRADED rung uses this when the link still
// delivers frames but the lookahead budget no longer covers the full
// window: the far-future taps — the ones a late frame starves first — are
// parked at zero while the near-future and causal taps keep adapting.
// Re-widening is graceful: re-enabled taps resume from zero. With the full
// window active the canceller is bit-identical to one without this call.
func (l *LANC) LimitNonCausal(n int) {
	if n < 0 {
		n = 0
	}
	if n > l.cfg.NonCausalTaps {
		n = l.cfg.NonCausalTaps
	}
	l.skip = l.cfg.NonCausalTaps - n
	l.zeroSkipped()
}

// ActiveNonCausal returns how many non-causal taps are currently live
// (N unless LimitNonCausal shrank the window).
func (l *LANC) ActiveNonCausal() int { return l.cfg.NonCausalTaps - l.skip }

// zeroSkipped re-establishes the w[:skip] == 0 invariant after bulk weight
// loads.
func (l *LANC) zeroSkipped() {
	for i := 0; i < l.skip; i++ {
		l.w[i] = 0
	}
}

// NonCausalTaps returns N.
func (l *LANC) NonCausalTaps() int { return l.cfg.NonCausalTaps }

// CausalTaps returns L.
func (l *LANC) CausalTaps() int { return l.cfg.CausalTaps }

// Switches returns how many predictive filter swaps the profiler has
// performed.
func (l *LANC) Switches() int { return l.switches }

// CurrentProfile returns the active profile slot (0 = silence) or -1 when
// profiling is disabled.
func (l *LANC) CurrentProfile() int {
	if !l.cfg.Profiling {
		return -1
	}
	return l.currentID
}

// Reset clears all adaptation and profiling state.
func (l *LANC) Reset() {
	for i := range l.w {
		l.w[i] = 0
	}
	l.xBuf.Reset()
	l.fxBuf.Reset()
	l.sec.Reset()
	l.fxPow = 0
	l.xPow = 0
	l.powAge = 0
	l.errVar = 0
	l.concealGuard = 0
	l.profileGuard = 0
	l.rampLeft = 0
	l.rampLen = 0
	l.winFill = 0
	l.hopCount = 0
	l.smPrimed = false
	l.smLevel = 0
	l.currentID = 0
	l.pendingID = 0
	l.pendingRun = 0
	l.switches = 0
	if l.cfg.Profiling {
		// Resetting the existing classifier (rather than constructing a new
		// one and discarding its error) keeps Reset infallible: the config
		// was already validated in New.
		l.classifier.Reset()
		l.cache = profile.NewFilterCache()
		for i := range l.window {
			l.window[i] = 0
		}
	}
}

// profileStep slides the raw-signal window (which ends at the most-future
// sample) and, every hop, classifies it. On a profile change it caches the
// outgoing filter and loads the cached filter for the incoming profile.
// It reports whether a cached filter was copied into the live weights, so
// the fused Step knows to recompute the anti-noise output.
func (l *LANC) profileStep(xNew float64) bool {
	copy(l.window, l.window[1:])
	l.window[len(l.window)-1] = xNew
	if l.winFill < len(l.window) {
		l.winFill++
		return false
	}
	l.hopCount++
	if l.hopCount < l.cfg.ProfileHop {
		return false
	}
	l.hopCount = 0
	// A concealed sample still inside the signature window would make any
	// window look quieter than the room is (worst case: a long burst
	// classifies as silence and swaps the filter out mid-noise). Hold the
	// current profile until the window holds only real samples again.
	if l.profileGuard > 0 {
		return false
	}
	sig, err := profile.Compute(l.window, l.cfg.SampleRate, l.cfg.ProfileBands)
	if err != nil {
		return false
	}
	// Exponentially smooth the signature across hops so syllable-scale
	// texture (voiced vs fricative frames of the same talker) does not
	// masquerade as a profile change.
	const alpha = 0.4
	if !l.smPrimed || sig.Silent != (l.smLevel < profile.SilenceFloor) {
		l.smBands = append(l.smBands[:0], sig.Bands...)
		l.smLevel = sig.Level
		l.smPrimed = true
	} else {
		for i := range l.smBands {
			if i < len(sig.Bands) {
				l.smBands[i] = (1-alpha)*l.smBands[i] + alpha*sig.Bands[i]
			}
		}
		l.smLevel = (1-alpha)*l.smLevel + alpha*sig.Level
	}
	smoothed := profile.Signature{
		Bands:  l.smBands,
		Level:  l.smLevel,
		Silent: l.smLevel < profile.SilenceFloor,
	}
	id, _ := l.classifier.Classify(smoothed)
	if id == l.currentID {
		l.pendingRun = 0
		return false
	}
	// Require two consecutive hops agreeing on the new profile before
	// switching, so syllable-scale fluctuations do not thrash the cache.
	if id != l.pendingID {
		l.pendingID = id
		l.pendingRun = 1
		return false
	}
	l.pendingRun++
	if l.pendingRun < 2 {
		return false
	}
	// Imminent transition: cache the converged filter for the outgoing
	// profile and preload the incoming one if we have seen it before.
	l.cache.Store(l.currentID, l.w)
	loaded := false
	if cached := l.cache.Load(id); cached != nil {
		copy(l.w, cached)
		l.zeroSkipped()
		loaded = true
	}
	l.currentID = id
	l.pendingRun = 0
	l.switches++
	return loaded
}
