package core

import (
	"fmt"
	"math/cmplx"

	"mute/internal/dsp"
)

// BlockLANC is a frequency-domain (fast block LMS) implementation of LANC
// for long filters: overlap-save convolution and per-bin normalized
// updates replace the O(M) per-sample loop with O(F log F) per block of B
// samples — the structure production ANC firmware uses once filters grow
// past a few hundred taps.
//
// The lookahead view: relative to the *forwarded* stream, LANC's
// non-causal taps are ordinary causal taps (the stream runs N samples
// ahead of the acoustic wavefront), so the block filter is a standard
// causal FBLMS over the forwarded stream. Block processing spends part of
// the lookahead budget on latency: the last sample of each block is
// computed B−1 samples before its error is observable, so choose
// BlockSize ≤ the non-causal budget.
type BlockLANC struct {
	m, b, f int // filter taps, block size, FFT size

	w      []complex128 // frequency-domain weights
	hse    []complex128 // FFT of ĥ_se
	inBuf  []float64    // last f samples of the forwarded stream
	fxBuf  []float64    // last f samples of the filtered-x stream
	fxConv *dsp.StreamConvolver
	lastFX []complex128 // FFT of the fx window behind the previous output block
	pow    []float64    // per-bin input power estimate
	mu     float64
	lambda float64
	primed bool
}

// BlockConfig configures a BlockLANC.
type BlockConfig struct {
	// FilterTaps is the total filter length M (the sample-domain
	// N + L + 1).
	FilterTaps int
	// BlockSize is B, the samples produced per call. Latency grows with
	// B; keep it at or below the deployment's non-causal budget.
	BlockSize int
	// Mu is the normalized per-bin step (0.1–1 typical).
	Mu float64
	// SecondaryPath is the ĥ_se estimate.
	SecondaryPath []float64
	// Lambda is the per-bin power smoothing factor (default 0.9).
	Lambda float64
}

// NewBlock creates a frequency-domain LANC.
func NewBlock(cfg BlockConfig) (*BlockLANC, error) {
	if cfg.FilterTaps <= 0 {
		return nil, fmt.Errorf("core: block filter taps %d must be positive", cfg.FilterTaps)
	}
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("core: block size %d must be positive", cfg.BlockSize)
	}
	if cfg.Mu <= 0 {
		return nil, fmt.Errorf("core: block mu %g must be positive", cfg.Mu)
	}
	if len(cfg.SecondaryPath) == 0 {
		return nil, fmt.Errorf("core: missing secondary path estimate")
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 0.9
	}
	if cfg.Lambda <= 0 || cfg.Lambda >= 1 {
		return nil, fmt.Errorf("core: block lambda %g outside (0, 1)", cfg.Lambda)
	}
	f := dsp.NextPow2(cfg.FilterTaps + cfg.BlockSize - 1)
	bl := &BlockLANC{
		m:      cfg.FilterTaps,
		b:      cfg.BlockSize,
		f:      f,
		w:      make([]complex128, f),
		hse:    dsp.FFTReal(cfg.SecondaryPath, f),
		inBuf:  make([]float64, f),
		fxBuf:  make([]float64, f),
		fxConv: dsp.NewStreamConvolver(cfg.SecondaryPath),
		lastFX: make([]complex128, f),
		pow:    make([]float64, f),
		mu:     cfg.Mu,
		lambda: cfg.Lambda,
	}
	return bl, nil
}

// BlockSize returns B.
func (bl *BlockLANC) BlockSize() int { return bl.b }

// ProcessBlock consumes the B newest forwarded samples and the B residual
// errors measured for the previous output block, and returns the next B
// anti-noise samples. Pass zeros for ePrev on the first call.
func (bl *BlockLANC) ProcessBlock(xNew, ePrev []float64) ([]float64, error) {
	if len(xNew) != bl.b || len(ePrev) != bl.b {
		return nil, fmt.Errorf("core: block size mismatch (got %d/%d, want %d)", len(xNew), len(ePrev), bl.b)
	}
	// 1. Adapt with the previous block's errors against the fx window that
	//    produced it (skipped until one block has been emitted).
	if bl.primed {
		eVec := make([]float64, bl.f)
		copy(eVec[bl.f-bl.b:], ePrev)
		E := dsp.FFTReal(eVec, bl.f)
		// Gradient in frequency domain: conj(FX)∘E, normalized per bin.
		grad := make([]complex128, bl.f)
		for k := 0; k < bl.f; k++ {
			norm := bl.pow[k] + 1e-6
			grad[k] = cmplx.Conj(bl.lastFX[k]) * E[k] / complex(norm, 0)
		}
		// Gradient constraint: force the update to a causal M-tap filter.
		g := dsp.IFFTReal(grad)
		for i := bl.m; i < bl.f; i++ {
			g[i] = 0
		}
		G := dsp.FFTReal(g, bl.f)
		for k := 0; k < bl.f; k++ {
			bl.w[k] -= complex(bl.mu, 0) * G[k]
		}
	}

	// 2. Slide the input windows by B.
	copy(bl.inBuf, bl.inBuf[bl.b:])
	copy(bl.inBuf[bl.f-bl.b:], xNew)
	copy(bl.fxBuf, bl.fxBuf[bl.b:])
	for i, x := range xNew {
		bl.fxBuf[bl.f-bl.b+i] = bl.fxConv.Process(x)
	}

	// 3. Output block via overlap-save.
	X := dsp.FFTReal(bl.inBuf, bl.f)
	FX := dsp.FFTReal(bl.fxBuf, bl.f)
	for k := 0; k < bl.f; k++ {
		mag := cmplx.Abs(FX[k])
		bl.pow[k] = bl.lambda*bl.pow[k] + (1-bl.lambda)*mag*mag
	}
	copy(bl.lastFX, FX)
	prod := make([]complex128, bl.f)
	for k := 0; k < bl.f; k++ {
		prod[k] = X[k] * bl.w[k]
	}
	y := dsp.IFFTReal(prod)
	out := make([]float64, bl.b)
	copy(out, y[bl.f-bl.b:])
	bl.primed = true
	return out, nil
}

// Weights returns the current sample-domain filter taps (length M).
func (bl *BlockLANC) Weights() []float64 {
	w := dsp.IFFTReal(bl.w)
	out := make([]float64, bl.m)
	copy(out, w[:bl.m])
	return out
}

// Reset clears all adaptation state.
func (bl *BlockLANC) Reset() {
	for i := range bl.w {
		bl.w[i] = 0
		bl.lastFX[i] = 0
		bl.pow[i] = 0
	}
	for i := range bl.inBuf {
		bl.inBuf[i] = 0
		bl.fxBuf[i] = 0
	}
	bl.fxConv.Reset()
	bl.primed = false
}
