package core

import (
	"fmt"

	"mute/internal/dsp"
)

// BlockLANC is a partitioned frequency-domain (PBFDAF) implementation of
// LANC for long filters: the M-tap filter is split into P = ⌈M/B⌉
// partitions of B taps, each applied by overlap-save through a 2B-point
// real FFT, with per-bin normalized constrained updates. Long filters get
// FFT economics while block latency stays one block (B−1 samples) — the
// structure production ANC firmware uses once filters grow past a few
// hundred taps, without the single-big-FFT variant's latency of the whole
// filter length.
//
// The lookahead view: relative to the *forwarded* stream, LANC's
// non-causal taps are ordinary causal taps (the stream runs N samples
// ahead of the acoustic wavefront), so the block filter is a standard
// causal adaptive filter over the forwarded stream. Block processing
// spends part of the lookahead budget on latency: the last sample of each
// block is computed B−1 samples before its error is observable, so choose
// BlockSize ≤ the non-causal budget.
//
// All state and scratch is preallocated: steady-state ProcessBlockInto
// calls allocate nothing.
type BlockLANC struct {
	m, b, f  int // filter taps, block size, FFT size (2B)
	np       int // partitions
	bins     int // f/2 + 1
	nonCausN int // declared non-causal taps (for LimitNonCausal)
	skip     int // leading (most-future) taps forced to zero

	plan   *dsp.RFFTPlan
	w      [][]complex128 // per-partition frequency-domain weights
	xSpec  [][]complex128 // ring: spectra of [prev, cur] x windows
	fxSpec [][]complex128 // ring: spectra of [prev, cur] fx windows
	head   int            // ring slot of the newest pushed block
	prevX  []float64      // previous raw x block
	prevFX []float64      // previous raw fx block
	fxConv *dsp.StreamConvolver
	pow    []float64 // per-bin fx power estimate
	mu     float64
	lambda float64
	primed bool

	// Scratch (struct-owned so steady state is allocation-free).
	win   []float64    // 2B time-domain window
	spec  []complex128 // transform scratch
	acc   []complex128 // output spectrum accumulator
	grad  []complex128 // per-partition gradient spectrum
	gTime []float64    // constrained gradient time response
	fxNew []float64    // current block's filtered-x samples
}

// BlockConfig configures a BlockLANC.
type BlockConfig struct {
	// FilterTaps is the total filter length M (the sample-domain
	// N + L + 1).
	FilterTaps int
	// BlockSize is B, the samples produced per call. Latency grows with
	// B; keep it at or below the deployment's non-causal budget.
	BlockSize int
	// Mu is the normalized step (0.1–1 typical). The effective per-bin,
	// per-partition step is Mu/P, so stability does not depend on how
	// finely the filter is partitioned and one value works across block
	// sizes.
	Mu float64
	// SecondaryPath is the ĥ_se estimate.
	SecondaryPath []float64
	// Lambda is the per-bin power smoothing factor (default 0.9).
	Lambda float64
	// NonCausalTaps declares how many leading taps are non-causal (funded
	// by lookahead). Zero disables LimitNonCausal accounting.
	NonCausalTaps int
}

// NewBlock creates a partitioned frequency-domain LANC.
func NewBlock(cfg BlockConfig) (*BlockLANC, error) {
	if cfg.FilterTaps <= 0 {
		return nil, fmt.Errorf("core: block filter taps %d must be positive", cfg.FilterTaps)
	}
	if cfg.BlockSize <= 0 {
		return nil, fmt.Errorf("core: block size %d must be positive", cfg.BlockSize)
	}
	if cfg.Mu <= 0 {
		return nil, fmt.Errorf("core: block mu %g must be positive", cfg.Mu)
	}
	if len(cfg.SecondaryPath) == 0 {
		return nil, fmt.Errorf("core: missing secondary path estimate")
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 0.9
	}
	if cfg.Lambda <= 0 || cfg.Lambda >= 1 {
		return nil, fmt.Errorf("core: block lambda %g outside (0, 1)", cfg.Lambda)
	}
	if cfg.NonCausalTaps < 0 || cfg.NonCausalTaps > cfg.FilterTaps {
		return nil, fmt.Errorf("core: non-causal taps %d outside [0, %d]", cfg.NonCausalTaps, cfg.FilterTaps)
	}
	b := dsp.NextPow2(cfg.BlockSize)
	if b != cfg.BlockSize {
		return nil, fmt.Errorf("core: block size %d must be a power of two", cfg.BlockSize)
	}
	f := 2 * b
	np := (cfg.FilterTaps + b - 1) / b
	plan := dsp.PlanRFFT(f)
	bl := &BlockLANC{
		m:        cfg.FilterTaps,
		b:        b,
		f:        f,
		np:       np,
		bins:     plan.Bins(),
		nonCausN: cfg.NonCausalTaps,
		plan:     plan,
		prevX:    make([]float64, b),
		prevFX:   make([]float64, b),
		fxConv:   dsp.NewStreamConvolver(cfg.SecondaryPath),
		pow:      make([]float64, plan.Bins()),
		mu:       cfg.Mu,
		lambda:   cfg.Lambda,
		win:      make([]float64, f),
		spec:     make([]complex128, plan.Bins()),
		acc:      make([]complex128, plan.Bins()),
		grad:     make([]complex128, plan.Bins()),
		gTime:    make([]float64, f),
		fxNew:    make([]float64, b),
	}
	bl.w = make([][]complex128, np)
	bl.xSpec = make([][]complex128, np)
	bl.fxSpec = make([][]complex128, np)
	for p := 0; p < np; p++ {
		bl.w[p] = make([]complex128, plan.Bins())
		bl.xSpec[p] = make([]complex128, plan.Bins())
		bl.fxSpec[p] = make([]complex128, plan.Bins())
	}
	return bl, nil
}

// BlockSize returns B.
func (bl *BlockLANC) BlockSize() int { return bl.b }

// Partitions returns P, the number of frequency-domain partitions.
func (bl *BlockLANC) Partitions() int { return bl.np }

// ring returns the spectrum ring slot for the block pushed `ago` blocks
// before the newest one.
func (bl *BlockLANC) ring(ago int) int {
	return (bl.head - ago%bl.np + bl.np) % bl.np
}

// partTaps returns how many of partition p's B tap slots are live filter
// taps (the last partition is short when B does not divide M).
func (bl *BlockLANC) partTaps(p int) int {
	n := bl.m - p*bl.b
	if n > bl.b {
		n = bl.b
	}
	return n
}

// ProcessBlock consumes the B newest forwarded samples and the B residual
// errors measured for the previous output block, and returns the next B
// anti-noise samples. Pass zeros for ePrev on the first call.
func (bl *BlockLANC) ProcessBlock(xNew, ePrev []float64) ([]float64, error) {
	out := make([]float64, bl.b)
	if err := bl.ProcessBlockInto(out, xNew, ePrev); err != nil {
		return nil, err
	}
	return out, nil
}

// ProcessBlockInto is ProcessBlock writing into caller-owned storage
// (len(out) == BlockSize()). Steady-state calls allocate nothing.
func (bl *BlockLANC) ProcessBlockInto(out, xNew, ePrev []float64) error {
	if len(xNew) != bl.b || len(ePrev) != bl.b {
		return fmt.Errorf("core: block size mismatch (got %d/%d, want %d)", len(xNew), len(ePrev), bl.b)
	}
	if len(out) != bl.b {
		return fmt.Errorf("core: output block length %d, want %d", len(out), bl.b)
	}

	// 1. Adapt with the previous block's errors against the fx spectra that
	//    produced it (skipped until one block has been emitted). The ring
	//    still holds exactly those spectra because the new block has not
	//    been pushed yet.
	if bl.primed {
		bl.adapt(ePrev)
	}

	// 2. Push the new block: filter x through ĥ_se, transform both
	//    [previous block, new block] windows, advance the ring.
	for i, x := range xNew {
		bl.fxNew[i] = bl.fxConv.Process(x)
	}
	bl.head = (bl.head + 1) % bl.np
	copy(bl.win[:bl.b], bl.prevX)
	copy(bl.win[bl.b:], xNew)
	bl.plan.Forward(bl.xSpec[bl.head], bl.win)
	copy(bl.win[:bl.b], bl.prevFX)
	copy(bl.win[bl.b:], bl.fxNew)
	bl.plan.Forward(bl.fxSpec[bl.head], bl.win)
	copy(bl.prevX, xNew)
	copy(bl.prevFX, bl.fxNew)
	fx := bl.fxSpec[bl.head]
	for k, v := range fx {
		re, im := real(v), imag(v)
		bl.pow[k] = bl.lambda*bl.pow[k] + (1-bl.lambda)*(re*re+im*im)
	}

	// 3. Output block: sum the per-partition spectral products, inverse
	//    transform, keep the alias-free second half (overlap-save).
	acc := bl.acc
	for k := range acc {
		acc[k] = 0
	}
	for p := 0; p < bl.np; p++ {
		xs := bl.xSpec[bl.ring(p)]
		wp := bl.w[p]
		for k, w := range wp {
			acc[k] += xs[k] * w
		}
	}
	bl.plan.Inverse(bl.gTime, acc)
	copy(out, bl.gTime[bl.b:])
	bl.primed = true
	return nil
}

// adapt applies one constrained, per-bin-normalized gradient step to every
// partition from the previous block's residual errors.
func (bl *BlockLANC) adapt(ePrev []float64) {
	// E = RFFT([0…0, ePrev]): the errors sit in the second half, aligned
	// with the overlap-save output positions.
	for i := 0; i < bl.b; i++ {
		bl.win[i] = 0
	}
	copy(bl.win[bl.b:], ePrev)
	bl.plan.Forward(bl.spec, bl.win)
	// The P partitions take one gradient step each per block, and their
	// updates compound on the same residual; dividing the step by P keeps
	// the total projection — and hence the stability region — independent
	// of how finely the filter is partitioned, so one Mu works across
	// block sizes.
	mu := complex(bl.mu/float64(bl.np), 0)
	for p := 0; p < bl.np; p++ {
		// head still points at the previous block, so ring(p) is exactly
		// the fx spectrum partition p consumed when the previous output
		// block was produced.
		fx := bl.fxSpec[bl.ring(p)]
		grad := bl.grad
		for k, e := range bl.spec {
			f := fx[k]
			// conj(FX)·E / (pow + ε), written out to stay in registers.
			fr, fi := real(f), imag(f)
			er, ei := real(e), imag(e)
			norm := bl.pow[k] + 1e-6
			grad[k] = complex((fr*er+fi*ei)/norm, (fr*ei-fi*er)/norm)
		}
		// Gradient constraint: force the update to this partition's live
		// taps — zero the circular-aliasing tail and, on the last short
		// partition, the tap slots beyond M.
		bl.plan.Inverse(bl.gTime, grad)
		live := bl.partTaps(p)
		for i := live; i < bl.f; i++ {
			bl.gTime[i] = 0
		}
		// Non-causal limiting: global taps below skip stay zero.
		if lo := bl.skip - p*bl.b; lo > 0 {
			if lo > live {
				lo = live
			}
			for i := 0; i < lo; i++ {
				bl.gTime[i] = 0
			}
		}
		bl.plan.Forward(bl.spec2(), bl.gTime)
		wp := bl.w[p]
		for k, g := range bl.spec2() {
			wp[k] -= mu * g
		}
	}
}

// spec2 aliases the gradient scratch for the re-transform step (grad's
// spectrum is consumed by the inverse transform before this runs).
func (bl *BlockLANC) spec2() []complex128 { return bl.grad }

// Weights returns the current sample-domain filter taps (length M). The
// constrained updates keep every partition a causal B-tap filter, so the
// reconstruction is exact.
func (bl *BlockLANC) Weights() []float64 {
	out := make([]float64, bl.m)
	spec := make([]complex128, bl.bins)
	g := make([]float64, bl.f)
	for p := 0; p < bl.np; p++ {
		copy(spec, bl.w[p])
		bl.plan.Inverse(g, spec)
		copy(out[p*bl.b:], g[:bl.partTaps(p)])
	}
	return out
}

// SetWeights loads sample-domain filter taps (length M), transforming
// each B-tap partition into its frequency-domain representation — the
// inverse of Weights, used to warm-start a freshly built filter from a
// snapshot (fleet session handoff) or a cached profile. Taps disabled by
// LimitNonCausal are forced back to zero.
func (bl *BlockLANC) SetWeights(w []float64) error {
	if len(w) != bl.m {
		return fmt.Errorf("core: weight length %d != %d", len(w), bl.m)
	}
	g := make([]float64, bl.f)
	for p := 0; p < bl.np; p++ {
		n := bl.partTaps(p)
		copy(g[:n], w[p*bl.b:p*bl.b+n])
		for i := n; i < bl.f; i++ {
			g[i] = 0
		}
		bl.plan.Forward(bl.w[p], g)
	}
	if bl.skip > 0 {
		bl.LimitNonCausal(bl.nonCausN - bl.skip)
	}
	return nil
}

// NonCausalTaps returns the declared non-causal tap count N.
func (bl *BlockLANC) NonCausalTaps() int { return bl.nonCausN }

// ActiveNonCausal returns how many non-causal taps are currently live.
func (bl *BlockLANC) ActiveNonCausal() int { return bl.nonCausN - bl.skip }

// LimitNonCausal shrinks the live non-causal tap window to at most n future
// taps, zeroing the most-future taps beyond it, mirroring LANC's degraded
// rung; n ≥ N restores the full window. Zeroed taps also stop adapting.
func (bl *BlockLANC) LimitNonCausal(n int) {
	if n < 0 {
		n = 0
	}
	if n > bl.nonCausN {
		n = bl.nonCausN
	}
	bl.skip = bl.nonCausN - n
	// Re-establish w[:skip] == 0 across the affected partitions.
	spec := make([]complex128, bl.bins)
	g := make([]float64, bl.f)
	for p := 0; p*bl.b < bl.skip && p < bl.np; p++ {
		copy(spec, bl.w[p])
		bl.plan.Inverse(g, spec)
		lo := bl.skip - p*bl.b
		if lo > bl.b {
			lo = bl.b
		}
		for i := 0; i < lo; i++ {
			g[i] = 0
		}
		for i := bl.b; i < bl.f; i++ {
			g[i] = 0
		}
		bl.plan.Forward(bl.w[p], g)
	}
}

// Reset clears all adaptation state.
func (bl *BlockLANC) Reset() {
	for p := 0; p < bl.np; p++ {
		for k := range bl.w[p] {
			bl.w[p][k] = 0
			bl.xSpec[p][k] = 0
			bl.fxSpec[p][k] = 0
		}
	}
	for k := range bl.pow {
		bl.pow[k] = 0
	}
	for i := range bl.prevX {
		bl.prevX[i] = 0
		bl.prevFX[i] = 0
	}
	bl.fxConv.Reset()
	bl.head = 0
	bl.primed = false
}
