package core

import (
	"math"
	"testing"

	"mute/internal/audio"
	"mute/internal/dsp"
)

func TestNewFixedValidation(t *testing.T) {
	bad := []FixedConfig{
		{NonCausalTaps: -1, CausalTaps: 8, MuShift: 3, SecondaryPath: []float64{1}},
		{NonCausalTaps: 0, CausalTaps: 0, MuShift: 3, SecondaryPath: []float64{1}},
		{NonCausalTaps: 4, CausalTaps: 8, MuShift: 15, SecondaryPath: []float64{1}},
		{NonCausalTaps: 4, CausalTaps: 8, MuShift: 3, SecondaryPath: nil},
	}
	for i, cfg := range bad {
		if _, err := NewFixed(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestQ15Conversions(t *testing.T) {
	cases := map[float64]int16{0: 0, 0.5: 16384, -0.5: -16384, 1.5: 32767, -2: -32768}
	for in, want := range cases {
		if got := toQ15(in); got != want {
			t.Errorf("toQ15(%g) = %d, want %d", in, got, want)
		}
	}
	if v := fromQ15(toQ15(0.25)); math.Abs(v-0.25) > 1e-4 {
		t.Errorf("round trip 0.25 → %g", v)
	}
}

// runFixedANC mirrors runANC for the fixed-point filter.
func runFixedANC(t *testing.T, f *FixedLANC, gen audio.Generator, hnr, hne, hse []float64, n int) float64 {
	t.Helper()
	N := f.NonCausalTaps()
	refCh := dsp.NewStreamConvolver(hnr)
	priCh := dsp.NewStreamConvolver(hne)
	secCh := dsp.NewStreamConvolver(hse)
	noise := audio.Render(gen, n+N+1)
	ref := refCh.ProcessBlock(noise)
	var resPow, priPow float64
	e := 0.0
	for tt := 0; tt < n; tt++ {
		f.Adapt(e)
		f.Push(ref[tt+N])
		a := f.AntiNoise()
		d := priCh.Process(noise[tt])
		e = d + secCh.Process(a)
		if tt >= 3*n/4 {
			resPow += e * e
			priPow += d * d
		}
	}
	return 10 * math.Log10(resPow/priPow)
}

func TestFixedLANCCancelsWhiteNoise(t *testing.T) {
	f, err := NewFixed(FixedConfig{
		NonCausalTaps: 16, CausalTaps: 24, MuShift: 2, SecondaryPath: testHse,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := audio.NewWhiteNoise(1, 8000, 0.5)
	db := runFixedANC(t, f, gen, testHnr, testHne, testHse, 60000)
	if db > -10 {
		t.Errorf("fixed-point LANC cancellation = %.1f dB, want < -10", db)
	}
}

func TestFixedLANCQuantizationFloor(t *testing.T) {
	// In a noiseless synthetic loop the float filter converges essentially
	// perfectly (~-120 dB); the Q15/Q12 pipeline stalls once weight deltas
	// drop below one LSB. The deliverable is deep — not perfect —
	// cancellation: comfortably beyond what any real room allows anyway.
	fl := newTestLANC(t, 16)
	flDB := runANC(t, fl, audio.NewWhiteNoise(1, 8000, 0.5), testHnr, testHne, testHse, 60000)
	if flDB > -40 {
		t.Fatalf("float reference did not converge: %.1f dB", flDB)
	}
	fx, err := NewFixed(FixedConfig{
		NonCausalTaps: 16, CausalTaps: 24, MuShift: 2, SecondaryPath: testHse,
	})
	if err != nil {
		t.Fatal(err)
	}
	fxDB := runFixedANC(t, fx, audio.NewWhiteNoise(1, 8000, 0.5), testHnr, testHne, testHse, 60000)
	if fxDB > -15 {
		t.Errorf("fixed-point floor = %.1f dB, want < -15 dB", fxDB)
	}
}

func TestFixedLANCReset(t *testing.T) {
	f, err := NewFixed(FixedConfig{
		NonCausalTaps: 4, CausalTaps: 8, MuShift: 2, SecondaryPath: testHse,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		f.Adapt(0.2)
		f.Push(0.5)
	}
	f.Reset()
	for _, w := range f.Weights() {
		if w != 0 {
			t.Fatal("reset should zero weights")
		}
	}
	if f.AntiNoise() != 0 {
		t.Error("reset fixed LANC should output 0")
	}
	if f.Saturations() != 0 {
		t.Error("reset should clear saturation count")
	}
}

func TestFixedLANCSaturationCounting(t *testing.T) {
	f, err := NewFixed(FixedConfig{
		NonCausalTaps: 2, CausalTaps: 2, MuShift: 0, SecondaryPath: []float64{0.99},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive hard with a large error so weights and outputs rail.
	for i := 0; i < 5000; i++ {
		f.Adapt(0.999)
		f.Push(0.999)
		f.AntiNoise()
	}
	if f.Saturations() == 0 {
		t.Error("railed drive should record saturations")
	}
}

func BenchmarkFixedLANCStep(b *testing.B) {
	f, err := NewFixed(FixedConfig{
		NonCausalTaps: 24, CausalTaps: 64, MuShift: 2, SecondaryPath: testHse,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Adapt(0.05)
		f.Push(0.3)
		f.AntiNoise()
	}
}
