package core

import (
	"math"
	"testing"

	"mute/internal/audio"
	"mute/internal/dsp"
)

func TestNewBlockValidation(t *testing.T) {
	bad := []BlockConfig{
		{FilterTaps: 0, BlockSize: 16, Mu: 0.5, SecondaryPath: []float64{1}},
		{FilterTaps: 64, BlockSize: 0, Mu: 0.5, SecondaryPath: []float64{1}},
		{FilterTaps: 64, BlockSize: 16, Mu: 0, SecondaryPath: []float64{1}},
		{FilterTaps: 64, BlockSize: 16, Mu: 0.5, SecondaryPath: nil},
		{FilterTaps: 64, BlockSize: 16, Mu: 0.5, SecondaryPath: []float64{1}, Lambda: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewBlock(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	bl, err := NewBlock(BlockConfig{FilterTaps: 64, BlockSize: 16, Mu: 0.5, SecondaryPath: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if bl.BlockSize() != 16 {
		t.Error("block size accessor mismatch")
	}
}

func TestBlockProcessArity(t *testing.T) {
	bl, err := NewBlock(BlockConfig{FilterTaps: 32, BlockSize: 8, Mu: 0.5, SecondaryPath: testHse})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bl.ProcessBlock(make([]float64, 4), make([]float64, 8)); err == nil {
		t.Error("short input block should error")
	}
	if _, err := bl.ProcessBlock(make([]float64, 8), make([]float64, 4)); err == nil {
		t.Error("short error block should error")
	}
}

// runBlockANC drives the acoustic loop block-wise. The forwarded stream
// runs `lookahead` samples ahead of the acoustic wavefront; the block
// filter reaches back FilterTaps samples into it.
func runBlockANC(t *testing.T, bl *BlockLANC, gen audio.Generator, lookahead int, hnr, hne, hse []float64, n int) float64 {
	t.Helper()
	B := bl.BlockSize()
	refCh := dsp.NewStreamConvolver(hnr)
	priCh := dsp.NewStreamConvolver(hne)
	secCh := dsp.NewStreamConvolver(hse)
	noise := audio.Render(gen, n+lookahead+B)
	ref := refCh.ProcessBlock(noise)
	var resPow, priPow float64
	ePrev := make([]float64, B)
	for t0 := 0; t0+B <= n; t0 += B {
		// Forwarded samples available at block start: capture indices up
		// to t0-1+lookahead... take the B newest: [t0+lookahead-B, t0+lookahead).
		xNew := ref[t0+lookahead-B : t0+lookahead]
		out, err := bl.ProcessBlock(xNew, ePrev)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < B; i++ {
			d := priCh.Process(noise[t0+i])
			e := d + secCh.Process(out[i])
			ePrev[i] = e
			if t0+i >= 3*n/4 {
				resPow += e * e
				priPow += d * d
			}
		}
	}
	if priPow == 0 {
		return 0
	}
	return 10 * math.Log10(resPow/priPow)
}

func TestBlockLANCCancelsWhiteNoise(t *testing.T) {
	bl, err := NewBlock(BlockConfig{
		FilterTaps: 48, BlockSize: 8, Mu: 0.4, SecondaryPath: testHse,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := audio.NewWhiteNoise(1, 8000, 0.5)
	db := runBlockANC(t, bl, gen, 24, testHnr, testHne, testHse, 64000)
	if db > -12 {
		t.Errorf("block LANC cancellation = %.1f dB, want < -12", db)
	}
}

func TestBlockLANCComparableToSampleLANC(t *testing.T) {
	bl, err := NewBlock(BlockConfig{
		FilterTaps: 48, BlockSize: 8, Mu: 0.4, SecondaryPath: testHse,
	})
	if err != nil {
		t.Fatal(err)
	}
	blockDB := runBlockANC(t, bl, audio.NewWhiteNoise(1, 8000, 0.5), 24, testHnr, testHne, testHse, 64000)
	l := newTestLANC(t, 16)
	sampleDB := runANC(t, l, audio.NewWhiteNoise(1, 8000, 0.5), testHnr, testHne, testHse, 64000)
	// Both should deliver strong cancellation; block adaptation is
	// delayed by a block so it may trail, but not collapse.
	if blockDB > sampleDB+25 && blockDB > -12 {
		t.Errorf("block (%.1f dB) collapsed relative to sample LANC (%.1f dB)", blockDB, sampleDB)
	}
}

func TestBlockLANCWeightsAndReset(t *testing.T) {
	bl, err := NewBlock(BlockConfig{
		FilterTaps: 32, BlockSize: 8, Mu: 0.4, SecondaryPath: testHse,
	})
	if err != nil {
		t.Fatal(err)
	}
	runBlockANC(t, bl, audio.NewWhiteNoise(2, 8000, 0.5), 16, testHnr, testHne, testHse, 8000)
	w := bl.Weights()
	if len(w) != 32 {
		t.Fatalf("weights length %d, want 32", len(w))
	}
	var energy float64
	for _, v := range w {
		energy += v * v
	}
	if energy == 0 {
		t.Error("adapted weights should be non-zero")
	}
	bl.Reset()
	for _, v := range bl.Weights() {
		if v != 0 {
			t.Fatal("reset should zero weights")
		}
	}
	out, err := bl.ProcessBlock(make([]float64, 8), make([]float64, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatal("reset block filter should output zeros")
		}
	}
}

// BenchmarkBlockLANCPerSample measures throughput per sample for a long
// filter, for comparison with BenchmarkLANCStep (sample-domain).
func BenchmarkBlockLANCPerSample(b *testing.B) {
	bl, err := NewBlock(BlockConfig{
		FilterTaps: 512, BlockSize: 64, Mu: 0.4, SecondaryPath: testHse,
	})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 64)
	e := make([]float64, 64)
	for i := range x {
		x[i] = 0.3
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i += 64 {
		if _, err := bl.ProcessBlock(x, e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSampleLANC512 is the sample-domain counterpart at the same
// filter length.
func BenchmarkSampleLANC512(b *testing.B) {
	l, err := New(Config{
		NonCausalTaps: 64, CausalTaps: 447, Mu: 0.2, Normalized: true,
		SecondaryPath: testHse,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Step(0.3, 0.05)
	}
}
