package core

import (
	"math"
	"testing"

	"mute/internal/audio"
	"mute/internal/dsp"
)

// runANC simulates the acoustic loop of Figure 4 driven by the given noise
// generator: x = h_nr * n at the reference mic, primary d = h_ne * n at the
// error mic, anti-noise through the true h_se. It returns the cancellation
// in dB over the final quarter (negative is better).
func runANC(t *testing.T, l *LANC, gen audio.Generator, hnr, hne, hse []float64, n int) float64 {
	t.Helper()
	N := l.NonCausalTaps()
	refCh := dsp.NewStreamConvolver(hnr)
	priCh := dsp.NewStreamConvolver(hne)
	secCh := dsp.NewStreamConvolver(hse)
	// Pre-generate the noise so the reference path can run N samples
	// ahead of the acoustic path, exactly as the wireless relay does.
	noise := audio.Render(gen, n+N+1)
	ref := refCh.ProcessBlock(noise)
	var resPow, priPow float64
	e := 0.0
	for tt := 0; tt < n; tt++ {
		l.Adapt(e)
		l.Push(ref[tt+N])
		a := l.AntiNoise()
		d := priCh.Process(noise[tt])
		e = d + secCh.Process(a)
		if tt >= 3*n/4 {
			resPow += e * e
			priPow += d * d
		}
	}
	if priPow == 0 {
		return 0
	}
	return 10 * math.Log10(resPow/priPow)
}

// Channels used across tests: h_nr is deliberately non-minimum-phase
// (|zero| > 1) so its inverse is non-causal — the condition that makes
// lookahead valuable. h_ne arrives later than h_nr (the ear is farther).
var (
	testHnr = []float64{0.5, 1.0}
	testHne = []float64{0, 0, 0, 0, 1.0, 0.35, 0.1}
	testHse = []float64{0.8, 0.25, 0.05}
)

func newTestLANC(t *testing.T, nonCausal int, opts ...func(*Config)) *LANC {
	t.Helper()
	cfg := Config{
		NonCausalTaps: nonCausal,
		CausalTaps:    24,
		Mu:            0.5,
		Normalized:    true,
		SecondaryPath: testHse,
	}
	for _, o := range opts {
		o(&cfg)
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLANCCancelsWhiteNoise(t *testing.T) {
	l := newTestLANC(t, 16)
	gen := audio.NewWhiteNoise(1, 8000, 0.5)
	db := runANC(t, l, gen, testHnr, testHne, testHse, 60000)
	if db > -15 {
		t.Errorf("LANC white-noise cancellation = %.1f dB, want < -15 dB", db)
	}
}

func TestLookaheadImprovesCancellation(t *testing.T) {
	// The paper's central claim (Figure 16): more non-causal taps (more
	// lookahead) yield deeper cancellation of unpredictable noise.
	results := map[int]float64{}
	for _, N := range []int{0, 4, 16} {
		l := newTestLANC(t, N)
		gen := audio.NewWhiteNoise(1, 8000, 0.5)
		results[N] = runANC(t, l, gen, testHnr, testHne, testHse, 60000)
	}
	if !(results[16] < results[4] && results[4] < results[0]) {
		t.Errorf("cancellation should improve with lookahead: %v", results)
	}
	if results[16] > results[0]-5 {
		t.Errorf("16-tap lookahead should beat none by > 5 dB: %v", results)
	}
}

func TestLANCCausalOnlyStillCancelsTone(t *testing.T) {
	// Periodic signals are predictable: even without lookahead the
	// adaptive filter cancels them (why conventional ANC handles hum).
	l := newTestLANC(t, 0)
	gen := audio.NewTone(250, 8000, 0.5, 0)
	db := runANC(t, l, gen, testHnr, testHne, testHse, 40000)
	if db > -20 {
		t.Errorf("causal LANC tone cancellation = %.1f dB, want < -20 dB", db)
	}
}

func TestLANCConfigValidation(t *testing.T) {
	bad := []Config{
		{NonCausalTaps: -1, CausalTaps: 8, Mu: 0.1, SecondaryPath: []float64{1}},
		{NonCausalTaps: 8, CausalTaps: -1, Mu: 0.1, SecondaryPath: []float64{1}},
		{NonCausalTaps: 0, CausalTaps: 0, Mu: 0.1, SecondaryPath: []float64{1}},
		{NonCausalTaps: 8, CausalTaps: 8, Mu: 0, SecondaryPath: []float64{1}},
		{NonCausalTaps: 8, CausalTaps: 8, Mu: 0.1, SecondaryPath: nil},
		{NonCausalTaps: 8, CausalTaps: 8, Mu: 0.1, Leak: 1, SecondaryPath: []float64{1}},
		{NonCausalTaps: 8, CausalTaps: 8, Mu: 0.1, SecondaryPath: []float64{1}, Profiling: true},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestLANCProfilingDefaults(t *testing.T) {
	cfg := Config{
		NonCausalTaps: 4, CausalTaps: 8, Mu: 0.1,
		SecondaryPath: []float64{1},
		Profiling:     true, SampleRate: 8000,
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.CurrentProfile() != 0 {
		t.Error("initial profile should be silence (0)")
	}
}

func TestLANCProfileSwitchDetected(t *testing.T) {
	cfg := Config{
		NonCausalTaps: 8, CausalTaps: 16, Mu: 0.4, Normalized: true,
		SecondaryPath: testHse,
		Profiling:     true, SampleRate: 8000,
		ProfileWindow: 256, ProfileHop: 64,
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate a low tone and wide-band noise with a silent gap; the
	// profiler should register multiple distinct profiles and switch.
	tone := audio.NewTone(300, 8000, 0.5, 0)
	noise := audio.NewWhiteNoise(2, 8000, 0.5)
	var stream []float64
	for rep := 0; rep < 4; rep++ {
		stream = append(stream, audio.Render(tone, 4000)...)
		stream = append(stream, make([]float64, 2000)...) // silence
		stream = append(stream, audio.Render(noise, 4000)...)
		stream = append(stream, make([]float64, 2000)...)
	}
	e := 0.0
	for _, x := range stream {
		l.Adapt(e)
		l.Push(x)
		e = 0.1 * l.AntiNoise() // dummy loop; we only test the profiler here
	}
	if l.Switches() < 4 {
		t.Errorf("profiler performed %d switches, want >= 4", l.Switches())
	}
}

func TestLANCSetWeightsRoundTrip(t *testing.T) {
	l := newTestLANC(t, 4)
	w := l.Weights()
	for i := range w {
		w[i] = float64(i) * 0.01
	}
	if err := l.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	got := l.Weights()
	for i := range w {
		if got[i] != w[i] {
			t.Fatal("weights round trip failed")
		}
	}
	if err := l.SetWeights([]float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestLANCReset(t *testing.T) {
	l := newTestLANC(t, 4)
	gen := audio.NewWhiteNoise(3, 8000, 0.5)
	runANC(t, l, gen, testHnr, testHne, testHse, 2000)
	l.Reset()
	for _, w := range l.Weights() {
		if w != 0 {
			t.Fatal("reset should zero weights")
		}
	}
	if l.AntiNoise() != 0 {
		t.Error("reset LANC should output 0")
	}
}

func TestLANCStepWrapper(t *testing.T) {
	l := newTestLANC(t, 2)
	// Step should not panic and should eventually produce output.
	var out float64
	for i := 0; i < 100; i++ {
		out = l.Step(0.5, 0.1)
	}
	if math.IsNaN(out) {
		t.Error("Step produced NaN")
	}
	if l.NonCausalTaps() != 2 || l.CausalTaps() != 24 {
		t.Error("tap accessors mismatch")
	}
	if l.CurrentProfile() != -1 {
		t.Error("profiling disabled should report -1")
	}
}

func TestBudget(t *testing.T) {
	p := DefaultPipeline()
	if p.Total() != 4 {
		t.Fatalf("default pipeline total = %d, want 4", p.Total())
	}
	b, err := NewBudget(24, p)
	if err != nil {
		t.Fatal(err)
	}
	if !b.DeadlineMet || b.UsableTaps != 20 || b.LateSamples != 0 {
		t.Errorf("budget = %+v", b)
	}
	// Conventional headphone: essentially zero lookahead.
	b2, err := NewBudget(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if b2.DeadlineMet || b2.LateSamples != 4 || b2.UsableTaps != 0 {
		t.Errorf("no-lookahead budget = %+v", b2)
	}
	if _, err := NewBudget(10, PipelineDelays{ADC: -1}); err == nil {
		t.Error("negative pipeline delay should error")
	}
}

func BenchmarkLANCStep(b *testing.B) {
	cfg := Config{
		NonCausalTaps: 24, CausalTaps: 64, Mu: 0.2, Normalized: true,
		SecondaryPath: testHse,
	}
	l, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Step(0.3, 0.05)
	}
}

func TestLANCErrorDelayValidation(t *testing.T) {
	cfg := Config{
		NonCausalTaps: 4, CausalTaps: 8, Mu: 0.1,
		SecondaryPath: []float64{1}, ErrorDelay: -1,
	}
	if _, err := New(cfg); err == nil {
		t.Error("negative error delay should be rejected")
	}
}

func TestLANCErrorDelayStillCancels(t *testing.T) {
	// With the error arriving late but correctly paired, cancellation
	// should remain within a few dB of the co-located case.
	run := func(delay int) float64 {
		cfg := Config{
			NonCausalTaps: 8, CausalTaps: 24, Mu: 0.3, Normalized: true,
			SecondaryPath: testHse, ErrorDelay: delay,
		}
		l, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen := audio.NewWhiteNoise(9, 8000, 0.5)
		refCh := dsp.NewStreamConvolver(testHnr)
		priCh := dsp.NewStreamConvolver(testHne)
		secCh := dsp.NewStreamConvolver(testHse)
		fifo, err := dsp.NewDelayLine(delay)
		if err != nil {
			t.Fatal(err)
		}
		const n = 40000
		noise := audio.Render(gen, n+9)
		ref := refCh.ProcessBlock(noise)
		var resPow, priPow float64
		e := 0.0
		for tt := 0; tt < n; tt++ {
			l.Adapt(fifo.Process(e))
			l.Push(ref[tt+8])
			a := l.AntiNoise()
			d := priCh.Process(noise[tt])
			e = d + secCh.Process(a)
			if tt >= 3*n/4 {
				resPow += e * e
				priPow += d * d
			}
		}
		return 10 * math.Log10(resPow/priPow)
	}
	colocated := run(0)
	delayed := run(6)
	if delayed > -10 {
		t.Errorf("delayed-error LANC cancellation = %.1f dB, want < -10", delayed)
	}
	if delayed > colocated+6 {
		t.Errorf("delayed-error run (%.1f dB) should stay within 6 dB of co-located (%.1f dB)", delayed, colocated)
	}
}
