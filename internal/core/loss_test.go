package core

import (
	"math"
	"testing"

	"mute/internal/audio"
	"mute/internal/dsp"
)

// runANCMasked is runANC with a lossy reference leg: whenever conceal(t)
// reports true the forwarded reference sample is replaced by the zero the
// jitter buffer would substitute, and the canceller is told so via
// StepMasked. The acoustic leg (primary noise, error mic) is unaffected —
// loss only happens on the RF link.
func runANCMasked(t *testing.T, l *LANC, gen audio.Generator, conceal func(int) bool, n int) float64 {
	t.Helper()
	N := l.NonCausalTaps()
	refCh := dsp.NewStreamConvolver(testHnr)
	priCh := dsp.NewStreamConvolver(testHne)
	secCh := dsp.NewStreamConvolver(testHse)
	noise := audio.Render(gen, n+N+1)
	ref := refCh.ProcessBlock(noise)
	var resPow, priPow float64
	e := 0.0
	for tt := 0; tt < n; tt++ {
		x, real := ref[tt+N], true
		if conceal(tt + N) {
			x, real = 0, false
		}
		a := l.StepMasked(x, e, real)
		d := priCh.Process(noise[tt])
		e = d + secCh.Process(a)
		if tt >= 3*n/4 {
			resPow += e * e
			priPow += d * d
		}
	}
	if priPow == 0 {
		return 0
	}
	return 10 * math.Log10(resPow/priPow)
}

// burstConceal builds a deterministic burst-loss mask: every period
// samples, burst consecutive samples are concealed (two lost 80-sample
// frames back to back at period 2000 ≈ 8% loss).
func burstConceal(period, burst int) func(int) bool {
	return func(t int) bool { return t%period < burst }
}

func TestLossAwareBitIdenticalAtZeroLoss(t *testing.T) {
	// With no concealment the loss-aware path must be arithmetically
	// identical to the plain one — gain 1 multiplies through exactly.
	plain := newTestLANC(t, 16)
	aware := newTestLANC(t, 16, func(c *Config) { c.LossAware = true })
	plain.cfg.Leak = 0.001 // exercise the leaky fused branch too
	aware.cfg.Leak = 0.001
	gen := audio.NewWhiteNoise(5, 8000, 0.5)
	refCh := dsp.NewStreamConvolver(testHnr)
	noise := audio.Render(gen, 4000)
	ref := refCh.ProcessBlock(noise)
	e := 0.0
	for tt := 0; tt+16 < len(ref); tt++ {
		ap := plain.Step(ref[tt+16], e)
		aa := aware.StepMasked(ref[tt+16], e, true)
		if ap != aa {
			t.Fatalf("t=%d: outputs diverged: %g vs %g", tt, ap, aa)
		}
		e = 0.3*ap + 0.1*float64(tt%7) // arbitrary but identical residual feed
	}
	wp, wa := plain.Weights(), aware.Weights()
	for i := range wp {
		if wp[i] != wa[i] {
			t.Fatalf("weight %d diverged: %g vs %g", i, wp[i], wa[i])
		}
	}
}

func TestLossAwareFreezeHoldsWeights(t *testing.T) {
	// Converge, then feed a concealed burst with a large residual: the
	// weights — including the leak term — must not move at all while the
	// zero sits in the gradient window, and adaptation must resume after.
	l := newTestLANC(t, 16, func(c *Config) {
		c.LossAware = true
		c.Leak = 0.01
		c.RecoveryRamp = 64
	})
	gen := audio.NewWhiteNoise(6, 8000, 0.5)
	runANC(t, l, gen, testHnr, testHne, testHse, 20000)
	// The concealed sample's own step still adapts for ePrev (the zero has
	// not reached the gradient window yet); the freeze starts on the next
	// sample and lasts while the guard covers the window
	// (N + L + ErrorDelay + 2 = 42 here).
	l.StepMasked(0, 0.9, false)
	frozen := l.Weights()
	for i := 0; i < 41; i++ {
		got := l.Weights()
		for j := range got {
			if got[j] != frozen[j] {
				t.Fatalf("weight %d moved during freeze (step %d): %g vs %g",
					j, i, got[j], frozen[j])
			}
		}
		l.StepMasked(0.4, 0.9, true)
	}
	// Guard has expired; the ramp lets adaptation move weights again.
	for i := 0; i < 200; i++ {
		l.StepMasked(0.4, 0.9, true)
	}
	moved := false
	for j, w := range l.Weights() {
		if w != frozen[j] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("adaptation never resumed after the recovery ramp")
	}
}

func TestLossAwareSplitPathFreezes(t *testing.T) {
	// The split Adapt/PushMasked/AntiNoise path (live binaries) must freeze
	// exactly like the fused StepMasked path.
	l := newTestLANC(t, 8, func(c *Config) { c.LossAware = true })
	gen := audio.NewWhiteNoise(7, 8000, 0.5)
	runANC(t, l, gen, testHnr, testHne, testHse, 10000)
	frozen := l.Weights()
	l.PushMasked(0, false)
	for i := 0; i < 30; i++ {
		l.Adapt(0.8)
		l.PushMasked(0.3, true)
		_ = l.AntiNoise()
	}
	for j, w := range l.Weights() {
		if w != frozen[j] {
			t.Fatalf("split path adapted during freeze: weight %d %g vs %g", j, w, frozen[j])
		}
	}
}

func TestLossAwareBeatsNaiveUnderBurstLoss(t *testing.T) {
	// The headline claim: under burst loss, freezing on concealment holds
	// cancellation while naive adaptation against zero-filled audio
	// corrupts the filter every burst edge.
	const n = 60000
	conceal := burstConceal(2000, 160) // 8% loss in 20 ms bursts
	naive := newTestLANC(t, 16)
	aware := newTestLANC(t, 16, func(c *Config) { c.LossAware = true })
	naiveDB := runANCMasked(t, naive, audio.NewWhiteNoise(1, 8000, 0.5), conceal, n)
	awareDB := runANCMasked(t, aware, audio.NewWhiteNoise(1, 8000, 0.5), conceal, n)
	if awareDB > naiveDB-3 {
		t.Errorf("loss-aware = %.1f dB, naive = %.1f dB; want ≥ 3 dB better", awareDB, naiveDB)
	}
	// Degradation must be bounded by the passive floor: never louder than
	// no anti-noise at all.
	if awareDB > 0 {
		t.Errorf("loss-aware residual above passive floor: %.1f dB", awareDB)
	}
}

func TestLossAwareNeverDivergesUnderHeavyLoss(t *testing.T) {
	// Adversarial regime: 40% of samples concealed in long bursts. The
	// loss-aware canceller may stop helping but must never amplify.
	conceal := burstConceal(1000, 400)
	aware := newTestLANC(t, 16, func(c *Config) { c.LossAware = true })
	db := runANCMasked(t, aware, audio.NewWhiteNoise(2, 8000, 0.5), conceal, 40000)
	if db > 1 {
		t.Errorf("loss-aware diverged under heavy loss: %.1f dB above passive", db)
	}
}

func TestLossAwareConfigValidation(t *testing.T) {
	cfg := Config{NonCausalTaps: 8, CausalTaps: 8, Mu: 0.1,
		SecondaryPath: []float64{1}, LossAware: true}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.cfg.RecoveryRamp < 256 {
		t.Errorf("RecoveryRamp default = %d, want ≥ 256", l.cfg.RecoveryRamp)
	}
	bad := cfg
	bad.RecoveryRamp = -1
	if _, err := New(bad); err == nil {
		t.Error("negative RecoveryRamp should be rejected")
	}
}
