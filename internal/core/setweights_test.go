package core

import (
	"math"
	"testing"

	"mute/internal/audio"
)

// TestBlockSetWeightsRoundTrip pins the warm-start contract used by fleet
// session handoff: Weights → SetWeights on a fresh filter reproduces the
// taps to floating-point round-off, for tap counts that do and don't
// divide evenly into partitions.
func TestBlockSetWeightsRoundTrip(t *testing.T) {
	for _, taps := range []int{64, 56, 17} {
		bl, err := NewBlock(BlockConfig{
			FilterTaps: taps, BlockSize: 16, Mu: 0.5,
			SecondaryPath: testHse, NonCausalTaps: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Adapt against real traffic so the weights are dense and
		// arbitrary, not a synthetic pattern a buggy transform could
		// accidentally preserve.
		runBlockANC(t, bl, audio.NewWhiteNoise(3, 8000, 0.5), 24, testHnr, testHne, testHse, 2048)
		w := bl.Weights()

		fresh, err := NewBlock(BlockConfig{
			FilterTaps: taps, BlockSize: 16, Mu: 0.5,
			SecondaryPath: testHse, NonCausalTaps: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		got := fresh.Weights()
		for i := range w {
			if math.Abs(got[i]-w[i]) > 1e-12 {
				t.Fatalf("taps=%d: weight %d round-tripped %g → %g", taps, i, w[i], got[i])
			}
		}
		if err := fresh.SetWeights(make([]float64, taps+1)); err == nil {
			t.Fatalf("taps=%d: wrong-length weights accepted", taps)
		}
	}
}

// TestBlockSetWeightsRespectsLimit pins the degraded-posture interaction:
// loading weights into a filter whose non-causal window is shrunken must
// keep the disabled taps at zero — a handoff cannot resurrect capacity the
// pressure ladder took away.
func TestBlockSetWeightsRespectsLimit(t *testing.T) {
	cfg := BlockConfig{
		FilterTaps: 64, BlockSize: 16, Mu: 0.5,
		SecondaryPath: testHse, NonCausalTaps: 8,
	}
	bl, err := NewBlock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runBlockANC(t, bl, audio.NewWhiteNoise(4, 8000, 0.5), 24, testHnr, testHne, testHse, 2048)
	w := bl.Weights()

	limited, err := NewBlock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	limited.LimitNonCausal(3)
	if err := limited.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	if got := limited.ActiveNonCausal(); got != 3 {
		t.Fatalf("SetWeights changed the live window to %d, want 3", got)
	}
	got := limited.Weights()
	// The zeroing happens in the frequency domain, so reconstructed
	// disabled taps carry FFT round-off rather than exact zeros.
	for i := 0; i < 8-3; i++ {
		if math.Abs(got[i]) > 1e-12 {
			t.Fatalf("disabled tap %d resurrected by SetWeights: %g", i, got[i])
		}
	}
	for i := 8 - 3; i < len(w); i++ {
		if math.Abs(got[i]-w[i]) > 1e-12 {
			t.Fatalf("live tap %d corrupted: %g want %g", i, got[i], w[i])
		}
	}
}
