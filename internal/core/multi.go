package core

import "fmt"

// MultiLANC extends LANC to multiple reference microphones — the paper's
// multi-source future work (Section 6): "with multiple noise sources, the
// problem ... requir[es] either multiple microphones (one for each noise
// channel) or source separation algorithms". Each wireless relay
// contributes one reference stream with its own lookahead; the anti-noise
// is the sum of one adaptive filter per reference, all driven by the shared
// error microphone. The gradient of the summed output separates per
// reference, so each bank adapts exactly as a single LANC would.
type MultiLANC struct {
	banks []*LANC
}

// NewMulti creates a multi-reference canceller with one filter bank per
// configuration. All banks share the error signal; they may differ in tap
// counts (e.g. per-relay lookahead budgets). Profiling, if enabled, runs
// independently per bank.
func NewMulti(cfgs []Config) (*MultiLANC, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("core: multi-reference LANC needs at least one reference")
	}
	m := &MultiLANC{}
	for i, cfg := range cfgs {
		l, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: reference %d: %w", i, err)
		}
		m.banks = append(m.banks, l)
	}
	return m, nil
}

// References returns the number of reference streams.
func (m *MultiLANC) References() int { return len(m.banks) }

// Push feeds the newest sample from every reference stream; len(xs) must
// equal References().
func (m *MultiLANC) Push(xs []float64) error {
	if len(xs) != len(m.banks) {
		return fmt.Errorf("core: got %d reference samples, want %d", len(xs), len(m.banks))
	}
	for i, x := range xs {
		m.banks[i].Push(x)
	}
	return nil
}

// AntiNoise returns the summed anti-noise of all banks.
func (m *MultiLANC) AntiNoise() float64 {
	var a float64
	for _, b := range m.banks {
		a += b.AntiNoise()
	}
	return a
}

// Adapt applies the shared residual error to every bank.
func (m *MultiLANC) Adapt(e float64) {
	for _, b := range m.banks {
		b.Adapt(e)
	}
}

// Bank returns the i-th underlying LANC for inspection (weights, profile
// state). It panics on out-of-range i, matching slice semantics.
func (m *MultiLANC) Bank(i int) *LANC { return m.banks[i] }

// Reset clears every bank.
func (m *MultiLANC) Reset() {
	for _, b := range m.banks {
		b.Reset()
	}
}
