package core

import (
	"testing"

	"mute/internal/audio"
	"mute/internal/dsp"
)

// sameWeights reports exact equality of two weight snapshots.
func sameWeights(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHoldAdaptationFreezesWithoutLossAware checks the drift pipeline's
// rate-jump freeze works on a plain (non-loss-aware) LANC: weights stay
// exactly fixed for the hold, then adaptation resumes through the ramp.
func TestHoldAdaptationFreezesWithoutLossAware(t *testing.T) {
	l := newTestLANC(t, 8)
	gen := audio.NewWhiteNoise(3, 8000, 0.5)
	refCh := dsp.NewStreamConvolver(testHnr)
	priCh := dsp.NewStreamConvolver(testHne)
	secCh := dsp.NewStreamConvolver(testHse)
	N := l.NonCausalTaps()
	noise := audio.Render(gen, 4000+N+1)
	ref := refCh.ProcessBlock(noise)

	e := 0.0
	step := func(tt int) {
		a := l.Step(ref[tt+N], e)
		e = priCh.Process(noise[tt]) + secCh.Process(a)
	}
	for tt := 0; tt < 500; tt++ {
		step(tt)
	}
	before := l.Weights()

	const hold, ramp = 200, 100
	l.HoldAdaptation(hold, ramp)
	for tt := 500; tt < 500+hold; tt++ {
		step(tt)
		if !sameWeights(l.Weights(), before) {
			t.Fatalf("weights moved %d samples into a %d-sample hold", tt-500+1, hold)
		}
	}
	for tt := 500 + hold; tt < 4000; tt++ {
		step(tt)
	}
	if sameWeights(l.Weights(), before) {
		t.Error("weights never moved after the hold expired: adaptation did not resume")
	}
}

// TestHoldAdaptationNeverCalledIsBitIdentical pins the opt-in contract:
// a LANC that is never held steps bit-identically to one without the
// feature in play, including on the loss-aware path.
func TestHoldAdaptationNeverCalledIsBitIdentical(t *testing.T) {
	plain := newTestLANC(t, 8)
	held := newTestLANC(t, 8)
	held.HoldAdaptation(0, 0) // hold <= 0 must be a no-op
	gen := audio.NewWhiteNoise(4, 8000, 0.5)
	refCh := dsp.NewStreamConvolver(testHnr)
	priCh := dsp.NewStreamConvolver(testHne)
	secCh1 := dsp.NewStreamConvolver(testHse)
	secCh2 := dsp.NewStreamConvolver(testHse)
	N := plain.NonCausalTaps()
	noise := audio.Render(gen, 2000+N+1)
	ref := refCh.ProcessBlock(noise)

	e1, e2 := 0.0, 0.0
	for tt := 0; tt < 2000; tt++ {
		d := priCh.Process(noise[tt])
		a1 := plain.Step(ref[tt+N], e1)
		a2 := held.Step(ref[tt+N], e2)
		if a1 != a2 {
			t.Fatalf("sample %d: anti-noise %v vs %v — a never-held LANC diverged", tt, a1, a2)
		}
		e1 = d + secCh1.Process(a1)
		e2 = d + secCh2.Process(a2)
	}
	if !sameWeights(plain.Weights(), held.Weights()) {
		t.Error("final weights differ between plain and never-held LANC")
	}
}

// TestHoldAdaptationLongerFreezeWins checks an in-progress longer freeze
// is not shortened by a later, shorter hold.
func TestHoldAdaptationLongerFreezeWins(t *testing.T) {
	l := newTestLANC(t, 8)
	gen := audio.NewWhiteNoise(5, 8000, 0.5)
	refCh := dsp.NewStreamConvolver(testHnr)
	priCh := dsp.NewStreamConvolver(testHne)
	secCh := dsp.NewStreamConvolver(testHse)
	N := l.NonCausalTaps()
	noise := audio.Render(gen, 1000+N+1)
	ref := refCh.ProcessBlock(noise)

	e := 0.0
	for tt := 0; tt < 300; tt++ {
		a := l.Step(ref[tt+N], e)
		e = priCh.Process(noise[tt]) + secCh.Process(a)
	}
	l.HoldAdaptation(400, 50)
	l.HoldAdaptation(10, 50) // must not shorten the 400-sample freeze
	before := l.Weights()
	for tt := 300; tt < 700; tt++ {
		a := l.Step(ref[tt+N], e)
		e = priCh.Process(noise[tt]) + secCh.Process(a)
	}
	if !sameWeights(l.Weights(), before) {
		t.Error("a later shorter hold cut the in-progress freeze short")
	}
}
