package core

import "fmt"

// PipelineDelays models the converter and transducer latencies of
// Equation 3: lookahead must cover ADC + DSP + DAC + speaker delay before
// any non-causal filtering is possible. All values are in samples at the
// processing rate.
type PipelineDelays struct {
	ADC     int
	DSP     int
	DAC     int
	Speaker int
}

// Total returns the summed pipeline delay in samples.
func (p PipelineDelays) Total() int { return p.ADC + p.DSP + p.DAC + p.Speaker }

// DefaultPipeline returns the delays of the paper's prototype at 8 kHz:
// one sample each for the codec ADC and DAC paths and one for DSP
// processing (the TMS320C6713 finishes within a sample period), plus one
// for speaker playback latency.
func DefaultPipeline() PipelineDelays {
	return PipelineDelays{ADC: 1, DSP: 1, DAC: 1, Speaker: 1}
}

// Budget splits an available lookahead (in samples) between the processing
// pipeline and LANC's non-causal taps. DeadlineMet reports whether
// Equation 3 holds; UsableTaps is the lookahead remaining for non-causal
// filtering after the pipeline is paid for (zero when the deadline is
// missed); LateSamples is how late the anti-noise reaches the speaker when
// the deadline is missed — the phase-error source that cripples
// conventional headphones at high frequency.
type Budget struct {
	LookaheadSamples int
	Pipeline         PipelineDelays
	DeadlineMet      bool
	UsableTaps       int
	LateSamples      int
}

// NewBudget computes the lookahead budget.
func NewBudget(lookaheadSamples int, p PipelineDelays) (Budget, error) {
	if p.ADC < 0 || p.DSP < 0 || p.DAC < 0 || p.Speaker < 0 {
		return Budget{}, fmt.Errorf("core: negative pipeline delay %+v", p)
	}
	b := Budget{LookaheadSamples: lookaheadSamples, Pipeline: p}
	spare := lookaheadSamples - p.Total()
	if spare >= 0 {
		b.DeadlineMet = true
		b.UsableTaps = spare
	} else {
		b.LateSamples = -spare
	}
	return b, nil
}
