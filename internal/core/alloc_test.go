package core

import "testing"

// TestLANCStepAllocatesNothing pins the steady-state per-sample canceller:
// after construction, StepMasked must not allocate.
func TestLANCStepAllocatesNothing(t *testing.T) {
	l, err := New(Config{
		NonCausalTaps: 32, CausalTaps: 160, Mu: 0.05, Normalized: true,
		SecondaryPath: []float64{0.85, 0.22, 0.06},
	})
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		x := float64(i%17)*0.05 - 0.4
		l.StepMasked(x, 0.01*x, true)
		i++
	}); n != 0 {
		t.Errorf("LANC.StepMasked allocated %.1f times per run", n)
	}
}
