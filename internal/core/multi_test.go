package core

import (
	"math"
	"testing"

	"mute/internal/audio"
	"mute/internal/dsp"
)

func multiCfg(n int) []Config {
	cfgs := make([]Config, n)
	for i := range cfgs {
		cfgs[i] = Config{
			NonCausalTaps: 8, CausalTaps: 16, Mu: 0.3 / float64(n), Normalized: true,
			SecondaryPath: testHse,
		}
	}
	return cfgs
}

func TestNewMultiValidation(t *testing.T) {
	if _, err := NewMulti(nil); err == nil {
		t.Error("empty config list should error")
	}
	bad := multiCfg(2)
	bad[1].Mu = 0
	if _, err := NewMulti(bad); err == nil {
		t.Error("invalid bank config should error")
	}
	m, err := NewMulti(multiCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.References() != 3 {
		t.Errorf("references = %d, want 3", m.References())
	}
}

func TestMultiPushArity(t *testing.T) {
	m, err := NewMulti(multiCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Push([]float64{1}); err == nil {
		t.Error("wrong arity should error")
	}
	if err := m.Push([]float64{1, 2}); err != nil {
		t.Errorf("correct arity should succeed: %v", err)
	}
}

func TestMultiCancelsTwoIndependentSources(t *testing.T) {
	// Two independent noise processes, each with its own channels; a
	// single-reference filter cannot cancel the mixture, two banks can.
	hnrA := []float64{1.0, 0.3}
	hneA := []float64{0, 0, 0, 0, 0.8, 0.2}
	hnrB := []float64{0.7, -0.4}
	hneB := []float64{0, 0, 0, 0, -0.5, 0.6}
	run := func(multi bool) float64 {
		const N = 8
		genA := audio.NewWhiteNoise(1, 8000, 0.5)
		genB := audio.NewWhiteNoise(2, 8000, 0.5)
		const n = 50000
		nsA := audio.Render(genA, n+N+1)
		nsB := audio.Render(genB, n+N+1)
		refA := dsp.NewStreamConvolver(hnrA)
		refB := dsp.NewStreamConvolver(hnrB)
		earA := dsp.NewStreamConvolver(hneA)
		earB := dsp.NewStreamConvolver(hneB)
		sec := dsp.NewStreamConvolver(testHse)
		var banks int
		if multi {
			banks = 2
		} else {
			banks = 1
		}
		m, err := NewMulti(multiCfg(banks))
		if err != nil {
			t.Fatal(err)
		}
		var resPow, priPow float64
		e := 0.0
		for tt := 0; tt < n; tt++ {
			m.Adapt(e)
			ra := refA.Process(nsA[tt+N])
			rb := refB.Process(nsB[tt+N])
			if multi {
				if err := m.Push([]float64{ra, rb}); err != nil {
					t.Fatal(err)
				}
			} else {
				// Single reference hears the mixture.
				if err := m.Push([]float64{ra + rb}); err != nil {
					t.Fatal(err)
				}
			}
			a := m.AntiNoise()
			d := earA.Process(nsA[tt]) + earB.Process(nsB[tt])
			e = d + sec.Process(a)
			if tt >= 3*n/4 {
				resPow += e * e
				priPow += d * d
			}
		}
		return 10 * math.Log10(resPow/priPow)
	}
	single := run(false)
	multi := run(true)
	if multi >= single-5 {
		t.Errorf("two-bank cancellation (%.1f dB) should beat single (%.1f dB) by > 5 dB", multi, single)
	}
	if multi > -15 {
		t.Errorf("two-bank cancellation = %.1f dB, want < -15", multi)
	}
}

func TestMultiBankAccessAndReset(t *testing.T) {
	m, err := NewMulti(multiCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.Adapt(0.1)
		if err := m.Push([]float64{0.5, -0.3}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Bank(0) == nil || m.Bank(1) == nil {
		t.Fatal("banks should be accessible")
	}
	m.Reset()
	if m.AntiNoise() != 0 {
		t.Error("reset multi should output 0")
	}
	for _, w := range m.Bank(0).Weights() {
		if w != 0 {
			t.Fatal("reset should zero bank weights")
		}
	}
}
