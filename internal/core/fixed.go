package core

import (
	"fmt"
	"math"
)

// FixedLANC is a Q15 fixed-point implementation of the LANC filter,
// mirroring how the algorithm runs on the paper's TMS320C6713-class DSP
// hardware: int16 samples, int32 weights, int64 accumulation, saturating
// output, and a power-of-two (shift-based) normalized step. It exists to
// demonstrate — and test — that LANC survives 16-bit signal paths with
// cancellation close to the float implementation.
//
// Formats: samples and the filtered-x signal are Q15; weights are Q12 in
// int32 (±2^19 range, ample for inverse-filter gains); the anti-noise
// accumulator is Q27 in int64.
type FixedLANC struct {
	nonCausal int
	causal    int
	muShift   uint // normalized step µ = 2^-muShift

	w       []int32 // Q12, w[i] is h_AF(k), k = i - nonCausal
	x       []int16 // Q15 shift register; x[len-1] newest (offset +N)
	fx      []int16 // Q15 filtered-x register, same layout
	sec     []int16 // Q15 ĥ_se taps
	secHist []int16 // Q15 history for the secondary-path convolution

	pow int64  // Q15 window power of fx (sum of squares >> 15)
	sat uint64 // saturation events (diagnostics)
}

// FixedConfig configures a FixedLANC.
type FixedConfig struct {
	// NonCausalTaps and CausalTaps mirror Config.
	NonCausalTaps, CausalTaps int
	// MuShift sets the normalized step µ = 2^-MuShift (2–6 typical;
	// larger = slower, more stable).
	MuShift uint
	// SecondaryPath is the ĥ_se estimate; quantized to Q15 on creation.
	SecondaryPath []float64
}

// NewFixed creates a fixed-point LANC.
func NewFixed(cfg FixedConfig) (*FixedLANC, error) {
	if cfg.NonCausalTaps < 0 || cfg.CausalTaps < 0 {
		return nil, fmt.Errorf("core: negative tap counts (%d, %d)", cfg.NonCausalTaps, cfg.CausalTaps)
	}
	if cfg.NonCausalTaps+cfg.CausalTaps == 0 {
		return nil, fmt.Errorf("core: fixed LANC needs at least one tap")
	}
	if cfg.MuShift > 14 {
		return nil, fmt.Errorf("core: mu shift %d too large (max 14)", cfg.MuShift)
	}
	if len(cfg.SecondaryPath) == 0 {
		return nil, fmt.Errorf("core: missing secondary path estimate")
	}
	sec := make([]int16, len(cfg.SecondaryPath))
	for i, v := range cfg.SecondaryPath {
		sec[i] = toQ15(v)
	}
	n := cfg.NonCausalTaps + cfg.CausalTaps + 1
	return &FixedLANC{
		nonCausal: cfg.NonCausalTaps,
		causal:    cfg.CausalTaps,
		muShift:   cfg.MuShift,
		w:         make([]int32, n),
		x:         make([]int16, n),
		fx:        make([]int16, n),
		sec:       sec,
		secHist:   make([]int16, len(sec)),
	}, nil
}

// toQ15 converts a float in [-1, 1) to Q15, saturating out-of-range,
// NaN and infinite inputs (float→int conversion of such values is
// implementation-specific in Go, so clamp in the float domain first).
func toQ15(v float64) int16 {
	if math.IsNaN(v) {
		return 0
	}
	if v >= 1 {
		return 32767
	}
	if v <= -1 {
		return -32768
	}
	return int16(v * 32768)
}

// fromQ15 converts Q15 to float.
func fromQ15(v int16) float64 { return float64(v) / 32768 }

// satAdd16 saturates an int32 into int16 range, counting events.
func (f *FixedLANC) satAdd16(v int64) int16 {
	if v > 32767 {
		f.sat++
		return 32767
	}
	if v < -32768 {
		f.sat++
		return -32768
	}
	return int16(v)
}

// Push feeds the newest forwarded reference sample (float in [-1, 1); it
// is quantized to Q15 internally, exactly as the codec ADC would).
func (f *FixedLANC) Push(xf float64) {
	x := toQ15(xf)
	// Secondary-path convolution in Q15.
	copy(f.secHist, f.secHist[1:])
	f.secHist[len(f.secHist)-1] = x
	var acc int64
	for i, h := range f.sec {
		// secHist[len-1] is newest → pairs with sec[0].
		acc += int64(h) * int64(f.secHist[len(f.secHist)-1-i])
	}
	fxNew := f.satAdd16(acc >> 15)

	// Retire the oldest fx from the running power, admit the newest.
	old := int64(f.fx[0])
	f.pow -= (old * old) >> 15
	copy(f.x, f.x[1:])
	f.x[len(f.x)-1] = x
	copy(f.fx, f.fx[1:])
	f.fx[len(f.fx)-1] = fxNew
	f.pow += (int64(fxNew) * int64(fxNew)) >> 15
	if f.pow < 0 {
		f.pow = 0
	}
}

// AntiNoise returns the Q15 anti-noise sample as a float.
func (f *FixedLANC) AntiNoise() float64 {
	var acc int64 // Q27
	// Register layout: x[0] holds offset −L, x[len−1] holds offset +N,
	// i.e. offset o lives at index o+L. Tap i carries k = i−N and needs
	// x at offset −k = N−i, which is index N−i+L = len−1−i.
	for i, wi := range f.w {
		acc += int64(wi) * int64(f.x[len(f.x)-1-i])
	}
	return float64(f.satAdd16(acc>>12)) / 32768
}

// Adapt applies the shift-normalized update for the measured residual
// (float, quantized to Q15): w[i] -= (e·fx)/(pow) · 2^-muShift.
func (f *FixedLANC) Adapt(ef float64) {
	e := int64(toQ15(ef))
	pow := f.pow
	if pow < 1 {
		pow = 1
	}
	// factor ≈ e/pow in Q15: (e<<15)/pow.
	factor := (e << 15) / pow
	// Clamp the factor so a silent window cannot produce a huge step.
	const maxFactor = 1 << 18
	if factor > maxFactor {
		factor = maxFactor
	} else if factor < -maxFactor {
		factor = -maxFactor
	}
	shift := 18 + f.muShift // Q15·Q15 → Q30; weights Q12 → >>18; plus µ
	for i := range f.w {
		fx := int64(f.fx[len(f.fx)-1-i])
		delta := (factor * fx) >> shift
		f.w[i] -= int32(delta)
	}
}

// Saturations returns how many samples saturated the 16-bit range.
func (f *FixedLANC) Saturations() uint64 { return f.sat }

// Weights returns the weights dequantized to float.
func (f *FixedLANC) Weights() []float64 {
	out := make([]float64, len(f.w))
	for i, w := range f.w {
		out[i] = float64(w) / 4096
	}
	return out
}

// NonCausalTaps returns N.
func (f *FixedLANC) NonCausalTaps() int { return f.nonCausal }

// Reset zeroes all state.
func (f *FixedLANC) Reset() {
	for i := range f.w {
		f.w[i] = 0
		f.x[i] = 0
		f.fx[i] = 0
	}
	for i := range f.secHist {
		f.secHist[i] = 0
	}
	f.pow = 0
	f.sat = 0
}
