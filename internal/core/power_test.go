package core

import (
	"math"
	"testing"

	"mute/internal/audio"
)

// bruteForcePowers recomputes the NLMS window powers the way the original
// O(N+L) rescan did: summing squares over tap offsets [-L, +N].
func bruteForcePowers(l *LANC) (xPow, fxPow float64) {
	for k := -l.cfg.NonCausalTaps; k <= l.cfg.CausalTaps; k++ {
		v := l.fxBuf.At(-k)
		fxPow += v * v
		u := l.xBuf.At(-k)
		xPow += u * u
	}
	return xPow, fxPow
}

// TestIncrementalPowerTracksBruteForce drives a long random stream through
// Push and checks at every sample that the O(1) sliding power update stays
// within 1e-9 of the brute-force recomputation. This guards the periodic
// exact rescan against floating-point drift in the add/subtract update.
func TestIncrementalPowerTracksBruteForce(t *testing.T) {
	cfg := Config{
		NonCausalTaps: 32,
		CausalTaps:    160,
		Mu:            0.05,
		Normalized:    true,
		SecondaryPath: []float64{0.8, 0.3, 0.1, -0.05},
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := audio.NewRNG(7)
	const samples = 20000
	for i := 0; i < samples; i++ {
		// Mix in occasional level jumps so the window power swings by an
		// order of magnitude, the regime where incremental drift shows.
		// (Kept within the range where 1e-9 absolute is well above the ulp
		// floor of the running sum.)
		x := rng.Norm()
		if i%3000 > 2500 {
			x *= 4
		}
		l.Push(x)
		wantX, wantFx := bruteForcePowers(l)
		if d := math.Abs(l.xPow - wantX); d > 1e-9 {
			t.Fatalf("sample %d: xPow drift %.3g (incremental %.12g, brute force %.12g)",
				i, d, l.xPow, wantX)
		}
		if d := math.Abs(l.fxPow - wantFx); d > 1e-9 {
			t.Fatalf("sample %d: fxPow drift %.3g (incremental %.12g, brute force %.12g)",
				i, d, l.fxPow, wantFx)
		}
	}
}

// TestStepMatchesSequentialCalls verifies the fused Step is bit-identical
// to the documented Adapt → Push → AntiNoise sequence, including with
// leakage, error delay, and NLMS normalization active.
func TestStepMatchesSequentialCalls(t *testing.T) {
	cases := []Config{
		{NonCausalTaps: 16, CausalTaps: 48, Mu: 0.05, Normalized: true,
			SecondaryPath: []float64{0.8, 0.3, 0.1}},
		{NonCausalTaps: 16, CausalTaps: 48, Mu: 0.05, Normalized: true, Leak: 0.0005,
			SecondaryPath: []float64{0.8, 0.3, 0.1}},
		{NonCausalTaps: 8, CausalTaps: 32, Mu: 0.02, Normalized: true, Leak: 0.0005, ErrorDelay: 5,
			SecondaryPath: []float64{0.8, 0.3, 0.1}},
		{NonCausalTaps: 12, CausalTaps: 24, Mu: 0.01,
			SecondaryPath: []float64{1, 0.2}},
	}
	for ci, cfg := range cases {
		fused, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := audio.NewRNG(uint64(ci) + 3)
		errRng := audio.NewRNG(uint64(ci) + 91)
		for i := 0; i < 5000; i++ {
			x := rng.Norm()
			e := 0.3 * errRng.Norm()
			aFused := fused.Step(x, e)
			seq.Adapt(e)
			seq.Push(x)
			aSeq := seq.AntiNoise()
			if aFused != aSeq {
				t.Fatalf("case %d sample %d: fused %0.17g != sequential %0.17g",
					ci, i, aFused, aSeq)
			}
		}
		fw, sw := fused.Weights(), seq.Weights()
		for i := range fw {
			if fw[i] != sw[i] {
				t.Fatalf("case %d: weight %d diverged: %0.17g vs %0.17g", ci, i, fw[i], sw[i])
			}
		}
	}
}

// TestStepMatchesSequentialWithProfiling extends the equivalence check to
// profiling mode, where Step must recompute the anti-noise after a cached
// filter swap.
func TestStepMatchesSequentialWithProfiling(t *testing.T) {
	cfg := Config{
		NonCausalTaps: 16, CausalTaps: 48, Mu: 0.05, Normalized: true, Leak: 0.0005,
		SecondaryPath: []float64{0.8, 0.3, 0.1},
		Profiling:     true, SampleRate: 8000,
		ProfileWindow: 256, ProfileHop: 64, ProfileThreshold: 0.4, MaxProfiles: 4,
	}
	fused, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate hum and white noise so profiles actually switch.
	hum := audio.NewMachineHum(5, 150, 8000, 0.6, 6)
	white := audio.NewWhiteNoise(6, 8000, 0.5)
	errRng := audio.NewRNG(77)
	const seg = 2000
	for i := 0; i < 6*seg; i++ {
		var x float64
		if (i/seg)%2 == 0 {
			x = hum.Next()
		} else {
			x = white.Next()
		}
		e := 0.3 * errRng.Norm()
		aFused := fused.Step(x, e)
		seq.Adapt(e)
		seq.Push(x)
		aSeq := seq.AntiNoise()
		if aFused != aSeq {
			t.Fatalf("sample %d: fused %0.17g != sequential %0.17g", i, aFused, aSeq)
		}
	}
	if fused.Switches() != seq.Switches() {
		t.Fatalf("switch counts diverged: %d vs %d", fused.Switches(), seq.Switches())
	}
	if fused.Switches() == 0 {
		t.Fatal("profiling never switched; test exercised nothing")
	}
}
