package core

// Read-only observability accessors for the telemetry layer. Every method
// here is a pure read of adaptation state: calling them any number of
// times, at any point in the sample loop, changes nothing about the
// algorithm's output — the property the instrumentation's result-neutrality
// tests depend on. (Contrast lossGain, which consumes a ramp step and is
// therefore private.)

// TapEnergy returns Σ h_AF(k)², the energy of the adaptive filter — a
// cheap scalar proxy for "how converged is the filter" that telemetry
// samples per block.
func (l *LANC) TapEnergy() float64 {
	var e float64
	for _, w := range l.w {
		e += w * w
	}
	return e
}

// EffectiveStep returns the step size the next Adapt would use after NLMS
// power normalization (before the loss gain is applied).
func (l *LANC) EffectiveStep() float64 { return l.effectiveMu() }

// LossState reports the freeze machinery's current posture — loss-aware
// concealment freezes and explicit HoldAdaptation holds alike — without
// consuming a ramp step: gain is the adaptation scale the next update
// would see (0 while frozen, (0,1) while ramping back, 1 in steady
// state), frozen is true while the freeze guard is armed, and rampLeft
// counts the ramp samples remaining. With LossAware off and no hold
// pending it reports (1, false, 0).
func (l *LANC) LossState() (gain float64, frozen bool, rampLeft int) {
	if l.concealGuard > 0 {
		return 0, true, l.rampLeft
	}
	if l.rampLeft > 0 && l.rampLen > 0 {
		return 1 - float64(l.rampLeft)/float64(l.rampLen), false, l.rampLeft
	}
	return 1, false, 0
}
