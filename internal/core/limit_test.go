package core

import (
	"testing"

	"mute/internal/audio"
)

// TestLimitNonCausalFullWindowIdentical pins the supervisor's bit-identity
// contract: a canceller whose window was shrunk and then fully restored
// before any samples flowed behaves exactly like one never touched, and an
// explicit LimitNonCausal(N) is a no-op.
func TestLimitNonCausalFullWindowIdentical(t *testing.T) {
	a := newTestLANC(t, 8)
	b := newTestLANC(t, 8)
	b.LimitNonCausal(3)
	b.LimitNonCausal(100) // clamps to N, restoring the full window
	if b.ActiveNonCausal() != 8 {
		t.Fatalf("ActiveNonCausal = %d after restore, want 8", b.ActiveNonCausal())
	}
	gen := audio.NewWhiteNoise(7, 8000, 0.5)
	e := 0.0
	for i := 0; i < 500; i++ {
		x := gen.Next()
		ya := a.StepMasked(x, e, true)
		yb := b.StepMasked(x, e, true)
		if ya != yb {
			t.Fatalf("sample %d: restored-window output %v != untouched %v", i, yb, ya)
		}
		e = 0.5*x + 0.3*ya
	}
}

// TestLimitNonCausalZeroesAndHoldsFutureTaps checks the DEGRADED-rung
// mechanics: the most-future taps are forced to zero, stay zero under
// adaptation and bulk weight loads, and resume adapting once re-enabled.
func TestLimitNonCausalZeroesAndHoldsFutureTaps(t *testing.T) {
	l := newTestLANC(t, 8)
	gen := audio.NewWhiteNoise(11, 8000, 0.5)
	e := 0.0
	for i := 0; i < 200; i++ {
		x := gen.Next()
		e = 0.5*x + 0.3*l.StepMasked(x, e, true)
	}
	full := l.Weights()
	nonzero := 0
	for _, w := range full[:4] {
		if w != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("future taps never adapted; test signal too tame")
	}

	l.LimitNonCausal(4) // disable the 4 most-future taps
	if l.ActiveNonCausal() != 4 {
		t.Fatalf("ActiveNonCausal = %d, want 4", l.ActiveNonCausal())
	}
	for i := 0; i < 200; i++ {
		x := gen.Next()
		e = 0.5*x + 0.3*l.StepMasked(x, e, true)
		for k, w := range l.w[:4] {
			if w != 0 {
				t.Fatalf("disabled tap %d drifted to %v at sample %d", k, w, i)
			}
		}
	}
	// Bulk loads must respect the limit too.
	if err := l.SetWeights(full); err != nil {
		t.Fatal(err)
	}
	for k, w := range l.w[:4] {
		if w != 0 {
			t.Fatalf("SetWeights resurrected disabled tap %d = %v", k, w)
		}
	}
	// Active taps did keep adapting while limited.
	if l.TapEnergy() == 0 {
		t.Fatal("active taps frozen while window was limited")
	}

	l.LimitNonCausal(8)
	for i := 0; i < 200; i++ {
		x := gen.Next()
		e = 0.5*x + 0.3*l.StepMasked(x, e, true)
	}
	resumed := 0
	for _, w := range l.Weights()[:4] {
		if w != 0 {
			resumed++
		}
	}
	if resumed == 0 {
		t.Fatal("re-enabled taps never resumed adapting")
	}
}
