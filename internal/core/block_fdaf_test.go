package core

import (
	"math"
	"testing"

	"mute/internal/audio"
)

// TestBlockFDAFEquivalentToTimeDomainLANC is the tolerance-pinned
// equivalence suite: the partitioned frequency-domain filter and the
// time-domain LANC run the same scene (the channels the golden traces use),
// and the block filter's steady-state cancellation must stay within a
// pinned band of the time-domain result. Block adaptation is delayed by one
// block, so exact sample equality is not the contract — matching converged
// cancellation is.
func TestBlockFDAFEquivalentToTimeDomainLANC(t *testing.T) {
	const n = 64000
	l := newTestLANC(t, 16) // 16 non-causal + 24 causal = 40 taps
	tdDB := runANC(t, l, audio.NewWhiteNoise(1, 8000, 0.5), testHnr, testHne, testHse, n)

	bl, err := NewBlock(BlockConfig{
		FilterTaps: 48, BlockSize: 8, Mu: 0.4, SecondaryPath: testHse,
	})
	if err != nil {
		t.Fatal(err)
	}
	fdDB := runBlockANC(t, bl, audio.NewWhiteNoise(1, 8000, 0.5), 24, testHnr, testHne, testHse, n)

	if tdDB > -15 {
		t.Fatalf("time-domain baseline only reached %.1f dB", tdDB)
	}
	if fdDB > -15 {
		t.Errorf("partitioned FDAF reached %.1f dB, want < -15", fdDB)
	}
	// Pinned equivalence band: the FDAF may trail the sample-by-sample
	// filter (block-delayed adaptation) but must stay within 12 dB of it,
	// and must not be wildly better either (that would mean the harness is
	// not comparing like for like).
	if diff := fdDB - tdDB; diff > 12 || diff < -12 {
		t.Errorf("FDAF %.1f dB vs time-domain %.1f dB: outside the ±12 dB equivalence band", fdDB, tdDB)
	}
}

// TestBlockFDAFPartitionEdgeCases covers B not dividing M and the
// single-partition degenerate case.
func TestBlockFDAFPartitionEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		taps, b    int
		partitions int
	}{
		{"short last partition", 50, 8, 7}, // 6 full partitions + 2 taps
		{"single partition", 12, 16, 1},    // M < B
		{"exact multiple", 64, 16, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bl, err := NewBlock(BlockConfig{
				FilterTaps: tc.taps, BlockSize: tc.b, Mu: 0.4, SecondaryPath: testHse,
			})
			if err != nil {
				t.Fatal(err)
			}
			if bl.Partitions() != tc.partitions {
				t.Fatalf("partitions = %d, want %d", bl.Partitions(), tc.partitions)
			}
			db := runBlockANC(t, bl, audio.NewWhiteNoise(1, 8000, 0.5), 24, testHnr, testHne, testHse, 64000)
			if db > -10 {
				t.Errorf("cancellation = %.1f dB, want < -10", db)
			}
			if w := bl.Weights(); len(w) != tc.taps {
				t.Errorf("weights length %d, want %d", len(w), tc.taps)
			}
		})
	}
}

// TestBlockFDAFLimitNonCausal verifies the non-causal limiter: zeroed
// future taps stay zero through further adaptation, and restoring the
// window lets them adapt again.
func TestBlockFDAFLimitNonCausal(t *testing.T) {
	bl, err := NewBlock(BlockConfig{
		FilterTaps: 48, BlockSize: 8, Mu: 0.4, SecondaryPath: testHse,
		NonCausalTaps: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bl.NonCausalTaps() != 16 || bl.ActiveNonCausal() != 16 {
		t.Fatalf("non-causal accessors: N=%d active=%d", bl.NonCausalTaps(), bl.ActiveNonCausal())
	}
	runBlockANC(t, bl, audio.NewWhiteNoise(1, 8000, 0.5), 24, testHnr, testHne, testHse, 16000)

	bl.LimitNonCausal(4) // skip = 12: taps 0..11 forced to zero
	if bl.ActiveNonCausal() != 4 {
		t.Fatalf("active non-causal = %d, want 4", bl.ActiveNonCausal())
	}
	w := bl.Weights()
	for i := 0; i < 12; i++ {
		// Zeroing happens in the time domain but Weights() reconstructs
		// through a transform round trip, so "zero" means ~1 ulp here.
		if math.Abs(w[i]) > 1e-15 {
			t.Fatalf("tap %d = %g after LimitNonCausal(4), want 0", i, w[i])
		}
	}
	// Further adaptation must not resurrect the disabled taps. The skip
	// window (12) spans partition 0 (taps 0..7) entirely and partition 1
	// partially — both code paths.
	runBlockANC(t, bl, audio.NewWhiteNoise(2, 8000, 0.5), 24, testHnr, testHne, testHse, 16000)
	w = bl.Weights()
	var live float64
	for i, v := range w {
		if i < 12 {
			if math.Abs(v) > 1e-15 {
				t.Fatalf("tap %d = %g adapted while disabled", i, v)
			}
		} else {
			live += v * v
		}
	}
	if live == 0 {
		t.Error("live taps should keep adapting")
	}

	// Restoring the window re-enables adaptation of the leading taps.
	bl.LimitNonCausal(16)
	runBlockANC(t, bl, audio.NewWhiteNoise(3, 8000, 0.5), 24, testHnr, testHne, testHse, 16000)
	w = bl.Weights()
	var future float64
	for i := 0; i < 12; i++ {
		future += w[i] * w[i]
	}
	if future == 0 {
		t.Error("restored non-causal taps should adapt again")
	}
}

// TestBlockFDAFProcessAllocFree pins the steady-state block path at zero
// allocations per block.
func TestBlockFDAFProcessAllocFree(t *testing.T) {
	bl, err := NewBlock(BlockConfig{
		FilterTaps: 512, BlockSize: 64, Mu: 0.4, SecondaryPath: testHse,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 64)
	e := make([]float64, 64)
	out := make([]float64, 64)
	for i := range x {
		x[i] = 0.3
		e[i] = 0.01
	}
	// Warm-up primes the adapt path.
	for i := 0; i < 4; i++ {
		if err := bl.ProcessBlockInto(out, x, e); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if err := bl.ProcessBlockInto(out, x, e); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ProcessBlockInto allocated %.1f times per run, want 0", allocs)
	}
}

// TestBlockFDAFRejectsNonPow2Block pins the power-of-two block-size
// contract the partitioned transform relies on.
func TestBlockFDAFRejectsNonPow2Block(t *testing.T) {
	_, err := NewBlock(BlockConfig{
		FilterTaps: 64, BlockSize: 12, Mu: 0.4, SecondaryPath: testHse,
	})
	if err == nil {
		t.Error("non-power-of-two block size should be rejected")
	}
}
