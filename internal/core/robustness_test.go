package core

import (
	"math"
	"testing"
	"testing/quick"

	"mute/internal/audio"
)

// TestLANCSurvivesAdversarialInputs drives LANC with hostile sample values
// (spikes, clipping, zeros) and asserts the state never becomes NaN/Inf —
// the robust-clipping and regularized-normalization safeguards at work.
func TestLANCSurvivesAdversarialInputs(t *testing.T) {
	l := newTestLANC(t, 8)
	rng := audio.NewRNG(99)
	hostile := []float64{0, 1, -1, 100, -100, 1e6, -1e6, 1e-12}
	for i := 0; i < 20000; i++ {
		var x, e float64
		if rng.Float64() < 0.3 {
			x = hostile[rng.Intn(len(hostile))]
			e = hostile[rng.Intn(len(hostile))]
		} else {
			x = rng.Uniform()
			e = rng.Uniform() * 0.1
		}
		l.Adapt(e)
		l.Push(x)
		a := l.AntiNoise()
		if math.IsNaN(a) || math.IsInf(a, 0) {
			t.Fatalf("iteration %d: anti-noise became %g", i, a)
		}
	}
	for _, w := range l.Weights() {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatal("weights became non-finite")
		}
	}
}

// TestLANCZeroInputProducesZeroOutput: with no reference signal the filter
// must stay silent regardless of the error stream (no noise injection).
func TestLANCZeroInputProducesZeroOutput(t *testing.T) {
	l := newTestLANC(t, 8)
	rng := audio.NewRNG(7)
	for i := 0; i < 5000; i++ {
		l.Adapt(rng.Uniform())
		l.Push(0)
		if a := l.AntiNoise(); a != 0 {
			t.Fatalf("silent reference produced anti-noise %g", a)
		}
	}
}

// TestLANCScaleInvarianceProperty: NLMS normalization makes steady-state
// cancellation insensitive to the absolute signal level.
func TestLANCScaleInvarianceProperty(t *testing.T) {
	run := func(level float64) float64 {
		l := newTestLANC(t, 8)
		gen := audio.NewWhiteNoise(5, 8000, level)
		return runANC(t, l, gen, testHnr, testHne, testHse, 30000)
	}
	f := func(seed uint64) bool {
		level := 0.05 + float64(seed%90)/100 // 0.05 .. 0.94
		db := run(level)
		ref := run(0.5)
		return math.Abs(db-ref) < 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

// TestFixedLANCSurvivesAdversarialInputs mirrors the float robustness test
// for the Q15 pipeline: saturation instead of overflow.
func TestFixedLANCSurvivesAdversarialInputs(t *testing.T) {
	f, err := NewFixed(FixedConfig{
		NonCausalTaps: 8, CausalTaps: 16, MuShift: 2, SecondaryPath: testHse,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := audio.NewRNG(123)
	hostile := []float64{0, 1, -1, 100, -100, math.Inf(1), math.Inf(-1)}
	for i := 0; i < 20000; i++ {
		var x, e float64
		if rng.Float64() < 0.3 {
			x = hostile[rng.Intn(len(hostile))]
			e = hostile[rng.Intn(len(hostile))]
		} else {
			x = rng.Uniform()
			e = rng.Uniform() * 0.1
		}
		f.Adapt(e)
		f.Push(x)
		a := f.AntiNoise()
		if math.IsNaN(a) || a > 1 || a < -1 {
			t.Fatalf("iteration %d: fixed anti-noise %g outside Q15 range", i, a)
		}
	}
}
