package dsp

import (
	"math"
	"testing"
)

func TestCubicHermiteEndpointsAndLinears(t *testing.T) {
	// frac == 0 returns y0 exactly — the passthrough identity.
	if got := CubicHermite(3, 7, 11, 13, 0); got != 7 {
		t.Errorf("CubicHermite(..., 0) = %g, want exactly 7", got)
	}
	// Catmull-Rom reproduces linear data exactly at any frac.
	line := func(k float64) float64 { return 0.25 + 1.5*k }
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.9} {
		got := CubicHermite(line(-1), line(0), line(1), line(2), frac)
		want := line(frac)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("linear data at frac %g: got %g, want %g", frac, got, want)
		}
	}
}

func TestCubicInterpAt(t *testing.T) {
	x := []float64{2, 4, 8, 16, 32}
	// Integer positions are exact reads.
	for i, v := range x {
		if got := CubicInterpAt(x, float64(i)); got != v {
			t.Errorf("integer position %d: got %g, want exactly %g", i, got, v)
		}
	}
	// Interior fractional positions match CubicHermite on the same taps.
	want := CubicHermite(x[0], x[1], x[2], x[3], 0.25)
	if got := CubicInterpAt(x, 1.25); got != want {
		t.Errorf("interior frac: got %g, want %g", got, want)
	}
	// Edge positions clamp their outside taps rather than reading out of
	// bounds.
	want = CubicHermite(x[0], x[0], x[1], x[2], 0.5)
	if got := CubicInterpAt(x, 0.5); got != want {
		t.Errorf("leading-edge frac: got %g, want clamped %g", got, want)
	}
	want = CubicHermite(x[2], x[3], x[4], x[4], 0.5)
	if got := CubicInterpAt(x, 3.5); got != want {
		t.Errorf("trailing-edge frac: got %g, want clamped %g", got, want)
	}
}

// TestVariRateUnityPassthrough pins the property the 0 ppm drift
// bit-identity rests on: at rate 1 the resampler is an exact, zero-latency
// passthrough of both samples and concealment flags.
func TestVariRateUnityPassthrough(t *testing.T) {
	r := NewVariRateResampler()
	if r.Rate() != 1 {
		t.Fatalf("initial rate %g, want 1", r.Rate())
	}
	for i := 0; i < 500; i++ {
		x := math.Sin(float64(i) * 0.7)
		real := i%7 != 3
		r.Push(x, real)
		if !r.Ready() {
			t.Fatalf("not ready after push %d at unity rate", i)
		}
		v, m, ok := r.Pop()
		if !ok || v != x || m != real {
			t.Fatalf("pop %d = (%g, %v, %v), want exactly (%g, %v, true)", i, v, m, ok, x, real)
		}
	}
	if p := r.Position(); p != 500 {
		t.Errorf("position %g after 500 unity pops, want exactly 500", p)
	}
}

// TestVariRateToneAccuracy resamples a low-frequency tone at 1±100 ppm and
// checks the output matches the analytically warped tone: cubic
// interpolation error at 250 Hz on an 8 kHz grid is far below -60 dB.
func TestVariRateToneAccuracy(t *testing.T) {
	for _, ppm := range []float64{100, -100} {
		rate := 1 + ppm*1e-6
		r := NewVariRateResampler()
		r.SetRate(rate)
		w := 2 * math.Pi * 250 / 8000
		var errPow, sigPow float64
		in := 0
		for i := 0; i < 4000; i++ {
			for !r.Ready() {
				r.Push(math.Sin(w*float64(in)), true)
				in++
			}
			v, _, ok := r.Pop()
			if !ok {
				t.Fatalf("pop %d failed", i)
			}
			want := math.Sin(w * float64(i) * rate)
			errPow += (v - want) * (v - want)
			sigPow += want * want
		}
		if db := DB((errPow + EpsilonPower) / (sigPow + EpsilonPower)); db > -60 {
			t.Errorf("ppm %+g: resampling error %.1f dB, want < -60 dB", ppm, db)
		}
	}
}

// TestVariRateRateChangeContinuity verifies SetRate mid-stream moves the
// read position continuously: no sample is skipped or repeated, the
// position just advances at the new rate from the next pop on.
func TestVariRateRateChangeContinuity(t *testing.T) {
	r := NewVariRateResampler()
	in := 0
	step := func(n int) {
		for i := 0; i < n; i++ {
			for !r.Ready() {
				r.Push(float64(in), true)
				in++
			}
			if _, _, ok := r.Pop(); !ok {
				t.Fatal("pop failed")
			}
		}
	}
	r.SetRate(1 + 200e-6)
	step(100)
	want := 100 * (1 + 200e-6)
	if p := r.Position(); math.Abs(p-want) > 1e-9 {
		t.Fatalf("position %g after 100 fast pops, want %g", p, want)
	}
	r.SetRate(1 - 200e-6)
	step(100)
	want += 100 * (1 - 200e-6)
	if p := r.Position(); math.Abs(p-want) > 1e-9 {
		t.Errorf("position %g after rate flip, want %g (continuity broken)", p, want)
	}
}

// TestVariRateMaskSpread checks a concealed input sample taints exactly
// the fractional outputs whose cubic kernel reads it, and no others.
func TestVariRateMaskSpread(t *testing.T) {
	r := NewVariRateResampler()
	r.SetRate(1 + 500e-6) // forces fractional positions immediately
	concealedAt := 20
	in := 0
	var tainted []int
	for i := 0; i < 60; i++ {
		for !r.Ready() {
			r.Push(1, in != concealedAt)
			in++
		}
		_, m, ok := r.Pop()
		if !ok {
			t.Fatal("pop failed")
		}
		if !m {
			tainted = append(tainted, i)
		}
	}
	// The kernel spans [i-1, i+2] around the read position, so the
	// concealed input reaches at most 4 consecutive outputs, and at least
	// one (the output reading it as its nearest tap).
	if len(tainted) == 0 || len(tainted) > 4 {
		t.Fatalf("concealed input tainted %d outputs (%v), want 1..4", len(tainted), tainted)
	}
	for i := 1; i < len(tainted); i++ {
		if tainted[i] != tainted[i-1]+1 {
			t.Errorf("tainted outputs %v not consecutive", tainted)
		}
	}
}

func TestVariRatePendingAndCompact(t *testing.T) {
	r := NewVariRateResampler()
	r.SetRate(1 + VariRateMaxPPM*1e-6)
	for i := 0; i < 10; i++ {
		r.Push(float64(i), true)
	}
	if p := r.Pending(); p != 10 {
		t.Errorf("pending %d after 10 pushes, want 10", p)
	}
	// Long streaming must not grow the buffer without bound: compact keeps
	// it O(1) even over 100k samples.
	in := 10
	for i := 0; i < 100000; i++ {
		for !r.Ready() {
			r.Push(float64(in), true)
			in++
		}
		r.Pop()
	}
	if n := len(r.buf); n > 256 {
		t.Errorf("internal buffer holds %d samples after 100k pops, compact is not running", n)
	}
	if p := r.Pending(); p < 0 || p > 8 {
		t.Errorf("pending %d in steady state, want a small non-negative count", p)
	}
}

func TestVariRateClampResetAndNotReady(t *testing.T) {
	r := NewVariRateResampler()
	r.SetRate(2)
	if max := 1 + VariRateMaxPPM*1e-6; r.Rate() != max {
		t.Errorf("rate 2 clamped to %g, want %g", r.Rate(), max)
	}
	r.SetRate(0.5)
	if min := 1 - VariRateMaxPPM*1e-6; r.Rate() != min {
		t.Errorf("rate 0.5 clamped to %g, want %g", r.Rate(), min)
	}
	if _, _, ok := r.Pop(); ok {
		t.Error("Pop on an empty resampler reported ok")
	}
	r.Push(1, true)
	r.Pop()
	r.Reset()
	if r.Rate() != 1 || r.Position() != 0 || r.Pending() != 0 {
		t.Errorf("after Reset: %v, want unity rate at position 0", r)
	}
}
