package dsp

import (
	"fmt"
)

// PSD holds a one-sided power spectral density estimate.
type PSD struct {
	// Power[k] is the mean power in bin k (linear, not dB).
	Power []float64
	// Freqs[k] is the center frequency of bin k in Hz.
	Freqs []float64
	// BinWidth is the frequency resolution in Hz.
	BinWidth float64
}

// WelchPSD estimates the one-sided power spectral density of x using
// Welch's method: segments of segLen samples (rounded up to a power of
// two), 50% overlap, Hann window. Returns an error for empty input or a
// non-positive segment length.
func WelchPSD(x []float64, sampleRate float64, segLen int) (*PSD, error) {
	if len(x) == 0 {
		return nil, ErrEmptyInput
	}
	if segLen <= 0 {
		return nil, fmt.Errorf("dsp: segment length must be positive, got %d", segLen)
	}
	n := NextPow2(segLen)
	if n > len(x) {
		n = NextPow2(len(x))
		if n > len(x) {
			n >>= 1
		}
		if n < 2 {
			n = 2
		}
	}
	w := Hann.Coefficients(n)
	var winPower float64
	for _, v := range w {
		winPower += v * v
	}
	half := n/2 + 1
	acc := make([]float64, half)
	hop := n / 2
	segments := 0
	// Real input: the packed RFFT plan does each segment in half the
	// butterflies of the full complex transform, with pooled scratch.
	plan := PlanRFFT(n)
	seg := getFloat(n)
	X := getComplex(half)
	defer putFloat(seg)
	defer putComplex(X)
	for start := 0; start+n <= len(x); start += hop {
		for i := 0; i < n; i++ {
			seg[i] = x[start+i] * w[i]
		}
		plan.Forward(X, seg)
		for k := 0; k < half; k++ {
			// |X|² straight from the components: the overflow-guarded
			// hypot of cmplx.Abs costs a sqrt per bin for protection a
			// power accumulation does not need.
			re, im := real(X[k]), imag(X[k])
			acc[k] += re*re + im*im
		}
		segments++
	}
	if segments == 0 {
		// Input shorter than one segment: single zero-padded segment.
		for i := 0; i < len(x); i++ {
			seg[i] = x[i] * w[i]
		}
		for i := len(x); i < n; i++ {
			seg[i] = 0
		}
		plan.Forward(X, seg)
		for k := 0; k < half; k++ {
			re, im := real(X[k]), imag(X[k])
			acc[k] += re*re + im*im
		}
		segments = 1
	}
	psd := &PSD{
		Power:    make([]float64, half),
		Freqs:    make([]float64, half),
		BinWidth: sampleRate / float64(n),
	}
	// Normalize so that TotalPower approximates the mean squared signal
	// value: divide by segments (averaging), the window's energy, and N
	// (DFT Parseval factor).
	norm := 1 / (float64(segments) * winPower * float64(n))
	for k := 0; k < half; k++ {
		psd.Power[k] = acc[k] * norm
		psd.Freqs[k] = float64(k) * psd.BinWidth
		// One-sided: double the interior bins.
		if k != 0 && k != half-1 {
			psd.Power[k] *= 2
		}
	}
	return psd, nil
}

// BandPower integrates the PSD over [loHz, hiHz] and returns the total
// power in that band.
func (p *PSD) BandPower(loHz, hiHz float64) float64 {
	var sum float64
	for k, f := range p.Freqs {
		if f >= loHz && f < hiHz {
			sum += p.Power[k]
		}
	}
	return sum
}

// TotalPower integrates the whole one-sided PSD.
func (p *PSD) TotalPower() float64 {
	var sum float64
	for _, v := range p.Power {
		sum += v
	}
	return sum
}

// BandEnergies splits the PSD into nBands equal-width bands spanning
// [0, maxHz] and returns the power in each. Used for sound-profile
// signatures.
func (p *PSD) BandEnergies(nBands int, maxHz float64) []float64 {
	out := make([]float64, nBands)
	if nBands == 0 {
		return out
	}
	width := maxHz / float64(nBands)
	for k, f := range p.Freqs {
		if f >= maxHz {
			break
		}
		b := int(f / width)
		if b >= nBands {
			b = nBands - 1
		}
		out[b] += p.Power[k]
	}
	return out
}
