package dsp

import (
	"fmt"
	"math"
)

// Resample converts x from srcRate to dstRate using windowed-sinc
// interpolation. It is used when feeding 48 kHz-style generator output into
// the 8 kHz DSP pipeline the paper's TMS320C6713 board imposes.
func Resample(x []float64, srcRate, dstRate float64) ([]float64, error) {
	if srcRate <= 0 || dstRate <= 0 {
		return nil, fmt.Errorf("dsp: sample rates must be positive (src=%g dst=%g)", srcRate, dstRate)
	}
	if len(x) == 0 {
		return nil, nil
	}
	if srcRate == dstRate {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	ratio := dstRate / srcRate
	outLen := int(math.Round(float64(len(x)) * ratio))
	if outLen == 0 {
		outLen = 1
	}
	// Anti-alias when downsampling: cutoff at the lower Nyquist.
	src := x
	if dstRate < srcRate {
		lp, err := LowPassFIR(0.45*dstRate, srcRate, 63, Blackman)
		if err != nil {
			return nil, err
		}
		// Compensate the linear-phase group delay of the filter by
		// convolving gd extra zero-padded samples and advancing by gd, so
		// the tail carries the filter's natural decay instead of the
		// zero-fill a plain shift would leave.
		gd := 31
		padded := make([]float64, len(x)+gd)
		copy(padded, x)
		src = ConvolveSame(padded, lp)[gd:]
	}
	const halfWidth = 16
	out := make([]float64, outLen)
	for i := range out {
		t := float64(i) / ratio // position in source samples
		center := int(t)
		var acc, wsum float64
		for k := center - halfWidth; k <= center+halfWidth+1; k++ {
			if k < 0 || k >= len(src) {
				continue
			}
			d := t - float64(k)
			// Hann-windowed sinc kernel.
			u := d / float64(halfWidth+1)
			if u > 1 {
				u = 1
			} else if u < -1 {
				u = -1
			}
			wk := 0.5 + 0.5*math.Cos(math.Pi*u)
			v := Sinc(d) * wk
			acc += src[k] * v
			wsum += v
		}
		if wsum != 0 {
			out[i] = acc
		}
	}
	return out, nil
}
