package dsp

import (
	"fmt"
	"math"
)

// Biquad is a direct-form-II-transposed second-order IIR section. It models
// transducer resonances (the cheap speaker/microphone response of Figure 13)
// and provides cheap high-pass/low-pass shaping.
type Biquad struct {
	b0, b1, b2 float64
	a1, a2     float64
	z1, z2     float64
}

// NewLowPassBiquad designs a Butterworth-style low-pass biquad at fcHz with
// quality factor q (q = 0.7071 for Butterworth).
func NewLowPassBiquad(fcHz, sampleRate, q float64) (*Biquad, error) {
	if err := checkBiquad(fcHz, sampleRate, q); err != nil {
		return nil, err
	}
	w0 := 2 * math.Pi * fcHz / sampleRate
	alpha := math.Sin(w0) / (2 * q)
	cw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 - cw) / 2 / a0,
		b1: (1 - cw) / a0,
		b2: (1 - cw) / 2 / a0,
		a1: -2 * cw / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// NewHighPassBiquad designs a Butterworth-style high-pass biquad at fcHz.
func NewHighPassBiquad(fcHz, sampleRate, q float64) (*Biquad, error) {
	if err := checkBiquad(fcHz, sampleRate, q); err != nil {
		return nil, err
	}
	w0 := 2 * math.Pi * fcHz / sampleRate
	alpha := math.Sin(w0) / (2 * q)
	cw := math.Cos(w0)
	a0 := 1 + alpha
	return &Biquad{
		b0: (1 + cw) / 2 / a0,
		b1: -(1 + cw) / a0,
		b2: (1 + cw) / 2 / a0,
		a1: -2 * cw / a0,
		a2: (1 - alpha) / a0,
	}, nil
}

// NewPeakBiquad designs a peaking-EQ biquad with the given gain in dB,
// used to sculpt resonant bumps into the transducer model.
func NewPeakBiquad(fcHz, sampleRate, q, gainDB float64) (*Biquad, error) {
	if err := checkBiquad(fcHz, sampleRate, q); err != nil {
		return nil, err
	}
	a := math.Pow(10, gainDB/40)
	w0 := 2 * math.Pi * fcHz / sampleRate
	alpha := math.Sin(w0) / (2 * q)
	cw := math.Cos(w0)
	a0 := 1 + alpha/a
	return &Biquad{
		b0: (1 + alpha*a) / a0,
		b1: -2 * cw / a0,
		b2: (1 - alpha*a) / a0,
		a1: -2 * cw / a0,
		a2: (1 - alpha/a) / a0,
	}, nil
}

// NewHighShelfBiquad designs an RBJ high-shelf biquad that applies gainDB
// above fcHz (negative gain attenuates). Shelf filters are minimum-phase,
// which matters when modelling physical attenuators like passive ear cups.
func NewHighShelfBiquad(fcHz, sampleRate, q, gainDB float64) (*Biquad, error) {
	if err := checkBiquad(fcHz, sampleRate, q); err != nil {
		return nil, err
	}
	a := math.Pow(10, gainDB/40)
	w0 := 2 * math.Pi * fcHz / sampleRate
	alpha := math.Sin(w0) / (2 * q)
	cw := math.Cos(w0)
	sq := 2 * math.Sqrt(a) * alpha
	a0 := (a + 1) - (a-1)*cw + sq
	return &Biquad{
		b0: a * ((a + 1) + (a-1)*cw + sq) / a0,
		b1: -2 * a * ((a - 1) + (a+1)*cw) / a0,
		b2: a * ((a + 1) + (a-1)*cw - sq) / a0,
		a1: 2 * ((a - 1) - (a+1)*cw) / a0,
		a2: ((a + 1) - (a-1)*cw - sq) / a0,
	}, nil
}

// NewLowShelfBiquad designs an RBJ low-shelf biquad that applies gainDB
// below fcHz (negative gain attenuates).
func NewLowShelfBiquad(fcHz, sampleRate, q, gainDB float64) (*Biquad, error) {
	if err := checkBiquad(fcHz, sampleRate, q); err != nil {
		return nil, err
	}
	a := math.Pow(10, gainDB/40)
	w0 := 2 * math.Pi * fcHz / sampleRate
	alpha := math.Sin(w0) / (2 * q)
	cw := math.Cos(w0)
	sq := 2 * math.Sqrt(a) * alpha
	a0 := (a + 1) + (a-1)*cw + sq
	return &Biquad{
		b0: a * ((a + 1) - (a-1)*cw + sq) / a0,
		b1: 2 * a * ((a - 1) - (a+1)*cw) / a0,
		b2: a * ((a + 1) - (a-1)*cw - sq) / a0,
		a1: -2 * ((a - 1) + (a+1)*cw) / a0,
		a2: ((a + 1) + (a-1)*cw - sq) / a0,
	}, nil
}

func checkBiquad(fcHz, sampleRate, q float64) error {
	if sampleRate <= 0 {
		return fmt.Errorf("dsp: sample rate must be positive, got %g", sampleRate)
	}
	if fcHz <= 0 || fcHz >= sampleRate/2 {
		return fmt.Errorf("dsp: biquad corner %g Hz outside (0, %g)", fcHz, sampleRate/2)
	}
	if q <= 0 {
		return fmt.Errorf("dsp: q must be positive, got %g", q)
	}
	return nil
}

// Process filters one sample.
func (b *Biquad) Process(x float64) float64 {
	y := b.b0*x + b.z1
	b.z1 = b.b1*x - b.a1*y + b.z2
	b.z2 = b.b2*x - b.a2*y
	return y
}

// ProcessBlock filters a block, returning a new slice.
func (b *Biquad) ProcessBlock(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = b.Process(v)
	}
	return out
}

// Reset clears the filter state.
func (b *Biquad) Reset() { b.z1, b.z2 = 0, 0 }

// Response returns the magnitude response of the biquad at fHz.
func (b *Biquad) Response(fHz, sampleRate float64) float64 {
	w := 2 * math.Pi * fHz / sampleRate
	cos1, sin1 := math.Cos(w), math.Sin(w)
	cos2, sin2 := math.Cos(2*w), math.Sin(2*w)
	numRe := b.b0 + b.b1*cos1 + b.b2*cos2
	numIm := -(b.b1*sin1 + b.b2*sin2)
	denRe := 1 + b.a1*cos1 + b.a2*cos2
	denIm := -(b.a1*sin1 + b.a2*sin2)
	num := math.Hypot(numRe, numIm)
	den := math.Hypot(denRe, denIm)
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}

// BiquadChain runs samples through a cascade of biquad sections.
type BiquadChain struct {
	sections []*Biquad
}

// NewBiquadChain builds a cascade from the given sections.
func NewBiquadChain(sections ...*Biquad) *BiquadChain {
	return &BiquadChain{sections: sections}
}

// Process filters one sample through every section in order.
func (c *BiquadChain) Process(x float64) float64 {
	for _, s := range c.sections {
		x = s.Process(x)
	}
	return x
}

// ProcessBlock filters a block through the cascade.
func (c *BiquadChain) ProcessBlock(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = c.Process(v)
	}
	return out
}

// Reset clears every section's state.
func (c *BiquadChain) Reset() {
	for _, s := range c.sections {
		s.Reset()
	}
}

// Response returns the cascade magnitude response at fHz.
func (c *BiquadChain) Response(fHz, sampleRate float64) float64 {
	r := 1.0
	for _, s := range c.sections {
		r *= s.Response(fHz, sampleRate)
	}
	return r
}
