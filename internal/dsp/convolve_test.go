package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func floatsClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func randFloats(n int, seed int64) []float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()*2 - 1
	}
	return out
}

func TestConvolveKnownValues(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{0, 1, 0.5})
	want := []float64{0, 1, 2.5, 4, 1.5}
	if !floatsClose(got, want, 1e-12) {
		t.Errorf("Convolve = %v, want %v", got, want)
	}
}

func TestConvolveIdentity(t *testing.T) {
	x := randFloats(50, 3)
	got := Convolve(x, []float64{1})
	if !floatsClose(got, x, 1e-12) {
		t.Error("convolution with unit impulse should be identity")
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []float64{1}) != nil {
		t.Error("Convolve(nil, h) should be nil")
	}
	if Convolve([]float64{1}, nil) != nil {
		t.Error("Convolve(x, nil) should be nil")
	}
}

func TestConvolveFFTMatchesDirect(t *testing.T) {
	// Force the FFT path with a long kernel and confirm it agrees with the
	// direct path.
	x := randFloats(300, 11)
	h := randFloats(100, 13)
	direct := convolveDirect(x, h)
	fft := convolveFFT(x, h)
	if !floatsClose(direct, fft, 1e-9) {
		t.Error("FFT convolution differs from direct convolution")
	}
}

func TestConvolveCommutativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randFloats(40, seed)
		h := randFloats(25, seed+1)
		return floatsClose(Convolve(x, h), Convolve(h, x), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConvolveLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := randFloats(30, seed)
		y := randFloats(30, seed+1)
		h := randFloats(10, seed+2)
		sum := Add(x, y)
		lhs := Convolve(sum, h)
		rhs := Add(Convolve(x, h), Convolve(y, h))
		return floatsClose(lhs, rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStreamConvolverMatchesBatch(t *testing.T) {
	x := randFloats(200, 21)
	h := randFloats(17, 22)
	want := ConvolveSame(x, h)
	sc := NewStreamConvolver(h)
	got := sc.ProcessBlock(x)
	if !floatsClose(got, want, 1e-10) {
		t.Error("streaming convolver differs from batch convolution")
	}
}

func TestStreamConvolverReset(t *testing.T) {
	h := []float64{0.5, 0.25}
	sc := NewStreamConvolver(h)
	sc.Process(1)
	sc.Reset()
	if got := sc.Process(0); got != 0 {
		t.Errorf("after Reset, Process(0) = %g, want 0", got)
	}
}

func TestStreamConvolverEmptyKernel(t *testing.T) {
	sc := NewStreamConvolver(nil)
	if got := sc.Process(1); got != 0 {
		t.Errorf("zero channel should output 0, got %g", got)
	}
}

func TestCrossCorrelatePeakAtLag(t *testing.T) {
	// b is a delayed copy of a: the correlation r[lag]=sum a[t]*b[t+lag]
	// peaks where b aligns with a.
	a := randFloats(128, 31)
	shift := 10
	b := make([]float64, 128)
	copy(b[shift:], a[:128-shift])
	r := CrossCorrelate(a, b)
	best := 0
	for i := range r {
		if r[i] > r[best] {
			best = i
		}
	}
	// b[t+lag] == a[t] when lag == -shift; index = lag + len(b)-1.
	wantIdx := -shift + len(b) - 1
	if best != wantIdx {
		t.Errorf("correlation peak at index %d, want %d", best, wantIdx)
	}
}

func TestConvolveAssociativityWithDelta(t *testing.T) {
	// (x * h) * delta == x * h.
	x := randFloats(30, 41)
	h := randFloats(8, 42)
	delta := []float64{1}
	lhs := Convolve(Convolve(x, h), delta)
	rhs := Convolve(x, h)
	if !floatsClose(lhs, rhs, 1e-12) {
		t.Error("convolution with delta is not identity")
	}
}

func BenchmarkConvolveDirect64(b *testing.B) {
	x := randFloats(4096, 1)
	h := randFloats(64, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Convolve(x, h)
	}
}

func BenchmarkConvolveFFT1024(b *testing.B) {
	x := randFloats(4096, 1)
	h := randFloats(1024, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Convolve(x, h)
	}
}

func BenchmarkStreamConvolver256(b *testing.B) {
	h := randFloats(256, 2)
	sc := NewStreamConvolver(h)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Process(1.0)
	}
}
