package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDelayLineBasic(t *testing.T) {
	d, err := NewDelayLine(3)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{1, 2, 3, 4, 5, 6}
	want := []float64{0, 0, 0, 1, 2, 3}
	for i, x := range in {
		if got := d.Process(x); got != want[i] {
			t.Errorf("sample %d: got %g, want %g", i, got, want[i])
		}
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
}

func TestDelayLineZero(t *testing.T) {
	d, err := NewDelayLine(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Process(7); got != 7 {
		t.Errorf("zero delay should pass through, got %g", got)
	}
}

func TestDelayLineNegativeErrors(t *testing.T) {
	if _, err := NewDelayLine(-1); err == nil {
		t.Error("negative delay should error")
	}
}

func TestDelayLineReset(t *testing.T) {
	d := MustDelayLine(2)
	d.Process(5)
	d.Process(6)
	d.Reset()
	if got := d.Process(0); got != 0 {
		t.Errorf("after Reset got %g, want 0", got)
	}
}

func TestMustDelayLinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDelayLine(-1) should panic")
		}
	}()
	MustDelayLine(-1)
}

func TestFractionalDelayInteger(t *testing.T) {
	// An integer delay through the fractional designer should still delay
	// a smooth signal by that many samples.
	taps, err := FractionalDelayFIR(5)
	if err != nil {
		t.Fatal(err)
	}
	n := 200
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 0.02 * float64(i))
	}
	y := ConvolveSame(x, taps)
	// Compare y[t] with x[t-5] away from edges.
	for i := 40; i < n-10; i++ {
		if math.Abs(y[i]-x[i-5]) > 1e-3 {
			t.Fatalf("sample %d: y=%g, x[t-5]=%g", i, y[i], x[i-5])
		}
	}
}

func TestFractionalDelayHalfSample(t *testing.T) {
	// A 10.5-sample delay of a low-frequency sinusoid equals the
	// analytically shifted sinusoid.
	d := 10.5
	taps, err := FractionalDelayFIR(d)
	if err != nil {
		t.Fatal(err)
	}
	n := 300
	f := 0.01 // cycles/sample, far below Nyquist
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f * float64(i))
	}
	y := ConvolveSame(x, taps)
	for i := 60; i < n-20; i++ {
		want := math.Sin(2 * math.Pi * f * (float64(i) - d))
		if math.Abs(y[i]-want) > 5e-3 {
			t.Fatalf("sample %d: y=%g, want %g", i, y[i], want)
		}
	}
}

func TestFractionalDelayNegativeErrors(t *testing.T) {
	if _, err := FractionalDelayFIR(-0.5); err == nil {
		t.Error("negative delay should error")
	}
}

func TestFractionalDelaySubSample(t *testing.T) {
	taps, err := FractionalDelayFIR(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(taps) != 4 {
		t.Fatalf("sub-sample delay should use the 4-tap kernel, got %d taps", len(taps))
	}
	var sum float64
	for _, v := range taps {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Lagrange taps should sum to 1, got %g", sum)
	}
}

func TestLookaheadBufferSemantics(t *testing.T) {
	lb, err := NewLookaheadBuffer(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Push 1..6. After k pushes, the newest sample sits at offset +3.
	for i := 1; i <= 6; i++ {
		lb.Push(float64(i))
	}
	// Newest (6) is at +3; current should be 6-3 = 3.
	if got := lb.At(0); got != 3 {
		t.Errorf("At(0) = %g, want 3", got)
	}
	if got := lb.At(3); got != 6 {
		t.Errorf("At(3) = %g, want 6", got)
	}
	if got := lb.At(-2); got != 1 {
		t.Errorf("At(-2) = %g, want 1", got)
	}
	// Out-of-window offsets are zero.
	if lb.At(4) != 0 || lb.At(-3) != 0 {
		t.Error("out-of-window offsets should be 0")
	}
	if !lb.Primed() {
		t.Error("buffer should be primed after 6 pushes with lookahead 3")
	}
}

func TestLookaheadBufferPriming(t *testing.T) {
	lb, _ := NewLookaheadBuffer(0, 5)
	if lb.Primed() {
		t.Error("fresh buffer should not be primed")
	}
	for i := 0; i < 5; i++ {
		lb.Push(1)
	}
	if lb.Primed() {
		t.Error("buffer should not be primed until lookahead+1 pushes")
	}
	lb.Push(1)
	if !lb.Primed() {
		t.Error("buffer should be primed after lookahead+1 pushes")
	}
}

func TestLookaheadBufferReset(t *testing.T) {
	lb, _ := NewLookaheadBuffer(1, 1)
	lb.Push(9)
	lb.Push(9)
	lb.Reset()
	if lb.Primed() {
		t.Error("Reset should clear priming")
	}
	if lb.At(0) != 0 {
		t.Error("Reset should clear contents")
	}
}

func TestLookaheadBufferWindow(t *testing.T) {
	lb, _ := NewLookaheadBuffer(2, 2)
	for i := 1; i <= 5; i++ {
		lb.Push(float64(i))
	}
	dst := make([]float64, 5)
	lb.Window(dst)
	want := []float64{1, 2, 3, 4, 5}
	if !floatsClose(dst, want, 0) {
		t.Errorf("Window = %v, want %v", dst, want)
	}
}

func TestLookaheadBufferErrors(t *testing.T) {
	if _, err := NewLookaheadBuffer(-1, 0); err == nil {
		t.Error("negative history should error")
	}
	if _, err := NewLookaheadBuffer(0, -1); err == nil {
		t.Error("negative lookahead should error")
	}
}

func TestLookaheadBufferDelayEquivalenceProperty(t *testing.T) {
	// Property: At(k) after n pushes equals the (n-1-(L-k))-th pushed value,
	// i.e. the buffer is exactly a delay of L-k samples from the newest.
	f := func(seed int64) bool {
		vals := randFloats(50, seed)
		lb, _ := NewLookaheadBuffer(4, 6)
		for _, v := range vals {
			lb.Push(v)
		}
		for k := -4; k <= 6; k++ {
			idx := len(vals) - 1 - (6 - k)
			if idx < 0 {
				continue
			}
			if lb.At(k) != vals[idx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
