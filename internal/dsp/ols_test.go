package dsp

import (
	"math"
	"testing"
)

func lcg(seed uint64) func() float64 {
	s := seed
	return func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(int64(s>>11))/float64(1<<52) - 0.5
	}
}

// TestProcessBlockOverlapSaveMatchesPerSample checks that the partitioned
// overlap-save block path produces the same output as the per-sample loop,
// for kernel lengths around the OLS threshold and block lengths that are
// not multiples of the FFT step.
func TestProcessBlockOverlapSaveMatchesPerSample(t *testing.T) {
	rnd := lcg(1)
	for _, m := range []int{olsMinKernel, 250, 1000, 1411} {
		h := make([]float64, m)
		for i := range h {
			h[i] = rnd()
		}
		for _, n := range []int{2 * m, 2*m + 17, 5*m + 3} {
			x := make([]float64, n)
			for i := range x {
				x[i] = rnd()
			}
			ref := NewStreamConvolver(h)
			want := make([]float64, n)
			for i, v := range x {
				want[i] = ref.Process(v)
			}
			ols := NewStreamConvolver(h)
			got := ols.ProcessBlock(x)
			var maxErr float64
			for i := range want {
				if d := math.Abs(got[i] - want[i]); d > maxErr {
					maxErr = d
				}
			}
			if maxErr > 1e-9 {
				t.Errorf("m=%d n=%d: OLS output deviates by %.3g from per-sample", m, n, maxErr)
			}
		}
	}
}

// TestProcessBlockPreservesStreamingHistory interleaves block and
// per-sample calls on one convolver and compares against an all-per-sample
// reference: the OLS path must leave the ring history exactly as if the
// block had been processed sample by sample.
func TestProcessBlockPreservesStreamingHistory(t *testing.T) {
	rnd := lcg(9)
	const m = 300
	h := make([]float64, m)
	for i := range h {
		h[i] = rnd()
	}
	const n = 4000
	x := make([]float64, n)
	for i := range x {
		x[i] = rnd()
	}

	ref := NewStreamConvolver(h)
	want := make([]float64, n)
	for i, v := range x {
		want[i] = ref.Process(v)
	}

	mixed := NewStreamConvolver(h)
	var got []float64
	i := 0
	// Alternate: 700-sample block (OLS), 100 per-sample calls, 650 block,
	// a short 50 block (falls back to per-sample), remainder block.
	for _, chunk := range []int{700, 100, 650, 50, n} {
		if chunk > n-i {
			chunk = n - i
		}
		if chunk == 0 {
			break
		}
		if chunk == 100 {
			for j := 0; j < chunk; j++ {
				got = append(got, mixed.Process(x[i+j]))
			}
		} else {
			got = append(got, mixed.ProcessBlock(x[i:i+chunk])...)
		}
		i += chunk
	}
	if len(got) != n {
		t.Fatalf("output length %d != %d", len(got), n)
	}
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > 1e-9 {
			t.Fatalf("sample %d: interleaved output deviates by %.3g", i, d)
		}
	}
}

// TestProcessBlockShortKernelIsExact confirms the fallback path (kernel
// below the OLS threshold) is bit-identical to per-sample processing.
func TestProcessBlockShortKernelIsExact(t *testing.T) {
	rnd := lcg(4)
	h := make([]float64, 32)
	for i := range h {
		h[i] = rnd()
	}
	x := make([]float64, 500)
	for i := range x {
		x[i] = rnd()
	}
	ref := NewStreamConvolver(h)
	blk := NewStreamConvolver(h)
	got := blk.ProcessBlock(x)
	for i, v := range x {
		if want := ref.Process(v); got[i] != want {
			t.Fatalf("sample %d: %g != %g", i, got[i], want)
		}
	}
}
