package dsp

import (
	"math"
	"testing"
)

func TestLowPassFIRResponse(t *testing.T) {
	fs := 8000.0
	h, err := LowPassFIR(1000, fs, 101, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	if g := FrequencyResponse(h, 0, fs); math.Abs(g-1) > 1e-6 {
		t.Errorf("DC gain = %g, want 1", g)
	}
	if g := FrequencyResponse(h, 200, fs); math.Abs(g-1) > 0.05 {
		t.Errorf("passband gain at 200 Hz = %g, want ~1", g)
	}
	if g := FrequencyResponse(h, 3000, fs); g > 0.01 {
		t.Errorf("stopband gain at 3 kHz = %g, want < 0.01", g)
	}
}

func TestHighPassFIRResponse(t *testing.T) {
	fs := 8000.0
	h, err := HighPassFIR(1000, fs, 101, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	if g := FrequencyResponse(h, 0, fs); g > 1e-6 {
		t.Errorf("DC gain = %g, want ~0", g)
	}
	if g := FrequencyResponse(h, 3000, fs); math.Abs(g-1) > 0.05 {
		t.Errorf("passband gain at 3 kHz = %g, want ~1", g)
	}
	if g := FrequencyResponse(h, 200, fs); g > 0.02 {
		t.Errorf("stopband gain at 200 Hz = %g, want < 0.02", g)
	}
}

func TestBandPassFIRResponse(t *testing.T) {
	fs := 8000.0
	h, err := BandPassFIR(500, 2000, fs, 121, Blackman)
	if err != nil {
		t.Fatal(err)
	}
	if g := FrequencyResponse(h, 1000, fs); math.Abs(g-1) > 0.05 {
		t.Errorf("passband gain at 1 kHz = %g, want ~1", g)
	}
	for _, f := range []float64{50, 3500} {
		if g := FrequencyResponse(h, f, fs); g > 0.02 {
			t.Errorf("stopband gain at %g Hz = %g, want < 0.02", f, g)
		}
	}
}

func TestFIRDesignErrors(t *testing.T) {
	if _, err := LowPassFIR(5000, 8000, 101, Hann); err == nil {
		t.Error("cutoff above Nyquist should error")
	}
	if _, err := LowPassFIR(-10, 8000, 101, Hann); err == nil {
		t.Error("negative cutoff should error")
	}
	if _, err := LowPassFIR(1000, 0, 101, Hann); err == nil {
		t.Error("zero sample rate should error")
	}
	if _, err := LowPassFIR(1000, 8000, 1, Hann); err == nil {
		t.Error("too few taps should error")
	}
	if _, err := HighPassFIR(1000, 8000, 100, Hann); err == nil {
		t.Error("even taps for high-pass should error")
	}
	if _, err := BandPassFIR(2000, 500, 8000, 101, Hann); err == nil {
		t.Error("inverted band edges should error")
	}
	if _, err := BandPassFIR(500, 2000, 8000, 100, Hann); err == nil {
		t.Error("even taps for band-pass should error")
	}
}

func TestFIRFilterStreamMatchesConvolution(t *testing.T) {
	fs := 8000.0
	h, err := LowPassFIR(1000, fs, 31, Hann)
	if err != nil {
		t.Fatal(err)
	}
	x := randFloats(100, 5)
	want := ConvolveSame(x, h)
	f := NewFIRFilter(h)
	got := f.ProcessBlock(x)
	if !floatsClose(got, want, 1e-12) {
		t.Error("FIRFilter differs from convolution")
	}
	f.Reset()
	got2 := f.ProcessBlock(x)
	if !floatsClose(got2, want, 1e-12) {
		t.Error("FIRFilter after Reset differs from convolution")
	}
}

func TestSinc(t *testing.T) {
	if Sinc(0) != 1 {
		t.Error("Sinc(0) should be 1")
	}
	for _, k := range []float64{1, 2, 3, -1, -5} {
		if v := Sinc(k); math.Abs(v) > 1e-15 {
			t.Errorf("Sinc(%g) = %g, want 0", k, v)
		}
	}
}

func TestWindowShapes(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman} {
		c := w.Coefficients(65)
		if len(c) != 65 {
			t.Fatalf("%v: got %d coefficients", w, len(c))
		}
		// Symmetry.
		for i := 0; i < len(c)/2; i++ {
			if math.Abs(c[i]-c[len(c)-1-i]) > 1e-12 {
				t.Errorf("%v: window not symmetric at %d", w, i)
			}
		}
		// Peak at center, bounded by 1.
		for i, v := range c {
			if v > 1+1e-12 || v < -1e-12 {
				t.Errorf("%v: coefficient %d = %g out of [0, 1]", w, i, v)
			}
		}
	}
	if Hann.String() != "hann" || Rectangular.String() != "rectangular" {
		t.Error("window String() mismatch")
	}
	if Window(99).String() != "unknown" {
		t.Error("unknown window String() mismatch")
	}
	one := Hamming.Coefficients(1)
	if len(one) != 1 || one[0] != 1 {
		t.Error("1-point window should be [1]")
	}
}

func TestWindowApply(t *testing.T) {
	x := []float64{1, 1, 1, 1, 1}
	Hann.Apply(x)
	if math.Abs(x[0]) > 1e-12 || math.Abs(x[4]) > 1e-12 {
		t.Error("Hann endpoints should be 0")
	}
	if math.Abs(x[2]-1) > 1e-12 {
		t.Error("Hann center should be 1")
	}
}
