// Package dsp provides the signal-processing substrate used throughout the
// MUTE reproduction: FFTs, convolution, FIR filter design, windows, delay
// lines, power-spectral-density estimation, and decibel utilities.
//
// All routines operate on float64 sample slices normalized to roughly
// [-1, 1]. Sample rates are passed explicitly where they matter; nothing in
// this package holds global state, and every function is safe for concurrent
// use on distinct data.
package dsp

import (
	"errors"
	"math"
)

// ErrEmptyInput is returned by routines that require at least one sample.
var ErrEmptyInput = errors.New("dsp: empty input")

// EpsilonPower is the floor used when converting powers to decibels so that
// silent signals map to a large negative dB value instead of -Inf.
const EpsilonPower = 1e-20

// DB converts a linear power ratio to decibels.
func DB(powerRatio float64) float64 {
	if powerRatio < EpsilonPower {
		powerRatio = EpsilonPower
	}
	return 10 * math.Log10(powerRatio)
}

// AmpDB converts a linear amplitude ratio to decibels.
func AmpDB(ampRatio float64) float64 {
	if ampRatio < 0 {
		ampRatio = -ampRatio
	}
	if ampRatio < 1e-10 {
		ampRatio = 1e-10
	}
	return 20 * math.Log10(ampRatio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// Energy returns the sum of squared samples.
func Energy(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}

// Power returns the mean squared sample value, or 0 for empty input.
func Power(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// RMS returns the root-mean-square level of x.
func RMS(x []float64) float64 { return math.Sqrt(Power(x)) }

// Scale multiplies every sample by g in place and returns x.
func Scale(x []float64, g float64) []float64 {
	for i := range x {
		x[i] *= g
	}
	return x
}

// Add returns a new slice holding a+b element-wise; the result has the
// length of the shorter operand.
func Add(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a new slice holding a-b element-wise; the result has the
// length of the shorter operand.
func Sub(a, b []float64) []float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] - b[i]
	}
	return out
}

// Normalize scales x in place so its peak absolute value is peak.
// Silent input is returned unchanged.
func Normalize(x []float64, peak float64) []float64 {
	var maxAbs float64
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return x
	}
	return Scale(x, peak/maxAbs)
}

// Clamp limits every sample of x to [-limit, limit] in place, modelling
// hard clipping in an amplifier or codec, and returns x.
func Clamp(x []float64, limit float64) []float64 {
	for i, v := range x {
		if v > limit {
			x[i] = limit
		} else if v < -limit {
			x[i] = -limit
		}
	}
	return x
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
