package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// dftNaive is the O(n^2) reference DFT used to validate the fast paths.
func dftNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += x[t] * cmplx.Rect(1, ang)
		}
		out[k] = acc
	}
	return out
}

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func randComplex(n int, seed int64) []complex128 {
	r := rand.New(rand.NewSource(seed))
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
	}
	return out
}

func TestFFTMatchesNaiveDFTPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(n, int64(n))
		got := FFT(x)
		want := dftNaive(x)
		if !complexClose(got, want, 1e-8*float64(n)) {
			t.Errorf("n=%d: FFT differs from naive DFT", n)
		}
	}
}

func TestFFTMatchesNaiveDFTArbitraryN(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 9, 11, 12, 100, 241} {
		x := randComplex(n, int64(n)+1000)
		got := FFT(x)
		want := dftNaive(x)
		if !complexClose(got, want, 1e-7*float64(n)) {
			t.Errorf("n=%d: Bluestein FFT differs from naive DFT", n)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 100, 128} {
		x := randComplex(n, int64(n)+77)
		back := IFFT(FFT(x))
		if !complexClose(back, x, 1e-9*float64(n)+1e-12) {
			t.Errorf("n=%d: IFFT(FFT(x)) != x", n)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if FFT(nil) != nil {
		t.Error("FFT(nil) should be nil")
	}
	if IFFT(nil) != nil {
		t.Error("IFFT(nil) should be nil")
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	// FFT(a*x + b*y) == a*FFT(x) + b*FFT(y).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 64
		x := randComplex(n, seed)
		y := randComplex(n, seed+1)
		a := complex(r.Float64()*2-1, r.Float64()*2-1)
		b := complex(r.Float64()*2-1, r.Float64()*2-1)
		mixed := make([]complex128, n)
		for i := range mixed {
			mixed[i] = a*x[i] + b*y[i]
		}
		lhs := FFT(mixed)
		fx, fy := FFT(x), FFT(y)
		rhs := make([]complex128, n)
		for i := range rhs {
			rhs[i] = a*fx[i] + b*fy[i]
		}
		return complexClose(lhs, rhs, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// sum |x|^2 == (1/N) sum |X|^2.
	f := func(seed int64) bool {
		n := 128
		x := randComplex(n, seed)
		X := FFT(x)
		var td, fd float64
		for i := range x {
			td += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			fd += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		fd /= float64(n)
		return math.Abs(td-fd) < 1e-7*td+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTRealImpulse(t *testing.T) {
	// The spectrum of an impulse is flat with magnitude 1.
	x := make([]float64, 32)
	x[0] = 1
	X := FFTReal(x, 32)
	for k, v := range X {
		if math.Abs(cmplx.Abs(v)-1) > 1e-9 {
			t.Fatalf("bin %d: |X|=%g, want 1", k, cmplx.Abs(v))
		}
	}
}

func TestSpectrumTone(t *testing.T) {
	// A pure 1 kHz tone at fs=8 kHz should peak at the 1 kHz bin.
	fs := 8000.0
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 1000 * float64(i) / fs)
	}
	mags, freqs := Spectrum(x, fs)
	best := 0
	for k := range mags {
		if mags[k] > mags[best] {
			best = k
		}
	}
	if math.Abs(freqs[best]-1000) > fs/float64(n) {
		t.Errorf("spectrum peak at %g Hz, want ~1000 Hz", freqs[best])
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := randComplex(1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein1000(b *testing.B) {
	x := randComplex(1000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
