package dsp

import (
	"math"
	"testing"
)

// sineGain measures the steady-state amplitude gain of filter fn at fHz by
// running a tone through it and comparing RMS after the transient.
func sineGain(process func(float64) float64, fHz, fs float64) float64 {
	n := int(fs)
	skip := n / 4
	var in, out float64
	for i := 0; i < n; i++ {
		x := math.Sin(2 * math.Pi * fHz * float64(i) / fs)
		y := process(x)
		if i >= skip {
			in += x * x
			out += y * y
		}
	}
	return math.Sqrt(out / in)
}

// TestBiquadAllDesignsMatchResponse cross-checks the time-domain filter
// against its own analytic magnitude response on every design type.
func TestBiquadAllDesignsMatchResponse(t *testing.T) {
	fs := 8000.0
	designs := []struct {
		name string
		mk   func() (*Biquad, error)
	}{
		{"lowpass", func() (*Biquad, error) { return NewLowPassBiquad(800, fs, 0.7071) }},
		{"highpass", func() (*Biquad, error) { return NewHighPassBiquad(800, fs, 0.7071) }},
		{"peak", func() (*Biquad, error) { return NewPeakBiquad(1000, fs, 1.5, 5) }},
		{"highshelf", func() (*Biquad, error) { return NewHighShelfBiquad(1500, fs, 0.9, -8) }},
		{"lowshelf", func() (*Biquad, error) { return NewLowShelfBiquad(400, fs, 0.9, 6) }},
	}
	for _, d := range designs {
		for _, f := range []float64{200, 1000, 3000} {
			bq, err := d.mk()
			if err != nil {
				t.Fatal(err)
			}
			want := bq.Response(f, fs)
			got := sineGain(bq.Process, f, fs)
			if math.Abs(got-want) > 0.02*math.Max(want, 1) {
				t.Errorf("%s at %g Hz: measured gain %g, Response says %g", d.name, f, got, want)
			}
		}
	}
}

// TestBiquadShelfGains pins the shelf designs' asymptotic gains: the
// stop-side stays at unity while the shelf side approaches the design dB.
func TestBiquadShelfGains(t *testing.T) {
	fs := 8000.0
	hs, err := NewHighShelfBiquad(1000, fs, 0.7071, -12)
	if err != nil {
		t.Fatal(err)
	}
	if g := hs.Response(50, fs); math.Abs(g-1) > 0.05 {
		t.Errorf("high shelf at 50 Hz: gain %g, want ~1", g)
	}
	want := math.Pow(10, -12.0/20)
	if g := hs.Response(3800, fs); math.Abs(g-want) > 0.05*want {
		t.Errorf("high shelf at 3.8 kHz: gain %g, want ~%g", g, want)
	}
	ls, err := NewLowShelfBiquad(1000, fs, 0.7071, 6)
	if err != nil {
		t.Fatal(err)
	}
	want = math.Pow(10, 6.0/20)
	if g := ls.Response(50, fs); math.Abs(g-want) > 0.05*want {
		t.Errorf("low shelf at 50 Hz: gain %g, want ~%g", g, want)
	}
	if g := ls.Response(3800, fs); math.Abs(g-1) > 0.05 {
		t.Errorf("low shelf at 3.8 kHz: gain %g, want ~1", g)
	}
}

// TestBiquadChainProductAndReset checks the cascade: its response is the
// product of the sections', block processing matches per-sample, and
// Reset clears state.
func TestBiquadChainProductAndReset(t *testing.T) {
	fs := 8000.0
	lp, err := NewLowPassBiquad(1200, fs, 0.7071)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := NewPeakBiquad(600, fs, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewBiquadChain(lp, pk)
	for _, f := range []float64{100, 600, 2000} {
		want := lp.Response(f, fs) * pk.Response(f, fs)
		if got := chain.Response(f, fs); math.Abs(got-want) > 1e-12 {
			t.Errorf("chain response at %g Hz: %g, want product %g", f, got, want)
		}
	}

	x := make([]float64, 64)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.3)
	}
	block := chain.ProcessBlock(x)
	chain.Reset()
	for i, v := range x {
		if got := chain.Process(v); got != block[i] {
			t.Fatalf("sample %d: Process %g differs from ProcessBlock %g after Reset", i, got, block[i])
		}
	}

	// Reset must return the chain to quiescence: a zero input then yields
	// a zero output.
	chain.Reset()
	if got := chain.Process(0); got != 0 {
		t.Errorf("Process(0) after Reset = %g, want 0", got)
	}
}

func TestBiquadShelfErrors(t *testing.T) {
	if _, err := NewHighShelfBiquad(5000, 8000, 0.7, -6); err == nil {
		t.Error("high shelf corner above Nyquist should error")
	}
	if _, err := NewLowShelfBiquad(100, 8000, -1, 6); err == nil {
		t.Error("negative q should error")
	}
}
