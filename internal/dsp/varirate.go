package dsp

import (
	"fmt"
	"math"
)

// CubicHermite evaluates the Catmull-Rom cubic through four equally spaced
// samples at fractional position frac ∈ [0, 1) between y0 and y1. At
// frac == 0 it returns y0 exactly (the polynomial reduces to the sample
// itself), which is what lets a unity-rate VariRateResampler be a bit-exact
// passthrough.
func CubicHermite(ym1, y0, y1, y2, frac float64) float64 {
	if frac == 0 {
		return y0
	}
	c1 := 0.5 * (y1 - ym1)
	c2 := ym1 - 2.5*y0 + 2*y1 - 0.5*y2
	c3 := 0.5*(y2-ym1) + 1.5*(y0-y1)
	return ((c3*frac+c2)*frac+c1)*frac + y0
}

// CubicInterpAt evaluates x at a fractional sample position, clamping the
// interpolation taps at the slice edges. Integer positions return the
// sample exactly.
func CubicInterpAt(x []float64, pos float64) float64 {
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	at := func(k int) float64 {
		if k < 0 {
			k = 0
		}
		if k >= len(x) {
			k = len(x) - 1
		}
		return x[k]
	}
	if frac == 0 {
		return at(i)
	}
	return CubicHermite(at(i-1), at(i), at(i+1), at(i+2), frac)
}

// VariRateMaxPPM bounds how far a VariRateResampler's rate may deviate
// from unity — ±2000 ppm covers any plausible pair of crystal oscillators
// with an order of magnitude to spare.
const VariRateMaxPPM = 2000

// VariRateResampler is a streaming continuous-rate fractional resampler
// for clock-drift correction: it consumes input samples (the relay-clock
// reference out of the jitter buffer) and produces output samples on the
// consumer's clock, advancing its input read position by Rate() input
// samples per output sample. Interpolation is Catmull-Rom cubic (a Farrow
// structure with fixed polynomial coefficients), O(1) per sample.
//
// Two properties matter to the drift pipeline:
//
//   - At rate exactly 1.0 starting from position 0, every output position
//     is an integer, the cubic collapses to the identity, and the output —
//     samples and concealment mask alike — is bit-identical to the input
//     with zero added latency. Drift correction left enabled on a clean
//     clock therefore costs nothing.
//
//   - At fractional positions the kernel reads one sample of history and
//     two samples of future relative to the integer read position; Ready
//     reports whether enough input has been pushed. The up-to-2-sample
//     future need is the "drift.resampler" lookahead-budget debit.
//
// Each output sample carries a concealment flag: the AND of the flags of
// the input taps it interpolated over (exactly the input flag at integer
// positions), so concealed stretches stay visible to the loss-aware
// canceller after resampling.
type VariRateResampler struct {
	buf  []float64
	real []bool
	base uint64  // absolute input index of buf[0]
	head uint64  // absolute input index of the next Push
	pos  float64 // absolute input position of the next output
	rate float64
}

// NewVariRateResampler creates a resampler at unity rate.
func NewVariRateResampler() *VariRateResampler {
	return &VariRateResampler{rate: 1}
}

// SetRate sets the input-samples-per-output-sample ratio. Rates are
// clamped to 1 ± VariRateMaxPPM·1e-6; a rate above 1 drains the input
// faster (relay clock fast), below 1 slower.
func (r *VariRateResampler) SetRate(rate float64) {
	lo := 1 - VariRateMaxPPM*1e-6
	hi := 1 + VariRateMaxPPM*1e-6
	if rate < lo {
		rate = lo
	} else if rate > hi {
		rate = hi
	}
	r.rate = rate
}

// Rate returns the current input-per-output ratio.
func (r *VariRateResampler) Rate() float64 { return r.rate }

// Position returns the absolute input position of the next output sample —
// how many input samples the resampler has consumed, fractionally.
func (r *VariRateResampler) Position() float64 { return r.pos }

// Pending returns how many pushed input samples lie at or beyond the
// current read position (buffered input not yet turned into output).
func (r *VariRateResampler) Pending() int {
	// pos is invariantly >= 0, so integer truncation is floor.
	i := uint64(r.pos)
	if r.head <= i {
		return 0
	}
	return int(r.head - i)
}

// Push appends one input sample with its concealment flag (real = a
// genuinely received sample, false = concealed).
func (r *VariRateResampler) Push(x float64, real bool) {
	r.compact()
	r.buf = append(r.buf, x)
	r.real = append(r.real, real)
	r.head++
}

// need returns the absolute index of the last input sample the next output
// reads: floor(pos) at integer positions, floor(pos)+2 otherwise.
func (r *VariRateResampler) need() uint64 {
	i := uint64(r.pos) // pos >= 0: truncation is floor
	if r.pos == float64(i) {
		return i
	}
	return i + 2
}

// Ready reports whether enough input has been pushed to produce the next
// output sample.
func (r *VariRateResampler) Ready() bool { return r.head > r.need() }

// Pop produces the next output sample. ok is false when Ready() is false
// (nothing is consumed then). real is the AND of the concealment flags of
// the interpolation taps.
func (r *VariRateResampler) Pop() (v float64, real bool, ok bool) {
	if !r.Ready() {
		return 0, false, false
	}
	i := int(r.pos) // pos >= 0: truncation is floor
	frac := r.pos - float64(i)
	if frac == 0 {
		v, real = r.at(i)
	} else {
		ym1, rm1 := r.at(i - 1)
		y0, r0 := r.at(i)
		y1, r1 := r.at(i + 1)
		y2, r2 := r.at(i + 2)
		v = CubicHermite(ym1, y0, y1, y2, frac)
		real = rm1 && r0 && r1 && r2
	}
	r.pos += r.rate
	return v, real, true
}

// at reads the sample at absolute input index k, clamped to the retained
// range (only the leading edge can clamp in practice: history is retained
// one sample past the read position).
func (r *VariRateResampler) at(k int) (float64, bool) {
	if k < int(r.base) {
		k = int(r.base)
	}
	if k >= int(r.head) {
		k = int(r.head) - 1
	}
	return r.buf[uint64(k)-r.base], r.real[uint64(k)-r.base]
}

// compact drops input more than one sample behind the read position once
// enough has accumulated, keeping memory O(1).
func (r *VariRateResampler) compact() {
	keep := uint64(0)
	if r.pos >= 1 {
		keep = uint64(r.pos) - 1 // retain the i-1 history tap (truncation = floor)
	}
	if keep <= r.base || keep-r.base < 64 {
		return
	}
	n := keep - r.base
	r.buf = append(r.buf[:0], r.buf[n:]...)
	r.real = append(r.real[:0], r.real[n:]...)
	r.base = keep
}

// Reset returns the resampler to its initial state at unity rate.
func (r *VariRateResampler) Reset() {
	r.buf = r.buf[:0]
	r.real = r.real[:0]
	r.base, r.head = 0, 0
	r.pos = 0
	r.rate = 1
}

// String aids debugging.
func (r *VariRateResampler) String() string {
	return fmt.Sprintf("VariRateResampler{pos=%.3f rate=%.6f pending=%d}", r.pos, r.rate, r.Pending())
}
