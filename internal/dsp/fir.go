package dsp

import (
	"fmt"
	"math"
)

// Sinc returns sin(pi x)/(pi x), with Sinc(0) == 1.
func Sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// LowPassFIR designs a windowed-sinc low-pass FIR filter with the given
// cutoff frequency (Hz), sample rate (Hz), and odd tap count. The filter has
// unit DC gain and linear phase with delay (taps-1)/2 samples.
func LowPassFIR(cutoffHz, sampleRate float64, taps int, w Window) ([]float64, error) {
	if err := validateFIRArgs(cutoffHz, sampleRate, taps); err != nil {
		return nil, err
	}
	fc := cutoffHz / sampleRate // normalized cutoff in cycles/sample
	m := taps - 1
	h := make([]float64, taps)
	for i := 0; i < taps; i++ {
		h[i] = 2 * fc * Sinc(2*fc*(float64(i)-float64(m)/2))
	}
	w.Apply(h)
	// Normalize DC gain to exactly 1.
	var sum float64
	for _, v := range h {
		sum += v
	}
	if sum != 0 {
		Scale(h, 1/sum)
	}
	return h, nil
}

// HighPassFIR designs a windowed-sinc high-pass FIR filter by spectral
// inversion of the corresponding low-pass. taps must be odd.
func HighPassFIR(cutoffHz, sampleRate float64, taps int, w Window) ([]float64, error) {
	if taps%2 == 0 {
		return nil, fmt.Errorf("dsp: high-pass FIR requires odd taps, got %d", taps)
	}
	lp, err := LowPassFIR(cutoffHz, sampleRate, taps, w)
	if err != nil {
		return nil, err
	}
	for i := range lp {
		lp[i] = -lp[i]
	}
	lp[(taps-1)/2] += 1
	return lp, nil
}

// BandPassFIR designs a windowed-sinc band-pass FIR filter passing
// [lowHz, highHz]. taps must be odd.
func BandPassFIR(lowHz, highHz, sampleRate float64, taps int, w Window) ([]float64, error) {
	if lowHz >= highHz {
		return nil, fmt.Errorf("dsp: band-pass requires low < high, got [%g, %g]", lowHz, highHz)
	}
	if taps%2 == 0 {
		return nil, fmt.Errorf("dsp: band-pass FIR requires odd taps, got %d", taps)
	}
	hp, err := LowPassFIR(highHz, sampleRate, taps, w)
	if err != nil {
		return nil, err
	}
	lp, err := LowPassFIR(lowHz, sampleRate, taps, w)
	if err != nil {
		return nil, err
	}
	out := make([]float64, taps)
	for i := range out {
		out[i] = hp[i] - lp[i]
	}
	return out, nil
}

func validateFIRArgs(cutoffHz, sampleRate float64, taps int) error {
	if sampleRate <= 0 {
		return fmt.Errorf("dsp: sample rate must be positive, got %g", sampleRate)
	}
	if cutoffHz <= 0 || cutoffHz >= sampleRate/2 {
		return fmt.Errorf("dsp: cutoff %g Hz outside (0, %g)", cutoffHz, sampleRate/2)
	}
	if taps < 3 {
		return fmt.Errorf("dsp: need at least 3 taps, got %d", taps)
	}
	return nil
}

// FIRFilter is a streaming direct-form FIR filter.
type FIRFilter struct {
	conv *StreamConvolver
}

// NewFIRFilter wraps taps h in a streaming filter.
func NewFIRFilter(h []float64) *FIRFilter {
	return &FIRFilter{conv: NewStreamConvolver(h)}
}

// Process filters one sample.
func (f *FIRFilter) Process(x float64) float64 { return f.conv.Process(x) }

// ProcessBlock filters a block of samples.
func (f *FIRFilter) ProcessBlock(x []float64) []float64 { return f.conv.ProcessBlock(x) }

// Reset clears filter state.
func (f *FIRFilter) Reset() { f.conv.Reset() }

// Taps returns a copy of the filter taps.
func (f *FIRFilter) Taps() []float64 { return f.conv.Taps() }

// FrequencyResponse evaluates the magnitude response of FIR taps h at
// frequency fHz for the given sample rate.
func FrequencyResponse(h []float64, fHz, sampleRate float64) float64 {
	omega := 2 * math.Pi * fHz / sampleRate
	var re, im float64
	for n, v := range h {
		re += v * math.Cos(omega*float64(n))
		im -= v * math.Sin(omega*float64(n))
	}
	return math.Hypot(re, im)
}
