package dsp

import "testing"

// TestStreamConvolverAllocatesNothing pins the steady-state ear path: once a
// convolver exists and (for the block path) its overlap-save plan is built,
// neither the per-sample loop nor ProcessBlockInto may allocate.
func TestStreamConvolverAllocatesNothing(t *testing.T) {
	short := NewStreamConvolver(make([]float64, 57))
	if n := testing.AllocsPerRun(100, func() { short.Process(0.25) }); n != 0 {
		t.Errorf("per-sample Process allocated %.1f times per run", n)
	}

	x := make([]float64, 4096)
	out := make([]float64, 4096)
	for i := range x {
		x[i] = float64(i%13) - 6
	}
	if n := testing.AllocsPerRun(20, func() { short.ProcessBlockInto(out, x) }); n != 0 {
		t.Errorf("per-sample block path allocated %.1f times per run", n)
	}

	long := NewStreamConvolver(make([]float64, 256))
	long.ProcessBlockInto(out, x) // builds the overlap-save plan and scratch
	if n := testing.AllocsPerRun(20, func() { long.ProcessBlockInto(out, x) }); n != 0 {
		t.Errorf("overlap-save block path allocated %.1f times per run", n)
	}
}
