package dsp

import (
	"math"
	"testing"
)

func TestFIRFromMagnitudeLowPassShape(t *testing.T) {
	fs := 8000.0
	mag := func(f float64) float64 {
		if f < 1000 {
			return 1
		}
		return 0.1
	}
	h, err := FIRFromMagnitude(mag, fs, 129)
	if err != nil {
		t.Fatal(err)
	}
	if g := FrequencyResponse(h, 300, fs); math.Abs(g-1) > 0.15 {
		t.Errorf("passband gain = %g, want ~1", g)
	}
	if g := FrequencyResponse(h, 3000, fs); math.Abs(g-0.1) > 0.08 {
		t.Errorf("stopband gain = %g, want ~0.1", g)
	}
}

func TestFIRFromMagnitudeSlopedCurve(t *testing.T) {
	// A smoothly rising attenuation (passive-isolation style):
	// 1.0 at DC falling to 0.1 at 4 kHz.
	fs := 8000.0
	mag := func(f float64) float64 { return 1 - 0.9*f/4000 }
	h, err := FIRFromMagnitude(mag, fs, 201)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{500, 1500, 2500, 3500} {
		want := mag(f)
		got := FrequencyResponse(h, f, fs)
		if math.Abs(got-want) > 0.1 {
			t.Errorf("at %g Hz: gain %g, want %g", f, got, want)
		}
	}
}

func TestFIRFromMagnitudeErrors(t *testing.T) {
	mag := func(f float64) float64 { return 1 }
	if _, err := FIRFromMagnitude(mag, 0, 33); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := FIRFromMagnitude(mag, 8000, 32); err == nil {
		t.Error("even taps should error")
	}
	if _, err := FIRFromMagnitude(mag, 8000, 1); err == nil {
		t.Error("too few taps should error")
	}
}

func TestFIRFromMagnitudeClampsNegative(t *testing.T) {
	mag := func(f float64) float64 { return -1 }
	h, err := FIRFromMagnitude(mag, 8000, 65)
	if err != nil {
		t.Fatal(err)
	}
	if g := FrequencyResponse(h, 1000, 8000); g > 1e-6 {
		t.Errorf("negative magnitudes should clamp to 0, got gain %g", g)
	}
}
