package dsp

import "sync"

// Pooled scratch for the legacy package-level helpers (FFT, Spectrum,
// Convolve): transient power-of-two buffers that would otherwise be a fresh
// allocation per call. The pool holds *[]T so Get/Put never box a slice
// header; the caller owns the pointer between get and put. Components with
// AllocsPerRun=0 guarantees own their scratch as struct fields instead — a
// sync.Pool may be drained by the GC at any time, so it amortizes allocation
// but cannot pin it to zero.

var complexPool = sync.Pool{New: func() any { return new([]complex128) }}

var floatPool = sync.Pool{New: func() any { return new([]float64) }}

// getComplex returns a zeroed scratch slice of length n. Release it with
// putComplex(&s) when done.
func getComplex(n int) []complex128 {
	p := complexPool.Get().(*[]complex128)
	s := *p
	*p = nil
	complexPool.Put(p)
	if cap(s) < n {
		s = make([]complex128, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// putComplex returns s's backing array to the pool.
func putComplex(s []complex128) {
	p := complexPool.Get().(*[]complex128)
	*p = s[:0]
	complexPool.Put(p)
}

// getFloat returns a zeroed scratch slice of length n. Release it with
// putFloat when done.
func getFloat(n int) []float64 {
	p := floatPool.Get().(*[]float64)
	s := *p
	*p = nil
	floatPool.Put(p)
	if cap(s) < n {
		s = make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// putFloat returns s's backing array to the pool.
func putFloat(s []float64) {
	p := floatPool.Get().(*[]float64)
	*p = s[:0]
	floatPool.Put(p)
}
