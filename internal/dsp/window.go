package dsp

import "math"

// Window identifies a tapering window function.
type Window int

// Supported window shapes.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
)

// String returns the conventional name of the window.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients (symmetric form).
func (w Window) Coefficients(n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	den := float64(n - 1)
	for i := 0; i < n; i++ {
		t := float64(i) / den
		switch w {
		case Rectangular:
			out[i] = 1
		case Hann:
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*t)
		case Hamming:
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*t)
		case Blackman:
			out[i] = 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		default:
			out[i] = 1
		}
	}
	return out
}

// Apply multiplies x by the window coefficients in place and returns x.
// len(x) determines the window length.
func (w Window) Apply(x []float64) []float64 {
	c := w.Coefficients(len(x))
	for i := range x {
		x[i] *= c[i]
	}
	return x
}
