package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// refFFT is a verbatim copy of the pre-plan streaming radix-2 kernel. The
// planned transform must reproduce it bit for bit: the golden-trace suite
// pins the whole pipeline at 1e-9 absolute, so the plan migration is only
// safe if it is numerically invisible.
func refFFT(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		half := length >> 1
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

func planRandComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func planRandFloat(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestFFTPlanBitIdenticalToLegacyKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 1; n <= 4096; n <<= 1 {
		x := planRandComplex(rng, n)
		for _, inverse := range []bool{false, true} {
			want := append([]complex128(nil), x...)
			refFFT(want, inverse)
			got := append([]complex128(nil), x...)
			p := PlanFFT(n)
			if inverse {
				// Compare the unscaled conjugate transform.
				p.inverseRaw(got)
			} else {
				p.Forward(got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d inverse=%v bin %d: plan %v, legacy kernel %v",
						n, inverse, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPackageFFTBitIdenticalAcrossLengths(t *testing.T) {
	// The package helpers (now plan-routed, Bluestein included) must return
	// the same bits the seed implementation did. The reference here computes
	// the legacy composition from refFFT directly.
	legacyBluestein := func(x []complex128, inverse bool) []complex128 {
		n := len(x)
		sign := -1.0
		if inverse {
			sign = 1.0
		}
		w := make([]complex128, n)
		for k := 0; k < n; k++ {
			k2 := (int64(k) * int64(k)) % (2 * int64(n))
			w[k] = cmplx.Rect(1, sign*math.Pi*float64(k2)/float64(n))
		}
		m := NextPow2(2*n - 1)
		a := make([]complex128, m)
		b := make([]complex128, m)
		for k := 0; k < n; k++ {
			a[k] = x[k] * w[k]
			b[k] = cmplx.Conj(w[k])
		}
		for k := 1; k < n; k++ {
			b[m-k] = cmplx.Conj(w[k])
		}
		refFFT(a, false)
		refFFT(b, false)
		for i := range a {
			a[i] *= b[i]
		}
		refFFT(a, true)
		invM := complex(1/float64(m), 0)
		out := make([]complex128, n)
		for k := 0; k < n; k++ {
			out[k] = a[k] * invM * w[k]
		}
		return out
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 5, 6, 7, 12, 16, 33, 100, 255, 256, 1000} {
		x := planRandComplex(rng, n)
		var wantF []complex128
		if IsPow2(n) {
			wantF = append([]complex128(nil), x...)
			refFFT(wantF, false)
		} else {
			wantF = legacyBluestein(x, false)
		}
		gotF := FFT(x)
		for i := range wantF {
			if gotF[i] != wantF[i] {
				t.Fatalf("FFT n=%d bin %d: %v, legacy %v", n, i, gotF[i], wantF[i])
			}
		}
		var wantI []complex128
		if IsPow2(n) {
			wantI = append([]complex128(nil), x...)
			refFFT(wantI, true)
		} else {
			wantI = legacyBluestein(x, true)
		}
		inv := complex(1/float64(n), 0)
		for i := range wantI {
			wantI[i] *= inv
		}
		gotI := IFFT(x)
		for i := range wantI {
			if gotI[i] != wantI[i] {
				t.Fatalf("IFFT n=%d bin %d: %v, legacy %v", n, i, gotI[i], wantI[i])
			}
		}
	}
}

func TestRFFTMatchesComplexFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for n := 2; n <= 4096; n <<= 1 {
		x := planRandFloat(rng, n)
		full := FFTReal(x, n)
		p := PlanRFFT(n)
		half := make([]complex128, p.Bins())
		p.Forward(half, x)
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(half[k] - full[k]); d > 1e-11*(1+cmplx.Abs(full[k])) {
				t.Fatalf("n=%d bin %d: rfft %v, full fft %v (|d|=%g)", n, k, half[k], full[k], d)
			}
		}
	}
}

func TestRFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for n := 2; n <= 2048; n <<= 1 {
		x := planRandFloat(rng, n)
		p := PlanRFFT(n)
		spec := make([]complex128, p.Bins())
		p.Forward(spec, x)
		back := make([]float64, n)
		p.Inverse(back, spec) // destroys spec
		for i := range x {
			if d := math.Abs(back[i] - x[i]); d > 1e-11*(1+math.Abs(x[i])) {
				t.Fatalf("n=%d sample %d: round trip %v, original %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestRFFTTinySizes(t *testing.T) {
	// n=2 and n=4 exercise the special case and the smallest recombination.
	for _, x := range [][]float64{{3, -1}, {1, 2, 3, 4}} {
		n := len(x)
		full := FFTReal(x, n)
		p := PlanRFFT(n)
		spec := make([]complex128, p.Bins())
		p.Forward(spec, x)
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(spec[k] - full[k]); d > 1e-12 {
				t.Fatalf("n=%d bin %d: %v vs %v", n, k, spec[k], full[k])
			}
		}
		back := make([]float64, n)
		p.Inverse(back, spec)
		for i := range x {
			if d := math.Abs(back[i] - x[i]); d > 1e-12 {
				t.Fatalf("n=%d sample %d: %v vs %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestMulSpectra(t *testing.T) {
	a := []complex128{1 + 2i, 3, -1i}
	b := []complex128{2, 1 - 1i, 4i}
	dst := make([]complex128, 3)
	MulSpectra(dst, a, b)
	want := []complex128{2 + 4i, 3 - 3i, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("bin %d: %v, want %v", i, dst[i], want[i])
		}
	}
	// Aliasing dst with a must work.
	MulSpectra(a, a, b)
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("aliased bin %d: %v, want %v", i, a[i], want[i])
		}
	}
}

func TestPlanCachesShareInstances(t *testing.T) {
	if PlanFFT(256) != PlanFFT(256) {
		t.Error("PlanFFT(256) returned distinct instances")
	}
	if PlanRFFT(256) != PlanRFFT(256) {
		t.Error("PlanRFFT(256) returned distinct instances")
	}
}

func TestPlanRejectsNonPow2(t *testing.T) {
	if _, err := NewFFTPlan(12); err == nil {
		t.Error("NewFFTPlan(12) accepted a non-power-of-two")
	}
	if _, err := NewRFFTPlan(1); err == nil {
		t.Error("NewRFFTPlan(1) accepted length 1")
	}
	defer func() {
		if recover() == nil {
			t.Error("PlanFFT(3) did not panic")
		}
	}()
	PlanFFT(3)
}

func TestPlanTransformsAllocateNothing(t *testing.T) {
	p := PlanFFT(1024)
	buf := make([]complex128, 1024)
	if n := testing.AllocsPerRun(50, func() { p.Forward(buf); p.Inverse(buf) }); n != 0 {
		t.Errorf("FFTPlan Forward+Inverse allocated %.1f times per run", n)
	}
	rp := PlanRFFT(1024)
	src := make([]float64, 1024)
	spec := make([]complex128, rp.Bins())
	dst := make([]float64, 1024)
	if n := testing.AllocsPerRun(50, func() { rp.Forward(spec, src); rp.Inverse(dst, spec) }); n != 0 {
		t.Errorf("RFFTPlan Forward+Inverse allocated %.1f times per run", n)
	}
}

// FuzzRFFTRoundTrip cross-checks the packed real transform against the full
// complex FFT and its own inverse on arbitrary inputs.
func FuzzRFFTRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(99), uint8(0))
	f.Add(int64(-7), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, logN uint8) {
		n := 2 << (logN % 10) // 2..1024
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 100
		}
		p := PlanRFFT(n)
		spec := make([]complex128, p.Bins())
		p.Forward(spec, x)
		full := FFTReal(x, n)
		scale := 0.0
		for _, v := range x {
			scale += math.Abs(v)
		}
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(spec[k] - full[k]); d > 1e-9*(1+scale) {
				t.Fatalf("n=%d bin %d: rfft %v, full %v", n, k, spec[k], full[k])
			}
		}
		back := make([]float64, n)
		p.Inverse(back, spec)
		for i := range x {
			if d := math.Abs(back[i] - x[i]); d > 1e-9*(1+scale) {
				t.Fatalf("n=%d sample %d: %v, want %v", n, i, back[i], x[i])
			}
		}
	})
}

func BenchmarkFFTPlanForward1024(b *testing.B) {
	p := PlanFFT(1024)
	buf := make([]complex128, 1024)
	for i := range buf {
		buf[i] = complex(float64(i%7), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(buf)
	}
}

func BenchmarkRFFTPlanForward1024(b *testing.B) {
	p := PlanRFFT(1024)
	src := make([]float64, 1024)
	for i := range src {
		src[i] = float64(i % 7)
	}
	dst := make([]complex128, p.Bins())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forward(dst, src)
	}
}

func BenchmarkLegacyFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		refFFT(x, false)
	}
}
