package dsp

import (
	"math"
	"math/cmplx"
)

// FFT computes the in-place-free discrete Fourier transform of x.
// Power-of-two lengths use an iterative radix-2 Cooley-Tukey kernel;
// all other lengths fall back to Bluestein's chirp-z algorithm, so any
// N >= 1 is supported. The input slice is not modified.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if IsPow2(n) {
		out := make([]complex128, n)
		copy(out, x)
		fftRadix2(out, false)
		return out
	}
	return bluestein(x, false)
}

// IFFT computes the inverse DFT of x with 1/N normalization.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	var out []complex128
	if IsPow2(n) {
		out = make([]complex128, n)
		copy(out, x)
		fftRadix2(out, true)
	} else {
		out = bluestein(x, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal computes the DFT of a real signal, returning the full complex
// spectrum of length len(x) (zero-padded to n if n > len(x)).
func FFTReal(x []float64, n int) []complex128 {
	if n < len(x) {
		n = len(x)
	}
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	if IsPow2(n) {
		fftRadix2(cx, false)
		return cx
	}
	return bluestein(cx, false)
}

// IFFTReal computes the inverse DFT of spectrum X and returns the real part.
// It is intended for spectra of real signals (conjugate-symmetric).
func IFFTReal(X []complex128) []float64 {
	t := IFFT(X)
	out := make([]float64, len(t))
	for i, v := range t {
		out[i] = real(v)
	}
	return out
}

// fftRadix2 computes an in-place iterative radix-2 FFT. len(a) must be a
// power of two. If inverse is true the conjugate transform is computed
// (without the 1/N factor).
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		half := length >> 1
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein evaluates an arbitrary-length DFT as a convolution, enabling
// FFTs for any N via the radix-2 kernel.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp w[k] = exp(sign * i*pi*k^2/n).
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k^2 mod 2n avoids precision loss for large k.
		k2 := (int64(k) * int64(k)) % (2 * int64(n))
		w[k] = cmplx.Rect(1, sign*math.Pi*float64(k2)/float64(n))
	}
	m := NextPow2(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * w[k]
	}
	return out
}

// Spectrum returns the one-sided magnitude spectrum of x (length n/2+1 for
// an n-point transform) along with the frequency of each bin for the given
// sample rate.
func Spectrum(x []float64, sampleRate float64) (mags, freqs []float64) {
	n := NextPow2(len(x))
	X := FFTReal(x, n)
	half := n/2 + 1
	mags = make([]float64, half)
	freqs = make([]float64, half)
	for k := 0; k < half; k++ {
		mags[k] = cmplx.Abs(X[k]) / float64(n)
		freqs[k] = float64(k) * sampleRate / float64(n)
	}
	return mags, freqs
}
