package dsp

import (
	"math"
	"math/cmplx"
	"sync"
)

// FFT computes the discrete Fourier transform of x. Power-of-two lengths
// use the cached radix-2 plan; all other lengths fall back to a cached
// Bluestein chirp-z plan, so any N >= 1 is supported. The input slice is
// not modified. The per-size plans (twiddles, bit-reversal, chirp tables)
// are computed once per process, so repeated calls no longer rebuild
// trigonometric state — only the output slice is allocated.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if IsPow2(n) {
		PlanFFT(n).Forward(out)
		return out
	}
	planBluestein(n).transform(out, false)
	return out
}

// IFFT computes the inverse DFT of x with 1/N normalization.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if IsPow2(n) {
		PlanFFT(n).Inverse(out)
		return out
	}
	planBluestein(n).transform(out, true)
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal computes the DFT of a real signal, returning the full complex
// spectrum of length len(x) (zero-padded to n if n > len(x)).
func FFTReal(x []float64, n int) []complex128 {
	if n < len(x) {
		n = len(x)
	}
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	if IsPow2(n) {
		PlanFFT(n).Forward(cx)
		return cx
	}
	planBluestein(n).transform(cx, false)
	return cx
}

// IFFTReal computes the inverse DFT of spectrum X and returns the real part.
// It is intended for spectra of real signals (conjugate-symmetric).
func IFFTReal(X []complex128) []float64 {
	t := IFFT(X)
	out := make([]float64, len(t))
	for i, v := range t {
		out[i] = real(v)
	}
	return out
}

// bluesteinPlan evaluates an arbitrary-length DFT as a convolution through
// the radix-2 plans. The chirp and the kernel spectrum for both directions
// are precomputed once per size.
type bluesteinPlan struct {
	n, m   int
	mp     *FFTPlan
	wF, wI []complex128 // chirp exp(±iπk²/n)
	bF, bI []complex128 // FFT of the chirp-conjugate kernel, per direction
}

var bluesteinPlans sync.Map // int → *bluesteinPlan

func planBluestein(n int) *bluesteinPlan {
	if v, ok := bluesteinPlans.Load(n); ok {
		return v.(*bluesteinPlan)
	}
	m := NextPow2(2*n - 1)
	p := &bluesteinPlan{n: n, m: m, mp: PlanFFT(m)}
	p.wF = bluesteinChirp(n, -1)
	p.wI = bluesteinChirp(n, +1)
	p.bF = bluesteinKernel(p.wF, n, m, p.mp)
	p.bI = bluesteinKernel(p.wI, n, m, p.mp)
	v, _ := bluesteinPlans.LoadOrStore(n, p)
	return v.(*bluesteinPlan)
}

func bluesteinChirp(n int, sign float64) []complex128 {
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n avoids precision loss for large k.
		k2 := (int64(k) * int64(k)) % (2 * int64(n))
		w[k] = cmplx.Rect(1, sign*math.Pi*float64(k2)/float64(n))
	}
	return w
}

func bluesteinKernel(w []complex128, n, m int, mp *FFTPlan) []complex128 {
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	mp.Forward(b)
	return b
}

// transform computes the DFT (or conjugate DFT) of x in place, without any
// normalization factor.
func (p *bluesteinPlan) transform(x []complex128, inverse bool) {
	w, b := p.wF, p.bF
	if inverse {
		w, b = p.wI, p.bI
	}
	a := getComplex(p.m)
	defer putComplex(a)
	for k := 0; k < p.n; k++ {
		a[k] = x[k] * w[k]
	}
	for k := p.n; k < p.m; k++ {
		a[k] = 0
	}
	p.mp.Forward(a)
	for i := range a {
		a[i] *= b[i]
	}
	p.mp.inverseRaw(a)
	invM := complex(1/float64(p.m), 0)
	for k := 0; k < p.n; k++ {
		x[k] = a[k] * invM * w[k]
	}
}

// Spectrum returns the one-sided magnitude spectrum of x (length n/2+1 for
// an n-point transform) along with the frequency of each bin for the given
// sample rate.
func Spectrum(x []float64, sampleRate float64) (mags, freqs []float64) {
	n := NextPow2(len(x))
	if n < 2 {
		n = 2
	}
	plan := PlanRFFT(n)
	seg := getFloat(n)
	defer putFloat(seg)
	copy(seg, x)
	for i := len(x); i < n; i++ {
		seg[i] = 0
	}
	X := getComplex(plan.Bins())
	defer putComplex(X)
	plan.Forward(X, seg)
	half := n/2 + 1
	mags = make([]float64, half)
	freqs = make([]float64, half)
	for k := 0; k < half; k++ {
		mags[k] = cmplx.Abs(X[k]) / float64(n)
		freqs[k] = float64(k) * sampleRate / float64(n)
	}
	return mags, freqs
}
