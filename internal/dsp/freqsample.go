package dsp

import (
	"fmt"
	"math"
)

// FIRFromMagnitude designs a linear-phase FIR filter whose magnitude
// response approximates mag(f) for f in [0, sampleRate/2], using the
// frequency-sampling method with a Hann window. taps must be odd. It is
// used to model measured transducer and passive-isolation curves (the
// paper's Figure 13 response and the ear-cup attenuation of Bose_Overall).
func FIRFromMagnitude(mag func(fHz float64) float64, sampleRate float64, taps int) ([]float64, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: sample rate %g must be positive", sampleRate)
	}
	if taps < 3 || taps%2 == 0 {
		return nil, fmt.Errorf("dsp: taps must be odd and >= 3, got %d", taps)
	}
	n := NextPow2(taps * 4)
	half := n / 2
	// Desired spectrum: linear phase corresponding to (taps-1)/2 delay.
	delay := float64(taps-1) / 2
	X := make([]complex128, n)
	for k := 0; k <= half; k++ {
		f := float64(k) * sampleRate / float64(n)
		m := mag(f)
		if m < 0 {
			m = 0
		}
		phase := -2 * math.Pi * float64(k) * delay / float64(n)
		X[k] = complex(m*math.Cos(phase), m*math.Sin(phase))
		if k != 0 && k != half {
			X[n-k] = complex(real(X[k]), -imag(X[k]))
		}
	}
	h := IFFTReal(X)
	out := make([]float64, taps)
	copy(out, h[:taps])
	Hann.Apply(out)
	return out, nil
}
