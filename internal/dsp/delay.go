package dsp

import "fmt"

// DelayLine is a fixed-length integer-sample delay used to model acoustic
// propagation, converter latency, and the deliberate delayed-line buffer the
// paper uses to emulate shorter lookahead (Section 5.2, Figure 16).
type DelayLine struct {
	buf []float64
	pos int
}

// NewDelayLine creates a delay of n samples (n >= 0). A zero-length delay
// passes samples through unchanged.
func NewDelayLine(n int) (*DelayLine, error) {
	if n < 0 {
		return nil, fmt.Errorf("dsp: negative delay %d", n)
	}
	return &DelayLine{buf: make([]float64, n)}, nil
}

// MustDelayLine is NewDelayLine for compile-time-constant lengths.
func MustDelayLine(n int) *DelayLine {
	d, err := NewDelayLine(n)
	if err != nil {
		panic(err)
	}
	return d
}

// Process pushes x and returns the sample delayed by the line length.
func (d *DelayLine) Process(x float64) float64 {
	if len(d.buf) == 0 {
		return x
	}
	out := d.buf[d.pos]
	d.buf[d.pos] = x
	d.pos++
	if d.pos == len(d.buf) {
		d.pos = 0
	}
	return out
}

// Len returns the delay length in samples.
func (d *DelayLine) Len() int { return len(d.buf) }

// Reset zeroes the delay contents.
func (d *DelayLine) Reset() {
	for i := range d.buf {
		d.buf[i] = 0
	}
	d.pos = 0
}

// FractionalDelayFIR returns an FIR approximation of a (possibly
// non-integer) delay of d samples using 4-point Lagrange interpolation
// around the integer part. The returned taps have length floor(d)+4 (or the
// minimum needed), and applying them delays a signal by d samples with flat
// response well below Nyquist. Used by the image-source room model, where
// echo path lengths rarely land on sample boundaries.
func FractionalDelayFIR(d float64) ([]float64, error) {
	if d < 0 {
		return nil, fmt.Errorf("dsp: negative fractional delay %g", d)
	}
	di := int(d)
	frac := d - float64(di)
	// Center the 4-tap Lagrange kernel so its group delay is 1+frac
	// samples; shift the integer part accordingly.
	base := di - 1
	if base < 0 {
		base = 0
		// For d < 1 fall back to a 4-tap kernel anchored at 0 whose
		// group delay is d exactly (Lagrange on points 0..3).
		return lagrange4(d), nil
	}
	k := lagrange4(1 + frac)
	taps := make([]float64, base+len(k))
	copy(taps[base:], k)
	return taps, nil
}

// lagrange4 returns the 4 Lagrange interpolation coefficients for a delay
// of mu samples, mu in [0, 3].
func lagrange4(mu float64) []float64 {
	h := make([]float64, 4)
	for n := 0; n < 4; n++ {
		v := 1.0
		for k := 0; k < 4; k++ {
			if k == n {
				continue
			}
			v *= (mu - float64(k)) / (float64(n) - float64(k))
		}
		h[n] = v
	}
	return h
}

// LookaheadBuffer exposes a sliding window over a sample stream with access
// to samples that have been received (over RF) but whose acoustic wavefront
// has not yet arrived. Index 0 is the "current" sample; positive indices
// peek into the future up to the configured lookahead.
//
// This is the data structure that makes LANC's non-causal taps realizable:
// the wireless channel delivers x(t+N) while the acoustic channel is still
// delivering x(t).
//
// Internally the buffer is a double-write ring: storage is twice the window
// length and every sample is written to two slots a window apart, so the
// live window is always available as one contiguous slice (see View) and
// Push costs O(1) instead of the O(window) shift of a linear register.
type LookaheadBuffer struct {
	buf       []float64 // 2*win storage; window = buf[pos : pos+win]
	win       int       // history + lookahead + 1
	pos       int       // ring write cursor in [0, win)
	lookahead int       // samples of future available
	history   int       // samples of past retained
	pushes    int       // total samples pushed, saturating at lookahead+1
}

// NewLookaheadBuffer creates a buffer retaining history past samples and
// lookahead future samples around the current position.
func NewLookaheadBuffer(history, lookahead int) (*LookaheadBuffer, error) {
	if history < 0 || lookahead < 0 {
		return nil, fmt.Errorf("dsp: negative buffer size (history=%d lookahead=%d)", history, lookahead)
	}
	win := history + lookahead + 1
	return &LookaheadBuffer{
		buf:       make([]float64, 2*win),
		win:       win,
		lookahead: lookahead,
		history:   history,
	}, nil
}

// Push inserts the newest (most future) sample and advances the current
// position by one. Until lookahead+1 samples have been pushed, the current
// sample and its history are still the zeros the buffer was primed with.
func (l *LookaheadBuffer) Push(x float64) {
	l.buf[l.pos] = x
	l.buf[l.pos+l.win] = x
	l.pos++
	if l.pos == l.win {
		l.pos = 0
	}
	if l.pushes <= l.lookahead {
		l.pushes++
	}
}

// Primed reports whether enough samples have been pushed that the current
// position corresponds to real (non-zero-fill) data.
func (l *LookaheadBuffer) Primed() bool { return l.pushes > l.lookahead }

// At returns the sample at signed offset k from the current position:
// k=0 is current, k>0 future (k <= Lookahead), k<0 past (−k <= History).
// Offsets outside the window return 0.
func (l *LookaheadBuffer) At(k int) float64 {
	idx := l.history + k
	if idx < 0 || idx >= l.win {
		return 0
	}
	return l.buf[l.pos+idx]
}

// View returns the samples for offsets [lo, hi] as a zero-copy slice s with
// s[j] = At(lo+j). The offsets must lie within [-History, +Lookahead]. The
// slice aliases the ring storage: it is read-only and invalidated by the
// next Push. This is the accessor the per-sample kernels use to turn
// tap loops into contiguous array walks.
func (l *LookaheadBuffer) View(lo, hi int) []float64 {
	if lo < -l.history || hi > l.lookahead || lo > hi {
		panic(fmt.Sprintf("dsp: view [%d, %d] outside buffer window [%d, %d]",
			lo, hi, -l.history, l.lookahead))
	}
	start := l.pos + l.history + lo
	return l.buf[start : start+hi-lo+1]
}

// Lookahead returns the number of future samples available.
func (l *LookaheadBuffer) Lookahead() int { return l.lookahead }

// History returns the number of past samples retained.
func (l *LookaheadBuffer) History() int { return l.history }

// Window copies the samples for offsets [-history, +lookahead] into dst
// (which must have length history+lookahead+1), ordered oldest first.
func (l *LookaheadBuffer) Window(dst []float64) {
	copy(dst, l.buf[l.pos:l.pos+l.win])
}

// Reset clears the buffer contents and priming state.
func (l *LookaheadBuffer) Reset() {
	for i := range l.buf {
		l.buf[i] = 0
	}
	l.pos = 0
	l.pushes = 0
}
