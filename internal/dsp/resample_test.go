package dsp

import (
	"math"
	"testing"
)

// TestResampleTailRegression pins the group-delay fix: downsampling runs
// the input through a linear-phase anti-alias FIR whose delay used to be
// compensated with a plain shift, leaving the last gd samples zero-filled
// — a pure tone came back with a dead tail. The compensated convolution
// must keep the tail at full amplitude.
func TestResampleTailRegression(t *testing.T) {
	fs, n := 44100.0, 44100
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 440 * float64(i) / fs)
	}
	y, err := Resample(x, fs, 8000)
	if err != nil {
		t.Fatal(err)
	}
	// The windowed-sinc readout itself tapers over its ~17-sample support
	// at the very edge; the regression left ~6 output samples (31 input
	// samples at the rate ratio) hard-zero before that. Compare the RMS of
	// the last pre-edge stretch against the steady state.
	body := RMS(y[len(y)/4 : len(y)/2])
	tail := RMS(y[len(y)-40 : len(y)-8])
	if tail < 0.8*body {
		t.Errorf("tail RMS %g vs body RMS %g: anti-alias group delay is truncating the tail", tail, body)
	}
	for i, v := range y[len(y)-8:] {
		if v != 0 {
			break
		}
		if i == 7 {
			t.Error("last 8 output samples are all exactly zero")
		}
	}
}

// TestResampleLengthRounding checks output lengths for ratios that do not
// divide evenly, including the one-sample floor.
func TestResampleLengthRounding(t *testing.T) {
	cases := []struct {
		n        int
		src, dst float64
		want     int
	}{
		{44100, 44100, 8000, 8000},
		{44101, 44100, 8000, 8000}, // rounds, not truncates
		{100, 8000, 44100, 551},
		{1, 44100, 8000, 1}, // floor of one sample
	}
	for _, c := range cases {
		y, err := Resample(make([]float64, c.n), c.src, c.dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(y) != c.want {
			t.Errorf("Resample(%d, %g, %g) produced %d samples, want %d", c.n, c.src, c.dst, len(y), c.want)
		}
	}
}

// TestResampleAntiAlias feeds a tone above the destination Nyquist: the
// low-pass stage must keep it out of the output instead of folding it.
func TestResampleAntiAlias(t *testing.T) {
	fs, n := 16000.0, 16000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 5000 * float64(i) / fs)
	}
	y, err := Resample(x, fs, 8000)
	if err != nil {
		t.Fatal(err)
	}
	in := RMS(x)
	out := RMS(y[100 : len(y)-100])
	if att := DB((out * out) / (in * in)); att > -40 {
		t.Errorf("5 kHz tone attenuated only %.1f dB by 16k→8k resample, want < -40 dB", att)
	}
}

// TestResampleUpsamplePreservesTone checks the upsampling path (no
// anti-alias stage) keeps an in-band tone intact.
func TestResampleUpsamplePreservesTone(t *testing.T) {
	fs, n := 8000.0, 8000
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 440 * float64(i) / fs)
	}
	y, err := Resample(x, fs, 16000)
	if err != nil {
		t.Fatal(err)
	}
	psd, err := WelchPSD(y[200:len(y)-200], 16000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if frac := psd.BandPower(350, 550) / psd.TotalPower(); frac < 0.95 {
		t.Errorf("440 Hz tone holds only %.2f of output power after upsampling", frac)
	}
}
