package dsp

// Convolve returns the full linear convolution of x and h
// (length len(x)+len(h)-1). It picks the direct or FFT algorithm based on
// the problem size.
func Convolve(x, h []float64) []float64 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	// Direct convolution wins for short kernels; the crossover is broad,
	// 64 is a safe, conservative pick for float64 on modern CPUs.
	if len(h) <= 64 || len(x) <= 64 {
		return convolveDirect(x, h)
	}
	return convolveFFT(x, h)
}

// ConvolveSame convolves x with h and returns only the first len(x)
// samples — the causal "filtered signal" view used when h is an impulse
// response applied to a stream.
func ConvolveSame(x, h []float64) []float64 {
	full := Convolve(x, h)
	if len(full) > len(x) {
		full = full[:len(x)]
	}
	return full
}

func convolveDirect(x, h []float64) []float64 {
	out := make([]float64, len(x)+len(h)-1)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

func convolveFFT(x, h []float64) []float64 {
	outLen := len(x) + len(h) - 1
	n := NextPow2(outLen)
	X := FFTReal(x, n)
	H := FFTReal(h, n)
	for i := range X {
		X[i] *= H[i]
	}
	out := IFFTReal(X)
	return out[:outLen]
}

// CrossCorrelate returns the cross-correlation r[lag] = sum_t a[t]*b[t+lag]
// for lag in [-(len(b)-1), len(a)-1], as a slice indexed by
// lag + len(b) - 1. The zero-lag index is therefore len(b)-1.
func CrossCorrelate(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	// r = conv(a, reverse(b)) gives exactly the lag layout documented above.
	rb := make([]float64, len(b))
	for i, v := range b {
		rb[len(b)-1-i] = v
	}
	return Convolve(a, rb)
}

// StreamConvolver applies a fixed FIR impulse response to an unbounded
// sample stream one sample at a time, maintaining internal history.
// It models an acoustic or electrical channel in the sample-clock simulator.
type StreamConvolver struct {
	h    []float64
	hist []float64 // circular history of inputs, len == len(h)
	pos  int
}

// NewStreamConvolver builds a streaming convolver for impulse response h.
// A nil or empty h behaves as a zero channel (output always 0).
func NewStreamConvolver(h []float64) *StreamConvolver {
	hc := make([]float64, len(h))
	copy(hc, h)
	return &StreamConvolver{h: hc, hist: make([]float64, len(h))}
}

// Process consumes one input sample and returns the convolved output sample.
func (s *StreamConvolver) Process(x float64) float64 {
	if len(s.h) == 0 {
		return 0
	}
	s.hist[s.pos] = x
	var acc float64
	// hist[pos] is x[t]; hist[pos-1] is x[t-1], wrapping around.
	idx := s.pos
	for _, hv := range s.h {
		acc += hv * s.hist[idx]
		idx--
		if idx < 0 {
			idx = len(s.hist) - 1
		}
	}
	s.pos++
	if s.pos == len(s.hist) {
		s.pos = 0
	}
	return acc
}

// ProcessBlock convolves a whole block, returning one output per input.
func (s *StreamConvolver) ProcessBlock(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s.Process(v)
	}
	return out
}

// Reset clears the convolver history.
func (s *StreamConvolver) Reset() {
	for i := range s.hist {
		s.hist[i] = 0
	}
	s.pos = 0
}

// Taps returns a copy of the impulse response.
func (s *StreamConvolver) Taps() []float64 {
	out := make([]float64, len(s.h))
	copy(out, s.h)
	return out
}
