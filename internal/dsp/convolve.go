package dsp

// Convolve returns the full linear convolution of x and h
// (length len(x)+len(h)-1). It picks the direct or FFT algorithm based on
// the problem size.
func Convolve(x, h []float64) []float64 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	// Direct convolution wins for short kernels; the crossover is broad,
	// 64 is a safe, conservative pick for float64 on modern CPUs.
	if len(h) <= 64 || len(x) <= 64 {
		return convolveDirect(x, h)
	}
	return convolveFFT(x, h)
}

// ConvolveSame convolves x with h and returns only the first len(x)
// samples — the causal "filtered signal" view used when h is an impulse
// response applied to a stream.
func ConvolveSame(x, h []float64) []float64 {
	full := Convolve(x, h)
	if len(full) > len(x) {
		full = full[:len(x)]
	}
	return full
}

func convolveDirect(x, h []float64) []float64 {
	out := make([]float64, len(x)+len(h)-1)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

// convolveFFT runs the product through the cached full-complex plan with
// pooled scratch; only the result slice is allocated. The full-complex
// transform (not RFFT) keeps the samples bit-identical to the seed
// implementation, which the golden traces pin.
func convolveFFT(x, h []float64) []float64 {
	outLen := len(x) + len(h) - 1
	n := NextPow2(outLen)
	p := PlanFFT(n)
	cx := getComplex(n)
	ch := getComplex(n)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	for i, v := range h {
		ch[i] = complex(v, 0)
	}
	p.Forward(cx)
	p.Forward(ch)
	MulSpectra(cx, cx, ch)
	p.Inverse(cx)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(cx[i])
	}
	putComplex(ch)
	putComplex(cx)
	return out
}

// CrossCorrelate returns the cross-correlation r[lag] = sum_t a[t]*b[t+lag]
// for lag in [-(len(b)-1), len(a)-1], as a slice indexed by
// lag + len(b) - 1. The zero-lag index is therefore len(b)-1.
func CrossCorrelate(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	// r = conv(a, reverse(b)) gives exactly the lag layout documented above.
	rb := make([]float64, len(b))
	for i, v := range b {
		rb[len(b)-1-i] = v
	}
	return Convolve(a, rb)
}

// StreamConvolver applies a fixed FIR impulse response to an unbounded
// sample stream one sample at a time, maintaining internal history.
// It models an acoustic or electrical channel in the sample-clock simulator.
//
// History is kept as a double-write ring (2*len(h) storage, each sample
// written to two slots len(h) apart) so the per-sample tap loop walks one
// contiguous slice with no wrap branch. For long impulse responses,
// ProcessBlock switches to partitioned overlap-save convolution through the
// cached FFT plan, which is how the simulator pre-renders room channels.
// All overlap-save scratch is owned by the struct, so the steady-state block
// path performs no allocation when driven through ProcessBlockInto.
type StreamConvolver struct {
	h    []float64
	hist []float64 // double-write ring, len == 2*len(h)
	pos  int       // write cursor in [0, len(h))

	// Lazily built overlap-save plan and scratch for the block path.
	plan *FFTPlan
	fftH []complex128 // FFT of h at size fftN
	fftN int          // FFT length (power of two)
	step int          // fresh samples produced per FFT block
	seg  []complex128 // segment transform scratch, len fftN
	ext  []float64    // history-prefixed input scratch, grows to fit
}

// olsMinKernel is the impulse-response length above which ProcessBlock
// switches from the per-sample loop to partitioned overlap-save. Short
// kernels are faster direct; the crossover is broad and this is a
// conservative pick (compare Convolve's direct/FFT threshold).
const olsMinKernel = 96

// NewStreamConvolver builds a streaming convolver for impulse response h.
// A nil or empty h behaves as a zero channel (output always 0).
func NewStreamConvolver(h []float64) *StreamConvolver {
	hc := make([]float64, len(h))
	copy(hc, h)
	return &StreamConvolver{h: hc, hist: make([]float64, 2*len(h))}
}

// Process consumes one input sample and returns the convolved output sample.
func (s *StreamConvolver) Process(x float64) float64 {
	m := len(s.h)
	if m == 0 {
		return 0
	}
	s.hist[s.pos] = x
	s.hist[s.pos+m] = x
	// The mirrored slot makes hist[pos+m-j] = x[t-j] for all j in [0, m).
	win := s.hist[s.pos+1 : s.pos+m+1 : s.pos+m+1]
	h := s.h
	n1 := m - 1
	var acc float64
	// Unrolled with a single accumulator and sequential adds: the summation
	// order is exactly the original tap loop's, so the output bits match.
	j := 0
	for ; j+3 < m; j += 4 {
		k := n1 - j
		acc += h[j] * win[k]
		acc += h[j+1] * win[k-1]
		acc += h[j+2] * win[k-2]
		acc += h[j+3] * win[k-3]
	}
	for ; j < m; j++ {
		acc += h[j] * win[n1-j]
	}
	s.pos++
	if s.pos == m {
		s.pos = 0
	}
	return acc
}

// ProcessBlock convolves a whole block, returning one output per input.
// Long impulse responses on long blocks take the partitioned overlap-save
// path; results match the per-sample loop to floating-point accuracy and
// the streaming history stays consistent, so Process/ProcessBlock calls can
// be interleaved freely.
func (s *StreamConvolver) ProcessBlock(x []float64) []float64 {
	out := make([]float64, len(x))
	s.ProcessBlockInto(out, x)
	return out
}

// ProcessBlockInto is ProcessBlock writing into caller-owned storage.
// len(out) must equal len(x); out must not alias the convolver's internals.
// Steady-state calls with a stable block size allocate nothing.
func (s *StreamConvolver) ProcessBlockInto(out, x []float64) {
	if len(out) != len(x) {
		panic("dsp: StreamConvolver.ProcessBlockInto length mismatch")
	}
	if len(s.h) >= olsMinKernel && len(x) >= 2*len(s.h) {
		s.processOverlapSave(out, x)
		return
	}
	for i, v := range x {
		out[i] = s.Process(v)
	}
}

// ensurePlan builds (once) the FFT plan and scratch for the overlap-save path.
func (s *StreamConvolver) ensurePlan() {
	if s.fftH != nil {
		return
	}
	n := NextPow2(4 * len(s.h))
	if n < 1024 {
		n = 1024
	}
	s.fftN = n
	s.step = n - (len(s.h) - 1)
	s.fftH = FFTReal(s.h, n)
	s.plan = PlanFFT(n)
	s.seg = make([]complex128, n)
}

// processOverlapSave runs partitioned overlap-save: the input (prefixed
// with the streaming history) is cut into overlapping FFT-sized segments,
// each multiplied by the cached kernel spectrum, and the alias-free tail of
// every inverse transform is the output. One O(n log n) pass per block
// replaces len(h) multiplies per sample.
func (s *StreamConvolver) processOverlapSave(out, x []float64) {
	s.ensurePlan()
	m := len(s.h)
	overlap := m - 1
	// ext = [last m-1 inputs, x...] so segment b sees the history it needs.
	if cap(s.ext) < overlap+len(x) {
		s.ext = make([]float64, overlap+len(x))
	}
	ext := s.ext[:overlap+len(x)]
	for i := 0; i < overlap; i++ {
		// Chronological history: the sample j pushes ago lives at
		// pos-1-j (mod m); the double-write mirror makes pos+m-1-j safe.
		ext[i] = s.hist[s.pos+m-overlap+i]
	}
	copy(ext[overlap:], x)

	seg := s.seg
	for b := 0; b < len(x); b += s.step {
		n := len(ext) - b
		if n > s.fftN {
			n = s.fftN
		}
		for i, v := range ext[b : b+n] {
			seg[i] = complex(v, 0)
		}
		for i := n; i < s.fftN; i++ {
			seg[i] = 0
		}
		s.plan.Forward(seg)
		MulSpectra(seg, seg, s.fftH)
		s.plan.Inverse(seg)
		// The first overlap outputs are circularly aliased; the rest are
		// exact linear convolution.
		lim := min(s.step, len(x)-b)
		for i := 0; i < lim; i++ {
			out[b+i] = real(seg[overlap+i])
		}
	}

	// Restore the streaming history: the last m inputs, chronologically,
	// with the write cursor on the oldest slot.
	tail := ext[len(ext)-m:]
	copy(s.hist[:m], tail)
	copy(s.hist[m:], tail)
	s.pos = 0
}

// Reset clears the convolver history.
func (s *StreamConvolver) Reset() {
	for i := range s.hist {
		s.hist[i] = 0
	}
	s.pos = 0
}

// Taps returns a copy of the impulse response.
func (s *StreamConvolver) Taps() []float64 {
	out := make([]float64, len(s.h))
	copy(out, s.h)
	return out
}
