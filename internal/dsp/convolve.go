package dsp

// Convolve returns the full linear convolution of x and h
// (length len(x)+len(h)-1). It picks the direct or FFT algorithm based on
// the problem size.
func Convolve(x, h []float64) []float64 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	// Direct convolution wins for short kernels; the crossover is broad,
	// 64 is a safe, conservative pick for float64 on modern CPUs.
	if len(h) <= 64 || len(x) <= 64 {
		return convolveDirect(x, h)
	}
	return convolveFFT(x, h)
}

// ConvolveSame convolves x with h and returns only the first len(x)
// samples — the causal "filtered signal" view used when h is an impulse
// response applied to a stream.
func ConvolveSame(x, h []float64) []float64 {
	full := Convolve(x, h)
	if len(full) > len(x) {
		full = full[:len(x)]
	}
	return full
}

func convolveDirect(x, h []float64) []float64 {
	out := make([]float64, len(x)+len(h)-1)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		for j, hv := range h {
			out[i+j] += xv * hv
		}
	}
	return out
}

func convolveFFT(x, h []float64) []float64 {
	outLen := len(x) + len(h) - 1
	n := NextPow2(outLen)
	X := FFTReal(x, n)
	H := FFTReal(h, n)
	for i := range X {
		X[i] *= H[i]
	}
	out := IFFTReal(X)
	return out[:outLen]
}

// CrossCorrelate returns the cross-correlation r[lag] = sum_t a[t]*b[t+lag]
// for lag in [-(len(b)-1), len(a)-1], as a slice indexed by
// lag + len(b) - 1. The zero-lag index is therefore len(b)-1.
func CrossCorrelate(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	// r = conv(a, reverse(b)) gives exactly the lag layout documented above.
	rb := make([]float64, len(b))
	for i, v := range b {
		rb[len(b)-1-i] = v
	}
	return Convolve(a, rb)
}

// StreamConvolver applies a fixed FIR impulse response to an unbounded
// sample stream one sample at a time, maintaining internal history.
// It models an acoustic or electrical channel in the sample-clock simulator.
//
// History is kept as a double-write ring (2*len(h) storage, each sample
// written to two slots len(h) apart) so the per-sample tap loop walks one
// contiguous slice with no wrap branch. For long impulse responses,
// ProcessBlock switches to partitioned overlap-save convolution on the
// existing FFT, which is how the simulator pre-renders room channels.
type StreamConvolver struct {
	h    []float64
	hist []float64 // double-write ring, len == 2*len(h)
	pos  int       // write cursor in [0, len(h))

	// Lazily built overlap-save plan for the block path.
	fftH []complex128 // FFT of h at size fftN
	fftN int          // FFT length (power of two)
	step int          // fresh samples produced per FFT block
}

// olsMinKernel is the impulse-response length above which ProcessBlock
// switches from the per-sample loop to partitioned overlap-save. Short
// kernels are faster direct; the crossover is broad and this is a
// conservative pick (compare Convolve's direct/FFT threshold).
const olsMinKernel = 96

// NewStreamConvolver builds a streaming convolver for impulse response h.
// A nil or empty h behaves as a zero channel (output always 0).
func NewStreamConvolver(h []float64) *StreamConvolver {
	hc := make([]float64, len(h))
	copy(hc, h)
	return &StreamConvolver{h: hc, hist: make([]float64, 2*len(h))}
}

// Process consumes one input sample and returns the convolved output sample.
func (s *StreamConvolver) Process(x float64) float64 {
	m := len(s.h)
	if m == 0 {
		return 0
	}
	s.hist[s.pos] = x
	s.hist[s.pos+m] = x
	// The mirrored slot makes hist[pos+m-j] = x[t-j] for all j in [0, m).
	newest := s.pos + m
	var acc float64
	for j, hv := range s.h {
		acc += hv * s.hist[newest-j]
	}
	s.pos++
	if s.pos == m {
		s.pos = 0
	}
	return acc
}

// ProcessBlock convolves a whole block, returning one output per input.
// Long impulse responses on long blocks take the partitioned overlap-save
// path; results match the per-sample loop to floating-point accuracy and
// the streaming history stays consistent, so Process/ProcessBlock calls can
// be interleaved freely.
func (s *StreamConvolver) ProcessBlock(x []float64) []float64 {
	if len(s.h) >= olsMinKernel && len(x) >= 2*len(s.h) {
		return s.processOverlapSave(x)
	}
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = s.Process(v)
	}
	return out
}

// ensurePlan builds (once) the FFT plan for the overlap-save path.
func (s *StreamConvolver) ensurePlan() {
	if s.fftH != nil {
		return
	}
	n := NextPow2(4 * len(s.h))
	if n < 1024 {
		n = 1024
	}
	s.fftN = n
	s.step = n - (len(s.h) - 1)
	s.fftH = FFTReal(s.h, n)
}

// processOverlapSave runs partitioned overlap-save: the input (prefixed
// with the streaming history) is cut into overlapping FFT-sized segments,
// each multiplied by the cached kernel spectrum, and the alias-free tail of
// every inverse transform is the output. One O(n log n) pass per block
// replaces len(h) multiplies per sample.
func (s *StreamConvolver) processOverlapSave(x []float64) []float64 {
	s.ensurePlan()
	m := len(s.h)
	overlap := m - 1
	// ext = [last m-1 inputs, x...] so segment b sees the history it needs.
	ext := make([]float64, overlap+len(x))
	for i := 0; i < overlap; i++ {
		// Chronological history: the sample j pushes ago lives at
		// pos-1-j (mod m); the double-write mirror makes pos+m-1-j safe.
		ext[i] = s.hist[s.pos+m-overlap+i]
	}
	copy(ext[overlap:], x)

	out := make([]float64, len(x))
	seg := make([]float64, s.fftN)
	for b := 0; b < len(x); b += s.step {
		n := copy(seg, ext[b:])
		for i := n; i < s.fftN; i++ {
			seg[i] = 0
		}
		X := FFTReal(seg, s.fftN)
		for k := range X {
			X[k] *= s.fftH[k]
		}
		y := IFFTReal(X)
		// The first overlap outputs are circularly aliased; the rest are
		// exact linear convolution.
		lim := min(s.step, len(x)-b)
		copy(out[b:b+lim], y[overlap:overlap+lim])
	}

	// Restore the streaming history: the last m inputs, chronologically,
	// with the write cursor on the oldest slot.
	tail := ext[len(ext)-m:]
	copy(s.hist[:m], tail)
	copy(s.hist[m:], tail)
	s.pos = 0
	return out
}

// Reset clears the convolver history.
func (s *StreamConvolver) Reset() {
	for i := range s.hist {
		s.hist[i] = 0
	}
	s.pos = 0
}

// Taps returns a copy of the impulse response.
func (s *StreamConvolver) Taps() []float64 {
	out := make([]float64, len(s.h))
	copy(out, s.h)
	return out
}
