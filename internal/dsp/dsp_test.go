package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBConversions(t *testing.T) {
	if got := DB(10); math.Abs(got-10) > 1e-12 {
		t.Errorf("DB(10) = %g, want 10", got)
	}
	if got := DB(1); got != 0 {
		t.Errorf("DB(1) = %g, want 0", got)
	}
	if got := DB(0); got > -190 {
		t.Errorf("DB(0) = %g, should be very negative but finite", got)
	}
	if math.IsInf(DB(0), -1) {
		t.Error("DB(0) should be finite")
	}
	if got := FromDB(20); math.Abs(got-100) > 1e-9 {
		t.Errorf("FromDB(20) = %g, want 100", got)
	}
	if got := AmpDB(10); math.Abs(got-20) > 1e-12 {
		t.Errorf("AmpDB(10) = %g, want 20", got)
	}
	if got := AmpDB(-10); math.Abs(got-20) > 1e-12 {
		t.Errorf("AmpDB(-10) = %g, want 20 (magnitude)", got)
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		p := math.Abs(v) + 1e-6
		return math.Abs(FromDB(DB(p))-p) < 1e-9*p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEnergyPowerRMS(t *testing.T) {
	x := []float64{3, 4}
	if got := Energy(x); got != 25 {
		t.Errorf("Energy = %g, want 25", got)
	}
	if got := Power(x); got != 12.5 {
		t.Errorf("Power = %g, want 12.5", got)
	}
	if got := RMS(x); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %g", got)
	}
	if Power(nil) != 0 {
		t.Error("Power(nil) should be 0")
	}
}

func TestScaleAddSub(t *testing.T) {
	x := []float64{1, 2}
	Scale(x, 2)
	if x[0] != 2 || x[1] != 4 {
		t.Errorf("Scale failed: %v", x)
	}
	s := Add([]float64{1, 2, 3}, []float64{10, 20})
	if len(s) != 2 || s[0] != 11 || s[1] != 22 {
		t.Errorf("Add = %v", s)
	}
	d := Sub([]float64{5, 5}, []float64{1, 2, 3})
	if len(d) != 2 || d[0] != 4 || d[1] != 3 {
		t.Errorf("Sub = %v", d)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{0.1, -0.5, 0.25}
	Normalize(x, 1)
	if math.Abs(x[1]+1) > 1e-12 {
		t.Errorf("Normalize peak = %g, want -1", x[1])
	}
	z := []float64{0, 0}
	Normalize(z, 1)
	if z[0] != 0 {
		t.Error("Normalize of silence should be unchanged")
	}
}

func TestClamp(t *testing.T) {
	x := []float64{2, -3, 0.5}
	Clamp(x, 1)
	want := []float64{1, -1, 0.5}
	for i := range x {
		if x[i] != want[i] {
			t.Errorf("Clamp[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) should be true", n)
		}
	}
	for _, n := range []int{0, -4, 3, 12} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) should be false", n)
		}
	}
}

func TestWelchPSDTone(t *testing.T) {
	fs := 8000.0
	n := 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 1000 * float64(i) / fs)
	}
	psd, err := WelchPSD(x, fs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	inBand := psd.BandPower(900, 1100)
	outBand := psd.BandPower(2000, 4000)
	if inBand < 100*outBand {
		t.Errorf("tone power not concentrated: in=%g out=%g", inBand, outBand)
	}
}

func TestWelchPSDWhiteNoiseFlat(t *testing.T) {
	fs := 8000.0
	x := randFloats(65536, 99)
	psd, err := WelchPSD(x, fs, 512)
	if err != nil {
		t.Fatal(err)
	}
	low := psd.BandPower(200, 1200)
	high := psd.BandPower(2200, 3200)
	ratio := low / high
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("white noise PSD not flat: low/high = %g", ratio)
	}
}

func TestWelchPSDErrors(t *testing.T) {
	if _, err := WelchPSD(nil, 8000, 256); err == nil {
		t.Error("empty input should error")
	}
	if _, err := WelchPSD([]float64{1}, 8000, 0); err == nil {
		t.Error("zero segment length should error")
	}
}

func TestWelchPSDShortInput(t *testing.T) {
	// Shorter than one segment must still produce an estimate.
	x := randFloats(100, 7)
	psd, err := WelchPSD(x, 8000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if psd.TotalPower() <= 0 {
		t.Error("short-input PSD should have positive power")
	}
}

func TestPSDBandEnergies(t *testing.T) {
	fs := 8000.0
	n := 8192
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 500 * float64(i) / fs)
	}
	psd, err := WelchPSD(x, fs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	bands := psd.BandEnergies(4, 4000) // [0,1k) [1k,2k) [2k,3k) [3k,4k)
	best := 0
	for i := range bands {
		if bands[i] > bands[best] {
			best = i
		}
	}
	if best != 0 {
		t.Errorf("500 Hz tone should dominate band 0, got band %d (%v)", best, bands)
	}
	if got := psd.BandEnergies(0, 4000); len(got) != 0 {
		t.Error("zero bands should return empty")
	}
}

func TestParsevalPSDProperty(t *testing.T) {
	// Total PSD power approximates the signal variance for white noise.
	x := randFloats(32768, 5)
	psd, err := WelchPSD(x, 8000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	ratio := psd.TotalPower() / Power(x)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("PSD total power / signal power = %g, want ~1", ratio)
	}
}

func TestResampleDownUp(t *testing.T) {
	fs := 48000.0
	n := 4800
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 440 * float64(i) / fs)
	}
	y, err := Resample(x, fs, 8000)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := n * 8000 / 48000
	if len(y) < wantLen-2 || len(y) > wantLen+2 {
		t.Errorf("resampled length %d, want ~%d", len(y), wantLen)
	}
	// The 440 Hz tone must survive: check dominant frequency.
	psd, err := WelchPSD(y[100:], 8000, 512)
	if err != nil {
		t.Fatal(err)
	}
	inBand := psd.BandPower(350, 550)
	total := psd.TotalPower()
	if inBand < 0.8*total {
		t.Errorf("tone not preserved by resampling: in-band fraction %g", inBand/total)
	}
}

func TestResampleIdentity(t *testing.T) {
	x := randFloats(100, 1)
	y, err := Resample(x, 8000, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if !floatsClose(x, y, 0) {
		t.Error("same-rate resample should copy")
	}
}

func TestResampleErrors(t *testing.T) {
	if _, err := Resample([]float64{1}, 0, 8000); err == nil {
		t.Error("zero src rate should error")
	}
	if _, err := Resample([]float64{1}, 8000, -1); err == nil {
		t.Error("negative dst rate should error")
	}
	y, err := Resample(nil, 8000, 4000)
	if err != nil || y != nil {
		t.Error("empty input should return nil, nil")
	}
}

func TestBiquadLowPass(t *testing.T) {
	fs := 8000.0
	bq, err := NewLowPassBiquad(500, fs, 0.7071)
	if err != nil {
		t.Fatal(err)
	}
	if g := bq.Response(50, fs); math.Abs(g-1) > 0.05 {
		t.Errorf("LP gain at 50 Hz = %g, want ~1", g)
	}
	if g := bq.Response(3500, fs); g > 0.05 {
		t.Errorf("LP gain at 3.5 kHz = %g, want ~0", g)
	}
}

func TestBiquadHighPass(t *testing.T) {
	fs := 8000.0
	bq, err := NewHighPassBiquad(500, fs, 0.7071)
	if err != nil {
		t.Fatal(err)
	}
	if g := bq.Response(3500, fs); math.Abs(g-1) > 0.05 {
		t.Errorf("HP gain at 3.5 kHz = %g, want ~1", g)
	}
	if g := bq.Response(50, fs); g > 0.05 {
		t.Errorf("HP gain at 50 Hz = %g, want ~0", g)
	}
}

func TestBiquadPeak(t *testing.T) {
	fs := 8000.0
	bq, err := NewPeakBiquad(1000, fs, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	peak := bq.Response(1000, fs)
	want := math.Pow(10, 6.0/20)
	if math.Abs(peak-want) > 0.1 {
		t.Errorf("peak gain = %g, want ~%g", peak, want)
	}
	if g := bq.Response(100, fs); math.Abs(g-1) > 0.1 {
		t.Errorf("far-field gain = %g, want ~1", g)
	}
}

func TestBiquadErrors(t *testing.T) {
	if _, err := NewLowPassBiquad(5000, 8000, 0.7); err == nil {
		t.Error("corner above Nyquist should error")
	}
	if _, err := NewHighPassBiquad(100, -1, 0.7); err == nil {
		t.Error("negative rate should error")
	}
	if _, err := NewPeakBiquad(100, 8000, 0, 3); err == nil {
		t.Error("zero q should error")
	}
}

func TestBiquadProcessMatchesResponse(t *testing.T) {
	// Drive the filter with a tone and verify steady-state amplitude
	// matches the analytic response.
	fs := 8000.0
	bq, err := NewLowPassBiquad(1000, fs, 0.7071)
	if err != nil {
		t.Fatal(err)
	}
	f := 500.0
	n := 4000
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = bq.Process(math.Sin(2 * math.Pi * f * float64(i) / fs))
	}
	// Steady state: last half.
	got := RMS(out[n/2:]) * math.Sqrt2
	want := bq.Response(f, fs)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("measured gain %g, analytic %g", got, want)
	}
}

func TestBiquadChain(t *testing.T) {
	fs := 8000.0
	b1, _ := NewHighPassBiquad(100, fs, 0.7071)
	b2, _ := NewLowPassBiquad(3000, fs, 0.7071)
	ch := NewBiquadChain(b1, b2)
	if g := ch.Response(1000, fs); math.Abs(g-1) > 0.1 {
		t.Errorf("chain mid-band gain = %g, want ~1", g)
	}
	if g := ch.Response(10, fs); g > 0.1 {
		t.Errorf("chain gain at 10 Hz = %g, want ~0", g)
	}
	x := randFloats(64, 3)
	y := ch.ProcessBlock(x)
	if len(y) != len(x) {
		t.Error("chain block length mismatch")
	}
	ch.Reset()
	y2 := ch.ProcessBlock(x)
	if !floatsClose(y, y2, 1e-12) {
		t.Error("chain Reset should restore initial state")
	}
}
