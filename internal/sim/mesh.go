package sim

import (
	"fmt"
	"math"
	"math/rand"

	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/internal/graph"
	"mute/internal/mesh"
	"mute/internal/telemetry"
)

// MeshScenario describes a dense-mesh cancellation run: one noise source
// (optionally walking), a fixed ear, Relays relay microphones scattered
// over the floor, and a seeded fault schedule. The acoustic model is
// deliberately the anechoic delay-line one — every leg is a pure
// time-of-flight delay of the clean source — because the quantity under
// test is association quality (which relay, switched when, blended how),
// and delay lines keep a 200-relay mesh with a moving source cheap enough
// to sweep. Reverberant legs would scale every cell by relays × RIR
// length without changing the ordering the experiment measures.
type MeshScenario struct {
	// SampleRate in Hz (default 8000) and Duration in seconds (required).
	SampleRate float64
	Duration   float64
	// Relays is the mesh size (required). Positions are a seeded uniform
	// scatter over the room interior.
	Relays int
	// Seed drives relay placement, the noise, the fault schedule, and the
	// per-relay background loss processes.
	Seed uint64
	// NoiseAmp scales the source (default 0.5).
	NoiseAmp float64

	// Walking moves the source along a fixed ping-pong path at WalkSpeed
	// m/s (default 1.2); otherwise the source sits at the path's start.
	Walking   bool
	WalkSpeed float64

	// ChurnPerMin is the crash churn handed to the fault injector (0 =
	// static mesh). When churn is on, one flapping relay is pinned next to
	// the source path — the adversarial case hysteresis exists for.
	ChurnPerMin float64
	// BgLoss is each relay link's background loss rate (default 0.01),
	// delivered in short bursts.
	BgLoss float64

	// Naive switches the mesh supervisor to the per-round argmax baseline.
	Naive bool

	// Telemetry and Trace are optional observation hooks (result-neutral).
	Telemetry *telemetry.Registry
	Trace     *telemetry.Trace
}

// MeshResult is one mesh run's outcome.
type MeshResult struct {
	// ResidualDB is residual vs uncancelled power at the ear over the
	// second half of the run (negative is better).
	ResidualDB float64
	// Report is the mesh supervisor's accounting.
	Report mesh.Report
	// MaxLeadSamples is the largest geometric lookahead any relay could
	// offer during the run (the non-causal budget the pipeline planned
	// with).
	MaxLeadSamples int
	// FaultEvents is the number of link transitions the injector replayed.
	FaultEvents int
}

// room geometry shared by every mesh run: a 12 m floor with the ear at
// the center and the source path offset from it. The offset matters: a
// path through the ear would have source→ear flight time collapse to
// zero at the crossing, where no relay anywhere can physically lead the
// ear and lookahead-based cancellation is impossible for every policy.
var (
	meshEar       = acoustics.Point{X: 6, Y: 6}
	meshPathStart = acoustics.Point{X: 2, Y: 3}
	meshPathEnd   = acoustics.Point{X: 10, Y: 3}
)

// RunMesh builds the scenario, wires the mesh supervisor into the
// standard cancellation graph as its reference source, and scores the
// run.
func RunMesh(sc MeshScenario) (*MeshResult, error) {
	if sc.Duration <= 0 {
		return nil, fmt.Errorf("sim: mesh duration %g must be positive", sc.Duration)
	}
	if sc.Relays <= 0 {
		return nil, fmt.Errorf("sim: mesh needs relays, got %d", sc.Relays)
	}
	if sc.SampleRate <= 0 {
		sc.SampleRate = 8000
	}
	if sc.NoiseAmp <= 0 {
		sc.NoiseAmp = 0.5
	}
	if sc.WalkSpeed <= 0 {
		sc.WalkSpeed = 1.2
	}
	if sc.BgLoss < 0 {
		return nil, fmt.Errorf("sim: background loss %g must be non-negative", sc.BgLoss)
	}
	fs := sc.SampleRate
	n := int(sc.Duration * fs)

	// Relay scatter. rng draws are position-only so layouts are identical
	// across policies sharing a seed.
	rng := rand.New(rand.NewSource(int64(sc.Seed)))
	positions := make([]acoustics.Point, sc.Relays)
	for i := range positions {
		positions[i] = acoustics.Point{X: 0.75 + rng.Float64()*10.5, Y: 0.75 + rng.Float64()*10.5}
	}

	// Source trajectory: ping-pong along the path at walking speed.
	pathLen := meshPathStart.Dist(meshPathEnd)
	srcAt := func(t int64) acoustics.Point {
		if !sc.Walking {
			return meshPathStart
		}
		d := math.Mod(sc.WalkSpeed*float64(t)/fs, 2*pathLen)
		if d > pathLen {
			d = 2*pathLen - d
		}
		f := d / pathLen
		return acoustics.Point{
			X: meshPathStart.X + f*(meshPathEnd.X-meshPathStart.X),
			Y: meshPathStart.Y + f*(meshPathEnd.Y-meshPathStart.Y),
		}
	}

	// The largest lookahead any relay can offer is the source→ear flight
	// time itself (a relay standing on the source); plan the non-causal
	// budget from the worst case along the path.
	maxEarDist := meshEar.Dist(meshPathStart)
	if d := meshEar.Dist(meshPathEnd); d > maxEarDist {
		maxEarDist = d
	}
	maxLead := int(math.Ceil(maxEarDist/acoustics.SpeedOfSound*fs)) + 8

	// Clean source and the ear's acoustic leg (time-varying delay line).
	// Low-passed machine noise, as in the outage experiment: the walking
	// source sweeps every leg's time of flight continuously, and a
	// tracking lag of δ samples costs residual power that scales with
	// (frequency·δ)² — wideband noise would bury the association effects
	// under tracking error no policy can remove.
	src, err := audio.NewBandLimitedNoise(sc.Seed+1, fs, sc.NoiseAmp, 1200)
	if err != nil {
		return nil, err
	}
	clean := audio.Render(src, n)
	// Fractional (linearly interpolated) delay lines: a walking source
	// sweeps the time of flight continuously, and quantizing it to whole
	// samples would turn smooth tap drift into hard 1-sample jumps the
	// adaptive filter has to re-converge after.
	delayed := func(t int64, d float64) float64 {
		ft := float64(t) - d
		if ft <= 0 {
			return 0
		}
		i := int(ft)
		frac := ft - float64(i)
		if i+1 >= len(clean) {
			return clean[len(clean)-1]
		}
		return clean[i]*(1-frac) + clean[i+1]*frac
	}
	delayOf := func(from acoustics.Point, to acoustics.Point) float64 {
		return from.Dist(to) / acoustics.SpeedOfSound * fs
	}
	earSig := make([]float64, n)
	for t := 0; t < n; t++ {
		earSig[t] = delayed(int64(t), delayOf(srcAt(int64(t)), meshEar))
	}

	// Fault schedule: crash churn, plus flappers pinned along the path
	// when churn is on — the adversarial placement hysteresis exists for.
	// The flap period is shorter than the heartbeat timeout, so a flapper
	// never expires: it stays live, acoustically tempting, and delivers
	// concealment to whoever associates with it.
	icfg := mesh.InjectorConfig{
		Seed:              int64(sc.Seed) + 7,
		Relays:            sc.Relays,
		Duration:          int64(n),
		SampleRate:        fs,
		ChurnPerMin:       sc.ChurnPerMin,
		FlapPeriodSamples: 1024,
	}
	if sc.ChurnPerMin > 0 {
		for _, f := range []float64{0.25, 0.5, 0.75} {
			at := acoustics.Point{
				X: meshPathStart.X + f*(meshPathEnd.X-meshPathStart.X),
				Y: meshPathStart.Y + f*(meshPathEnd.Y-meshPathStart.Y),
			}
			flapper, bestD := 0, math.Inf(1)
			for i, p := range positions {
				if d := at.Dist(p); d < bestD {
					flapper, bestD = i, d
				}
			}
			icfg.FlapperAt = append(icfg.FlapperAt, flapper)
		}
	}
	inj := mesh.NewInjector(icfg, positions)

	// Per-relay background burst loss: independent seeded dropout
	// processes (48-sample bursts at the configured rate).
	const burstLen = 48
	bgDown := make([]int, sc.Relays)
	lossRNG := make([]*rand.Rand, sc.Relays)
	for i := range lossRNG {
		lossRNG[i] = rand.New(rand.NewSource(int64(sc.Seed)*131 + int64(i)))
	}
	bgLoss := sc.BgLoss
	if sc.BgLoss == 0 {
		bgLoss = 0.01
	}
	pBurst := bgLoss / burstLen

	mcfg := mesh.Config{
		Capacity:        sc.Relays,
		EarPos:          meshEar,
		// 128 ms window: long enough to steady PHAT lags on band-limited
		// noise, short enough that a walking source's changing TDOA is not
		// smeared across the estimate.
		WindowSamples:   1024,
		IntervalSamples: 512,
		MaxLagSamples:   240,
		// A relay must lead the ear by at least a millisecond to be worth
		// associating with; an incumbent that falls below this floor is
		// failing and triggers the distress/rescue path.
		MinLeadSamples: 8,
		// Genuine correlations against this band-limited source peak near
		// 0.3; spurious PHAT flukes sit just above the package default of
		// 0.05, and in a wide distress cohort the lag argmax is usually
		// such a fluke — gate them out.
		MinPeak:    0.12,
		CandidateK: 8,
		// Slow concealment EWMA: a relay flapping at ~1024-sample period
		// must stay marked unhealthy through its up-phases, not be
		// forgiven the moment its stream briefly recovers.
		HealthAlpha: 1.0 / 2048,
		CellSize:        1.5,
		MinX:            0, MinY: 0, MaxX: 12, MaxY: 12,
		// Band-limited noise widens the PHAT peak, so the switch margin
		// sits above the per-round lag jitter: a challenger must out-lead
		// the incumbent by more than measurement noise, for a full dwell,
		// before a handoff is worth its re-adaptation transient.
		DwellRounds:         3,
		SwitchMarginSamples: 16,
		Naive:               sc.Naive,
	}
	sup, err := mesh.NewSupervisor(mcfg, sc.Telemetry, sc.Trace)
	if err != nil {
		return nil, err
	}
	for i, p := range positions {
		if _, err := sup.Join(int64(i), p); err != nil {
			return nil, err
		}
	}

	prevDown := make([]bool, sc.Relays)
	var srcPos acoustics.Point
	ref := &mesh.Source{
		Sup: sup,
		Tick: func(t int64) {
			inj.Advance(t)
			srcPos = srcAt(t)
			for r := 0; r < sc.Relays; r++ {
				if bgDown[r] > 0 {
					bgDown[r]--
				} else if lossRNG[r].Float64() < pBurst {
					bgDown[r] = burstLen
				}
				down := inj.Down(r)
				if prevDown[r] && !down {
					// The relay's link recovered: it re-registers (a rejoin
					// if the mesh already expired it).
					if _, err := sup.Join(int64(r), positions[r]); err != nil {
						panic(err) // capacity cannot be exceeded by a rejoin
					}
				}
				prevDown[r] = down
			}
		},
		Local: func(t int64) float64 { return earSig[t] },
		Feed: func(slot int, t int64) (float64, bool) {
			if inj.Down(slot) || bgDown[slot] > 0 {
				return 0, false
			}
			return delayed(t, delayOf(srcPos, positions[slot])), true
		},
	}

	residual := make([]float64, n)
	secPath := []float64{0.85, 0.22, 0.06}
	pl, err := graph.Build(graph.Config{
		SampleRate: fs,
		Lookahead:  maxLead,
		Canceller: graph.CancellerParams{
			// The mesh legs are delay lines: the true response is a short
			// interpolation kernel at the lead plus the 3-tap secondary
			// path, so a short causal tail and a brisk step keep the filter
			// tracking the walking source instead of averaging over it.
			CausalTaps:    32,
			Mu:            0.35,
			SecondaryPath: secPath,
			LossAware:     true,
		},
		Reference:   ref,
		Ambient:     &meshAmbient{sig: earSig},
		SecondaryIR: secPath,
		Residual:    residual,
		Trace:       sc.Trace,
		Telemetry:   sc.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	if err := pl.Run(n, 512); err != nil {
		return nil, err
	}

	var resPow, priPow float64
	for t := n / 2; t < n; t++ {
		resPow += residual[t] * residual[t]
		priPow += earSig[t] * earSig[t]
	}
	db := 10 * math.Log10((resPow+1e-12)/(priPow+1e-12))
	return &MeshResult{
		ResidualDB:     db,
		Report:         sup.Report(),
		MaxLeadSamples: maxLead,
		FaultEvents:    inj.Events(),
	}, nil
}

// meshAmbient binds the precomputed ear signal as the graph's acoustic
// leg: the open-ear and under-cup signals coincide (no passive cup
// attenuation), as in the other synthetic-deployment experiments.
type meshAmbient struct {
	sig []float64
	i   int
}

func (a *meshAmbient) Next(_ float64) (local, cup float64) {
	v := a.sig[a.i]
	a.i++
	return v, v
}
