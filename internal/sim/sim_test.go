package sim

import (
	"math"
	"testing"

	"mute/internal/acoustics"
	"mute/internal/audio"
)

const fs = 8000.0

func whiteScene(seed uint64) Scene {
	return DefaultScene(audio.NewWhiteNoise(seed, fs, 0.5))
}

func TestSceneValidate(t *testing.T) {
	s := whiteScene(1)
	if err := s.Validate(); err != nil {
		t.Errorf("default scene invalid: %v", err)
	}
	cases := []func(*Scene){
		func(s *Scene) { s.Sources = nil },
		func(s *Scene) { s.Sources[0].Pos = acoustics.Point{X: 99} },
		func(s *Scene) { s.Sources[0].Gen = nil },
		func(s *Scene) { s.Sources[0].Gen = audio.NewSilence(44100) },
		func(s *Scene) { s.RelayPos = acoustics.Point{X: -1} },
		func(s *Scene) { s.EarPos = acoustics.Point{Y: 99} },
		func(s *Scene) { s.Room.Absorption = 0 },
	}
	for i, mutate := range cases {
		bad := whiteScene(1)
		// Deep-copy sources so mutations do not leak between cases.
		bad.Sources = append([]Source(nil), bad.Sources...)
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestSceneLookahead(t *testing.T) {
	s := whiteScene(1)
	la := s.LookaheadSamples()
	// Source→ear ≈ 3.5 m, source→relay = 0.5 m: Δ = 3 m ≈ 8.8 ms ≈ 70
	// samples at 8 kHz.
	if la < 60 || la > 80 {
		t.Errorf("lookahead = %d samples, want ≈ 70", la)
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		MUTEHollow:  "MUTE_Hollow",
		MUTEPassive: "MUTE+Passive",
		BoseActive:  "Bose_Active",
		BoseOverall: "Bose_Overall",
		PassiveOnly: "Passive_Only",
		Scheme(42):  "Scheme(42)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestRunValidatesParams(t *testing.T) {
	p := DefaultParams(whiteScene(1))
	p.Duration = 0
	if _, err := Run(p, MUTEHollow); err == nil {
		t.Error("zero duration should error")
	}
	p = DefaultParams(whiteScene(1))
	p.CausalTaps = 0
	if _, err := Run(p, MUTEHollow); err == nil {
		t.Error("zero causal taps should error")
	}
	p = DefaultParams(whiteScene(1))
	p.Mu = 0
	if _, err := Run(p, MUTEHollow); err == nil {
		t.Error("zero mu should error")
	}
	p = DefaultParams(whiteScene(1))
	p.ExtraReferenceDelay = -1
	if _, err := Run(p, MUTEHollow); err == nil {
		t.Error("negative extra delay should error")
	}
	p = DefaultParams(Scene{})
	if _, err := Run(p, MUTEHollow); err == nil {
		t.Error("invalid scene should error")
	}
}

func TestMUTEHollowCancelsWideband(t *testing.T) {
	p := DefaultParams(whiteScene(1))
	r, err := Run(p, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	full, err := r.CancellationDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if full > -6 {
		t.Errorf("MUTE_Hollow full-band cancellation = %.1f dB, want < -6", full)
	}
	high, err := r.CancellationDB(1000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if high > -4 {
		t.Errorf("MUTE_Hollow must cancel above 1 kHz too, got %.1f dB", high)
	}
	if r.UsedNonCausalTaps == 0 {
		t.Error("MUTE_Hollow should have run with non-causal taps")
	}
	if !r.Budget.DeadlineMet {
		t.Error("the default scene provides ample lookahead; deadline should be met")
	}
}

func TestBoseActiveLowFrequencyOnly(t *testing.T) {
	// The defining headphone behaviour (Figure 12): active gain below
	// 1 kHz, essentially none above.
	p := DefaultParams(whiteScene(1))
	r, err := Run(p, BoseActive)
	if err != nil {
		t.Fatal(err)
	}
	low, err := r.ActiveGainDB(50, 1000)
	if err != nil {
		t.Fatal(err)
	}
	high, err := r.ActiveGainDB(1500, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if low > -2 {
		t.Errorf("Bose active low-band gain = %.1f dB, want < -2", low)
	}
	if high < -2 {
		t.Errorf("Bose active high-band gain = %.1f dB, should be ~0 (no cancellation)", high)
	}
	if low >= high {
		t.Errorf("Bose active: low band (%.1f) should beat high band (%.1f)", low, high)
	}
}

func TestSchemeOrderingMatchesPaper(t *testing.T) {
	// Figure 12's ordering: MUTE+Passive best; Bose_Overall and
	// MUTE_Hollow comparable (within a few dB); passive alone worst of
	// the covered-ear schemes.
	get := func(s Scheme) float64 {
		p := DefaultParams(whiteScene(1))
		r, err := Run(p, s)
		if err != nil {
			t.Fatal(err)
		}
		db, err := r.CancellationDB(50, 4000)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	mutePassive := get(MUTEPassive)
	boseOverall := get(BoseOverall)
	muteHollow := get(MUTEHollow)
	passiveOnly := get(PassiveOnly)
	if mutePassive >= boseOverall {
		t.Errorf("MUTE+Passive (%.1f) should beat Bose_Overall (%.1f)", mutePassive, boseOverall)
	}
	if mutePassive > boseOverall-5 {
		t.Errorf("MUTE+Passive should beat Bose_Overall clearly, got %.1f vs %.1f", mutePassive, boseOverall)
	}
	if math.Abs(muteHollow-boseOverall) > 6 {
		t.Errorf("MUTE_Hollow (%.1f) should be comparable to Bose_Overall (%.1f)", muteHollow, boseOverall)
	}
	if boseOverall >= passiveOnly+0.5 && boseOverall > passiveOnly {
		t.Errorf("Bose_Overall (%.1f) should not be worse than passive alone (%.1f)", boseOverall, passiveOnly)
	}
}

func TestShorterLookaheadDegrades(t *testing.T) {
	// Figure 16: injecting delay into the reference shrinks lookahead and
	// hurts cancellation.
	run := func(extra int) float64 {
		p := DefaultParams(whiteScene(1))
		p.ExtraReferenceDelay = extra
		r, err := Run(p, MUTEHollow)
		if err != nil {
			t.Fatal(err)
		}
		db, err := r.CancellationDB(50, 4000)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	fullLA := run(0)
	reduced := run(60) // leaves ~10 samples of lookahead
	none := run(80)    // negative lookahead: budget clamps to 0
	if !(fullLA < reduced && reduced < none) {
		t.Errorf("cancellation should degrade with shrinking lookahead: %.1f, %.1f, %.1f", fullLA, reduced, none)
	}
}

func TestFMLinkEndToEnd(t *testing.T) {
	// The full FM chain should still deliver solid cancellation.
	p := DefaultParams(whiteScene(1))
	p.Duration = 6
	p.UseFMLink = true
	r, err := Run(p, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	db, err := r.CancellationDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if db > -5 {
		t.Errorf("MUTE over FM link = %.1f dB, want < -5", db)
	}
}

func TestResultRecordingsConsistent(t *testing.T) {
	p := DefaultParams(whiteScene(2))
	p.Duration = 4
	r, err := Run(p, MUTEPassive)
	if err != nil {
		t.Fatal(err)
	}
	n := int(p.Duration * fs)
	if len(r.Open) != n || len(r.Off) != n || len(r.On) != n || len(r.Residual) != n {
		t.Fatal("recording lengths mismatch")
	}
	// Off (under cup) must be quieter than Open.
	if pOff, pOpen := power(r.Off), power(r.Open); pOff >= pOpen {
		t.Errorf("under-cup power %g should be below open power %g", pOff, pOpen)
	}
	if r.SampleRate != fs {
		t.Error("sample rate mismatch")
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() []float64 {
		p := DefaultParams(whiteScene(3))
		p.Duration = 2
		r, err := Run(p, MUTEHollow)
		if err != nil {
			t.Fatal(err)
		}
		return r.On
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed runs should be bit-identical")
		}
	}
}

func TestPassiveOnlyScheme(t *testing.T) {
	p := DefaultParams(whiteScene(4))
	p.Duration = 4
	r, err := Run(p, PassiveOnly)
	if err != nil {
		t.Fatal(err)
	}
	low, err := r.CancellationDB(50, 500)
	if err != nil {
		t.Fatal(err)
	}
	high, err := r.CancellationDB(2000, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if high >= low {
		t.Errorf("passive cup should attenuate high (%.1f) more than low (%.1f)", high, low)
	}
	act, err := r.ActiveGainDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(act) > 1e-9 {
		t.Errorf("PassiveOnly active gain = %g dB, want 0", act)
	}
}

func TestTransducerResponseShape(t *testing.T) {
	tr, err := NewTransducer(fs)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 13: weak below ~100 Hz, healthy in the mid band.
	if lo, mid := tr.Response(60, fs), tr.Response(1000, fs); lo > 0.5*mid {
		t.Errorf("transducer should be weak at 60 Hz: %g vs %g", lo, mid)
	}
	ir := tr.ImpulseResponse(32)
	if len(ir) != 32 {
		t.Fatal("impulse response length")
	}
	// Repeatability after reset.
	ir2 := tr.ImpulseResponse(32)
	for i := range ir {
		if ir[i] != ir2[i] {
			t.Fatal("impulse response should be repeatable")
		}
	}
}

func TestTwoSourceScene(t *testing.T) {
	// Profiling experiment setup (Figure 17): background noise plus an
	// intermittent talker from another position must simulate cleanly.
	sc := whiteScene(5)
	sc.Sources[0].Gen = audio.NewWhiteNoise(5, fs, 0.15)
	sc.Sources = append(sc.Sources, Source{
		Pos: acoustics.Point{X: 0.7, Y: 3.2, Z: 1.5},
		Gen: audio.NewSpeech(6, audio.MaleVoice, fs, 0.8),
	})
	p := DefaultParams(sc)
	p.Duration = 6
	p.Profiling = true
	r, err := Run(p, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	db, err := r.CancellationDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if db > 0 {
		t.Errorf("two-source profiled run should not amplify, got %.1f dB", db)
	}
}

func power(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s / float64(len(x))
}

func BenchmarkSimMUTEHollowSecond(b *testing.B) {
	b.ReportAllocs()
	var last *Result
	for i := 0; i < b.N; i++ {
		p := DefaultParams(whiteScene(1))
		p.Duration = 1
		r, err := Run(p, MUTEHollow)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(float64(len(last.On))/last.Elapsed.Seconds(), "samples/s")
		b.ReportMetric(last.RealtimeFactor(), "xrealtime")
	}
}
