package sim

import (
	"fmt"

	"mute/internal/acoustics"
	"mute/internal/anc"
	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
)

// Variant selects one of the paper's architectural variants (Section 4.3),
// which redistribute the reference microphone, DSP, and speaker across the
// relay, a server, and the ear device.
type Variant int

const (
	// WallRelay is the basic architecture evaluated in Section 5: relay
	// forwards raw sound, the ear device hosts the DSP.
	WallRelay Variant = iota
	// Tabletop is Figure 10(a): the portable relay hosts the DSP and
	// sends the *anti-noise* to the ear device; the ear device returns
	// the error signal. Both hops add RF round-trip latency (modeled in
	// samples) that the lookahead budget must absorb.
	Tabletop
	// SmartNoise is Figure 10(c): the relay is attached to the noise
	// source itself, giving maximal lookahead.
	SmartNoise
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case WallRelay:
		return "WallRelay"
	case Tabletop:
		return "Tabletop"
	case SmartNoise:
		return "SmartNoise"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// VariantParams configures a variant run.
type VariantParams struct {
	// Base carries the common simulation parameters.
	Base Params
	// Variant selects the architecture.
	Variant Variant
	// ControlLoopDelaySamples is the extra round-trip latency the
	// Tabletop variant pays: anti-noise downlink plus error-feedback
	// uplink, in samples (digital framing, not propagation). Ignored by
	// the other variants.
	ControlLoopDelaySamples int
}

// RunVariant simulates an architectural variant with the MUTE algorithm
// and returns the standard Result. SmartNoise overrides the relay position
// to sit at the (dominant) noise source; Tabletop charges the control-loop
// delay against the lookahead budget and delays error feedback by the
// uplink leg.
func RunVariant(vp VariantParams) (*Result, error) {
	p := vp.Base
	switch vp.Variant {
	case WallRelay:
		return Run(p, MUTEHollow)
	case SmartNoise:
		// Relay taped to the noise source: reference microphone hears the
		// source with negligible acoustic delay.
		src := p.Scene.Sources[0].Pos
		near := acoustics.Point{X: src.X + 0.1, Y: src.Y, Z: src.Z}
		if !p.Scene.Room.Inside(near) {
			near = acoustics.Point{X: src.X - 0.1, Y: src.Y, Z: src.Z}
		}
		p.Scene.RelayPos = near
		return Run(p, MUTEHollow)
	case Tabletop:
		return runTabletop(vp)
	default:
		return nil, fmt.Errorf("sim: unknown variant %v", vp.Variant)
	}
}

// runTabletop simulates Figure 10(a): the DSP lives at the relay. The
// anti-noise is computed remotely and reaches the ear speaker after the
// downlink delay; the error microphone's signal reaches the DSP after the
// uplink delay. Algorithmically this is LANC with (a) the control-loop
// delay folded into the secondary path and (b) stale error feedback.
func runTabletop(vp VariantParams) (*Result, error) {
	p := vp.Base
	if err := p.Scene.Validate(); err != nil {
		return nil, err
	}
	if p.Duration <= 0 {
		return nil, fmt.Errorf("sim: duration %g must be positive", p.Duration)
	}
	loop := vp.ControlLoopDelaySamples
	if loop < 0 {
		return nil, fmt.Errorf("sim: negative control loop delay %d", loop)
	}
	fs := p.Scene.SampleRate
	n := int(p.Duration * fs)

	// Acoustic legs (identical to Run).
	var refStreams, earStreams [][]float64
	for _, src := range p.Scene.Sources {
		hnr, err := p.Scene.Room.ImpulseResponse(src.Pos, p.Scene.RelayPos, fs)
		if err != nil {
			return nil, err
		}
		hne, err := p.Scene.Room.ImpulseResponse(src.Pos, p.Scene.EarPos, fs)
		if err != nil {
			return nil, err
		}
		wave := audio.Render(src.Gen, n)
		refStreams = append(refStreams, dsp.ConvolveSame(wave, hnr))
		earStreams = append(earStreams, dsp.ConvolveSame(wave, hne))
	}
	ref := sumStreams(refStreams, n)
	open := sumStreams(earStreams, n)

	// Secondary chain: pipeline + downlink framing delay + transducer + air.
	trans, err := NewTransducer(fs)
	if err != nil {
		return nil, err
	}
	secIR := dsp.Convolve(trans.ImpulseResponse(48), EarSecondaryPath())
	total := p.Pipeline.Total() + loop/2 // downlink half of the loop
	if total > 0 {
		delta := make([]float64, total+1)
		delta[total] = 1
		secIR = dsp.Convolve(delta, secIR)
	}
	secEst, err := anc.EstimateSecondaryPath(secIR, len(secIR)+8, 0, p.EarMicNoiseRMS, p.Seed+11)
	if err != nil {
		return nil, err
	}

	la := p.Scene.LookaheadSamples()
	budget, err := core.NewBudget(la, core.PipelineDelays{
		ADC: p.Pipeline.ADC, DSP: p.Pipeline.DSP,
		DAC: p.Pipeline.DAC, Speaker: p.Pipeline.Speaker + loop/2,
	})
	if err != nil {
		return nil, err
	}
	nTaps := budget.UsableTaps
	if p.MaxNonCausalTaps > 0 && nTaps > p.MaxNonCausalTaps {
		nTaps = p.MaxNonCausalTaps
	}
	lanc, err := core.New(core.Config{
		NonCausalTaps: nTaps,
		CausalTaps:    p.CausalTaps,
		Mu:            p.Mu,
		Normalized:    !p.PlainLMS,
		Leak:          0.0005,
		SecondaryPath: secEst,
		ErrorDelay:    loop - loop/2,
	})
	if err != nil {
		return nil, err
	}

	// Error feedback is stale by the uplink leg.
	errDelay, err := dsp.NewDelayLine(loop - loop/2)
	if err != nil {
		return nil, err
	}
	secCh := dsp.NewStreamConvolver(secIR)
	earNoise := audio.NewRNG(p.Seed + 23)
	on := make([]float64, n)
	residual := make([]float64, n)
	e := 0.0
	for t := 0; t < n; t++ {
		a := lanc.Step(ref[t], errDelay.Process(e))
		meas := open[t] + secCh.Process(a)
		on[t] = meas
		e = meas + p.EarMicNoiseRMS*earNoise.Norm()
		residual[t] = e
	}
	return &Result{
		Scheme:            MUTEHollow,
		Open:              open,
		Off:               open,
		On:                on,
		Residual:          residual,
		LookaheadSamples:  la,
		Budget:            budget,
		UsedNonCausalTaps: nTaps,
		SampleRate:        fs,
	}, nil
}
