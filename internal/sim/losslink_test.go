package sim

import (
	"testing"

	"mute/internal/audio"
	"mute/internal/stream"
)

func TestPacketizeReferencePerfectLinkIsIdentity(t *testing.T) {
	ref := audio.Render(audio.NewWhiteNoise(1, fs, 0.5), 1000)
	recv, mask, st, err := PacketizeReference(ref, LossTransport{
		Link: stream.LossParams{Seed: 1}, FrameSamples: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if recv[i] != ref[i] || !mask[i] {
			t.Fatalf("sample %d altered by perfect link: %g vs %g (mask %v)",
				i, recv[i], ref[i], mask[i])
		}
	}
	if st.Link.Dropped != 0 || st.Jitter.SamplesConcealed != 0 {
		t.Errorf("perfect link reported impairments: %+v", st)
	}
}

func TestPacketizeReferenceHandlesPartialTailFrame(t *testing.T) {
	// 1000 samples at frame size 80 leaves a 40-sample tail frame.
	ref := audio.Render(audio.NewWhiteNoise(2, fs, 0.5), 1000)
	recv, mask, _, err := PacketizeReference(ref, LossTransport{
		Link: stream.LossParams{Seed: 1}, PrimeFrames: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recv) != len(ref) || len(mask) != len(ref) {
		t.Fatalf("length changed: %d/%d vs %d", len(recv), len(mask), len(ref))
	}
	for i := range ref {
		if recv[i] != ref[i] || !mask[i] {
			t.Fatalf("sample %d lost on perfect link with prime: %g vs %g", i, recv[i], ref[i])
		}
	}
}

func TestPacketizeReferenceDeterministicAndLossy(t *testing.T) {
	ref := audio.Render(audio.NewWhiteNoise(3, fs, 0.5), 8000)
	lt := LossTransport{
		Link:        stream.LossParams{Seed: 7, Loss: 0.1, MeanBurst: 3},
		FECGroup:    4,
		PrimeFrames: 5,
	}
	r1, m1, s1, err := PacketizeReference(ref, lt)
	if err != nil {
		t.Fatal(err)
	}
	r2, m2, s2, err := PacketizeReference(ref, lt)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("same seed produced different stats: %+v vs %+v", s1, s2)
	}
	for i := range r1 {
		if r1[i] != r2[i] || m1[i] != m2[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
	if s1.Link.Dropped == 0 {
		t.Error("10% burst loss dropped nothing over 100 frames")
	}
	if s1.FECRecovered == 0 {
		t.Error("FEC recovered nothing despite prime covering the group")
	}
	// Concealed samples must be zero and masked false; real ones intact up
	// to FEC reconstruction rounding (K·parity − Σ received).
	concealed := 0
	for i := range r1 {
		if !m1[i] {
			concealed++
			if r1[i] != 0 {
				t.Fatalf("concealed sample %d not zero: %g", i, r1[i])
			}
		} else if d := r1[i] - ref[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("real sample %d corrupted: %g vs %g", i, r1[i], ref[i])
		}
	}
	if concealed == 0 {
		t.Error("lossy link concealed nothing")
	}
}

func TestPacketizeReferenceValidation(t *testing.T) {
	ref := make([]float64, 100)
	bad := []LossTransport{
		{FrameSamples: -1},
		{Depth: -1},
		{PrimeFrames: -1},
		{FECGroup: 1},
		{Link: stream.LossParams{Loss: 2}},
	}
	for i, lt := range bad {
		if _, _, _, err := PacketizeReference(ref, lt); err == nil {
			t.Errorf("case %d: %+v should be rejected", i, lt)
		}
	}
}

// TestRunWithLossTransport exercises the engine wiring: the transport's
// prime shift comes out of the lookahead budget, the mask drives
// StepMasked, and the stats surface on the Result.
func TestRunWithLossTransport(t *testing.T) {
	p := DefaultParams(whiteScene(4))
	p.Duration = 2
	p.LossTransport = &LossTransport{
		Link:         stream.LossParams{Seed: 5, Loss: 0.05, MeanBurst: 3},
		FrameSamples: 16,
		FECGroup:     4,
		PrimeFrames:  3,
		LossAware:    true,
	}
	res, err := Run(p, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport == nil {
		t.Fatal("Result.Transport not populated")
	}
	if res.Transport.Link.Offered == 0 || res.Transport.Link.Dropped == 0 {
		t.Errorf("transport stats empty: %+v", res.Transport.Link)
	}
	// Prime = 48 samples must come out of the ~70-sample lookahead.
	noLoss := DefaultParams(whiteScene(4))
	noLoss.Duration = 2
	base, err := Run(noLoss, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedNonCausalTaps >= base.UsedNonCausalTaps {
		t.Errorf("prime buffering did not consume lookahead: %d vs %d taps",
			res.UsedNonCausalTaps, base.UsedNonCausalTaps)
	}
	// The canceller must still help: residual below the open ear.
	db, err := res.CancellationDB(50, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if db > 0 {
		t.Errorf("cancellation above passive floor under 5%% loss: %.1f dB", db)
	}
}
