package sim

import (
	"math"
	"sync"

	"mute/internal/dsp"
)

// renderCache memoizes acoustic pre-renders: the convolution of a source
// waveform with a room impulse response. The comparison experiments run the
// same scene through several schemes (Figure 12 alone runs four), and every
// scheme re-renders identical source→relay and source→ear streams; keying
// the render on the *content* of (wave, IR) lets later schemes — and later
// runs in the same process, as in parameter sweeps — reuse the first
// render. The cached slice is the exact output of the original computation,
// so memoization is bit-invisible to every consumer.
//
// Entries are evicted FIFO past a fixed capacity, bounding memory across
// long sweeps, and the cache is safe for the concurrent scheme fan-out the
// experiment runner uses.
type renderCache struct {
	mu      sync.Mutex
	entries map[renderKey][]float64
	order   []renderKey
	cap     int
	hits    uint64
	misses  uint64
}

// renderKey identifies a (wave, IR) pair by content. Two independent 64-bit
// mixes plus both lengths make accidental collisions implausible
// (~2^-128 per pair) without retaining the inputs; kind separates the two
// convolution semantics sharing the cache.
type renderKey struct {
	waveHash, irHash uint64
	waveLen, irLen   int
	kind             uint8
}

const (
	renderKindStream  = iota // StreamConvolver.ProcessBlock semantics
	renderKindSame           // ConvolveSame semantics
	renderKindCapture        // relay analog capture ("ir" = parameter vector)
)

func newRenderCache(capacity int) *renderCache {
	return &renderCache{
		entries: make(map[renderKey][]float64, capacity),
		cap:     capacity,
	}
}

// acousticRenders is the process-wide pre-render cache. Capacity 32 covers
// a multi-source scene's per-source×per-mic streams across all schemes of
// a figure with room to spare.
var acousticRenders = newRenderCache(32)

// hashFloats mixes a float slice's raw bit patterns (splitmix-style
// xor-multiply-shift). NaN payloads and signed zeros hash by their exact
// bits, matching the bit-identity contract of the cache.
func hashFloats(xs []float64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, x := range xs {
		h ^= math.Float64bits(x)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}

// render returns wave convolved with ir under the streaming-from-zero
// semantics of dsp.StreamConvolver.ProcessBlock, memoized. The returned
// slice is shared across callers and MUST be treated as read-only.
func (c *renderCache) render(wave, ir []float64) []float64 {
	return c.memoized(wave, ir, renderKindStream, func() []float64 {
		return dsp.NewStreamConvolver(ir).ProcessBlock(wave)
	})
}

// renderSame is render with dsp.ConvolveSame semantics (the passive-cup
// application), under the same bit-identity and read-only contracts.
func (c *renderCache) renderSame(x, h []float64) []float64 {
	return c.memoized(x, h, renderKindSame, func() []float64 {
		return dsp.ConvolveSame(x, h)
	})
}

func (c *renderCache) memoized(wave, ir []float64, kind uint8, compute func() []float64) []float64 {
	key := renderKey{hashFloats(wave), hashFloats(ir), len(wave), len(ir), kind}
	c.mu.Lock()
	if out, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return out
	}
	c.misses++
	c.mu.Unlock()

	// Render outside the lock: concurrent first-time renders of the same
	// key may duplicate work, but both produce identical bits and only one
	// is retained.
	out := compute()

	c.mu.Lock()
	if _, ok := c.entries[key]; !ok {
		if len(c.order) >= c.cap {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
		c.entries[key] = out
		c.order = append(c.order, key)
	} else {
		out = c.entries[key]
	}
	c.mu.Unlock()
	return out
}

// stats reports lifetime hit/miss counters (tests and diagnostics).
func (c *renderCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// reset empties the cache (tests).
func (c *renderCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[renderKey][]float64, c.cap)
	c.order = nil
	c.hits, c.misses = 0, 0
}
