package sim

import "testing"

// TestRunMeshWalkingPolicies is the pipeline-level mesh check: one seeded
// walking-source run per policy with churn and flappers on. The hysteretic
// mesh must land a usefully deep floor, and the naive per-round argmax
// must both switch far more and cancel less — the ordering the mesh
// experiment measures at full scale.
func TestRunMeshWalkingPolicies(t *testing.T) {
	base := MeshScenario{Duration: 6, Relays: 40, Seed: 29, Walking: true, ChurnPerMin: 0.10}

	hyst := base
	h, err := RunMesh(hyst)
	if err != nil {
		t.Fatal(err)
	}
	naive := base
	naive.Naive = true
	n, err := RunMesh(naive)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hysteretic: %.2f dB, %d handoffs; naive: %.2f dB, %d handoffs",
		h.ResidualDB, h.Report.Handoffs, n.ResidualDB, n.Report.Handoffs)

	if h.ResidualDB > -6 {
		t.Errorf("hysteretic mesh floor %.2f dB, want < -6 dB", h.ResidualDB)
	}
	if h.ResidualDB > n.ResidualDB-2 {
		t.Errorf("hysteretic %.2f dB not usefully below naive %.2f dB", h.ResidualDB, n.ResidualDB)
	}
	if n.Report.Handoffs < 2*h.Report.Handoffs {
		t.Errorf("naive switched %d times vs hysteretic %d — flapping not reproduced",
			n.Report.Handoffs, h.Report.Handoffs)
	}
	if h.Report.Rounds == 0 || h.Report.Correlations == 0 {
		t.Errorf("no selection work recorded: %+v", h.Report)
	}
	if h.Report.MembershipChanges() == 0 {
		t.Errorf("churn scheduled but no membership changes recorded: %+v", h.Report)
	}
}

// TestRunMeshStaticSourceIsQuiet pins the easy case: a static source and a
// static mesh should associate once and stay put.
func TestRunMeshStaticSourceIsQuiet(t *testing.T) {
	r, err := RunMesh(MeshScenario{Duration: 4, Relays: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("static: %.2f dB, %d handoffs", r.ResidualDB, r.Report.Handoffs)
	if r.ResidualDB > -10 {
		t.Errorf("static-source mesh floor %.2f dB, want < -10 dB", r.ResidualDB)
	}
	if r.Report.Handoffs > 4 {
		t.Errorf("static source caused %d handoffs, want at most the initial adoption plus jitter slack", r.Report.Handoffs)
	}
	if r.Report.OrphanedWindows != 0 {
		t.Errorf("static mesh orphaned %d times", r.Report.OrphanedWindows)
	}
}

// TestRunMeshValidation covers the scenario error paths.
func TestRunMeshValidation(t *testing.T) {
	if _, err := RunMesh(MeshScenario{Relays: 10}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := RunMesh(MeshScenario{Duration: 1}); err == nil {
		t.Error("zero relays accepted")
	}
	if _, err := RunMesh(MeshScenario{Duration: 1, Relays: 10, BgLoss: -1}); err == nil {
		t.Error("negative loss accepted")
	}
}
