package sim

import (
	"sync"
	"testing"

	"mute/internal/audio"
	"mute/internal/dsp"
	"mute/internal/telemetry"
)

// TestBlockFDAFPathCancels runs the end-to-end engine on the partitioned
// frequency-domain path and pins its cancellation against the time-domain
// default — the sim-level leg of the equivalence suite (the core-level leg
// pins the filters head to head on shared channels).
func TestBlockFDAFPathCancels(t *testing.T) {
	gen := func() audio.Generator { return audio.NewWhiteNoise(1, 8000, 0.5) }

	p := DefaultParams(DefaultScene(gen()))
	p.Duration = 4
	rTD, err := Run(p, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	tdDB, err := rTD.CancellationDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}

	p = DefaultParams(DefaultScene(gen()))
	p.Duration = 4
	p.BlockFDAF = true
	reg := telemetry.NewRegistry()
	p.Telemetry = reg
	rFD, err := Run(p, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	fdDB, err := rFD.CancellationDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}

	if tdDB > -6 {
		t.Fatalf("time-domain baseline only reached %.1f dB", tdDB)
	}
	if fdDB > -5 {
		t.Errorf("FDAF path reached %.1f dB, want < -5", fdDB)
	}
	// Equivalence band: block adaptation trails the per-sample filter but
	// must stay in its neighborhood.
	if diff := fdDB - tdDB; diff > 10 || diff < -10 {
		t.Errorf("FDAF %.1f dB vs time-domain %.1f dB: outside the ±10 dB band", fdDB, tdDB)
	}

	// The per-block timing histogram must have one observation per block.
	h := reg.Histogram("lanc.block_ns", telemetry.HistogramOpts{Lo: 1e3, Ratio: 2, Buckets: 20})
	wantBlocks := uint64((len(rFD.On) + 31) / 32)
	if h.Count() != wantBlocks {
		t.Errorf("lanc.block_ns observed %d blocks, want %d", h.Count(), wantBlocks)
	}

	// Block latency must show up in the budget itemization.
	found := false
	for _, e := range rFD.BudgetSpend.Entries {
		if e.Stage == "fdaf.block_latency" {
			found = true
			if e.Samples != 31 {
				t.Errorf("fdaf.block_latency = %d samples, want 31", e.Samples)
			}
		}
	}
	if !found {
		t.Error("budget itemization missing fdaf.block_latency")
	}
}

// TestBlockFDAFRejectsUnsupportedCombos pins the compatibility contract:
// the block path has no sample-clocked transport/supervisor machinery.
func TestBlockFDAFRejectsUnsupportedCombos(t *testing.T) {
	gen := func() audio.Generator { return audio.NewWhiteNoise(1, 8000, 0.3) }
	mods := map[string]func(*Params){
		"supervise": func(p *Params) { p.Supervise = true },
		"profiling": func(p *Params) { p.Profiling = true },
		"transport": func(p *Params) { p.LossTransport = &LossTransport{FrameSamples: 40} },
		"skew":      func(p *Params) { p.ClockSkewPPM = 100 },
		"drift":     func(p *Params) { p.DriftCorrect = true },
	}
	for name, mod := range mods {
		p := DefaultParams(DefaultScene(gen()))
		p.Duration = 0.1
		p.BlockFDAF = true
		mod(&p)
		if _, err := Run(p, MUTEHollow); err == nil {
			t.Errorf("BlockFDAF + %s should be rejected", name)
		}
	}
	// Non-power-of-two block sizes are rejected by the core filter.
	p := DefaultParams(DefaultScene(gen()))
	p.Duration = 0.1
	p.BlockFDAF = true
	p.BlockSize = 12
	if _, err := Run(p, MUTEHollow); err == nil {
		t.Error("BlockFDAF with non-power-of-two block size should be rejected")
	}
}

// TestRenderCacheBitIdentical pins the cache contract: a hit returns the
// exact bits of the original render, and distinct inputs miss.
func TestRenderCacheBitIdentical(t *testing.T) {
	c := newRenderCache(4)
	wave := audio.Render(audio.NewWhiteNoise(7, 8000, 0.5), 4096)
	ir := []float64{0.9, 0.4, -0.2, 0.05}

	want := dsp.NewStreamConvolver(ir).ProcessBlock(wave)
	got1 := c.render(wave, ir)
	got2 := c.render(wave, ir)
	if &got1[0] != &got2[0] {
		t.Error("second render should return the cached slice")
	}
	for i := range want {
		if got1[i] != want[i] {
			t.Fatalf("cached render diverges at %d: %g != %g", i, got1[i], want[i])
		}
	}
	if hits, misses := c.stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	// A different IR is a different key.
	c.render(wave, []float64{1})
	if hits, misses := c.stats(); hits != 1 || misses != 2 {
		t.Errorf("stats after distinct IR = %d/%d, want 1/2", hits, misses)
	}
}

// TestRenderCacheEviction bounds the cache: pushing past capacity evicts
// the oldest entry, which then re-renders (bit-identically) on next use.
func TestRenderCacheEviction(t *testing.T) {
	c := newRenderCache(2)
	wave := audio.Render(audio.NewWhiteNoise(3, 8000, 0.5), 512)
	irs := [][]float64{{1}, {0.5, 0.5}, {0.2, 0.3, 0.4}}
	var first []float64
	for i, ir := range irs {
		out := c.render(wave, ir)
		if i == 0 {
			first = append([]float64(nil), out...)
		}
	}
	// irs[0] was evicted by irs[2]; re-rendering must miss and match bits.
	_, missesBefore := c.stats()
	out := c.render(wave, irs[0])
	_, missesAfter := c.stats()
	if missesAfter != missesBefore+1 {
		t.Error("evicted entry should re-render")
	}
	for i := range first {
		if out[i] != first[i] {
			t.Fatalf("re-render diverges at %d", i)
		}
	}
}

// TestRenderCacheConcurrent exercises the scheme fan-out shape: many
// goroutines rendering the same pair must all see identical bits.
func TestRenderCacheConcurrent(t *testing.T) {
	c := newRenderCache(4)
	wave := audio.Render(audio.NewWhiteNoise(5, 8000, 0.5), 2048)
	ir := []float64{0.8, 0.3, 0.1}
	want := dsp.NewStreamConvolver(ir).ProcessBlock(wave)

	var wg sync.WaitGroup
	outs := make([][]float64, 8)
	for g := range outs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g] = c.render(wave, ir)
		}(g)
	}
	wg.Wait()
	for g, out := range outs {
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("goroutine %d render diverges at %d", g, i)
			}
		}
	}
}
