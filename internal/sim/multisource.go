package sim

import (
	"fmt"

	"mute/internal/acoustics"
	"mute/internal/anc"
	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
	"mute/internal/rf"
)

// MultiRelayParams configures a multi-source, multi-relay run: one relay
// per noise source, each forwarding its own reference stream to an ear
// device running a multi-reference LANC (the paper's Section 6 multi-source
// direction, implemented).
type MultiRelayParams struct {
	// Base carries the common parameters; Base.Scene.Sources holds the
	// noise sources and Base.Scene.RelayPos is ignored.
	Base Params
	// RelayPositions places one relay per source (len must match the
	// scene's source count).
	RelayPositions []acoustics.Point
}

// RunMultiRelay simulates the multi-reference system and returns the usual
// Result. Each relay's lookahead is budgeted independently; the ear device
// sums one adaptive filter per relay.
func RunMultiRelay(mp MultiRelayParams) (*Result, error) {
	p := mp.Base
	if err := p.Scene.Validate(); err != nil {
		return nil, err
	}
	if p.Duration <= 0 {
		return nil, fmt.Errorf("sim: duration %g must be positive", p.Duration)
	}
	if len(mp.RelayPositions) != len(p.Scene.Sources) {
		return nil, fmt.Errorf("sim: %d relay positions for %d sources",
			len(mp.RelayPositions), len(p.Scene.Sources))
	}
	for i, rp := range mp.RelayPositions {
		if !p.Scene.Room.Inside(rp) {
			return nil, fmt.Errorf("sim: relay %d at %v outside room", i, rp)
		}
	}
	fs := p.Scene.SampleRate
	n := int(p.Duration * fs)

	// Acoustic legs: every source contributes to every relay and to the ear.
	waves := make([][]float64, len(p.Scene.Sources))
	for i, src := range p.Scene.Sources {
		waves[i] = audio.Render(src.Gen, n)
	}
	open := make([]float64, n)
	for i, src := range p.Scene.Sources {
		hne, err := p.Scene.Room.ImpulseResponse(src.Pos, p.Scene.EarPos, fs)
		if err != nil {
			return nil, err
		}
		leg := dsp.ConvolveSame(waves[i], hne)
		for t := range open {
			open[t] += leg[t]
		}
	}
	refs := make([][]float64, len(mp.RelayPositions))
	for r, rp := range mp.RelayPositions {
		refs[r] = make([]float64, n)
		for i, src := range p.Scene.Sources {
			hnr, err := p.Scene.Room.ImpulseResponse(src.Pos, rp, fs)
			if err != nil {
				return nil, err
			}
			leg := dsp.ConvolveSame(waves[i], hnr)
			for t := range refs[r] {
				refs[r][t] += leg[t]
			}
		}
		// Relay analog front end (independent mic-noise streams).
		relayParams := p.Relay
		relayParams.Seed = p.Relay.Seed + uint64(r)*101
		relay, err := rf.NewRelay(relayParams, fmParamsFor(p, fs))
		if err != nil {
			return nil, err
		}
		refs[r] = relay.Capture(refs[r])
	}

	// Secondary chain and per-relay budgets.
	trans, err := NewTransducer(fs)
	if err != nil {
		return nil, err
	}
	secIR := dsp.Convolve(trans.ImpulseResponse(48), EarSecondaryPath())
	if pipe := p.Pipeline.Total(); pipe > 0 {
		delta := make([]float64, pipe+1)
		delta[pipe] = 1
		secIR = dsp.Convolve(delta, secIR)
	}
	secEst, err := anc.EstimateSecondaryPath(secIR, len(secIR)+8, 0, p.EarMicNoiseRMS, p.Seed+11)
	if err != nil {
		return nil, err
	}
	cfgs := make([]core.Config, len(mp.RelayPositions))
	minLA := int(^uint(0) >> 1)
	for r, rp := range mp.RelayPositions {
		// Lookahead for relay r relative to its paired source.
		src := p.Scene.Sources[r].Pos
		la := int(acoustics.DirectDelaySamples(src, p.Scene.EarPos, fs) -
			acoustics.DirectDelaySamples(src, rp, fs))
		if la < 0 {
			la = 0
		}
		if la < minLA {
			minLA = la
		}
		budget, err := core.NewBudget(la, p.Pipeline)
		if err != nil {
			return nil, err
		}
		nTaps := budget.UsableTaps
		if p.MaxNonCausalTaps > 0 && nTaps > p.MaxNonCausalTaps {
			nTaps = p.MaxNonCausalTaps
		}
		cfgs[r] = core.Config{
			NonCausalTaps: nTaps,
			CausalTaps:    p.CausalTaps,
			Mu:            p.Mu / float64(len(mp.RelayPositions)), // shared error: split the step
			Normalized:    !p.PlainLMS,
			Leak:          0.0005,
			SecondaryPath: secEst,
		}
	}
	multi, err := core.NewMulti(cfgs)
	if err != nil {
		return nil, err
	}

	secCh := dsp.NewStreamConvolver(secIR)
	earNoise := audio.NewRNG(p.Seed + 23)
	on := make([]float64, n)
	residual := make([]float64, n)
	row := make([]float64, len(refs))
	e := 0.0
	for t := 0; t < n; t++ {
		multi.Adapt(e)
		for r := range refs {
			row[r] = refs[r][t]
		}
		if err := multi.Push(row); err != nil {
			return nil, err
		}
		a := multi.AntiNoise()
		meas := open[t] + secCh.Process(a)
		on[t] = meas
		e = meas + p.EarMicNoiseRMS*earNoise.Norm()
		residual[t] = e
	}
	return &Result{
		Scheme:            MUTEHollow,
		Open:              open,
		Off:               open,
		On:                on,
		Residual:          residual,
		LookaheadSamples:  minLA,
		UsedNonCausalTaps: cfgs[0].NonCausalTaps,
		SampleRate:        fs,
	}, nil
}
