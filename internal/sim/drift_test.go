package sim

import (
	"math"
	"testing"

	"mute/internal/audio"
	"mute/internal/stream"
)

// driftRef renders a deterministic sine reference for transport-level
// drift tests.
func driftRef(n int, freq float64) []float64 {
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = 0.5 * math.Sin(2*math.Pi*freq*float64(i)/8000)
	}
	return ref
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDriftCorrectCleanClockIdentity is the PR's bit-identity pin: with no
// actual clock skew, routing the reference through the skewed-clock
// transport — estimator, resampler and all — produces byte-for-byte the
// same samples, concealment mask, and link/jitter counters as the plain
// transport, even under burst loss and FEC recovery. Drift correction left
// enabled on a healthy clock costs nothing.
func TestDriftCorrectCleanClockIdentity(t *testing.T) {
	ref := driftRef(8000, 200)
	base := *burstTransport()
	wantRecv, wantMask, wantStats, err := PacketizeReference(ref, base)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]LossTransport{
		"driftCorrectNoSkew": func() LossTransport { lt := base; lt.DriftCorrect = true; return lt }(),
		"zeroSkewNaive":      func() LossTransport { lt := base; lt.Skew = &stream.SkewParams{}; return lt }(),
		"zeroSkewCorrected": func() LossTransport {
			lt := base
			lt.Skew = &stream.SkewParams{}
			lt.DriftCorrect = true
			return lt
		}(),
	}
	for name, lt := range variants {
		recv, mask, stats, err := PacketizeReference(ref, lt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameFloats(recv, wantRecv) {
			t.Errorf("%s: received samples diverge from the plain transport", name)
		}
		if !sameBools(mask, wantMask) {
			t.Errorf("%s: concealment mask diverges from the plain transport", name)
		}
		if stats.Jitter != wantStats.Jitter || stats.Link != wantStats.Link ||
			stats.FECRecovered != wantStats.FECRecovered {
			t.Errorf("%s: transport counters diverge: %+v vs %+v", name, stats, wantStats)
		}
		if stats.Drift == nil {
			t.Errorf("%s: missing drift report", name)
		} else if stats.Drift.FinalPPM != 0 || stats.Drift.MaxAbsPPM != 0 {
			t.Errorf("%s: estimator drifted off exact zero: %+v", name, stats.Drift)
		}
	}
}

// TestDriftCorrectCleanClockIdentityEngine pins the identity end to end:
// a full simulated run over the burst-loss transport is bit-identical with
// and without drift correction when the relay clock is healthy, including
// the lookahead budget (the resampler guard is only charged under real
// skew).
func TestDriftCorrectCleanClockIdentityEngine(t *testing.T) {
	run := func(correct bool) *Result {
		p := DefaultParams(DefaultScene(audio.NewWhiteNoise(1, 8000, 0.5)))
		p.Duration = 1
		p.Seed = 1
		p.LossTransport = burstTransport()
		p.DriftCorrect = correct
		res, err := Run(p, MUTEHollow)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base, corr := run(false), run(true)
	if !sameFloats(base.On, corr.On) || !sameFloats(base.Residual, corr.Residual) {
		t.Error("drift-corrected run diverges from baseline on a clean clock")
	}
	if base.Budget != corr.Budget || base.UsedNonCausalTaps != corr.UsedNonCausalTaps {
		t.Errorf("lookahead budget changed with no skew: %+v vs %+v", base.Budget, corr.Budget)
	}
	if corr.Transport == nil || corr.Transport.Drift == nil {
		t.Fatal("corrected run missing drift report")
	}
	if d := corr.Transport.Drift; d.FinalPPM != 0 || len(d.RateJumps) != 0 {
		t.Errorf("estimator not exactly zero on clean clock: %+v", d)
	}
}

// TestDriftTransportCorrectsSkew checks the closed loop at a real 100 ppm
// skew: the estimator locks near the true value, occupancy stays bounded,
// and the resampled reference stays far better aligned to the capture
// clock than the uncorrected playout.
func TestDriftTransportCorrectsSkew(t *testing.T) {
	const n = 5 * 8000
	ref := driftRef(n, 200)
	skew := func(correct bool) ([]float64, *DriftReport) {
		lt := LossTransport{
			FrameSamples: 40,
			PrimeFrames:  1,
			LossAware:    true,
			Skew:         &stream.SkewParams{PPM: 100},
			DriftCorrect: correct,
		}
		recv, _, stats, err := PacketizeReference(ref, lt)
		if err != nil {
			t.Fatal(err)
		}
		return recv, stats.Drift
	}
	naive, naiveRep := skew(false)
	corr, corrRep := skew(true)
	if !corrRep.Locked {
		t.Fatal("estimator failed to lock at constant 100 ppm skew")
	}
	if d := corrRep.FinalPPM - 100; d < -10 || d > 10 {
		t.Errorf("final estimate %.2f ppm, want ~100", corrRep.FinalPPM)
	}
	if o := corrRep.FinalOccErr; o < -8 || o > 8 {
		t.Errorf("final occupancy error %.2f samples, want ~0", o)
	}
	if naiveRep.Corrected || !corrRep.Corrected {
		t.Error("Corrected flag mismatch")
	}
	rms := func(x []float64) float64 {
		var s float64
		for i := n / 2; i < n; i++ {
			d := x[i] - ref[i]
			s += d * d
		}
		return math.Sqrt(s / float64(n/2))
	}
	naiveErr, corrErr := rms(naive), rms(corr)
	if corrErr > naiveErr/3 {
		t.Errorf("corrected alignment error %.4f not well below naive %.4f", corrErr, naiveErr)
	}
	if corrErr > 0.1 {
		t.Errorf("corrected alignment error %.4f too large", corrErr)
	}
}

// TestDriftReportFlagsOscillatorStep checks that a mid-run frequency step
// trips the estimator's jump detector and lands in the report.
func TestDriftReportFlagsOscillatorStep(t *testing.T) {
	const n = 5 * 8000
	ref := driftRef(n, 200)
	lt := LossTransport{
		FrameSamples: 40,
		PrimeFrames:  1,
		LossAware:    true,
		Skew: &stream.SkewParams{
			PPM:   50,
			Steps: []stream.SkewStep{{AtSample: 20000, DeltaPPM: 300}},
		},
		DriftCorrect: true,
	}
	_, _, stats, err := PacketizeReference(ref, lt)
	if err != nil {
		t.Fatal(err)
	}
	rep := stats.Drift
	if len(rep.RateJumps) == 0 {
		t.Error("oscillator step not flagged in RateJumps")
	}
	for _, at := range rep.RateJumps {
		if at < 20000-400 {
			t.Errorf("rate jump flagged at %d, before the step landed", at)
		}
	}
	if rep.MaxAbsPPM < 200 {
		t.Errorf("max estimate %.1f ppm never tracked the 350 ppm plateau", rep.MaxAbsPPM)
	}
}

// TestEngineSkewDrivesSupervisor checks the health wiring: on an otherwise
// clean link, an excessive uncorrected skew alone demotes the supervised
// canceller off the LANC rung.
func TestEngineSkewDrivesSupervisor(t *testing.T) {
	p := DefaultParams(DefaultScene(audio.NewWhiteNoise(1, 8000, 0.5)))
	p.Duration = 2
	p.Seed = 1
	p.LossTransport = &LossTransport{FrameSamples: 40, PrimeFrames: 1, LossAware: true}
	p.ClockSkewPPM = 400
	p.Supervise = true
	res, err := Run(p, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	if res.Supervision == nil {
		t.Fatal("missing supervision report")
	}
	if len(res.Supervision.Transitions) == 0 {
		t.Error("400 ppm skew on a clean link caused no supervisor transition")
	}
	if res.Transport == nil || res.Transport.Drift == nil {
		t.Fatal("missing drift report")
	}
	if res.Transport.Drift.MaxAbsPPM < 250 {
		t.Errorf("drift estimate %.1f never crossed the degrade threshold", res.Transport.Drift.MaxAbsPPM)
	}
}

// TestGoldenTraceDrift pins the full stage trace of a drift-corrected run
// over the burst-loss link with a 200 ppm skewed relay clock: the drift
// stage's estimator series joins the stream/lookahead/LANC/budget events,
// and the budget now carries the resampler guard.
func TestGoldenTraceDrift(t *testing.T) {
	tr, res := goldenRun(t, func() *LossTransport {
		lt := burstTransport()
		lt.Skew = &stream.SkewParams{PPM: 200}
		lt.DriftCorrect = true
		return lt
	}())
	checkBudgetInvariant(t, tr, res)
	stages := map[string]bool{}
	guard := false
	for _, ev := range tr.Events() {
		stages[ev.Stage] = true
		if ev.Stage == "budget" && ev.Name == "drift.resampler" {
			guard = true
		}
	}
	if !stages["drift"] {
		t.Error("drift stage missing from trace")
	}
	if !guard {
		t.Error("drift.resampler budget entry missing")
	}
	checkGolden(t, "golden_drift", tr)
}
