package sim

import (
	"testing"

	"mute/internal/acoustics"
	"mute/internal/audio"
)

// twoSourceScene builds a scene with independent wide-band sources at
// opposite sides of the room.
func twoSourceScene(seed uint64) Scene {
	scene := DefaultScene(audio.NewWhiteNoise(seed, fs, 0.4))
	scene.Sources = append(scene.Sources, Source{
		Pos: acoustics.Point{X: 1.0, Y: 3.5, Z: 1.5},
		Gen: audio.NewWhiteNoise(seed+100, fs, 0.4),
	})
	return scene
}

func TestMultiRelayBeatsSingleOnTwoSources(t *testing.T) {
	// The paper's multi-source limitation: one reference cannot cancel
	// two independent sources. Two relays, one per source, should.
	base := DefaultParams(twoSourceScene(1))
	base.Duration = 10
	single, err := Run(base, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := single.CancellationDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}
	base2 := DefaultParams(twoSourceScene(1))
	base2.Duration = 10
	multi, err := RunMultiRelay(MultiRelayParams{
		Base: base2,
		RelayPositions: []acoustics.Point{
			{X: 1.0, Y: 2.0, Z: 1.5}, // near source 0 (door)
			{X: 1.2, Y: 3.3, Z: 1.5}, // near source 1 (north)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mdb, err := multi.CancellationDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if mdb >= sdb-2 {
		t.Errorf("multi-reference (%.1f dB) should beat single reference (%.1f dB) by > 2 dB on two sources", mdb, sdb)
	}
	if mdb > -8 {
		t.Errorf("multi-reference cancellation = %.1f dB, want < -8", mdb)
	}
}

func TestRunMultiRelayValidation(t *testing.T) {
	base := DefaultParams(twoSourceScene(2))
	base.Duration = 2
	if _, err := RunMultiRelay(MultiRelayParams{Base: base, RelayPositions: []acoustics.Point{{X: 1, Y: 2, Z: 1.5}}}); err == nil {
		t.Error("relay/source count mismatch should error")
	}
	if _, err := RunMultiRelay(MultiRelayParams{
		Base:           base,
		RelayPositions: []acoustics.Point{{X: 1, Y: 2, Z: 1.5}, {X: 99, Y: 0, Z: 0}},
	}); err == nil {
		t.Error("relay outside room should error")
	}
	bad := base
	bad.Duration = 0
	if _, err := RunMultiRelay(MultiRelayParams{
		Base:           bad,
		RelayPositions: []acoustics.Point{{X: 1, Y: 2, Z: 1.5}, {X: 1.2, Y: 3.3, Z: 1.5}},
	}); err == nil {
		t.Error("zero duration should error")
	}
	badScene := base
	badScene.Scene = Scene{}
	if _, err := RunMultiRelay(MultiRelayParams{Base: badScene}); err == nil {
		t.Error("invalid scene should error")
	}
}
