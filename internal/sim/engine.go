package sim

import (
	"fmt"
	"time"

	"mute/internal/anc"
	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
	"mute/internal/graph"
	"mute/internal/headphone"
	"mute/internal/rf"
	"mute/internal/stream"
	"mute/internal/supervisor"
	"mute/internal/telemetry"
)

// Scheme selects which cancellation system is simulated.
type Scheme int

// The paper's four comparison schemes (Section 5.1).
const (
	// MUTEHollow is the open-ear MUTE device: LANC with wireless
	// lookahead, no passive material.
	MUTEHollow Scheme = iota
	// MUTEPassive is MUTE's LANC running inside the Bose ear cup
	// ("MUTE+Passive").
	MUTEPassive
	// BoseActive is the conventional headphone's ANC contribution alone
	// (measured under the ear cup, ANC on vs off).
	BoseActive
	// BoseOverall is the conventional headphone end to end: ANC plus
	// passive isolation, versus the open ear.
	BoseOverall
	// PassiveOnly is the ear cup with ANC off (a control scheme).
	PassiveOnly
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case MUTEHollow:
		return "MUTE_Hollow"
	case MUTEPassive:
		return "MUTE+Passive"
	case BoseActive:
		return "Bose_Active"
	case BoseOverall:
		return "Bose_Overall"
	case PassiveOnly:
		return "Passive_Only"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// usesLANC reports whether the scheme runs MUTE's algorithm.
func (s Scheme) usesLANC() bool { return s == MUTEHollow || s == MUTEPassive }

// usesPassive reports whether the ear is covered by the passive cup.
func (s Scheme) usesPassive() bool { return s != MUTEHollow }

// Params configures a simulation run.
type Params struct {
	// Scene is the physical layout.
	Scene Scene
	// Duration is the simulated time in seconds.
	Duration float64

	// UseFMLink routes the reference signal through the full FM chain
	// (modulator, impaired channel, demodulator). When false an ideal
	// forwarding link (relay analog chain only) is used — much faster,
	// and the default for parameter sweeps.
	UseFMLink bool
	// FM configures the FM link when enabled.
	FM rf.FMParams
	// Channel configures RF impairments when the FM link is enabled.
	Channel rf.ChannelParams
	// Relay configures the relay analog front end.
	Relay rf.RelayParams

	// Pipeline is the MUTE ear-device processing latency (Equation 3) —
	// the TI DSP board's ADC/DSP/DAC/speaker chain.
	Pipeline core.PipelineDelays
	// BoseLatencySamples is the conventional headphone's end-to-end
	// processing latency in (fractional) samples. Commercial ANC
	// hardware is heavily optimized (~60 µs ≈ 0.5 samples at 8 kHz) yet
	// still misses the ~30 µs deadline of Figure 5(a); this is the phase
	// error that caps its high-frequency cancellation. 0 selects the
	// default of 0.5.
	BoseLatencySamples float64
	// ExtraReferenceDelay injects additional delay (samples) into the
	// forwarded reference — the paper's delayed-line trick for shrinking
	// lookahead without moving hardware (Figure 16).
	ExtraReferenceDelay int
	// LossTransport, when non-nil, routes the forwarded reference through
	// the packetized stream layer (framing, fault-injected link, optional
	// FEC, jitter buffer) instead of the ideal sample-synchronous wire.
	// Its playout buffering consumes PrimeSamples of lookahead, and the
	// canceller adapts through the returned concealment mask (LANC schemes
	// only; the Bose schemes have no wireless leg).
	LossTransport *LossTransport
	// Supervise runs the LANC schemes under the degradation-ladder
	// supervisor (internal/supervisor): a link-health estimator demotes
	// the canceller through DEGRADED → FALLBACK (a local causal FxLMS
	// warm-started from LANC's causal taps) → PASSTHROUGH as the
	// forwarded reference degrades, and promotes it back with dwell,
	// hysteresis, and backoff probes. On a clean link the supervised run
	// is bit-identical to the unsupervised one.
	Supervise bool
	// SupervisorConfig overrides the supervisor tuning when Supervise is
	// set (nil = supervisor defaults).
	SupervisorConfig *supervisor.Config

	// ClockSkewPPM runs the relay on a skewed oscillator: its sample clock
	// deviates from the ear's by this many parts per million (positive =
	// relay fast). Any skew fault presupposes the packetized transport; a
	// default LossTransport is synthesized when none is configured.
	ClockSkewPPM float64
	// ClockSkewWanderPPM adds a slow random walk (per-interval standard
	// deviation, ppm) to the relay clock, seeded from Seed.
	ClockSkewWanderPPM float64
	// DriftCorrect inserts the drift estimator + adaptive resampler into
	// the receive path (see LossTransport.DriftCorrect). On a clean clock
	// the corrected run is bit-identical to the uncorrected one.
	DriftCorrect bool
	// DriftConfig overrides the drift estimator/loop tuning (nil =
	// defaults).
	DriftConfig *stream.DriftConfig

	// BlockFDAF replaces the sample-by-sample LANC with the partitioned
	// frequency-domain canceller (core.BlockLANC): anti-noise is produced
	// in blocks of BlockSize samples, trading B−1 samples of lookahead for
	// FFT-economics filtering. It applies to the LANC schemes only and is
	// incompatible with the packetized transport, supervisor, profiling,
	// and clock-fault machinery (all sample-clocked).
	BlockFDAF bool
	// BlockSize is the FDAF block size B in samples (power of two,
	// 0 = 32). The block path spends B−1 samples of the lookahead budget
	// on block latency, so keep B comfortably under the scene's lookahead.
	BlockSize int
	// BlockMu is the FDAF per-bin normalized step (0 = 0.4). It is scaled
	// per frequency bin, so its useful range (0.1–1) differs from the
	// sample-domain Mu.
	BlockMu float64

	// CausalTaps is LANC's causal filter length L.
	CausalTaps int
	// MaxNonCausalTaps caps N regardless of the available lookahead
	// (0 = no cap).
	MaxNonCausalTaps int
	// Mu is LANC's step size.
	Mu float64
	// PlainLMS disables NLMS power normalization — the classical LMS of
	// the paper's prototype, whose slower re-convergence is what makes
	// predictive profile switching valuable (Figure 8).
	PlainLMS bool
	// Profiling enables LANC's predictive filter switching.
	Profiling bool
	// ProfileWindow, ProfileHop, ProfileThreshold and MaxProfiles tune
	// the profiler when Profiling is on (0 = core defaults).
	ProfileWindow    int
	ProfileHop       int
	ProfileThreshold float64
	MaxProfiles      int

	// EarMicNoiseRMS is the ear-device error-microphone self-noise.
	EarMicNoiseRMS float64
	// Seed drives all stochastic components of the run.
	Seed uint64

	// Telemetry, when non-nil, receives the run's counters, gauges,
	// histograms, and wall-clock stage timers. Instrumentation is purely
	// observational: enabling it changes no output sample of the run
	// (enforced by internal/experiments' result-neutrality tests).
	Telemetry *telemetry.Registry
	// Trace, when non-nil, records per-stage events on the sample clock —
	// capture/link block levels, LANC adaptation state, per-block residual,
	// and the lookahead budget entries — for JSONL export and the
	// golden-trace regression suite.
	Trace *telemetry.Trace
	// TraceBlock is the trace cadence in samples (0 = 512).
	TraceBlock int
}

// DefaultParams returns the standard evaluation configuration for a scene.
func DefaultParams(scene Scene) Params {
	return Params{
		Scene:            scene,
		Duration:         12,
		FM:               rf.DefaultFMParams(),
		Channel:          rf.DefaultChannel(),
		Relay:            rf.DefaultRelayParams(),
		Pipeline:         core.DefaultPipeline(),
		CausalTaps:       160,
		MaxNonCausalTaps: 32,
		Mu:               0.05,
		Seed:             1,
	}
}

// Result is the outcome of one simulated run.
type Result struct {
	// Scheme that was simulated.
	Scheme Scheme
	// Open is the measurement-microphone signal with the ear open and no
	// cancellation — the paper's reference condition.
	Open []float64
	// Off is the measurement with the scheme's passive hardware in place
	// but active cancellation disabled (equals Open for MUTE_Hollow).
	Off []float64
	// On is the measurement with the scheme fully active.
	On []float64
	// Residual is the error-microphone signal driving adaptation (equal
	// to On plus sensor noise).
	Residual []float64
	// LookaheadSamples is the geometric lookahead of the scene.
	LookaheadSamples int
	// Budget is the lookahead budget LANC ran with (zero-value for the
	// Bose schemes).
	Budget core.Budget
	// UsedNonCausalTaps is the N LANC actually ran with after applying
	// MaxNonCausalTaps.
	UsedNonCausalTaps int
	// Switches is the number of predictive filter switches (profiling
	// runs only).
	Switches int
	// Transport carries the packetized-link counters when
	// Params.LossTransport was set (nil otherwise).
	Transport *LossTransportStats
	// Supervision carries the degradation-ladder report when
	// Params.Supervise was set (nil otherwise).
	Supervision *supervisor.Report
	// BudgetSpend itemizes where the lookahead budget went, stage by
	// stage (LANC schemes only; nil for the Bose schemes, which have no
	// wireless lookahead to spend).
	BudgetSpend *telemetry.BudgetReport
	// SampleRate echoes the scene rate.
	SampleRate float64
	// Elapsed is the wall-clock time the run took, for throughput metrics.
	Elapsed time.Duration
}

// RealtimeFactor reports how many times faster than real time the run
// executed (simulated seconds per wall-clock second). Zero if timing is
// unavailable.
func (r *Result) RealtimeFactor() float64 {
	if r.Elapsed <= 0 || r.SampleRate <= 0 {
		return 0
	}
	simSeconds := float64(len(r.On)) / r.SampleRate
	return simSeconds / r.Elapsed.Seconds()
}

// Run simulates the scheme and returns the recordings.
func Run(p Params, scheme Scheme) (*Result, error) {
	start := time.Now()
	if err := p.Scene.Validate(); err != nil {
		return nil, err
	}
	if p.Duration <= 0 {
		return nil, fmt.Errorf("sim: duration %g must be positive", p.Duration)
	}
	if p.CausalTaps <= 0 {
		return nil, fmt.Errorf("sim: causal taps %d must be positive", p.CausalTaps)
	}
	if p.Mu <= 0 {
		return nil, fmt.Errorf("sim: mu %g must be positive", p.Mu)
	}
	if p.ExtraReferenceDelay < 0 {
		return nil, fmt.Errorf("sim: negative extra reference delay %d", p.ExtraReferenceDelay)
	}
	if p.BlockFDAF {
		if p.Supervise || p.Profiling || p.LossTransport != nil ||
			p.ClockSkewPPM != 0 || p.ClockSkewWanderPPM != 0 || p.DriftCorrect {
			return nil, fmt.Errorf("sim: BlockFDAF is incompatible with the transport/supervisor/profiling/clock-fault options")
		}
	}
	fs := p.Scene.SampleRate
	n := int(p.Duration * fs)
	if n < 1 {
		return nil, fmt.Errorf("sim: duration too short")
	}
	traceBlock := p.TraceBlock
	if traceBlock <= 0 {
		traceBlock = 512
	}

	// --- Acoustic channels -------------------------------------------------
	stageStart := time.Now()
	var (
		refStreams [][]float64 // per-source contribution at the relay mic
		earStreams [][]float64 // per-source contribution at the ear (open)
	)
	for _, src := range p.Scene.Sources {
		hnr, err := p.Scene.Room.ImpulseResponse(src.Pos, p.Scene.RelayPos, fs)
		if err != nil {
			return nil, fmt.Errorf("sim: source→relay RIR: %w", err)
		}
		hne, err := p.Scene.Room.ImpulseResponse(src.Pos, p.Scene.EarPos, fs)
		if err != nil {
			return nil, fmt.Errorf("sim: source→ear RIR: %w", err)
		}
		wave := audio.Render(src.Gen, n)
		// Pre-render via the convolver's block path: room IRs are long
		// enough that partitioned overlap-save beats direct convolution,
		// and the streaming-from-zero semantics match ConvolveSame. The
		// render cache folds the repeated per-scheme renders of one scene
		// into a single convolution (bit-identical by construction); the
		// shared slices are read-only from here on.
		refStreams = append(refStreams, acousticRenders.render(wave, hnr))
		earStreams = append(earStreams, acousticRenders.render(wave, hne))
	}
	ref := sumStreams(refStreams, n)
	open := sumStreams(earStreams, n)
	if p.Telemetry != nil {
		p.Telemetry.Timer("sim.stage.acoustics").Since(stageStart)
	}

	// --- Relay and wireless link -------------------------------------------
	stageStart = time.Now()
	relay, err := rf.NewRelay(p.Relay, fmParamsFor(p, fs))
	if err != nil {
		return nil, err
	}
	var forwarded []float64
	// The Bose schemes never read the forwarded reference (their mic is
	// local), so the capture chain only runs when the canceller — or an
	// attached trace, which records forwarded block levels for every
	// scheme — consumes it. Relay parameter validation above still applies
	// to all schemes.
	switch {
	case !scheme.usesLANC() && p.Trace == nil:
	case p.UseFMLink:
		forwarded, err = relay.Forward(ref, p.Channel)
		if err != nil {
			return nil, fmt.Errorf("sim: FM link: %w", err)
		}
	default:
		// The analog capture is deterministic in (ref, relay params), so
		// schemes of one figure share a single render. The cached slice is
		// shared: copy before any in-place processing below.
		forwarded = acousticRenders.memoized(ref, []float64{
			p.Relay.MicNoiseRMS, p.Relay.LPFCutoffHz, p.Relay.Gain,
			float64(p.Relay.Seed), fs,
		}, renderKindCapture, func() []float64 { return relay.Capture(ref) })
	}
	if p.ExtraReferenceDelay > 0 && forwarded != nil {
		dl, err := dsp.NewDelayLine(p.ExtraReferenceDelay)
		if err != nil {
			return nil, err
		}
		shifted := make([]float64, len(forwarded))
		for i, v := range forwarded {
			shifted[i] = dl.Process(v)
		}
		forwarded = shifted
	}
	if p.Telemetry != nil {
		p.Telemetry.Timer("sim.stage.link").Since(stageStart)
	}

	// --- Passive isolation --------------------------------------------------
	underCup := open
	if scheme.usesPassive() {
		passive, err := headphone.PassiveIsolation(fs, headphone.DefaultPassiveTaps)
		if err != nil {
			return nil, err
		}
		// The cup model is minimum-phase (no bulk group delay), so plain
		// causal convolution is the physically faithful application. Every
		// passive scheme of a figure applies the same cup to the same open
		// field, so the render is memoized like the room acoustics.
		underCup = acousticRenders.renderSame(open, passive)
	}

	// --- Secondary (speaker → error mic) chain ------------------------------
	// The acoustic part (transducer response and the centimeter air gap)
	// is shared; each device then adds its own processing latency.
	trans, err := NewTransducer(fs)
	if err != nil {
		return nil, err
	}
	acousticSec := dsp.Convolve(trans.ImpulseResponse(48), EarSecondaryPath())
	var secIR []float64
	if scheme.usesLANC() {
		// MUTE's TI-board pipeline: whole samples of converter latency.
		secIR = acousticSec
		if pipe := p.Pipeline.Total(); pipe > 0 {
			delta := make([]float64, pipe+1)
			delta[pipe] = 1
			secIR = dsp.Convolve(delta, secIR)
		}
	} else {
		// The commercial headphone's optimized (sub-sample) latency.
		late := p.BoseLatencySamples
		if late == 0 {
			late = 0.5
		}
		frac, err := dsp.FractionalDelayFIR(late)
		if err != nil {
			return nil, err
		}
		secIR = dsp.Convolve(frac, acousticSec)
	}
	// Calibrate ĥ_se by probing the true chain, as the paper does with a
	// known preamble.
	secEst, err := anc.EstimateSecondaryPath(secIR, len(secIR)+8, 0, p.EarMicNoiseRMS, p.Seed+11)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Scheme:           scheme,
		Open:             open,
		Off:              underCup,
		LookaheadSamples: p.Scene.LookaheadSamples(),
		SampleRate:       fs,
	}

	// --- Active cancellation loop -------------------------------------------
	// The cancellation pipeline itself — supervisor/LANC (or BlockFDAF),
	// secondary chain, residual metering — is wired once in internal/graph
	// and shared with the live CLIs; the simulator only binds its offline
	// sources (pre-rendered acoustics, the replayed packetized transport)
	// and replayed drift decisions to that one construction site.
	stageStart = time.Now()
	earNoise := audio.NewRNG(p.Seed + 23)
	on := make([]float64, n)
	residual := make([]float64, n)
	switch {
	case scheme == PassiveOnly:
		copy(on, underCup)
		copy(residual, underCup)
	case scheme.usesLANC() && p.BlockFDAF:
		// Partitioned frequency-domain path: anti-noise is produced one
		// block at a time, adapting on the previous block's error. The
		// forwarded stream leads the wavefront by the scene lookahead, out
		// of which B−1 samples fund the block latency (the last sample of a
		// block is committed B−1 samples before its error is observable).
		bsize := p.BlockSize
		if bsize == 0 {
			bsize = 32
		}
		blockMu := p.BlockMu
		if blockMu == 0 {
			blockMu = 0.4
		}
		pl, err := graph.Build(graph.Config{
			SampleRate:          fs,
			Lookahead:           res.LookaheadSamples,
			ExtraReferenceDelay: p.ExtraReferenceDelay,
			Pipeline:            p.Pipeline,
			MaxNonCausalTaps:    p.MaxNonCausalTaps,
			Canceller: graph.CancellerParams{
				CausalTaps:    p.CausalTaps,
				SecondaryPath: secEst,
			},
			FDAF:        &graph.FDAFParams{BlockSize: bsize, Mu: blockMu},
			Reference:   &graph.SliceSource{Samples: forwarded},
			Ambient:     &graph.SliceAmbient{Local: open, Cup: underCup},
			SecondaryIR: secIR,
			NoiseRMS:    p.EarMicNoiseRMS,
			Noise:       earNoise,
			On:          on,
			Residual:    residual,
			Trace:       p.Trace,
			TraceBlock:  traceBlock,
			Telemetry:   p.Telemetry,
		})
		if err != nil {
			return nil, err
		}
		res.Budget = pl.Budget
		res.UsedNonCausalTaps = pl.NonCausalTaps
		res.BudgetSpend = pl.Spend
		if err := pl.Run(n, bsize); err != nil {
			return nil, err
		}
	case scheme.usesLANC():
		// The packetized transport replaces the ideal reference wire with
		// framed, lossy delivery plus a concealment mask. Its playout
		// buffering delays the reference by PrimeSamples, which comes
		// straight out of the lookahead budget below.
		var mask []bool
		prime := 0
		skewed := p.ClockSkewPPM != 0 || p.ClockSkewWanderPPM != 0
		var lt *LossTransport
		if p.LossTransport != nil {
			c := *p.LossTransport
			lt = &c
		} else if skewed || p.DriftCorrect {
			// Clock faults presuppose the packetized transport; synthesize
			// the default framing the drift experiments use.
			lt = &LossTransport{FrameSamples: 40, PrimeFrames: 1, LossAware: true}
		}
		driftGuard := 0
		frameN := 0
		var drift *DriftReport
		if lt != nil {
			if lt.Trace == nil {
				// Inherit the run's trace so the stream/lookahead stages
				// land in the same timeline as the canceller's.
				lt.Trace = p.Trace
			}
			if skewed && lt.Skew == nil {
				lt.Skew = &stream.SkewParams{
					Seed:      p.Seed + 41,
					PPM:       p.ClockSkewPPM,
					WanderPPM: p.ClockSkewWanderPPM,
				}
			}
			if p.DriftCorrect {
				lt.DriftCorrect = true
			}
			if lt.Drift == nil {
				lt.Drift = p.DriftConfig
			}
			recv, m, tstats, err := PacketizeReference(forwarded, *lt)
			if err != nil {
				return nil, err
			}
			prime = lt.PrimeSamples()
			frameN = lt.FrameSamples
			if frameN == 0 {
				frameN = 80
			}
			shifted := make([]float64, n)
			mask = make([]bool, n)
			for t := prime; t < n; t++ {
				shifted[t] = recv[t-prime]
				mask[t] = m[t-prime]
			}
			forwarded = shifted
			res.Transport = &tstats
			drift = tstats.Drift
			if lt.DriftCorrect && lt.Skew != nil && lt.Skew.Enabled() {
				// The resampler's cubic kernel reads up to two samples of
				// future at fractional positions; with an actual skew in
				// play those positions are fractional, so the guard comes
				// out of the lookahead budget. On a clean clock positions
				// stay integral and the guard — like the resampler — is
				// free.
				driftGuard = 2
			}
		}
		// Drift-stage hooks replayed onto the loop clock: adaptation holds
		// at suspected oscillator steps (the alignment is about to slew),
		// and per-window estimator state feeding the supervisor's health
		// view. Both land at window time plus the playout shift.
		var driftCtl graph.DriftControl
		if drift != nil && (len(drift.RateJumps) > 0 || p.Supervise) {
			replay := &graph.DriftReplay{HoldSamples: 2 * frameN}
			if len(drift.RateJumps) > 0 {
				replay.Holds = make(map[int64]bool, len(drift.RateJumps))
				for _, j := range drift.RateJumps {
					replay.Holds[j+int64(prime)] = true
				}
			}
			if p.Supervise {
				replay.Windows = make([]graph.DriftObservation, len(drift.Windows))
				for i, w := range drift.Windows {
					replay.Windows[i] = graph.DriftObservation{
						At:     w.AtSample + int64(prime),
						PPM:    w.PPM,
						Locked: w.Locked,
					}
				}
			}
			driftCtl = replay
		}
		gcfg := graph.Config{
			SampleRate:          fs,
			Lookahead:           res.LookaheadSamples,
			PrimeSamples:        prime,
			ExtraReferenceDelay: p.ExtraReferenceDelay,
			DriftGuard:          driftGuard,
			Pipeline:            p.Pipeline,
			MaxNonCausalTaps:    p.MaxNonCausalTaps,
			Canceller: graph.CancellerParams{
				CausalTaps:       p.CausalTaps,
				Mu:               p.Mu,
				PlainLMS:         p.PlainLMS,
				SecondaryPath:    secEst,
				Profiling:        p.Profiling,
				ProfileWindow:    p.ProfileWindow,
				ProfileHop:       p.ProfileHop,
				ProfileThreshold: p.ProfileThreshold,
				MaxProfiles:      p.MaxProfiles,
			},
			Supervise:         p.Supervise,
			SupervisorConfig:  p.SupervisorConfig,
			FallbackSecondary: secEst,
			Reference:         &graph.SliceSource{Samples: forwarded, Mask: mask},
			Ambient:           &graph.SliceAmbient{Local: open, Cup: underCup},
			Drift:             driftCtl,
			SecondaryIR:       secIR,
			NoiseRMS:          p.EarMicNoiseRMS,
			Noise:             earNoise,
			On:                on,
			Residual:          residual,
			Trace:             p.Trace,
			TraceBlock:        traceBlock,
			Telemetry:         p.Telemetry,
		}
		if lt != nil {
			gcfg.Canceller.LossAware = lt.LossAware
			gcfg.Canceller.RecoveryRamp = lt.RecoveryRamp
		}
		pl, err := graph.Build(gcfg)
		if err != nil {
			return nil, err
		}
		res.Budget = pl.Budget
		res.UsedNonCausalTaps = pl.NonCausalTaps
		res.BudgetSpend = pl.Spend
		if err := pl.Run(n, traceBlock); err != nil {
			return nil, err
		}
		res.Switches = pl.LANC.Switches()
		if pl.Sup != nil {
			rep := pl.Sup.Report()
			res.Supervision = &rep
		}
	default: // Bose schemes
		// The headphone's reference mic sits on the cup exterior and
		// hears the open-ear field; its own pipeline delay is inside
		// headphone.ANC, and the secondary chain here carries the
		// remaining physical path.
		hcfg := headphone.DefaultConfig(fs, secEst)
		hcfg.PipelineDelaySamples = 0 // physical chain already delays via secIR
		hp, err := headphone.NewANC(hcfg)
		if err != nil {
			return nil, err
		}
		secCh := dsp.NewStreamConvolver(secIR)
		e := 0.0
		for t := 0; t < n; t++ {
			a := hp.Step(open[t], e)
			meas := underCup[t] + secCh.Process(a)
			on[t] = meas
			e = meas
			if p.EarMicNoiseRMS != 0 {
				// Skipping the draw at zero RMS leaves every sample's bits
				// unchanged (0·Norm() only ever adds a signed zero) and
				// spares a Box-Muller transform per sample.
				e += p.EarMicNoiseRMS * earNoise.Norm()
			}
			residual[t] = e
		}
	}
	res.On = on
	res.Residual = residual
	if p.Telemetry != nil {
		p.Telemetry.Timer("sim.stage.cancel").Since(stageStart)
		instrumentRun(p.Telemetry, res, n)
	}
	if p.Trace != nil {
		// Post-loop block levels: reading the pre-rendered streams after
		// the fact keeps the cancellation loop itself untouched.
		traceBlockLevels(p.Trace, telemetry.StageCapture, "relay_mic", ref, traceBlock)
		traceBlockLevels(p.Trace, telemetry.StageLink, "forwarded", forwarded, traceBlock)
		traceBlockLevels(p.Trace, telemetry.StageResidual, "ear", residual, traceBlock)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// traceBlockLevels records one stage's per-block signal level (dB relative
// to full scale) from a pre-rendered sample stream.
func traceBlockLevels(tr *telemetry.Trace, stage, name string, x []float64, block int) {
	for start := 0; start < len(x); start += block {
		end := min(start+block, len(x))
		p := dsp.Power(x[start:end])
		tr.Record(int64(start), stage, name, map[string]float64{
			"power_db": dsp.DB(p + dsp.EpsilonPower),
		})
	}
}

// instrumentRun publishes a finished run's deterministic series: sample
// counts, budget gauges, the per-block residual-power histogram, and the
// transport counters as first-class series.
func instrumentRun(reg *telemetry.Registry, r *Result, n int) {
	reg.Counter("sim.runs").Inc()
	reg.Counter("sim.samples").Add(int64(n))
	reg.Gauge("sim.lookahead_samples").Set(float64(r.LookaheadSamples))
	reg.Gauge("sim.noncausal_taps").Set(float64(r.UsedNonCausalTaps))
	h := reg.Histogram("sim.residual_block_power", telemetry.HistogramOpts{Lo: 1e-12, Ratio: 10, Buckets: 14})
	const block = 512
	for start := 0; start < len(r.Residual); start += block {
		end := min(start+block, len(r.Residual))
		h.Observe(dsp.Power(r.Residual[start:end]))
	}
	if r.Transport != nil {
		r.Transport.Jitter.Publish(reg, "stream.")
		r.Transport.Link.Publish(reg, "link.")
		reg.Counter("stream.fec_recovered").Add(int64(r.Transport.FECRecovered))
		if d := r.Transport.Drift; d != nil {
			reg.Gauge("drift.est_ppm").Set(d.FinalPPM)
			reg.Gauge("drift.max_abs_ppm").Set(d.MaxAbsPPM)
			reg.Gauge("drift.final_occ_err").Set(d.FinalOccErr)
			reg.Counter("drift.rate_jumps").Add(int64(len(d.RateJumps)))
		}
	}
	if r.BudgetSpend != nil {
		for _, e := range r.BudgetSpend.Entries {
			reg.Gauge("budget." + e.Stage + "_samples").Set(float64(e.Samples))
		}
	}
	if r.Supervision != nil {
		reg.Counter("supervisor.transitions").Add(int64(len(r.Supervision.Transitions)))
		reg.Counter("supervisor.probes").Add(int64(r.Supervision.Probes))
		reg.Counter("supervisor.failed_probes").Add(int64(r.Supervision.FailedProbes))
		reg.Counter("supervisor.warm_starts").Add(int64(r.Supervision.WarmStarts))
		reg.Counter("supervisor.tainted_suppressed").Add(r.Supervision.TaintedSuppressed)
		for st, samples := range r.Supervision.TimeInState {
			reg.Counter("supervisor.time_in_" + supervisor.State(st).String()).Add(samples)
		}
	}
}

// fmParamsFor adapts the FM parameters to the scene sample rate.
func fmParamsFor(p Params, fs float64) rf.FMParams {
	fm := p.FM
	if fm.AudioRate == 0 {
		fm = rf.DefaultFMParams()
	}
	fm.AudioRate = fs
	return fm
}

func sumStreams(streams [][]float64, n int) []float64 {
	out := make([]float64, n)
	for _, s := range streams {
		for i := 0; i < n && i < len(s); i++ {
			out[i] += s[i]
		}
	}
	return out
}

// CancellationDB computes the scheme's cancellation-vs-open spectrum
// average over [loHz, hiHz] from a result, discarding the first
// convergence fraction of the recording.
func (r *Result) CancellationDB(loHz, hiHz float64) (float64, error) {
	skip := len(r.On) / 2
	pOn, err := dsp.WelchPSD(r.On[skip:], r.SampleRate, 1024)
	if err != nil {
		return 0, err
	}
	pOff, err := dsp.WelchPSD(r.Open[skip:], r.SampleRate, 1024)
	if err != nil {
		return 0, err
	}
	num := pOn.BandPower(loHz, hiHz)
	den := pOff.BandPower(loHz, hiHz)
	return dsp.DB((num + dsp.EpsilonPower) / (den + dsp.EpsilonPower)), nil
}

// ActiveGainDB computes the active-only contribution (On vs Off, both under
// the same passive hardware) over [loHz, hiHz] — the Bose_Active quantity.
func (r *Result) ActiveGainDB(loHz, hiHz float64) (float64, error) {
	skip := len(r.On) / 2
	pOn, err := dsp.WelchPSD(r.On[skip:], r.SampleRate, 1024)
	if err != nil {
		return 0, err
	}
	pOff, err := dsp.WelchPSD(r.Off[skip:], r.SampleRate, 1024)
	if err != nil {
		return 0, err
	}
	num := pOn.BandPower(loHz, hiHz)
	den := pOff.BandPower(loHz, hiHz)
	return dsp.DB((num + dsp.EpsilonPower) / (den + dsp.EpsilonPower)), nil
}

// SteadyState returns the second half of signal x — the converged portion
// used for spectra.
func SteadyState(x []float64) []float64 { return x[len(x)/2:] }
