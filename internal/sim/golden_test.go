package sim

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mute/internal/audio"
	"mute/internal/stream"
	"mute/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace files")

// goldenTolerance bounds the per-value drift the golden diff accepts. The
// pipeline is deterministic for a fixed seed, so on one platform the match
// is exact; the tolerance absorbs cross-platform floating-point wiggle
// (fused multiply-add, libm differences) without letting behavior changes
// through.
const (
	goldenRelTol = 1e-6
	goldenAbsTol = 1e-9
)

// goldenRun produces the traced reference run of one scenario. One second
// of white noise through the default Figure 1 scene is enough to cover
// convergence, and keeps the goldens reviewable (~100 lines of JSONL).
func goldenRun(t *testing.T, lt *LossTransport) (*telemetry.Trace, *Result) {
	t.Helper()
	tr := telemetry.NewTrace()
	p := DefaultParams(DefaultScene(audio.NewWhiteNoise(1, 8000, 0.5)))
	p.Duration = 1
	p.Seed = 1
	p.Trace = tr
	p.LossTransport = lt
	res, err := Run(p, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

// burstTransport is the 10% Gilbert–Elliott burst-loss scenario: 5 ms
// frames, one frame of playout priming (the default scene's ~70-sample
// lookahead covers it), FEC on, concealment-aware adaptation.
func burstTransport() *LossTransport {
	return &LossTransport{
		Link:         stream.LossParams{Seed: 42, Loss: 0.10, MeanBurst: 4},
		FrameSamples: 40,
		PrimeFrames:  1,
		FECGroup:     4,
		LossAware:    true,
	}
}

// diffTraces compares a recorded trace against a golden one: event count,
// order, timestamps, stages, names, and value keys must match exactly;
// values match within tolerance.
func diffTraces(t *testing.T, got, want []telemetry.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trace has %d events, golden has %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.T != w.T || g.Stage != w.Stage || g.Name != w.Name {
			t.Fatalf("event %d is (t=%d %s/%s), golden has (t=%d %s/%s)",
				i, g.T, g.Stage, g.Name, w.T, w.Stage, w.Name)
		}
		if len(g.Values) != len(w.Values) {
			t.Fatalf("event %d (%s/%s) has %d values, golden has %d",
				i, g.Stage, g.Name, len(g.Values), len(w.Values))
		}
		for k, wv := range w.Values {
			gv, ok := g.Values[k]
			if !ok {
				t.Fatalf("event %d (%s/%s) lost value %q", i, g.Stage, g.Name, k)
			}
			if diff := math.Abs(gv - wv); diff > goldenAbsTol && diff > goldenRelTol*math.Abs(wv) {
				t.Errorf("event %d (t=%d %s/%s) %s = %v, golden %v",
					i, g.T, g.Stage, g.Name, k, gv, wv)
			}
		}
	}
}

// checkGolden diffs a trace against testdata/<name>.jsonl, rewriting the
// golden under -update.
func checkGolden(t *testing.T, name string, tr *telemetry.Trace) {
	t.Helper()
	path := filepath.Join("testdata", name+".jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d events)", path, tr.Len())
		return
	}
	want, err := telemetry.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	diffTraces(t, tr.Events(), want)
}

// checkBudgetInvariant enforces the accounting identity on the traced
// budget: the per-stage lookahead entries sum to the scene's lookahead
// within one sample period.
func checkBudgetInvariant(t *testing.T, tr *telemetry.Trace, res *Result) {
	t.Helper()
	var sum float64
	var entries int
	for _, ev := range tr.Events() {
		if ev.Stage != telemetry.StageBudget {
			continue
		}
		entries++
		sum += ev.Values["samples"]
	}
	if entries == 0 {
		t.Fatal("no budget entries in trace")
	}
	if d := sum - float64(res.LookaheadSamples); d < -1 || d > 1 {
		t.Errorf("budget entries sum to %g, lookahead is %d", sum, res.LookaheadSamples)
	}
	if res.BudgetSpend == nil || !res.BudgetSpend.Balanced() {
		t.Error("Result.BudgetSpend missing or unbalanced")
	}
}

// TestGoldenTraceClean is the clean-link golden: the full stage trace of a
// one-second MUTE_Hollow run over the ideal reference wire.
func TestGoldenTraceClean(t *testing.T) {
	tr, res := goldenRun(t, nil)
	checkBudgetInvariant(t, tr, res)
	checkGolden(t, "golden_clean", tr)
}

// TestGoldenTraceBurst is the lossy golden: the same run with the reference
// packetized over a 10% burst-loss link with FEC and loss-aware adaptation.
// The stream/lookahead stages join the trace here.
func TestGoldenTraceBurst(t *testing.T) {
	tr, res := goldenRun(t, burstTransport())
	checkBudgetInvariant(t, tr, res)
	stages := map[string]bool{}
	for _, ev := range tr.Events() {
		stages[ev.Stage] = true
	}
	for _, want := range []string{
		telemetry.StageCapture, telemetry.StageLink, telemetry.StageStream,
		telemetry.StageLookahead, telemetry.StageLANC, telemetry.StageResidual,
		telemetry.StageBudget,
	} {
		if !stages[want] {
			t.Errorf("stage %q missing from burst trace", want)
		}
	}
	checkGolden(t, "golden_burst", tr)
}
