package sim

import (
	"mute/internal/dsp"
	"mute/internal/stream"
	"mute/internal/telemetry"
)

// DriftWindow is the drift stage's view at one playout window: the
// filtered skew estimate, the resampler rate actually applied (0 ppm in
// the naive/supervised policies, which run the estimator but not the
// resampler), and the buffer-occupancy error steering the phase term.
type DriftWindow struct {
	// AtSample is the window's first sample on the receiver clock, before
	// the playout-prime shift the caller applies.
	AtSample int64
	// PPM is the filtered skew estimate at the window.
	PPM float64
	// RatePPM is the resampler's applied rate deviation, (rate−1)·1e6.
	RatePPM float64
	// OccErr is the occupancy error in samples: how far the resampler's
	// read position lags its target behind the newest delivered timestamp.
	OccErr float64
	// Locked reports the estimate was locked and fresh enough to steer
	// with (stream.DriftEstimator.Estimable) at the window.
	Locked bool
}

// DriftReport summarizes the clock-drift stage of one transport run.
type DriftReport struct {
	// Corrected reports whether the adaptive resampler was in the path.
	Corrected bool
	// FinalPPM is the filtered skew estimate at end of run.
	FinalPPM float64
	// MaxAbsPPM is the largest estimate magnitude seen at any window.
	MaxAbsPPM float64
	// Locked reports whether the estimator ever accumulated lock.
	Locked bool
	// RateJumps lists windows (AtSample values) where the estimator
	// flagged a suspected oscillator step; the engine masks canceller
	// adaptation there.
	RateJumps []int64
	// Windows traces every playout window in order.
	Windows []DriftWindow
	// FinalOccErr is the occupancy error at the last window.
	FinalOccErr float64
}

// packetizeSkewed is PacketizeReference's generalization to a relay on a
// skewed oscillator: relay samples are captured at ear-clock positions
// dictated by stream.ClockSkew (the reference warped onto the relay's
// clock), frames carry relay-sample timestamps, and every transport event
// — send, delivery, playout — is interleaved on the ear clock. A
// DriftEstimator watches delivered data frames; with lt.DriftCorrect a
// VariRateResampler between the jitter buffer and the playout stream
// consumes input at the estimated relay rate, holding the reference
// sample-aligned to the ear.
//
// At zero configured skew every capture position is an exact integer, the
// warp is the identity, frame availability times land on the unskewed
// lattice, and the event interleave — including send-vs-playout tie
// ordering and the end-of-stream drain — reduces to PacketizeReference's
// loop bit for bit; with DriftCorrect the estimator reads exactly slope
// 1.0, the rate stays exactly 1, and the resampler is an exact
// passthrough (pinned by TestDriftCorrectCleanClockIdentity).
func packetizeSkewed(ref []float64, lt LossTransport) ([]float64, []bool, LossTransportStats, error) {
	var stats LossTransportStats
	var sp stream.SkewParams
	if lt.Skew != nil {
		sp = *lt.Skew
	}
	cs, err := stream.NewClockSkew(sp)
	if err != nil {
		return nil, nil, stats, err
	}
	link, err := stream.NewLossyLink(lt.Link)
	if err != nil {
		return nil, nil, stats, err
	}
	var enc *stream.FECEncoder
	if lt.FECGroup > 0 {
		if enc, err = stream.NewFECEncoder(lt.FECGroup); err != nil {
			return nil, nil, stats, err
		}
	}
	jb, err := stream.NewJitterBuffer(lt.Depth)
	if err != nil {
		return nil, nil, stats, err
	}
	jb.Anchor(0)
	dec := stream.NewFECDecoder(4 * lt.Depth)
	var dcfg stream.DriftConfig
	if lt.Drift != nil {
		dcfg = *lt.Drift
	}
	est, err := stream.NewDriftEstimator(dcfg)
	if err != nil {
		return nil, nil, stats, err
	}
	var rs *dsp.VariRateResampler
	if lt.DriftCorrect {
		rs = dsp.NewVariRateResampler()
	}

	frameN := lt.FrameSamples
	prime := lt.PrimeFrames
	n := len(ref)
	nPops := (n + frameN - 1) / frameN
	recv := make([]float64, nPops*frameN)
	mask := make([]bool, nPops*frameN)
	rep := &DriftReport{Corrected: lt.DriftCorrect}
	stats.Drift = rep

	// now is the ear-clock event time.
	now := 0.0
	occSm := 0.0
	lastOcc := 0.0

	deliver := func(frames []*stream.Frame) {
		for _, f := range frames {
			out := dec.Add(f)
			if out == nil {
				continue
			}
			if out != f {
				stats.FECRecovered++
			}
			jb.Push(out)
			// Only directly delivered data frames feed the slope fit:
			// FEC reconstructions land a group late, so their delivery
			// time says nothing about the relay clock.
			if out == f && !f.Parity {
				est.Observe(f.Timestamp, now)
			}
		}
	}

	traceEvery := lt.TraceEveryFrames
	if traceEvery <= 0 {
		traceEvery = 16
	}
	popped := 0
	pop := func(deliverDue func(t float64, windowStart bool)) {
		j := popped
		start := j * frameN
		tPop := float64((j + prime + 1) * frameN)
		estPPM := est.PPM()
		fresh := est.Estimable(tPop)
		rate := 1.0
		if rs != nil {
			occ := 0.0
			if est.Observations() > 0 {
				// Occupancy error against the estimator's fitted timestamp
				// line, extrapolated from the newest observation to this
				// pop: the target keeps the read position the playout
				// prime plus one in-flight frame behind the relay's clock.
				// Extrapolating (rather than reading the newest delivered
				// timestamp) makes the measure loss-robust — a dropped
				// frame never perturbs the line — and exactly 0 at zero
				// skew, where the line's slope is exactly 1.
				horizon := float64(est.LastTimestamp()) + float64(frameN) +
					(tPop-est.LastArrival())*(1+est.PPM()*1e-6)
				occ = horizon - rs.Position() - float64((prime+1)*frameN)
			}
			occSm += 0.125 * (occ - occSm)
			lastOcc = occ
			corr := estPPM
			if fresh {
				ph := occSm
				if ph > 40 {
					ph = 40
				} else if ph < -40 {
					ph = -40
				}
				corr += ph * est.Config().PhaseGainPPM
			}
			rs.SetRate(1 + corr*1e-6)
			rate = rs.Rate()
			for i := 0; i < frameN; i++ {
				if i > 0 {
					deliverDue(tPop+float64(i), false)
				}
				for !rs.Ready() {
					var v [1]float64
					var m [1]bool
					jb.PopMask(v[:], m[:])
					rs.Push(v[0], m[0])
				}
				recv[start+i], mask[start+i], _ = rs.Pop()
			}
		} else {
			for i := 0; i < frameN; i++ {
				if i > 0 {
					deliverDue(tPop+float64(i), false)
				}
				jb.PopMask(recv[start+i:start+i+1], mask[start+i:start+i+1])
			}
		}
		if est.StepSuspected() {
			rep.RateJumps = append(rep.RateJumps, int64(start))
		}
		if a := estPPM; a >= 0 {
			if a > rep.MaxAbsPPM {
				rep.MaxAbsPPM = a
			}
		} else if -a > rep.MaxAbsPPM {
			rep.MaxAbsPPM = -a
		}
		rep.Windows = append(rep.Windows, DriftWindow{
			AtSample: int64(start),
			PPM:      estPPM,
			RatePPM:  (rate - 1) * 1e6,
			OccErr:   lastOcc,
			Locked:   fresh,
		})
		if lt.Trace != nil && j%traceEvery == 0 {
			tracePlayout(lt.Trace, int64(start), jb, &stats, frameN)
			traceDrift(lt.Trace, int64(start), estPPM, rate, lastOcc, fresh)
		}
		popped++
	}

	// Phase 1 — capture and send. The relay's side of the run is
	// independent of playout, so every link event is computed up front and
	// recorded with its ear-clock delivery time; playout then consumes the
	// schedule sample by sample. A window pops at tPop but its i-th sample
	// renders at ear time tPop+i, so a frame landing mid-window is in time
	// for the samples after its arrival — without this, the sub-frame
	// phase between the arrival lattice (period F/(1+skew)) and the pop
	// lattice (period F) slips through a whole frame every F/|skew·1e-6|
	// samples and the buffer margin sawtooths through zero, concealing a
	// burst of samples once per cycle. Per-sample delivery keeps the
	// margin at about prime·F at every phase. At zero skew every delivery
	// lands exactly on a window start, so the schedule replays the
	// unskewed transport's event interleave bit for bit.
	type delivery struct {
		at     float64
		frames []*stream.Frame
		// drain marks the end-of-stream remnant: windows due by then play
		// out first (the unskewed loop's drain ordering), so it is held
		// until the next window start after at.
		drain bool
	}
	var sched []delivery
	seq := uint32(0)
	rIdx := uint64(0) // relay sample counter — the timestamp clock
	for cs.Pos() < float64(n) {
		samples := make([]float64, frameN)
		for i := range samples {
			p := cs.Advance()
			if p < float64(n) {
				samples[i] = dsp.CubicInterpAt(ref, p)
			}
			// p ≥ n: the relay has run past the captured signal and
			// forwards silence, matching the unskewed zero padding.
		}
		f := &stream.Frame{Seq: seq, Timestamp: rIdx, Samples: samples}
		rIdx += uint64(frameN)
		avail := cs.Pos()
		seq++
		// Transfer's result is scratch reused next slot; the schedule holds
		// deliveries across the whole phase, so copy.
		if out := link.Transfer(f); len(out) > 0 {
			sched = append(sched, delivery{at: avail, frames: append([]*stream.Frame(nil), out...)})
		}
		if enc != nil {
			if parity := enc.Add(f); parity != nil {
				parity.Seq = seq
				seq++
				if out := link.Transfer(parity); len(out) > 0 {
					sched = append(sched, delivery{at: avail, frames: append([]*stream.Frame(nil), out...)})
				}
			}
		}
	}
	if out := link.Drain(); len(out) > 0 {
		sched = append(sched, delivery{at: cs.Pos(), frames: append([]*stream.Frame(nil), out...), drain: true})
	}

	// Phase 2 — playout. Deliveries due at or before an event time land
	// first (a send tying a window start precedes the pop, as in the
	// unskewed loop); the drain remnant waits for a strictly later window.
	si := 0
	deliverDue := func(t float64, windowStart bool) {
		for si < len(sched) {
			d := sched[si]
			if d.at > t || (d.drain && !(windowStart && d.at < t)) {
				return
			}
			now = d.at
			deliver(d.frames)
			si++
		}
	}
	for popped < nPops {
		tPop := float64((popped + prime + 1) * frameN)
		deliverDue(tPop, true)
		pop(deliverDue)
	}
	// Anything still scheduled (a remnant landing after the last window)
	// feeds the estimator so the final report matches the full stream.
	for si < len(sched) {
		now = sched[si].at
		deliver(sched[si].frames)
		si++
	}

	rep.FinalPPM = est.PPM()
	rep.Locked = est.Locked()
	rep.FinalOccErr = lastOcc
	stats.Jitter = jb.Stats()
	stats.Link = link.Stats()
	return recv[:n], mask[:n], stats, nil
}

// traceDrift records the drift stage's state at one playout window.
func traceDrift(tr *telemetry.Trace, t int64, estPPM, rate, occ float64, locked bool) {
	l := 0.0
	if locked {
		l = 1
	}
	tr.Record(t, telemetry.StageDrift, "estimator", map[string]float64{
		"est_ppm":  estPPM,
		"rate_ppm": (rate - 1) * 1e6,
		"occ_err":  occ,
		"locked":   l,
	})
}
