package sim

import (
	"testing"

	"mute/internal/acoustics"
	"mute/internal/audio"
)

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		WallRelay:  "WallRelay",
		Tabletop:   "Tabletop",
		SmartNoise: "SmartNoise",
		Variant(9): "Variant(9)",
	}
	for v, want := range names {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}

func TestSmartNoiseMaximizesLookahead(t *testing.T) {
	base := DefaultParams(whiteScene(1))
	base.Duration = 6
	wall, err := RunVariant(VariantParams{Base: base, Variant: WallRelay})
	if err != nil {
		t.Fatal(err)
	}
	base2 := DefaultParams(whiteScene(1))
	base2.Duration = 6
	smart, err := RunVariant(VariantParams{Base: base2, Variant: SmartNoise})
	if err != nil {
		t.Fatal(err)
	}
	if smart.LookaheadSamples <= wall.LookaheadSamples {
		t.Errorf("smart-noise lookahead %d should exceed wall relay %d",
			smart.LookaheadSamples, wall.LookaheadSamples)
	}
	db, err := smart.CancellationDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if db > -6 {
		t.Errorf("smart-noise cancellation = %.1f dB, want < -6", db)
	}
}

func TestTabletopControlLoopCostsCancellation(t *testing.T) {
	run := func(loop int) float64 {
		base := DefaultParams(whiteScene(2))
		base.Duration = 6
		r, err := RunVariant(VariantParams{Base: base, Variant: Tabletop, ControlLoopDelaySamples: loop})
		if err != nil {
			t.Fatal(err)
		}
		db, err := r.CancellationDB(50, 4000)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	tight := run(2)
	loose := run(40)
	if tight > -6 {
		t.Errorf("tabletop with tight loop = %.1f dB, want < -6", tight)
	}
	// A large control loop consumes lookahead and delays feedback; with
	// correctly paired stale errors the penalty is small, but it must not
	// materially outperform the tight loop.
	if loose < tight-1.5 {
		t.Errorf("loose loop (%.1f dB) should not beat tight loop (%.1f dB) by > 1.5 dB", loose, tight)
	}
}

func TestTabletopErrors(t *testing.T) {
	base := DefaultParams(whiteScene(3))
	if _, err := RunVariant(VariantParams{Base: base, Variant: Tabletop, ControlLoopDelaySamples: -1}); err == nil {
		t.Error("negative loop delay should error")
	}
	bad := base
	bad.Duration = 0
	if _, err := RunVariant(VariantParams{Base: bad, Variant: Tabletop}); err == nil {
		t.Error("zero duration should error")
	}
	if _, err := RunVariant(VariantParams{Base: base, Variant: Variant(42)}); err == nil {
		t.Error("unknown variant should error")
	}
}

func TestRunMobileTracksMovingEar(t *testing.T) {
	base := DefaultParams(whiteScene(4))
	base.Duration = 6
	r, err := RunMobile(MobilityParams{
		Base:   base,
		EarEnd: acoustics.Point{X: 3.6, Y: 2.4, Z: 1.2}, // ~0.6 m drift
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := r.CancellationDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if db > -3 {
		t.Errorf("mobile-ear cancellation = %.1f dB, want < -3 (tracking)", db)
	}
	// Mobility should cost something versus the static run.
	static, err := Run(base, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := static.CancellationDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if db < sdb-1 {
		t.Errorf("moving ear (%.1f dB) should not beat static (%.1f dB)", db, sdb)
	}
}

func TestRunMobileErrors(t *testing.T) {
	base := DefaultParams(whiteScene(5))
	if _, err := RunMobile(MobilityParams{Base: base, EarEnd: acoustics.Point{X: 99}}); err == nil {
		t.Error("endpoint outside room should error")
	}
	bad := base
	bad.Duration = 0
	if _, err := RunMobile(MobilityParams{Base: bad, EarEnd: base.Scene.EarPos}); err == nil {
		t.Error("zero duration should error")
	}
	bad2 := DefaultParams(Scene{})
	if _, err := RunMobile(MobilityParams{Base: bad2, EarEnd: base.Scene.EarPos}); err == nil {
		t.Error("invalid scene should error")
	}
}

func TestRunMobileStationaryMatchesStaticClosely(t *testing.T) {
	// Degenerate path (start == end) should behave like the static run.
	base := DefaultParams(DefaultScene(audio.NewWhiteNoise(6, fs, 0.5)))
	base.Duration = 4
	r, err := RunMobile(MobilityParams{Base: base, EarEnd: base.Scene.EarPos})
	if err != nil {
		t.Fatal(err)
	}
	db, err := r.CancellationDB(50, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if db > -6 {
		t.Errorf("stationary mobile run = %.1f dB, want < -6", db)
	}
}
