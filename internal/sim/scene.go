// Package sim ties every substrate together into the end-to-end MUTE
// experiment platform of Figure 2: a noise source in a simulated room, an
// IoT relay with an FM wireless link, an ear device running LANC (or the
// conventional-headphone baseline), and a measurement microphone at the
// ear. It reproduces the paper's four comparison schemes — MUTE_Hollow,
// MUTE+Passive, Bose_Active and Bose_Overall — under identical acoustics.
package sim

import (
	"fmt"

	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/internal/dsp"
)

// Source is a sound source at a position in the room.
type Source struct {
	// Pos is the source position.
	Pos acoustics.Point
	// Gen produces the source waveform.
	Gen audio.Generator
}

// Scene is the physical layout of an experiment.
type Scene struct {
	// Room is the simulated room.
	Room acoustics.Room
	// Sources are the active sound sources; the first is the "dominant"
	// source used for lookahead budgeting.
	Sources []Source
	// RelayPos is where the IoT relay (reference microphone) is mounted.
	RelayPos acoustics.Point
	// EarPos is the ear-device position (error microphone, anti-noise
	// speaker, and measurement microphone are co-located here, as in the
	// paper's platform).
	EarPos acoustics.Point
	// SampleRate is the DSP processing rate (the paper's 8 kHz).
	SampleRate float64
}

// DefaultScene places one source near the door of the default room, the
// relay on the wall next to it, and the ear device across the room —
// the Figure 1 office layout.
func DefaultScene(gen audio.Generator) Scene {
	return Scene{
		Room: acoustics.DefaultRoom(),
		Sources: []Source{
			{Pos: acoustics.Point{X: 0.5, Y: 2.0, Z: 1.5}, Gen: gen},
		},
		RelayPos:   acoustics.Point{X: 1.0, Y: 2.0, Z: 1.5},
		EarPos:     acoustics.Point{X: 4.0, Y: 2.0, Z: 1.2},
		SampleRate: 8000,
	}
}

// Validate checks scene geometry.
func (s Scene) Validate() error {
	if err := s.Room.Validate(); err != nil {
		return err
	}
	if len(s.Sources) == 0 {
		return fmt.Errorf("sim: scene needs at least one source")
	}
	for i, src := range s.Sources {
		if !s.Room.Inside(src.Pos) {
			return fmt.Errorf("sim: source %d at %v outside room", i, src.Pos)
		}
		if src.Gen == nil {
			return fmt.Errorf("sim: source %d has no generator", i)
		}
		if src.Gen.SampleRate() != s.SampleRate {
			return fmt.Errorf("sim: source %d rate %g != scene rate %g", i, src.Gen.SampleRate(), s.SampleRate)
		}
	}
	if !s.Room.Inside(s.RelayPos) {
		return fmt.Errorf("sim: relay at %v outside room", s.RelayPos)
	}
	if !s.Room.Inside(s.EarPos) {
		return fmt.Errorf("sim: ear device at %v outside room", s.EarPos)
	}
	if s.SampleRate <= 0 {
		return fmt.Errorf("sim: sample rate %g must be positive", s.SampleRate)
	}
	return nil
}

// LookaheadSamples returns the geometric lookahead (in samples) the relay
// provides for the dominant source: acoustic source→ear delay minus
// source→relay delay (Equation 4).
func (s Scene) LookaheadSamples() int {
	src := s.Sources[0].Pos
	d := acoustics.DirectDelaySamples(src, s.EarPos, s.SampleRate) -
		acoustics.DirectDelaySamples(src, s.RelayPos, s.SampleRate)
	return int(d)
}

// Transducer models the combined frequency response of the cheap anti-noise
// speaker and microphone (Figure 13): weak response below ~120 Hz, a mild
// mid resonance, and roll-off approaching Nyquist.
type Transducer struct {
	chain *dsp.BiquadChain
}

// NewTransducer builds the cheap-hardware transducer model for the given
// sample rate.
func NewTransducer(sampleRate float64) (*Transducer, error) {
	hp, err := dsp.NewHighPassBiquad(120, sampleRate, 0.8)
	if err != nil {
		return nil, fmt.Errorf("sim: transducer HP: %w", err)
	}
	peak, err := dsp.NewPeakBiquad(900, sampleRate, 1.2, 2)
	if err != nil {
		return nil, fmt.Errorf("sim: transducer peak: %w", err)
	}
	lp, err := dsp.NewLowPassBiquad(0.47*sampleRate, sampleRate, 0.7071)
	if err != nil {
		return nil, fmt.Errorf("sim: transducer LP: %w", err)
	}
	return &Transducer{chain: dsp.NewBiquadChain(hp, peak, lp)}, nil
}

// Response returns the magnitude response at f Hz.
func (t *Transducer) Response(fHz, sampleRate float64) float64 {
	return t.chain.Response(fHz, sampleRate)
}

// ImpulseResponse returns the first n samples of the transducer impulse
// response (state is reset afterwards).
func (t *Transducer) ImpulseResponse(n int) []float64 {
	t.chain.Reset()
	in := make([]float64, n)
	in[0] = 1
	out := t.chain.ProcessBlock(in)
	t.chain.Reset()
	return out
}

// EarSecondaryPath returns the short acoustic path from the anti-noise
// speaker to the error microphone a couple of centimeters away: a strong
// direct tap with slight near-field spill.
func EarSecondaryPath() []float64 { return []float64{0.85, 0.22, 0.06} }
