package sim

import (
	"testing"

	"mute/internal/audio"
	"mute/internal/dsp"
	"mute/internal/stream"
	"mute/internal/supervisor"
	"mute/internal/telemetry"
)

// outageTransport packetizes the reference over an otherwise-clean link
// with one scheduled relay outage: 5 ms frames, one frame of playout
// priming, loss-aware adaptation. With FEC off every data frame occupies
// exactly one link slot, so slot k carries samples [40k, 40k+40).
func outageTransport(startSlot, durationSlots uint64) *LossTransport {
	return &LossTransport{
		Link: stream.LossParams{
			Seed:    7,
			Outages: []stream.Outage{{StartSlot: startSlot, DurationSlots: durationSlots}},
		},
		FrameSamples: 40,
		PrimeFrames:  1,
		LossAware:    true,
	}
}

// outageSupervisorConfig raises the demotion thresholds above the
// concealment transient that the playout-priming shift causes at t=0
// (one 40-sample concealed prefix ≈ 0.15 EWMA peak), so every ladder
// move in these tests is attributable to the scheduled outage.
func outageSupervisorConfig() *supervisor.Config {
	return &supervisor.Config{DegradeThreshold: 0.2, FallbackThreshold: 0.5}
}

// segmentDB measures residual-vs-open power over [lo, hi) seconds.
func segmentDB(res *Result, lo, hi float64) float64 {
	s0 := int(lo * float64(res.SampleRate))
	s1 := int(hi * float64(res.SampleRate))
	var resPow, openPow float64
	for t := s0; t < s1; t++ {
		resPow += res.On[t] * res.On[t]
		openPow += res.Open[t] * res.Open[t]
	}
	return dsp.DB((resPow + dsp.EpsilonPower) / (openPow + dsp.EpsilonPower))
}

// TestSupervisedOutageLadderWalk is the acceptance scenario: a 15 s
// MUTE_Hollow run whose relay reboots for 2 s at t=10 s. The supervised
// pipeline must walk down the ladder into FALLBACK during the outage,
// never emit concealed-reference anti-noise there, climb back to LANC
// after the link returns, and recover to within 1 dB of its pre-outage
// cancellation within 3 s of restoration.
func TestSupervisedOutageLadderWalk(t *testing.T) {
	const (
		fs          = 8000
		outageStart = 10.0 // seconds
		outageDur   = 2.0
	)
	p := DefaultParams(DefaultScene(audio.NewWhiteNoise(1, fs, 0.5)))
	p.Duration = 15
	p.Seed = 1
	p.Supervise = true
	p.SupervisorConfig = outageSupervisorConfig()
	// 40-sample frames: slot k carries samples [40k, 40k+40).
	p.LossTransport = outageTransport(uint64(outageStart*fs/40), uint64(outageDur*fs/40))
	res, err := Run(p, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Supervision
	if rep == nil {
		t.Fatal("supervised run returned no supervision report")
	}

	// The ladder walk: every move happens inside or after the outage
	// window (the thresholds above keep the priming transient quiet),
	// reaches FALLBACK while the link is down, and ends back at LANC.
	if len(rep.Transitions) == 0 {
		t.Fatal("no ladder transitions over a 2 s outage")
	}
	startSample := int64(outageStart * fs)
	if first := rep.Transitions[0]; first.From != supervisor.StateLANC || first.At < startSample {
		t.Fatalf("first transition %v→%v at t=%d, want a demotion from LANC after t=%d",
			first.From, first.To, first.At, startSample)
	}
	var hitFallback bool
	var backAt int64 = -1
	for _, tr := range rep.Transitions {
		if tr.To == supervisor.StateFallback {
			hitFallback = true
		}
		if hitFallback && tr.To == supervisor.StateLANC {
			backAt = tr.At
		}
	}
	if !hitFallback {
		t.Fatalf("ladder never reached FALLBACK: %+v", rep.Transitions)
	}
	if rep.FinalState != supervisor.StateLANC || backAt < 0 {
		t.Fatalf("ladder did not return to LANC (final %v, transitions %+v)",
			rep.FinalState, rep.Transitions)
	}
	restored := int64((outageStart + outageDur) * fs)
	if backAt > restored+3*fs {
		t.Errorf("promotion back to LANC at t=%d, want within 3 s of restoration (t=%d)",
			backAt, restored)
	}
	if rep.WarmStarts == 0 {
		t.Error("fallback engaged without a warm start from LANC's causal taps")
	}
	if rep.Probes == 0 {
		t.Error("no reacquisition probes fired during the outage")
	}

	// The FALLBACK guarantee: concealed-reference anti-noise is never
	// emitted. The only LANC output after the demotion is its crossfade
	// tail, and during an outage that tail is tainted — so every one of
	// its samples must have been suppressed.
	if rep.TimeInState[supervisor.StateFallback] == 0 {
		t.Error("no time spent in FALLBACK")
	}
	if rep.TaintedSuppressed == 0 {
		t.Error("demotion crossfade during the outage suppressed no tainted LANC samples")
	}
	var total int64
	for _, s := range rep.TimeInState {
		total += s
	}
	if total != int64(len(res.On)) {
		t.Errorf("time-in-state sums to %d, run is %d samples", total, len(res.On))
	}

	// Recovery: cancellation over the last two seconds (≥ 1 s after the
	// promotion, ending exactly 3 s after restoration) must be within
	// 1 dB of the converged pre-outage window.
	pre := segmentDB(res, 8, 10)
	post := segmentDB(res, 13, 15)
	if post > pre+1 {
		t.Errorf("post-outage cancellation %.2f dB, pre-outage %.2f dB: recovery worse than 1 dB", post, pre)
	}
	t.Logf("pre %.2f dB, post %.2f dB, transitions %+v", pre, post, rep.Transitions)
}

// TestSupervisedCleanLinkBitIdentity pins the supervisor's zero-cost
// guarantee: with a healthy link the supervised pipeline makes no ladder
// moves and its residual is bit-identical to the unsupervised one — both
// over the ideal reference wire and over a clean packetized transport.
func TestSupervisedCleanLinkBitIdentity(t *testing.T) {
	run := func(supervise bool, lt *LossTransport) *Result {
		t.Helper()
		p := DefaultParams(DefaultScene(audio.NewWhiteNoise(1, 8000, 0.5)))
		p.Duration = 2
		p.Seed = 1
		p.Supervise = supervise
		if supervise {
			p.SupervisorConfig = outageSupervisorConfig()
		}
		p.LossTransport = lt
		res, err := Run(p, MUTEHollow)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cleanStream := func() *LossTransport {
		return &LossTransport{
			Link:         stream.LossParams{Seed: 7},
			FrameSamples: 40,
			PrimeFrames:  1,
			LossAware:    true,
		}
	}
	cases := []struct {
		name string
		lt   func() *LossTransport
	}{
		{"ideal_wire", func() *LossTransport { return nil }},
		{"clean_stream", cleanStream},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain := run(false, tc.lt())
			sup := run(true, tc.lt())
			if n := len(sup.Supervision.Transitions); n != 0 {
				t.Fatalf("clean link caused %d ladder transitions: %+v",
					n, sup.Supervision.Transitions)
			}
			if len(plain.On) != len(sup.On) {
				t.Fatalf("length mismatch: %d vs %d", len(plain.On), len(sup.On))
			}
			for i := range plain.On {
				if plain.On[i] != sup.On[i] {
					t.Fatalf("residual diverges at sample %d: %v vs %v",
						i, plain.On[i], sup.On[i])
				}
			}
		})
	}
}

// TestGoldenTraceOutage is the outage golden: a three-second supervised
// run whose relay goes dark for half a second at t=1 s. The trace pins the
// supervisor stage — periodic state/health events plus the transition
// events of the full ladder round trip — alongside the stream and
// canceller stages. Regenerate with -update; CI replays it at -count=2 to
// enforce a byte-identical transition trace.
func TestGoldenTraceOutage(t *testing.T) {
	tr := telemetry.NewTrace()
	p := DefaultParams(DefaultScene(audio.NewWhiteNoise(1, 8000, 0.5)))
	p.Duration = 3
	p.Seed = 1
	p.Trace = tr
	p.Supervise = true
	p.SupervisorConfig = outageSupervisorConfig()
	p.LossTransport = outageTransport(200, 100) // dark for [1.0 s, 1.5 s)
	res, err := Run(p, MUTEHollow)
	if err != nil {
		t.Fatal(err)
	}
	checkBudgetInvariant(t, tr, res)
	if res.Supervision == nil || res.Supervision.FinalState != supervisor.StateLANC {
		t.Fatalf("outage golden run did not end back at LANC: %+v", res.Supervision)
	}
	var transitions int
	var stateEvents int
	for _, ev := range tr.Events() {
		if ev.Stage != telemetry.StageSupervisor {
			continue
		}
		switch ev.Name {
		case "transition":
			transitions++
		case "state":
			stateEvents++
		}
	}
	if transitions != len(res.Supervision.Transitions) {
		t.Errorf("trace has %d transition events, report has %d",
			transitions, len(res.Supervision.Transitions))
	}
	if transitions == 0 || stateEvents == 0 {
		t.Errorf("supervisor stage missing from trace: %d transitions, %d state events",
			transitions, stateEvents)
	}
	checkGolden(t, "golden_outage", tr)
}
