package sim

import (
	"fmt"

	"mute/internal/acoustics"
	"mute/internal/anc"
	"mute/internal/audio"
	"mute/internal/core"
	"mute/internal/dsp"
)

// MobilityParams configures a head-mobility run (Section 6, "Head
// Mobility"): the ear device drifts along a straight segment during the
// run, so the source→ear channel varies with time and the adaptive filter
// must track it. The simulator recomputes the ear-side impulse response at
// hop boundaries and cross-fades between segments.
type MobilityParams struct {
	// Base carries the common simulation parameters; Base.Scene.EarPos is
	// the starting position.
	Base Params
	// EarEnd is the ear position at the end of the run.
	EarEnd acoustics.Point
	// HopSeconds is how often the channel is re-sampled along the path
	// (default 0.25 s).
	HopSeconds float64
}

// RunMobile simulates MUTE_Hollow with a moving ear device and returns the
// standard Result (Open and On are the moving-ear recordings).
func RunMobile(mp MobilityParams) (*Result, error) {
	p := mp.Base
	if err := p.Scene.Validate(); err != nil {
		return nil, err
	}
	if p.Duration <= 0 {
		return nil, fmt.Errorf("sim: duration %g must be positive", p.Duration)
	}
	if !p.Scene.Room.Inside(mp.EarEnd) {
		return nil, fmt.Errorf("sim: ear path endpoint %v outside room", mp.EarEnd)
	}
	hop := mp.HopSeconds
	if hop <= 0 {
		hop = 0.25
	}
	fs := p.Scene.SampleRate
	n := int(p.Duration * fs)
	hopSamples := int(hop * fs)
	if hopSamples < 1 {
		hopSamples = 1
	}

	// Source waveforms and the (static) relay leg.
	waves := make([][]float64, len(p.Scene.Sources))
	ref := make([]float64, n)
	for i, src := range p.Scene.Sources {
		waves[i] = audio.Render(src.Gen, n)
		hnr, err := p.Scene.Room.ImpulseResponse(src.Pos, p.Scene.RelayPos, fs)
		if err != nil {
			return nil, err
		}
		leg := dsp.ConvolveSame(waves[i], hnr)
		for t := 0; t < n; t++ {
			ref[t] += leg[t]
		}
	}

	// Moving ear leg: piecewise channels with linear cross-fade across
	// each hop boundary to avoid clicks.
	start := p.Scene.EarPos
	open := make([]float64, n)
	var prev []*dsp.StreamConvolver
	var cur []*dsp.StreamConvolver
	mkChannels := func(pos acoustics.Point) ([]*dsp.StreamConvolver, error) {
		out := make([]*dsp.StreamConvolver, len(p.Scene.Sources))
		for i, src := range p.Scene.Sources {
			h, err := p.Scene.Room.ImpulseResponse(src.Pos, pos, fs)
			if err != nil {
				return nil, err
			}
			out[i] = dsp.NewStreamConvolver(h)
		}
		return out, nil
	}
	fade := hopSamples / 4
	for t := 0; t < n; t++ {
		if t%hopSamples == 0 {
			frac := float64(t) / float64(n)
			pos := acoustics.Point{
				X: start.X + (mp.EarEnd.X-start.X)*frac,
				Y: start.Y + (mp.EarEnd.Y-start.Y)*frac,
				Z: start.Z + (mp.EarEnd.Z-start.Z)*frac,
			}
			next, err := mkChannels(pos)
			if err != nil {
				return nil, err
			}
			prev = cur
			cur = next
		}
		var sNew, sOld float64
		for i := range p.Scene.Sources {
			x := waves[i][t]
			sNew += cur[i].Process(x)
			if prev != nil {
				sOld += prev[i].Process(x)
			}
		}
		if prev != nil && t%hopSamples < fade {
			w := float64(t%hopSamples) / float64(fade)
			open[t] = w*sNew + (1-w)*sOld
		} else {
			open[t] = sNew
		}
	}

	// Ear device: same LANC assembly as Run (no passive).
	trans, err := NewTransducer(fs)
	if err != nil {
		return nil, err
	}
	secIR := dsp.Convolve(trans.ImpulseResponse(48), EarSecondaryPath())
	if pipe := p.Pipeline.Total(); pipe > 0 {
		delta := make([]float64, pipe+1)
		delta[pipe] = 1
		secIR = dsp.Convolve(delta, secIR)
	}
	secEst, err := anc.EstimateSecondaryPath(secIR, len(secIR)+8, 0, p.EarMicNoiseRMS, p.Seed+11)
	if err != nil {
		return nil, err
	}
	la := p.Scene.LookaheadSamples()
	budget, err := core.NewBudget(la, p.Pipeline)
	if err != nil {
		return nil, err
	}
	nTaps := budget.UsableTaps
	if p.MaxNonCausalTaps > 0 && nTaps > p.MaxNonCausalTaps {
		nTaps = p.MaxNonCausalTaps
	}
	lanc, err := core.New(core.Config{
		NonCausalTaps: nTaps,
		CausalTaps:    p.CausalTaps,
		Mu:            p.Mu,
		Normalized:    !p.PlainLMS,
		Leak:          0.0005,
		SecondaryPath: secEst,
	})
	if err != nil {
		return nil, err
	}
	secCh := dsp.NewStreamConvolver(secIR)
	earNoise := audio.NewRNG(p.Seed + 23)
	on := make([]float64, n)
	residual := make([]float64, n)
	e := 0.0
	for t := 0; t < n; t++ {
		a := lanc.Step(ref[t], e)
		meas := open[t] + secCh.Process(a)
		on[t] = meas
		e = meas + p.EarMicNoiseRMS*earNoise.Norm()
		residual[t] = e
	}
	return &Result{
		Scheme:            MUTEHollow,
		Open:              open,
		Off:               open,
		On:                on,
		Residual:          residual,
		LookaheadSamples:  la,
		Budget:            budget,
		UsedNonCausalTaps: nTaps,
		SampleRate:        fs,
	}, nil
}
