package sim

import (
	"fmt"

	"mute/internal/stream"
	"mute/internal/telemetry"
)

// LossTransport routes the forwarded reference through the packetized
// stream layer — framing, an impaired link, optional FEC, and the jitter
// buffer — instead of the ideal sample-synchronous wire. It models a
// digital RF/UDP relay deployment where the reference arrives in frames
// that can be lost, delayed, duplicated, or reordered.
//
// The receiver holds PrimeFrames frames of playout buffering so FEC and
// jittered frames can arrive in time; that buffering consumes lookahead
// sample for sample, so the transport fits deployments whose geometric
// lookahead exceeds PrimeFrames·FrameSamples (the paper's Section 6
// "smart noise source" regime, where the reference is known well ahead).
type LossTransport struct {
	// Link configures the fault injector.
	Link stream.LossParams
	// FrameSamples is the samples per frame (default 80 = 10 ms at 8 kHz).
	FrameSamples int
	// FECGroup enables one parity frame per group of K data frames
	// (0 = off; otherwise 2..stream limits).
	FECGroup int
	// Depth is the jitter-buffer depth in frames (default 32).
	Depth int
	// PrimeFrames is the playout buffer depth in frames: frame k is played
	// only after frame k+PrimeFrames was offered to the link. Must cover
	// the FEC group and jitter spread for recovery to land in time.
	PrimeFrames int
	// LossAware selects the canceller's concealment-freeze mode
	// (core.Config.LossAware) when the transport is wired into Run.
	LossAware bool
	// Skew, when non-nil, runs the relay on a skewed oscillator: frames
	// carry relay-clock timestamps while delivery and playout ride the
	// ear clock (see stream.ClockSkew). Composes with Link faults. A
	// zero-skew configuration is bit-identical to leaving Skew nil.
	Skew *stream.SkewParams
	// DriftCorrect inserts the drift estimator + adaptive fractional
	// resampler between the jitter buffer and the playout stream, keeping
	// the reference sample-aligned to the ear clock under Skew. With no
	// actual skew the correction path is bit-identical to the plain
	// transport (pinned by TestDriftCorrectCleanClockIdentity).
	DriftCorrect bool
	// Drift overrides the estimator/loop tuning (nil = defaults).
	Drift *stream.DriftConfig
	// RecoveryRamp overrides the canceller's post-loss ramp (0 = default).
	RecoveryRamp int
	// Trace, when non-nil, receives per-playout-window stream events
	// (cumulative jitter/link counters) and lookahead-buffer occupancy on
	// the sample clock. sim.Run propagates its own trace here when the
	// caller left it nil.
	Trace *telemetry.Trace
	// TraceEveryFrames is the trace cadence in playout windows (0 = 16).
	TraceEveryFrames int
}

// withDefaults fills zero fields and validates.
func (lt LossTransport) withDefaults() (LossTransport, error) {
	if lt.FrameSamples == 0 {
		lt.FrameSamples = 80
	}
	if lt.FrameSamples < 0 || lt.FrameSamples > stream.MaxFrameSamples {
		return lt, fmt.Errorf("sim: frame size %d outside (0, %d]", lt.FrameSamples, stream.MaxFrameSamples)
	}
	if lt.Depth == 0 {
		lt.Depth = 32
	}
	if lt.Depth < 0 {
		return lt, fmt.Errorf("sim: negative jitter depth %d", lt.Depth)
	}
	if lt.PrimeFrames < 0 {
		return lt, fmt.Errorf("sim: negative prime depth %d", lt.PrimeFrames)
	}
	if lt.Skew != nil {
		if err := lt.Skew.Validate(); err != nil {
			return lt, err
		}
	}
	return lt, nil
}

// PrimeSamples is the playout-buffer latency in samples — the lookahead
// the transport consumes.
func (lt LossTransport) PrimeSamples() int {
	if lt.FrameSamples == 0 {
		lt.FrameSamples = 80
	}
	return lt.PrimeFrames * lt.FrameSamples
}

// LossTransportStats aggregates the transport-side counters of one run.
type LossTransportStats struct {
	// Jitter is the receive-side jitter-buffer view (late, duplicate,
	// dropped, concealed samples).
	Jitter stream.JitterStats
	// Link is the fault injector's view (offered, dropped, duplicated...).
	Link stream.LinkStats
	// FECRecovered counts frames reconstructed from parity.
	FECRecovered uint64
	// Drift carries the clock-drift stage's report when the transport ran
	// with Skew or DriftCorrect (nil otherwise).
	Drift *DriftReport
}

// PacketizeReference pushes ref through the packetized transport and
// returns the receiver's reconstruction, time-aligned to the capture
// clock: recv[i] corresponds to ref[i], mask[i] reports whether it is a
// real received sample (false = zero-filled concealment). The caller
// applies the PrimeSamples playout shift. The run is fully deterministic
// for a fixed lt.Link.Seed.
func PacketizeReference(ref []float64, lt LossTransport) ([]float64, []bool, LossTransportStats, error) {
	var stats LossTransportStats
	lt, err := lt.withDefaults()
	if err != nil {
		return nil, nil, stats, err
	}
	if lt.Skew != nil || lt.DriftCorrect {
		// The skewed-clock transport generalizes this one; at zero skew
		// its event interleaving and playout reduce to the loop below
		// bit for bit.
		return packetizeSkewed(ref, lt)
	}
	link, err := stream.NewLossyLink(lt.Link)
	if err != nil {
		return nil, nil, stats, err
	}
	var enc *stream.FECEncoder
	if lt.FECGroup > 0 {
		if enc, err = stream.NewFECEncoder(lt.FECGroup); err != nil {
			return nil, nil, stats, err
		}
	}
	jb, err := stream.NewJitterBuffer(lt.Depth)
	if err != nil {
		return nil, nil, stats, err
	}
	jb.Anchor(0) // the capture epoch is known out of band
	dec := stream.NewFECDecoder(4 * lt.Depth)

	deliver := func(frames []*stream.Frame) {
		for _, f := range frames {
			out := dec.Add(f)
			if out == nil {
				continue
			}
			if out != f {
				stats.FECRecovered++
			}
			jb.Push(out)
		}
	}

	frameN := lt.FrameSamples
	nFrames := (len(ref) + frameN - 1) / frameN
	padded := len(ref)
	if nFrames*frameN != padded {
		padded = nFrames * frameN
	}
	recv := make([]float64, padded)
	mask := make([]bool, padded)
	traceEvery := lt.TraceEveryFrames
	if traceEvery <= 0 {
		traceEvery = 16
	}
	pop := func(k int) {
		start := k * frameN
		jb.PopMask(recv[start:start+frameN], mask[start:start+frameN])
		if lt.Trace != nil && k%traceEvery == 0 {
			tracePlayout(lt.Trace, int64(start), jb, &stats, frameN)
		}
	}

	seq := uint32(0)
	popped := 0
	for k := 0; k < nFrames; k++ {
		samples := ref[k*frameN : min((k+1)*frameN, len(ref))]
		if len(samples) < frameN {
			full := make([]float64, frameN)
			copy(full, samples)
			samples = full
		}
		f := &stream.Frame{Seq: seq, Timestamp: uint64(k * frameN), Samples: samples}
		seq++
		deliver(link.Transfer(f))
		if enc != nil {
			if parity := enc.Add(f); parity != nil {
				parity.Seq = seq
				seq++
				deliver(link.Transfer(parity))
			}
		}
		if k >= lt.PrimeFrames {
			pop(popped)
			popped++
		}
	}
	// End of stream: everything still in flight lands, then the remaining
	// playout windows drain.
	deliver(link.Drain())
	for ; popped < nFrames; popped++ {
		pop(popped)
	}
	stats.Jitter = jb.Stats()
	stats.Link = link.Stats()
	return recv[:len(ref)], mask[:len(ref)], stats, nil
}

// tracePlayout records the transport's view at one playout window: the
// cumulative jitter-buffer counters (frames late/dropped/concealed as
// first-class series) and the lookahead-buffer occupancy — how many
// frames of forwarded future are sitting between the link and the
// canceller at this instant.
func tracePlayout(tr *telemetry.Trace, t int64, jb *stream.JitterBuffer, stats *LossTransportStats, frameN int) {
	st := jb.Stats()
	tr.Record(t, telemetry.StageStream, "jitter", map[string]float64{
		"frames_received":   float64(st.FramesReceived),
		"frames_late":       float64(st.FramesLate),
		"frames_dropped":    float64(st.FramesDropped),
		"frames_duplicate":  float64(st.FramesDuplicate),
		"samples_concealed": float64(st.SamplesConcealed),
		"samples_delivered": float64(st.SamplesDelivered),
		"fec_recovered":     float64(stats.FECRecovered),
	})
	buffered := jb.Buffered()
	tr.Record(t, telemetry.StageLookahead, "occupancy", map[string]float64{
		"frames":  float64(buffered),
		"samples": float64(buffered * frameN),
	})
}
