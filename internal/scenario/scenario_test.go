package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mute/internal/sim"
)

const validJSON = `{
  "room":   {"width": 5, "depth": 4, "height": 3, "absorption": 0.8},
  "relay":  {"x": 1.0, "y": 2.0, "z": 1.5},
  "ear":    {"x": 4.0, "y": 2.0, "z": 1.2},
  "sampleRate": 8000,
  "sources": [
    {"x": 0.5, "y": 2.0, "z": 1.5, "sound": "speech", "amp": 0.8, "seed": 7},
    {"x": 2.5, "y": 3.4, "z": 1.5, "sound": "hum", "freq": 150}
  ]
}`

func TestLoadAndBuild(t *testing.T) {
	spec, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	scene, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(scene.Sources) != 2 {
		t.Fatalf("sources = %d, want 2", len(scene.Sources))
	}
	if scene.SampleRate != 8000 {
		t.Errorf("rate = %g", scene.SampleRate)
	}
	// The built scene should actually simulate.
	p := sim.DefaultParams(scene)
	p.Duration = 1
	if _, err := sim.Run(p, sim.MUTEHollow); err != nil {
		t.Fatalf("built scene failed to run: %v", err)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"room": {}, "bogus": 1}`)); err == nil {
		t.Error("unknown fields should be rejected")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestBuildValidatesScene(t *testing.T) {
	spec, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec.Relay = PointSpec{X: 99, Y: 99, Z: 99}
	if _, err := spec.Build(); err == nil {
		t.Error("relay outside room should fail validation")
	}
}

func TestBuildUnknownSound(t *testing.T) {
	spec, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec.Sources[0].Sound = "theremin"
	if _, err := spec.Build(); err == nil {
		t.Error("unknown sound should error")
	}
}

func TestBuildEverySoundKind(t *testing.T) {
	sounds := []string{"white", "", "pink", "hum", "speech", "female", "sentences",
		"music", "construction", "babble", "traffic", "announcement", "tone"}
	for _, snd := range sounds {
		gen, err := buildGenerator(snd, 1, 8000, 0.5, 0)
		if err != nil {
			t.Errorf("%q: %v", snd, err)
			continue
		}
		var energy float64
		for i := 0; i < 40000; i++ {
			v := gen.Next()
			energy += v * v
		}
		if energy == 0 {
			t.Errorf("%q produced silence", snd)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scene.json")
	if err := os.WriteFile(path, []byte(validJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Sources) != 2 {
		t.Error("sources lost in file round trip")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestDefaultSeedsAndAmps(t *testing.T) {
	spec, err := Load(strings.NewReader(`{
	  "room":  {"width": 5, "depth": 4, "height": 3, "absorption": 0.8},
	  "relay": {"x": 1, "y": 2, "z": 1.5},
	  "ear":   {"x": 4, "y": 2, "z": 1.2},
	  "sources": [{"x": 0.5, "y": 2, "z": 1.5}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	scene, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if scene.SampleRate != 8000 {
		t.Error("default sample rate should apply")
	}
	if scene.Sources[0].Gen.SampleRate() != 8000 {
		t.Error("default generator rate mismatch")
	}
}
