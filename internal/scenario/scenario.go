// Package scenario loads experiment scenes from JSON, so deployments can
// be described declaratively and run with cmd/mutesim -scene:
//
//	{
//	  "room":   {"width": 5, "depth": 4, "height": 3, "absorption": 0.8},
//	  "relay":  {"x": 1.0, "y": 2.0, "z": 1.5},
//	  "ear":    {"x": 4.0, "y": 2.0, "z": 1.2},
//	  "sampleRate": 8000,
//	  "sources": [
//	    {"x": 0.5, "y": 2.0, "z": 1.5, "sound": "speech", "amp": 0.8, "seed": 7}
//	  ]
//	}
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/internal/sim"
)

// Spec is the JSON scene description.
type Spec struct {
	// Room describes the rectangular room.
	Room RoomSpec `json:"room"`
	// Relay is the IoT relay position.
	Relay PointSpec `json:"relay"`
	// Ear is the ear-device position.
	Ear PointSpec `json:"ear"`
	// SampleRate in Hz (default 8000).
	SampleRate float64 `json:"sampleRate"`
	// Sources lists the noise sources (at least one).
	Sources []SourceSpec `json:"sources"`
}

// RoomSpec describes the room geometry and absorption.
type RoomSpec struct {
	Width      float64 `json:"width"`
	Depth      float64 `json:"depth"`
	Height     float64 `json:"height"`
	Absorption float64 `json:"absorption"`
	// MaxOrder caps image-source reflections (0 = default).
	MaxOrder int `json:"maxOrder,omitempty"`
}

// PointSpec is a 3-D position in meters.
type PointSpec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// SourceSpec is one noise source.
type SourceSpec struct {
	PointSpec
	// Sound selects the generator: white, pink, hum, speech, female,
	// sentences, music, construction, babble, traffic, announcement, tone.
	Sound string `json:"sound"`
	// Amp scales the source level (default 0.5).
	Amp float64 `json:"amp,omitempty"`
	// Seed drives the generator (default: source index + 1).
	Seed uint64 `json:"seed,omitempty"`
	// Freq parameterizes tonal sources (tone frequency, hum fundamental;
	// defaults 440 and 120).
	Freq float64 `json:"freq,omitempty"`
}

// Load parses a Spec from JSON.
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	return &s, nil
}

// LoadFile parses a Spec from a JSON file.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}

// Build converts the Spec into a simulator Scene, instantiating the
// generators. The Scene is validated before return.
func (s *Spec) Build() (sim.Scene, error) {
	rate := s.SampleRate
	if rate == 0 {
		rate = 8000
	}
	scene := sim.Scene{
		Room: acoustics.Room{
			Size:       acoustics.Point{X: s.Room.Width, Y: s.Room.Depth, Z: s.Room.Height},
			Absorption: s.Room.Absorption,
			MaxOrder:   s.Room.MaxOrder,
		},
		RelayPos:   acoustics.Point{X: s.Relay.X, Y: s.Relay.Y, Z: s.Relay.Z},
		EarPos:     acoustics.Point{X: s.Ear.X, Y: s.Ear.Y, Z: s.Ear.Z},
		SampleRate: rate,
	}
	for i, src := range s.Sources {
		seed := src.Seed
		if seed == 0 {
			seed = uint64(i) + 1
		}
		amp := src.Amp
		if amp == 0 {
			amp = 0.5
		}
		gen, err := buildGenerator(src.Sound, seed, rate, amp, src.Freq)
		if err != nil {
			return sim.Scene{}, fmt.Errorf("scenario: source %d: %w", i, err)
		}
		scene.Sources = append(scene.Sources, sim.Source{
			Pos: acoustics.Point{X: src.X, Y: src.Y, Z: src.Z},
			Gen: gen,
		})
	}
	if err := scene.Validate(); err != nil {
		return sim.Scene{}, err
	}
	return scene, nil
}

func buildGenerator(sound string, seed uint64, rate, amp, freq float64) (audio.Generator, error) {
	switch sound {
	case "white", "":
		return audio.NewWhiteNoise(seed, rate, amp), nil
	case "pink":
		return audio.NewPinkNoise(seed, rate, amp), nil
	case "hum":
		if freq == 0 {
			freq = 120
		}
		return audio.NewMachineHum(seed, freq, rate, amp, 8), nil
	case "speech":
		return audio.NewSpeech(seed, audio.MaleVoice, rate, amp), nil
	case "female":
		return audio.NewSpeech(seed, audio.FemaleVoice, rate, amp), nil
	case "sentences":
		return audio.NewSentenceSpeech(seed, audio.MaleVoice, rate, amp), nil
	case "music":
		return audio.NewMusic(seed, rate, amp, 3), nil
	case "construction":
		return audio.NewConstructionNoise(seed, rate, amp), nil
	case "babble":
		return audio.NewBabble(seed, 3, rate, amp), nil
	case "traffic":
		return audio.NewTraffic(seed, rate, amp, 12), nil
	case "announcement":
		return audio.NewAnnouncement(seed, rate, amp), nil
	case "tone":
		if freq == 0 {
			freq = 440
		}
		return audio.NewTone(freq, rate, amp, 0), nil
	default:
		return nil, fmt.Errorf("unknown sound %q", sound)
	}
}
