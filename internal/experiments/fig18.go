package experiments

import (
	"mute/internal/acoustics"
	"mute/internal/audio"
	"mute/internal/dsp"
	"mute/internal/relaysel"
	"mute/internal/sim"
)

// correlationCase runs a scene and GCC-PHAT-correlates the relay's
// forwarded signal against the ear's local signal.
func correlationCase(c Config, relayPos acoustics.Point) (*relaysel.Correlation, error) {
	scene := sim.DefaultScene(audio.NewWhiteNoise(c.Seed, c.SampleRate, c.NoiseAmp))
	scene.RelayPos = relayPos
	if err := scene.Validate(); err != nil {
		return nil, err
	}
	fs := scene.SampleRate
	n := int(2 * fs)
	src := scene.Sources[0]
	hnr, err := scene.Room.ImpulseResponse(src.Pos, scene.RelayPos, fs)
	if err != nil {
		return nil, err
	}
	hne, err := scene.Room.ImpulseResponse(src.Pos, scene.EarPos, fs)
	if err != nil {
		return nil, err
	}
	wave := audio.Render(src.Gen, n)
	forwarded := dsp.ConvolveSame(wave, hnr)
	local := dsp.ConvolveSame(wave, hne)
	maxLag := int(0.012 * fs) // ±12 ms, matching the paper's plot range
	return relaysel.GCCPHAT(forwarded, local, maxLag)
}

// Fig18 reproduces the relay-selection correlation examples (Figure 18):
// the GCC-PHAT correlation function for a relay closer to the source than
// the ear (positive lookahead — spike at positive lag) and for a relay
// farther away (negative lookahead — spike at negative lag).
func Fig18(c Config) (*Figure, error) {
	c = c.Defaults()
	fig := &Figure{
		ID:     "fig18",
		Title:  "GCC-PHAT correlation between forwarded and local sound",
		XLabel: "Time (ms)",
		YLabel: "Generalized Correlation",
	}
	cases := []struct {
		Name string
		Pos  acoustics.Point
	}{
		// Near the source (door): positive lookahead.
		{"Positive Lookahead", acoustics.Point{X: 1.0, Y: 2.0, Z: 1.5}},
		// Beyond the ear device (far corner): negative lookahead.
		{"Negative Lookahead", acoustics.Point{X: 4.6, Y: 3.6, Z: 1.5}},
	}
	corrs := make([]*relaysel.Correlation, len(cases))
	err := parallelFor(c.Workers, len(cases), func(i int) error {
		corr, err := correlationCase(c, cases[i].Pos)
		if err != nil {
			return err
		}
		corrs[i] = corr
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, cs := range cases {
		corr := corrs[ci]
		s := Series{Name: cs.Name}
		for i, lag := range corr.Lags {
			s.X = append(s.X, float64(lag)/c.SampleRate*1000)
			s.Y = append(s.Y, corr.Values[i])
		}
		fig.Series = append(fig.Series, s)
		fig.Notes = append(fig.Notes, note("%s: peak at %.2f ms (positive = forwarded copy leads)",
			cs.Name, float64(corr.LagSamples)/c.SampleRate*1000))
	}
	return fig, nil
}
