package experiments

import (
	"mute/internal/mesh"
	"mute/internal/sim"
	"mute/internal/telemetry"
)

// meshSeries is one policy × trajectory × churn combination swept across
// relay counts.
type meshSeries struct {
	name    string
	walking bool
	naive   bool
	churn   float64
}

// MeshSweep measures the dense-mesh cancellation floor against relay
// count, source trajectory, and mesh churn, with the naive per-round
// argmax reselection as the baseline the hysteretic handoff policy is
// judged against.
//
// Every cell runs the full mesh supervisor inside the cancellation graph:
// seeded relay scatter, walking or static source, background burst loss
// on every link, and — in the churn cells — 10%/min crash churn plus
// three flapping relays pinned along the source path, flapping faster
// than the heartbeat timeout so they stay live and acoustically tempting.
// Policies sharing a relay count share seeds, so curves differ only by
// policy; the figure is deterministic for any worker count.
func MeshSweep(c Config) (*Figure, error) {
	c = c.Defaults()
	counts := []int{12, 50, 120}
	series := []meshSeries{
		{"hysteretic_static_source", false, false, 0},
		{"hysteretic_walk", true, false, 0},
		{"hysteretic_walk_churn", true, false, 0.10},
		{"naive_walk", true, true, 0},
		{"naive_walk_churn", true, true, 0.10},
	}

	// Each cell averages a small seed ensemble: churn schedules and relay
	// scatters vary enough run-to-run that a single draw can flatter or
	// sandbag either policy by a couple of dB.
	const ensemble = 3
	cells := len(series) * len(counts)
	runs := make([]*sim.MeshResult, cells*ensemble)
	kids := telemetryChildren(c.Telemetry, len(runs))
	err := parallelFor(c.Workers, len(runs), func(i int) error {
		s := series[i/(len(counts)*ensemble)]
		ci := (i / ensemble) % len(counts)
		// Paired seeds: every series at one (relay count, ensemble slot)
		// shares the relay layout, noise, and fault schedule, so curves
		// differ only by association policy.
		r, err := sim.RunMesh(sim.MeshScenario{
			SampleRate:  c.SampleRate,
			Duration:    c.Duration,
			Relays:      counts[ci],
			Seed:        c.Seed + uint64(ci)*13 + uint64(i%ensemble)*1031,
			NoiseAmp:    c.NoiseAmp,
			Walking:     s.walking,
			ChurnPerMin: s.churn,
			Naive:       s.naive,
			Telemetry:   childTelemetry(kids, i),
		})
		if err != nil {
			return err
		}
		runs[i] = r
		if reg := childTelemetry(kids, i); reg != nil {
			// Observation only: the run never branches on reg, so the
			// figure is byte-identical with telemetry on or off.
			reg.Counter("mesh.runs").Inc()
			reg.Counter("mesh.fault_events").Add(int64(r.FaultEvents))
			reg.Histogram("mesh.cell_residual_db", telemetry.HistogramOpts{Lo: 1e-2, Ratio: 2, Buckets: 16}).Observe(-r.ResidualDB)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	mergeTelemetry(c.Telemetry, kids)

	// Reduce each cell: mean residual, summed supervisor accounting.
	ys := make([]float64, cells)
	reports := make([]mesh.Report, cells)
	for cell := 0; cell < cells; cell++ {
		for e := 0; e < ensemble; e++ {
			r := runs[cell*ensemble+e]
			ys[cell] += r.ResidualDB / ensemble
			addReport(&reports[cell], r.Report)
		}
	}

	fig := &Figure{
		ID:     "mesh",
		Title:  "Dense-mesh cancellation floor vs relay count (hysteretic handoff vs naive reselection)",
		XLabel: "relays in mesh",
		YLabel: "residual vs no-ANC (dB)",
	}
	at := func(si, ci int) mesh.Report { return reports[si*len(counts)+ci] }
	for si, s := range series {
		ser := Series{Name: s.name}
		for ci, n := range counts {
			ser.X = append(ser.X, float64(n))
			ser.Y = append(ser.Y, ys[si*len(counts)+ci])
		}
		fig.Series = append(fig.Series, ser)
	}

	// Acceptance cell: 50 relays, walking source, 10%/min churn. The
	// quoted counts are ensemble totals; policies share seeds, so the
	// ratio is apples-to-apples.
	mid := 1 // counts[1] == 50
	db := func(si, ci int) float64 { return ys[si*len(counts)+ci] }
	hystChurn, naiveChurn := at(2, mid), at(4, mid)
	fig.Notes = append(fig.Notes,
		note("50 relays, walking source: hysteretic %.1f dB; +10%%/min churn and flappers %.1f dB (churn costs %.1f dB)",
			db(1, mid), db(2, mid), db(2, mid)-db(1, mid)),
		note("same churn cell, naive reselection: %.1f dB (loses %.1f dB) with %d switches vs hysteretic %d (%d flaps suppressed)",
			db(4, mid), db(4, mid)-db(2, mid),
			naiveChurn.Handoffs, hystChurn.Handoffs, hystChurn.FlapsSuppressed),
		note("hysteretic churn cell absorbed %d membership changes (%d expirations, %d rejoins) with %d emergency handoffs and %d orphaned windows",
			hystChurn.MembershipChanges(), hystChurn.Expirations, hystChurn.Rejoins,
			hystChurn.EmergencyHandoffs, hystChurn.OrphanedWindows),
		note("selection stayed O(k): %d correlations over %d rounds (%d distress) in the 120-relay hysteretic churn cells",
			at(2, 2).Correlations, at(2, 2).Rounds, at(2, 2).DistressRounds))
	return fig, nil
}

// addReport accumulates one run's supervisor accounting into a cell total.
func addReport(dst *mesh.Report, r mesh.Report) {
	dst.Joins += r.Joins
	dst.Rejoins += r.Rejoins
	dst.Leaves += r.Leaves
	dst.Expirations += r.Expirations
	dst.Live += r.Live
	dst.Rounds += r.Rounds
	dst.Correlations += r.Correlations
	dst.DistressRounds += r.DistressRounds
	dst.Handoffs += r.Handoffs
	dst.EmergencyHandoffs += r.EmergencyHandoffs
	dst.FlapsSuppressed += r.FlapsSuppressed
	dst.OrphanedWindows += r.OrphanedWindows
	dst.OrphanedSamples += r.OrphanedSamples
}
